(* racedet — command-line front end for the FreshTrack library.

   Subcommands:
     generate     render a workload to a trace file (textual or .ftb binary)
     analyze      run a detection engine over a trace file
     compare      run every engine over a trace and tabulate
     report       describe a trace (sync mix, contention, hot locations)
     oracle       brute-force ground truth for small traces
     experiments  regenerate the paper's tables and figures
     list         show available workloads and engines *)

module Trace = Ft_trace.Trace
module Trace_format = Ft_trace.Trace_format
module Trace_gen = Ft_trace.Trace_gen
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Db_sim = Ft_workloads.Db_sim
module Classic = Ft_workloads.Classic
module Sharded = Ft_shard.Sharded
module Serve = Ft_shard.Serve
module Router = Ft_cluster.Router
module Loadgen = Ft_cluster.Loadgen
module Clock = Ft_support.Clock
module Json = Ft_obs.Json
module Fault = Ft_fault.Fault

open Cmdliner

(* --- shared arguments --------------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (determinism knob).")

let rate_arg =
  Arg.(
    value
    & opt float 0.03
    & info [ "rate" ] ~docv:"RATE" ~doc:"Sampling rate in [0,1]; 1 samples every access.")

(* Generated from the registry so the help text can never drift from
   what [Engine.of_name] actually accepts. *)
let engine_doc =
  "Engine: " ^ String.concat ", " (List.map Engine.name Engine.all) ^ "."

let clock_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "clock-size" ]
        ~docv:"N"
        ~doc:
          "Vector-clock width (default: thread count). Use 256 to mimic \
           ThreadSanitizer v3's fixed clocks.")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Run the engine location-sharded across K worker domains. Race \
           reports and metrics are exact: byte-identical to K=1 for every \
           engine and sampler.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "TCP address to listen on instead of a Unix-domain socket. Port 0 \
           binds an ephemeral port; combine with --ready-file to learn it.")

let backlog_arg =
  Arg.(
    value
    & opt int Serve.default_backlog
    & info [ "backlog" ] ~docv:"N" ~doc:"listen(2) backlog.")

let ready_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ready-file" ] ~docv:"FILE"
        ~doc:
          "Atomically publish the actual listen address (unix:PATH or \
           tcp:HOST:PORT) to FILE once bound — how scripts learn an \
           ephemeral TCP port.")

(* exactly one of --socket / --tcp names the listen (or connect) address *)
let resolve_addr ~socket ~tcp =
  match (socket, tcp) with
  | Some path, None -> Ok (Serve.Unix_path path)
  | None, Some hostport -> Serve.tcp_of_string hostport
  | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
  | None, None -> Error "one of --socket or --tcp is required"

(* --connect additionally accepts the ready-file syntax (unix:PATH /
   tcp:HOST:PORT); a bare string stays a unix socket path *)
let resolve_connect_addr ~connect ~tcp =
  match (connect, tcp) with
  | Some s, None -> Serve.addr_of_string s
  | None, Some hostport -> Serve.tcp_of_string hostport
  | Some _, Some _ -> Error "--connect and --tcp are mutually exclusive"
  | None, None -> Error "one of --connect or --tcp is required"

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SEED[:SPEC]"
        ~doc:
          "Arm the deterministic fault-injection layer with this seed. SPEC is \
           comma-separated options: p=FLOAT (per-hit fire probability, default \
           0.01), points=a+b (restrict to named injection points), \
           kinds=exn+delay+crash_domain+partial_io+torn_write, max=N (stop after \
           N faults), delay=FLOAT (base Delay duration). Faults are a pure \
           function of the seed, so any chaos run replays exactly; the final \
           report stays byte-identical to a fault-free run — that invariant is \
           what the chaos suite checks.")

(* Arm --chaos around an action; the summary goes to stderr so stdout stays
   byte-identical to a fault-free run (the chaos oracle diffs it). *)
let with_chaos chaos k =
  match chaos with
  | None -> k ()
  | Some spec -> (
    match Fault.parse spec with
    | Error msg ->
      prerr_endline ("racedet: " ^ msg);
      1
    | Ok c ->
      Fault.arm c;
      let code = k () in
      Printf.eprintf "racedet: chaos summary: %d faults fired over %d checks\n%!"
        (Fault.fired ()) (Fault.checks ());
      code)

(* binary (.ftb) or textual, by extension *)
let load_trace file =
  let parsed =
    if Filename.check_suffix file ".ftb" then Ft_trace.Trace_binary.of_file file
    else Trace_format.parse_file file
  in
  match parsed with
  | Error msg -> Error ("racedet: " ^ msg)
  | Ok trace -> (
    match Trace.well_formed trace with
    | Error msg -> Error ("racedet: ill-formed trace: " ^ msg)
    | Ok () -> Ok trace)


(* --- generate ------------------------------------------------------------ *)

let workload_doc =
  "Workload to render: db:NAME (BenchBase profile), classic:NAME (RAPID-suite benchmark), or \
   random."

let generate_cmd =
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:workload_doc)
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: stdout).")
  in
  let events =
    Arg.(value & opt int 100_000 & info [ "events" ] ~docv:"N"
           ~doc:"Target event count (db and random workloads).")
  in
  let scale =
    Arg.(value & opt int 10 & info [ "scale" ] ~docv:"K" ~doc:"Scale factor (classic workloads).")
  in
  let run workload output events scale seed =
    let trace =
      match String.split_on_char ':' workload with
      | [ "db"; name ] -> (
        match Db_sim.profile name with
        | Some p -> Ok (Db_sim.generate p ~seed ~target_events:events)
        | None -> Error (Printf.sprintf "unknown db profile %S (try: racedet list)" name))
      | [ "classic"; name ] -> (
        match Classic.find name with
        | Some b -> Ok (b.Classic.generate ~seed ~scale)
        | None -> Error (Printf.sprintf "unknown classic benchmark %S (try: racedet list)" name))
      | [ "random" ] ->
        let prng = Ft_support.Prng.create ~seed in
        Ok (Trace_gen.random prng { Trace_gen.default with Trace_gen.length = events })
      | _ -> Error (Printf.sprintf "cannot parse workload %S" workload)
    in
    match trace with
    | Error msg ->
      prerr_endline ("racedet: " ^ msg);
      1
    | Ok trace -> (
      match output with
      | Some path ->
        if Filename.check_suffix path ".ftb" then Ft_trace.Trace_binary.to_file path trace
        else Trace_format.to_file path trace;
        Printf.printf "wrote %d events to %s\n" (Trace.length trace) path;
        0
      | None ->
        print_string (Trace_format.to_string trace);
        0)
  in
  let term = Term.(const run $ workload $ output $ events $ scale $ seed_arg) in
  Cmd.v (Cmd.info "generate" ~doc:"Render a workload to a textual trace.") term

(* --- analyze ------------------------------------------------------------- *)

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file to analyse.")
  in
  let engine =
    Arg.(value & opt string "so" & info [ "engine" ] ~docv:"ENGINE" ~doc:engine_doc)
  in
  let show_races =
    Arg.(value & flag & info [ "races" ] ~doc:"Print every race declaration.")
  in
  let racy_fastpath =
    Arg.(value & flag & info [ "racy-fastpath" ]
           ~doc:"Stop checking a location after its first reported race. Faster on racy \
                 workloads, but later races on the same location go unreported — the \
                 verdict set changes, so this is opt-in.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Write a resumable .ftc checkpoint to FILE every \
                 $(b,--checkpoint-every) events.")
  in
  let checkpoint_every =
    Arg.(value & opt int 10_000 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Checkpoint interval in events (with --checkpoint).")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume from a .ftc checkpoint written by an earlier run with the same \
                 engine, sampler and trace. A checkpoint that fails to load or \
                 validate is reported and the analysis replays from the start.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"Write the run's full work counters and wall-clock timing as a JSON \
                 document to FILE (stdout stays byte-identical).")
  in
  let write_metrics_json ~path ~file ~engine ~sampler ~shards ~events ~wall_s
      ~(result : Detector.result) =
    let doc =
      Json.Obj
        [
          ("tool", Json.Str "racedet analyze");
          ("trace", Json.Str file);
          ("engine", Json.Str result.Detector.engine);
          ("engine_requested", Json.Str (Engine.name engine));
          ("sampler", Json.Str (Sampler.name sampler));
          ("shards", Json.Int shards);
          ("events", Json.Int events);
          ("wall_s", Json.Float wall_s);
          ("races", Json.Int (List.length result.Detector.races));
          ( "racy_locations",
            Json.Arr (List.map (fun x -> Json.Int x) (Detector.racy_locations result)) );
          ("metrics", Serve.metrics_json_value result.Detector.metrics);
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string_pretty doc);
    close_out oc
  in
  let print_result ~events ~(result : Detector.result) show_races =
    (* the daemon's REPORT payload and this output share one renderer, so
       serve-vs-analyze diffs compare bytes *)
    print_string (Serve.report_text ~events result);
    if show_races then
      List.iter (fun race -> Format.printf "%a@." Race.pp race) result.Detector.races;
    if Detector.racy_locations result = [] then 0 else 2
  in
  let run file engine rate seed clock_size shards show_races racy_fastpath checkpoint
      checkpoint_every resume metrics_json chaos =
    match Engine.of_name engine with
    | None ->
      prerr_endline ("racedet: unknown engine " ^ engine);
      1
    | Some id ->
      with_chaos chaos @@ fun () ->
      let sampler = if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed in
      let t0 = Clock.now_ns () in
      let finish ~events ~result =
        let wall_s = Clock.elapsed_s ~since:t0 in
        (match metrics_json with
        | Some path ->
          write_metrics_json ~path ~file ~engine:id ~sampler ~shards ~events ~wall_s ~result
        | None -> ());
        print_result ~events ~result show_races
      in
      if shards > 1 && (checkpoint <> None || resume <> None) then begin
        prerr_endline
          "racedet: --shards cannot be combined with --checkpoint/--resume (use \
           'racedet serve' for resumable sharded ingestion)";
        1
      end
      else if shards > 1 && racy_fastpath then begin
        prerr_endline "racedet: --racy-fastpath is a single-stream mode (drop --shards)";
        1
      end
      else if shards > 1 then begin
        (* chaos armed ⇒ supervise: injected shard faults heal instead of
           failing the run, and the report stays byte-identical *)
        let run_sharded config feed =
          let sh = Sharded.create ~engine:id ~shards ~supervise:(Fault.armed ()) config in
          let events = feed sh in
          let result = Sharded.result sh in
          Sharded.stop sh;
          let restarts = Sharded.restarts_total sh in
          if restarts > 0 then
            Printf.eprintf "racedet: supervisor restarted shards %d times\n%!" restarts;
          finish ~events ~result
        in
        if Filename.check_suffix file ".ftb" then begin
          (* stream .ftb straight into the router, batch by batch: the
             trace is never materialized, so sharded runs scale past RAM *)
          match (try Ok (open_in_bin file) with Sys_error msg -> Error msg) with
          | Error msg ->
            prerr_endline ("racedet: " ^ msg);
            1
          | Ok ic ->
            Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
            (match Ft_trace.Trace_binary.open_channel ic with
            | Error msg ->
              prerr_endline ("racedet: " ^ msg);
              1
            | Ok reader ->
              let module Tb = Ft_trace.Trace_binary in
              let h = Tb.header reader in
              let nthreads = h.Tb.nthreads in
              let clock_size =
                match clock_size with
                | None -> nthreads
                | Some s -> s
              in
              if clock_size < nthreads then begin
                prerr_endline "racedet: clock size below thread count";
                1
              end
              else begin
                let config =
                  {
                    Detector.nthreads;
                    nlocks = h.Tb.nlocks;
                    nlocs = h.Tb.nlocs;
                    clock_size;
                    sampler;
                  }
                in
                let batch = Tb.create_batch () in
                let feed sh =
                  let rec loop () =
                    match Tb.read_batch reader batch with
                    | Error msg -> Error msg
                    | Ok 0 -> Ok (Tb.events_read reader)
                    | Ok n ->
                      let start = Tb.events_read reader - n in
                      for j = 0 to n - 1 do
                        Sharded.handle sh (start + j) (Tb.batch_event batch j)
                      done;
                      loop ()
                  in
                  loop ()
                in
                let sh =
                  Sharded.create ~engine:id ~shards ~supervise:(Fault.armed ()) config
                in
                match feed sh with
                | Error msg ->
                  Sharded.stop sh;
                  prerr_endline ("racedet: " ^ msg);
                  1
                | Ok events ->
                  let result = Sharded.result sh in
                  Sharded.stop sh;
                  let restarts = Sharded.restarts_total sh in
                  if restarts > 0 then
                    Printf.eprintf "racedet: supervisor restarted shards %d times\n%!"
                      restarts;
                  finish ~events ~result
              end)
        end
        else begin
          match load_trace file with
          | Error msg ->
            prerr_endline msg;
            1
          | Ok trace ->
            let config = Detector.config_of_trace ~sampler ?clock_size trace in
            run_sharded config (fun sh ->
                Trace.iteri (fun i e -> Sharded.handle sh i e) trace;
                Trace.length trace)
        end
      end
      else if checkpoint <> None || resume <> None then begin
        (* resumable path: .ftb traces stream (and record byte offsets for
           seeking); textual traces are replayed in memory *)
        let outcome =
          if Filename.check_suffix file ".ftb" then
            Ft_snapshot.Runner.analyze_file ~engine:id ~racy_fastpath ~sampler ?clock_size
              ?checkpoint ~checkpoint_every ?resume file
          else
            match load_trace file with
            | Error msg -> Error msg
            | Ok trace ->
              Ft_snapshot.Runner.analyze_trace ~engine:id ~racy_fastpath ~sampler
                ?clock_size ?checkpoint ~checkpoint_every ?resume trace
        in
        match outcome with
        | Error msg ->
          prerr_endline ("racedet: " ^ msg);
          1
        | Ok o ->
          (* stderr, so stdout stays byte-identical to a straight-through run *)
          (match o.Ft_snapshot.Runner.resumed_at with
          | Some k -> Printf.eprintf "resumed at event : %d\n%!" k
          | None -> ());
          finish ~events:o.Ft_snapshot.Runner.result.Detector.metrics.Metrics.events
            ~result:o.Ft_snapshot.Runner.result
      end
      else begin
        match load_trace file with
        | Error msg ->
          prerr_endline msg;
          1
        | Ok trace ->
          let result = Engine.run id ~racy_fastpath ~sampler ?clock_size trace in
          finish ~events:(Trace.length trace) ~result
      end
  in
  let term =
    Term.(
      const run $ file $ engine $ rate_arg $ seed_arg $ clock_size_arg $ shards_arg
      $ show_races $ racy_fastpath $ checkpoint $ checkpoint_every $ resume $ metrics_json
      $ chaos_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run a race-detection engine over a trace file (exit 2 if races found).")
    term

(* --- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let engine =
    Arg.(value & opt string "so" & info [ "engine" ] ~docv:"ENGINE" ~doc:engine_doc)
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR"
           ~doc:"Persist per-shard .ftc checkpoints into DIR after every ingested \
                 batch and on shutdown.")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR"
           ~doc:"Resume from the checkpoint set in DIR. A missing or inconsistent \
                 set is reported and the server starts fresh, which is still exact \
                 because clients resend idempotently.")
  in
  let heartbeat =
    Arg.(value & opt float 10.0 & info [ "heartbeat" ] ~docv:"SECONDS"
           ~doc:"Period of the one-line telemetry heartbeat on stderr (0 disables).")
  in
  let metrics_json =
    Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"On shutdown, write the final telemetry and merged work counters \
                 (the $(b,STATS JSON) payload) to FILE.")
  in
  let max_restarts =
    Arg.(value & opt int Serve.default_max_restarts & info [ "max-restarts" ] ~docv:"N"
           ~doc:"Per-shard supervisor restart budget; past it the daemon fails \
                 fast with a non-zero exit, leaving the last good checkpoint set \
                 on disk.")
  in
  let run socket tcp backlog ready_file engine shards rate seed clock_size checkpoint
      resume heartbeat metrics_json max_restarts chaos =
    match Engine.of_name engine with
    | None ->
      prerr_endline ("racedet: unknown engine " ^ engine);
      1
    | Some id ->
      if shards < 1 then begin
        prerr_endline "racedet: --shards must be positive";
        1
      end
      else begin
        let chaos_cfg =
          match chaos with
          | None -> Ok None
          | Some spec -> Result.map Option.some (Fault.parse spec)
        in
        match (chaos_cfg, resolve_addr ~socket ~tcp) with
        | Error msg, _ | _, Error msg ->
          prerr_endline ("racedet: " ^ msg);
          1
        | Ok chaos, Ok listen ->
          let sampler =
            if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed
          in
          (try
             Serve.run
               {
                 Serve.listen;
                 engine = id;
                 shards;
                 sampler;
                 clock_size;
                 checkpoint_dir = checkpoint;
                 checkpoint_every = Serve.default_checkpoint_every;
                 resume_dir = resume;
                 max_parked = Serve.default_max_parked;
                 backlog;
                 ready_file;
                 heartbeat_s = (if heartbeat > 0.0 then Some heartbeat else None);
                 metrics_json;
                 max_restarts;
                 chaos;
               };
             0
           with
          | Unix.Unix_error (err, fn, arg) ->
            Printf.eprintf "racedet: serve: %s(%s): %s\n" fn arg (Unix.error_message err);
            1
          | Failure msg ->
            prerr_endline ("racedet: serve: " ^ msg);
            1)
      end
  in
  let term =
    Term.(
      const run $ socket_arg $ tcp_arg $ backlog_arg $ ready_file_arg $ engine
      $ shards_arg $ rate_arg $ seed_arg $ clock_size_arg $ checkpoint $ resume
      $ heartbeat $ metrics_json $ max_restarts $ chaos_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Ingestion daemon: accept .ftb event batches over a Unix-domain socket \
          or TCP ($(b,--tcp)), feed a (sharded) online detector, answer REPORT \
          queries. Runs until a client sends SHUTDOWN, SIGTERM or SIGINT (all \
          three drain, write a final checkpoint and dump --metrics-json before \
          exiting).")
    term

(* --- emit ------------------------------------------------------------------ *)

let emit_cmd =
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"PATH"
           ~doc:"Unix-domain socket of a running $(b,racedet serve) or \
                 $(b,racedet route).")
  in
  let tcp =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"TCP address of a running $(b,racedet serve) or \
                 $(b,racedet route) (alternative to $(b,--connect)).")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"TRACE"
           ~doc:"Trace file to stream (omit to only query/shut down the server).")
  in
  let batch =
    Arg.(value & opt int 10_000 & info [ "batch" ] ~docv:"N"
           ~doc:"Events per batch.")
  in
  let stride =
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"S"
           ~doc:"Send only every S-th batch (split one trace across S clients).")
  in
  let offset =
    Arg.(value & opt int 0 & info [ "offset" ] ~docv:"I"
           ~doc:"This client's batch residue modulo $(b,--stride).")
  in
  let report =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Fetch and print the server's analysis report (exit 2 if it shows \
                 racy locations).")
  in
  let shutdown_flag =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the server to checkpoint and exit after this client is done.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Fetch and print the server's telemetry as Prometheus text.")
  in
  let stats_json_flag =
    Arg.(value & flag & info [ "stats-json" ]
           ~doc:"Fetch and print the server's telemetry as a JSON document.")
  in
  let resize =
    Arg.(value & opt (some int) None & info [ "resize" ] ~docv:"DELTA"
           ~doc:"After streaming, ask a $(b,racedet route) server to resize its \
                 worker ring by DELTA (+1 or -1).")
  in
  let run connect tcp file batch stride offset report stats stats_json shutdown_flag
      resize seed chaos =
    if batch < 1 then begin
      prerr_endline "racedet: --batch must be positive";
      1
    end
    else if stride < 1 then begin
      prerr_endline "racedet: --stride must be positive";
      1
    end
    else begin
      let exception Fail of string in
      with_chaos chaos @@ fun () ->
      match resolve_connect_addr ~connect ~tcp with
      | Error msg ->
        prerr_endline ("racedet: " ^ msg);
        1
      | Ok addr -> (
      let name = Serve.addr_to_string addr in
      match Serve.connect_stats ~seed addr with
      | exception Unix.Unix_error (err, fn, _) ->
        Printf.eprintf "racedet: cannot connect to %s: %s: %s\n" name fn
          (Unix.error_message err);
        1
      | fd0, attempts0 ->
        if attempts0 > 1 then
          Printf.eprintf "racedet: connected to %s after %d attempts\n%!" name attempts0;
        let fd = ref fd0 in
        let attempts = ref attempts0 in
        let reconnects = ref 0 in
        (* A dead connection mid-stream (router restarting after a crash,
           say) is the same situation as a worker respawn seen one level
           down: reconnect with the same capped backoff — connect_stats
           already retries ECONNREFUSED/ENOENT — and blind-resend, which
           the server dedups by base index. *)
        let reconnect why =
          Serve.close !fd;
          incr reconnects;
          Printf.eprintf "racedet: connection to %s lost (%s); reconnecting\n%!" name why;
          match Serve.connect_stats ~seed:(seed + !reconnects) addr with
          | nfd, a ->
            fd := nfd;
            attempts := !attempts + a
          | exception Unix.Unix_error (err, fn, _) ->
            raise
              (Fail
                 (Printf.sprintf "cannot reconnect to %s: %s: %s" name fn
                    (Unix.error_message err)))
        in
        let code = ref 0 in
        (try
           (match file with
           | None -> ()
           | Some file -> (
             match load_trace file with
             | Error msg -> raise (Fail msg)
             | Ok trace ->
               let n = Trace.length trace in
               let nbatches = (n + batch - 1) / batch in
               for b = 0 to nbatches - 1 do
                 if b mod stride = offset mod stride then begin
                   let base = b * batch in
                   let len = min batch (n - base) in
                   let sub =
                     Trace.make ~nthreads:trace.Trace.nthreads
                       ~nlocks:trace.Trace.nlocks ~nlocs:trace.Trace.nlocs
                       (Array.init len (fun i -> Trace.get trace (base + i)))
                   in
                   let rec send tries =
                     match Serve.send_batch !fd ~base sub with
                     | Ok total ->
                       Printf.eprintf "batch %d (base %d): server has %d events\n%!" b
                         base total
                     | Error msg ->
                       if tries >= 3 then
                         raise (Fail (Printf.sprintf "batch %d: %s" b msg))
                       else begin
                         reconnect msg;
                         send (tries + 1)
                       end
                   in
                   send 0
                 end
               done));
           (match resize with
           | None -> ()
           | Some delta -> (
             match Serve.resize !fd delta with
             | Ok k -> Printf.eprintf "racedet: cluster resized to %d worker(s)\n%!" k
             | Error msg -> raise (Fail ("resize: " ^ msg))));
           if stats then begin
             match Serve.fetch_stats !fd ~format:`Prometheus with
             | Error msg -> raise (Fail ("stats: " ^ msg))
             | Ok text ->
               (* client-side backoff telemetry rides along as a Prometheus
                  comment: the server cannot know how hard we had to try *)
               Printf.printf "# emit_connect_attempts %d\n" !attempts;
               Printf.printf "# emit_reconnects %d\n" !reconnects;
               print_string text
           end;
           if stats_json then begin
             match Serve.fetch_stats !fd ~format:`Json with
             | Error msg -> raise (Fail ("stats: " ^ msg))
             | Ok text -> print_string text
           end;
           if report then begin
             match Serve.fetch_report !fd with
             | Error msg -> raise (Fail msg)
             | Ok text ->
               print_string text;
               (* mirror analyze's exit code from the shared report renderer *)
               let clean = "racy locations  : 0\n" in
               let has_sub hay needle =
                 let nh = String.length hay and nn = String.length needle in
                 let rec go i =
                   i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
                 in
                 go 0
               in
               if not (has_sub text clean) then code := 2
           end;
           if shutdown_flag then
             match Serve.shutdown !fd with
             | Ok () -> ()
             | Error msg -> raise (Fail ("shutdown: " ^ msg))
         with
        | Fail msg ->
          prerr_endline ("racedet: " ^ msg);
          code := 1
        | Unix.Unix_error (err, fn, _) ->
          Printf.eprintf "racedet: %s: %s\n" fn (Unix.error_message err);
          code := 1);
        Serve.close !fd;
        !code)
    end
  in
  let term =
    Term.(
      const run $ connect $ tcp $ file $ batch $ stride $ offset $ report $ stats_flag
      $ stats_json_flag $ shutdown_flag $ resize $ seed_arg $ chaos_arg)
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Stream a trace to a $(b,racedet serve) or $(b,racedet route) daemon in \
          indexed batches; optionally fetch the report and/or shut the server \
          down.")
    term

(* --- route ----------------------------------------------------------------- *)

let route_cmd =
  let engine =
    Arg.(value & opt string "so" & info [ "engine" ] ~docv:"ENGINE" ~doc:engine_doc)
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"K"
           ~doc:"Worker processes to partition locations across (consistent \
                 hashing). Reports stay byte-identical to a single-process \
                 analyze for every K.")
  in
  let worker_shards =
    Arg.(value & opt int 1 & info [ "worker-shards" ] ~docv:"J"
           ~doc:"Detector domains inside each worker process.")
  in
  let dir =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Run directory: worker sockets, ready/pid files and per-worker \
                 checkpoint directories live here (created if missing).")
  in
  let worker_tcp =
    Arg.(value & flag & info [ "worker-tcp" ]
           ~doc:"Workers listen on 127.0.0.1 ephemeral TCP ports instead of \
                 Unix-domain sockets in --dir.")
  in
  let no_checkpoint =
    Arg.(value & flag & info [ "no-checkpoint" ]
           ~doc:"Disable per-batch worker checkpoints. Crash recovery then \
                 replays the worker's entire routed log — slower, still exact.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"On shutdown, write the router's telemetry JSON to FILE.")
  in
  let max_respawns =
    Arg.(value & opt int Router.default_max_respawns & info [ "max-respawns" ] ~docv:"N"
           ~doc:"Per-worker respawn budget; past it the router fails fast with a \
                 non-zero exit.")
  in
  let window =
    Arg.(value & opt int Router.default_window & info [ "window" ] ~docv:"N"
           ~doc:"Per-worker in-flight CBATCH window; acks are drained \
                 asynchronously and a full window applies backpressure. 1 \
                 restores lockstep send-then-wait.")
  in
  let no_wal =
    Arg.(value & flag & info [ "no-wal" ]
           ~doc:"Disable the routed-event WAL (and with it --resume): batches \
                 are acked without being made durable first.")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Recover the previous session from --dir's WAL and router-state \
                 checkpoint: kill stale workers, replay the routed history, \
                 respawn workers and align each at its durable SEQ. Clients \
                 blind-resend unacked batches; the report stays byte-identical.")
  in
  let state_every =
    Arg.(value & opt int Router.default_state_every & info [ "state-every" ] ~docv:"N"
           ~doc:"Client batches between router-state checkpoints (0 disables \
                 them; --resume then replays the whole WAL).")
  in
  let heartbeat =
    Arg.(value & opt (some float) None & info [ "heartbeat" ] ~docv:"SECONDS"
           ~doc:"Log a one-line liveness heartbeat to stderr every SECONDS.")
  in
  let run socket tcp backlog ready_file engine workers worker_shards dir worker_tcp
      no_checkpoint rate seed clock_size metrics_json max_respawns window no_wal resume
      state_every heartbeat chaos =
    match Engine.of_name engine with
    | None ->
      prerr_endline ("racedet: unknown engine " ^ engine);
      1
    | Some id -> (
      let chaos_cfg =
        match chaos with
        | None -> Ok None
        | Some spec -> Result.map Option.some (Fault.parse spec)
      in
      match (chaos_cfg, resolve_addr ~socket ~tcp) with
      | Error msg, _ | _, Error msg ->
        prerr_endline ("racedet: " ^ msg);
        1
      | Ok chaos, Ok listen ->
        let sampler =
          if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed
        in
        (try
           Router.run
             {
               Router.listen;
               workers;
               worker_shards;
               engine = id;
               sampler;
               clock_size;
               dir;
               worker_tcp;
               checkpoint = not no_checkpoint;
               max_parked = Serve.default_max_parked;
               backlog;
               ready_file;
               heartbeat_s = heartbeat;
               metrics_json;
               max_respawns;
               chaos;
               window;
               wal = not no_wal;
               resume;
               state_every;
             };
           0
         with
        | Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "racedet: route: %s(%s): %s\n" fn arg (Unix.error_message err);
          1
        | Failure msg ->
          prerr_endline ("racedet: route: " ^ msg);
          1))
  in
  let term =
    Term.(
      const run $ socket_arg $ tcp_arg $ backlog_arg $ ready_file_arg $ engine
      $ workers $ worker_shards $ dir $ worker_tcp $ no_checkpoint $ rate_arg
      $ seed_arg $ clock_size_arg $ metrics_json $ max_respawns $ window $ no_wal
      $ resume $ state_every $ heartbeat $ chaos_arg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Cluster router: partition locations across K worker processes (each an \
          unchanged $(b,racedet serve) underneath) by consistent hashing, speak \
          the same BATCH protocol to clients, and merge the workers' partial \
          results into a report byte-identical to a single-process analyze. \
          Worker death and MIGRATE reuse the .ftc checkpoint/restore machinery.")
    term

(* --- loadgen ---------------------------------------------------------------- *)

let loadgen_cmd =
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"PATH"
           ~doc:"Unix-domain socket of the daemon under load.")
  in
  let tcp =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"TCP address of the daemon under load.")
  in
  let workload =
    Arg.(value & opt string "tpcc" & info [ "workload" ] ~docv:"NAME"
           ~doc:"db_sim profile driving the generated trace (tpcc, ycsb, ...).")
  in
  let events =
    Arg.(value & opt int 200_000 & info [ "events" ] ~docv:"N"
           ~doc:"Target trace length.")
  in
  let batch =
    Arg.(value & opt int 512 & info [ "batch" ] ~docv:"N" ~doc:"Events per batch.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"C"
           ~doc:"Concurrent client connections (batch i goes to connection i mod C).")
  in
  let report =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Print the server's final analysis report after the run.")
  in
  let run connect tcp workload events batch clients report seed =
    match resolve_connect_addr ~connect ~tcp with
    | Error msg ->
      prerr_endline ("racedet: " ^ msg);
      1
    | Ok addr -> (
      match Loadgen.db_trace ~workload ~seed ~events with
      | Error msg ->
        prerr_endline ("racedet: loadgen: " ^ msg);
        1
      | Ok trace -> (
        match Loadgen.drive ~clients ~batch ~addr trace with
        | Error msg ->
          prerr_endline ("racedet: loadgen: " ^ msg);
          1
        | Ok (result, report_text) ->
          print_endline (Loadgen.summary result);
          if report then print_string report_text;
          0))
  in
  let term =
    Term.(
      const run $ connect $ tcp $ workload $ events $ batch $ clients $ report
      $ seed_arg)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a $(b,racedet serve) or $(b,racedet route) daemon with a db_sim \
          workload over several client connections, reporting ingest throughput \
          and per-batch latency.")
    term

(* --- compare --------------------------------------------------------------- *)

let compare_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file to analyse.")
  in
  let run file rate seed clock_size =
    match load_trace file with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok trace ->
      let sampler =
        if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed
      in
      let rows =
        List.map
          (fun id ->
            let result = Engine.run id ~sampler ?clock_size trace in
            let m = result.Detector.metrics in
            [|
              Engine.name id;
              string_of_int m.Metrics.sampled_accesses;
              string_of_int (List.length result.Detector.races);
              string_of_int (List.length (Detector.racy_locations result));
              Printf.sprintf "%d/%d" m.Metrics.acquires_skipped m.Metrics.acquires;
              Printf.sprintf "%d/%d" m.Metrics.releases_processed m.Metrics.releases;
              string_of_int m.Metrics.deep_copies;
              string_of_int m.Metrics.vc_full_ops;
            |])
          Engine.all
      in
      Ft_support.Tabulate.print
        ~title:(Printf.sprintf "all engines on %s (rate %g, seed %d)" file rate seed)
        ~header:
          [| "engine"; "|S|"; "races"; "racy locs"; "acq skipped"; "rel copied"; "deep"; "O(T) ops" |]
        rows;
      0
  in
  let term = Term.(const run $ file $ rate_arg $ seed_arg $ clock_size_arg) in
  Cmd.v (Cmd.info "compare" ~doc:"Run every engine over a trace and tabulate the results.") term

(* --- report ----------------------------------------------------------------- *)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file to analyse.")
  in
  let run file =
    match load_trace file with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok trace ->
      print_string (Ft_rapid.Trace_report.render (Ft_rapid.Trace_report.analyze trace));
      0
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Describe a trace: sync/access mix, contention, hot locations.")
    Term.(const run $ file)

(* --- oracle ----------------------------------------------------------------- *)

let oracle_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file to analyse.")
  in
  let pairs =
    Arg.(value & flag & info [ "pairs" ] ~doc:"Print every racy pair, not just locations.")
  in
  let run file rate seed pairs =
    match load_trace file with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok trace ->
      if Trace.length trace > 20_000 then begin
        prerr_endline "racedet: oracle is quadratic; refusing traces over 20k events";
        1
      end
      else begin
        let sampler =
          if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed
        in
        let sampled = Sampler.to_sampled_array sampler trace in
        let locs = Ft_trace.Hb.racy_locations trace ~sampled in
        Printf.printf "events: %d, sampled: %d\n" (Trace.length trace)
          (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sampled);
        Printf.printf "ground-truth racy locations: %d%s\n" (List.length locs)
          (if locs = [] then ""
           else "  (" ^ String.concat ", " (List.map (Printf.sprintf "x%d") locs) ^ ")");
        if pairs then
          List.iter
            (fun (i, j) ->
              Format.printf "  %a  ∥  %a  (events %d, %d)@."
                Ft_trace.Event.pp (Trace.get trace i)
                Ft_trace.Event.pp (Trace.get trace j) i j)
            (Ft_trace.Hb.racy_pairs_sampled trace ~sampled);
        if locs = [] then 0 else 2
      end
  in
  let term = Term.(const run $ file $ rate_arg $ seed_arg $ pairs) in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:"Brute-force ground truth (quadratic; small traces only, exit 2 if races).")
    term

(* --- experiments ---------------------------------------------------------- *)

let experiments_cmd =
  let figure =
    Arg.(value & opt string "all" & info [ "figure" ] ~docv:"FIG"
           ~doc:"Which figure to regenerate: 5a, 5b, 6a, 6b, 6c, 7, 8, 9 or all.")
  in
  let events =
    Arg.(value & opt int 200_000 & info [ "events" ] ~docv:"N"
           ~doc:"Events per DB benchmark trace (figures 5–6).")
  in
  let runs =
    Arg.(value & opt int 30 & info [ "runs" ] ~docv:"K"
           ~doc:"Seeded repetitions for the offline experiment (figures 7–9).")
  in
  let scale =
    Arg.(value & opt int 4 & info [ "scale" ] ~docv:"K"
           ~doc:"Classic benchmark scale (figures 7–9).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write raw data as CSV files into this directory.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains for experiment cells (default 1 = sequential). Tables and CSV \
                 stay byte-identical for any N; wall-clock timing columns contend for \
                 cores, so keep N=1 when the milliseconds matter. Runner statistics go \
                 to stderr.")
  in
  let run figure events runs scale seed clock_size csv jobs =
    let clock_size = Option.value clock_size ~default:Ft_tsan.Harness.default_clock_size in
    let jobs = Stdlib.max 1 jobs in
    let report label stats = Format.eprintf "[%s] %a@." label Ft_par.pp_stats stats in
    let need_tsan = List.mem figure [ "5a"; "5b"; "6a"; "6b"; "6c"; "all" ] in
    let need_rapid = List.mem figure [ "7"; "8"; "9"; "all" ] in
    let need_ablation = List.mem figure [ "ablation"; "all" ] in
    let write_csv name contents =
      match csv with
      | None -> ()
      | Some dir ->
        let path = Filename.concat dir name in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n" path
    in
    if not (need_tsan || need_rapid || need_ablation) then begin
      prerr_endline ("racedet: unknown figure " ^ figure);
      1
    end
    else begin
      if need_tsan then begin
        let ms =
          Ft_tsan.Harness.run_all ~seed ~clock_size ~jobs ~report:(report "figs 5-6")
            ~target_events:events ()
        in
        let show title body = Printf.printf "\n%s\n%s\n%s" title (String.make (String.length title) '=') body in
        if figure = "5a" || figure = "all" then
          show "Fig 5a: latency relative to NT" (Ft_tsan.Harness.fig5a ms);
        if figure = "5b" || figure = "all" then
          show "Fig 5b: algorithmic-overhead improvement" (Ft_tsan.Harness.fig5b ms);
        if figure = "6a" || figure = "all" then
          show "Fig 6a: racy locations relative to FT (fixed time budget)"
            (Ft_tsan.Harness.fig6a ms);
        if figure = "6b" || figure = "all" then
          show "Fig 6b: SU full-traversal share of sync events" (Ft_tsan.Harness.fig6b ms);
        if figure = "6c" || figure = "all" then
          show "Fig 6c: SO ordered-list entries per acquire" (Ft_tsan.Harness.fig6c ms);
        print_newline ();
        print_string (Ft_tsan.Harness.summary ms);
        write_csv "tsan_latency.csv" (Ft_tsan.Harness.to_csv ms)
      end;
      if need_rapid then begin
        let rows =
          Ft_rapid.Experiment.run ~runs ~scale ~base_seed:seed ~jobs
            ~report:(report "figs 7-9") ()
        in
        let show title body = Printf.printf "\n%s\n%s\n%s" title (String.make (String.length title) '=') body in
        if figure = "7" || figure = "all" then
          show "Fig 7: acquires skipped / total acquires" (Ft_rapid.Experiment.fig7 rows);
        if figure = "8" || figure = "all" then
          show "Fig 8: releases processed (SU) and deep copies (SO) / total releases"
            (Ft_rapid.Experiment.fig8 rows);
        if figure = "9" || figure = "all" then
          show "Fig 9: ordered-list saving ratio" (Ft_rapid.Experiment.fig9 rows);
        print_newline ();
        print_string (Ft_rapid.Experiment.summary rows);
        write_csv "rapid_metrics.csv" (Ft_rapid.Experiment.to_csv rows)
      end;
      if need_ablation then begin
        let show title body = Printf.printf "\n%s\n%s\n%s" title (String.make (String.length title) '=') body in
        show "Ablation: all engines"
          (Ft_tsan.Ablation.engines_table ~clock_size ~jobs ~target_events:events ());
        show "Ablation: clock-width sweep"
          (Ft_tsan.Ablation.clock_sweep ~jobs ~target_events:events ());
        show "Ablation: many-locks microbenchmark"
          (Ft_tsan.Ablation.lock_sweep ~jobs ~target_events:events ());
        show "Extension: sampling strategies"
          (Ft_tsan.Ablation.sampler_table ~clock_size ~jobs ~target_events:events ());
        show "Extension: Eraser lockset baseline vs ground truth"
          (Ft_rapid.Experiment.eraser_comparison ())
      end;
      0
    end
  in
  let term =
    Term.(
      const run $ figure $ events $ runs $ scale $ seed_arg $ clock_size_arg $ csv
      $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's evaluation tables and figures.")
    term

(* --- list ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "engines (HB-exact):";
    List.iter (fun id -> Printf.printf "  %s\n" (Engine.name id)) Engine.all;
    print_endline "engines (baselines):";
    print_endline "  eraser  (lockset analysis; unsound, for comparison)";
    print_endline "db profiles (workload db:NAME):";
    List.iter (fun (p : Db_sim.profile) -> Printf.printf "  %s\n" p.Db_sim.name) Db_sim.profiles;
    print_endline "classic benchmarks (workload classic:NAME):";
    List.iter
      (fun (b : Classic.benchmark) ->
        Printf.printf "  %-18s %s\n" b.Classic.name b.Classic.description)
      Classic.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List engines and workloads.") Term.(const run $ const ())

let main_cmd =
  let doc = "sampling-based dynamic race detection with efficient timestamping" in
  let info = Cmd.info "racedet" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      generate_cmd; analyze_cmd; serve_cmd; emit_cmd; route_cmd; loadgen_cmd;
      compare_cmd; report_cmd; oracle_cmd; experiments_cmd; list_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
