(* Offline work-count analysis, RAPID style (paper appendix A.1).

   Runs the four appendix engines — SU and SO at a 3% rate and at 100% —
   over a few classic concurrency benchmarks, 10 seeded runs each, and
   prints the three quantities of Figs 7–9: acquires skipped, releases
   processed / deep copies, and the ordered-list saving ratio.

     dune exec examples/offline_metrics.exe *)

module Experiment = Ft_rapid.Experiment
module Classic = Ft_workloads.Classic

let pick names =
  List.filter_map Classic.find names

let () =
  let benchmarks = pick [ "pingpong"; "producerconsumer"; "moldyn"; "wronglock"; "montecarlo" ] in
  let rows = Experiment.run ~benchmarks ~runs:10 ~scale:4 () in
  print_endline "Acquires skipped / total acquires (Fig 7):";
  print_string (Experiment.fig7 rows);
  print_newline ();
  print_endline "Releases processed (SU) and deep copies (SO) / total releases (Fig 8):";
  print_string (Experiment.fig8 rows);
  print_newline ();
  print_endline "Ordered-list saving ratio (Fig 9):";
  print_string (Experiment.fig9 rows);
  print_newline ();
  print_endline "Note how pingpong — whose threads take the two locks in reverse order —";
  print_endline "skips most acquires even at a 100% rate: the information carried by the";
  print_endline "lock is usually stale, exactly observation (3b) of the paper's §A.1.2."
