(* A guided tour of the paper's running example (Figures 1 and 2).

   Prints, for each event of the 18-event execution:
   - the DJIT+ timestamp C_FT (middle table of Fig. 1),
   - the sampling timestamp C_sam for S = {e5, e15, e16} (right table),
   - the update counter VT and freshness timestamp U (Fig. 2),
   and then shows which acquires Algorithms 3 and 4 skip — e12 and e14, as
   worked out in §4.2 — and the single-entry traversals of Algorithm 4.

     dune exec examples/fig1_walkthrough.exe *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Hb = Ft_trace.Hb
module Litmus = Ft_trace.Litmus
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Tabulate = Ft_support.Tabulate

let vec ts = "⟨" ^ String.concat "," (Array.to_list (Array.map string_of_int ts)) ^ "⟩"

let () =
  let { Litmus.trace; sampled; _ } = Litmus.fig1 in
  let c_ft = Hb.timestamps_ft trace in
  let c_sam = Hb.timestamps_sam trace ~sampled in
  let vt = Hb.vt trace ~sampled in
  let u = Hb.u_timestamps trace ~sampled in
  let rows =
    List.init (Trace.length trace) (fun i ->
        let e = Trace.get trace i in
        [|
          Printf.sprintf "e%d" (i + 1);
          Event.to_string e;
          (if sampled.(i) then "S" else "");
          vec c_ft.(i);
          vec c_sam.(i);
          string_of_int vt.(i);
          vec u.(i);
        |])
  in
  Tabulate.print ~title:"Fig 1/2: timestamps of the running example"
    ~header:[| "event"; "op"; "in S"; "C_FT"; "C_sam"; "VT"; "U" |]
    rows;

  print_newline ();
  print_endline "Things to notice (quoted from §4.1–4.2 of the paper):";
  print_endline "  - e7 and e11 get distinct C_FT (⟨2,0⟩ vs ⟨3,0⟩) but identical C_sam:";
  print_endline "    neither is sampled, so the Analysis Problem need not distinguish them.";
  print_endline "  - e15 and e16 share both timestamps: they sit in one epoch.";
  print_endline "  - t2's C_sam is unchanged across e8, e12, e14: the releases e10 and e13";
  print_endline "    transmitted nothing new, which the freshness timestamp U detects.";

  (* Run the real engines and show the skipping the paper works out. *)
  let sampler = Sampler.fixed sampled in
  let show engine =
    let r = Engine.run engine ~sampler trace in
    let m = r.Detector.metrics in
    Printf.printf
      "  %-4s acquires: %d total, %d skipped | releases: %d total, %d copied | deep copies: %d | entries traversed: %d\n"
      (Engine.name engine) m.Metrics.acquires m.Metrics.acquires_skipped m.Metrics.releases
      m.Metrics.releases_processed m.Metrics.deep_copies m.Metrics.entries_traversed
  in
  print_newline ();
  print_endline "Engine work on this execution (S = {e5, e15, e16}):";
  List.iter show [ Engine.St; Engine.Su; Engine.So ];
  print_newline ();
  print_endline "SU and SO skip 6 of 8 acquires: t1's four virgin locks plus e12 and e14";
  print_endline "(shaded blue in Fig. 2).  SO never deep-copies here: thread t1 only ever";
  print_endline "changes its clock through the externalized local epoch, and t2 never";
  print_endline "shares its list.  The two non-skipped acquires (e8, e18) each traverse";
  print_endline "exactly one ordered-list entry — compare Fig. 3's d = 1 traversal."
