(* Non-mutex synchronization (paper appendix A.2).

   Atomic variables synchronize through release-stores and acquire-loads:
   a relst does not follow an acquire by the same thread, so the lock-clock
   monotonicity Algorithm 3 relies on is gone — SU must publish on every
   release-store, while Algorithm 4's shallow copies need no special case
   ("the innovations of Algorithm 4 can always be adopted").

   The program below is a seqlock-flavoured message-passing pattern: a
   producer writes a payload and publishes a flag with a release-store;
   consumers spin with acquire-loads and then read the payload.  Properly
   synchronized reads are race-free; one consumer occasionally reads the
   payload *before* loading the flag — a genuine race the detectors find.

     dune exec examples/atomic_sync.exe *)

module Trace = Ft_trace.Trace
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Prng = Ft_support.Prng

let () =
  let b = Trace.Builder.create () in
  let producer = Trace.Builder.fresh_thread b in
  let good = Trace.Builder.fresh_thread b in
  let sloppy = Trace.Builder.fresh_thread b in
  let flag = Trace.Builder.fresh_lock b in
  let ack_good = Trace.Builder.fresh_lock b in
  let ack_sloppy = Trace.Builder.fresh_lock b in
  let payload = Trace.Builder.fresh_loc b in
  let prng = Prng.create ~seed:11 in
  let early_reads = ref 0 in
  for round = 1 to 50 do
    (* producer waits for both acks before overwriting the payload *)
    if round > 1 then begin
      Trace.Builder.acquire_load b producer ack_good;
      Trace.Builder.acquire_load b producer ack_sloppy
    end;
    Trace.Builder.write b producer payload;
    Trace.Builder.release_store b producer flag;
    (* disciplined consumer: load-acquire, read, acknowledge *)
    Trace.Builder.acquire_load b good flag;
    Trace.Builder.read b good payload;
    Trace.Builder.release_store b good ack_good;
    (* sloppy consumer: sometimes reads before synchronizing *)
    if Prng.bernoulli prng ~p:0.2 then begin
      incr early_reads;
      Trace.Builder.read b sloppy payload
    end;
    Trace.Builder.acquire_load b sloppy flag;
    Trace.Builder.read b sloppy payload;
    Trace.Builder.release_store b sloppy ack_sloppy
  done;
  let trace = Trace.Builder.build b in
  Printf.printf "message-passing trace: %d events, %d undisciplined early reads\n"
    (Trace.length trace) !early_reads;
  List.iter
    (fun engine ->
      let r = Engine.run engine ~sampler:Sampler.all trace in
      let m = r.Detector.metrics in
      Printf.printf
        "  %-4s races declared: %3d on locations [%s] | release-stores published: %d | acquires skipped: %d/%d\n"
        (Engine.name engine)
        (List.length r.Detector.races)
        (String.concat ","
           (List.map (Printf.sprintf "x%d") (Detector.racy_locations r)))
        m.Metrics.releases_processed m.Metrics.acquires_skipped m.Metrics.acquires)
    [ Engine.St; Engine.Su; Engine.So ];
  print_newline ();
  print_endline "Only the sloppy consumer's early reads race with the producer's writes.";
  print_endline "SU publishes on every release-store (the monotonicity caveat of A.2);";
  print_endline "its acquire-side skip stays sound and fires when the flag carries no news."
