(* Live race monitoring with the Online API.

   Instead of analysing a pre-recorded trace, a program under test reports
   events as they happen; the monitor validates each one against the
   execution semantics (lock ownership, thread lifecycle), maintains the
   SO detector incrementally, and fires a callback the moment a race is
   declared — the deployment shape of an in-production sanitizer (§1).

     dune exec examples/online_monitor.exe *)

module Online = Ft_core.Online
module Race = Ft_core.Race
module Metrics = Ft_core.Metrics

let () =
  let monitor =
    Online.create
      ~on_race:(fun race ->
        Format.printf "  >> live report: %a@." Race.pp race)
      ~nthreads:3 ~nlocks:1 ~nlocs:2 ()
  in
  let main = 0 and worker_a = 1 and worker_b = 2 in
  let guard = 0 in
  let counter = 0 and config = 1 in
  let step what result =
    match result with
    | Ok () -> Format.printf "  %s@." what
    | Error { Online.reason; _ } -> Format.printf "  %s REJECTED: %s@." what reason
  in
  print_endline "simulated run:";
  step "main forks worker A" (Online.fork monitor ~parent:main ~child:worker_a);
  step "main forks worker B" (Online.fork monitor ~parent:main ~child:worker_b);
  step "A locks, increments the counter" (Online.acquire monitor worker_a guard);
  step "  A reads counter" (Online.read monitor worker_a counter);
  step "  A writes counter" (Online.write monitor worker_a counter);
  step "A unlocks" (Online.release monitor worker_a guard);
  step "B reads config (fine: written before the forks?)" (Online.read monitor worker_b config);
  step "B writes the counter WITHOUT the lock" (Online.write monitor worker_b counter);
  step "B tries to unlock a lock it never took" (Online.release monitor worker_b guard);
  step "main writes config concurrently with B's read" (Online.write monitor main config);
  step "main joins A" (Online.join monitor ~parent:main ~child:worker_a);
  step "main joins B" (Online.join monitor ~parent:main ~child:worker_b);
  step "A acts after being joined" (Online.write monitor worker_a counter);
  Format.printf "@.%d events accepted; racy locations: %s@." (Online.events_seen monitor)
    (String.concat ", "
       (List.map (Printf.sprintf "x%d") (Online.racy_locations monitor)));
  let m = Online.metrics monitor in
  Format.printf "detector work: %d/%d acquires skipped, %d shallow copies, %d deep copies@."
    m.Metrics.acquires_skipped m.Metrics.acquires m.Metrics.shallow_copies
    m.Metrics.deep_copies
