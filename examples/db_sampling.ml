(* Sampling-based race detection on a database-server workload.

   Generates a TPC-C-like execution with the Db_sim substrate (the stand-in
   for the paper's MySQL + BenchBase setup), then compares the naïve sampling
   detector ST with the freshness (SU) and ordered-list (SO) engines at a 3%
   sampling rate: analysis time, skipped synchronization work, and the races
   they expose.

     dune exec examples/db_sampling.exe *)

module Trace = Ft_trace.Trace
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Db_sim = Ft_workloads.Db_sim
module Tabulate = Ft_support.Tabulate
module Clock = Ft_support.Clock

let time f =
  let t0 = Clock.now_ns () in
  let r = f () in
  (r, Clock.elapsed_s ~since:t0)

let () =
  let profile = Option.get (Db_sim.profile "tpcc") in
  let trace = Db_sim.generate profile ~seed:42 ~target_events:400_000 in
  let stats = Trace.stats trace in
  Printf.printf
    "tpcc-like trace: %d events (%d accesses, %d sync), %d workers, %d locks in use\n"
    stats.Trace.n_events stats.Trace.n_accesses stats.Trace.n_syncs
    (trace.Trace.nthreads - 1) stats.Trace.locks_touched;

  let sampler = Sampler.bernoulli ~rate:0.03 ~seed:42 in
  let clock_size = 64 in
  let row engine =
    let result, seconds =
      time (fun () -> Engine.run_instrumented engine ~sampler ~clock_size trace)
    in
    let m = result.Detector.metrics in
    [|
      Engine.name engine;
      Printf.sprintf "%.0f ms" (1000.0 *. seconds);
      string_of_int m.Metrics.sampled_accesses;
      Tabulate.pct (Metrics.acquires_skipped_ratio m);
      string_of_int m.Metrics.releases_processed;
      string_of_int m.Metrics.deep_copies;
      string_of_int (List.length (Detector.racy_locations result));
    |]
  in
  Tabulate.print ~title:"ST vs SU vs SO at a 3% sampling rate (64-entry clocks)"
    ~header:[| "engine"; "time"; "|S|"; "acq skipped"; "rel copied"; "deep copies"; "racy locs" |]
    (List.map row [ Engine.St; Engine.Su; Engine.So ]);

  print_newline ();
  print_endline "ST pays a full vector-clock operation at every synchronization event;";
  print_endline "SU skips the redundant ones via freshness timestamps; SO additionally";
  print_endline "replaces release-side copies with O(1) shallow copies and traverses only";
  print_endline "the stale prefix of the ordered list at acquires."
