(* Quickstart: build an execution, sample it, detect races.

   Two threads update a shared counter; one update is protected by a lock,
   the other is not.  We mark a handful of events as the sample set S and ask
   the ordered-list engine (Algorithm 4) whether S contains a race.

     dune exec examples/quickstart.exe *)

module Trace = Ft_trace.Trace
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Race = Ft_core.Race

let () =
  (* 1. Build a well-formed execution with the trace builder. *)
  let b = Trace.Builder.create () in
  let main = Trace.Builder.fresh_thread b in
  let worker = Trace.Builder.fresh_thread b in
  let lock = Trace.Builder.fresh_lock b in
  let counter = Trace.Builder.fresh_loc b in
  Trace.Builder.fork b main worker;
  (* main updates the counter under the lock *)
  Trace.Builder.acquire b main lock;
  Trace.Builder.read b main counter;
  Trace.Builder.write b main counter;
  Trace.Builder.release b main lock;
  (* the worker forgets the lock: a data race *)
  Trace.Builder.read b worker counter;
  Trace.Builder.write b worker counter;
  Trace.Builder.join b main worker;
  let trace = Trace.Builder.build b in
  Format.printf "execution (%d events):@.%a@." (Trace.length trace) Trace.pp trace;

  (* 2. Detect on the full execution first. *)
  let full = Engine.run Engine.So ~sampler:Sampler.all trace in
  Format.printf "full detection: %d race declaration(s)@."
    (List.length full.Detector.races);
  List.iter (fun race -> Format.printf "  %a@." Race.pp race) full.Detector.races;

  (* 3. Now sample 50%% of the accesses (seeded, hence reproducible). *)
  let sampler = Sampler.bernoulli ~rate:0.5 ~seed:7 in
  let sampled = Engine.run Engine.So ~sampler trace in
  Format.printf "sampled detection (50%%): %d race declaration(s), racy locations: %s@."
    (List.length sampled.Detector.races)
    (String.concat ", "
       (List.map (Printf.sprintf "x%d") (Detector.racy_locations sampled)));

  (* 4. The three sampling engines always agree (Lemmas 7 and 8). *)
  let indices engine = Race.indices (Engine.run engine ~sampler trace).Detector.races in
  assert (indices Engine.St = indices Engine.Su);
  assert (indices Engine.Su = indices Engine.So);
  Format.printf "ST, SU and SO agree on every race. Done.@."
