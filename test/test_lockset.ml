(* Tests for the Eraser lockset baseline: it warns on lock-discipline
   violations, stays quiet under a consistent discipline, and — unlike the
   HB engines — raises false positives on fork/join-ordered accesses.
   Plus the RPT-style fixed-count sampler. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler

let r t x = Event.mk t (Event.Read x)
let w t x = Event.mk t (Event.Write x)
let acq t l = Event.mk t (Event.Acquire l)
let rel t l = Event.mk t (Event.Release l)
let fork t u = Event.mk t (Event.Fork u)
let join t u = Event.mk t (Event.Join u)

let run events =
  let trace = Trace.validate (Trace.of_events (Array.of_list events)) in
  Engine.run Engine.Eraser ~sampler:Sampler.all trace

let locs result = Detector.racy_locations result

let test_registry () =
  Alcotest.(check bool) "resolvable by name" true (Engine.of_name "eraser" = Some Engine.Eraser);
  Alcotest.(check bool) "not in Engine.all" false (List.mem Engine.Eraser Engine.all)

let test_wronglock () =
  (* after t1's access the candidate set narrows to {L1}; t0's next access
     under L0 empties it — Eraser warns on the third access, not the second *)
  let events =
    [ acq 0 0; w 0 0; rel 0 0; acq 1 1; w 1 0; rel 1 1; acq 0 0; w 0 0; rel 0 0 ]
  in
  Alcotest.(check (list int)) "different locks warn" [ 0 ] (locs (run events));
  (* two accesses alone stay (incorrectly) quiet: Eraser's false negative
     window relative to the HB engines *)
  let short = [ acq 0 0; w 0 0; rel 0 0; acq 1 1; w 1 0; rel 1 1 ] in
  Alcotest.(check (list int)) "third access needed" [] (locs (run short))

let test_consistent_discipline_quiet () =
  let events =
    [ acq 0 0; w 0 0; rel 0 0; acq 1 0; w 1 0; rel 1 0; acq 2 0; r 2 0; rel 2 0 ]
  in
  Alcotest.(check (list int)) "common lock quiet" [] (locs (run events))

let test_exclusive_phase_quiet () =
  (* single-thread accesses never warn, locks or not *)
  let events = [ w 0 0; r 0 0; w 0 0; w 0 1 ] in
  Alcotest.(check (list int)) "exclusive quiet" [] (locs (run events))

let test_read_shared_quiet () =
  (* initialization then read-only sharing: the classic Eraser refinement *)
  let events = [ w 0 0; r 1 0; r 2 0; r 1 0 ] in
  Alcotest.(check (list int)) "read-only sharing quiet" [] (locs (run events))

let test_shared_modified_warns () =
  let events = [ w 0 0; r 1 0; w 2 0 ] in
  Alcotest.(check (list int)) "unlocked write to shared warns" [ 0 ] (locs (run events))

let test_false_positive_on_fork_join () =
  (* HB-ordered by join, yet Eraser warns: the unsoundness the paper cites *)
  let events = [ fork 0 1; w 1 0; join 0 1; w 0 0 ] in
  Alcotest.(check (list int)) "eraser false positive" [ 0 ] (locs (run events));
  let trace = Trace.validate (Trace.of_events (Array.of_list events)) in
  Alcotest.(check (list int)) "HB engine stays quiet" []
    (Detector.racy_locations (Engine.run Engine.So ~sampler:Sampler.all trace))

let test_one_warning_per_location () =
  let events = [ w 0 0; w 1 0; w 0 0; w 1 0; w 0 0 ] in
  let result = run events in
  Alcotest.(check int) "single report" 1 (List.length result.Detector.races)

let test_partial_lockset_narrowing () =
  (* candidate set narrows to the common lock and stays non-empty *)
  let events =
    [
      acq 0 0; acq 0 1; w 0 0; rel 0 1; rel 0 0;  (* {L0, L1} *)
      acq 1 0; w 1 0; rel 1 0;                    (* ∩ {L0} = {L0} *)
      acq 2 0; w 2 0; rel 2 0;                    (* still {L0} *)
    ]
  in
  Alcotest.(check (list int)) "narrowed but non-empty" [] (locs (run events))

let test_sampler_respected () =
  let trace = Trace.validate (Trace.of_events [| w 0 0; w 1 0 |]) in
  let result = Engine.run Engine.Eraser ~sampler:Sampler.none trace in
  Alcotest.(check (list int)) "nothing sampled, nothing warned" []
    (Detector.racy_locations result)

(* --- fixed-count sampler -------------------------------------------------- *)

let test_fixed_count_size () =
  let trace =
    Trace.of_events (Array.init 100 (fun i -> Event.mk (i mod 2) (Event.Read 0)))
  in
  let mask = Sampler.to_sampled_array (Sampler.fixed_count ~k:10 ~length:100 ~seed:3) trace in
  Alcotest.(check int) "exactly k sampled" 10
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask)

let test_fixed_count_deterministic () =
  let s1 = Sampler.fixed_count ~k:5 ~length:50 ~seed:9 in
  let s2 = Sampler.fixed_count ~k:5 ~length:50 ~seed:9 in
  let e = Event.mk 0 (Event.Read 0) in
  for i = 0 to 49 do
    Alcotest.(check bool) "same decision" (Sampler.decide s1 i e) (Sampler.decide s2 i e)
  done

let test_fixed_count_k_exceeds_length () =
  let s = Sampler.fixed_count ~k:500 ~length:10 ~seed:1 in
  let e = Event.mk 0 (Event.Read 0) in
  let n = ref 0 in
  for i = 0 to 9 do
    if Sampler.decide s i e then incr n
  done;
  Alcotest.(check int) "clamped to length" 10 !n

let () =
  Alcotest.run "lockset"
    [
      ( "eraser",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "wronglock warns" `Quick test_wronglock;
          Alcotest.test_case "consistent discipline quiet" `Quick
            test_consistent_discipline_quiet;
          Alcotest.test_case "exclusive quiet" `Quick test_exclusive_phase_quiet;
          Alcotest.test_case "read-only sharing quiet" `Quick test_read_shared_quiet;
          Alcotest.test_case "shared-modified warns" `Quick test_shared_modified_warns;
          Alcotest.test_case "false positive vs HB" `Quick test_false_positive_on_fork_join;
          Alcotest.test_case "one warning per location" `Quick test_one_warning_per_location;
          Alcotest.test_case "lockset narrowing" `Quick test_partial_lockset_narrowing;
          Alcotest.test_case "sampler respected" `Quick test_sampler_respected;
        ] );
      ( "fixed_count",
        [
          Alcotest.test_case "size" `Quick test_fixed_count_size;
          Alcotest.test_case "deterministic" `Quick test_fixed_count_deterministic;
          Alcotest.test_case "k > length" `Quick test_fixed_count_k_exceeds_length;
        ] );
    ]
