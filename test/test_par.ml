(* Tests for the domain pool (ft_par), its use in the experiment harnesses
   (jobs > 1 must not change any deterministic output), sampler freshness
   across runs, and the streaming binary trace layer. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Trace_binary = Ft_trace.Trace_binary
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Race = Ft_core.Race

(* --- the pool ----------------------------------------------------------- *)

let test_map_ordering () =
  let tasks = Array.init 100 (fun i -> i) in
  List.iter
    (fun jobs ->
      let results = Ft_par.map ~jobs (fun i -> i * i) tasks in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d (jobs=%d)" i jobs) (i * i) v
          | Error e -> Alcotest.failf "task %d failed: %s" i e.Ft_par.message)
        results)
    [ 1; 2; 4; 7 ]

let test_parity () =
  (* non-trivial per-task work, answers independent of scheduling *)
  let f seed =
    let prng = Prng.create ~seed in
    let t = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 200 } in
    let r = Engine.run Engine.So t in
    Race.indices r.Detector.races
  in
  let tasks = Array.init 12 (fun i -> i + 1) in
  let seq = Ft_par.map ~jobs:1 f tasks in
  let par = Ft_par.map ~jobs:4 f tasks in
  Alcotest.(check bool) "jobs=4 matches jobs=1" true (seq = par)

let test_failure_capture () =
  let tasks = [| 0; 1; 2; 3 |] in
  let f i = if i mod 2 = 1 then failwith (Printf.sprintf "boom %d" i) else i * 10 in
  let results, stats = Ft_par.map_stats ~jobs:2 f tasks in
  Alcotest.(check int) "two failures" 2 stats.Ft_par.failed;
  (match results.(1) with
  | Error e ->
    Alcotest.(check int) "failing index" 1 e.Ft_par.index;
    Alcotest.(check bool) "message kept" true
      (String.length e.Ft_par.message > 0)
  | Ok _ -> Alcotest.fail "task 1 should have failed");
  (match results.(2) with
  | Ok v -> Alcotest.(check int) "survivor" 20 v
  | Error _ -> Alcotest.fail "task 2 should have succeeded");
  let kept =
    Ft_par.filter_ok ~on_error:(fun _ -> ()) (Array.to_list results)
  in
  Alcotest.(check (list int)) "filter_ok keeps order" [ 0; 20 ] kept

let test_stats_sanity () =
  let _, stats = Ft_par.map_stats ~jobs:3 (fun i -> i) (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "tasks" 10 stats.Ft_par.tasks;
  Alcotest.(check int) "jobs clamped" 3 stats.Ft_par.jobs;
  Alcotest.(check int) "no failures" 0 stats.Ft_par.failed;
  Alcotest.(check bool) "wall nonneg" true (stats.Ft_par.wall_s >= 0.0);
  Alcotest.(check bool) "busy ≥ slowest task" true
    (stats.Ft_par.busy_s >= stats.Ft_par.max_task_s);
  (* more domains than tasks: clamp must not spawn idle ones or crash *)
  let r, s = Ft_par.map_stats ~jobs:64 (fun i -> i + 1) [| 1; 2 |] in
  Alcotest.(check int) "clamped to ntasks" 2 s.Ft_par.jobs;
  Alcotest.(check bool) "results intact" true (Array.for_all Result.is_ok r)

let test_empty_and_get_exn () =
  let r, s = Ft_par.map_stats ~jobs:4 (fun i -> i) [||] in
  Alcotest.(check int) "empty tasks" 0 (Array.length r);
  Alcotest.(check int) "empty stats" 0 s.Ft_par.tasks;
  Alcotest.(check int) "get_exn ok" 7 (Ft_par.get_exn (Ok 7));
  Alcotest.check_raises "get_exn error"
    (Failure "parallel task 3 failed: gone") (fun () ->
      ignore
        (Ft_par.get_exn
           (Error { Ft_par.index = 3; message = "gone"; backtrace = "" })))

(* --- harness determinism across jobs ------------------------------------ *)

let test_experiment_jobs_invariant () =
  let run jobs =
    Ft_rapid.Experiment.run
      ~benchmarks:(List.filteri (fun i _ -> i < 3) Ft_workloads.Classic.all)
      ~runs:4 ~scale:2 ~jobs ()
  in
  let seq = run 1 and par = run 3 in
  Alcotest.(check bool) "rows identical for jobs=3" true (seq = par);
  Alcotest.(check string) "fig7 identical"
    (Ft_rapid.Experiment.fig7 seq) (Ft_rapid.Experiment.fig7 par);
  Alcotest.(check string) "csv identical"
    (Ft_rapid.Experiment.to_csv seq) (Ft_rapid.Experiment.to_csv par)

let test_harness_jobs_invariant () =
  (* timings are scheduling-dependent; every counted quantity must not be.
     The [*_locs] fields (ft_locs included) are NOT counted quantities: they
     count racy locations over a fixed-time-budget prefix whose length is
     derived from measured wall-clock times, so they legitimately vary with
     scheduling — same reason the per-rate tuple below omits st/su/so_locs. *)
  let deterministic (m : Ft_tsan.Harness.measurement) =
    ( m.Ft_tsan.Harness.benchmark,
      m.Ft_tsan.Harness.events,
      List.map
        (fun (r : Ft_tsan.Harness.rate_result) ->
          (r.Ft_tsan.Harness.rate, r.Ft_tsan.Harness.su_metrics, r.Ft_tsan.Harness.so_metrics))
        m.Ft_tsan.Harness.per_rate )
  in
  let profiles = List.filteri (fun i _ -> i < 2) Ft_workloads.Db_sim.profiles in
  let run jobs =
    Ft_tsan.Harness.run_all ~repeats:1 ~nseeds:2 ~jobs ~profiles ~target_events:4_000 ()
  in
  let seq = List.map deterministic (run 1) in
  let par = List.map deterministic (run 4) in
  Alcotest.(check bool) "counted quantities identical" true (seq = par)

let test_report_callback () =
  let seen = ref None in
  let _ =
    Ft_rapid.Experiment.run
      ~benchmarks:(List.filteri (fun i _ -> i < 1) Ft_workloads.Classic.all)
      ~runs:2 ~scale:2 ~jobs:2
      ~report:(fun s -> seen := Some s)
      ()
  in
  match !seen with
  | None -> Alcotest.fail "report callback never invoked"
  | Some s -> Alcotest.(check int) "one cell per (benchmark, seed)" 2 s.Ft_par.tasks

(* --- sampler freshness --------------------------------------------------- *)

let sampler_specs =
  [
    ("bernoulli", fun () -> Sampler.bernoulli ~rate:0.2 ~seed:11);
    ("windowed", fun () -> Sampler.windowed ~period:50 ~duty:0.3);
    ("cold_region", fun () -> Sampler.cold_region ~threshold:3);
    ("adaptive", fun () -> Sampler.adaptive ~base_rate:4);
  ]

let test_sampler_instances_independent () =
  let prng = Prng.create ~seed:77 in
  let trace = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 400 } in
  List.iter
    (fun (name, mk) ->
      let s = mk () in
      let a = Sampler.to_sampled_array s trace in
      let b = Sampler.to_sampled_array s trace in
      Alcotest.(check bool) (name ^ ": repeated scans agree") true (a = b))
    sampler_specs

let test_engine_rerun_deterministic () =
  (* the regression: stateful samplers (cold_region, adaptive) used to carry
     hashtable state from one run into the next, so the second run of the
     same configuration sampled a different S and found different races *)
  let prng = Prng.create ~seed:78 in
  let trace = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 400 } in
  List.iter
    (fun (name, mk) ->
      let sampler = mk () in
      let once () =
        let r = Engine.run Engine.So ~sampler trace in
        (Race.indices r.Detector.races, r.Detector.metrics.Ft_core.Metrics.sampled_accesses)
      in
      let first = once () in
      let second = once () in
      Alcotest.(check bool) (name ^ ": second run identical") true (first = second))
    sampler_specs

let test_fresh_instances_per_run () =
  (* two instances of the same spec must not share state *)
  let s = Sampler.cold_region ~threshold:2 in
  let i1 = Sampler.fresh s in
  let e = Event.mk 0 (Event.Write 0) in
  (* exhaust the cold region on the first instance *)
  for k = 0 to 9 do
    ignore (Sampler.query i1 k e)
  done;
  let i2 = Sampler.fresh s in
  Alcotest.(check bool) "fresh instance still cold" true (Sampler.query i2 0 e)

(* --- streaming binary layer ---------------------------------------------- *)

let test_stream_roundtrip () =
  let prng = Prng.create ~seed:21 in
  for i = 0 to 10 do
    let params =
      { Trace_gen.default with Trace_gen.atomics = i mod 2 = 0; length = 300 + (37 * i) }
    in
    let trace = Trace_gen.random prng params in
    let path = Filename.temp_file "ftpar" ".ftb" in
    let oc = open_out_bin path in
    let w =
      Trace_binary.create_writer oc ~nthreads:trace.Trace.nthreads
        ~nlocks:trace.Trace.nlocks ~nlocs:trace.Trace.nlocs
        ~nevents:(Trace.length trace)
    in
    Trace.iteri (fun _ e -> Trace_binary.write_event w e) trace;
    Trace_binary.close_writer w;
    close_out oc;
    (* tiny chunk size to force many refills *)
    (match
       Trace_binary.iter_file ~chunk_size:16 path ~f:(fun j e ->
           if not (Event.equal e (Trace.get trace j)) then
             Alcotest.failf "iteration %d: event %d differs" i j)
     with
    | Error msg -> Alcotest.failf "iteration %d: %s" i msg
    | Ok (h, ()) ->
      Alcotest.(check int) "header nevents" (Trace.length trace) h.Trace_binary.nevents);
    (* and the streamed file is readable by the whole-trace path *)
    (match Trace_binary.of_file path with
    | Error msg -> Alcotest.failf "of_file after streaming write: %s" msg
    | Ok t' -> Alcotest.(check int) "length" (Trace.length trace) (Trace.length t'));
    Sys.remove path
  done

let test_stream_writer_validates () =
  let path = Filename.temp_file "ftpar" ".ftb" in
  let oc = open_out_bin path in
  let w = Trace_binary.create_writer oc ~nthreads:2 ~nlocks:1 ~nlocs:1 ~nevents:1 in
  (* out-of-universe event *)
  (try
     Trace_binary.write_event w (Event.mk 5 (Event.Write 0));
     Alcotest.fail "expected Invalid_argument for out-of-range thread"
   with Invalid_argument _ -> ());
  (* short write must be refused at close *)
  (try
     Trace_binary.close_writer w;
     Alcotest.fail "expected Invalid_argument for short write"
   with Invalid_argument _ -> ());
  close_out oc;
  Sys.remove path

let test_corrupt_nevents_no_oom () =
  (* a 16-byte buffer whose header promises 2^29 events must be rejected by
     arithmetic, not by attempting the allocation *)
  let buf = Buffer.create 32 in
  Buffer.add_string buf "FTRB\x01";
  Buffer.add_string buf "\x02\x01\x01";           (* nthreads=2 nlocks=1 nlocs=1 *)
  Buffer.add_string buf "\x80\x80\x80\x80\x02";   (* nevents = 2^29 as LEB128 *)
  Buffer.add_string buf "\x00\x00\x00";           (* a few stray bytes *)
  (match Trace_binary.of_bytes (Buffer.to_bytes buf) with
  | Ok _ -> Alcotest.fail "corrupt header accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions the budget: %s" msg)
      true
      (String.length msg > 0));
  (* same via the streaming reader on a file *)
  let path = Filename.temp_file "ftpar" ".ftb" in
  let oc = open_out_bin path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let ic = open_in_bin path in
  (match Trace_binary.open_channel ic with
  | Ok _ -> Alcotest.fail "streaming reader accepted corrupt header"
  | Error _ -> ());
  close_in ic;
  Sys.remove path

let qcheck_stream_fuzz =
  (* the streaming reader must be total on random bytes, like of_bytes *)
  QCheck.Test.make ~name:"streaming reader total on random bytes" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 80))
    (fun s ->
      let path = Filename.temp_file "ftfuzz" ".ftb" in
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let outcome =
        match Trace_binary.iter_file ~chunk_size:8 path ~f:(fun _ _ -> ()) with
        | Ok _ | Error _ -> true
      in
      Sys.remove path;
      outcome)

let qcheck_truncation =
  (* every prefix of a valid file must fail cleanly, never crash or hang *)
  QCheck.Test.make ~name:"decoder total on truncated valid traces" ~count:100
    QCheck.(small_nat)
    (fun n ->
      let prng = Prng.create ~seed:(n + 1) in
      let trace = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 50 } in
      let full = Trace_binary.to_bytes trace in
      let cut = n mod Bytes.length full in
      match Trace_binary.of_bytes (Bytes.sub full 0 cut) with
      | Ok _ -> cut = Bytes.length full
      | Error _ -> true)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "result ordering" `Quick test_map_ordering;
          Alcotest.test_case "sequential/parallel parity" `Quick test_parity;
          Alcotest.test_case "failure capture" `Quick test_failure_capture;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
          Alcotest.test_case "empty + get_exn" `Quick test_empty_and_get_exn;
        ] );
      ( "harness determinism",
        [
          Alcotest.test_case "experiment rows jobs-invariant" `Quick
            test_experiment_jobs_invariant;
          Alcotest.test_case "tsan counted quantities jobs-invariant" `Quick
            test_harness_jobs_invariant;
          Alcotest.test_case "report callback" `Quick test_report_callback;
        ] );
      ( "sampler freshness",
        [
          Alcotest.test_case "repeated scans agree" `Quick test_sampler_instances_independent;
          Alcotest.test_case "engine reruns deterministic" `Quick
            test_engine_rerun_deterministic;
          Alcotest.test_case "instances independent" `Quick test_fresh_instances_per_run;
        ] );
      ( "streaming binary",
        [
          Alcotest.test_case "chunked roundtrip" `Quick test_stream_roundtrip;
          Alcotest.test_case "writer validation" `Quick test_stream_writer_validates;
          Alcotest.test_case "corrupt nevents rejected cheaply" `Quick
            test_corrupt_nevents_no_oom;
          QCheck_alcotest.to_alcotest qcheck_stream_fuzz;
          QCheck_alcotest.to_alcotest qcheck_truncation;
        ] );
    ]
