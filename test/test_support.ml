(* Tests for ft_support: PRNG determinism and distribution sanity, stats. *)

module Prng = Ft_support.Prng
module Stats = Ft_support.Stats
module Tabulate = Ft_support.Tabulate

let test_prng_deterministic () =
  let g1 = Prng.create ~seed:42 and g2 = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 g1) (Prng.next_int64 g2)
  done

let test_prng_seed_sensitivity () =
  let g1 = Prng.create ~seed:1 and g2 = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 g1 = Prng.next_int64 g2 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_copy_independent () =
  let g = Prng.create ~seed:7 in
  ignore (Prng.next_int64 g);
  let h = Prng.copy g in
  let a = Prng.next_int64 g in
  let b = Prng.next_int64 h in
  Alcotest.(check int64) "copy continues identically" a b;
  (* advancing g must not advance h *)
  ignore (Prng.next_int64 g);
  let g2 = Prng.create ~seed:7 in
  ignore (Prng.next_int64 g2);
  ignore (Prng.next_int64 g2);
  Alcotest.(check int64) "h unaffected by g" (Prng.next_int64 g2) (Prng.next_int64 h)

let test_prng_int_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_coverage () =
  let g = Prng.create ~seed:4 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 8) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_prng_float_bounds () =
  let g = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.float g 1.0 in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_bernoulli_rate () =
  let g = Prng.create ~seed:6 in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Prng.bernoulli g ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "≈0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_prng_pick_weighted () =
  let g = Prng.create ~seed:8 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10000 do
    let k = Prng.pick_weighted g [| ("a", 1.0); ("b", 3.0); ("c", 0.0) |] in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check int) "zero-weight never drawn" 0 (get "c");
  Alcotest.(check bool) "b ≈ 3×a" true
    (let a = float_of_int (get "a") and b = float_of_int (get "b") in
     b /. a > 2.5 && b /. a < 3.6)

let test_prng_geometric () =
  let g = Prng.create ~seed:9 in
  let total = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    total := !total + Prng.geometric g ~p:0.5
  done;
  (* mean of Geometric(0.5) failures-before-success is 1 *)
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean ≈ 1" true (Float.abs (mean -. 1.0) < 0.1)

let test_prng_shuffle_permutation () =
  let g = Prng.create ~seed:10 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_prng_split () =
  let g = Prng.create ~seed:11 in
  let h = Prng.split g in
  let a = Prng.next_int64 g and b = Prng.next_int64 h in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal a b))

let feq msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_stats_mean () =
  feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  feq "empty" 0.0 (Stats.mean [||])

let test_stats_geomean () =
  feq "geomean" 2.0 (Stats.geomean [| 1.0; 4.0 |]);
  feq "single" 3.0 (Stats.geomean [| 3.0 |])

let test_stats_median () =
  feq "odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  feq "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_stddev () =
  feq "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  feq "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  feq "p0" 10.0 (Stats.percentile xs 0.0);
  feq "p100" 40.0 (Stats.percentile xs 100.0);
  feq "p50" 25.0 (Stats.percentile xs 50.0)

let test_stats_ratio () =
  feq "ratio" 0.5 (Stats.ratio 1 2);
  feq "div0" 0.0 (Stats.ratio 1 0)

let test_tabulate_render () =
  let s =
    Tabulate.render ~header:[| "name"; "value" |] [ [| "a"; "1" |]; [| "bb"; "22" |] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0
    && (let lines = String.split_on_char '\n' s in
        List.length lines >= 4));
  (* alignment: the value column is right-aligned *)
  let lines = String.split_on_char '\n' s in
  let row_a = List.nth lines 2 in
  Alcotest.(check bool) "right aligned" true (String.length row_a >= 4)

let test_tabulate_pct () =
  Alcotest.(check string) "pct" "37.0%" (Tabulate.pct 0.37);
  Alcotest.(check string) "fl1" "2.1" (Tabulate.fl1 2.1234)

let () =
  Alcotest.run "support"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int coverage" `Quick test_prng_int_coverage;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
          Alcotest.test_case "pick_weighted" `Quick test_prng_pick_weighted;
          Alcotest.test_case "geometric mean" `Quick test_prng_geometric;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_prng_split;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
        ] );
      ( "tabulate",
        [
          Alcotest.test_case "render" `Quick test_tabulate_render;
          Alcotest.test_case "formatting" `Quick test_tabulate_pct;
        ] );
    ]
