(* Scale smoke tests: the engines must handle million-event traces without
   pathological time or memory behaviour, and the complexity-facing metric
   bounds must hold at scale, not just on toy traces. *)

module Trace = Ft_trace.Trace
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Db_sim = Ft_workloads.Db_sim
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng

let big_trace = lazy (Db_sim.generate (Option.get (Db_sim.profile "tpcc")) ~seed:1 ~target_events:1_000_000)

let test_generation_scales () =
  let trace = Lazy.force big_trace in
  Alcotest.(check bool) "has 1M events" true (Trace.length trace >= 1_000_000);
  (* spot-check well-formedness on a large trace (full validation is fast) *)
  Alcotest.(check bool) "well-formed" true (Trace.well_formed trace = Ok ())

let run engine =
  let trace = Lazy.force big_trace in
  Engine.run engine ~sampler:(Sampler.bernoulli ~rate:0.03 ~seed:1) ~clock_size:64 trace

let test_engines_complete () =
  List.iter
    (fun engine ->
      let result = run engine in
      Alcotest.(check int)
        (Engine.name engine ^ " processed everything")
        (Trace.length (Lazy.force big_trace))
        result.Detector.metrics.Metrics.events)
    [ Engine.St; Engine.Su; Engine.So; Engine.O1; Engine.O1u; Engine.Fasttrack;
      Engine.Fasttrack_tc ]

let test_so_bounds_at_scale () =
  let m = (run Engine.So).Detector.metrics in
  let s = m.Metrics.sampled_accesses in
  (* Lemma 8: deep copies are O(|S|·T); with T = 64 threads padded clocks *)
  Alcotest.(check bool) "deep copies ≤ |S|·T" true (m.Metrics.deep_copies <= s * 64);
  (* Lemma 8's proof: per thread, traversed entries ≤ the sum of its U_t
     entries ≤ |S|·T; across T threads the global bound is |S|·T² *)
  Alcotest.(check bool) "entries traversed ≤ |S|·T²" true
    (m.Metrics.entries_traversed <= s * 64 * 64);
  Alcotest.(check bool) "skips happen at scale" true
    (Metrics.acquires_skipped_ratio m > 0.2)

let test_su_so_agree_at_scale () =
  let su = run Engine.Su and so = run Engine.So in
  Alcotest.(check int) "same race count"
    su.Detector.metrics.Metrics.races so.Detector.metrics.Metrics.races;
  Alcotest.(check (list int)) "same racy locations"
    (Detector.racy_locations su) (Detector.racy_locations so)

(* Equivalence sweep on random fork/join traces at growing thread counts:
   the three sampling algorithms must report the same races (same events,
   same order), and Alg 4's traversal work must stay within what Alg 3
   spends on full vector-clock operations. *)

let sweep_cases = [ (1, 16, 55_000); (2, 32, 66_000); (3, 64, 88_000) ]

let test_sampling_engines_agree_sweep () =
  List.iter
    (fun (seed, nthreads, length) ->
      let prng = Prng.create ~seed in
      let trace =
        Trace_gen.random prng
          { Trace_gen.nthreads; nlocks = 8; nlocs = 32; length; atomics = true; forkjoin = true }
      in
      let label = Printf.sprintf "T=%d" nthreads in
      Alcotest.(check bool) (label ^ ": ≥50k events") true (Trace.length trace >= 50_000);
      let run engine =
        Engine.run engine
          ~sampler:(Sampler.bernoulli ~rate:0.05 ~seed:7)
          ~clock_size:nthreads trace
      in
      let st = run Engine.St and su = run Engine.Su and so = run Engine.So in
      Alcotest.(check bool) (label ^ ": ST ≡ SU races") true
        (st.Detector.races = su.Detector.races);
      Alcotest.(check bool) (label ^ ": SU ≡ SO races") true
        (su.Detector.races = so.Detector.races);
      Alcotest.(check (list int))
        (label ^ ": same racy locations")
        (Detector.racy_locations st) (Detector.racy_locations so);
      (* every non-skipped SO acquire examines ≤ T ordered-list entries, and
         SU pays a full O(T) traversal at exactly those acquires *)
      Alcotest.(check bool)
        (label ^ ": SO entries_traversed ≤ SU vc_full_ops · T")
        true
        (so.Detector.metrics.Metrics.entries_traversed
        <= su.Detector.metrics.Metrics.vc_full_ops * nthreads);
      (* the O(1)-samples family at scale: a verdict subset of ST with the
         same racy locations, o1 ≡ o1-u, and ≤ 2 race checks per sample *)
      let o1 = run Engine.O1 and o1u = run Engine.O1u in
      Alcotest.(check bool) (label ^ ": o1 ≡ o1-u races") true
        (o1.Detector.races = o1u.Detector.races);
      let indices r =
        List.map (fun (rc : Race.t) -> rc.Race.index) r.Detector.races
      in
      let st_idx = indices st in
      Alcotest.(check bool) (label ^ ": o1 races ⊆ ST races") true
        (List.for_all (fun i -> List.mem i st_idx) (indices o1));
      Alcotest.(check (list int))
        (label ^ ": o1 racy locations = ST's")
        (Detector.racy_locations st) (Detector.racy_locations o1);
      Alcotest.(check bool)
        (label ^ ": o1 race_checks ≤ 2·|S|")
        true
        (o1.Detector.metrics.Metrics.race_checks
        <= 2 * o1.Detector.metrics.Metrics.sampled_accesses))
    sweep_cases

let () =
  Alcotest.run "stress"
    [
      ( "million events",
        [
          Alcotest.test_case "generation" `Slow test_generation_scales;
          Alcotest.test_case "engines complete" `Slow test_engines_complete;
          Alcotest.test_case "SO bounds hold" `Slow test_so_bounds_at_scale;
          Alcotest.test_case "SU = SO at scale" `Slow test_su_so_agree_at_scale;
        ] );
      ( "sampling equivalence sweep",
        [
          Alcotest.test_case "ST ≡ SU ≡ SO up to 64 threads" `Slow
            test_sampling_engines_agree_sweep;
        ] );
    ]
