(* Checkpoint/restore correctness:

   - prefix equivalence: snapshotting any engine at a random cut, restoring,
     and feeding the suffix yields exactly the races, race order and metrics
     of an uninterrupted run — including stateful samplers and padded clocks;
   - the .ftc container rejects corruption (bit flips, truncation at every
     byte, wrong version, random bytes) with [Error], never an exception —
     and a rejected checkpoint never changes an analysis result (the runner
     falls back to full replay);
   - Ordered_list deep copies and snapshot roundtrips preserve the recency
     order that Alg 4's d-prefix traversals depend on;
   - the Metrics record's serialization arity is guarded against field drift;
   - Online monitors roundtrip through snapshot/restore, validator included. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Trace_binary = Ft_trace.Trace_binary
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Race = Ft_core.Race
module Metrics = Ft_core.Metrics
module Snap = Ft_core.Snap
module Ol = Ft_core.Ordered_list
module Online = Ft_core.Online
module Checkpoint = Ft_snapshot.Checkpoint
module Runner = Ft_snapshot.Runner

let engines = Engine.all @ [ Engine.Eraser ]

let sampler_specs =
  [
    ("all", fun () -> Sampler.all);
    ("bernoulli", fun () -> Sampler.bernoulli ~rate:0.3 ~seed:13);
    ("windowed", fun () -> Sampler.windowed ~period:20 ~duty:0.4);
    ("cold_region", fun () -> Sampler.cold_region ~threshold:2);
    ("adaptive", fun () -> Sampler.adaptive ~base_rate:3);
  ]

(* --- prefix equivalence (property) --------------------------------------- *)

type scenario = {
  seed : int;
  params : Trace_gen.params;
  cut_frac : float;
  pad : int;  (* clock_size = nthreads + pad: exercises clock_size > T *)
  sampler_ix : int;
}

let scenario_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* nthreads = int_range 2 6 in
    let* nlocks = int_range 0 4 in
    let* nlocs = int_range 1 8 in
    let* length = int_range 20 180 in
    let* atomics = bool in
    let* forkjoin = bool in
    let* cut_frac = oneofl [ 0.0; 0.1; 0.37; 0.5; 0.9; 1.0 ] in
    let* pad = int_bound 4 in
    let* sampler_ix = int_bound (List.length sampler_specs - 1) in
    return
      {
        seed;
        params = { Trace_gen.nthreads; nlocks; nlocs; length; atomics; forkjoin };
        cut_frac;
        pad;
        sampler_ix;
      })

let print_scenario s =
  Printf.sprintf "seed=%d threads=%d locks=%d locs=%d len=%d atomics=%b fj=%b cut=%g pad=%d sampler=%s"
    s.seed s.params.Trace_gen.nthreads s.params.Trace_gen.nlocks s.params.Trace_gen.nlocs
    s.params.Trace_gen.length s.params.Trace_gen.atomics s.params.Trace_gen.forkjoin
    s.cut_frac s.pad
    (fst (List.nth sampler_specs s.sampler_ix))

let scenario_arb = QCheck.make ~print:print_scenario scenario_gen

let run_full id config trace =
  let (module D : Detector.S) = Engine.detector id in
  let d = D.create config in
  Trace.iteri (fun i e -> D.handle d i e) trace;
  D.result d

(* Run the prefix, snapshot, push the snapshot through the .ftc container,
   restore, run the suffix.  Also checks snapshot determinism: the restored
   detector re-snapshots to the same bytes. *)
let run_cut id config trace ~cut =
  let (module D : Detector.S) = Engine.detector id in
  let d = D.create config in
  for i = 0 to cut - 1 do
    D.handle d i (Trace.get trace i)
  done;
  let snap = D.snapshot d in
  let cp =
    {
      Checkpoint.meta =
        {
          Checkpoint.engine = id;
          sampler = Sampler.name config.Detector.sampler;
          nthreads = config.Detector.nthreads;
          nlocks = config.Detector.nlocks;
          nlocs = config.Detector.nlocs;
          clock_size = config.Detector.clock_size;
          next_index = cut;
          byte_offset = -1;
        };
      detector = snap;
    }
  in
  let snap =
    match Checkpoint.of_string (Checkpoint.to_string cp) with
    | Ok cp' -> cp'.Checkpoint.detector
    | Error msg -> Alcotest.failf "container roundtrip failed: %s" msg
  in
  let d' = D.restore config snap in
  if not (String.equal (D.snapshot d') snap) then
    Alcotest.failf "%s: restore is not snapshot-stable at cut %d" (Engine.name id) cut;
  for i = cut to Trace.length trace - 1 do
    D.handle d' i (Trace.get trace i)
  done;
  D.result d'

let prop_prefix_equivalence s =
  let prng = Prng.create ~seed:s.seed in
  let trace = Trace_gen.random prng s.params in
  let n = Trace.length trace in
  let cut = Stdlib.min n (int_of_float (s.cut_frac *. float_of_int n)) in
  let _, mk_sampler = List.nth sampler_specs s.sampler_ix in
  List.for_all
    (fun id ->
      let sampler = mk_sampler () in
      let config =
        {
          Detector.nthreads = trace.Trace.nthreads;
          nlocks = trace.Trace.nlocks;
          nlocs = trace.Trace.nlocs;
          clock_size = trace.Trace.nthreads + s.pad;
          sampler;
        }
      in
      let full = run_full id config trace in
      let interrupted = run_cut id config trace ~cut in
      let same_races = full.Detector.races = interrupted.Detector.races in
      let same_metrics =
        Metrics.to_array full.Detector.metrics = Metrics.to_array interrupted.Detector.metrics
      in
      if not (same_races && same_metrics) then
        QCheck.Test.fail_reportf "%s diverges after restore at cut %d (races %b, metrics %b)"
          (Engine.name id) cut same_races same_metrics
      else true)
    engines

let prefix_equivalence_test =
  QCheck.Test.make ~name:"snapshot+suffix ≡ uninterrupted (all engines)" ~count:40
    scenario_arb prop_prefix_equivalence

(* --- .ftc loader fuzzing -------------------------------------------------- *)

(* A small but real checkpoint: SO with a stateful sampler over a random
   trace, snapshotted midway. *)
let sample_checkpoint_string =
  lazy
    (let prng = Prng.create ~seed:99 in
     let trace =
       Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 200 }
     in
     let config =
       {
         Detector.nthreads = trace.Trace.nthreads;
         nlocks = trace.Trace.nlocks;
         nlocs = trace.Trace.nlocs;
         clock_size = trace.Trace.nthreads;
         sampler = Sampler.cold_region ~threshold:2;
       }
     in
     let (module D : Detector.S) = Engine.detector Engine.So in
     let d = D.create config in
     for i = 0 to (Trace.length trace / 2) - 1 do
       D.handle d i (Trace.get trace i)
     done;
     Checkpoint.to_string
       {
         Checkpoint.meta =
           {
             Checkpoint.engine = Engine.So;
             sampler = Sampler.name config.Detector.sampler;
             nthreads = config.Detector.nthreads;
             nlocks = config.Detector.nlocks;
             nlocs = config.Detector.nlocs;
             clock_size = config.Detector.clock_size;
             next_index = Trace.length trace / 2;
             byte_offset = -1;
           };
         detector = D.snapshot d;
       })

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s was accepted" what

let test_fuzz_bit_flips () =
  let s = Lazy.force sample_checkpoint_string in
  (* roundtrip sanity first: the pristine string must load *)
  (match Checkpoint.of_string s with
  | Ok cp -> Alcotest.(check int) "engine survives roundtrip" 0
               (compare cp.Checkpoint.meta.Checkpoint.engine Engine.So)
  | Error msg -> Alcotest.failf "pristine checkpoint rejected: %s" msg);
  String.iteri
    (fun pos c ->
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code c lxor 1));
      expect_error
        (Printf.sprintf "bit flip at byte %d" pos)
        (Checkpoint.of_string (Bytes.to_string b)))
    s

let test_fuzz_truncation () =
  let s = Lazy.force sample_checkpoint_string in
  for len = 0 to String.length s - 1 do
    expect_error
      (Printf.sprintf "truncation to %d bytes" len)
      (Checkpoint.of_string (String.sub s 0 len))
  done

let test_fuzz_version () =
  let s = Lazy.force sample_checkpoint_string in
  List.iter
    (fun v ->
      let b = Bytes.of_string s in
      Bytes.set b 4 (Char.chr v);
      match Checkpoint.of_string (Bytes.to_string b) with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "version %d names the version" v)
          true
          (String.length msg > 0)
      | Ok _ -> Alcotest.failf "version byte %d accepted" v)
    [ 0; 2; 3; 127; 255 ]

let test_fuzz_random_bytes () =
  let prng = Prng.create ~seed:4242 in
  for _ = 1 to 500 do
    let len = Prng.int prng 64 in
    let b = Bytes.init len (fun _ -> Char.chr (Prng.int prng 256)) in
    expect_error "random bytes" (Checkpoint.of_string (Bytes.to_string b))
  done;
  (* random payloads behind a valid magic+version exercise the decoders *)
  for _ = 1 to 500 do
    let len = Prng.int prng 96 in
    let b = Bytes.init (5 + len) (fun _ -> Char.chr (Prng.int prng 256)) in
    Bytes.blit_string "FTCK\001" 0 b 0 5;
    expect_error "random payload" (Checkpoint.of_string (Bytes.to_string b))
  done

(* --- ordered-list regressions -------------------------------------------- *)

let test_ol_deep_copy_preserves_order () =
  let o = Ol.create 6 in
  Ol.set o 3 5;
  Ol.increment o 1 2;
  Ol.set o 4 1;
  Ol.set o 1 7;
  let c = Ol.deep_copy o in
  Alcotest.(check (list int)) "recency order preserved" (Ol.order o) (Ol.order c);
  for t = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "value %d preserved" t) (Ol.get o t) (Ol.get c t)
  done;
  Alcotest.(check bool) "copy invariants" true (Ol.check_invariants c)

let test_ol_deep_copy_does_not_alias () =
  let o = Ol.create 4 in
  Ol.set o 2 9;
  let order_before = Ol.order o in
  let c = Ol.deep_copy o in
  (* mutating the hand-off copy must not leak into the original *)
  Ol.set c 0 99;
  Ol.increment c 3 5;
  Alcotest.(check int) "original value intact" 0 (Ol.get o 0);
  Alcotest.(check int) "original value intact (3)" 0 (Ol.get o 3);
  Alcotest.(check (list int)) "original order intact" order_before (Ol.order o);
  (* and the other direction *)
  Ol.set o 1 4;
  Alcotest.(check int) "copy unaffected by original" 0 (Ol.get c 1)

let test_ol_snapshot_roundtrip_order () =
  let prng = Prng.create ~seed:31 in
  for n = 1 to 12 do
    let o = Ol.create n in
    for _ = 1 to 40 do
      let t = Prng.int prng n in
      if Prng.bernoulli prng ~p:0.5 then Ol.set o t (Prng.int prng 100)
      else Ol.increment o t (1 + Prng.int prng 5)
    done;
    let enc = Snap.Enc.create () in
    Ol.encode enc o;
    let dec = Snap.Dec.of_snap (Snap.Enc.to_snap enc) in
    let o' = Ol.decode dec ~size:n in
    Snap.Dec.finish dec;
    Alcotest.(check (list int))
      (Printf.sprintf "move-to-front order restored (n=%d)" n)
      (Ol.order o) (Ol.order o');
    for t = 0 to n - 1 do
      Alcotest.(check int) (Printf.sprintf "value %d/%d" t n) (Ol.get o t) (Ol.get o' t)
    done;
    Alcotest.(check bool) "invariants" true (Ol.check_invariants o')
  done

(* --- metrics field-drift guard -------------------------------------------- *)

(* The record is all-int, so its heap block has one field per counter; any
   field added without updating to_array/copy/add breaks one of these. *)
let test_metrics_arity_guard () =
  let m = Metrics.create () in
  Alcotest.(check int) "field_count matches the record's arity"
    (Obj.size (Obj.repr m)) Metrics.field_count;
  Alcotest.(check int) "to_array covers every field" Metrics.field_count
    (Array.length (Metrics.to_array m))

let test_metrics_copy_add_cover_all_fields () =
  let m = Metrics.create () in
  let r = Obj.repr m in
  for i = 0 to Metrics.field_count - 1 do
    Obj.set_field r i (Obj.repr (i + 1))
  done;
  let expected = Array.init Metrics.field_count (fun i -> i + 1) in
  Alcotest.(check (array int)) "to_array sees distinct values" expected (Metrics.to_array m);
  Alcotest.(check (array int)) "copy preserves every field" expected
    (Metrics.to_array (Metrics.copy m));
  let acc = Metrics.create () in
  Metrics.add ~into:acc m;
  Metrics.add ~into:acc m;
  Alcotest.(check (array int)) "add accumulates every field"
    (Array.map (fun v -> 2 * v) expected)
    (Metrics.to_array acc)

let test_metrics_of_array () =
  let arr = Array.init Metrics.field_count (fun i -> 7 * i) in
  (match Metrics.of_array arr with
  | Some m -> Alcotest.(check (array int)) "of_array inverts to_array" arr (Metrics.to_array m)
  | None -> Alcotest.fail "of_array rejected a correct arity");
  Alcotest.(check bool) "wrong arity rejected" true (Metrics.of_array [| 1; 2 |] = None)

(* --- online monitor roundtrip --------------------------------------------- *)

let online_trace =
  lazy
    (let prng = Prng.create ~seed:17 in
     Trace_gen.random prng
       { Trace_gen.default with Trace_gen.length = 600; nthreads = 4; forkjoin = true })

let feed_range monitor trace lo hi =
  for i = lo to hi - 1 do
    match Online.feed monitor (Trace.get trace i) with
    | Ok () -> ()
    | Error { Online.reason; _ } -> Alcotest.failf "event %d rejected: %s" i reason
  done

let test_online_snapshot_roundtrip () =
  let trace = Lazy.force online_trace in
  let n = Trace.length trace in
  let sampler = Sampler.cold_region ~threshold:2 in
  let dims t = (t.Trace.nthreads, t.Trace.nlocks, t.Trace.nlocs) in
  let nthreads, nlocks, nlocs = dims trace in
  let straight = Online.create ~engine:Engine.So ~sampler ~nthreads ~nlocks ~nlocs () in
  feed_range straight trace 0 n;
  let first = Online.create ~engine:Engine.So ~sampler ~nthreads ~nlocks ~nlocs () in
  feed_range first trace 0 (n / 3);
  let resumed =
    Online.restore ~engine:Engine.So ~sampler ~nthreads ~nlocks ~nlocs
      (Online.snapshot first)
  in
  Alcotest.(check int) "events_seen restored" (n / 3) (Online.events_seen resumed);
  feed_range resumed trace (n / 3) n;
  Alcotest.(check bool) "same races" true (Online.races straight = Online.races resumed);
  Alcotest.(check (array int)) "same metrics"
    (Metrics.to_array (Online.metrics straight))
    (Metrics.to_array (Online.metrics resumed))

let test_online_checkpoint_callback () =
  let trace = Lazy.force online_trace in
  let count = ref 0 in
  let monitor =
    Online.create ~engine:Engine.Su ~checkpoint_every:50
      ~on_checkpoint:(fun t -> incr count; ignore (Online.snapshot t))
      ~nthreads:trace.Trace.nthreads ~nlocks:trace.Trace.nlocks ~nlocs:trace.Trace.nlocs ()
  in
  let n = Trace.length trace in
  feed_range monitor trace 0 n;
  Alcotest.(check int) "one callback per interval" (n / 50) !count

let test_online_rejects_corrupt_snapshot () =
  let trace = Lazy.force online_trace in
  let monitor =
    Online.create ~engine:Engine.So ~nthreads:trace.Trace.nthreads
      ~nlocks:trace.Trace.nlocks ~nlocs:trace.Trace.nlocs ()
  in
  feed_range monitor trace 0 100;
  let s = Online.snapshot monitor in
  let truncated = String.sub s 0 (String.length s / 2) in
  match
    Online.restore ~engine:Engine.So ~nthreads:trace.Trace.nthreads
      ~nlocks:trace.Trace.nlocks ~nlocs:trace.Trace.nlocs truncated
  with
  | exception Snap.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated online snapshot accepted"

(* --- resumable .ftb analyses ---------------------------------------------- *)

let with_temp_ftb f =
  let prng = Prng.create ~seed:5 in
  let trace =
    Trace_gen.random prng
      { Trace_gen.default with
        Trace_gen.length = 3_000; nthreads = 4; nlocks = 3; nlocs = 8; forkjoin = true }
  in
  let path = Filename.temp_file "ftc_test" ".ftb" in
  Trace_binary.to_file path trace;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path trace)

let get_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "runner failed: %s" msg

let check_same_outcome name (a : Runner.outcome) (b : Runner.outcome) =
  Alcotest.(check bool) (name ^ ": same races") true
    (a.Runner.result.Detector.races = b.Runner.result.Detector.races);
  Alcotest.(check (array int)) (name ^ ": same metrics")
    (Metrics.to_array a.Runner.result.Detector.metrics)
    (Metrics.to_array b.Runner.result.Detector.metrics)

let test_runner_resume_equals_straight () =
  with_temp_ftb @@ fun path _trace ->
  let cp = Filename.temp_file "ftc_test" ".ftc" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists cp then Sys.remove cp) @@ fun () ->
  List.iter
    (fun engine ->
      let sampler = Sampler.bernoulli ~rate:0.4 ~seed:9 in
      let straight = get_ok (Runner.analyze_file ~engine ~sampler path) in
      let checkpointed =
        get_ok (Runner.analyze_file ~engine ~sampler ~checkpoint:cp ~checkpoint_every:1_000 path)
      in
      Alcotest.(check bool)
        (Engine.name engine ^ ": checkpoints written")
        true
        (checkpointed.Runner.checkpoints_written > 0);
      let resumed = get_ok (Runner.analyze_file ~engine ~sampler ~resume:cp path) in
      (match resumed.Runner.resumed_at with
      | Some k -> Alcotest.(check bool) (Engine.name engine ^ ": resumed midway") true (k > 0)
      | None ->
        Alcotest.failf "%s: did not resume (%s)" (Engine.name engine)
          (Option.value resumed.Runner.resume_error ~default:"?"));
      check_same_outcome (Engine.name engine) straight resumed)
    [ Engine.Djit; Engine.Fasttrack; Engine.Fasttrack_tc; Engine.St; Engine.Su; Engine.So ]

let test_runner_fallback_on_bad_checkpoint () =
  with_temp_ftb @@ fun path _trace ->
  let sampler = Sampler.bernoulli ~rate:0.4 ~seed:9 in
  let straight = get_ok (Runner.analyze_file ~engine:Engine.So ~sampler path) in
  let cp = Filename.temp_file "ftc_test" ".ftc" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists cp then Sys.remove cp) @@ fun () ->
  let good =
    get_ok
      (Runner.analyze_file ~engine:Engine.So ~sampler ~checkpoint:cp ~checkpoint_every:1_000
         path)
  in
  Alcotest.(check bool) "wrote checkpoints" true (good.Runner.checkpoints_written > 0);
  let valid = In_channel.with_open_bin cp In_channel.input_all in
  let try_resume ?sampler:(s = sampler) ?engine:(e = Engine.So) () =
    let o = get_ok (Runner.analyze_file ~engine:e ~sampler:s ~resume:cp path) in
    (match e with
    | Engine.So ->
      Alcotest.(check bool) "fell back" true (o.Runner.resume_error <> None);
      check_same_outcome "fallback" straight o
    | _ -> Alcotest.(check bool) "fell back" true (o.Runner.resume_error <> None));
    o
  in
  (* truncations at a few boundaries: never a wrong-answer resume *)
  List.iter
    (fun len ->
      Out_channel.with_open_bin cp (fun oc ->
          Out_channel.output_string oc (String.sub valid 0 len));
      ignore (try_resume ()))
    [ 0; 4; 5; 12; String.length valid / 2; String.length valid - 1 ];
  (* bit flip in the payload *)
  let flipped = Bytes.of_string valid in
  Bytes.set flipped (String.length valid / 2)
    (Char.chr (Char.code valid.[String.length valid / 2] lxor 0x10));
  Out_channel.with_open_bin cp (fun oc -> Out_channel.output_bytes oc flipped);
  ignore (try_resume ());
  (* restore the valid checkpoint: engine / sampler mismatches must fall back *)
  Out_channel.with_open_bin cp (fun oc -> Out_channel.output_string oc valid);
  ignore (try_resume ~engine:Engine.Su ());
  let o = get_ok (Runner.analyze_file ~engine:Engine.So ~sampler:Sampler.all ~resume:cp path) in
  Alcotest.(check bool) "sampler mismatch falls back" true (o.Runner.resume_error <> None)

let test_runner_trace_resume () =
  (* the in-memory path (textual traces): index-based skip, no byte offset *)
  let prng = Prng.create ~seed:23 in
  let trace =
    Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 2_000; nthreads = 3 }
  in
  let sampler = Sampler.adaptive ~base_rate:3 in
  let cp = Filename.temp_file "ftc_test" ".ftc" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists cp then Sys.remove cp) @@ fun () ->
  let straight = get_ok (Runner.analyze_trace ~engine:Engine.So ~sampler trace) in
  let checkpointed =
    get_ok (Runner.analyze_trace ~engine:Engine.So ~sampler ~checkpoint:cp ~checkpoint_every:700 trace)
  in
  Alcotest.(check bool) "wrote checkpoints" true (checkpointed.Runner.checkpoints_written > 0);
  let resumed = get_ok (Runner.analyze_trace ~engine:Engine.So ~sampler ~resume:cp trace) in
  Alcotest.(check bool) "resumed" true (resumed.Runner.resumed_at <> None);
  check_same_outcome "trace resume" straight resumed

let () =
  Alcotest.run "checkpoint"
    [
      ("prefix equivalence", [ QCheck_alcotest.to_alcotest prefix_equivalence_test ]);
      ( "ftc fuzzing",
        [
          Alcotest.test_case "bit flips all rejected" `Quick test_fuzz_bit_flips;
          Alcotest.test_case "truncation at every byte" `Quick test_fuzz_truncation;
          Alcotest.test_case "wrong version byte" `Quick test_fuzz_version;
          Alcotest.test_case "random bytes" `Quick test_fuzz_random_bytes;
        ] );
      ( "ordered list",
        [
          Alcotest.test_case "deep copy preserves order" `Quick test_ol_deep_copy_preserves_order;
          Alcotest.test_case "deep copy does not alias" `Quick test_ol_deep_copy_does_not_alias;
          Alcotest.test_case "snapshot restores order" `Quick test_ol_snapshot_roundtrip_order;
        ] );
      ( "metrics guard",
        [
          Alcotest.test_case "arity" `Quick test_metrics_arity_guard;
          Alcotest.test_case "copy/add cover all fields" `Quick
            test_metrics_copy_add_cover_all_fields;
          Alcotest.test_case "of_array" `Quick test_metrics_of_array;
        ] );
      ( "online",
        [
          Alcotest.test_case "snapshot roundtrip" `Quick test_online_snapshot_roundtrip;
          Alcotest.test_case "checkpoint callback" `Quick test_online_checkpoint_callback;
          Alcotest.test_case "corrupt snapshot rejected" `Quick
            test_online_rejects_corrupt_snapshot;
        ] );
      ( "resumable analyses",
        [
          Alcotest.test_case "resume ≡ straight run (.ftb seek)" `Quick
            test_runner_resume_equals_straight;
          Alcotest.test_case "bad checkpoints fall back, never lie" `Quick
            test_runner_fallback_on_bad_checkpoint;
          Alcotest.test_case "in-memory resume" `Quick test_runner_trace_resume;
        ] );
    ]
