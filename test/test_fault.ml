(* lib/fault — deterministic fault injection, and the recovery machinery it
   exists to exercise:

   - the fault layer itself: spec parsing, stateless per-(seed,point,lane,hit)
     schedule determinism, pass-through when disarmed or p=0, single-shot
     [arm_exact], io_len/torn_len contracts;
   - the REPORT byte-identity oracle: chaos schedules over shard.step /
     spsc.push across engines × samplers × K — every supervised run, however
     many workers crash and heal, must match the fault-free unsharded run
     exactly (races, merged metrics, rendered report);
   - a QCheck property: killing one random shard at one random message cut,
     with a random kind, for a random engine/sampler/K, changes nothing;
   - bounded restarts: a deterministic always-failing fault exhausts the
     budget and fails fast with [Sharded.Shard_failed];
   - checkpoint durability: a torn write leaves the previous .ftc intact and
     loadable;
   - the serve daemon: connect backoff against a slow-starting server,
     SIGTERM graceful shutdown (final checkpoint + metrics dump) followed by
     an exact resume, and a chaos-armed session whose REPORT still matches
     analyze. *)

module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Checkpoint = Ft_snapshot.Checkpoint
module Sharded = Ft_shard.Sharded
module Serve = Ft_shard.Serve
module Fault = Ft_fault.Fault

let with_disarm f = Fun.protect ~finally:Fault.disarm f

(* --- the fault layer itself ------------------------------------------------ *)

let test_parse () =
  (match Fault.parse "42" with
  | Ok c ->
    Alcotest.(check int) "seed" 42 c.Fault.seed;
    Alcotest.(check bool) "parsed configs log" true c.Fault.log
  | Error msg -> Alcotest.failf "plain seed rejected: %s" msg);
  (match Fault.parse "7:p=0.5,points=shard.step+spsc.push,kinds=exn+delay,max=3,delay=0.002" with
  | Ok c ->
    Alcotest.(check (float 1e-9)) "p" 0.5 c.Fault.prob;
    Alcotest.(check (option (list string)))
      "points"
      (Some [ "shard.step"; "spsc.push" ])
      c.Fault.points;
    Alcotest.(check bool) "kinds" true (c.Fault.kinds = Some [ Fault.Exn; Fault.Delay ]);
    Alcotest.(check (option int)) "max" (Some 3) c.Fault.max_fires;
    Alcotest.(check (float 1e-9)) "delay" 0.002 c.Fault.delay_s;
    (* the rendered spec reparses to the same config *)
    (match Fault.parse (Fault.spec_of_config c) with
    | Ok c' -> Alcotest.(check bool) "spec roundtrip" true (c = c')
    | Error msg -> Alcotest.failf "rendered spec rejected: %s" msg)
  | Error msg -> Alcotest.failf "full spec rejected: %s" msg);
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "bad spec %S accepted" bad
      | Error _ -> ())
    [ "x"; "1:p=2.0"; "1:kinds=nuke"; "1:max=-1"; "1:wat=1"; "1:points" ]

(* Whether the n-th hit of a point fires is a pure function of
   (seed, point, lane, hit): replaying the same hit sequence replays the
   same incidents, and a different seed gives a different schedule. *)
let test_schedule_deterministic () =
  with_disarm @@ fun () ->
  let drive () =
    for lane = 0 to 2 do
      for _ = 1 to 400 do
        try Fault.point ~lane ~supports:[ Fault.Exn ] "shard.step"
        with Fault.Injected _ -> ()
      done
    done;
    Fault.incidents ()
  in
  let c = { (Fault.default ~seed:123) with Fault.prob = 0.02 } in
  Fault.arm c;
  let first = drive () in
  Fault.arm c;
  let second = drive () in
  Alcotest.(check bool) "some faults fired" true (List.length first > 0);
  Alcotest.(check bool) "same seed, same incidents" true (first = second);
  Fault.arm { c with Fault.seed = 124 };
  let other = drive () in
  Alcotest.(check bool) "different seed, different schedule" true (first <> other)

let test_pass_through () =
  with_disarm @@ fun () ->
  (* disarmed: the checks counter does not even tick (counters reset on
     [arm], not on [disarm], so compare against a baseline) *)
  Fault.disarm ();
  let c0 = Fault.checks () in
  Fault.point "shard.step";
  Alcotest.(check int) "disarmed counts nothing" c0 (Fault.checks ());
  (* armed with p=0: every point is exercised, nothing fires *)
  Fault.arm { (Fault.default ~seed:1) with Fault.prob = 0.0 };
  for _ = 1 to 100 do
    Fault.point "shard.step";
    Alcotest.(check int) "io_len unchanged" 4096 (Fault.io_len "serve.recv" 4096);
    Alcotest.(check bool) "torn_len none" true (Fault.torn_len "checkpoint.write" 64 = None)
  done;
  Alcotest.(check int) "checks prove the points ran" 300 (Fault.checks ());
  Alcotest.(check int) "p=0 fires nothing" 0 (Fault.fired ())

let test_arm_exact () =
  with_disarm @@ fun () ->
  Fault.arm_exact ~lane:1 ~point:"shard.step" ~hit:3 Fault.Exn;
  let fired_at = ref [] in
  for hit = 1 to 6 do
    (* the scheduled lane *)
    (try Fault.point ~lane:1 ~supports:[ Fault.Exn ] "shard.step"
     with Fault.Injected _ -> fired_at := hit :: !fired_at);
    (* other lanes and points never fire *)
    Fault.point ~lane:0 ~supports:[ Fault.Exn ] "shard.step";
    Fault.point ~lane:1 ~supports:[ Fault.Exn ] "spsc.push"
  done;
  Alcotest.(check (list int)) "fired exactly once, at hit 3" [ 3 ] !fired_at;
  Alcotest.(check int) "fired counter" 1 (Fault.fired ())

(* --- the chaos oracle ------------------------------------------------------- *)

let chaos_trace =
  lazy
    (let prng = Prng.create ~seed:77 in
     Trace_gen.random prng
       {
         Trace_gen.nthreads = 4;
         nlocks = 3;
         nlocs = 12;
         length = 600;
         atomics = true;
         forkjoin = true;
       })

let config_for trace sampler =
  {
    Detector.nthreads = trace.Trace.nthreads;
    nlocks = trace.Trace.nlocks;
    nlocs = trace.Trace.nlocs;
    clock_size = trace.Trace.nthreads;
    sampler;
  }

let run_unsharded id config trace =
  let (module D : Detector.S) = Engine.detector id in
  let d = D.create config in
  Trace.iteri (fun i e -> D.handle d i e) trace;
  D.result d

let run_supervised ?(max_restarts = 16) ?snapshot_every id ~shards config trace =
  let sh = Sharded.create ~engine:id ~shards ~supervise:true ~max_restarts ?snapshot_every config in
  Fun.protect ~finally:(fun () -> Sharded.stop sh) @@ fun () ->
  Trace.iteri (fun i e -> Sharded.handle sh i e) trace;
  (Sharded.result sh, Sharded.restarts_total sh)

let same_result ~events a b =
  a.Detector.races = b.Detector.races
  && Metrics.to_array a.Detector.metrics = Metrics.to_array b.Detector.metrics
  && String.equal (Serve.report_text ~events a) (Serve.report_text ~events b)

(* Fault schedules × engines × samplers × K: every chaos run must end with
   state byte-identical to the fault-free run.  Small snapshot_every so
   recoveries exercise the restore-then-replay path, not just full replays. *)
let test_chaos_grid () =
  with_disarm @@ fun () ->
  let trace = Lazy.force chaos_trace in
  let events = Trace.length trace in
  let engines = Engine.all @ [ Engine.Eraser ] in
  let samplers =
    [
      ("all", Sampler.all);
      ("bernoulli", Sampler.bernoulli ~rate:0.3 ~seed:11);
      ("adaptive", Sampler.adaptive ~base_rate:4);
    ]
  in
  let total_fired = ref 0 and total_restarts = ref 0 in
  let cell = ref 0 in
  List.iter
    (fun id ->
      List.iter
        (fun (sname, sampler) ->
          let config = config_for trace sampler in
          Fault.disarm ();
          let expected = run_unsharded id config trace in
          List.iter
            (fun k ->
              incr cell;
              (* a fresh schedule per cell sweeps seeds too *)
              Fault.arm
                {
                  (Fault.default ~seed:(1000 + !cell)) with
                  Fault.prob = 0.01;
                  points = Some [ "shard.step"; "spsc.push" ];
                  kinds = Some [ Fault.Exn; Fault.Crash_domain; Fault.Delay ];
                  max_fires = Some 8;
                  delay_s = 0.0002;
                };
              let got, restarts = run_supervised id ~shards:k ~snapshot_every:128 config trace in
              total_fired := !total_fired + Fault.fired ();
              total_restarts := !total_restarts + restarts;
              Fault.disarm ();
              if not (same_result ~events expected got) then
                Alcotest.failf "chaos diverged: %s/%s K=%d seed=%d" (Engine.name id) sname
                  k (1000 + !cell))
            [ 1; 2; 4 ])
        samplers)
    engines;
  Alcotest.(check bool) "the sweep injected faults" true (!total_fired > 0);
  Alcotest.(check bool) "some faults killed workers" true (!total_restarts > 0)

(* Satellite property: killing one random shard at one random message cut,
   for a random engine × sampler × K, yields races and merged metrics
   identical to the unfaulted run. *)
let kill_samplers =
  [
    Sampler.all;
    Sampler.none;
    Sampler.bernoulli ~rate:0.3 ~seed:11;
    Sampler.every_nth 3;
    Sampler.cold_region ~threshold:3;
    Sampler.adaptive ~base_rate:4;
  ]

let kill_engines = Engine.all @ [ Engine.Eraser ]

type kill_case = {
  engine_ix : int;
  sampler_ix : int;
  k : int;
  lane : int;
  cut : int;
  crash : bool;  (* Crash_domain (domain dies) vs Exn (handler raises) *)
}

let kill_gen =
  QCheck.Gen.(
    let* engine_ix = int_bound (List.length kill_engines - 1) in
    let* sampler_ix = int_bound (List.length kill_samplers - 1) in
    let* k = int_range 1 4 in
    let* lane = int_bound (k - 1) in
    let* cut = int_range 1 400 in
    let* crash = bool in
    return { engine_ix; sampler_ix; k; lane; cut; crash })

let print_kill c =
  Printf.sprintf "engine=%s sampler#%d K=%d lane=%d cut=%d kind=%s"
    (Engine.name (List.nth kill_engines c.engine_ix))
    c.sampler_ix c.k c.lane c.cut
    (if c.crash then "crash_domain" else "exn")

let kill_one_shard_test =
  QCheck.Test.make ~count:30 ~name:"killing any shard at any cut changes nothing"
    (QCheck.make ~print:print_kill kill_gen) (fun c ->
      with_disarm @@ fun () ->
      let trace = Lazy.force chaos_trace in
      let id = List.nth kill_engines c.engine_ix in
      let config = config_for trace (List.nth kill_samplers c.sampler_ix) in
      Fault.disarm ();
      let expected = run_unsharded id config trace in
      Fault.arm_exact ~lane:c.lane ~point:"shard.step" ~hit:c.cut
        (if c.crash then Fault.Crash_domain else Fault.Exn);
      let got, _ = run_supervised id ~shards:c.k ~snapshot_every:64 config trace in
      Fault.disarm ();
      same_result ~events:(Trace.length trace) expected got)

let test_restart_budget_fails_fast () =
  with_disarm @@ fun () ->
  let trace = Lazy.force chaos_trace in
  let config = config_for trace Sampler.all in
  Fault.arm
    {
      (Fault.default ~seed:5) with
      Fault.prob = 1.0;
      points = Some [ "shard.step" ];
      kinds = Some [ Fault.Exn ];
    };
  let sh = Sharded.create ~engine:Engine.So ~shards:2 ~supervise:true ~max_restarts:2 config in
  let outcome =
    try
      Trace.iteri (fun i e -> Sharded.handle sh i e) trace;
      Sharded.flush sh;
      None
    with Sharded.Shard_failed msg -> Some msg
  in
  Fault.disarm ();
  (try Sharded.stop sh with Sharded.Shard_failed _ -> ());
  match outcome with
  | None -> Alcotest.fail "an always-failing shard must exhaust its restart budget"
  | Some msg ->
    let contains ~sub s =
      let n = String.length sub and m = String.length s in
      let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool)
      "diagnostic names the budget" true
      (contains ~sub:"restart budget" msg)

(* --- checkpoint durability --------------------------------------------------- *)

let sample_checkpoint payload =
  {
    Checkpoint.meta =
      {
        Checkpoint.engine = Engine.So;
        sampler = "all";
        nthreads = 2;
        nlocks = 1;
        nlocs = 4;
        clock_size = 2;
        next_index = 10;
        byte_offset = -1;
      };
    detector = payload;
  }

let test_torn_write_keeps_previous () =
  with_disarm @@ fun () ->
  let path = Filename.temp_file "ftfault" ".ftc" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
  @@ fun () ->
  Checkpoint.save path (sample_checkpoint "generation-A");
  Fault.arm_exact ~point:"checkpoint.write" ~hit:1 Fault.Torn_write;
  (match Checkpoint.save path (sample_checkpoint "generation-B") with
  | () -> Alcotest.fail "torn write must raise"
  | exception Fault.Injected _ -> ());
  Fault.disarm ();
  (match Checkpoint.load path with
  | Ok cp ->
    Alcotest.(check string) "previous checkpoint survives the torn write" "generation-A"
      cp.Checkpoint.detector
  | Error msg -> Alcotest.failf "previous checkpoint unreadable after torn write: %s" msg);
  (* and with the fault gone, the overwrite goes through *)
  Checkpoint.save path (sample_checkpoint "generation-B");
  match Checkpoint.load path with
  | Ok cp -> Alcotest.(check string) "clean save lands" "generation-B" cp.Checkpoint.detector
  | Error msg -> Alcotest.failf "clean save unreadable: %s" msg

(* --- the serve daemon --------------------------------------------------------- *)

let dir_counter = ref 0

let temp_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftfault-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let server_config ?checkpoint_dir ?resume_dir ?metrics_json ?chaos ~engine ~shards ~sampler
    socket =
  {
    Serve.listen = Serve.Unix_path socket;
    engine;
    shards;
    sampler;
    clock_size = None;
    checkpoint_dir;
    resume_dir;
    checkpoint_every = Serve.default_checkpoint_every;
    max_parked = Serve.default_max_parked;
    backlog = Serve.default_backlog;
    ready_file = None;
    heartbeat_s = None;
    metrics_json;
    max_restarts = Serve.default_max_restarts;
    chaos;
  }

let start_server ?(delay_s = 0.0) cfg =
  match Unix.fork () with
  | 0 ->
    (try
       if delay_s > 0.0 then Unix.sleepf delay_s;
       Serve.run cfg
     with exn ->
       Printf.eprintf "server died: %s\n%!" (Printexc.to_string exn);
       Unix._exit 1);
    Unix._exit 0
  | pid -> pid

let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap pid

let get_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s failed: %s" what msg

let sample_trace ~seed ~length =
  let prng = Prng.create ~seed in
  Trace_gen.random prng
    {
      Trace_gen.nthreads = 4;
      nlocks = 3;
      nlocs = 10;
      length;
      atomics = true;
      forkjoin = true;
    }

let slices trace ~batch =
  let n = Trace.length trace in
  let rec go base acc =
    if base >= n then List.rev acc
    else begin
      let len = Stdlib.min batch (n - base) in
      let sub =
        Trace.make ~nthreads:trace.Trace.nthreads ~nlocks:trace.Trace.nlocks
          ~nlocs:trace.Trace.nlocs
          (Array.init len (fun i -> Trace.get trace (base + i)))
      in
      go (base + len) ((base, sub) :: acc)
    end
  in
  go 0 []

let expected_report ~engine ~sampler trace =
  Serve.report_text ~events:(Trace.length trace) (Engine.run engine ~sampler trace)

(* The backoff loop must tolerate a server that takes a while to bind, and
   report how hard it had to try. *)
let test_connect_backoff () =
  with_temp_dir @@ fun dir ->
  let socket = Filename.concat dir "serve.sock" in
  let cfg = server_config ~engine:Engine.So ~shards:1 ~sampler:Sampler.all socket in
  let pid = start_server ~delay_s:0.4 cfg in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd, attempts = Serve.connect_stats ~deadline_s:15.0 ~seed:3 (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  Alcotest.(check bool)
    (Printf.sprintf "slow bind forces retries (attempts=%d)" attempts)
    true (attempts > 1);
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* SIGTERM is a graceful shutdown: the daemon drains, writes a final
   checkpoint set and the metrics dump, and a successor resumes exactly. *)
let test_sigterm_graceful_then_resume () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.Su and sampler = Sampler.bernoulli ~rate:0.4 ~seed:9 in
  let trace = sample_trace ~seed:21 ~length:1_500 in
  let expected = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let ckpt = Filename.concat dir "ckpt" in
  let metrics_json = Filename.concat dir "metrics.json" in
  Unix.mkdir ckpt 0o700;
  Fun.protect ~finally:(fun () -> rm_rf ckpt) @@ fun () ->
  let batches = Array.of_list (slices trace ~batch:250) in
  let cfg =
    server_config ~engine ~shards:3 ~sampler ~checkpoint_dir:ckpt ~metrics_json socket
  in
  let pid = start_server cfg in
  let status =
    Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
    let fd = Serve.connect (Serve.Unix_path socket) in
    Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
    for i = 0 to 2 do
      let base, sub = batches.(i) in
      ignore (get_ok "pre-SIGTERM batch" (Serve.send_batch fd ~base sub))
    done;
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    status
  in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "SIGTERM exit code %d (want 0)" n
  | _ -> Alcotest.fail "SIGTERM did not produce a clean exit");
  Alcotest.(check bool) "metrics dump written on SIGTERM" true (Sys.file_exists metrics_json);
  Alcotest.(check bool)
    "final checkpoint set written on SIGTERM" true
    (Sys.file_exists (Filename.concat ckpt "router.ftc"));
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (* successor: resume, blindly resend everything, expect the exact report *)
  let pid =
    start_server
      (server_config ~engine ~shards:3 ~sampler ~checkpoint_dir:ckpt ~resume_dir:ckpt socket)
  in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  let base0, sub0 = batches.(0) in
  let total = get_ok "resend 0" (Serve.send_batch fd ~base:base0 sub0) in
  Alcotest.(check int) "resumed from the SIGTERM checkpoint" 750 total;
  Array.iteri
    (fun i (base, sub) ->
      if i > 0 then ignore (get_ok "resend" (Serve.send_batch fd ~base sub)))
    batches;
  let report = get_ok "post-resume report" (Serve.fetch_report fd) in
  Alcotest.(check string) "SIGTERM + resume ≡ analyze" expected report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* A chaos-armed daemon — worker crashes, ring delays, recv hiccups, torn
   checkpoint writes — still answers with the exact report. *)
let test_serve_with_chaos () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.3 ~seed:5 in
  let trace = sample_trace ~seed:31 ~length:1_500 in
  let expected = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let ckpt = Filename.concat dir "ckpt" in
  Unix.mkdir ckpt 0o700;
  Fun.protect ~finally:(fun () -> rm_rf ckpt) @@ fun () ->
  let chaos =
    match
      Fault.parse
        "11:p=0.004,points=shard.step+spsc.push+serve.recv+checkpoint.write,kinds=exn+crash_domain+delay+torn_write,delay=0.0002,max=8"
    with
    | Ok c -> c
    | Error msg -> Alcotest.failf "chaos spec rejected: %s" msg
  in
  let cfg = server_config ~engine ~shards:3 ~sampler ~checkpoint_dir:ckpt ~chaos socket in
  let pid = start_server cfg in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  List.iter
    (fun (base, sub) -> ignore (get_ok "chaos batch" (Serve.send_batch fd ~base sub)))
    (slices trace ~batch:200);
  let report = get_ok "chaos report" (Serve.fetch_report fd) in
  Alcotest.(check string) "chaos serve ≡ analyze" expected report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

let () =
  Alcotest.run "fault"
    [
      ( "layer",
        [
          Alcotest.test_case "--chaos spec parsing" `Quick test_parse;
          Alcotest.test_case "schedule is a pure function of the seed" `Quick
            test_schedule_deterministic;
          Alcotest.test_case "pass-through when disarmed or p=0" `Quick test_pass_through;
          Alcotest.test_case "arm_exact fires once at the named hit" `Quick test_arm_exact;
        ] );
      (* the serve group forks daemons, and [Unix.fork] is only legal while
         this process has never spawned a domain — so it must run before the
         oracle group, whose supervised runs spawn shard domains in-process *)
      ( "serve",
        [
          Alcotest.test_case "connect backs off against a slow server" `Quick
            test_connect_backoff;
          Alcotest.test_case "SIGTERM: graceful shutdown then exact resume" `Quick
            test_sigterm_graceful_then_resume;
          Alcotest.test_case "chaos-armed daemon still reports exactly" `Quick
            test_serve_with_chaos;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "chaos grid: schedules × engines × samplers × K" `Quick
            test_chaos_grid;
          QCheck_alcotest.to_alcotest kill_one_shard_test;
          Alcotest.test_case "restart budget fails fast" `Quick
            test_restart_budget_fails_fast;
        ] );
      ( "durability",
        [
          Alcotest.test_case "torn write keeps the previous checkpoint" `Quick
            test_torn_write_keeps_previous;
        ] );
    ]
