(* racedet route — the cluster router:

   - byte-identity grid: a K-worker cluster (each worker a domain-sharded
     serve daemon in its own process) produces REPORTs byte-identical to the
     in-process unsharded analysis, for every engine and across samplers
     with per-location state;
   - out-of-order and duplicate client batches over TCP transport;
   - worker death mid-ingest (chaos-injected SIGKILL and a real external
     SIGKILL via the pid file), recovered through .ftc checkpoint resume +
     SEQ + log replay — with checkpointing on and off;
   - QCheck property: a single MIGRATE at a random cut point, of a random
     worker, preserves REPORT bytes;
   - Chash units: determinism, coverage, rough balance, K→K+1 stability.

   The router forks worker processes and spawns no domains itself; this
   parent likewise only forks, so the whole suite is fork-safe. *)

module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Serve = Ft_shard.Serve
module Router = Ft_cluster.Router
module Chash = Ft_cluster.Chash
module Fault = Ft_fault.Fault

(* The crash tests write into sockets whose router has just been killed —
   without this the default SIGPIPE disposition kills the test runner. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let dir_counter = ref 0

let temp_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftcluster-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o700;
  d

(* cluster run dirs nest checkpoint directories *)
let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let router_config ?(workers = 2) ?(worker_shards = 2) ?(worker_tcp = false)
    ?(checkpoint = true) ?(window = Router.default_window) ?(wal = true)
    ?(resume = false) ?(state_every = Router.default_state_every) ~engine ~sampler
    ~dir listen =
  {
    Router.listen;
    workers;
    worker_shards;
    engine;
    sampler;
    clock_size = None;
    dir = Filename.concat dir "run";
    worker_tcp;
    checkpoint;
    max_parked = Serve.default_max_parked;
    backlog = Serve.default_backlog;
    ready_file = None;
    heartbeat_s = None;
    metrics_json = None;
    max_respawns = Router.default_max_respawns;
    chaos = None;
    window;
    wal;
    resume;
    state_every;
  }

(* [arm] runs in the router child before the router starts — how a test
   installs a single-shot chaos injection ([Fault.arm_exact]) that the
   forked worker processes then inherit but never hit. *)
let start_router ?(arm = fun () -> ()) cfg =
  match Unix.fork () with
  | 0 ->
    (try
       arm ();
       Router.run cfg
     with exn ->
       Printf.eprintf "router died: %s\n%!" (Printexc.to_string exn);
       Unix._exit 1);
    Unix._exit 0
  | pid -> pid

let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap pid

let get_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s failed: %s" what msg

let sample_trace ?(nthreads = 4) ~seed ~length () =
  let prng = Prng.create ~seed in
  Trace_gen.random prng
    {
      Trace_gen.nthreads;
      nlocks = 3;
      nlocs = 16;
      length;
      atomics = true;
      forkjoin = true;
    }

let slices trace ~batch =
  let n = Trace.length trace in
  let rec go base acc =
    if base >= n then List.rev acc
    else begin
      let len = Stdlib.min batch (n - base) in
      let sub =
        Trace.make ~nthreads:trace.Trace.nthreads ~nlocks:trace.Trace.nlocks
          ~nlocs:trace.Trace.nlocs
          (Array.init len (fun i -> Trace.get trace (base + i)))
      in
      go (base + len) ((base, sub) :: acc)
    end
  in
  go 0 []

let expected_report ~engine ~sampler trace =
  Serve.report_text ~events:(Trace.length trace) (Engine.run engine ~sampler trace)

(* Run one cluster session: start a router, stream the batches (already
   (base, sub) pairs, any order), fetch the REPORT, shut down cleanly.
   [mid] runs after [mid_after] sends — kill/migrate hooks. *)
let cluster_report ?arm ?(mid = fun _fd -> ()) ?(mid_after = max_int) ~cfg ~socket batches =
  let pid = start_router ?arm cfg in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect ~deadline_s:60.0 (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  List.iteri
    (fun i (base, sub) ->
      if i = mid_after then mid fd;
      ignore (get_ok "send_batch" (Serve.send_batch ~deadline_s:60.0 fd ~base sub)))
    batches;
  let report = get_ok "fetch_report" (Serve.fetch_report ~deadline_s:60.0 fd) in
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid;
  report

(* --- byte-identity grid ------------------------------------------------------ *)

(* Every engine at K=2; the paper's headline engines across K∈{1,4} and the
   samplers whose correctness depends on whole-location partitioning
   (per-location state: cold_region).  Each worker is itself domain-sharded
   (worker_shards=2), so the grid also covers cluster-over-Sharded. *)
let test_identity_grid () =
  with_temp_dir @@ fun dir ->
  let trace = sample_trace ~seed:7 ~length:900 () in
  let run i ~engine ~sampler ~workers =
    let sub = Filename.concat dir (string_of_int i) in
    Unix.mkdir sub 0o700;
    let socket = Filename.concat sub "route.sock" in
    let cfg =
      router_config ~workers ~worker_shards:2 ~engine ~sampler ~dir:sub
        (Serve.Unix_path socket)
    in
    let report = cluster_report ~cfg ~socket (slices trace ~batch:200) in
    Alcotest.(check string)
      (Printf.sprintf "engine %s, K=%d ≡ analyze" (Engine.name engine) workers)
      (expected_report ~engine ~sampler trace)
      report
  in
  let i = ref 0 in
  let bern = Sampler.bernoulli ~rate:0.3 ~seed:11 in
  List.iter
    (fun engine ->
      incr i;
      run !i ~engine ~sampler:bern ~workers:2)
    Engine.all;
  List.iter
    (fun engine ->
      List.iter
        (fun workers ->
          List.iter
            (fun sampler ->
              incr i;
              run !i ~engine ~sampler ~workers)
            [ Sampler.all; Sampler.cold_region ~threshold:2 ])
        [ 1; 4 ])
    [ Engine.So; Engine.O1; Engine.O1u ]

(* --- TCP transport, out-of-order and duplicate batches ----------------------- *)

let test_tcp_out_of_order_duplicates () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.4 ~seed:3 in
  let trace = sample_trace ~seed:13 ~length:1_200 () in
  let ready = Filename.concat dir "route.addr" in
  let cfg =
    {
      (router_config ~workers:2 ~worker_tcp:true ~engine ~sampler ~dir
         (Serve.Tcp ("127.0.0.1", 0)))
      with
      Router.ready_file = Some ready;
    }
  in
  let pid = start_router cfg in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let rec wait_ready tries =
    if Sys.file_exists ready then ()
    else if tries = 0 then Alcotest.failf "router never published %s" ready
    else begin
      ignore (Unix.select [] [] [] 0.05);
      wait_ready (tries - 1)
    end
  in
  wait_ready 200;
  let addr = get_ok "read_addr_file" (Serve.read_addr_file ready) in
  (match addr with
  | Serve.Tcp (_, port) -> Alcotest.(check bool) "ephemeral port bound" true (port > 0)
  | Serve.Unix_path _ -> Alcotest.fail "expected a TCP address in the ready file");
  let fd = Serve.connect ~deadline_s:60.0 addr in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  let batches = slices trace ~batch:150 in
  (* odd batches first (they park), then evens (they drain), then every
     third again as a duplicate (idempotent skip) *)
  let scrambled =
    List.filteri (fun i _ -> i mod 2 = 1) batches
    @ List.filteri (fun i _ -> i mod 2 = 0) batches
    @ List.filteri (fun i _ -> i mod 3 = 0) batches
  in
  List.iter
    (fun (base, sub) ->
      ignore (get_ok "send_batch" (Serve.send_batch ~deadline_s:60.0 fd ~base sub)))
    scrambled;
  let report = get_ok "fetch_report" (Serve.fetch_report ~deadline_s:60.0 fd) in
  Alcotest.(check string) "TCP cluster, scrambled + duplicates ≡ analyze"
    (expected_report ~engine ~sampler trace)
    report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* --- worker death mid-ingest -------------------------------------------------- *)

(* Chaos-injected: the router SIGKILLs worker 1 at its 3rd flush, respawns
   it against its checkpoints, replays the unacknowledged suffix. *)
let test_chaos_worker_crash ~checkpoint () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.3 ~seed:17 in
  let trace = sample_trace ~seed:19 ~length:1_000 () in
  let socket = Filename.concat dir "route.sock" in
  let cfg =
    router_config ~workers:2 ~checkpoint ~engine ~sampler ~dir (Serve.Unix_path socket)
  in
  let arm () = Fault.arm_exact ~lane:1 ~point:"cluster.worker_crash" ~hit:3 Fault.Exn in
  let report = cluster_report ~arm ~cfg ~socket (slices trace ~batch:120) in
  Alcotest.(check string)
    (Printf.sprintf "chaos worker kill (checkpoint=%b) ≡ analyze" checkpoint)
    (expected_report ~engine ~sampler trace)
    report

(* External SIGKILL via the advertised pid file — the path a CI smoke or an
   operator takes; the router discovers the death at the next send and
   recovers through SEQ + replay. *)
let test_external_sigkill () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.O1 and sampler = Sampler.bernoulli ~rate:0.5 ~seed:23 in
  let trace = sample_trace ~seed:29 ~length:1_000 () in
  let socket = Filename.concat dir "route.sock" in
  let cfg = router_config ~workers:2 ~engine ~sampler ~dir (Serve.Unix_path socket) in
  let kill_worker _fd =
    let pidfile = Filename.concat (Filename.concat dir "run") "worker-0.pid" in
    let text = In_channel.with_open_bin pidfile In_channel.input_all in
    let wpid = int_of_string (String.trim text) in
    Unix.kill wpid Sys.sigkill;
    (* let it die before the next batch races the kill *)
    ignore (Unix.select [] [] [] 0.05)
  in
  let report =
    cluster_report ~mid:kill_worker ~mid_after:4 ~cfg ~socket (slices trace ~batch:120)
  in
  Alcotest.(check string) "external worker SIGKILL ≡ analyze"
    (expected_report ~engine ~sampler trace)
    report

(* --- MIGRATE property --------------------------------------------------------- *)

(* Any single migration — any worker, at any cut point in the stream —
   preserves REPORT bytes: flush → graceful worker shutdown (final .ftc) →
   fresh process resumes from the checkpoint → SEQ → empty replay. *)
let migrate_property =
  let trace = sample_trace ~seed:37 ~length:700 () in
  let batches = slices trace ~batch:100 in
  let nbatches = List.length batches in
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.35 ~seed:41 in
  let expected = expected_report ~engine ~sampler trace in
  let gen = QCheck.Gen.(pair (int_range 0 nbatches) (int_range 0 2)) in
  let arb =
    QCheck.make ~print:(fun (cut, w) -> Printf.sprintf "cut=%d worker=%d" cut w) gen
  in
  QCheck.Test.make ~name:"single MIGRATE at a random cut preserves REPORT bytes"
    ~count:4 arb
    (fun (cut, w) ->
      let dir = temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let socket = Filename.concat dir "route.sock" in
      let cfg =
        router_config ~workers:3 ~worker_shards:1 ~engine ~sampler ~dir
          (Serve.Unix_path socket)
      in
      let mid fd = get_ok "migrate" (Serve.migrate ~deadline_s:60.0 fd w) in
      let report = cluster_report ~mid ~mid_after:cut ~cfg ~socket batches in
      if report <> expected then
        QCheck.Test.fail_reportf "REPORT diverged after migrating worker %d at cut %d" w
          cut;
      true)

(* --- router crash + resume ---------------------------------------------------- *)

(* Kill the router itself on the WAL durability edge (the [router.crash]
   fault point: the batch is appended + fsynced but never acknowledged,
   then [_exit 137] — the worst cut a SIGKILL can land on), restart it in
   the same directory with [resume], blindly resend the whole stream and
   return the final REPORT.  Phase-1 sends tolerate errors: the crash
   closes the connection mid-protocol by design.  Phase 2 arms a chaos
   worker kill, so recovery-under-recovery is exercised too. *)
let killed_router_report ?(crash_hit = 3) ?(arm2 = fun () -> ()) ~cfg ~socket batches =
  let arm () = Fault.arm_exact ~point:"router.crash" ~hit:crash_hit Fault.Exn in
  let pid = start_router ~arm cfg in
  (try
     let fd = Serve.connect ~deadline_s:60.0 (Serve.Unix_path socket) in
     Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
     List.iter
       (fun (base, sub) -> ignore (Serve.send_batch ~deadline_s:10.0 fd ~base sub))
       batches
   with _ -> ());
  reap pid;
  let cfg = { cfg with Router.resume = true } in
  let pid = start_router ~arm:arm2 cfg in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect ~deadline_s:60.0 (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  List.iter
    (fun (base, sub) ->
      ignore (get_ok "blind resend" (Serve.send_batch ~deadline_s:60.0 fd ~base sub)))
    batches;
  let report = get_ok "fetch_report" (Serve.fetch_report ~deadline_s:60.0 fd) in
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid;
  report

(* Every engine survives a router SIGKILL + resume at K=2; the headline
   engines (So and the O(1)-samples family) across K∈{1,2,4}.  The resumed
   router's workers are chaos-armed (worker 0 dies at its 2nd flush), so
   the resume path's own worker recovery runs under fire. *)
let test_router_kill_resume_grid () =
  with_temp_dir @@ fun dir ->
  let trace = sample_trace ~seed:43 ~length:400 () in
  let batches = slices trace ~batch:100 in
  let i = ref 0 in
  let run ~engine ~sampler ~workers =
    incr i;
    let sub = Filename.concat dir (string_of_int !i) in
    Unix.mkdir sub 0o700;
    let socket = Filename.concat sub "route.sock" in
    let cfg =
      router_config ~workers ~worker_shards:1 ~engine ~sampler ~dir:sub
        (Serve.Unix_path socket)
    in
    let arm2 () = Fault.arm_exact ~lane:0 ~point:"cluster.worker_crash" ~hit:2 Fault.Exn in
    let report = killed_router_report ~arm2 ~cfg ~socket batches in
    Alcotest.(check string)
      (Printf.sprintf "engine %s, K=%d: SIGKILL+resume ≡ analyze" (Engine.name engine)
         workers)
      (expected_report ~engine ~sampler trace)
      report
  in
  let bern = Sampler.bernoulli ~rate:0.3 ~seed:47 in
  List.iter (fun engine -> run ~engine ~sampler:bern ~workers:2) Engine.all;
  List.iter
    (fun engine ->
      List.iter (fun workers -> run ~engine ~sampler:bern ~workers) [ 1; 4 ])
    [ Engine.So; Engine.O1; Engine.O1u ]

(* Property: the router crash can land on ANY batch, with router-state
   checkpoints on or off (off ⇒ resume degrades to a full WAL replay), and
   the resumed report still matches the uninterrupted analysis. *)
let router_kill_property =
  let trace = sample_trace ~seed:53 ~length:600 () in
  let batches = slices trace ~batch:75 in
  let nbatches = List.length batches in
  let engine = Engine.O1u and sampler = Sampler.bernoulli ~rate:0.35 ~seed:59 in
  let expected = expected_report ~engine ~sampler trace in
  let gen = QCheck.Gen.(pair (int_range 1 nbatches) bool) in
  let arb =
    QCheck.make
      ~print:(fun (cut, ckpt) -> Printf.sprintf "crash at batch %d, state-ckpt=%b" cut ckpt)
      gen
  in
  QCheck.Test.make ~name:"router SIGKILL at a random batch + resume preserves REPORT"
    ~count:4 arb
    (fun (cut, ckpt) ->
      let dir = temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let socket = Filename.concat dir "route.sock" in
      let cfg =
        router_config ~workers:2 ~worker_shards:1 ~checkpoint:ckpt
          ~state_every:(if ckpt then 3 else 0)
          ~engine ~sampler ~dir (Serve.Unix_path socket)
      in
      let report = killed_router_report ~crash_hit:cut ~cfg ~socket batches in
      if report <> expected then
        QCheck.Test.fail_reportf "REPORT diverged after crash at batch %d (state-ckpt=%b)"
          cut ckpt;
      true)

(* --- RESIZE property ---------------------------------------------------------- *)

(* A live ring resize — grow or shrink, at any cut point in the stream —
   preserves REPORT bytes: quiesce → WAL Resize → rebuild the per-worker
   logs under the new ring → stream to a fresh worker epoch. *)
let resize_property =
  let trace = sample_trace ~seed:61 ~length:600 () in
  let batches = slices trace ~batch:75 in
  let nbatches = List.length batches in
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.35 ~seed:67 in
  let expected = expected_report ~engine ~sampler trace in
  let gen = QCheck.Gen.(pair (int_range 0 nbatches) (oneofl [ 1; -1 ])) in
  let arb =
    QCheck.make ~print:(fun (cut, d) -> Printf.sprintf "cut=%d delta=%+d" cut d) gen
  in
  QCheck.Test.make ~name:"single RESIZE at a random cut preserves REPORT bytes" ~count:4
    arb
    (fun (cut, delta) ->
      let dir = temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let socket = Filename.concat dir "route.sock" in
      let cfg =
        router_config ~workers:2 ~worker_shards:1 ~engine ~sampler ~dir
          (Serve.Unix_path socket)
      in
      let mid fd =
        let k = get_ok "resize" (Serve.resize ~deadline_s:60.0 fd delta) in
        if k <> 2 + delta then QCheck.Test.fail_reportf "RESIZE echoed %d" k
      in
      let report = cluster_report ~mid ~mid_after:cut ~cfg ~socket batches in
      if report <> expected then
        QCheck.Test.fail_reportf "REPORT diverged after RESIZE %+d at cut %d" delta cut;
      true)

(* --- pipelining window -------------------------------------------------------- *)

(* The in-flight window is a pure throughput knob: window=1 (PR 9's
   lockstep) and a deep window produce byte-identical reports. *)
let test_window_identity () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.3 ~seed:71 in
  let trace = sample_trace ~seed:73 ~length:800 () in
  let expected = expected_report ~engine ~sampler trace in
  List.iter
    (fun window ->
      let sub = Filename.concat dir (Printf.sprintf "w%d" window) in
      Unix.mkdir sub 0o700;
      let socket = Filename.concat sub "route.sock" in
      let cfg =
        router_config ~workers:3 ~worker_shards:1 ~window ~engine ~sampler ~dir:sub
          (Serve.Unix_path socket)
      in
      let report = cluster_report ~cfg ~socket (slices trace ~batch:64) in
      Alcotest.(check string)
        (Printf.sprintf "window=%d ≡ analyze" window)
        expected report)
    [ 1; 3; 16 ]

(* --- WAL robustness ----------------------------------------------------------- *)

module Wal = Ft_cluster.Wal
module Event = Ft_trace.Event

(* Build a small real WAL (Session + Events + Resize records), then attack
   it: truncation at EVERY byte length and a flip of EVERY byte must leave
   {!Wal.decode_all} total (no exception) with a valid prefix that is
   exactly the records whose frames survived intact — the .ftc fuzzing
   discipline applied to the log. *)
let test_wal_fuzz () =
  with_temp_dir @@ fun dir ->
  let path = Wal.path ~dir in
  let trace = sample_trace ~seed:79 ~length:40 () in
  let records =
    Wal.Session
      {
        nthreads = trace.Trace.nthreads;
        nlocks = trace.Trace.nlocks;
        nlocs = trace.Trace.nlocs;
        engine = "so";
        sampler = "bernoulli(p=0.30,seed=7)";
        workers = 2;
      }
    :: Wal.Resize 3
    :: List.map
         (fun (base, sub) ->
           Wal.Events (base, Array.init (Trace.length sub) (Trace.get sub)))
         (slices trace ~batch:10)
  in
  let w = Wal.open_append path in
  List.iter (fun r -> ignore (Wal.append w r)) records;
  Wal.sync w;
  Wal.close w;
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let whole, good = Wal.decode_all bytes in
  Alcotest.(check int) "all records decode" (List.length records) (List.length whole);
  Alcotest.(check int) "full file is the valid prefix" (String.length bytes) good;
  let ends = List.map snd whole in
  (* truncation at every byte: the valid prefix is exactly the records
     whose END offset fits *)
  for len = 0 to String.length bytes do
    let recs, good = Wal.decode_all (String.sub bytes 0 len) in
    let expect = List.length (List.filter (fun e -> e <= len) ends) in
    if List.length recs <> expect then
      Alcotest.failf "truncate at %d: %d records, expected %d" len (List.length recs)
        expect;
    if good > len then Alcotest.failf "truncate at %d: prefix %d overruns" len good
  done;
  (* single-byte corruption at every offset: total decode, never more
     records than written, and records BEFORE the corrupted frame survive *)
  let b = Bytes.of_string bytes in
  for i = 0 to Bytes.length b - 1 do
    let orig = Bytes.get b i in
    Bytes.set b i (Char.chr (Char.code orig lxor 0xff));
    let recs, _ = Wal.decode_all (Bytes.unsafe_to_string b) in
    let intact = List.length (List.filter (fun e -> e <= i) ends) in
    if List.length recs < intact then
      Alcotest.failf "flip at %d: lost an intact leading record (%d < %d)" i
        (List.length recs) intact;
    if List.length recs > List.length records then
      Alcotest.failf "flip at %d: phantom records" i;
    Bytes.set b i orig
  done;
  (* a torn tail is repaired on reopen: append resumes at the cut *)
  let cut = good - 5 in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
  Unix.ftruncate fd cut;
  Unix.close fd;
  let w = Wal.open_append path in
  let last_good = List.fold_left (fun acc e -> if e <= cut then max acc e else acc) 0 ends in
  Alcotest.(check int) "reopen truncates the torn tail" last_good (Wal.offset w);
  ignore (Wal.append w (Wal.Resize 2));
  Wal.sync w;
  Wal.close w;
  let recs, _ = Wal.replay path |> get_ok "replay" in
  match List.rev recs with
  | (Wal.Resize 2, _) :: _ -> ()
  | _ -> Alcotest.fail "append after torn-tail repair not decodable"

(* --- ready-file staleness ----------------------------------------------------- *)

(* A second router pointed at a LIVE predecessor's ready file must refuse
   to start (leaving the file alone); after the predecessor exits the file
   is gone; a stale file (dead address) is silently replaced. *)
let test_ready_file_staleness () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.3 ~seed:83 in
  let ready = Filename.concat dir "route.ready" in
  let dir_a = Filename.concat dir "a" and dir_b = Filename.concat dir "b" in
  Unix.mkdir dir_a 0o700;
  Unix.mkdir dir_b 0o700;
  let sock_a = Filename.concat dir_a "route.sock" in
  let cfg_a =
    {
      (router_config ~workers:1 ~worker_shards:1 ~engine ~sampler ~dir:dir_a
         (Serve.Unix_path sock_a))
      with
      Router.ready_file = Some ready;
    }
  in
  let pid_a = start_router cfg_a in
  Fun.protect ~finally:(fun () -> kill_and_reap pid_a) @@ fun () ->
  let rec wait_ready tries =
    if Sys.file_exists ready then ()
    else if tries = 0 then Alcotest.failf "router never published %s" ready
    else begin
      ignore (Unix.select [] [] [] 0.05);
      wait_ready (tries - 1)
    end
  in
  wait_ready 200;
  (* B refuses: the ready file names a live listener *)
  let cfg_b =
    {
      (router_config ~workers:1 ~worker_shards:1 ~engine ~sampler ~dir:dir_b
         (Serve.Unix_path (Filename.concat dir_b "route.sock")))
      with
      Router.ready_file = Some ready;
    }
  in
  (match Unix.fork () with
  | 0 ->
    (try Router.run cfg_b with _ -> Unix._exit 1);
    Unix._exit 0
  | pid_b -> (
    match Unix.waitpid [] pid_b with
    | _, Unix.WEXITED 1 -> ()
    | _, _ -> Alcotest.fail "second router did not refuse the live ready file"));
  Alcotest.(check bool) "live ready file left alone" true (Sys.file_exists ready);
  (* clean shutdown unlinks it *)
  let fd = Serve.connect ~deadline_s:60.0 (Serve.Unix_path sock_a) in
  get_ok "shutdown" (Serve.shutdown fd);
  Serve.close fd;
  reap pid_a;
  Alcotest.(check bool) "ready file unlinked on exit" false (Sys.file_exists ready);
  (* a stale file (dead address) is replaced silently *)
  Out_channel.with_open_bin ready (fun oc ->
      Out_channel.output_string oc ("unix:" ^ Filename.concat dir "dead.sock\n"));
  let pid_c = start_router cfg_a in
  Fun.protect ~finally:(fun () -> kill_and_reap pid_c) @@ fun () ->
  wait_ready 200;
  let rec wait_replaced tries =
    match Serve.read_addr_file ready with
    | Ok (Serve.Unix_path p) when p = sock_a -> ()
    | _ when tries = 0 -> Alcotest.fail "stale ready file never replaced"
    | _ ->
      ignore (Unix.select [] [] [] 0.05);
      wait_replaced (tries - 1)
  in
  wait_replaced 200;
  let fd = Serve.connect ~deadline_s:60.0 (Serve.Unix_path sock_a) in
  get_ok "shutdown" (Serve.shutdown fd);
  Serve.close fd;
  reap pid_c

(* --- Chash units -------------------------------------------------------------- *)

let test_chash () =
  let nlocs = 2_000 in
  (* deterministic: two independent rings agree everywhere *)
  let a = Chash.create ~workers:4 and b = Chash.create ~workers:4 in
  for x = 0 to nlocs - 1 do
    Alcotest.(check int) "owner deterministic" (Chash.owner a x) (Chash.owner b x)
  done;
  (* coverage and rough balance *)
  let counts = Array.make 4 0 in
  for x = 0 to nlocs - 1 do
    let o = Chash.owner a x in
    Alcotest.(check bool) "owner in range" true (o >= 0 && o < 4);
    counts.(o) <- counts.(o) + 1
  done;
  Array.iteri
    (fun w c ->
      Alcotest.(check bool) (Printf.sprintf "worker %d owns a sane share" w) true
        (c > 0 && c < nlocs))
    counts;
  let mean = nlocs / 4 in
  Array.iter
    (fun c -> Alcotest.(check bool) "no worker above 3x the mean share" true (c < 3 * mean))
    counts;
  (* consistency: growing K=3 → K=4 moves well under half the keyspace *)
  let three = Chash.create ~workers:3 and four = Chash.create ~workers:4 in
  let moved = ref 0 in
  for x = 0 to nlocs - 1 do
    if Chash.owner three x <> Chash.owner four x then incr moved
  done;
  Alcotest.(check bool)
    (Printf.sprintf "only %d/%d locations moved" !moved nlocs)
    true
    (!moved < nlocs / 2);
  Alcotest.(check int) "K=1 is total" 0 (Chash.owner (Chash.create ~workers:1) 12345)

let () =
  Alcotest.run "cluster"
    [
      ( "identity",
        [
          Alcotest.test_case "engines × samplers × K grid ≡ analyze" `Quick
            test_identity_grid;
          Alcotest.test_case "TCP transport, out-of-order + duplicates" `Quick
            test_tcp_out_of_order_duplicates;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "chaos worker kill, checkpointed resume" `Quick
            (test_chaos_worker_crash ~checkpoint:true);
          Alcotest.test_case "chaos worker kill, full-log replay" `Quick
            (test_chaos_worker_crash ~checkpoint:false);
          Alcotest.test_case "external SIGKILL via pid file" `Quick test_external_sigkill;
        ] );
      ( "durability",
        [
          Alcotest.test_case "router SIGKILL + resume, engines × K grid" `Quick
            test_router_kill_resume_grid;
          QCheck_alcotest.to_alcotest router_kill_property;
          Alcotest.test_case "WAL truncation + bit-flip fuzz at every byte" `Quick
            test_wal_fuzz;
        ] );
      ( "availability",
        [
          QCheck_alcotest.to_alcotest resize_property;
          Alcotest.test_case "window=1/3/16 pipelining identity" `Quick
            test_window_identity;
          Alcotest.test_case "ready-file staleness protocol" `Quick
            test_ready_file_staleness;
        ] );
      ("migration", [ QCheck_alcotest.to_alcotest migrate_property ]);
      ("chash", [ Alcotest.test_case "determinism, coverage, stability" `Quick test_chash ]);
    ]
