(* Per-engine unit tests on hand-written executions: race declarations on
   the litmus suite, the skipping behaviour the paper works out on Fig. 1/2,
   and detector metrics. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Litmus = Ft_trace.Litmus
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Race = Ft_core.Race
module Metrics = Ft_core.Metrics

let run_litmus engine (l : Litmus.t) =
  Engine.run engine ~sampler:(Sampler.fixed l.Litmus.sampled) l.Litmus.trace

let run_all_mask engine trace = Engine.run engine ~sampler:Sampler.all trace

let sampling_engines = [ Engine.St; Engine.Su; Engine.So; Engine.O1; Engine.O1u ]
let full_engines = [ Engine.Djit; Engine.Fasttrack ]

let check_locations msg expected (r : Detector.result) =
  Alcotest.(check (list int)) msg expected (Detector.racy_locations r)

(* --- race findings on the litmus executions ------------------------- *)

let test_simple_race () =
  List.iter
    (fun engine ->
      let r = run_litmus engine Litmus.simple_race in
      check_locations (Engine.name engine ^ " finds the race") [ 0 ] r)
    sampling_engines;
  List.iter
    (fun engine ->
      let r = run_all_mask engine Litmus.simple_race.Litmus.trace in
      check_locations (Engine.name engine ^ " full") [ 0 ] r)
    full_engines

let test_protected_no_race () =
  List.iter
    (fun engine ->
      let r = run_litmus engine Litmus.protected_no_race in
      check_locations (Engine.name engine ^ " clean") [] r)
    sampling_engines

let test_race_missed_by_sampling () =
  List.iter
    (fun engine ->
      let r = run_litmus engine Litmus.race_missed_by_sampling in
      check_locations (Engine.name engine ^ " misses the unsampled side") [] r)
    sampling_engines;
  (* the full engines do see it *)
  List.iter
    (fun engine ->
      let r = run_all_mask engine Litmus.race_missed_by_sampling.Litmus.trace in
      check_locations (Engine.name engine ^ " full sees it") [ 0 ] r)
    full_engines

let test_fork_join_ordered () =
  List.iter
    (fun engine ->
      let r = run_litmus engine Litmus.fork_join_ordered in
      check_locations (Engine.name engine ^ " fork/join orders") [] r)
    (sampling_engines @ full_engines)

let test_atomic_message_passing () =
  List.iter
    (fun engine ->
      let r = run_litmus engine Litmus.atomic_message_passing in
      check_locations (Engine.name engine ^ " release-store orders") [] r)
    (sampling_engines @ full_engines)

let test_fig1_sampled_no_race () =
  List.iter
    (fun engine ->
      let r = run_litmus engine Litmus.fig1 in
      check_locations (Engine.name engine ^ " fig1 sampled") [] r)
    sampling_engines

let test_fig1_full_race_on_x () =
  (* e7 = w(x)@t1 ∥ e9 = w(x)@t2 *)
  List.iter
    (fun engine ->
      let r = run_all_mask engine Litmus.fig1.Litmus.trace in
      check_locations (Engine.name engine ^ " fig1 full") [ 0 ] r)
    (full_engines @ sampling_engines)

let test_same_thread_never_races () =
  (* a thread writing the same location in distinct epochs must not race
     with itself — exercises the own-entry handling of the race checks *)
  let trace =
    Trace.of_events
      [|
        Event.mk 0 (Event.Write 0);
        Event.mk 0 (Event.Acquire 0);
        Event.mk 0 (Event.Release 0);
        Event.mk 0 (Event.Write 0);
        Event.mk 0 (Event.Read 0);
      |]
  in
  List.iter
    (fun engine ->
      let r = run_all_mask engine trace in
      check_locations (Engine.name engine ^ " no self race") [] r)
    (sampling_engines @ full_engines)

let test_write_read_race_direction () =
  let trace = Trace.of_events [| Event.mk 0 (Event.Write 0); Event.mk 1 (Event.Read 0) |] in
  List.iter
    (fun engine ->
      let r = run_all_mask engine trace in
      match r.Detector.races with
      | [ race ] ->
        Alcotest.(check bool)
          (Engine.name engine ^ " against earlier write")
          true race.Race.with_write;
        Alcotest.(check int) "declared at the read" 1 race.Race.index
      | other ->
        Alcotest.failf "%s: expected 1 race, got %d" (Engine.name engine) (List.length other))
    (sampling_engines @ full_engines)

let test_read_write_race_direction () =
  let trace = Trace.of_events [| Event.mk 0 (Event.Read 0); Event.mk 1 (Event.Write 0) |] in
  List.iter
    (fun engine ->
      let r = run_all_mask engine trace in
      match r.Detector.races with
      | [ race ] ->
        Alcotest.(check bool)
          (Engine.name engine ^ " against earlier read")
          true race.Race.with_read
      | other ->
        Alcotest.failf "%s: expected 1 race, got %d" (Engine.name engine) (List.length other))
    (sampling_engines @ full_engines)

let test_reads_do_not_race () =
  let trace = Trace.of_events [| Event.mk 0 (Event.Read 0); Event.mk 1 (Event.Read 0) |] in
  List.iter
    (fun engine -> check_locations (Engine.name engine) [] (run_all_mask engine trace))
    (sampling_engines @ full_engines)

let test_pending_flush_at_join () =
  (* child's sampled write happens-before the parent's post-join write even
     though the child never releases a lock *)
  let trace =
    Trace.of_events
      [|
        Event.mk 0 (Event.Fork 1);
        Event.mk 1 (Event.Write 0);
        Event.mk 0 (Event.Join 1);
        Event.mk 0 (Event.Write 0);
      |]
  in
  List.iter
    (fun engine -> check_locations (Engine.name engine) [] (run_all_mask engine trace))
    sampling_engines

(* --- skipping behaviour on Fig 1/2 ---------------------------------- *)

let test_fig1_su_skips () =
  let r = run_litmus Engine.Su Litmus.fig1 in
  let m = r.Detector.metrics in
  Alcotest.(check int) "8 acquires" 8 m.Metrics.acquires;
  (* t1's four acquires find virgin locks; t2 skips e12 and e14 (Fig 2) *)
  Alcotest.(check int) "6 skipped" 6 m.Metrics.acquires_skipped;
  Alcotest.(check int) "4 releases" 4 m.Metrics.releases;
  (* every release in Fig 1 targets a virgin lock whose U_ℓ(t1) = 0 differs
     from U_t1(t1) ≥ 1, so all four copies happen; the release-side skip
     needs a lock that has already seen the thread (covered below) *)
  Alcotest.(check int) "4 releases processed" 4 m.Metrics.releases_processed

let test_fig1_so_skips () =
  let r = run_litmus Engine.So Litmus.fig1 in
  let m = r.Detector.metrics in
  Alcotest.(check int) "8 acquires" 8 m.Metrics.acquires;
  Alcotest.(check int) "6 skipped" 6 m.Metrics.acquires_skipped;
  Alcotest.(check int) "4 shallow copies" 4 m.Metrics.shallow_copies;
  (* t1 mutates a shared list only via scalars (local-epoch optimization);
     t2 absorbs entries without ever having shared its list: 0 deep copies *)
  Alcotest.(check int) "no deep copies" 0 m.Metrics.deep_copies;
  (* non-skipped acquires: e8 and e18, one fresh entry each *)
  Alcotest.(check int) "entries traversed" 2 m.Metrics.entries_traversed

let test_fig3_so_single_entry () =
  let l = Litmus.fig3 in
  let r = run_litmus Engine.So l in
  let m = r.Detector.metrics in
  (* 6-thread program: each non-skipped acquire traverses ≪ T entries *)
  Alcotest.(check bool) "some acquire skipped or short"
    true
    (m.Metrics.entries_traversed < m.Metrics.acquires * 6);
  check_locations "no race" [] r

let test_st_does_not_skip () =
  let r = run_litmus Engine.St Litmus.fig1 in
  let m = r.Detector.metrics in
  Alcotest.(check int) "st never skips acquires" 0 m.Metrics.acquires_skipped;
  Alcotest.(check int) "st processes every release" 4 m.Metrics.releases_processed

let test_su_reacquire_own_lock_skips () =
  (* a thread re-acquiring the lock it just released learns nothing *)
  let trace =
    Trace.of_events
      [|
        Event.mk 0 (Event.Acquire 0); Event.mk 0 (Event.Write 0); Event.mk 0 (Event.Release 0);
        Event.mk 0 (Event.Acquire 0); Event.mk 0 (Event.Release 0);
      |]
  in
  List.iter
    (fun engine ->
      let r = run_all_mask engine trace in
      let m = r.Detector.metrics in
      Alcotest.(check int) (Engine.name engine ^ " second acquire skipped") 2
        m.Metrics.acquires_skipped)
    [ Engine.Su; Engine.So; Engine.O1u ]

let test_su_second_release_skipped () =
  (* releasing again with no new information skips the copy in SU *)
  let trace =
    Trace.of_events
      [|
        Event.mk 0 (Event.Acquire 0); Event.mk 0 (Event.Write 0); Event.mk 0 (Event.Release 0);
        Event.mk 0 (Event.Acquire 0); Event.mk 0 (Event.Release 0);
      |]
  in
  let r = run_all_mask Engine.Su trace in
  Alcotest.(check int) "one release processed" 1
    r.Detector.metrics.Metrics.releases_processed

(* --- misc ------------------------------------------------------------ *)

let test_detector_determinism () =
  let prng = Ft_support.Prng.create ~seed:77 in
  let trace = Ft_trace.Trace_gen.random prng Ft_trace.Trace_gen.default in
  let sampler = Sampler.bernoulli ~rate:0.3 ~seed:9 in
  List.iter
    (fun engine ->
      let r1 = Engine.run engine ~sampler trace in
      let r2 = Engine.run engine ~sampler trace in
      Alcotest.(check (list int))
        (Engine.name engine ^ " deterministic")
        (Race.indices r1.Detector.races)
        (Race.indices r2.Detector.races))
    (sampling_engines @ full_engines)

let test_sampler_none_detects_nothing () =
  List.iter
    (fun engine ->
      let r = Engine.run engine ~sampler:Sampler.none Litmus.simple_race.Litmus.trace in
      check_locations (Engine.name engine ^ " none") [] r;
      Alcotest.(check int) "no sampled accesses" 0
        r.Detector.metrics.Metrics.sampled_accesses)
    sampling_engines

(* Table-driven registry guard: canonical name and every alias per engine.
   A new [Engine.id] constructor must be added here — and a missed
   [of_name]/[name] arm shows up as a table mismatch instead of a CLI
   error in the field. *)
let registry_table =
  [
    (Engine.Djit, "djit", []);
    (Engine.Fasttrack, "fasttrack", [ "ft" ]);
    (Engine.Fasttrack_tc, "fasttrack-tc", [ "ft-tc"; "tc" ]);
    (Engine.St, "st", []);
    (Engine.Su, "su", []);
    (Engine.So, "so", []);
    (Engine.Sl, "sl", [ "so-nomtf" ]);
    (Engine.Sn, "su-noskip", [ "sn" ]);
    (Engine.O1, "o1", [ "o1-samples" ]);
    (Engine.O1u, "o1-u", [ "o1u" ]);
    (Engine.Eraser, "eraser", [ "lockset" ]);
  ]

let test_engine_registry () =
  Alcotest.(check int) "ten HB-exact engines" 10 (List.length Engine.all);
  (* the table covers exactly [all] plus the lockset baseline, in order *)
  Alcotest.(check (list string))
    "table matches Engine.all"
    (List.map Engine.name Engine.all @ [ "eraser" ])
    (List.map (fun (_, canonical, _) -> canonical) registry_table);
  List.iter
    (fun (id, canonical, aliases) ->
      Alcotest.(check string) "canonical name" canonical (Engine.name id);
      List.iter
        (fun n ->
          match Engine.of_name n with
          | Some id' ->
            Alcotest.(check bool) (n ^ " resolves to " ^ canonical) true (id = id')
          | None -> Alcotest.failf "of_name %S failed" n)
        (canonical :: aliases))
    registry_table;
  (* canonical names are unique *)
  let names = List.map (fun (_, n, _) -> n) registry_table in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Engine.name id ^ " honours the sampler — in sampling_engines")
        true
        (List.mem id Engine.sampling_engines))
    [ Engine.St; Engine.Su; Engine.So; Engine.O1; Engine.O1u ];
  Alcotest.(check bool) "eraser not in all" false (List.mem Engine.Eraser Engine.all);
  Alcotest.(check bool) "unknown name" true (Engine.of_name "nope" = None)

let test_metrics_arithmetic () =
  let a = Metrics.create () in
  a.Metrics.acquires <- 10;
  a.Metrics.acquires_skipped <- 4;
  a.Metrics.releases <- 8;
  a.Metrics.releases_processed <- 2;
  a.Metrics.deep_copies <- 1;
  a.Metrics.entries_traversed <- 30;
  a.Metrics.entries_saved <- 10;
  Alcotest.(check (float 1e-9)) "skip ratio" 0.4 (Metrics.acquires_skipped_ratio a);
  Alcotest.(check (float 1e-9)) "processed ratio" 0.25 (Metrics.releases_processed_ratio a);
  Alcotest.(check (float 1e-9)) "deep copy ratio" 0.125 (Metrics.deep_copy_ratio a);
  Alcotest.(check (float 1e-9)) "saved ratio" 0.25 (Metrics.saved_traversal_ratio a);
  Alcotest.(check (float 1e-9)) "work ratio" (8.0 /. 18.0) (Metrics.sync_full_work_ratio a);
  Alcotest.(check (float 1e-9)) "entries per acq" 3.0 (Metrics.mean_entries_per_acquire a);
  let b = Metrics.copy a in
  b.Metrics.acquires <- 0;
  Alcotest.(check int) "copy is independent" 10 a.Metrics.acquires;
  let sum = Metrics.create () in
  Metrics.add ~into:sum a;
  Metrics.add ~into:sum a;
  Alcotest.(check int) "add accumulates" 20 sum.Metrics.acquires;
  let empty = Metrics.create () in
  Alcotest.(check (float 1e-9)) "zero denominators" 0.0 (Metrics.acquires_skipped_ratio empty)

let test_metrics_accounting () =
  let l = Litmus.fig1 in
  let r = run_litmus Engine.St l in
  let m = r.Detector.metrics in
  Alcotest.(check int) "events" 18 m.Metrics.events;
  Alcotest.(check int) "sampled" 3 m.Metrics.sampled_accesses;
  Alcotest.(check int) "reads+writes" 6 (m.Metrics.reads + m.Metrics.writes)

let () =
  Alcotest.run "detectors"
    [
      ( "races",
        [
          Alcotest.test_case "simple race" `Quick test_simple_race;
          Alcotest.test_case "protected no race" `Quick test_protected_no_race;
          Alcotest.test_case "race missed by sampling" `Quick test_race_missed_by_sampling;
          Alcotest.test_case "fork/join ordered" `Quick test_fork_join_ordered;
          Alcotest.test_case "atomic message passing" `Quick test_atomic_message_passing;
          Alcotest.test_case "fig1 sampled: no race" `Quick test_fig1_sampled_no_race;
          Alcotest.test_case "fig1 full: race on x" `Quick test_fig1_full_race_on_x;
          Alcotest.test_case "no same-thread races" `Quick test_same_thread_never_races;
          Alcotest.test_case "write-read direction" `Quick test_write_read_race_direction;
          Alcotest.test_case "read-write direction" `Quick test_read_write_race_direction;
          Alcotest.test_case "reads don't race" `Quick test_reads_do_not_race;
          Alcotest.test_case "pending flushed at join" `Quick test_pending_flush_at_join;
        ] );
      ( "skipping",
        [
          Alcotest.test_case "fig1 SU skips e12/e14" `Quick test_fig1_su_skips;
          Alcotest.test_case "fig1 SO skips e12/e14" `Quick test_fig1_so_skips;
          Alcotest.test_case "fig3 SO short traversals" `Quick test_fig3_so_single_entry;
          Alcotest.test_case "ST never skips" `Quick test_st_does_not_skip;
          Alcotest.test_case "reacquire own lock" `Quick test_su_reacquire_own_lock_skips;
          Alcotest.test_case "redundant release skipped" `Quick test_su_second_release_skipped;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "determinism" `Quick test_detector_determinism;
          Alcotest.test_case "sampler none" `Quick test_sampler_none_detects_nothing;
          Alcotest.test_case "engine registry" `Quick test_engine_registry;
          Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "metrics arithmetic" `Quick test_metrics_arithmetic;
        ] );
    ]
