(* Tests for ft_trace: events, trace building/validation, the textual format,
   the litmus executions and the random generator. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_format = Ft_trace.Trace_format
module Trace_gen = Ft_trace.Trace_gen
module Litmus = Ft_trace.Litmus
module Prng = Ft_support.Prng

let ev = Event.mk

let test_event_classify () =
  Alcotest.(check bool) "read is access" true (Event.is_access (ev 0 (Event.Read 1)));
  Alcotest.(check bool) "write is access" true (Event.is_access (ev 0 (Event.Write 1)));
  Alcotest.(check bool) "acq is sync" true (Event.is_sync (ev 0 (Event.Acquire 1)));
  Alcotest.(check bool) "fork is sync" true (Event.is_sync (ev 0 (Event.Fork 1)));
  Alcotest.(check bool) "relst is sync" true (Event.is_sync (ev 0 (Event.Release_store 1)))

let test_event_conflicting () =
  let w0 = ev 0 (Event.Write 5) and w1 = ev 1 (Event.Write 5) in
  let r1 = ev 1 (Event.Read 5) and r0 = ev 0 (Event.Read 5) in
  Alcotest.(check bool) "w-w conflict" true (Event.conflicting w0 w1);
  Alcotest.(check bool) "w-r conflict" true (Event.conflicting w0 r1);
  Alcotest.(check bool) "r-w conflict" true (Event.conflicting r0 w1);
  Alcotest.(check bool) "r-r no conflict" false (Event.conflicting r0 r1);
  Alcotest.(check bool) "same thread no conflict" false (Event.conflicting w0 r0);
  Alcotest.(check bool) "different locs no conflict" false
    (Event.conflicting w0 (ev 1 (Event.Write 6)))

let test_event_loc () =
  Alcotest.(check (option int)) "read loc" (Some 3) (Event.accessed_loc (ev 0 (Event.Read 3)));
  Alcotest.(check (option int)) "acq loc" None (Event.accessed_loc (ev 0 (Event.Acquire 3)))

let test_event_pp () =
  Alcotest.(check string) "write" "w(x3)@t1" (Event.to_string (ev 1 (Event.Write 3)));
  Alcotest.(check string) "acq" "acq(L0)@t2" (Event.to_string (ev 2 (Event.Acquire 0)))

let test_trace_dims () =
  let t = Trace.of_events [| ev 0 (Event.Write 4); ev 2 (Event.Acquire 1) |] in
  Alcotest.(check int) "threads" 3 t.Trace.nthreads;
  Alcotest.(check int) "locks" 2 t.Trace.nlocks;
  Alcotest.(check int) "locs" 5 t.Trace.nlocs

let test_trace_dims_fork () =
  let t = Trace.of_events [| ev 0 (Event.Fork 5) |] in
  Alcotest.(check int) "fork target counted" 6 t.Trace.nthreads

let test_make_range_check () =
  Alcotest.check_raises "thread out of range"
    (Invalid_argument "Trace.make: thread id out of range") (fun () ->
      ignore (Trace.make ~nthreads:1 ~nlocks:0 ~nlocs:1 [| ev 3 (Event.Read 0) |]))

let wf events = Trace.well_formed (Trace.of_events (Array.of_list events))

let check_wf msg events = Alcotest.(check bool) msg true (wf events = Ok ())

let check_ill msg events =
  Alcotest.(check bool) msg true (match wf events with Error _ -> true | Ok () -> false)

let test_wf_ok () =
  check_wf "lock discipline"
    [ ev 0 (Event.Acquire 0); ev 0 (Event.Release 0); ev 1 (Event.Acquire 0) ];
  check_wf "held at end is fine" [ ev 0 (Event.Acquire 0) ];
  check_wf "initial threads need no fork" [ ev 2 (Event.Write 0) ]

let test_wf_double_acquire () =
  check_ill "double acquire"
    [ ev 0 (Event.Acquire 0); ev 1 (Event.Acquire 0) ];
  check_ill "re-entrant acquire" [ ev 0 (Event.Acquire 0); ev 0 (Event.Acquire 0) ]

let test_wf_bad_release () =
  check_ill "release unheld" [ ev 0 (Event.Release 0) ];
  check_ill "release by non-holder" [ ev 0 (Event.Acquire 0); ev 1 (Event.Release 0) ]

let test_wf_fork_join () =
  check_wf "fork then act" [ ev 0 (Event.Fork 1); ev 1 (Event.Write 0) ];
  check_ill "act then forked" [ ev 1 (Event.Write 0); ev 0 (Event.Fork 1) ];
  check_ill "fork twice" [ ev 0 (Event.Fork 1); ev 0 (Event.Fork 1) ];
  check_ill "act after join"
    [ ev 0 (Event.Fork 1); ev 1 (Event.Write 0); ev 0 (Event.Join 1); ev 1 (Event.Write 0) ];
  check_ill "join twice"
    [ ev 0 (Event.Fork 1); ev 0 (Event.Join 1); ev 0 (Event.Join 1) ];
  check_ill "self fork" [ ev 0 (Event.Fork 0) ];
  check_ill "join of never-forked, never-started thread" [ ev 0 (Event.Join 1) ];
  check_wf "join of initial thread that acted"
    [ ev 1 (Event.Write 0); ev 0 (Event.Join 1) ];
  check_wf "join of thread 0" [ ev 1 (Event.Join 0) ]

let test_wf_mixed_sync_styles () =
  check_ill "mutex then atomic"
    [ ev 0 (Event.Acquire 0); ev 0 (Event.Release 0); ev 0 (Event.Release_store 0) ];
  check_wf "atomic only" [ ev 0 (Event.Release_store 0); ev 1 (Event.Acquire_load 0) ]

let test_stats () =
  let t =
    Trace.of_events
      [|
        ev 0 (Event.Write 0); ev 0 (Event.Read 1); ev 0 (Event.Acquire 0);
        ev 0 (Event.Release 0); ev 0 (Event.Fork 1); ev 1 (Event.Read 0);
        ev 0 (Event.Join 1);
      |]
  in
  let s = Trace.stats t in
  Alcotest.(check int) "events" 7 s.Trace.n_events;
  Alcotest.(check int) "reads" 2 s.Trace.n_reads;
  Alcotest.(check int) "writes" 1 s.Trace.n_writes;
  Alcotest.(check int) "accesses" 3 s.Trace.n_accesses;
  Alcotest.(check int) "syncs" 4 s.Trace.n_syncs;
  Alcotest.(check int) "locs" 2 s.Trace.locs_touched;
  Alcotest.(check int) "locks" 1 s.Trace.locks_touched

let test_builder_fresh_ids () =
  let b = Trace.Builder.create () in
  Alcotest.(check int) "t0" 0 (Trace.Builder.fresh_thread b);
  Alcotest.(check int) "t1" 1 (Trace.Builder.fresh_thread b);
  Alcotest.(check int) "l0" 0 (Trace.Builder.fresh_lock b);
  Alcotest.(check int) "x0" 0 (Trace.Builder.fresh_loc b)

let test_builder_growth () =
  let b = Trace.Builder.create () in
  for _ = 1 to 1000 do
    Trace.Builder.write b 0 0
  done;
  let t = Trace.Builder.build b in
  Alcotest.(check int) "all events kept" 1000 (Trace.length t)

let test_format_roundtrip () =
  let original =
    Trace.of_events
      [|
        ev 0 (Event.Fork 1); ev 1 (Event.Acquire 0); ev 1 (Event.Write 2);
        ev 1 (Event.Release 0); ev 1 (Event.Release_store 1); ev 0 (Event.Acquire_load 1);
        ev 0 (Event.Read 2); ev 0 (Event.Join 1);
      |]
  in
  let text = Trace_format.to_string original in
  match Trace_format.parse_string text with
  | Error msg -> Alcotest.fail msg
  | Ok reparsed ->
    Alcotest.(check int) "length" (Trace.length original) (Trace.length reparsed);
    Trace.iteri
      (fun i e ->
        Alcotest.(check bool)
          (Printf.sprintf "event %d" i)
          true
          (Event.equal e (Trace.get reparsed i)))
      original

let test_format_names () =
  let input = "main|fork(worker)\nworker|acq(guard)\nworker|w(counter)\nworker|rel(guard)\n" in
  match Trace_format.parse_string input with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Alcotest.(check int) "threads" 2 t.Trace.nthreads;
    Alcotest.(check int) "locks" 1 t.Trace.nlocks;
    Alcotest.(check int) "locs" 1 t.Trace.nlocs;
    Alcotest.(check bool) "well formed" true (Trace.well_formed t = Ok ())

let test_format_canonical_ids () =
  let input = "t3|w(x7)\nt0|r(x7)\n" in
  match Trace_format.parse_string input with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Alcotest.(check int) "threads" 4 t.Trace.nthreads;
    Alcotest.(check int) "locs" 8 t.Trace.nlocs;
    let e = Trace.get t 0 in
    Alcotest.(check int) "thread id preserved" 3 e.Event.thread

let test_format_comments_and_aux () =
  let input = "# a comment\n\nt0|w(x0)|1234\n" in
  match Trace_format.parse_string input with
  | Error msg -> Alcotest.fail msg
  | Ok t -> Alcotest.(check int) "one event" 1 (Trace.length t)

let test_rapid_std_export () =
  let t =
    Trace.of_events
      [|
        ev 0 (Event.Fork 1); ev 1 (Event.Acquire 0); ev 1 (Event.Write 2);
        ev 1 (Event.Release 0); ev 1 (Event.Release_store 1); ev 0 (Event.Acquire_load 1);
        ev 0 (Event.Join 1);
      |]
  in
  let expected =
    "T0|fork(T1)|0\nT1|acq(L0)|1\nT1|w(V2)|2\nT1|rel(L0)|3\nT1|rel(A1)|4\nT0|acq(A1)|5\n\
     T0|join(T1)|6\n"
  in
  Alcotest.(check string) "rapid std syntax" expected (Trace_format.to_rapid_std t)

let test_format_errors () =
  (match Trace_format.parse_string "t0 w(x)" with
  | Error msg -> Alcotest.(check bool) "line number" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected parse error");
  match Trace_format.parse_string "t0|boom(x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown op error"

let test_litmus_all_well_formed () =
  List.iter
    (fun (l : Litmus.t) ->
      Alcotest.(check bool) l.Litmus.name true (Trace.well_formed l.Litmus.trace = Ok ());
      Alcotest.(check int)
        (l.Litmus.name ^ " mask length")
        (Trace.length l.Litmus.trace)
        (Array.length l.Litmus.sampled))
    Litmus.all

let test_litmus_fig1_shape () =
  let l = Litmus.fig1 in
  Alcotest.(check int) "18 events" 18 (Trace.length l.Litmus.trace);
  Alcotest.(check int) "2 threads" 2 l.Litmus.trace.Trace.nthreads;
  Alcotest.(check int) "4 locks" 4 l.Litmus.trace.Trace.nlocks;
  Alcotest.(check int) "|S| = 3" 3
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 l.Litmus.sampled)

let test_gen_well_formed () =
  let prng = Prng.create ~seed:123 in
  for i = 0 to 30 do
    let params =
      {
        Trace_gen.nthreads = 1 + (i mod 6);
        nlocks = i mod 4;
        nlocs = 1 + (i mod 5);
        length = 40 + (5 * i);
        atomics = i mod 2 = 0;
        forkjoin = i mod 3 = 0;
      }
    in
    let t = Trace_gen.random prng params in
    Alcotest.(check bool)
      (Printf.sprintf "iteration %d well-formed" i)
      true
      (Trace.well_formed t = Ok ())
  done

let test_gen_sampled_mask () =
  let prng = Prng.create ~seed:5 in
  let t, sampled = Trace_gen.random_sampled prng Trace_gen.default ~rate:0.5 in
  Alcotest.(check int) "mask length" (Trace.length t) (Array.length sampled);
  Trace.iteri
    (fun i e ->
      if sampled.(i) then
        Alcotest.(check bool) "sampled events are accesses" true (Event.is_access e))
    t

(* The parser must reject or accept — never raise — whatever bytes arrive. *)
let qcheck_parser_total =
  QCheck.Test.make ~name:"parser never raises" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 200))
    (fun s ->
      match Trace_format.parse_string s with Ok _ | Error _ -> true)

let qcheck_parser_structured =
  (* random pipe/parenthesis soup, closer to the grammar than raw bytes *)
  let fragment =
    QCheck.Gen.oneofl [ "t0"; "t1"; "|"; "r"; "w"; "acq"; "rel"; "("; ")"; "x1"; "L2"; "\n"; "#"; " " ]
  in
  QCheck.Test.make ~name:"parser total on grammar soup" ~count:500
    (QCheck.make QCheck.Gen.(map (String.concat "") (list_size (int_bound 30) fragment)))
    (fun s ->
      match Trace_format.parse_string s with Ok _ | Error _ -> true)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"to_string/parse round-trip" ~count:200
    QCheck.(small_nat)
    (fun seed ->
      let prng = Prng.create ~seed:(seed + 1) in
      let t = Trace_gen.random prng { Trace_gen.default with Trace_gen.atomics = true } in
      match Trace_format.parse_string (Trace_format.to_string t) with
      | Error _ -> false
      | Ok t' ->
        Trace.length t = Trace.length t'
        && (let ok = ref true in
            Trace.iteri (fun i e -> if not (Event.equal e (Trace.get t' i)) then ok := false) t;
            !ok))

let () =
  Alcotest.run "trace"
    [
      ( "event",
        [
          Alcotest.test_case "classify" `Quick test_event_classify;
          Alcotest.test_case "conflicting" `Quick test_event_conflicting;
          Alcotest.test_case "accessed_loc" `Quick test_event_loc;
          Alcotest.test_case "pretty printing" `Quick test_event_pp;
        ] );
      ( "trace",
        [
          Alcotest.test_case "inferred dims" `Quick test_trace_dims;
          Alcotest.test_case "fork target dims" `Quick test_trace_dims_fork;
          Alcotest.test_case "make range check" `Quick test_make_range_check;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "well_formed",
        [
          Alcotest.test_case "valid traces" `Quick test_wf_ok;
          Alcotest.test_case "double acquire" `Quick test_wf_double_acquire;
          Alcotest.test_case "bad release" `Quick test_wf_bad_release;
          Alcotest.test_case "fork/join discipline" `Quick test_wf_fork_join;
          Alcotest.test_case "mixed sync styles" `Quick test_wf_mixed_sync_styles;
        ] );
      ( "builder",
        [
          Alcotest.test_case "fresh ids" `Quick test_builder_fresh_ids;
          Alcotest.test_case "growth" `Quick test_builder_growth;
        ] );
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_format_roundtrip;
          Alcotest.test_case "symbolic names" `Quick test_format_names;
          Alcotest.test_case "canonical ids" `Quick test_format_canonical_ids;
          Alcotest.test_case "comments and aux columns" `Quick test_format_comments_and_aux;
          Alcotest.test_case "errors" `Quick test_format_errors;
          Alcotest.test_case "rapid std export" `Quick test_rapid_std_export;
        ] );
      ( "litmus",
        [
          Alcotest.test_case "all well-formed" `Quick test_litmus_all_well_formed;
          Alcotest.test_case "fig1 shape" `Quick test_litmus_fig1_shape;
        ] );
      ( "generator",
        [
          Alcotest.test_case "well-formed output" `Quick test_gen_well_formed;
          Alcotest.test_case "sampled mask" `Quick test_gen_sampled_mask;
        ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_parser_total; qcheck_parser_structured; qcheck_roundtrip ] );
    ]
