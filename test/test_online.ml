(* Tests for the online monitor (incremental validation + live race
   callbacks) and the binary trace format. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Trace_binary = Ft_trace.Trace_binary
module Prng = Ft_support.Prng
module Online = Ft_core.Online
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Race = Ft_core.Race

let ok = function
  | Ok () -> ()
  | Error { Online.reason; _ } -> Alcotest.failf "unexpected rejection: %s" reason

let rejected msg = function
  | Ok () -> Alcotest.failf "expected rejection: %s" msg
  | Error (_ : Online.rejection) -> ()

let monitor ?on_race () = Online.create ?on_race ~nthreads:3 ~nlocks:2 ~nlocs:2 ()

let test_basic_detection () =
  let m = monitor () in
  ok (Online.write m 0 0);
  ok (Online.write m 1 0);
  Alcotest.(check int) "events" 2 (Online.events_seen m);
  Alcotest.(check (list int)) "race found" [ 0 ] (Online.racy_locations m)

let test_on_race_callback () =
  let fired = ref [] in
  let m = monitor ~on_race:(fun r -> fired := r.Race.index :: !fired) () in
  ok (Online.write m 0 0);
  Alcotest.(check (list int)) "quiet so far" [] !fired;
  ok (Online.write m 1 0);
  Alcotest.(check (list int)) "fires at the racing write" [ 1 ] !fired;
  ok (Online.write m 2 0);
  Alcotest.(check (list int)) "fires once per declaration" [ 2; 1 ] !fired

let test_lock_validation () =
  let m = monitor () in
  rejected "release unheld" (Online.release m 0 0);
  ok (Online.acquire m 0 0);
  rejected "double acquire" (Online.acquire m 1 0);
  rejected "release by non-holder" (Online.release m 1 0);
  ok (Online.release m 0 0);
  ok (Online.acquire m 1 0)

let test_fork_join_validation () =
  let m = monitor () in
  ok (Online.fork m ~parent:0 ~child:1);
  rejected "fork twice" (Online.fork m ~parent:0 ~child:1);
  rejected "self join" (Online.join m ~parent:1 ~child:1);
  ok (Online.write m 1 0);
  ok (Online.join m ~parent:0 ~child:1);
  rejected "act after join" (Online.write m 1 0);
  rejected "join twice" (Online.join m ~parent:0 ~child:1)

let test_join_lifecycle () =
  let m = monitor () in
  (* thread 2 never forked and never acted: joining it is a lost wakeup *)
  rejected "join of never-forked thread" (Online.join m ~parent:0 ~child:2);
  (* thread 1 acts without a fork (initial thread), so it counts as started
     and may be joined — mirrors Trace.well_formed *)
  ok (Online.write m 1 0);
  ok (Online.join m ~parent:0 ~child:1);
  (* thread 0 is pre-started, so another thread may join it *)
  let m2 = monitor () in
  ok (Online.join m2 ~parent:2 ~child:0)

let test_many_races_feed () =
  (* every write to location 0 after the first races with all predecessors:
     n writes race ⇒ n−1 callback firings, one per declaration, streamed as
     they happen (this is the path that used to rescan the whole race list
     on every event) *)
  let n = 400 in
  let fired = ref 0 in
  let m =
    Online.create ~on_race:(fun _ -> incr fired) ~nthreads:2 ~nlocks:1 ~nlocs:1 ()
  in
  for i = 0 to n - 1 do
    ok (Online.write m (i mod 2) 0)
  done;
  Alcotest.(check int) "one callback per declaration" (n - 1) !fired;
  Alcotest.(check int) "callbacks match stored races" (List.length (Online.races m)) !fired

let test_range_validation () =
  let m = monitor () in
  rejected "thread range" (Online.write m 9 0);
  rejected "loc range" (Online.write m 0 9);
  rejected "lock range" (Online.acquire m 0 9)

let test_mixed_sync_styles () =
  let m = monitor () in
  ok (Online.acquire m 0 0);
  rejected "mutex used atomically" (Online.feed m (Event.mk 0 (Event.Release_store 0)))

let test_rejection_leaves_state () =
  let m = monitor () in
  ok (Online.acquire m 0 0);
  rejected "bad" (Online.acquire m 1 0);
  Alcotest.(check int) "rejected event not counted" 1 (Online.events_seen m);
  (* holder is still thread 0 *)
  ok (Online.release m 0 0)

let test_matches_offline () =
  let prng = Prng.create ~seed:31 in
  for i = 0 to 20 do
    let params =
      { Trace_gen.default with Trace_gen.nthreads = 2 + (i mod 4); length = 80 }
    in
    let trace = Trace_gen.random prng params in
    let m =
      Online.create ~engine:Engine.So ~nthreads:trace.Trace.nthreads
        ~nlocks:(Stdlib.max 1 trace.Trace.nlocks) ~nlocs:(Stdlib.max 1 trace.Trace.nlocs) ()
    in
    Trace.iteri (fun _ e -> ok (Online.feed m e)) trace;
    let offline = Engine.run Engine.So trace in
    Alcotest.(check (list int))
      (Printf.sprintf "iteration %d" i)
      (Race.indices offline.Detector.races)
      (Race.indices (Online.races m))
  done

(* --- binary format ------------------------------------------------------ *)

let test_binary_roundtrip () =
  let prng = Prng.create ~seed:7 in
  for i = 0 to 20 do
    let params = { Trace_gen.default with Trace_gen.atomics = i mod 2 = 0; length = 100 } in
    let trace = Trace_gen.random prng params in
    match Trace_binary.of_bytes (Trace_binary.to_bytes trace) with
    | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
    | Ok trace' ->
      Alcotest.(check int) "length" (Trace.length trace) (Trace.length trace');
      Alcotest.(check int) "threads" trace.Trace.nthreads trace'.Trace.nthreads;
      Trace.iteri
        (fun j e ->
          if not (Event.equal e (Trace.get trace' j)) then Alcotest.failf "event %d differs" j)
        trace
  done

let test_binary_file_roundtrip () =
  let prng = Prng.create ~seed:8 in
  let trace = Trace_gen.random prng Trace_gen.default in
  let path = Filename.temp_file "fttrace" ".ftb" in
  Trace_binary.to_file path trace;
  (match Trace_binary.of_file path with
  | Error msg -> Alcotest.fail msg
  | Ok trace' -> Alcotest.(check int) "length" (Trace.length trace) (Trace.length trace'));
  Sys.remove path

let test_binary_compact () =
  let prng = Prng.create ~seed:9 in
  let trace = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 1000 } in
  let binary = Bytes.length (Trace_binary.to_bytes trace) in
  let text = String.length (Ft_trace.Trace_format.to_string trace) in
  Alcotest.(check bool)
    (Printf.sprintf "binary (%d) ≤ half of text (%d)" binary text)
    true
    (2 * binary <= text)

let test_binary_bad_inputs () =
  let check_err msg data =
    match Trace_binary.of_bytes data with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail msg
  in
  check_err "empty" (Bytes.create 0);
  check_err "bad magic" (Bytes.of_string "NOPE\x01\x01\x00\x00\x00");
  check_err "bad version" (Bytes.of_string "FTRB\x63\x01\x00\x00\x00");
  (* truncated: header promises one event, none present *)
  check_err "truncated" (Bytes.of_string "FTRB\x01\x02\x00\x01\x01")

let qcheck_binary_fuzz =
  QCheck.Test.make ~name:"binary decoder total on random bytes" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s ->
      match Trace_binary.of_bytes (Bytes.of_string s) with Ok _ | Error _ -> true)

let () =
  Alcotest.run "online"
    [
      ( "monitor",
        [
          Alcotest.test_case "basic detection" `Quick test_basic_detection;
          Alcotest.test_case "race callback" `Quick test_on_race_callback;
          Alcotest.test_case "lock validation" `Quick test_lock_validation;
          Alcotest.test_case "fork/join validation" `Quick test_fork_join_validation;
          Alcotest.test_case "join lifecycle" `Quick test_join_lifecycle;
          Alcotest.test_case "many races feed" `Quick test_many_races_feed;
          Alcotest.test_case "range validation" `Quick test_range_validation;
          Alcotest.test_case "mixed sync styles" `Quick test_mixed_sync_styles;
          Alcotest.test_case "rejection leaves state" `Quick test_rejection_leaves_state;
          Alcotest.test_case "matches offline runs" `Quick test_matches_offline;
        ] );
      ( "binary",
        [
          Alcotest.test_case "roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_binary_file_roundtrip;
          Alcotest.test_case "compactness" `Quick test_binary_compact;
          Alcotest.test_case "bad inputs" `Quick test_binary_bad_inputs;
          QCheck_alcotest.to_alcotest qcheck_binary_fuzz;
        ] );
    ]
