(* ft_obs — the telemetry layer:

   - log-bucketed histogram: bucket maths, quantile bounds, atomicity under
     concurrent observers from several domains;
   - registry counters/gauges: monotonicity, negative-add no-op, idempotent
     renders;
   - Prometheus text exposition shape (HELP/TYPE once per name, cumulative
     buckets, +Inf, label escaping);
   - Json render/parse roundtrips, including the documents the registry and
     Metrics emit;
   - Metrics ratio helpers: finite and sane on empty and on near-overflow
     counters, field_names/to_array stay in lock-step. *)

module Json = Ft_obs.Json
module Histogram = Ft_obs.Histogram
module Registry = Ft_obs.Registry
module Metrics = Ft_core.Metrics

(* --- histogram: bucket maths ------------------------------------------------ *)

let test_bucket_edges () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Histogram.bucket_of 0);
  Alcotest.(check int) "negative clamps to bucket 0" 0 (Histogram.bucket_of (-7));
  Alcotest.(check int) "1 -> bucket 1" 1 (Histogram.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (Histogram.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (Histogram.bucket_of 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (Histogram.bucket_of 4);
  Alcotest.(check int) "7 -> bucket 3" 3 (Histogram.bucket_of 7);
  Alcotest.(check int) "8 -> bucket 4" 4 (Histogram.bucket_of 8);
  Alcotest.(check int) "max_int lands in the last bucket"
    (Histogram.nbuckets - 1)
    (Histogram.bucket_of max_int);
  (* upper bounds are inclusive and nested: bucket_of (bucket_upper i) = i *)
  for i = 1 to Histogram.nbuckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bucket_upper %d is in bucket %d" i i)
      i
      (Histogram.bucket_of (Histogram.bucket_upper i))
  done;
  Alcotest.(check int) "bucket_upper saturates" max_int
    (Histogram.bucket_upper (Histogram.nbuckets - 1))

let test_histogram_quantiles () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty quantile is 0" 0 (Histogram.quantile h 0.5);
  Alcotest.(check int) "empty max is 0" 0 (Histogram.max_value h);
  (* 90 fast samples and 10 slow ones: p50 must bound the fast cluster, p99
     the slow one, and every quantile is a sound upper bound *)
  for _ = 1 to 90 do
    Histogram.observe h 100
  done;
  for _ = 1 to 10 do
    Histogram.observe h 10_000
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check int) "sum" ((90 * 100) + (10 * 10_000)) (Histogram.sum h);
  Alcotest.(check int) "max tracks the largest sample" 10_000 (Histogram.max_value h);
  let p50 = Histogram.quantile h 0.5 and p99 = Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 bounds the fast cluster" true (p50 >= 100 && p50 < 10_000);
  Alcotest.(check bool) "p99 reaches the slow cluster" true (p99 >= 10_000);
  Alcotest.(check int) "quantiles clamp to the observed max" 10_000
    (Histogram.quantile h 1.0);
  (* within-2x relative error contract on a single-value histogram *)
  let h1 = Histogram.create () in
  Histogram.observe h1 1000;
  let q = Histogram.quantile h1 0.5 in
  Alcotest.(check bool) "single sample: q in [v, 2v)" true (q >= 1000 && q < 2000)

let test_histogram_cumulative () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 1; 1; 2; 5; 900 ];
  let cum = Histogram.cumulative h in
  (* cumulative counts never decrease and end at the total *)
  let rec monotone last = function
    | [] -> true
    | (_, c) :: rest -> c >= last && monotone c rest
  in
  Alcotest.(check bool) "cumulative is monotone" true (monotone 0 cum);
  let _, total = List.nth cum (List.length cum - 1) in
  Alcotest.(check int) "cumulative ends at count" (Histogram.count h) total

let test_histogram_multidomain () =
  let h = Histogram.create () in
  let per_domain = 20_000 in
  let worker () =
    for i = 1 to per_domain do
      Histogram.observe h (i land 1023)
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost observations across domains" (4 * per_domain)
    (Histogram.count h);
  let expected_sum =
    let s = ref 0 in
    for i = 1 to per_domain do
      s := !s + (i land 1023)
    done;
    4 * !s
  in
  Alcotest.(check int) "sum is exact under contention" expected_sum (Histogram.sum h)

(* --- registry --------------------------------------------------------------- *)

let test_registry_counters_gauges () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"test counter" "t_total" in
  let g = Registry.gauge reg "t_gauge" in
  Registry.incr c;
  Registry.add c 41;
  Alcotest.(check int) "incr + add" 42 (Registry.counter_value c);
  Registry.add c (-7);
  Alcotest.(check int) "negative add is a no-op" 42 (Registry.counter_value c);
  Registry.set_counter c 100;
  Alcotest.(check int) "set_counter overwrites" 100 (Registry.counter_value c);
  Registry.set g 5;
  Registry.set g 3;
  Alcotest.(check int) "gauges move both ways" 3 (Registry.gauge_value g)

let test_registry_multidomain_incr () =
  let reg = Registry.create () in
  let c = Registry.counter reg "contended_total" in
  let per_domain = 50_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Registry.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain) (Registry.counter_value c)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_prometheus_exposition () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"batches" "serve_batches_ingested_total" in
  let g0 = Registry.gauge reg ~labels:[ ("shard", "0") ] "ring_occupancy" in
  let g1 = Registry.gauge reg ~labels:[ ("shard", "1") ] "ring_occupancy" in
  let h = Registry.histogram reg ~help:"latency" "ingest_ns" in
  Registry.add c 3;
  Registry.set g0 7;
  Registry.set g1 9;
  Histogram.observe h 5;
  Histogram.observe h 1_000;
  let text = Registry.to_prometheus reg in
  Alcotest.(check bool) "HELP line" true
    (contains text "# HELP serve_batches_ingested_total batches");
  Alcotest.(check bool) "TYPE counter" true
    (contains text "# TYPE serve_batches_ingested_total counter");
  Alcotest.(check bool) "counter sample" true
    (contains text "serve_batches_ingested_total 3");
  Alcotest.(check bool) "labelled gauge shard 0" true
    (contains text "ring_occupancy{shard=\"0\"} 7");
  Alcotest.(check bool) "labelled gauge shard 1" true
    (contains text "ring_occupancy{shard=\"1\"} 9");
  (* one header pair for the two ring_occupancy series *)
  let count_sub s =
    let n = ref 0 and i = ref 0 in
    let ls = String.length s and lt = String.length text in
    while !i + ls <= lt do
      if String.sub text !i ls = s then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "HELP/TYPE once per name" 1
    (count_sub "# TYPE ring_occupancy gauge");
  Alcotest.(check bool) "histogram TYPE" true (contains text "# TYPE ingest_ns histogram");
  Alcotest.(check bool) "bucket series" true (contains text "ingest_ns_bucket{le=\"");
  Alcotest.(check bool) "+Inf bucket" true (contains text "le=\"+Inf\"} 2");
  Alcotest.(check bool) "sum series" true (contains text "ingest_ns_sum 1005");
  Alcotest.(check bool) "count series" true (contains text "ingest_ns_count 2");
  (* renders of an idle registry are byte-identical *)
  Alcotest.(check string) "idempotent render" text (Registry.to_prometheus reg)

let test_registry_json () =
  let reg = Registry.create () in
  let c = Registry.counter reg "events_total" in
  let h = Registry.histogram reg ~labels:[ ("kind", "a\"b") ] "lat_ns" in
  Registry.add c 12;
  Histogram.observe h 256;
  let j = Registry.to_json reg in
  let text = Json.to_string j in
  (match Json.parse text with
  | Error msg -> Alcotest.failf "registry JSON does not parse: %s" msg
  | Ok parsed ->
    Alcotest.(check (option int)) "counter value" (Some 12)
      (Option.bind (Json.member "events_total" parsed) Json.to_int);
    let hist = Json.member "lat_ns{kind=\"a\\\"b\"}" parsed in
    (match hist with
    | None -> Alcotest.fail "histogram series missing from JSON"
    | Some hj ->
      Alcotest.(check (option int)) "hist count" (Some 1)
        (Option.bind (Json.member "count" hj) Json.to_int);
      Alcotest.(check (option int)) "hist sum" (Some 256)
        (Option.bind (Json.member "sum" hj) Json.to_int);
      Alcotest.(check bool) "hist p99 present" true
        (Json.member "p99" hj <> None)))

(* --- Json render/parse ------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\n\t\x01é");
        ("i", Json.Int (-42));
        ("big", Json.Int max_int);
        ("f", Json.Float 1.5);
        ("t", Json.Bool true);
        ("n", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Arr []; Json.Obj [] ]);
      ]
  in
  List.iter
    (fun render ->
      match Json.parse (render doc) with
      | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg
      | Ok parsed ->
        Alcotest.(check bool) "roundtrip preserves the document" true (parsed = doc))
    [ Json.to_string; Json.to_string_pretty ]

let test_json_nonfinite_and_errors () =
  Alcotest.(check string) "nan renders as null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf renders as null" "null"
    (Json.to_string (Json.Float Float.infinity));
  (match Json.parse "{\"a\": 1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  (match Json.parse "{\"a\": }" with
  | Ok _ -> Alcotest.fail "malformed object accepted"
  | Error _ -> ());
  (match Json.parse "\"\\u00e9 \\ud83d\\ude00\"" with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "unicode + surrogate pair decode" "é 😀" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escapes did not parse");
  match Json.parse " [1, 2.5, -3e2] " with
  | Ok (Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Float -300. ]) -> ()
  | Ok v -> Alcotest.failf "number parse surprise: %s" (Json.to_string v)
  | Error msg -> Alcotest.failf "number array failed: %s" msg

(* --- Metrics export + ratio hardening ---------------------------------------- *)

let test_metrics_field_names_arity () =
  Alcotest.(check int) "field_names covers every to_array slot"
    Metrics.field_count
    (Array.length Metrics.field_names);
  let m = Metrics.create () in
  Alcotest.(check int) "to_array arity" Metrics.field_count
    (Array.length (Metrics.to_array m))

let test_metrics_to_json_parses () =
  let m = Metrics.create () in
  m.Metrics.events <- 7;
  m.Metrics.acquires <- 3;
  match Json.parse (Metrics.to_json m) with
  | Error msg -> Alcotest.failf "Metrics.to_json does not parse: %s" msg
  | Ok doc ->
    Alcotest.(check (option int)) "events field" (Some 7)
      (Option.bind (Json.member "events" doc) Json.to_int);
    Array.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " exported") true (Json.member name doc <> None))
      Metrics.field_names

let check_finite name v =
  Alcotest.(check bool) (name ^ " is finite") true (Float.is_finite v);
  Alcotest.(check bool) (name ^ " is non-negative") true (v >= 0.0)

let ratios m =
  [
    ("acquires_skipped_ratio", Metrics.acquires_skipped_ratio m);
    ("releases_processed_ratio", Metrics.releases_processed_ratio m);
    ("deep_copy_ratio", Metrics.deep_copy_ratio m);
    ("saved_traversal_ratio", Metrics.saved_traversal_ratio m);
    ("sync_full_work_ratio", Metrics.sync_full_work_ratio m);
    ("mean_entries_per_acquire", Metrics.mean_entries_per_acquire m);
  ]

let test_metrics_ratios_empty () =
  (* an empty run divides by zero everywhere: every ratio must come out 0 *)
  let m = Metrics.create () in
  List.iter (fun (name, v) -> Alcotest.(check (float 0.0)) name 0.0 v) (ratios m)

let test_metrics_ratios_huge () =
  (* near-overflow counters: int arithmetic like saved+traversed or
     acquires+releases would wrap negative; the float-side ratios must stay
     finite and within [0, 1] for the true ratios *)
  let m = Metrics.create () in
  m.Metrics.events <- max_int;
  m.Metrics.acquires <- max_int;
  m.Metrics.releases <- max_int;
  m.Metrics.acquires_skipped <- max_int;
  m.Metrics.releases_processed <- max_int;
  m.Metrics.deep_copies <- max_int;
  m.Metrics.vc_full_ops <- max_int;
  m.Metrics.entries_traversed <- max_int;
  m.Metrics.entries_saved <- max_int;
  List.iter (fun (name, v) -> check_finite name v) (ratios m);
  Alcotest.(check bool) "saved ratio stays in [0,1]" true
    (Metrics.saved_traversal_ratio m <= 1.0);
  Alcotest.(check bool) "sync full-work ratio stays in [0,1]" true
    (Metrics.sync_full_work_ratio m <= 1.0)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "cumulative series" `Quick test_histogram_cumulative;
          Alcotest.test_case "4-domain observe" `Quick test_histogram_multidomain;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_counters_gauges;
          Alcotest.test_case "4-domain incr" `Quick test_registry_multidomain_incr;
          Alcotest.test_case "Prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "JSON exposition" `Quick test_registry_json;
        ] );
      ( "json",
        [
          Alcotest.test_case "render/parse roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite floats and bad input" `Quick
            test_json_nonfinite_and_errors;
        ] );
      ( "metrics export",
        [
          Alcotest.test_case "field_names arity" `Quick test_metrics_field_names_arity;
          Alcotest.test_case "to_json parses" `Quick test_metrics_to_json_parses;
          Alcotest.test_case "ratios on empty run" `Quick test_metrics_ratios_empty;
          Alcotest.test_case "ratios near overflow" `Quick test_metrics_ratios_huge;
        ] );
    ]
