(* Tests for the tree-clock data structure: unit cases, structural
   invariants, and differential testing against vector clocks — a simulated
   DJIT+ run over random well-formed traces maintains thread and lock clocks
   with both structures and compares values after every event. *)

module Vc = Ft_core.Vector_clock
module Tc = Ft_core.Tree_clock
module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector

let test_create () =
  let tc = Tc.create 4 ~owner:2 in
  Alcotest.(check int) "size" 4 (Tc.size tc);
  Alcotest.(check int) "root" 2 (Tc.root tc);
  for i = 0 to 3 do
    Alcotest.(check int) "bottom" 0 (Tc.get tc i)
  done;
  Alcotest.(check bool) "invariants" true (Tc.check_invariants tc)

let test_inc () =
  let tc = Tc.create 3 ~owner:0 in
  Tc.inc tc 1;
  Tc.inc tc 2;
  Alcotest.(check int) "root advanced" 3 (Tc.get tc 0);
  Alcotest.(check int) "others untouched" 0 (Tc.get tc 1)

let test_basic_join () =
  let a = Tc.create 3 ~owner:0 and b = Tc.create 3 ~owner:1 in
  Tc.inc a 1;
  Tc.inc b 5;
  Tc.join ~into:a b;
  Alcotest.(check int) "learned b" 5 (Tc.get a 1);
  Alcotest.(check int) "kept own" 1 (Tc.get a 0);
  Alcotest.(check bool) "a invariants" true (Tc.check_invariants a);
  (* joining again changes nothing *)
  Alcotest.(check int) "idempotent" 0 (Tc.join_count ~into:a b)

let test_transitive_join () =
  (* a learns b, b learns c, then a learns b again → a must know c *)
  let a = Tc.create 3 ~owner:0 and b = Tc.create 3 ~owner:1 and c = Tc.create 3 ~owner:2 in
  Tc.inc a 1;
  Tc.inc b 1;
  Tc.inc c 7;
  Tc.join ~into:b c;
  Tc.inc b 1 (* b's clock moves past the value a saw *);
  Tc.join ~into:a b;
  Alcotest.(check int) "a knows c through b" 7 (Tc.get a 2);
  Alcotest.(check int) "a knows b" 2 (Tc.get a 1);
  Alcotest.(check bool) "invariants" true (Tc.check_invariants a)

let test_monotone_copy () =
  let t1 = Tc.create 3 ~owner:1 in
  Tc.inc t1 4;
  let lock = Tc.create 3 ~owner:0 in
  Tc.monotone_copy ~into:lock t1;
  Alcotest.(check int) "root moved" 1 (Tc.root lock);
  Alcotest.(check int) "value copied" 4 (Tc.get lock 1);
  Alcotest.(check bool) "invariants" true (Tc.check_invariants lock);
  (* copy again with no change: early exit, still equal *)
  Tc.monotone_copy ~into:lock t1;
  Alcotest.(check int) "still equal" 4 (Tc.get lock 1)

let test_force_copy () =
  let t1 = Tc.create 3 ~owner:1 in
  Tc.inc t1 4;
  let sync = Tc.create 3 ~owner:2 in
  Tc.inc sync 9 (* sync carries unrelated (non-⊑) information *);
  Tc.force_copy ~into:sync t1;
  Alcotest.(check int) "overwritten" 0 (Tc.get sync 2);
  Alcotest.(check int) "copied" 4 (Tc.get sync 1);
  Alcotest.(check int) "root" 1 (Tc.root sync);
  Alcotest.(check bool) "invariants" true (Tc.check_invariants sync)

let test_leq_and_to_vc () =
  let a = Tc.create 2 ~owner:0 and b = Tc.create 2 ~owner:1 in
  Tc.inc a 1;
  Tc.inc b 2;
  Tc.join ~into:b a;
  Alcotest.(check bool) "a ⊑ b" true (Tc.leq a b);
  Alcotest.(check bool) "b ⋢ a" false (Tc.leq b a);
  Alcotest.(check (array int)) "snapshot" [| 1; 2 |] (Vc.to_array (Tc.to_vc b))

(* --- differential simulation -------------------------------------------- *)

(* Run DJIT+'s clock discipline over a trace twice — once with vector
   clocks, once with tree clocks — and compare all clock values after every
   event, checking tree invariants as we go. *)
let simulate trace =
  let n = trace.Trace.nthreads in
  let nlocks = Stdlib.max 1 trace.Trace.nlocks in
  let vcs = Array.init n (fun i -> let c = Vc.create n in Vc.set c i 1; c) in
  let tcs = Array.init n (fun i -> let c = Tc.create n ~owner:i in Tc.inc c 1; c) in
  let lock_vc = Array.init nlocks (fun _ -> Vc.create n) in
  let lock_tc = Array.init nlocks (fun i -> ignore i; Tc.create n ~owner:0) in
  let lock_used = Array.make nlocks false in
  let agree msg tc vc =
    for i = 0 to n - 1 do
      if Tc.get tc i <> Vc.get vc i then
        Alcotest.failf "%s: entry %d differs (tc=%d vc=%d)" msg i (Tc.get tc i) (Vc.get vc i)
    done;
    if not (Tc.check_invariants tc) then Alcotest.failf "%s: invariants broken" msg
  in
  Trace.iteri
    (fun idx (e : Event.t) ->
      let t = e.Event.thread in
      (match e.Event.op with
      | Event.Read _ | Event.Write _ -> ()
      | Event.Acquire l | Event.Acquire_load l ->
        if lock_used.(l) then begin
          Vc.join ~into:vcs.(t) lock_vc.(l);
          Tc.join ~into:tcs.(t) lock_tc.(l)
        end
      | Event.Release l ->
        lock_used.(l) <- true;
        Vc.copy_into ~into:lock_vc.(l) vcs.(t);
        if Tc.get lock_tc.(l) t < Tc.get tcs.(t) t then
          Tc.monotone_copy ~into:lock_tc.(l) tcs.(t);
        Vc.inc vcs.(t) t;
        Tc.inc tcs.(t) 1
      | Event.Release_store l ->
        lock_used.(l) <- true;
        Vc.copy_into ~into:lock_vc.(l) vcs.(t);
        Tc.force_copy ~into:lock_tc.(l) tcs.(t);
        Vc.inc vcs.(t) t;
        Tc.inc tcs.(t) 1
      | Event.Fork u ->
        Vc.join ~into:vcs.(u) vcs.(t);
        Tc.join ~into:tcs.(u) tcs.(t);
        Vc.inc vcs.(t) t;
        Tc.inc tcs.(t) 1
      | Event.Join u ->
        Vc.join ~into:vcs.(t) vcs.(u);
        Tc.join ~into:tcs.(t) tcs.(u));
      agree (Printf.sprintf "event %d (thread %d)" idx t) tcs.(t) vcs.(t);
      match e.Event.op with
      | Event.Release l | Event.Release_store l ->
        agree (Printf.sprintf "event %d (lock %d)" idx l) lock_tc.(l) lock_vc.(l)
      | Event.Read _ | Event.Write _ | Event.Acquire _ | Event.Acquire_load _ | Event.Fork _
      | Event.Join _ -> ())
    trace

let test_differential_random () =
  let prng = Prng.create ~seed:99 in
  for i = 0 to 40 do
    let params =
      {
        Trace_gen.nthreads = 2 + (i mod 5);
        nlocks = 1 + (i mod 4);
        nlocs = 2;
        length = 150;
        atomics = i mod 2 = 0;
        forkjoin = i mod 3 = 0;
      }
    in
    simulate (Trace_gen.random prng params)
  done

let qcheck_differential =
  QCheck.Test.make ~name:"tree clocks agree with vector clocks" ~count:150
    QCheck.(pair small_nat small_nat)
    (fun (seed, shape) ->
      let prng = Prng.create ~seed:(seed + 1) in
      let params =
        {
          Trace_gen.nthreads = 2 + (shape mod 6);
          nlocks = 1 + (shape mod 5);
          nlocs = 2;
          length = 100;
          atomics = shape mod 2 = 0;
          forkjoin = shape mod 3 = 0;
        }
      in
      simulate (Trace_gen.random prng params);
      true)

(* --- the detector built on tree clocks ---------------------------------- *)

let test_fasttrack_tc_matches_fasttrack () =
  let prng = Prng.create ~seed:123 in
  for i = 0 to 30 do
    let params =
      {
        Trace_gen.nthreads = 2 + (i mod 5);
        nlocks = i mod 4;
        nlocs = 1 + (i mod 4);
        length = 120;
        atomics = i mod 2 = 0;
        forkjoin = i mod 3 = 0;
      }
    in
    let trace = Trace_gen.random prng params in
    let expected = Detector.racy_locations (Engine.run Engine.Fasttrack trace) in
    let got = Detector.racy_locations (Engine.run Engine.Fasttrack_tc trace) in
    Alcotest.(check (list int)) (Printf.sprintf "iteration %d" i) expected got
  done

let () =
  Alcotest.run "tree_clock"
    [
      ( "unit",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "inc" `Quick test_inc;
          Alcotest.test_case "basic join" `Quick test_basic_join;
          Alcotest.test_case "transitive join" `Quick test_transitive_join;
          Alcotest.test_case "monotone copy" `Quick test_monotone_copy;
          Alcotest.test_case "force copy" `Quick test_force_copy;
          Alcotest.test_case "leq / to_vc" `Quick test_leq_and_to_vc;
        ] );
      ( "differential",
        [
          Alcotest.test_case "deterministic sweep" `Quick test_differential_random;
          QCheck_alcotest.to_alcotest qcheck_differential;
        ] );
      ( "detector",
        [
          Alcotest.test_case "fasttrack-tc = fasttrack" `Quick
            test_fasttrack_tc_matches_fasttrack;
        ] );
    ]
