(* racedet serve — the ingestion daemon:

   - roundtrip: batches streamed out of order over a Unix socket produce a
     REPORT byte-identical to the in-process unsharded analysis;
   - two client connections interleaving disjoint batch sets (stride 2);
   - idempotent resends, duplicate batches, universe mismatches, malformed
     payloads and unknown commands answer without corrupting the session;
   - crash-mid-stream: SIGKILL the daemon between batches, restart it from
     the per-shard .ftc checkpoints, blindly resend everything — the final
     report still matches the uninterrupted analysis.

   The daemon runs in a forked child (it spawns shard domains; the parent
   forks before ever creating a domain). *)

module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Serve = Ft_shard.Serve
module Json = Ft_obs.Json

let dir_counter = ref 0

let temp_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftserve-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let start_server ?checkpoint_dir ?resume_dir ?metrics_json ?chaos ~engine ~shards ~sampler
    socket =
  match Unix.fork () with
  | 0 ->
    (try
       Serve.run
         {
           Serve.listen = Serve.Unix_path socket;
           engine;
           shards;
           sampler;
           clock_size = None;
           checkpoint_dir;
           resume_dir;
           checkpoint_every = Serve.default_checkpoint_every;
           max_parked = Serve.default_max_parked;
           backlog = Serve.default_backlog;
           ready_file = None;
           heartbeat_s = None;
           metrics_json;
           max_restarts = Serve.default_max_restarts;
           chaos;
         }
     with exn ->
       Printf.eprintf "server died: %s\n%!" (Printexc.to_string exn);
       Unix._exit 1);
    Unix._exit 0
  | pid -> pid

let reap pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap pid

let get_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s failed: %s" what msg

let sample_trace ~seed ~length =
  let prng = Prng.create ~seed in
  Trace_gen.random prng
    {
      Trace_gen.nthreads = 4;
      nlocks = 3;
      nlocs = 10;
      length;
      atomics = true;
      forkjoin = true;
    }

(* split a trace into (base, sub-trace) batches of [batch] events *)
let slices trace ~batch =
  let n = Trace.length trace in
  let rec go base acc =
    if base >= n then List.rev acc
    else begin
      let len = Stdlib.min batch (n - base) in
      let sub =
        Trace.make ~nthreads:trace.Trace.nthreads ~nlocks:trace.Trace.nlocks
          ~nlocs:trace.Trace.nlocs
          (Array.init len (fun i -> Trace.get trace (base + i)))
      in
      go (base + len) ((base, sub) :: acc)
    end
  in
  go 0 []

let expected_report ~engine ~sampler trace =
  Serve.report_text ~events:(Trace.length trace)
    (Engine.run engine ~sampler trace)

(* --- roundtrip -------------------------------------------------------------- *)

let test_roundtrip_out_of_order () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.3 ~seed:5 in
  let trace = sample_trace ~seed:1 ~length:2_000 in
  let expected = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let pid = start_server ~engine ~shards:4 ~sampler socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  let batches = slices trace ~batch:300 in
  (* odd-numbered batches first: everything parks until the evens arrive *)
  let scrambled =
    List.filteri (fun i _ -> i mod 2 = 1) batches
    @ List.filteri (fun i _ -> i mod 2 = 0) batches
  in
  List.iter
    (fun (base, sub) -> ignore (get_ok "send_batch" (Serve.send_batch fd ~base sub)))
    scrambled;
  let report = get_ok "fetch_report" (Serve.fetch_report fd) in
  Alcotest.(check string) "serve report ≡ analyze" expected report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* --- two clients, stride 2 ---------------------------------------------------- *)

let test_two_clients_interleaved () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.Su and sampler = Sampler.all in
  let trace = sample_trace ~seed:2 ~length:1_500 in
  let expected = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let pid = start_server ~engine ~shards:2 ~sampler socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let a = Serve.connect (Serve.Unix_path socket) in
  let b = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close a; Serve.close b) @@ fun () ->
  let batches = Array.of_list (slices trace ~batch:250) in
  (* client A owns even batches, client B odd ones; B runs ahead of A *)
  Array.iteri
    (fun i (base, sub) ->
      let fd = if i mod 2 = 0 then a else b in
      ignore (get_ok "send_batch" (Serve.send_batch fd ~base sub)))
    (Array.concat
       [
         Array.of_list
           (List.filteri (fun i _ -> i mod 2 = 1) (Array.to_list batches));
         Array.of_list
           (List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list batches));
       ]);
  (* careful: the iteration above alternates conns over the reordered list —
     what matters is that both conns sent and the server reassembled *)
  let report = get_ok "fetch_report" (Serve.fetch_report b) in
  Alcotest.(check string) "two-client report ≡ analyze" expected report;
  get_ok "shutdown" (Serve.shutdown a);
  reap pid

(* --- protocol edges ------------------------------------------------------------ *)

let test_protocol_edges () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.St and sampler = Sampler.all in
  let trace = sample_trace ~seed:3 ~length:600 in
  let socket = Filename.concat dir "serve.sock" in
  let pid = start_server ~engine ~shards:3 ~sampler socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  let batches = Array.of_list (slices trace ~batch:200) in
  let base0, sub0 = batches.(0) in
  let total = get_ok "first batch" (Serve.send_batch fd ~base:base0 sub0) in
  Alcotest.(check int) "total after batch 0" 200 total;
  (* duplicate resend is idempotent *)
  let total = get_ok "duplicate" (Serve.send_batch fd ~base:base0 sub0) in
  Alcotest.(check int) "duplicate leaves total alone" 200 total;
  (* a batch from a different universe is refused *)
  let alien = sample_trace ~seed:99 ~length:50 in
  let alien =
    Trace.make ~nthreads:(alien.Trace.nthreads + 3) ~nlocks:alien.Trace.nlocks
      ~nlocs:alien.Trace.nlocs
      (Array.init (Trace.length alien) (Trace.get alien))
  in
  (match Serve.send_batch fd ~base:200 alien with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "universe mismatch accepted");
  (* malformed payload and unknown commands answer ERR without wedging *)
  let module U = Unix in
  let write_all s =
    let b = Bytes.of_string s in
    ignore (U.write fd b 0 (Bytes.length b))
  in
  write_all "BATCH 200 5\nHELLO";
  write_all "NONSENSE\n";
  (* both must answer ERR, in order *)
  let read_line () =
    let b = Buffer.create 32 in
    let one = Bytes.create 1 in
    let rec go () =
      if U.read fd one 0 1 = 0 then Alcotest.fail "server closed on bad input"
      else if Bytes.get one 0 = '\n' then Buffer.contents b
      else (Buffer.add_char b (Bytes.get one 0); go ())
    in
    go ()
  in
  List.iter
    (fun what ->
      let line = read_line () in
      Alcotest.(check bool) (what ^ " answered ERR") true
        (String.length line >= 3 && String.sub line 0 3 = "ERR"))
    [ "malformed payload"; "unknown command" ];
  (* the connection still works: finish the stream and report *)
  Array.iteri
    (fun i (base, sub) ->
      if i > 0 then ignore (get_ok "rest" (Serve.send_batch fd ~base sub)))
    batches;
  let report = get_ok "fetch_report after errors" (Serve.fetch_report fd) in
  let expected = expected_report ~engine ~sampler trace in
  Alcotest.(check string) "session survived bad input" expected report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* --- crash mid-stream, resume from .ftc checkpoints ---------------------------- *)

let test_crash_and_resume () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.cold_region ~threshold:2 in
  let trace = sample_trace ~seed:4 ~length:1_800 in
  let expected = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let ckpt = Filename.concat dir "ckpt" in
  Unix.mkdir ckpt 0o700;
  Fun.protect ~finally:(fun () -> rm_rf ckpt) @@ fun () ->
  let batches = Array.of_list (slices trace ~batch:300) in
  let shards = 4 in
  (* phase 1: ingest half the stream, checkpointing after every batch *)
  let pid = start_server ~engine ~shards ~sampler ~checkpoint_dir:ckpt socket in
  let survived_events =
    Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
    let fd = Serve.connect (Serve.Unix_path socket) in
    Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
    let total = ref 0 in
    for i = 0 to 2 do
      let base, sub = batches.(i) in
      total := get_ok "phase-1 batch" (Serve.send_batch fd ~base sub)
    done;
    (* SIGKILL between batches: no goodbye, no final checkpoint *)
    Unix.kill pid Sys.sigkill;
    reap pid;
    !total
  in
  Alcotest.(check int) "three batches ingested before the crash" 900 survived_events;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (* phase 2: restart from the checkpoint directory, blindly resend all *)
  let pid =
    start_server ~engine ~shards ~sampler ~checkpoint_dir:ckpt ~resume_dir:ckpt socket
  in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  (* the first resent batch's reply proves state survived the crash *)
  let base0, sub0 = batches.(0) in
  let total = get_ok "resent batch 0" (Serve.send_batch fd ~base:base0 sub0) in
  Alcotest.(check int) "resumed from the checkpoint, not from zero" 900 total;
  Array.iteri
    (fun i (base, sub) ->
      if i > 0 then ignore (get_ok "resend" (Serve.send_batch fd ~base sub)))
    batches;
  let report = get_ok "post-resume report" (Serve.fetch_report fd) in
  Alcotest.(check string) "crash+resume report ≡ analyze" expected report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* A missing/garbled checkpoint set must degrade to a fresh start, and the
   blind resend still converges to the exact report. *)
let test_resume_with_corrupt_checkpoint_starts_fresh () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.Fasttrack and sampler = Sampler.all in
  let trace = sample_trace ~seed:6 ~length:800 in
  let expected = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let ckpt = Filename.concat dir "ckpt" in
  Unix.mkdir ckpt 0o700;
  Fun.protect ~finally:(fun () -> rm_rf ckpt) @@ fun () ->
  Out_channel.with_open_bin (Filename.concat ckpt "router.ftc") (fun oc ->
      Out_channel.output_string oc "FTCKgarbage");
  let pid = start_server ~engine ~shards:2 ~sampler ~resume_dir:ckpt socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  List.iter
    (fun (base, sub) -> ignore (get_ok "send" (Serve.send_batch fd ~base sub)))
    (slices trace ~batch:250);
  let report = get_ok "report" (Serve.fetch_report fd) in
  Alcotest.(check string) "fresh start still exact" expected report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* --- slow server: partial reads must not spuriously fail ----------------------- *)

(* A fake server on a socketpair trickles a REPORT reply out in tiny chunks
   with pauses longer than the client's receive timeout, so every chunk
   boundary fires EAGAIN mid-blob.  The regression: the client used to treat
   the first EAGAIN as a hard failure; it must instead keep reading until its
   overall deadline. *)

let fake_report_payload =
  String.concat "" (List.init 24 (fun i -> Printf.sprintf "report line %d\n" i))

let with_fake_server ~serve f =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
    Unix.close client;
    (try serve server with _ -> ());
    (try Unix.close server with Unix.Unix_error _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close server;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close client with Unix.Unix_error _ -> ());
        kill_and_reap pid)
      (fun () -> f client)

let write_slowly ?(chunk = 9) ?(pause = 0.05) fd s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let len = Stdlib.min chunk (n - !i) in
    ignore (Unix.write_substring fd s !i len);
    ignore (Unix.select [] [] [] pause);
    i := !i + len
  done

let test_slow_server_partial_reads () =
  with_fake_server
    ~serve:(fun fd ->
      let buf = Bytes.create 64 in
      ignore (Unix.read fd buf 0 64);
      write_slowly fd
        (Printf.sprintf "REPORT %d\n" (String.length fake_report_payload));
      write_slowly fd fake_report_payload)
  @@ fun client ->
  (* a receive timeout shorter than the server's inter-chunk pause: every
     chunk boundary surfaces EAGAIN to the reader *)
  Unix.setsockopt_float client Unix.SO_RCVTIMEO 0.02;
  let report = get_ok "fetch_report from slow server" (Serve.fetch_report client) in
  Alcotest.(check string) "blob reassembled across partial reads"
    fake_report_payload report

let test_slow_server_deadline_expires () =
  with_fake_server
    ~serve:(fun fd ->
      let buf = Bytes.create 64 in
      ignore (Unix.read fd buf 0 64);
      (* claim a large blob, deliver a sliver, then stall past any deadline *)
      ignore (Unix.write_substring fd "REPORT 100000\nstall" 0 19);
      ignore (Unix.select [] [] [] 30.0))
  @@ fun client ->
  Unix.setsockopt_float client Unix.SO_RCVTIMEO 0.02;
  match Serve.fetch_report ~deadline_s:0.4 client with
  | Ok _ -> Alcotest.fail "stalled server produced a report"
  | Error msg ->
    Alcotest.(check bool) "error mentions the deadline" true
      (String.length msg > 0)

(* --- STATS under concurrent ingestion ------------------------------------------ *)

let member_int path doc =
  let rec go doc = function
    | [] -> Json.to_int doc
    | key :: rest -> Option.bind (Json.member key doc) (fun d -> go d rest)
  in
  match go doc path with
  | Some n -> n
  | None ->
    Alcotest.failf "stats JSON is missing %s" (String.concat "." path)

let test_stats_during_ingestion () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.bernoulli ~rate:0.25 ~seed:9 in
  let trace = sample_trace ~seed:8 ~length:2_000 in
  let expected_result = Engine.run engine ~sampler trace in
  let expected_report = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let pid = start_server ~engine ~shards:3 ~sampler socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let a = Serve.connect (Serve.Unix_path socket) in
  let b = Serve.connect (Serve.Unix_path socket) in
  let c = Serve.connect (Serve.Unix_path socket) in
  Fun.protect
    ~finally:(fun () -> Serve.close a; Serve.close b; Serve.close c)
  @@ fun () ->
  let batches = Array.of_list (slices trace ~batch:200) in
  let last_events = ref (-1) in
  let last_batches = ref (-1) in
  let query_stats () =
    (* Prometheus first: must expose the ingest counters as text *)
    let prom = get_ok "fetch_stats prom" (Serve.fetch_stats c ~format:`Prometheus) in
    List.iter
      (fun series ->
        Alcotest.(check bool) (series ^ " exposed") true
          (let nh = String.length prom and nn = String.length series in
           let rec go i = i + nn <= nh && (String.sub prom i nn = series || go (i + 1)) in
           go 0))
      [
        "# TYPE serve_batches_ingested_total counter";
        "serve_events_ingested_total";
        "serve_batch_ingest_ns_bucket{le=";
        "serve_shard_ring_occupancy{shard=\"0\"}";
      ];
    (* JSON: parseable, counters monotone across successive queries *)
    let text = get_ok "fetch_stats json" (Serve.fetch_stats c ~format:`Json) in
    match Json.parse text with
    | Error msg -> Alcotest.failf "STATS JSON does not parse: %s" msg
    | Ok doc ->
      let events = member_int [ "telemetry"; "serve_events_ingested_total" ] doc in
      let nbatches = member_int [ "telemetry"; "serve_batches_ingested_total" ] doc in
      Alcotest.(check bool) "events counter is monotone" true (events >= !last_events);
      Alcotest.(check bool) "batches counter is monotone" true (nbatches >= !last_batches);
      last_events := events;
      last_batches := nbatches;
      doc
  in
  (* two clients interleave disjoint batch halves; a third queries STATS
     after every round of sends *)
  let final_doc = ref None in
  Array.iteri
    (fun i (base, sub) ->
      let fd = if i mod 2 = 0 then a else b in
      ignore (get_ok "send_batch" (Serve.send_batch fd ~base sub));
      if i mod 3 = 0 then final_doc := Some (query_stats ()))
    batches;
  let doc = query_stats () in
  ignore !final_doc;
  (* final values agree with the REPORT-side analysis *)
  let n = Ft_trace.Trace.length trace in
  Alcotest.(check int) "all events ingested" n
    (member_int [ "telemetry"; "serve_events_ingested_total" ] doc);
  Alcotest.(check int) "session event count" n (member_int [ "events" ] doc);
  Alcotest.(check int) "race count matches the in-process run"
    (List.length expected_result.Ft_core.Detector.races)
    (member_int [ "races" ] doc);
  Alcotest.(check int) "merged metrics events match"
    expected_result.Ft_core.Detector.metrics.Ft_core.Metrics.events
    (member_int [ "metrics"; "events" ] doc);
  Alcotest.(check int) "no batches left parked" 0 (member_int [ "parked" ] doc);
  (* STATS instrumentation must leave the report byte-identical *)
  let report = get_ok "fetch_report" (Serve.fetch_report c) in
  Alcotest.(check string) "report unchanged by telemetry" expected_report report;
  get_ok "shutdown" (Serve.shutdown c);
  reap pid

(* --- --metrics-json on shutdown ------------------------------------------------- *)

let test_metrics_json_file () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.Su and sampler = Sampler.all in
  let trace = sample_trace ~seed:11 ~length:600 in
  let socket = Filename.concat dir "serve.sock" in
  let path = Filename.concat dir "metrics.json" in
  let pid = start_server ~engine ~shards:2 ~sampler ~metrics_json:path socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  List.iter
    (fun (base, sub) -> ignore (get_ok "send" (Serve.send_batch fd ~base sub)))
    (slices trace ~batch:200);
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid;
  (* the daemon wrote the STATS JSON document on its way out *)
  let rec wait_for tries =
    if Sys.file_exists path then ()
    else if tries = 0 then Alcotest.failf "%s was not written" path
    else begin
      ignore (Unix.select [] [] [] 0.05);
      wait_for (tries - 1)
    end
  in
  wait_for 100;
  let text = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  match Json.parse text with
  | Error msg -> Alcotest.failf "--metrics-json output does not parse: %s" msg
  | Ok doc ->
    Alcotest.(check int) "events recorded" (Ft_trace.Trace.length trace)
      (member_int [ "events" ] doc);
    Alcotest.(check bool) "merged metrics present" true
      (Json.member "metrics" doc <> None)

(* One large BATCH whose payload spans many 64 KiB recv rounds: the daemon
   must accumulate it in amortized O(1) per byte (Netbuf) and answer with
   the exact report.  The algorithmic bound itself is pinned by the Netbuf
   copied-bytes test in test_fastpath; this exercises the integration —
   blob reassembly across reads, then a correct verdict — under a
   generous wall-clock ceiling that the old quadratic accumulate would
   start to threaten as payloads grow. *)
let test_large_single_batch () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.St and sampler = Sampler.all in
  let trace = sample_trace ~seed:21 ~length:400_000 in
  let expected = expected_report ~engine ~sampler trace in
  let socket = Filename.concat dir "serve.sock" in
  let pid = start_server ~engine ~shards:4 ~sampler socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let total =
    get_ok "large batch" (Serve.send_batch ~deadline_s:60.0 fd ~base:0 trace)
  in
  Alcotest.(check int) "all events ingested in one batch" (Trace.length trace) total;
  let report = get_ok "report" (Serve.fetch_report ~deadline_s:60.0 fd) in
  Alcotest.(check string) "single large batch ≡ analyze" expected report;
  Alcotest.(check bool) "ingestion throughput sane" true
    (Unix.gettimeofday () -. t0 < 30.0)

(* A second daemon handed the path of a LIVE server must refuse to start
   (probe-with-connect), not blindly unlink the listener out from under it;
   the first server keeps serving.  (Stale socket files of crashed servers
   are still replaced — the crash/resume test exercises that path.) *)
let test_refuses_live_listener () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.all in
  let socket = Filename.concat dir "serve.sock" in
  let pid = start_server ~engine ~shards:1 ~sampler socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  Fun.protect ~finally:(fun () -> Serve.close fd) @@ fun () ->
  let pid2 = start_server ~engine ~shards:1 ~sampler socket in
  let _, status = Unix.waitpid [] pid2 in
  (match status with
  | Unix.WEXITED 1 -> ()
  | Unix.WEXITED n -> Alcotest.failf "second server exited %d, wanted 1" n
  | _ -> Alcotest.fail "second server was killed by a signal");
  (* the first server kept its socket and still answers *)
  let trace = sample_trace ~seed:41 ~length:400 in
  ignore (get_ok "send" (Serve.send_batch fd ~base:0 trace));
  let report = get_ok "report" (Serve.fetch_report fd) in
  Alcotest.(check string) "first server unharmed"
    (expected_report ~engine ~sampler trace)
    report;
  get_ok "shutdown" (Serve.shutdown fd);
  reap pid

(* SIGTERM while the listener is under connect load must still take the
   graceful path (drain → final checkpoint → metrics dump → exit 0): the
   regression was an unguarded [accept] letting EINTR escape the loop. *)
let test_sigterm_graceful_under_connect_load () =
  with_temp_dir @@ fun dir ->
  let engine = Engine.So and sampler = Sampler.all in
  let trace = sample_trace ~seed:31 ~length:1_000 in
  let socket = Filename.concat dir "serve.sock" in
  let path = Filename.concat dir "metrics.json" in
  let pid = start_server ~engine ~shards:2 ~sampler ~metrics_json:path socket in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  let fd = Serve.connect (Serve.Unix_path socket) in
  List.iter
    (fun (base, sub) -> ignore (get_ok "send" (Serve.send_batch fd ~base sub)))
    (slices trace ~batch:250);
  (* open connections plus a burst of racing connect attempts while the
     signal lands; attempts may fail once the listener is gone — fine *)
  let churn = Array.init 5 (fun i -> Serve.connect ~seed:i (Serve.Unix_path socket)) in
  Unix.kill pid Sys.sigterm;
  for _ = 1 to 20 do
    let fd2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd2 (Unix.ADDR_UNIX socket) with Unix.Unix_error _ -> ());
    try Unix.close fd2 with Unix.Unix_error _ -> ()
  done;
  let _, status = Unix.waitpid [] pid in
  Serve.close fd;
  Array.iter Serve.close churn;
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "server exited %d after SIGTERM" n
  | _ -> Alcotest.fail "server was killed by a signal");
  Alcotest.(check bool) "graceful drain wrote --metrics-json" true (Sys.file_exists path);
  Sys.remove path;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists socket)

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "out-of-order roundtrip ≡ analyze" `Quick
            test_roundtrip_out_of_order;
          Alcotest.test_case "two clients, stride 2" `Quick test_two_clients_interleaved;
          Alcotest.test_case "protocol edges" `Quick test_protocol_edges;
          Alcotest.test_case "large single batch streams through" `Quick
            test_large_single_batch;
          Alcotest.test_case "live listener refuses a second server" `Quick
            test_refuses_live_listener;
          Alcotest.test_case "SIGTERM under connect load drains gracefully" `Quick
            test_sigterm_graceful_under_connect_load;
        ] );
      ( "client robustness",
        [
          Alcotest.test_case "slow server: EAGAIN mid-blob" `Quick
            test_slow_server_partial_reads;
          Alcotest.test_case "stalled server: deadline expires" `Quick
            test_slow_server_deadline_expires;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "STATS during two-client ingestion" `Quick
            test_stats_during_ingestion;
          Alcotest.test_case "--metrics-json on shutdown" `Quick test_metrics_json_file;
        ] );
      ( "crash/resume",
        [
          Alcotest.test_case "SIGKILL mid-stream, resume from .ftc" `Quick
            test_crash_and_resume;
          Alcotest.test_case "corrupt checkpoint degrades to fresh start" `Quick
            test_resume_with_corrupt_checkpoint_starts_fresh;
        ] );
    ]
