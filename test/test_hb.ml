(* Tests for the brute-force HB oracle: ordering on litmus traces and the
   declarative timestamps of Eqs 1–10, checked against the clock values the
   paper works out for the Fig. 1 execution. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Hb = Ft_trace.Hb
module Litmus = Ft_trace.Litmus

let ev = Event.mk

let fig1 = Litmus.fig1.Litmus.trace
let fig1_sampled = Litmus.fig1.Litmus.sampled

(* paper event names e1..e18 are indices 0..17 *)
let e n = n - 1

let test_ordering_thread_order () =
  let c = Hb.closure fig1 in
  Alcotest.(check bool) "e1 ≤ e5 (same thread)" true (Hb.ordered c (e 1) (e 5));
  Alcotest.(check bool) "reflexive" true (Hb.ordered c 3 3);
  Alcotest.(check bool) "no backwards order" false (Hb.ordered c (e 5) (e 1))

let test_ordering_lock_edges () =
  let c = Hb.closure fig1 in
  (* e6 = rel(l1)@t1, e8 = acq(l1)@t2 *)
  Alcotest.(check bool) "rel→acq edge" true (Hb.ordered c (e 6) (e 8));
  (* facts cited in §4.1: e7 ≤HB e12, e11 ≰HB e12 *)
  Alcotest.(check bool) "e7 ≤HB e12" true (Hb.ordered c (e 7) (e 12));
  Alcotest.(check bool) "e11 ≰HB e12" false (Hb.ordered c (e 11) (e 12));
  (* e7 ∥ e9: the x-race of the execution *)
  Alcotest.(check bool) "e7 ∥ e9" false (Hb.ordered c (e 7) (e 9))

let test_racy_pairs_fig1 () =
  let races = Hb.racy_pairs fig1 in
  Alcotest.(check (list (pair int int))) "only (e7,e9) races" [ (e 7, e 9) ] races

let test_racy_pairs_sampled_fig1 () =
  Alcotest.(check (list (pair int int)))
    "no sampled race" []
    (Hb.racy_pairs_sampled fig1 ~sampled:fig1_sampled);
  Alcotest.(check bool) "has_sampled_race" false
    (Hb.has_sampled_race fig1 ~sampled:fig1_sampled)

let test_racy_locations () =
  let all = Array.map Event.is_access (Array.init 18 (Trace.get fig1)) in
  Alcotest.(check (list int)) "x (loc 0) is the racy location" [ 0 ]
    (Hb.racy_locations fig1 ~sampled:all)

let test_local_times_ft_fig1 () =
  let l = Hb.local_times_ft fig1 in
  (* t1 releases at e6, e10, e13, e17 *)
  Alcotest.(check int) "L(e5)=1" 1 l.(e 5);
  Alcotest.(check int) "L(e7)=2" 2 l.(e 7);
  Alcotest.(check int) "L(e11)=3" 3 l.(e 11);
  Alcotest.(check int) "L(e15)=4" 4 l.(e 15);
  Alcotest.(check int) "L(e16)=4" 4 l.(e 16);
  (* t2 performs no release *)
  Alcotest.(check int) "L(e9)=1" 1 l.(e 9);
  Alcotest.(check int) "L(e18)=1" 1 l.(e 18)

let test_timestamps_ft_fig1 () =
  let ts = Hb.timestamps_ft fig1 in
  (* the paper: C(e7) = ⟨2,0⟩, C(e11) = ⟨3,0⟩, e15/e16 share ⟨4,0⟩ *)
  Alcotest.(check (array int)) "C(e7)" [| 2; 0 |] ts.(e 7);
  Alcotest.(check (array int)) "C(e11)" [| 3; 0 |] ts.(e 11);
  Alcotest.(check (array int)) "C(e15)" [| 4; 0 |] ts.(e 15);
  Alcotest.(check (array int)) "C(e16)" [| 4; 0 |] ts.(e 16);
  (* t2 after acq(l1) at e8 knows t1 up to local time 2 — wait: the clock of
     l1 carries C(e6) = ⟨2,0⟩ post-increment? No: DJIT+ sends the clock at
     the release *before* incrementing, i.e. ⟨1,…⟩ is never visible; the
     lock stores C_t1 = ⟨1,0⟩+local = the timestamp of e6 itself, which has
     L(e6) = 1. So C(e8)(t1) = 1. *)
  Alcotest.(check int) "C(e8)(t1)" 1 ts.(e 8).(0);
  Alcotest.(check int) "C(e12)(t1)" 2 ts.(e 12).(0);
  Alcotest.(check int) "C(e14)(t1)" 3 ts.(e 14).(0);
  Alcotest.(check int) "C(e18)(t1)" 4 ts.(e 18).(0)

let test_rel_after_s_fig1 () =
  let marked = Hb.rel_after_s fig1 ~sampled:fig1_sampled in
  let expected = [ e 6; e 17 ] in
  let got = ref [] in
  Array.iteri (fun i b -> if b then got := i :: !got) marked;
  Alcotest.(check (list int)) "RelAfter_S = {e6, e17}" expected (List.rev !got)

let test_local_times_sam_fig1 () =
  let l = Hb.local_times_sam fig1 ~sampled:fig1_sampled in
  Alcotest.(check int) "L_sam(e5)=1" 1 l.(e 5);
  Alcotest.(check int) "L_sam(e7)=2" 2 l.(e 7);
  (* e10 and e13 are not in RelAfter_S, so the local time stays 2 *)
  Alcotest.(check int) "L_sam(e11)=2" 2 l.(e 11);
  Alcotest.(check int) "L_sam(e15)=2" 2 l.(e 15);
  Alcotest.(check int) "L_sam(e16)=2" 2 l.(e 16)

let test_timestamps_sam_fig1 () =
  let ts = Hb.timestamps_sam fig1 ~sampled:fig1_sampled in
  (* the lock ℓ1 carries ⟨1,0⟩ (time of e5, the last sampled event) *)
  Alcotest.(check (array int)) "C_sam(e8)" [| 1; 0 |] ts.(e 8);
  (* e12, e14 receive nothing new *)
  Alcotest.(check (array int)) "C_sam(e12)" [| 1; 0 |] ts.(e 12);
  Alcotest.(check (array int)) "C_sam(e14)" [| 1; 0 |] ts.(e 14);
  (* e18 sees the flush of e15/e16 at e17 *)
  Alcotest.(check (array int)) "C_sam(e18)" [| 2; 0 |] ts.(e 18);
  (* non-sampled t1 events e7 and e11 are now indistinguishable *)
  Alcotest.(check (array int)) "C_sam(e7)" ts.(e 11) ts.(e 7)

let test_vt_fig1 () =
  let vt = Hb.vt fig1 ~sampled:fig1_sampled in
  (* t2: e8 learns one entry from ⊥ (counted, see Hb.vt); C_sam stays ⟨1,0⟩
     through e14 and becomes ⟨2,0⟩ at e18 *)
  Alcotest.(check int) "VT(e8)" 1 vt.(e 8);
  Alcotest.(check int) "VT(e9)" 1 vt.(e 9);
  Alcotest.(check int) "VT(e12)" 1 vt.(e 12);
  Alcotest.(check int) "VT(e14)" 1 vt.(e 14);
  Alcotest.(check int) "VT(e18)" 2 vt.(e 18);
  (* t1: its clock's own component appears at the sampled e5 (one update),
     stays flat through e13, and bumps again at the sampled e15 *)
  Alcotest.(check int) "VT(e5)" 1 vt.(e 5);
  Alcotest.(check int) "VT(e7)" 1 vt.(e 7);
  Alcotest.(check int) "VT(e15)" 2 vt.(e 15)

let test_u_timestamps_fig1 () =
  let u = Hb.u_timestamps fig1 ~sampled:fig1_sampled in
  (* U(e8)(t1) = VT(e5) = 1: t2 learns one unit of t1 freshness at e8, and
     nothing more until e18 *)
  Alcotest.(check int) "U(e8)(t1)" 1 u.(e 8).(0);
  Alcotest.(check int) "U(e14)(t1)" 1 u.(e 14).(0);
  Alcotest.(check int) "U(e18)(t1)" 2 u.(e 18).(0)

let test_diff_count () =
  Alcotest.(check int) "diff" 2 (Hb.diff_count [| 1; 2; 3 |] [| 1; 5; 0 |]);
  Alcotest.(check int) "equal" 0 (Hb.diff_count [| 1 |] [| 1 |])

let test_leq () =
  Alcotest.(check bool) "leq true" true (Hb.leq [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check bool) "leq false" false (Hb.leq [| 2; 0 |] [| 1; 3 |])

let test_fork_join_edges () =
  let t =
    Trace.of_events
      [|
        ev 0 (Event.Write 0); ev 0 (Event.Fork 1); ev 1 (Event.Write 0);
        ev 0 (Event.Join 1); ev 0 (Event.Write 0);
      |]
  in
  let c = Hb.closure t in
  Alcotest.(check bool) "parent before child" true (Hb.ordered c 0 2);
  Alcotest.(check bool) "child before join" true (Hb.ordered c 2 4);
  Alcotest.(check (list (pair int int))) "no races" [] (Hb.racy_pairs t)

let test_fork_no_backedge () =
  (* without the join, parent's later write races with the child's *)
  let t =
    Trace.of_events
      [| ev 0 (Event.Fork 1); ev 1 (Event.Write 0); ev 0 (Event.Write 0) |]
  in
  Alcotest.(check (list (pair int int))) "race" [ (1, 2) ] (Hb.racy_pairs t)

let test_atomic_edges () =
  let l = Litmus.atomic_message_passing in
  Alcotest.(check (list (pair int int))) "no races" [] (Hb.racy_pairs l.Litmus.trace)

let test_atomic_copy_semantics () =
  (* relst by t0 (with data), then relst by t1 (without), then acqld by t2:
     t2 synchronizes with the *last* store only, so t0's write races with
     t2's read *)
  let t =
    Trace.of_events
      [|
        ev 0 (Event.Write 0); ev 0 (Event.Release_store 0); ev 1 (Event.Release_store 0);
        ev 2 (Event.Acquire_load 0); ev 2 (Event.Read 0);
      |]
  in
  Alcotest.(check (list (pair int int))) "copy semantics race" [ (0, 4) ] (Hb.racy_pairs t)

let test_unordered_reads_no_race () =
  let t = Trace.of_events [| ev 0 (Event.Read 0); ev 1 (Event.Read 0) |] in
  Alcotest.(check (list (pair int int))) "reads don't race" [] (Hb.racy_pairs t)

let () =
  Alcotest.run "hb"
    [
      ( "ordering",
        [
          Alcotest.test_case "thread order" `Quick test_ordering_thread_order;
          Alcotest.test_case "lock edges" `Quick test_ordering_lock_edges;
          Alcotest.test_case "fork/join edges" `Quick test_fork_join_edges;
          Alcotest.test_case "fork no back-edge" `Quick test_fork_no_backedge;
          Alcotest.test_case "atomic edges" `Quick test_atomic_edges;
          Alcotest.test_case "atomic copy semantics" `Quick test_atomic_copy_semantics;
        ] );
      ( "races",
        [
          Alcotest.test_case "fig1 racy pairs" `Quick test_racy_pairs_fig1;
          Alcotest.test_case "fig1 sampled racy pairs" `Quick test_racy_pairs_sampled_fig1;
          Alcotest.test_case "racy locations" `Quick test_racy_locations;
          Alcotest.test_case "unordered reads" `Quick test_unordered_reads_no_race;
        ] );
      ( "timestamps",
        [
          Alcotest.test_case "L_FT on fig1" `Quick test_local_times_ft_fig1;
          Alcotest.test_case "C_FT on fig1" `Quick test_timestamps_ft_fig1;
          Alcotest.test_case "RelAfter_S on fig1" `Quick test_rel_after_s_fig1;
          Alcotest.test_case "L_sam on fig1" `Quick test_local_times_sam_fig1;
          Alcotest.test_case "C_sam on fig1" `Quick test_timestamps_sam_fig1;
          Alcotest.test_case "VT on fig1" `Quick test_vt_fig1;
          Alcotest.test_case "U on fig1" `Quick test_u_timestamps_fig1;
          Alcotest.test_case "diff" `Quick test_diff_count;
          Alcotest.test_case "leq" `Quick test_leq;
        ] );
    ]
