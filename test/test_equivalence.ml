(* Property-based tests tying the detectors to the paper's theory:

   - Propositions 1, 3, 5, 6 on the declarative timestamps (oracle side);
   - Lemmas 4, 7, 8: ST, SU and SO declare races at exactly the same events,
     and their racy locations coincide with the brute-force sampled-race
     oracle; DJIT+ and FastTrack match the full-detection oracle;
   - the metrics inequalities that make the complexity argument work. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Hb = Ft_trace.Hb
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Race = Ft_core.Race
module Metrics = Ft_core.Metrics

(* ---- random-scenario generator -------------------------------------- *)

type scenario = {
  seed : int;
  params : Trace_gen.params;
  rate : float;
}

let scenario_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* nthreads = int_range 1 6 in
    let* nlocks = int_range 0 4 in
    let* nlocs = int_range 1 6 in
    let* length = int_range 5 120 in
    let* atomics = bool in
    let* forkjoin = bool in
    let* rate = oneofl [ 0.0; 0.1; 0.3; 0.5; 1.0 ] in
    return
      {
        seed;
        params = { Trace_gen.nthreads; nlocks; nlocs; length; atomics; forkjoin };
        rate;
      })

let print_scenario s =
  Printf.sprintf "seed=%d threads=%d locks=%d locs=%d len=%d atomics=%b fj=%b rate=%g" s.seed
    s.params.Trace_gen.nthreads s.params.Trace_gen.nlocks s.params.Trace_gen.nlocs
    s.params.Trace_gen.length s.params.Trace_gen.atomics s.params.Trace_gen.forkjoin s.rate

let scenario_arb = QCheck.make ~print:print_scenario scenario_gen

let materialize s =
  let prng = Prng.create ~seed:s.seed in
  let trace = Trace_gen.random prng s.params in
  let sampled =
    Array.init (Trace.length trace) (fun i ->
        Event.is_access (Trace.get trace i) && Prng.bernoulli prng ~p:s.rate)
  in
  (trace, sampled)

let count = 200

let mk name prop = QCheck.Test.make ~name ~count scenario_arb prop

(* ---- propositions ---------------------------------------------------- *)

(* Prop 1: single-entry check ⇔ pointwise ⊑ ⇔ HB, for C_FT. *)
let prop1 s =
  let trace, _ = materialize s in
  let n = Trace.length trace in
  let ts = Hb.timestamps_ft trace in
  let c = Hb.closure trace in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let t1 = (Trace.get trace i).Event.thread in
      if t1 <> (Trace.get trace j).Event.thread then begin
        let entry = ts.(i).(t1) <= ts.(j).(t1) in
        let pointwise = Hb.leq ts.(i) ts.(j) in
        let hb = Hb.ordered c i j in
        if entry <> pointwise || pointwise <> hb then ok := false
      end
    done
  done;
  !ok

(* Prop 3: the same triple equivalence for C_sam, with e1 sampled. *)
let prop3 s =
  let trace, sampled = materialize s in
  let n = Trace.length trace in
  let ts = Hb.timestamps_sam trace ~sampled in
  let c = Hb.closure trace in
  let ok = ref true in
  for i = 0 to n - 1 do
    if sampled.(i) then
      for j = i + 1 to n - 1 do
        let t1 = (Trace.get trace i).Event.thread in
        if t1 <> (Trace.get trace j).Event.thread then begin
          let entry = ts.(i).(t1) <= ts.(j).(t1) in
          let pointwise = Hb.leq ts.(i) ts.(j) in
          let hb = Hb.ordered c i j in
          if entry <> pointwise || pointwise <> hb then ok := false
        end
      done
  done;
  !ok

(* Prop 5 (algorithmic form, see Hb.u_timestamps): if e2's freshness
   knowledge of t1 covers VT(e1), then C_sam(e1) ⊑ C_sam(e2).  VT(e1) is the
   value a release of t1 at e1 would publish as U_ℓ. *)
let prop5 s =
  let trace, sampled = materialize s in
  let n = Trace.length trace in
  let cs = Hb.timestamps_sam trace ~sampled in
  let vts = Hb.vt trace ~sampled in
  let us = Hb.u_timestamps trace ~sampled in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let t1 = (Trace.get trace i).Event.thread in
      if t1 <> (Trace.get trace j).Event.thread && vts.(i) <= us.(j).(t1) then
        if not (Hb.leq cs.(i) cs.(j)) then ok := false
    done
  done;
  !ok

(* Prop 6 (algorithmic form): at most max(k, 0) entries of C_sam(e1) exceed
   C_sam(e2), where k = VT(e1) − U(e2)(t1). *)
let prop6 s =
  let trace, sampled = materialize s in
  let n = Trace.length trace in
  let cs = Hb.timestamps_sam trace ~sampled in
  let vts = Hb.vt trace ~sampled in
  let us = Hb.u_timestamps trace ~sampled in
  let nthreads = trace.Trace.nthreads in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let t1 = (Trace.get trace i).Event.thread in
      if t1 <> (Trace.get trace j).Event.thread then begin
        let k = vts.(i) - us.(j).(t1) in
        let ahead = ref 0 in
        for t = 0 to nthreads - 1 do
          if cs.(i).(t) > cs.(j).(t) then incr ahead
        done;
        if !ahead > Stdlib.min nthreads (Stdlib.max k 0) then ok := false
      end
    done
  done;
  !ok

(* ---- algorithm equivalences ------------------------------------------ *)

let run_sampling engine trace sampled =
  Engine.run engine ~sampler:(Sampler.fixed sampled) trace

(* Lemmas 7 and 8: SU, SO and the SL ablation declare races at exactly the
   events ST does. *)
let st_su_so_same_events s =
  let trace, sampled = materialize s in
  let ist = Race.indices (run_sampling Engine.St trace sampled).Detector.races in
  let isu = Race.indices (run_sampling Engine.Su trace sampled).Detector.races in
  let iso = Race.indices (run_sampling Engine.So trace sampled).Detector.races in
  let isl = Race.indices (run_sampling Engine.Sl trace sampled).Detector.races in
  let isn = Race.indices (run_sampling Engine.Sn trace sampled).Detector.races in
  ist = isu && isu = iso && iso = isl && isl = isn

(* Racy locations of the sampling engines = brute-force oracle. *)
let st_locations_match_oracle s =
  let trace, sampled = materialize s in
  let r = run_sampling Engine.St trace sampled in
  Detector.racy_locations r = Hb.racy_locations trace ~sampled

(* Full detection: DJIT+ and FastTrack racy locations match the oracle with
   every access marked. *)
let full_locations_match_oracle s =
  let trace, _ = materialize s in
  let all = Array.init (Trace.length trace) (fun i -> Event.is_access (Trace.get trace i)) in
  let expected = Hb.racy_locations trace ~sampled:all in
  Detector.racy_locations (Engine.run Engine.Djit trace) = expected
  && Detector.racy_locations (Engine.run Engine.Fasttrack trace) = expected
  && Detector.racy_locations (Engine.run Engine.Fasttrack_tc trace) = expected

(* ST at a 100% sampling rate solves the full problem. *)
let st_all_matches_djit s =
  let trace, _ = materialize s in
  Detector.racy_locations (Engine.run Engine.St ~sampler:Sampler.all trace)
  = Detector.racy_locations (Engine.run Engine.Djit trace)

(* Race existence: a sampled race exists iff the detectors declare one. *)
let existence_matches_oracle s =
  let trace, sampled = materialize s in
  let r = run_sampling Engine.So trace sampled in
  Hb.has_sampled_race trace ~sampled = (r.Detector.races <> [])

(* ---- metric invariants ------------------------------------------------ *)

let metric_invariants s =
  let trace, sampled = materialize s in
  let su = (run_sampling Engine.Su trace sampled).Detector.metrics in
  let so = (run_sampling Engine.So trace sampled).Detector.metrics in
  let st = (run_sampling Engine.St trace sampled).Detector.metrics in
  su.Metrics.acquires_skipped <= su.Metrics.acquires
  && so.Metrics.acquires_skipped <= so.Metrics.acquires
  && su.Metrics.releases_processed <= su.Metrics.releases
  && so.Metrics.deep_copies <= so.Metrics.shallow_copies + 1
  && st.Metrics.acquires_skipped = 0
  && st.Metrics.sampled_accesses = su.Metrics.sampled_accesses
  && su.Metrics.sampled_accesses = so.Metrics.sampled_accesses

(* Every reported (prior, index) pair must be a genuine race: conflicting
   accesses, HB-unordered, and (for sampling engines) both sampled. *)
let reported_pairs_are_races s =
  let trace, sampled = materialize s in
  let c = Hb.closure trace in
  let check ~check_sampled (result : Detector.result) =
    List.for_all
      (fun (p, i) ->
        p < i
        && Event.conflicting (Trace.get trace p) (Trace.get trace i)
        && (not (Hb.ordered c p i))
        && ((not check_sampled) || (sampled.(p) && sampled.(i))))
      (Race.pairs result.Detector.races)
  in
  let full_ok =
    List.for_all
      (fun engine -> check ~check_sampled:false (Engine.run engine trace))
      [ Engine.Djit; Engine.Fasttrack; Engine.Fasttrack_tc ]
  in
  let sampling_ok =
    List.for_all
      (fun engine -> check ~check_sampled:true (run_sampling engine trace sampled))
      [ Engine.St; Engine.Su; Engine.So; Engine.Sl; Engine.Sn; Engine.O1; Engine.O1u ]
  in
  full_ok && sampling_ok

(* Every race declaration carries a prior in the History-based engines. *)
let priors_always_present s =
  let trace, sampled = materialize s in
  List.for_all
    (fun engine ->
      let result = run_sampling engine trace sampled in
      List.for_all (fun r -> r.Race.prior <> None) result.Detector.races)
    [ Engine.St; Engine.Su; Engine.So; Engine.Sl; Engine.O1; Engine.O1u ]

(* Sampling can only shrink the set of racy locations. *)
let sampled_locations_subset_of_full s =
  let trace, sampled = materialize s in
  let all = Array.init (Trace.length trace) (fun i -> Event.is_access (Trace.get trace i)) in
  let sub = Hb.racy_locations trace ~sampled in
  let full = Hb.racy_locations trace ~sampled:all in
  List.for_all (fun x -> List.mem x full) sub

(* Round-trip through the textual format preserves detection results. *)
let format_roundtrip_preserves_races s =
  let trace, sampled = materialize s in
  match Ft_trace.Trace_format.parse_string (Ft_trace.Trace_format.to_string trace) with
  | Error _ -> false
  | Ok trace' ->
    Trace.length trace = Trace.length trace'
    && Race.indices (run_sampling Engine.So trace sampled).Detector.races
       = Race.indices (run_sampling Engine.So trace' sampled).Detector.races

(* SO's deep copies are bounded by the number of sampled events plus the
   fork/join edges (each sampled event changes the sampling timestamp at
   most ... once per flush; the bound of Lemma 8 is O(|S|)). *)
let so_deep_copy_bound s =
  let trace, sampled = materialize s in
  let so = (run_sampling Engine.So trace sampled).Detector.metrics in
  let stats = Trace.stats trace in
  let bound =
    so.Metrics.sampled_accesses * (1 + trace.Trace.nthreads)
    + ((stats.Trace.n_forks + stats.Trace.n_joins) * trace.Trace.nthreads)
    + trace.Trace.nthreads
  in
  so.Metrics.deep_copies <= bound

(* Skipped acquires are monotone: SU never skips fewer than SO on the same
   trace (SU tracks a full freshness vector; SO only scalars) — observation
   (2) of §A.1.2. *)
let su_skips_at_least_so s =
  let trace, sampled = materialize s in
  let su = (run_sampling Engine.Su trace sampled).Detector.metrics in
  let so = (run_sampling Engine.So trace sampled).Detector.metrics in
  su.Metrics.acquires_skipped >= so.Metrics.acquires_skipped

(* ---- the O(1)-samples engine (follow-up paper) ------------------------ *)

(* At a 100% sampling rate the adaptive sample state coincides with
   FastTrack's access by access, so the race report — indices, directions,
   priors — is byte-identical to FastTrack's.  The freshness-clock variant
   only skips no-op sync transfers, so it must agree too. *)
let o1_full_rate_is_fasttrack s =
  let trace, _ = materialize s in
  let ft = (Engine.run Engine.Fasttrack trace).Detector.races in
  (Engine.run Engine.O1 ~sampler:Sampler.all trace).Detector.races = ft
  && (Engine.run Engine.O1u ~sampler:Sampler.all trace).Detector.races = ft

(* Below 100%: o1 retains at most O(1) of ST's per-location history, so its
   verdict set can only shrink — every o1 race index is an ST race index. *)
let o1_races_subset_of_st s =
  let trace, sampled = materialize s in
  let ist = Race.indices (run_sampling Engine.St trace sampled).Detector.races in
  let io1 = Race.indices (run_sampling Engine.O1 trace sampled).Detector.races in
  List.for_all (fun i -> List.mem i ist) io1

(* …but per racy location it still reports at least one race: FastTrack's
   per-variable coverage argument, restricted to the sampled subsequence.
   Equality with the brute-force oracle pins both directions. *)
let o1_locations_match_oracle s =
  let trace, sampled = materialize s in
  let expected = Hb.racy_locations trace ~sampled in
  Detector.racy_locations (run_sampling Engine.O1 trace sampled) = expected
  && Detector.racy_locations (run_sampling Engine.O1u trace sampled) = expected

(* Divergence accounting: every ST race event the o1 engine drops is at a
   location the o1 engine has already covered — the O(1) state loses
   re-declarations, never first detections. *)
let o1_divergence_is_covered s =
  let trace, sampled = materialize s in
  let r1 = run_sampling Engine.O1 trace sampled in
  let rst = run_sampling Engine.St trace sampled in
  let io1 = Race.indices r1.Detector.races in
  let covered = Detector.racy_locations r1 in
  List.for_all
    (fun race ->
      List.mem race.Race.index io1 || List.mem race.Race.loc covered)
    rst.Detector.races

(* The uclock skips never change clock contents, so the two family members
   report byte-identical races on every sampled set. *)
let o1_family_identical s =
  let trace, sampled = materialize s in
  (run_sampling Engine.O1 trace sampled).Detector.races
  = (run_sampling Engine.O1u trace sampled).Detector.races

(* The per-sample cost bound that names the algorithm: every sample costs
   O(1) epoch checks (two per write, one per read), and a full-clock
   traversal only on a sampled write to a genuinely read-shared location —
   at most one per sample on top of the sync work, which is ST's exactly. *)
let o1_sample_cost_bound s =
  let trace, sampled = materialize s in
  let o1 = (run_sampling Engine.O1 trace sampled).Detector.metrics in
  let st = (run_sampling Engine.St trace sampled).Detector.metrics in
  o1.Metrics.sampled_accesses = st.Metrics.sampled_accesses
  && o1.Metrics.race_checks <= 2 * o1.Metrics.sampled_accesses
  && o1.Metrics.vc_full_ops <= st.Metrics.vc_full_ops + o1.Metrics.sampled_accesses

let tests =
  [
    mk "Prop 1 (C_FT characterizes HB)" prop1;
    mk "Prop 3 (C_sam characterizes HB on S)" prop3;
    mk "Prop 5 (freshness implies ordering)" prop5;
    mk "Prop 6 (freshness bounds stale entries)" prop6;
    mk "Lemma 7/8 (ST = SU = SO race events)" st_su_so_same_events;
    mk "sampled racy locations = oracle" st_locations_match_oracle;
    mk "full racy locations = oracle (DJIT+, FastTrack)" full_locations_match_oracle;
    mk "ST at 100%% = DJIT+" st_all_matches_djit;
    mk "race existence = oracle" existence_matches_oracle;
    mk "metric invariants" metric_invariants;
    mk "SO deep-copy bound" so_deep_copy_bound;
    mk "SU skips ≥ SO skips" su_skips_at_least_so;
    mk "sampled racy locations ⊆ full" sampled_locations_subset_of_full;
    mk "format round-trip preserves races" format_roundtrip_preserves_races;
    mk "reported pairs are genuine races" reported_pairs_are_races;
    mk "priors always present" priors_always_present;
    mk "O1 at 100%% = FastTrack byte-for-byte" o1_full_rate_is_fasttrack;
    mk "O1 race events ⊆ ST race events" o1_races_subset_of_st;
    mk "O1 racy locations = oracle" o1_locations_match_oracle;
    mk "O1 divergence from ST is covered" o1_divergence_is_covered;
    mk "O1 ≡ O1-U race reports" o1_family_identical;
    mk "O1 per-sample cost bound" o1_sample_cost_bound;
  ]

let () =
  Alcotest.run "equivalence"
    [ ("properties", List.map QCheck_alcotest.to_alcotest tests) ]
