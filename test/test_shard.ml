(* Sharded(E, K) ≡ E — the tentpole invariant of the location-sharded
   parallel detector:

   - deterministic grid: every engine × every sampling strategy × K ∈
     {1,2,4,8} on a mixed trace — race list, merged metrics, and the
     rendered report must be byte-identical to the unsharded engine;
   - a QCheck property over random traces/universes/engines/K;
   - litmus traces that force router edge cases: the HB edge (lock,
     fork/join) lands on every shard while the racy accesses live on
     specific other shards, and pending-bit marks cross shard boundaries;
   - sharded snapshot/restore mid-trace reproduces the uninterrupted run;
   - Metrics.merge_shards: the Σ−(K−1)·baseline contract holds pointwise
     over the full field array, and K=1 is the identity;
   - the SPSC ring delivers in order under backpressure. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Spsc = Ft_shard.Spsc
module Sharded = Ft_shard.Sharded
module Serve = Ft_shard.Serve

let engines = Engine.all @ [ Engine.Eraser ]
let shard_counts = [ 1; 2; 4; 8 ]

(* every sampling strategy the library offers, stateful ones included *)
let sampler_specs ~trace_len =
  [
    ("all", Sampler.all);
    ("none", Sampler.none);
    ("bernoulli", Sampler.bernoulli ~rate:0.3 ~seed:11);
    ("every_nth", Sampler.every_nth 3);
    ("windowed", Sampler.windowed ~period:16 ~duty:0.5);
    ("by_location", Sampler.by_location (fun x -> x mod 2 = 0) ~name:"even-locs");
    ("fixed", Sampler.fixed (Array.init trace_len (fun i -> i mod 5 <> 0)));
    ("fixed_count", Sampler.fixed_count ~k:(trace_len / 4) ~length:trace_len ~seed:7);
    ("cold_region", Sampler.cold_region ~threshold:3);
    ("adaptive", Sampler.adaptive ~base_rate:4);
  ]

let config_for trace ?(pad = 0) sampler =
  {
    Detector.nthreads = trace.Trace.nthreads;
    nlocks = trace.Trace.nlocks;
    nlocs = trace.Trace.nlocs;
    clock_size = trace.Trace.nthreads + pad;
    sampler;
  }

let run_unsharded id config trace =
  let (module D : Detector.S) = Engine.detector id in
  let d = D.create config in
  Trace.iteri (fun i e -> D.handle d i e) trace;
  D.result d

let run_sharded id ~shards config trace =
  let sh = Sharded.create ~engine:id ~shards config in
  Fun.protect ~finally:(fun () -> Sharded.stop sh) @@ fun () ->
  Trace.iteri (fun i e -> Sharded.handle sh i e) trace;
  Sharded.result sh

let same_result ~events a b =
  a.Detector.races = b.Detector.races
  && Metrics.to_array a.Detector.metrics = Metrics.to_array b.Detector.metrics
  && String.equal (Serve.report_text ~events a) (Serve.report_text ~events b)

let check_equiv name id config trace ~shards =
  let full = run_unsharded id config trace in
  let sharded = run_sharded id ~shards config trace in
  if not (same_result ~events:(Trace.length trace) full sharded) then
    Alcotest.failf "%s: Sharded(%s, K=%d) diverges (races %b, metrics %b)" name
      (Engine.name id) shards
      (full.Detector.races = sharded.Detector.races)
      (Metrics.to_array full.Detector.metrics = Metrics.to_array sharded.Detector.metrics)

(* --- deterministic grid ---------------------------------------------------- *)

let grid_trace =
  lazy
    (let prng = Prng.create ~seed:42 in
     Trace_gen.random prng
       {
         Trace_gen.nthreads = 5;
         nlocks = 3;
         nlocs = 12;
         length = 900;
         atomics = true;
         forkjoin = true;
       })

let test_grid () =
  let trace = Lazy.force grid_trace in
  let specs = sampler_specs ~trace_len:(Trace.length trace) in
  List.iter
    (fun id ->
      List.iter
        (fun (sname, sampler) ->
          List.iter
            (fun k ->
              check_equiv (Printf.sprintf "grid/%s" sname) id (config_for trace sampler)
                trace ~shards:k)
            shard_counts)
        specs)
    engines

(* --- random property -------------------------------------------------------- *)

type scenario = {
  seed : int;
  params : Trace_gen.params;
  k : int;
  pad : int;
  engine_ix : int;
  sampler_ix : int;
}

let n_prop_samplers = List.length (sampler_specs ~trace_len:1)

let scenario_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* nthreads = int_range 2 6 in
    let* nlocks = int_range 0 4 in
    let* nlocs = int_range 1 10 in
    let* length = int_range 20 250 in
    let* atomics = bool in
    let* forkjoin = bool in
    let* k = int_range 1 8 in
    let* pad = int_bound 4 in
    let* engine_ix = int_bound (List.length engines - 1) in
    let* sampler_ix = int_bound (n_prop_samplers - 1) in
    return
      {
        seed;
        params = { Trace_gen.nthreads; nlocks; nlocs; length; atomics; forkjoin };
        k;
        pad;
        engine_ix;
        sampler_ix;
      })

let print_scenario s =
  Printf.sprintf "seed=%d threads=%d locks=%d locs=%d len=%d atomics=%b fj=%b K=%d pad=%d engine=%s sampler#%d"
    s.seed s.params.Trace_gen.nthreads s.params.Trace_gen.nlocks s.params.Trace_gen.nlocs
    s.params.Trace_gen.length s.params.Trace_gen.atomics s.params.Trace_gen.forkjoin s.k
    s.pad
    (Engine.name (List.nth engines s.engine_ix))
    s.sampler_ix

let prop_shard_equivalence s =
  let prng = Prng.create ~seed:s.seed in
  let trace = Trace_gen.random prng s.params in
  let id = List.nth engines s.engine_ix in
  let _, sampler = List.nth (sampler_specs ~trace_len:(Trace.length trace)) s.sampler_ix in
  let config = config_for trace ~pad:s.pad sampler in
  let full = run_unsharded id config trace in
  let sharded = run_sharded id ~shards:s.k config trace in
  if not (same_result ~events:(Trace.length trace) full sharded) then
    QCheck.Test.fail_reportf "Sharded(%s, K=%d) diverges on %s" (Engine.name id) s.k
      (print_scenario s)
  else true

let shard_equivalence_test =
  QCheck.Test.make ~name:"Sharded(E, K) ≡ E (random traces)" ~count:30
    (QCheck.make ~print:print_scenario scenario_gen)
    prop_shard_equivalence

(* --- litmus: cross-shard sync edges ----------------------------------------- *)

(* smallest location ≥ [from] owned by shard [s] under K=4 *)
let loc_on_shard s ~from =
  let rec go x = if Sharded.owner_of ~shards:4 x = s then x else go (x + 1) in
  go from

let litmus_check ?(engines = engines) events ~nthreads ~nlocks ~nlocs ~expect_racy =
  let trace = Trace.validate (Trace.make ~nthreads ~nlocks ~nlocs (Array.of_list events)) in
  List.iter
    (fun id ->
      let config = config_for trace Sampler.all in
      List.iter (fun k -> check_equiv "litmus" id config trace ~shards:k) shard_counts;
      (* ground truth, from the HB-exact full-detection engine *)
      if id = Engine.Djit then
        Alcotest.(check (list int))
          "djit racy locations"
          expect_racy
          (Detector.racy_locations (run_unsharded id config trace)))
    engines

let ev t op = Event.mk t op

(* The HB edge (release→acquire on lock 0) is broadcast; the accesses it
   orders live on two different shards of K=4. *)
let test_litmus_lock_edge () =
  let a = loc_on_shard 1 ~from:0 and b = loc_on_shard 2 ~from:0 in
  let nlocs = Stdlib.max a b + 1 in
  (* ordered: no race on either location *)
  litmus_check ~nthreads:2 ~nlocks:1 ~nlocs ~expect_racy:[]
    [
      ev 0 (Event.Acquire 0);
      ev 0 (Event.Write a);
      ev 0 (Event.Write b);
      ev 0 (Event.Release 0);
      ev 1 (Event.Acquire 0);
      ev 1 (Event.Write a);
      ev 1 (Event.Write b);
      ev 1 (Event.Release 0);
    ];
  (* unordered: both locations race *)
  litmus_check ~nthreads:2 ~nlocks:0 ~nlocs
    ~expect_racy:(List.sort_uniq compare [ a; b ])
    [ ev 0 (Event.Write a); ev 0 (Event.Write b); ev 1 (Event.Write a); ev 1 (Event.Write b) ]

let test_litmus_fork_join_edge () =
  let a = loc_on_shard 0 ~from:0 and b = loc_on_shard 3 ~from:0 in
  let nlocs = Stdlib.max a b + 1 in
  litmus_check ~nthreads:2 ~nlocks:0 ~nlocs ~expect_racy:[]
    [
      ev 0 (Event.Write a);
      ev 0 (Event.Fork 1);
      ev 1 (Event.Write a);
      ev 1 (Event.Write b);
      ev 0 (Event.Join 1);
      ev 0 (Event.Write b);
    ]

(* A sampled access on shard-1's location sets thread 0's pending bit; the
   flush happens at a release every shard sees, and the verdict that depends
   on the flushed clock concerns shard-2's location.  With atomics, the same
   through Release_store/Acquire_load. *)
let test_litmus_pending_mark_crosses_shards () =
  let a = loc_on_shard 1 ~from:0 and b = loc_on_shard 2 ~from:0 in
  let nlocs = Stdlib.max a b + 1 in
  litmus_check ~nthreads:2 ~nlocks:1 ~nlocs
    ~expect_racy:[ b ]
    [
      ev 0 (Event.Acquire 0);
      ev 0 (Event.Read a);
      ev 0 (Event.Release 0);
      ev 1 (Event.Acquire 0);
      ev 1 (Event.Write b);
      ev 1 (Event.Release 0);
      ev 0 (Event.Write b);
    ];
  litmus_check ~nthreads:2 ~nlocks:1 ~nlocs
    ~expect_racy:[ b ]
    [
      ev 0 (Event.Read a);
      ev 0 (Event.Release_store 0);
      ev 1 (Event.Acquire_load 0);
      ev 1 (Event.Write b);
      ev 0 (Event.Write b);
    ]

(* The O(1)-samples engines keep no per-location clocks: everything a shard
   knows about a remote thread's sampled activity arrives as a pending-bit
   mark.  This trace makes the mark the only driver of the epoch flushes —
   the accesses live on shard 1 (K=4), while the flush decisions they feed
   (the o1-u release-side skip at e4, the re-publish at e6, the re-acquire
   skip at e3) are broadcast and must replay identically on every shard and
   on the sync-only baseline instance, or the merged skip/publish counters
   and the final read-write race on [a] diverge from the unsharded run. *)
let test_litmus_note_sampled_replication () =
  let a = loc_on_shard 1 ~from:0 in
  let nlocs = a + 1 in
  litmus_check
    ~engines:[ Engine.Djit; Engine.O1; Engine.O1u; Engine.Su; Engine.So ]
    ~nthreads:2 ~nlocks:1 ~nlocs ~expect_racy:[ a ]
    [
      ev 0 (Event.Acquire 0);
      ev 0 (Event.Read a);     (* pending mark crosses to every shard *)
      ev 0 (Event.Release 0);  (* flush: first publish *)
      ev 0 (Event.Acquire 0);  (* nothing fresh: acquire-side skip *)
      ev 0 (Event.Release 0);  (* no sample since flush: release-side skip *)
      ev 0 (Event.Acquire 0);
      ev 0 (Event.Read a);     (* second mark, same location *)
      ev 0 (Event.Release 0);  (* flush again: must re-publish *)
      ev 1 (Event.Write a);    (* races with both sampled reads *)
    ]

(* --- sharded snapshot / restore --------------------------------------------- *)

let test_sharded_snapshot_restore () =
  let prng = Prng.create ~seed:7 in
  let trace =
    Trace_gen.random prng
      {
        Trace_gen.default with
        Trace_gen.nthreads = 4;
        nlocks = 2;
        nlocs = 10;
        length = 600;
        forkjoin = true;
      }
  in
  let n = Trace.length trace in
  List.iter
    (fun (id, sampler) ->
      let config = config_for trace sampler in
      let full = run_unsharded id config trace in
      let k = 4 in
      let sh = Sharded.create ~engine:id ~shards:k config in
      for i = 0 to (n / 2) - 1 do
        Sharded.handle sh i (Trace.get trace i)
      done;
      let shards_snap = Sharded.shard_snapshots sh in
      let router_snap = Sharded.router_snapshot sh in
      Sharded.stop sh;
      let sh' = Sharded.restore ~engine:id ~shards:k config ~router:router_snap shards_snap in
      Fun.protect ~finally:(fun () -> Sharded.stop sh') @@ fun () ->
      Alcotest.(check int) "event count restored" (n / 2) (Sharded.events sh');
      for i = n / 2 to n - 1 do
        Sharded.handle sh' i (Trace.get trace i)
      done;
      let resumed = Sharded.result sh' in
      if not (same_result ~events:n full resumed) then
        Alcotest.failf "%s: sharded restore diverges" (Engine.name id))
    [
      (Engine.So, Sampler.cold_region ~threshold:2);
      (Engine.Su, Sampler.adaptive ~base_rate:3);
      (Engine.St, Sampler.bernoulli ~rate:0.4 ~seed:5);
      (Engine.Fasttrack, Sampler.all);
    ]

let test_restore_rejects_wrong_k () =
  let prng = Prng.create ~seed:8 in
  let trace = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 100 } in
  let config = config_for trace Sampler.all in
  let sh = Sharded.create ~engine:Engine.So ~shards:2 config in
  Trace.iteri (fun i e -> Sharded.handle sh i e) trace;
  let snaps = Sharded.shard_snapshots sh in
  let router = Sharded.router_snapshot sh in
  Sharded.stop sh;
  (match Sharded.restore ~engine:Engine.So ~shards:4 config ~router snaps with
  | exception Ft_core.Snap.Corrupt _ -> ()
  | sh' ->
    Sharded.stop sh';
    Alcotest.fail "restore accepted a mismatched shard count")

(* --- metrics merge contract -------------------------------------------------- *)

let metrics_of_array a = Option.get (Metrics.of_array a)

let test_merge_shards_formula () =
  let fc = Metrics.field_count in
  let shard k = Array.init fc (fun i -> ((k + 2) * 37) + (i * 3)) in
  let baseline = Array.init fc (fun i -> i + 1) in
  List.iter
    (fun k ->
      let shards = Array.init k (fun s -> metrics_of_array (shard s)) in
      let merged =
        Metrics.merge_shards ~sync_baseline:(metrics_of_array baseline) shards
      in
      let expected =
        Array.init fc (fun i ->
            Array.fold_left (fun acc m -> acc + (Metrics.to_array m).(i)) 0 shards
            - ((k - 1) * baseline.(i)))
      in
      Alcotest.(check (array int))
        (Printf.sprintf "Σ−(K−1)·baseline pointwise, K=%d" k)
        expected (Metrics.to_array merged))
    [ 1; 2; 4; 8 ];
  (* K=1: the baseline cancels entirely, whatever it claims *)
  let solo = metrics_of_array (shard 0) in
  Alcotest.(check (array int)) "K=1 is the identity"
    (Metrics.to_array solo)
    (Metrics.to_array
       (Metrics.merge_shards ~sync_baseline:(metrics_of_array baseline) [| solo |]))

let test_merge_shards_rejects_empty () =
  match Metrics.merge_shards ~sync_baseline:(Metrics.create ()) [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty shard array accepted"

(* --- SPSC ring ---------------------------------------------------------------- *)

let test_spsc_order_under_backpressure () =
  let n = 10_000 in
  let q = Spsc.create ~capacity:4 ~dummy:(-1) in
  let consumer =
    Domain.spawn (fun () ->
        let out = Array.make n 0 in
        let seen = ref 0 in
        while !seen < n do
          match Spsc.peek q with
          | None -> Domain.cpu_relax ()
          | Some v ->
            out.(!seen) <- v;
            Spsc.advance q;
            incr seen
        done;
        out)
  in
  for i = 0 to n - 1 do
    Spsc.push q i
  done;
  let got = Domain.join consumer in
  Alcotest.(check (array int)) "FIFO through a 4-slot ring" (Array.init n Fun.id) got

let test_owner_of_is_total_and_stable () =
  List.iter
    (fun k ->
      for x = 0 to 999 do
        let o = Sharded.owner_of ~shards:k x in
        Alcotest.(check bool) "in range" true (o >= 0 && o < k);
        Alcotest.(check int) "deterministic" o (Sharded.owner_of ~shards:k x)
      done)
    shard_counts

let () =
  Alcotest.run "shard"
    [
      ( "equivalence",
        [
          Alcotest.test_case "grid: engines × samplers × K" `Quick test_grid;
          QCheck_alcotest.to_alcotest shard_equivalence_test;
        ] );
      ( "litmus",
        [
          Alcotest.test_case "lock edge crosses shards" `Quick test_litmus_lock_edge;
          Alcotest.test_case "fork/join edge crosses shards" `Quick
            test_litmus_fork_join_edge;
          Alcotest.test_case "pending mark crosses shards" `Quick
            test_litmus_pending_mark_crosses_shards;
          Alcotest.test_case "note_sampled replication drives o1 flushes" `Quick
            test_litmus_note_sampled_replication;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "sharded restore ≡ uninterrupted" `Quick
            test_sharded_snapshot_restore;
          Alcotest.test_case "wrong K rejected" `Quick test_restore_rejects_wrong_k;
        ] );
      ( "metrics merge",
        [
          Alcotest.test_case "Σ−(K−1)·baseline over all fields" `Quick
            test_merge_shards_formula;
          Alcotest.test_case "empty rejected" `Quick test_merge_shards_rejects_empty;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "spsc order under backpressure" `Quick
            test_spsc_order_under_backpressure;
          Alcotest.test_case "owner_of total and stable" `Quick
            test_owner_of_is_total_and_stable;
        ] );
    ]
