(* Conformance suite: small hand-annotated executions with their expected
   racy locations, run against every engine (full detection) and against the
   sampling engines with explicit sample sets.  Each expectation is written
   out by hand from the HB definition and additionally cross-checked against
   the brute-force oracle, so a bug in either the detectors or the oracle
   shows up as a disagreement. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Hb = Ft_trace.Hb
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler

let r t x = Event.mk t (Event.Read x)
let w t x = Event.mk t (Event.Write x)
let acq t l = Event.mk t (Event.Acquire l)
let rel t l = Event.mk t (Event.Release l)
let fork t u = Event.mk t (Event.Fork u)
let join t u = Event.mk t (Event.Join u)
let relst t l = Event.mk t (Event.Release_store l)
let acqld t l = Event.mk t (Event.Acquire_load l)

type scenario = {
  name : string;
  events : Event.t list;
  racy : int list;  (** expected racy locations under full detection *)
}

let scenarios =
  [
    (* ---- basic conflict matrix ---- *)
    { name = "write-write race"; events = [ w 0 0; w 1 0 ]; racy = [ 0 ] };
    { name = "write-read race"; events = [ w 0 0; r 1 0 ]; racy = [ 0 ] };
    { name = "read-write race"; events = [ r 0 0; w 1 0 ]; racy = [ 0 ] };
    { name = "read-read clean"; events = [ r 0 0; r 1 0 ]; racy = [] };
    { name = "same thread clean"; events = [ w 0 0; r 0 0; w 0 0 ]; racy = [] };
    { name = "distinct locations clean"; events = [ w 0 0; w 1 1 ]; racy = [] };
    (* ---- locking ---- *)
    {
      name = "common lock orders";
      events = [ acq 0 0; w 0 0; rel 0 0; acq 1 0; w 1 0; rel 1 0 ];
      racy = [];
    };
    {
      name = "different locks do not order";
      events = [ acq 0 0; w 0 0; rel 0 0; acq 1 1; w 1 0; rel 1 1 ];
      racy = [ 0 ];
    };
    {
      name = "nested locks order through either";
      events =
        [ acq 0 0; acq 0 1; w 0 0; rel 0 1; rel 0 0; acq 1 1; w 1 0; rel 1 1 ];
      racy = [];
    };
    {
      name = "transitive hand-off chain";
      (* t0 -> t1 via L0, t1 -> t2 via L1: t0's write ordered before t2's *)
      events =
        [
          w 0 0; acq 0 0; rel 0 0; acq 1 0; rel 1 0; acq 1 1; rel 1 1; acq 2 1;
          rel 2 1; w 2 0;
        ];
      racy = [];
    };
    {
      name = "broken chain races";
      (* t0 writes after its release: the hand-off edge misses the write *)
      events = [ acq 0 0; rel 0 0; w 0 0; acq 2 0; rel 2 0; w 2 0 ];
      racy = [ 0 ];
    };
    {
      name = "access outside critical section races";
      events = [ acq 0 0; w 0 0; rel 0 0; w 1 0 ];
      racy = [ 0 ];
    };
    {
      name = "double-checked locking bug";
      (* the unprotected flag check races with the locked initialization *)
      events = [ acq 0 0; w 0 0; rel 0 0; r 1 0; acq 1 0; r 1 0; rel 1 0 ];
      racy = [ 0 ];
    };
    (* ---- fork / join ---- *)
    {
      name = "fork orders parent before child";
      events = [ w 0 0; fork 0 1; r 1 0 ];
      racy = [];
    };
    {
      name = "join orders child before parent";
      events = [ fork 0 1; w 1 0; join 0 1; r 0 0 ];
      racy = [];
    };
    {
      name = "siblings race";
      events = [ fork 0 1; fork 0 2; w 1 0; w 2 0 ];
      racy = [ 0 ];
    };
    {
      name = "parent races with unjoined child";
      events = [ fork 0 1; w 1 0; w 0 0 ];
      racy = [ 0 ];
    };
    {
      name = "broadcast read after fork";
      events = [ w 0 0; fork 0 1; fork 0 2; r 1 0; r 2 0 ];
      racy = [];
    };
    (* ---- atomics (appendix A.2, copy semantics) ---- *)
    {
      name = "message passing via release-store";
      events = [ w 0 0; relst 0 0; acqld 1 0; r 1 0 ];
      racy = [];
    };
    {
      name = "stale flag overwrite races";
      (* t1's store overwrites t0's: t2 only synchronizes with t1 *)
      events = [ w 0 0; relst 0 0; relst 1 0; acqld 2 0; r 2 0 ];
      racy = [ 0 ];
    };
    {
      name = "acquire-load before store is void";
      events = [ acqld 1 0; w 0 0; relst 0 0; r 1 0 ];
      racy = [ 0 ];
    };
    (* ---- read-history subtleties ---- *)
    {
      name = "shared readers then unordered writer";
      events = [ r 0 0; r 1 0; w 2 0 ];
      racy = [ 0 ];
    };
    {
      name = "shared readers all ordered before writer";
      events =
        [
          r 0 0; acq 0 0; rel 0 0; r 1 0; acq 1 0; rel 1 0; acq 2 0; w 2 0; rel 2 0;
        ];
      racy = [];
    };
    {
      name = "writer ordered with one reader only";
      (* t2 syncs with t1 but not with t0's read *)
      events = [ r 0 0; r 1 0; acq 1 0; rel 1 0; acq 2 0; rel 2 0; w 2 0 ];
      racy = [ 0 ];
    };
    {
      name = "same-epoch repeated reads stay clean";
      events = [ r 0 0; r 0 0; r 0 0; acq 0 0; rel 0 0; acq 1 0; w 1 0; rel 1 0 ];
      racy = [];
    };
    {
      name = "write masking does not hide the location";
      (* w0 ∥ w1 races even though w1 is later overwritten by an ordered w2 *)
      events = [ w 0 0; w 1 0; acq 1 0; rel 1 0; acq 2 0; rel 2 0; w 2 0 ];
      racy = [ 0 ];
    };
    {
      name = "two-sweep lock barrier";
      events =
        [
          w 0 0; w 1 1;
          acq 0 9; rel 0 9; acq 1 9; rel 1 9;  (* sweep 1 *)
          acq 0 9; rel 0 9; acq 1 9; rel 1 9;  (* sweep 2 *)
          r 0 1; r 1 0;
        ];
      racy = [];
    };
    {
      name = "queue hand-off";
      events =
        [
          acq 0 0; w 0 0; w 0 1; rel 0 0;  (* produce: slot + count *)
          acq 1 0; r 1 1; r 1 0; rel 1 0;  (* consume *)
        ];
      racy = [];
    };
    {
      name = "atomic chain is transitive";
      (* t0 → t1 via A0, t1 → t2 via A1: t0's write ordered before t2's read *)
      events = [ w 0 0; relst 0 0; acqld 1 0; relst 1 1; acqld 2 1; r 2 0 ];
      racy = [];
    };
    {
      name = "atomic chain broken by overwrite";
      (* t3's store overwrites A0 before t1 reads it: the chain never forms *)
      events =
        [ w 0 0; relst 0 0; relst 3 0; acqld 1 0; relst 1 1; acqld 2 1; r 2 0 ];
      racy = [ 0 ];
    };
    {
      name = "join is transitive through a lock";
      (* child's write reaches t2 via join-then-release *)
      events =
        [ fork 0 1; w 1 0; join 0 1; acq 0 0; rel 0 0; acq 2 0; rel 2 0; r 2 0 ];
      racy = [];
    };
    {
      name = "grandchild ordering";
      events = [ fork 0 1; fork 1 2; w 2 0; join 1 2; join 0 1; r 0 0 ];
      racy = [];
    };
    {
      name = "read under lock still races with unlocked write";
      events = [ acq 0 0; r 0 0; rel 0 0; w 1 0 ];
      racy = [ 0 ];
    };
    {
      name = "mutex and atomic namespaces are disjoint";
      (* lock 0 (mutex) and sync 1 (atomic) do not order through each other *)
      events = [ w 0 0; acq 0 0; rel 0 0; relst 0 1; acqld 1 1; r 1 0 ];
      racy = [];
    };
    {
      name = "three-thread write chain, one gap";
      (* t0→t1 ordered, t1→t2 ordered, but t0 writes again after its release *)
      events =
        [
          w 0 0; acq 0 0; rel 0 0; w 0 0;
          acq 1 0; w 1 0; rel 1 0;
          acq 2 0; w 2 0; rel 2 0;
        ];
      racy = [ 0 ];
    };
  ]

let full_engines =
  [ Engine.Djit; Engine.Fasttrack; Engine.Fasttrack_tc; Engine.St; Engine.Su; Engine.So;
    Engine.Sl; Engine.O1; Engine.O1u ]

let trace_of s = Trace.validate (Trace.of_events (Array.of_list s.events))

let test_scenario s () =
  let trace = trace_of s in
  (* cross-check the hand annotation against the oracle *)
  let mask = Array.init (Trace.length trace) (fun i -> Event.is_access (Trace.get trace i)) in
  Alcotest.(check (list int)) "oracle agrees with annotation" s.racy
    (Hb.racy_locations trace ~sampled:mask);
  List.iter
    (fun engine ->
      Alcotest.(check (list int))
        (Engine.name engine)
        s.racy
        (Detector.racy_locations (Engine.run engine ~sampler:Sampler.all trace)))
    full_engines

(* Sampling semantics: the race disappears if either side is unsampled. *)
let test_sampling_sides () =
  let events = [| w 0 0; r 0 1; w 1 0; r 1 1 |] in
  let trace = Trace.validate (Trace.of_events events) in
  let run mask engine =
    Detector.racy_locations (Engine.run engine ~sampler:(Sampler.fixed mask) trace)
  in
  List.iter
    (fun engine ->
      let name = Engine.name engine in
      Alcotest.(check (list int)) (name ^ ": both sides") [ 0 ]
        (run [| true; false; true; false |] engine);
      Alcotest.(check (list int)) (name ^ ": first only") []
        (run [| true; false; false; false |] engine);
      Alcotest.(check (list int)) (name ^ ": second only") []
        (run [| false; false; true; false |] engine);
      Alcotest.(check (list int)) (name ^ ": neither") []
        (run [| false; false; false; false |] engine))
    [ Engine.St; Engine.Su; Engine.So; Engine.Sl; Engine.O1; Engine.O1u ]

let () =
  Alcotest.run "conformance"
    [
      ( "scenarios",
        List.map
          (fun s -> Alcotest.test_case s.name `Quick (test_scenario s))
          scenarios );
      ("sampling", [ Alcotest.test_case "side sampling" `Quick test_sampling_sides ]);
    ]
