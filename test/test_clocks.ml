(* Tests for the clock data structures: vector clocks, epochs, and the
   ordered list of §5 — including a qcheck model-based test that checks the
   move-to-front order against a reference implementation. *)

module Vc = Ft_core.Vector_clock
module Epoch = Ft_core.Epoch
module Ol = Ft_core.Ordered_list

let test_vc_create () =
  let c = Vc.create 4 in
  Alcotest.(check int) "size" 4 (Vc.size c);
  for i = 0 to 3 do
    Alcotest.(check int) "bottom" 0 (Vc.get c i)
  done

let test_vc_set_get_inc () =
  let c = Vc.create 3 in
  Vc.set c 1 7;
  Vc.inc c 1;
  Alcotest.(check int) "set+inc" 8 (Vc.get c 1);
  Alcotest.(check int) "others untouched" 0 (Vc.get c 0)

let test_vc_join () =
  let a = Vc.of_array [| 1; 5; 3 |] and b = Vc.of_array [| 2; 4; 3 |] in
  Vc.join ~into:a b;
  Alcotest.(check (array int)) "pointwise max" [| 2; 5; 3 |] (Vc.to_array a)

let test_vc_join_count () =
  let a = Vc.of_array [| 1; 5; 3 |] and b = Vc.of_array [| 2; 4; 9 |] in
  let changed = Vc.join_count ~into:a b in
  Alcotest.(check int) "two entries changed" 2 changed;
  Alcotest.(check (array int)) "result" [| 2; 5; 9 |] (Vc.to_array a);
  Alcotest.(check int) "idempotent" 0 (Vc.join_count ~into:a b)

let test_vc_leq () =
  Alcotest.(check bool) "leq" true (Vc.leq (Vc.of_array [| 1; 2 |]) (Vc.of_array [| 1; 3 |]));
  Alcotest.(check bool) "not leq" false
    (Vc.leq (Vc.of_array [| 2; 2 |]) (Vc.of_array [| 1; 3 |]));
  Alcotest.(check bool) "reflexive" true
    (Vc.leq (Vc.of_array [| 4; 4 |]) (Vc.of_array [| 4; 4 |]))

let test_vc_copy_independent () =
  let a = Vc.of_array [| 1; 2 |] in
  let b = Vc.copy a in
  Vc.set b 0 99;
  Alcotest.(check int) "original untouched" 1 (Vc.get a 0)

let test_epoch_pack () =
  let e = Epoch.make ~time:12345 ~tid:7 in
  Alcotest.(check int) "time" 12345 (Epoch.time e);
  Alcotest.(check int) "tid" 7 (Epoch.tid e);
  Alcotest.(check bool) "none is 0@0" true
    (Epoch.time Epoch.none = 0 && Epoch.tid Epoch.none = 0)

let test_epoch_leq_vc () =
  let v = Vc.of_array [| 3; 8 |] in
  Alcotest.(check bool) "≤" true (Epoch.leq_vc (Epoch.make ~time:8 ~tid:1) v);
  Alcotest.(check bool) ">" false (Epoch.leq_vc (Epoch.make ~time:9 ~tid:1) v);
  Alcotest.(check bool) "none ≤ anything" true (Epoch.leq_vc Epoch.none (Vc.create 2))

let test_epoch_of_vc_entry () =
  let v = Vc.of_array [| 3; 8 |] in
  let e = Epoch.of_vc_entry v 1 in
  Alcotest.(check int) "time" 8 (Epoch.time e);
  Alcotest.(check int) "tid" 1 (Epoch.tid e)

(* Fig 4 of the paper: order t1<t2<t5<t3<t4, times 6/20/1/8/0 (here 0-based
   ids 0,1,4,2,3); O.set(t4,6) moves t4 to the head; O.inc(t1,1) moves t1. *)
let fig4_list () =
  let o = Ol.create 5 in
  (* build the order by setting in reverse: last set ends up at the head *)
  Ol.set o 3 0;
  Ol.set o 2 8;
  Ol.set o 4 1;
  Ol.set o 1 20;
  Ol.set o 0 6;
  o

let test_ol_fig4_initial () =
  let o = fig4_list () in
  Alcotest.(check (list int)) "order t1<t2<t5<t3<t4" [ 0; 1; 4; 2; 3 ] (Ol.order o);
  Alcotest.(check int) "get t3" 8 (Ol.get o 2)

let test_ol_fig4_set () =
  let o = fig4_list () in
  Ol.set o 3 6;
  Alcotest.(check (list int)) "t4 moved to head" [ 3; 0; 1; 4; 2 ] (Ol.order o);
  Alcotest.(check int) "t4 time" 6 (Ol.get o 3)

let test_ol_fig4_inc () =
  let o = fig4_list () in
  Ol.set o 3 6;
  Ol.increment o 0 1;
  Alcotest.(check (list int)) "t1 moved to head" [ 0; 3; 1; 4; 2 ] (Ol.order o);
  Alcotest.(check int) "t1 time 7" 7 (Ol.get o 0)

let test_ol_deep_copy () =
  let o = fig4_list () in
  let c = Ol.deep_copy o in
  Alcotest.(check (list int)) "order preserved" (Ol.order o) (Ol.order c);
  Ol.set c 3 99;
  Alcotest.(check int) "original value untouched" 0 (Ol.get o 3);
  Alcotest.(check (list int)) "original order untouched" [ 0; 1; 4; 2; 3 ] (Ol.order o)

let test_ol_prefix () =
  let o = fig4_list () in
  let seen = ref [] in
  Ol.iter_prefix o 2 (fun tid time -> seen := (tid, time) :: !seen);
  Alcotest.(check (list (pair int int))) "first two" [ (0, 6); (1, 20) ] (List.rev !seen);
  let all = ref 0 in
  Ol.iter_prefix o 100 (fun _ _ -> incr all);
  Alcotest.(check int) "prefix larger than T" 5 !all

let test_ol_leq () =
  let o = Ol.create 3 in
  Ol.set o 0 2;
  Ol.set o 2 5;
  Alcotest.(check bool) "ol ⊑ vc" true (Ol.leq_vc o (Vc.of_array [| 2; 0; 6 |]));
  Alcotest.(check bool) "ol ⋢ vc" false (Ol.leq_vc o (Vc.of_array [| 1; 0; 6 |]));
  Alcotest.(check bool) "vc ⊑ ol" true (Ol.vc_leq (Vc.of_array [| 2; 0; 5 |]) o);
  Alcotest.(check bool) "vc ⋢ ol" false (Ol.vc_leq (Vc.of_array [| 3; 0; 5 |]) o)

let test_ol_to_vc () =
  let o = fig4_list () in
  Alcotest.(check (array int)) "snapshot" [| 6; 20; 8; 0; 1 |] (Vc.to_array (Ol.to_vc o))

let test_ol_single_node () =
  let o = Ol.create 1 in
  Ol.set o 0 5;
  Ol.increment o 0 2;
  Alcotest.(check int) "value" 7 (Ol.get o 0);
  Alcotest.(check (list int)) "order" [ 0 ] (Ol.order o);
  Alcotest.(check bool) "invariants" true (Ol.check_invariants o)

(* Model-based qcheck: random op sequences; check values against an array
   model and the node order against a recency list. *)
type op = Set of int * int | Inc of int * int | Copy

let op_gen n =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun t v -> Set (t, v)) (int_bound (n - 1)) (int_bound 50));
        (4, map2 (fun t v -> Inc (t, v)) (int_bound (n - 1)) (int_bound 5));
        (1, return Copy);
      ])

let ops_arbitrary n = QCheck.make QCheck.Gen.(list_size (int_bound 60) (op_gen n))

let model_order_after ops n =
  (* most recently updated first; untouched threads keep initial order *)
  let recency = ref (List.init n Fun.id) in
  List.iter
    (fun o ->
      match o with
      | Set (t, _) | Inc (t, _) -> recency := t :: List.filter (fun x -> x <> t) !recency
      | Copy -> ())
    ops;
  !recency

let prop_ol_matches_model n ops =
  let o = ref (Ol.create n) in
  let model = Array.make n 0 in
  List.iter
    (fun op ->
      match op with
      | Set (t, v) ->
        Ol.set !o t v;
        model.(t) <- v
      | Inc (t, v) ->
        Ol.increment !o t v;
        model.(t) <- model.(t) + v
      | Copy -> o := Ol.deep_copy !o)
    ops;
  Ol.check_invariants !o
  && Array.for_all Fun.id (Array.init n (fun t -> Ol.get !o t = model.(t)))
  && Ol.order !o = model_order_after ops n

let qcheck_ol_model =
  QCheck.Test.make ~name:"ordered list matches array+recency model" ~count:300
    (ops_arbitrary 5)
    (fun ops -> prop_ol_matches_model 5 ops)

let qcheck_ol_prefix_covers_recent =
  (* after any op sequence, the first d nodes contain every thread updated
     among the last d updates — the property Alg 4's traversal relies on *)
  QCheck.Test.make ~name:"prefix covers the last d updates" ~count:300
    QCheck.(pair (ops_arbitrary 6) (int_bound 6))
    (fun (ops, d) ->
      let o = Ol.create 6 in
      List.iter
        (fun op ->
          match op with
          | Set (t, v) -> Ol.set o t v
          | Inc (t, v) -> Ol.increment o t v
          | Copy -> ())
        ops;
      let touched = List.filter_map (function Set (t, _) | Inc (t, _) -> Some t | Copy -> None) ops in
      let last_d =
        let rec take k = function [] -> [] | x :: r -> if k = 0 then [] else x :: take (k - 1) r in
        take d (List.rev touched)
      in
      let prefix = ref [] in
      Ol.iter_prefix o d (fun tid _ -> prefix := tid :: !prefix);
      List.for_all (fun t -> List.mem t !prefix) last_d)

let () =
  Alcotest.run "clocks"
    [
      ( "vector_clock",
        [
          Alcotest.test_case "create" `Quick test_vc_create;
          Alcotest.test_case "set/get/inc" `Quick test_vc_set_get_inc;
          Alcotest.test_case "join" `Quick test_vc_join;
          Alcotest.test_case "join_count" `Quick test_vc_join_count;
          Alcotest.test_case "leq" `Quick test_vc_leq;
          Alcotest.test_case "copy independence" `Quick test_vc_copy_independent;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "packing" `Quick test_epoch_pack;
          Alcotest.test_case "leq_vc" `Quick test_epoch_leq_vc;
          Alcotest.test_case "of_vc_entry" `Quick test_epoch_of_vc_entry;
        ] );
      ( "ordered_list",
        [
          Alcotest.test_case "fig4 initial" `Quick test_ol_fig4_initial;
          Alcotest.test_case "fig4 set moves to front" `Quick test_ol_fig4_set;
          Alcotest.test_case "fig4 inc moves to front" `Quick test_ol_fig4_inc;
          Alcotest.test_case "deep copy" `Quick test_ol_deep_copy;
          Alcotest.test_case "prefix iteration" `Quick test_ol_prefix;
          Alcotest.test_case "leq comparisons" `Quick test_ol_leq;
          Alcotest.test_case "to_vc" `Quick test_ol_to_vc;
          Alcotest.test_case "single node" `Quick test_ol_single_node;
        ] );
      ( "ordered_list_properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_ol_model; qcheck_ol_prefix_covers_recent ]
      );
    ]
