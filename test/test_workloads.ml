(* Tests for the workload generators: every produced trace must be
   well-formed, deterministic in its seed, and have the synchronization
   texture its profile promises. *)

module Trace = Ft_trace.Trace
module Event = Ft_trace.Event
module Hb = Ft_trace.Hb
module Db_sim = Ft_workloads.Db_sim
module Classic = Ft_workloads.Classic
module Script_sched = Ft_workloads.Script_sched
module Prng = Ft_support.Prng

let check_wf name trace =
  match Trace.well_formed trace with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: ill-formed trace: %s" name msg

let test_db_profiles_present () =
  Alcotest.(check int) "12 profiles" 12 (List.length Db_sim.profiles);
  Alcotest.(check bool) "tpcc exists" true (Db_sim.profile "tpcc" <> None);
  Alcotest.(check bool) "unknown absent" true (Db_sim.profile "mongodb" = None)

let test_db_traces_well_formed () =
  List.iter
    (fun (p : Db_sim.profile) ->
      let trace = Db_sim.generate p ~seed:11 ~target_events:4000 in
      check_wf p.Db_sim.name trace;
      Alcotest.(check bool)
        (p.Db_sim.name ^ " reached target")
        true
        (Trace.length trace >= 4000))
    Db_sim.profiles

let test_db_deterministic () =
  let p = Option.get (Db_sim.profile "tpcc") in
  let t1 = Db_sim.generate p ~seed:42 ~target_events:2000 in
  let t2 = Db_sim.generate p ~seed:42 ~target_events:2000 in
  Alcotest.(check int) "same length" (Trace.length t1) (Trace.length t2);
  Trace.iteri
    (fun i e ->
      if not (Event.equal e (Trace.get t2 i)) then Alcotest.failf "event %d differs" i)
    t1

let test_db_seed_changes_trace () =
  let p = Option.get (Db_sim.profile "tpcc") in
  let t1 = Db_sim.generate p ~seed:1 ~target_events:2000 in
  let t2 = Db_sim.generate p ~seed:2 ~target_events:2000 in
  let differs = ref (Trace.length t1 <> Trace.length t2) in
  if not !differs then
    Trace.iteri (fun i e -> if not (Event.equal e (Trace.get t2 i)) then differs := true) t1;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_db_sync_textures () =
  let ratio name =
    let p = Option.get (Db_sim.profile name) in
    let trace = Db_sim.generate p ~seed:3 ~target_events:6000 in
    let s = Trace.stats trace in
    float_of_int s.Trace.n_syncs /. float_of_int (Stdlib.max 1 s.Trace.n_accesses)
  in
  (* tatp brackets 1-3 ops in ~10 sync events; sibench is scan-dominated *)
  Alcotest.(check bool) "tatp is sync-heavy" true (ratio "tatp" > 1.0);
  Alcotest.(check bool) "sibench is access-heavy" true (ratio "sibench" < 0.3);
  Alcotest.(check bool) "tatp ≫ sibench" true (ratio "tatp" > (2.0 *. ratio "sibench"))

let test_db_has_races () =
  (* the unprotected statistics counters must provide racy locations *)
  let p = Option.get (Db_sim.profile "voter") in
  let trace = Db_sim.generate p ~seed:5 ~target_events:3000 in
  let sampled =
    Array.init (Trace.length trace) (fun i -> Event.is_access (Trace.get trace i))
  in
  Alcotest.(check bool) "voter has racy locations" true
    (Hb.racy_locations trace ~sampled <> [])

let test_db_row_locks_protect_rows () =
  (* without scans, row accesses are latch-protected: every race must be on
     a statistics counter, never a row *)
  let p = Option.get (Db_sim.profile "smallbank") in
  let trace = Db_sim.generate p ~seed:7 ~target_events:4000 in
  let sampled =
    Array.init (Trace.length trace) (fun i -> Event.is_access (Trace.get trace i))
  in
  let stats_locs = 4 + p.Db_sim.n_tables + 1 in
  List.iter
    (fun loc ->
      Alcotest.(check bool)
        (Printf.sprintf "racy loc %d is a counter" loc)
        true (loc < stats_locs))
    (Hb.racy_locations trace ~sampled)

let test_classic_all_present () =
  Alcotest.(check int) "26 figure benchmarks" 26 (List.length Classic.all);
  Alcotest.(check int) "30 analysed programs" 30 (List.length Classic.extended);
  Alcotest.(check bool) "find works" true (Classic.find "pingpong" <> None);
  Alcotest.(check bool) "find reaches the extras" true (Classic.find "philo" <> None);
  Alcotest.(check bool) "unknown absent" true (Classic.find "nope" = None);
  (* names sorted and unique *)
  let names = List.map (fun (b : Classic.benchmark) -> b.Classic.name) Classic.all in
  Alcotest.(check (list string)) "sorted unique" (List.sort_uniq compare names) names;
  let all_names = List.map (fun (b : Classic.benchmark) -> b.Classic.name) Classic.extended in
  Alcotest.(check int) "extended unique" 30 (List.length (List.sort_uniq compare all_names))

let test_classic_well_formed () =
  List.iter
    (fun (b : Classic.benchmark) ->
      let trace = b.Classic.generate ~seed:13 ~scale:2 in
      check_wf b.Classic.name trace;
      Alcotest.(check bool) (b.Classic.name ^ " non-trivial") true (Trace.length trace > 50))
    Classic.extended

let test_classic_deterministic () =
  List.iter
    (fun (b : Classic.benchmark) ->
      let t1 = b.Classic.generate ~seed:21 ~scale:1 in
      let t2 = b.Classic.generate ~seed:21 ~scale:1 in
      Alcotest.(check int) (b.Classic.name ^ " length") (Trace.length t1) (Trace.length t2);
      Trace.iteri
        (fun i e ->
          if not (Event.equal e (Trace.get t2 i)) then
            Alcotest.failf "%s: event %d differs" b.Classic.name i)
        t1)
    Classic.all

let test_classic_scale () =
  List.iter
    (fun (b : Classic.benchmark) ->
      let small = Trace.length (b.Classic.generate ~seed:3 ~scale:1) in
      let large = Trace.length (b.Classic.generate ~seed:3 ~scale:4) in
      Alcotest.(check bool) (b.Classic.name ^ " grows with scale") true (large > small))
    Classic.all

let racy_benchmarks = [ "airlinetickets"; "account"; "bufwriter"; "ftpserver";
                        "raytracer"; "twostage"; "wronglock"; "elevator"; "tsp" ]

let clean_benchmarks = [ "array"; "boundedbuffer"; "bubblesort"; "critical"; "linkedlist";
                         "lufact"; "mergesort"; "moldyn"; "montecarlo"; "pingpong";
                         "producerconsumer"; "readerswriters"; "sor"; "philo"; "hedc" ]

let has_races name =
  let b = Option.get (Classic.find name) in
  let trace = b.Classic.generate ~seed:17 ~scale:1 in
  let sampled =
    Array.init (Trace.length trace) (fun i -> Event.is_access (Trace.get trace i))
  in
  Hb.racy_locations trace ~sampled <> []

let test_classic_racy () =
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " has races") true (has_races name))
    racy_benchmarks

let test_classic_clean () =
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " is race-free") false (has_races name))
    clean_benchmarks

module Trace_report = Ft_rapid.Trace_report

let test_report_basic () =
  let p = Option.get (Db_sim.profile "smallbank") in
  let trace = Db_sim.generate p ~seed:3 ~target_events:5000 in
  let report = Trace_report.analyze trace in
  Alcotest.(check bool) "sync-heavy profile" true (report.Trace_report.sync_access_ratio > 0.5);
  Alcotest.(check bool) "locks reported" true (report.Trace_report.locks <> []);
  Alcotest.(check bool) "≤10 hot locations" true
    (List.length report.Trace_report.hot_locations <= 10);
  let r = Trace_report.handoff_ratio report in
  Alcotest.(check bool) "handoff ratio in [0,1]" true (r >= 0.0 && r <= 1.0);
  Alcotest.(check bool) "render non-empty" true
    (String.length (Trace_report.render report) > 100)

let test_report_counts () =
  let trace =
    Trace.of_events
      [|
        Ft_trace.Event.mk 0 (Ft_trace.Event.Acquire 0);
        Ft_trace.Event.mk 0 (Ft_trace.Event.Write 0);
        Ft_trace.Event.mk 0 (Ft_trace.Event.Release 0);
        Ft_trace.Event.mk 1 (Ft_trace.Event.Acquire 0);
        Ft_trace.Event.mk 1 (Ft_trace.Event.Read 0);
        Ft_trace.Event.mk 1 (Ft_trace.Event.Release 0);
        Ft_trace.Event.mk 0 (Ft_trace.Event.Acquire 0);
        Ft_trace.Event.mk 0 (Ft_trace.Event.Release 0);
      |]
  in
  let report = Trace_report.analyze trace in
  (match report.Trace_report.locks with
  | [ row ] ->
    Alcotest.(check int) "acquisitions" 3 row.Trace_report.acquisitions;
    Alcotest.(check int) "threads" 2 row.Trace_report.distinct_threads;
    (* t1 after t0, then t0 after t1: both hand-offs *)
    Alcotest.(check int) "handoffs" 2 row.Trace_report.handoffs
  | _ -> Alcotest.fail "expected one lock row");
  match report.Trace_report.hot_locations with
  | [ row ] ->
    Alcotest.(check int) "reads" 1 row.Trace_report.reads;
    Alcotest.(check int) "writes" 1 row.Trace_report.writes
  | _ -> Alcotest.fail "expected one location row"

let test_sched_blocking () =
  (* two scripts contending for one lock: the interleaving must never let
     both hold it (well-formedness would fail) *)
  let prng = Prng.create ~seed:1 in
  let b = Trace.Builder.create () in
  let main = Trace.Builder.fresh_thread b in
  let t1 = Trace.Builder.fresh_thread b in
  let t2 = Trace.Builder.fresh_thread b in
  let script tid =
    List.concat
      (List.init 20 (fun _ ->
           [ Event.mk tid (Event.Acquire 0); Event.mk tid (Event.Write 0);
             Event.mk tid (Event.Release 0) ]))
  in
  Script_sched.run_workers prng b ~main ~scripts:[ (t1, script t1); (t2, script t2) ];
  check_wf "contended interleaving" (Trace.Builder.build_unchecked b)

let test_sched_stuck_detection () =
  (* classic deadlock: t1 holds A wants B; t2 holds B wants A *)
  let prng = Prng.create ~seed:1 in
  let b = Trace.Builder.create () in
  let t1 = 0 and t2 = 1 in
  let s1 = [ Event.mk t1 (Event.Acquire 0); Event.mk t1 (Event.Acquire 1) ] in
  let s2 = [ Event.mk t2 (Event.Acquire 1); Event.mk t2 (Event.Acquire 0) ] in
  match Script_sched.interleave prng b ~scripts:[ (t1, s1); (t2, s2) ] with
  | () -> Alcotest.fail "expected Stuck"
  | exception Script_sched.Stuck _ -> ()

let () =
  Alcotest.run "workloads"
    [
      ( "db_sim",
        [
          Alcotest.test_case "profiles present" `Quick test_db_profiles_present;
          Alcotest.test_case "well-formed traces" `Slow test_db_traces_well_formed;
          Alcotest.test_case "deterministic" `Quick test_db_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_db_seed_changes_trace;
          Alcotest.test_case "sync textures" `Slow test_db_sync_textures;
          Alcotest.test_case "has racy counters" `Quick test_db_has_races;
          Alcotest.test_case "row locks protect rows" `Quick test_db_row_locks_protect_rows;
        ] );
      ( "classic",
        [
          Alcotest.test_case "all present" `Quick test_classic_all_present;
          Alcotest.test_case "well-formed traces" `Slow test_classic_well_formed;
          Alcotest.test_case "deterministic" `Slow test_classic_deterministic;
          Alcotest.test_case "scales" `Slow test_classic_scale;
          Alcotest.test_case "racy benchmarks race" `Slow test_classic_racy;
          Alcotest.test_case "clean benchmarks don't" `Slow test_classic_clean;
        ] );
      ( "report",
        [
          Alcotest.test_case "db profile report" `Quick test_report_basic;
          Alcotest.test_case "exact counts" `Quick test_report_counts;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "blocking" `Quick test_sched_blocking;
          Alcotest.test_case "deadlock detection" `Quick test_sched_stuck_detection;
        ] );
    ]
