(* The hot-path overhaul's safety net:

   - Flat_table: model-checked against Hashtbl under random workloads, plus
     the tombstone/growth edges;
   - Netbuf: semantics under chunked feeds, and the amortization contract —
     total bytes blitted stays linear in bytes fed, whatever the chunk size
     (the O(n²) concat bug this replaced fails the same assertion by orders
     of magnitude);
   - Metrics arity: same_epoch_hits (and any future counter) must appear in
     field_names, survive the Snap codec, and be merged by merge_shards —
     each checked with distinct per-field values so a missed field cannot
     cancel out;
   - the SoA batch decoder: equality with the per-event reader, exact
     per-event byte offsets (the --resume seek contract), hostile input;
   - the byte-identity grid: the rebuilt engines vs the seed engines
     vendored in Ref_engines, across engines × samplers × shard counts —
     races, reports, and every counter except the purely additive
     same_epoch_hits must match exactly;
   - the --racy-fastpath gate: pinned verdict divergence, the
     first-race-per-location oracle, and snapshot/restore of the gate. *)

module Trace = Ft_trace.Trace
module Event = Ft_trace.Event
module Tb = Ft_trace.Trace_binary
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Snap = Ft_core.Snap
module Flat_table = Ft_core.Flat_table
module Netbuf = Ft_shard.Netbuf
module Sharded = Ft_shard.Sharded
module Serve = Ft_shard.Serve

(* --- Flat_table ----------------------------------------------------------- *)

let test_flat_table_basic () =
  let t = Flat_table.create () in
  Alcotest.(check int) "empty find" (-1) (Flat_table.find t 42);
  Flat_table.set t 42 7;
  Flat_table.set t 0 0;
  Alcotest.(check int) "find" 7 (Flat_table.find t 42);
  Alcotest.(check int) "find 0->0" 0 (Flat_table.find t 0);
  Alcotest.(check int) "length" 2 (Flat_table.length t);
  Flat_table.set t 42 9;
  Alcotest.(check int) "overwrite" 9 (Flat_table.find t 42);
  Alcotest.(check int) "overwrite keeps length" 2 (Flat_table.length t);
  Flat_table.remove t 42;
  Alcotest.(check int) "removed" (-1) (Flat_table.find t 42);
  Flat_table.remove t 42;
  Alcotest.(check int) "double remove is a no-op" 1 (Flat_table.length t);
  match Flat_table.set t (-1) 0 with
  | () -> Alcotest.fail "negative key accepted"
  | exception Invalid_argument _ -> ()

let test_flat_table_model () =
  let rng = Random.State.make [| 2026; 8; 9 |] in
  let t = Flat_table.create ~capacity:4 () in
  let model = Hashtbl.create 16 in
  for _ = 1 to 20_000 do
    let k = Random.State.int rng 300 in
    match Random.State.int rng 3 with
    | 0 ->
      let v = Random.State.int rng 1_000_000 in
      Flat_table.set t k v;
      Hashtbl.replace model k v
    | 1 ->
      Flat_table.remove t k;
      Hashtbl.remove model k
    | _ ->
      let expected = match Hashtbl.find_opt model k with Some v -> v | None -> -1 in
      Alcotest.(check int) "model lookup" expected (Flat_table.find t k)
  done;
  Alcotest.(check int) "final length" (Hashtbl.length model) (Flat_table.length t);
  (* iter yields exactly the model's bindings *)
  let seen = Hashtbl.create 16 in
  Flat_table.iter t (fun k v ->
      Alcotest.(check bool) "iter: no duplicate key" false (Hashtbl.mem seen k);
      Hashtbl.add seen k ();
      Alcotest.(check int) "iter: model value" (Hashtbl.find model k) v);
  Alcotest.(check int) "iter covers everything" (Hashtbl.length model) (Hashtbl.length seen)

(* churn at constant size: tombstones must be swept, not accumulated into
   an ever-growing probe distance or table *)
let test_flat_table_tombstone_churn () =
  let t = Flat_table.create ~capacity:8 () in
  for round = 0 to 5_000 do
    let k = 7 * round in
    Flat_table.set t k round;
    if round >= 8 then Flat_table.remove t (7 * (round - 8))
  done;
  Alcotest.(check int) "steady-state length" 8 (Flat_table.length t)

(* --- Netbuf ---------------------------------------------------------------- *)

let test_netbuf_semantics () =
  let b = Netbuf.create ~capacity:16 () in
  Alcotest.(check int) "empty" 0 (Netbuf.length b);
  Alcotest.(check bool) "no newline" true (Netbuf.index_newline b = None);
  let put s = Netbuf.append b (Bytes.of_string s) ~off:0 ~len:(String.length s) in
  put "BATCH 0 5\nhel";
  Alcotest.(check bool) "newline found" true (Netbuf.index_newline b = Some 9);
  Alcotest.(check string) "take line" "BATCH 0 5" (Netbuf.take b 9);
  Netbuf.drop b 1;
  put "lo";
  Alcotest.(check string) "blob across appends" "hello" (Netbuf.take b 5);
  Alcotest.(check int) "drained" 0 (Netbuf.length b);
  (match Netbuf.take b 1 with
  | _ -> Alcotest.fail "take beyond buffered data accepted"
  | exception Invalid_argument _ -> ());
  (* growth far past the initial capacity preserves content *)
  let big = String.init 100_000 (fun i -> Char.chr (i land 0xff)) in
  String.iter (fun c -> put (String.make 1 c)) big;
  Alcotest.(check string) "byte-at-a-time feed reassembles" big
    (Netbuf.take b (String.length big))

(* the quadratic-recv regression test: total bytes moved is linear in bytes
   fed regardless of chunk size.  The seed's [data <- data ^ chunk] moved
   ~N²/(2·chunk) ≈ 190 GB here; the bound allows ~6N = 12 MB. *)
let test_netbuf_amortized_linear () =
  let n = 2 * 1024 * 1024 and chunk = 11 in
  (* blob pattern: accumulate everything, then one take *)
  let b = Netbuf.create ~capacity:1024 () in
  let piece = Bytes.make chunk 'x' in
  let fed = ref 0 in
  while !fed < n do
    let len = Stdlib.min chunk (n - !fed) in
    Netbuf.append b piece ~off:0 ~len;
    fed := !fed + len
  done;
  ignore (Netbuf.take b n);
  Alcotest.(check bool)
    (Printf.sprintf "accumulate-then-take is linear (moved %d for %d fed)"
       (Netbuf.copied b) n)
    true
    (Netbuf.copied b <= (4 * n) + 65536);
  (* interleaved pattern: lines consumed while more data streams in *)
  let b = Netbuf.create ~capacity:64 () in
  let fed = ref 0 and consumed = ref 0 in
  while !fed < n do
    let len = Stdlib.min chunk (n - !fed) in
    Netbuf.append b piece ~off:0 ~len;
    fed := !fed + len;
    if !fed - !consumed > 96 then begin
      Netbuf.drop b 64;
      consumed := !consumed + 64
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "interleaved consume stays linear (moved %d for %d fed)"
       (Netbuf.copied b) n)
    true
    (Netbuf.copied b <= (8 * n) + 65536)

(* --- Metrics arity: same_epoch_hits through every surface ------------------ *)

let distinct_metrics offset =
  let m = Metrics.create () in
  let r = Obj.repr m in
  for i = 0 to Metrics.field_count - 1 do
    Obj.set_field r i (Obj.repr (offset + i))
  done;
  m

let test_metrics_field_names () =
  Alcotest.(check int) "field_names covers every field" Metrics.field_count
    (Array.length Metrics.field_names);
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "field name %s unique" n) false
        (Hashtbl.mem tbl n);
      Hashtbl.add tbl n ())
    Metrics.field_names;
  Alcotest.(check bool) "same_epoch_hits is exported" true
    (Hashtbl.mem tbl "same_epoch_hits")

let test_metrics_snap_roundtrip () =
  let m = distinct_metrics 101 in
  let enc = Snap.Enc.create () in
  Metrics.encode enc m;
  let dec = Snap.Dec.of_snap (Snap.Enc.to_snap enc) in
  let m' = Metrics.decode dec in
  Snap.Dec.finish dec;
  (* distinct values per field: a codec that drops or reorders any single
     field — same_epoch_hits included — cannot pass *)
  Alcotest.(check (array int)) "snap codec preserves every field" (Metrics.to_array m)
    (Metrics.to_array m')

let test_metrics_merge_shards_covers_all_fields () =
  let shards = [| distinct_metrics 100; distinct_metrics 1000; distinct_metrics 10000 |] in
  let baseline = distinct_metrics 3 in
  let merged = Metrics.merge_shards ~sync_baseline:baseline shards in
  let expected =
    Array.init Metrics.field_count (fun i ->
        (100 + i) + (1000 + i) + (10000 + i) - (2 * (3 + i)))
  in
  Alcotest.(check (array int)) "Σ shards − (K−1)·baseline, every field" expected
    (Metrics.to_array merged)

(* --- SoA batch decoder ------------------------------------------------------ *)

let gen_trace ~seed ~length =
  let prng = Prng.create ~seed in
  Trace_gen.random prng
    {
      Trace_gen.nthreads = 4;
      nlocks = 3;
      nlocs = 12;
      length;
      atomics = true;
      forkjoin = true;
    }

let decode_all_batched ?(capacity = 7) data =
  match Tb.open_bytes data with
  | Error msg -> Alcotest.failf "open_bytes: %s" msg
  | Ok r ->
    let b = Tb.create_batch ~capacity () in
    let events = ref [] and ends = ref [] in
    let rec loop () =
      match Tb.read_batch r b with
      | Error msg -> Alcotest.failf "read_batch: %s" msg
      | Ok 0 -> ()
      | Ok n ->
        Alcotest.(check int) "batch_length agrees" n (Tb.batch_length b);
        for j = 0 to n - 1 do
          events := Tb.batch_event b j :: !events;
          ends := Tb.batch_end b j :: !ends
        done;
        loop ()
    in
    loop ();
    (List.rev !events, List.rev !ends)

let test_batch_equals_next () =
  let trace = gen_trace ~seed:5 ~length:2_000 in
  let data = Tb.to_bytes trace in
  let batched, ends = decode_all_batched data in
  (* against the per-event reader *)
  let r = Option.get (Result.to_option (Tb.open_bytes data)) in
  let rec pull acc =
    match Tb.next r with
    | Error msg -> Alcotest.failf "next: %s" msg
    | Ok None -> List.rev acc
    | Ok (Some e) -> pull (e :: acc)
  in
  let streamed = pull [] in
  Alcotest.(check int) "event count" (Trace.length trace) (List.length batched);
  List.iteri
    (fun i (a, b) ->
      if not (Event.equal a b) then Alcotest.failf "event %d: batch ≠ next" i)
    (List.combine batched streamed);
  (* and against the source trace *)
  List.iteri
    (fun i e ->
      if not (Event.equal e (Trace.get trace i)) then
        Alcotest.failf "event %d: batch ≠ trace" i)
    batched;
  (* offsets: strictly increasing, ending exactly at the payload's end *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "ends strictly increase" true (a < b);
      mono rest
    | _ -> ()
  in
  mono ends;
  Alcotest.(check int) "last end is the payload end" (Bytes.length data)
    (List.nth ends (List.length ends - 1))

let test_batch_seek_resume () =
  let trace = gen_trace ~seed:6 ~length:1_500 in
  let data = Tb.to_bytes trace in
  let _, ends = decode_all_batched data in
  let ends = Array.of_list ends in
  (* resume from every 97th event boundary: the checkpoint seek contract *)
  let k = ref 97 in
  while !k < Trace.length trace do
    let r = Option.get (Result.to_option (Tb.open_bytes data)) in
    (match Tb.seek r ~byte_offset:ends.(!k - 1) ~next_index:!k with
    | Error msg -> Alcotest.failf "seek to %d: %s" !k msg
    | Ok () -> ());
    let b = Tb.create_batch () in
    let i = ref !k in
    let rec loop () =
      match Tb.read_batch r b with
      | Error msg -> Alcotest.failf "post-seek read_batch: %s" msg
      | Ok 0 -> ()
      | Ok n ->
        for j = 0 to n - 1 do
          if not (Event.equal (Tb.batch_event b j) (Trace.get trace !i)) then
            Alcotest.failf "post-seek event %d differs (resumed at %d)" !i !k;
          incr i
        done;
        loop ()
    in
    loop ();
    Alcotest.(check int) "suffix complete" (Trace.length trace) !i;
    k := !k + 97
  done

let test_batch_channel_refill () =
  let trace = gen_trace ~seed:7 ~length:3_000 in
  let path = Filename.temp_file "fastpath" ".ftb" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Tb.to_file path trace;
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (* a tiny chunk forces refills inside varints and across batch cuts *)
  match Tb.open_channel ~chunk_size:64 ic with
  | Error msg -> Alcotest.failf "open_channel: %s" msg
  | Ok r ->
    let b = Tb.create_batch ~capacity:33 () in
    let i = ref 0 in
    let rec loop () =
      match Tb.read_batch r b with
      | Error msg -> Alcotest.failf "read_batch: %s" msg
      | Ok 0 -> ()
      | Ok n ->
        for j = 0 to n - 1 do
          if not (Event.equal (Tb.batch_event b j) (Trace.get trace !i)) then
            Alcotest.failf "channel event %d differs" !i;
          incr i
        done;
        loop ()
    in
    loop ();
    Alcotest.(check int) "all events" (Trace.length trace) !i

(* hand-rolled payloads (LEB128 varints, two bytes max needed here) *)
let craft ~nthreads ~nlocks ~nlocs events =
  let b = Buffer.create 64 in
  Buffer.add_string b "FTRB";
  List.iter
    (fun v ->
      if v < 128 then Buffer.add_char b (Char.chr v)
      else begin
        Buffer.add_char b (Char.chr (128 lor (v land 0x7f)));
        Buffer.add_char b (Char.chr (v lsr 7))
      end)
    ([ 1; nthreads; nlocks; nlocs; List.length events ]
    @ List.concat_map (fun (head, payload) -> [ head; payload ]) events);
  Buffer.to_bytes b

let expect_error what expected data =
  match Tb.of_bytes data with
  | Ok _ -> Alcotest.failf "%s: hostile input accepted" what
  | Error msg -> Alcotest.(check string) what expected msg

let test_batch_hostile_input () =
  (* tag 0 = read; head = tag lor thread lsl 3 *)
  expect_error "thread out of range" "thread id out of range"
    (craft ~nthreads:2 ~nlocks:1 ~nlocs:1 [ (0 lor (5 lsl 3), 0) ]);
  expect_error "location out of range" "location id out of range"
    (craft ~nthreads:2 ~nlocks:1 ~nlocs:1 [ (0, 3) ]);
  expect_error "lock out of range" "lock id out of range"
    (craft ~nthreads:2 ~nlocks:1 ~nlocs:1 [ (2, 7) ]);
  expect_error "thread operand out of range" "thread operand out of range"
    (craft ~nthreads:2 ~nlocks:1 ~nlocs:1 [ (6, 3) ]);
  (* two-byte payload (loc 200): cutting the last byte passes the header's
     2-bytes-per-event budget but truncates the decode *)
  let data = craft ~nthreads:2 ~nlocks:1 ~nlocs:256 [ (0, 200) ] in
  expect_error "truncated event" "truncated input"
    (Bytes.sub data 0 (Bytes.length data - 1))

(* --- byte-identity grid: flat engines vs vendored seed engines ------------- *)

let zero_same_epoch arr =
  let arr = Array.copy arr in
  Array.iteri
    (fun i n -> if n = "same_epoch_hits" then arr.(i) <- 0)
    Metrics.field_names;
  arr

let same_verdict ~events ~what (flat : Detector.result) (reference : Detector.result) =
  if flat.Detector.races <> reference.Detector.races then
    Alcotest.failf "%s: race lists diverge" what;
  let fa = zero_same_epoch (Metrics.to_array flat.Detector.metrics)
  and ra = zero_same_epoch (Metrics.to_array reference.Detector.metrics) in
  Alcotest.(check (array int)) (what ^ ": all counters modulo same_epoch_hits") ra fa;
  Alcotest.(check string)
    (what ^ ": rendered report")
    (Serve.report_text ~events reference)
    (Serve.report_text ~events flat)

let grid_engines = Engine.[ Djit; Fasttrack; St; Su; So; Sl; Sn; O1; O1u ]

let grid_samplers () =
  [
    ("all", Sampler.all);
    ("bernoulli", Sampler.bernoulli ~rate:0.3 ~seed:11);
    ("adaptive", Sampler.adaptive ~base_rate:4);
  ]

let run_sharded id ~shards config trace =
  let sh = Sharded.create ~engine:id ~shards config in
  Fun.protect ~finally:(fun () -> Sharded.stop sh) @@ fun () ->
  Trace.iteri (fun i e -> Sharded.handle sh i e) trace;
  Sharded.result sh

let test_byte_identity_grid () =
  let hits = ref 0 in
  List.iter
    (fun seed ->
      (* the same chaos workload seed test_fault anchors on, plus a second *)
      let trace = gen_trace ~seed ~length:800 in
      let events = Trace.length trace in
      List.iter
        (fun id ->
          List.iter
            (fun (sname, sampler) ->
              let reference = Ref_engines.run id ~sampler trace in
              let what k =
                Printf.sprintf "%s × %s × K=%d (seed %d)" (Engine.name id) sname k seed
              in
              let flat = Engine.run id ~sampler trace in
              same_verdict ~events ~what:(what 1) flat reference;
              hits := !hits + flat.Detector.metrics.Metrics.same_epoch_hits;
              let config =
                {
                  Detector.nthreads = trace.Trace.nthreads;
                  nlocks = trace.Trace.nlocks;
                  nlocs = trace.Trace.nlocs;
                  clock_size = trace.Trace.nthreads;
                  sampler;
                }
              in
              List.iter
                (fun k ->
                  same_verdict ~events ~what:(what k)
                    (run_sharded id ~shards:k config trace)
                    reference)
                [ 2; 4 ])
            (grid_samplers ()))
        grid_engines)
    [ 77; 1234 ];
  Alcotest.(check bool) "the fast path actually fired across the grid" true (!hits > 0)

(* --- --racy-fastpath -------------------------------------------------------- *)

let first_race_per_loc races =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.Race.loc then false
      else begin
        Hashtbl.add seen r.Race.loc ();
        true
      end)
    races

(* pinned litmus: location x0 races twice under the seed semantics, x1 once *)
let litmus_trace =
  let e t op = Event.mk t op in
  Trace.make ~nthreads:2 ~nlocks:1 ~nlocs:2
    [|
      e 0 (Event.Write 0);
      e 1 (Event.Write 0);  (* race 1 at x0 *)
      e 0 (Event.Write 0);  (* race 2 at x0 — gated run must skip this *)
      e 1 (Event.Write 1);
      e 0 (Event.Write 1);  (* race at x1 — gated run must still find it *)
    |]

let test_racy_fastpath_litmus () =
  let plain = Engine.run Engine.Fasttrack litmus_trace in
  let gated = Engine.run Engine.Fasttrack ~racy_fastpath:true litmus_trace in
  Alcotest.(check int) "plain declares three races" 3 (List.length plain.Detector.races);
  Alcotest.(check int) "gated declares two" 2 (List.length gated.Detector.races);
  Alcotest.(check (list int)) "gated keeps one per location" [ 0; 1 ]
    (List.sort compare (Race.locations gated.Detector.races));
  Alcotest.(check bool) "verdicts pinned divergent" true
    (plain.Detector.races <> gated.Detector.races);
  Alcotest.(check bool) "gate does fewer race checks" true
    (gated.Detector.metrics.Metrics.race_checks
    < plain.Detector.metrics.Metrics.race_checks)

(* FastTrack's access handlers touch only the accessed location, so gating
   has a closed-form oracle: the gated race list is exactly the first race
   per location of the ungated run. *)
let test_racy_fastpath_oracle () =
  List.iter
    (fun seed ->
      let trace = gen_trace ~seed ~length:1_200 in
      let plain = Engine.run Engine.Fasttrack trace in
      let gated = Engine.run Engine.Fasttrack ~racy_fastpath:true trace in
      Alcotest.(check bool)
        (Printf.sprintf "first race per location (seed %d)" seed)
        true
        (gated.Detector.races = first_race_per_loc plain.Detector.races))
    [ 3; 4; 5; 6 ]

let test_racy_fastpath_snapshot_roundtrip () =
  let trace = gen_trace ~seed:9 ~length:1_000 in
  let config =
    {
      Detector.nthreads = trace.Trace.nthreads;
      nlocks = trace.Trace.nlocks;
      nlocs = trace.Trace.nlocs;
      clock_size = trace.Trace.nthreads;
      sampler = Sampler.all;
    }
  in
  let (module D : Detector.S) = Engine.detector ~racy_fastpath:true Engine.Fasttrack in
  let straight = D.create config in
  Trace.iteri (fun i e -> D.handle straight i e) trace;
  let cut = Trace.length trace / 2 in
  let d = D.create config in
  for i = 0 to cut - 1 do
    D.handle d i (Trace.get trace i)
  done;
  let d' = D.restore config (D.snapshot d) in
  for i = cut to Trace.length trace - 1 do
    D.handle d' i (Trace.get trace i)
  done;
  Alcotest.(check bool) "snapshot/restore mid-run changes nothing" true
    ((D.result d').Detector.races = (D.result straight).Detector.races
    && Metrics.to_array (D.result d').Detector.metrics
       = Metrics.to_array (D.result straight).Detector.metrics)

let () =
  Alcotest.run "fastpath"
    [
      ( "flat_table",
        [
          Alcotest.test_case "basic operations" `Quick test_flat_table_basic;
          Alcotest.test_case "random ops match Hashtbl model" `Quick test_flat_table_model;
          Alcotest.test_case "tombstone churn at constant size" `Quick
            test_flat_table_tombstone_churn;
        ] );
      ( "netbuf",
        [
          Alcotest.test_case "chunked feed semantics" `Quick test_netbuf_semantics;
          Alcotest.test_case "bytes moved stay linear (quadratic-recv regression)" `Quick
            test_netbuf_amortized_linear;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "field_names complete, unique, exports same_epoch_hits"
            `Quick test_metrics_field_names;
          Alcotest.test_case "snap codec roundtrips distinct values" `Quick
            test_metrics_snap_roundtrip;
          Alcotest.test_case "merge_shards covers every field" `Quick
            test_metrics_merge_shards_covers_all_fields;
        ] );
      ( "batch_decode",
        [
          Alcotest.test_case "batch ≡ next ≡ source trace, exact offsets" `Quick
            test_batch_equals_next;
          Alcotest.test_case "seek to any event boundary resumes exactly" `Quick
            test_batch_seek_resume;
          Alcotest.test_case "tiny channel chunks refill correctly" `Quick
            test_batch_channel_refill;
          Alcotest.test_case "hostile input rejected with exact errors" `Quick
            test_batch_hostile_input;
        ] );
      ( "byte_identity",
        [
          Alcotest.test_case "flat vs seed engines × samplers × K" `Slow
            test_byte_identity_grid;
        ] );
      ( "racy_fastpath",
        [
          Alcotest.test_case "litmus pins the verdict divergence" `Quick
            test_racy_fastpath_litmus;
          Alcotest.test_case "first-race-per-location oracle" `Quick
            test_racy_fastpath_oracle;
          Alcotest.test_case "gate survives snapshot/restore" `Quick
            test_racy_fastpath_snapshot_roundtrip;
        ] );
    ]
