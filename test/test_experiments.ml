(* Tests for the experiment frameworks (ft_rapid, ft_tsan) and for the two
   cost-model knobs that must never change detection results: the padded
   clock size and the fixed-budget prefix limit. *)

module Event = Ft_trace.Event
module Trace = Ft_trace.Trace
module Trace_gen = Ft_trace.Trace_gen
module Prng = Ft_support.Prng
module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Race = Ft_core.Race
module Metrics = Ft_core.Metrics
module Experiment = Ft_rapid.Experiment
module Harness = Ft_tsan.Harness
module Db_sim = Ft_workloads.Db_sim
module Classic = Ft_workloads.Classic

(* --- clock-size invariance -------------------------------------------- *)

let clock_size_invariant engine s =
  let prng = Prng.create ~seed:s in
  let trace = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 80 } in
  let sampler = Sampler.bernoulli ~rate:0.4 ~seed:s in
  let base = Engine.run engine ~sampler trace in
  let padded = Engine.run engine ~sampler ~clock_size:64 trace in
  Race.indices base.Detector.races = Race.indices padded.Detector.races

let test_clock_size_invariance () =
  List.iter
    (fun engine ->
      for s = 0 to 20 do
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d" (Engine.name engine) s)
          true
          (clock_size_invariant engine s)
      done)
    [ Engine.Djit; Engine.Fasttrack; Engine.St; Engine.Su; Engine.So ]

let test_clock_size_too_small () =
  let trace = Trace.of_events [| Event.mk 3 (Event.Write 0) |] in
  Alcotest.check_raises "below thread count"
    (Invalid_argument "Detector.config_of_trace: clock_size below thread count") (fun () ->
      ignore (Engine.run Engine.So ~clock_size:2 trace))

(* --- prefix limit ------------------------------------------------------- *)

let test_limit_prefix () =
  let prng = Prng.create ~seed:5 in
  let trace = Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 100 } in
  let full = Engine.run Engine.So trace in
  let limited = Engine.run Engine.So ~limit:40 trace in
  Alcotest.(check int) "events processed" 40 limited.Detector.metrics.Metrics.events;
  (* races declared in the prefix are a prefix of the full run's races *)
  let full_prefix = List.filter (fun r -> r.Race.index < 40) full.Detector.races in
  Alcotest.(check (list int)) "prefix races"
    (Race.indices full_prefix)
    (Race.indices limited.Detector.races);
  let over = Engine.run Engine.So ~limit:10_000 trace in
  Alcotest.(check int) "limit beyond end" (Trace.length trace)
    over.Detector.metrics.Metrics.events

(* --- sampling strategies -------------------------------------------------- *)

let strategy_trace () =
  let prng = Prng.create ~seed:77 in
  Trace_gen.random prng { Trace_gen.default with Trace_gen.length = 200 }

let test_windowed_sampler () =
  let s = Sampler.windowed ~period:10 ~duty:0.3 in
  let trace = strategy_trace () in
  let mask = Sampler.to_sampled_array s trace in
  Trace.iteri
    (fun i e ->
      let expected = Event.is_access e && i mod 10 < 3 in
      Alcotest.(check bool) (Printf.sprintf "event %d" i) expected mask.(i))
    trace

let test_cold_region_sampler () =
  let trace = strategy_trace () in
  let mask = Sampler.to_sampled_array (Sampler.cold_region ~threshold:2) trace in
  (* per location, exactly the first two accesses are sampled *)
  let counts = Hashtbl.create 8 in
  Trace.iteri
    (fun i e ->
      match Event.accessed_loc e with
      | None -> Alcotest.(check bool) "sync unsampled" false mask.(i)
      | Some x ->
        let c = Option.value ~default:0 (Hashtbl.find_opt counts x) in
        Hashtbl.replace counts x (c + 1);
        Alcotest.(check bool) (Printf.sprintf "event %d" i) (c < 2) mask.(i))
    trace

let test_adaptive_sampler_decays () =
  let trace = strategy_trace () in
  (* fresh sampler per materialization: decisions must be reproducible *)
  let m1 = Sampler.to_sampled_array (Sampler.adaptive ~base_rate:4) trace in
  let m2 = Sampler.to_sampled_array (Sampler.adaptive ~base_rate:4) trace in
  Alcotest.(check (array bool)) "deterministic" m1 m2

let test_strategies_respect_engine_equivalence () =
  (* materialized masks keep ST = SU = SO even for stateful strategies *)
  let trace = strategy_trace () in
  List.iter
    (fun s ->
      let mask = Sampler.to_sampled_array s trace in
      let run engine =
        Race.indices (Engine.run engine ~sampler:(Sampler.fixed mask) trace).Detector.races
      in
      let st = run Engine.St in
      Alcotest.(check (list int)) (Sampler.name s ^ " su") st (run Engine.Su);
      Alcotest.(check (list int)) (Sampler.name s ^ " so") st (run Engine.So))
    [
      Sampler.windowed ~period:16 ~duty:0.5;
      Sampler.cold_region ~threshold:3;
      Sampler.adaptive ~base_rate:4;
    ]

(* --- ft_rapid ------------------------------------------------------------ *)

let small_benchmarks =
  List.filter_map Classic.find [ "pingpong"; "wronglock"; "montecarlo" ]

let test_rapid_rows_shape () =
  let rows = Experiment.run ~benchmarks:small_benchmarks ~runs:3 ~scale:2 () in
  Alcotest.(check int) "3 benchmarks × 4 engines" 12 (List.length rows);
  List.iter
    (fun (r : Experiment.row) ->
      Alcotest.(check int) "runs recorded" 3 r.Experiment.runs;
      Alcotest.(check bool) "events counted" true (r.Experiment.metrics.Metrics.events > 0))
    rows

let test_rapid_engine_order () =
  Alcotest.(check (list string)) "appendix engine labels"
    [ "SU-(3%)"; "SO-(3%)"; "SU-(100%)"; "SO-(100%)" ]
    (List.map (fun (c : Experiment.engine_cfg) -> c.Experiment.label) Experiment.appendix_engines)

let test_rapid_su_skips_geq_so () =
  let rows = Experiment.run ~benchmarks:small_benchmarks ~runs:3 ~scale:2 () in
  let get label bench =
    List.find
      (fun (r : Experiment.row) -> r.Experiment.label = label && r.Experiment.benchmark = bench)
      rows
  in
  List.iter
    (fun (b : Classic.benchmark) ->
      let su = get "SU-(3%)" b.Classic.name and so = get "SO-(3%)" b.Classic.name in
      Alcotest.(check bool)
        (b.Classic.name ^ ": SU skips ≥ SO")
        true
        (Metrics.acquires_skipped_ratio su.Experiment.metrics
        >= Metrics.acquires_skipped_ratio so.Experiment.metrics))
    small_benchmarks

let contains_substring s name =
  let rec loop i =
    i + String.length name <= String.length s
    && (String.sub s i (String.length name) = name || loop (i + 1))
  in
  loop 0

let test_rapid_tables_render () =
  let rows = Experiment.run ~benchmarks:small_benchmarks ~runs:2 ~scale:2 () in
  List.iter
    (fun table ->
      let s = table rows in
      Alcotest.(check bool) "non-empty table" true (String.length s > 50);
      Alcotest.(check bool) "mentions a benchmark" true
        (List.exists
           (fun (b : Classic.benchmark) -> contains_substring s b.Classic.name)
           small_benchmarks))
    [ Experiment.fig7; Experiment.fig8; Experiment.fig9 ];
  let s = Experiment.summary rows in
  Alcotest.(check bool) "summary mentions engines" true (contains_substring s "SU-(3%)")

(* --- ft_tsan -------------------------------------------------------------- *)

let tiny_measurements () =
  let profiles =
    List.filter_map Db_sim.profile [ "voter"; "sibench" ]
  in
  Harness.run_all ~repeats:1 ~seed:2 ~profiles ~target_events:8000 ()

let test_tsan_measurement_sanity () =
  let ms = tiny_measurements () in
  Alcotest.(check int) "two benchmarks" 2 (List.length ms);
  List.iter
    (fun (m : Harness.measurement) ->
      Alcotest.(check bool) "events reached" true (m.Harness.events >= 8000);
      Alcotest.(check bool) "positive times" true
        (m.Harness.nt > 0.0 && m.Harness.et > 0.0 && m.Harness.ft > 0.0);
      Alcotest.(check int) "three rates" 3 (List.length m.Harness.per_rate);
      List.iter
        (fun (r : Harness.rate_result) ->
          Alcotest.(check bool) "positive engine times" true
            (r.Harness.st_time > 0.0 && r.Harness.su_time > 0.0 && r.Harness.so_time > 0.0))
        m.Harness.per_rate)
    ms

let test_tsan_ao () =
  let ms = tiny_measurements () in
  let m = List.hd ms in
  Alcotest.(check bool) "ao positive" true (Harness.ao m ~time:(m.Harness.et +. 1.0) > 0.99);
  Alcotest.(check bool) "ao clamped" true (Harness.ao m ~time:0.0 > 0.0)

let test_tsan_tables_render () =
  let ms = tiny_measurements () in
  List.iter
    (fun table ->
      Alcotest.(check bool) "non-empty" true (String.length (table ms) > 40))
    [ Harness.fig5a; Harness.fig5b; Harness.fig6a; Harness.fig6b; Harness.fig6c ];
  Alcotest.(check bool) "summary" true (String.length (Harness.summary ms) > 40)

let () =
  Alcotest.run "experiments"
    [
      ( "cost model knobs",
        [
          Alcotest.test_case "clock-size invariance" `Slow test_clock_size_invariance;
          Alcotest.test_case "clock-size validation" `Quick test_clock_size_too_small;
          Alcotest.test_case "prefix limit" `Quick test_limit_prefix;
        ] );
      ( "samplers",
        [
          Alcotest.test_case "windowed" `Quick test_windowed_sampler;
          Alcotest.test_case "cold region" `Quick test_cold_region_sampler;
          Alcotest.test_case "adaptive determinism" `Quick test_adaptive_sampler_decays;
          Alcotest.test_case "strategies keep engine equivalence" `Quick
            test_strategies_respect_engine_equivalence;
        ] );
      ( "rapid",
        [
          Alcotest.test_case "row shape" `Quick test_rapid_rows_shape;
          Alcotest.test_case "engine order" `Quick test_rapid_engine_order;
          Alcotest.test_case "SU skips ≥ SO" `Quick test_rapid_su_skips_geq_so;
          Alcotest.test_case "tables render" `Quick test_rapid_tables_render;
        ] );
      ( "tsan harness",
        [
          Alcotest.test_case "measurement sanity" `Slow test_tsan_measurement_sanity;
          Alcotest.test_case "algorithmic overhead" `Slow test_tsan_ao;
          Alcotest.test_case "tables render" `Slow test_tsan_tables_render;
        ] );
    ]
