(* Seed (pre-flat-state) engine implementations, vendored verbatim from the
   tree as of the hot-path overhaul so the byte-identity grid can compare
   the rebuilt engines against the originals they must not diverge from.
   Only [create]/[handle]/[result] are exercised; the vendored code is kept
   whole to avoid editing what it is meant to witness.  Do not "modernize"
   this file — its value is that it does NOT track lib/core. *)

module Vector_clock = Ft_core.Vector_clock
module Epoch = Ft_core.Epoch
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Ordered_list = Ft_core.Ordered_list
module Snap = Ft_core.Snap

module History = struct
  type loc_state = {
    mutable write : Vector_clock.t option;
    mutable write_index : int;
    mutable read : Vector_clock.t option;
    mutable read_index : int array;  (* allocated together with [read] *)
  }
  
  type t = {
    locs : loc_state option array;
    clock_size : int;
  }
  
  let create ~nlocs ~clock_size =
    { locs = Array.make (Stdlib.max 1 nlocs) None; clock_size }
  
  let state t x =
    match t.locs.(x) with
    | Some s -> s
    | None ->
      let s = { write = None; write_index = -1; read = None; read_index = [||] } in
      t.locs.(x) <- Some s;
      s
  
  (* First entry of [h] strictly above the current timestamp, or -1. *)
  let first_stale h ~bound =
    let n = Vector_clock.size h in
    let rec loop i =
      if i >= n then -1 else if Vector_clock.get h i > bound i then i else loop (i + 1)
    in
    loop 0
  
  let stale_write t x clock ~tid ~epoch =
    match t.locs.(x) with
    | None -> -1
    | Some s -> (
      match s.write with
      | None -> -1
      | Some h ->
        let bound i = if i = tid then epoch else Vector_clock.get clock i in
        if first_stale h ~bound < 0 then -1 else s.write_index)
  
  let stale_read t x clock ~tid ~epoch =
    match t.locs.(x) with
    | None -> -1
    | Some s -> (
      match s.read with
      | None -> -1
      | Some h ->
        let bound i = if i = tid then epoch else Vector_clock.get clock i in
        let offender = first_stale h ~bound in
        if offender < 0 then -1 else s.read_index.(offender))
  
  let ol_stale_write t x olist ~tid ~epoch =
    match t.locs.(x) with
    | None -> -1
    | Some s -> (
      match s.write with
      | None -> -1
      | Some h ->
        let bound i = if i = tid then epoch else Ordered_list.get olist i in
        if first_stale h ~bound < 0 then -1 else s.write_index)
  
  let ol_stale_read t x olist ~tid ~epoch =
    match t.locs.(x) with
    | None -> -1
    | Some s -> (
      match s.read with
      | None -> -1
      | Some h ->
        let bound i = if i = tid then epoch else Ordered_list.get olist i in
        let offender = first_stale h ~bound in
        if offender < 0 then -1 else s.read_index.(offender))
  
  let write_clock t s =
    match s.write with
    | Some h -> h
    | None ->
      let h = Vector_clock.create t.clock_size in
      s.write <- Some h;
      h
  
  let record_write_vc t x clock ~tid ~epoch ~index =
    let s = state t x in
    let h = write_clock t s in
    Vector_clock.copy_into ~into:h clock;
    Vector_clock.set h tid epoch;
    s.write_index <- index
  
  let record_write_ol t x olist ~tid ~epoch ~index =
    let s = state t x in
    let h = write_clock t s in
    Ordered_list.iter olist (fun tid' time -> Vector_clock.set h tid' time);
    Vector_clock.set h tid epoch;
    s.write_index <- index
  
  let encode enc t =
    Snap.Enc.int enc (Array.length t.locs);
    Array.iter
      (fun s ->
        Snap.Enc.option enc
          (fun s ->
            Snap.Enc.option enc (Vector_clock.encode enc) s.write;
            Snap.Enc.int enc s.write_index;
            Snap.Enc.option enc
              (fun r ->
                Vector_clock.encode enc r;
                Snap.Enc.int_array enc s.read_index)
              s.read)
          s)
      t.locs
  
  let decode dec ~nlocs ~clock_size =
    let stored = Snap.Dec.int dec in
    let t = create ~nlocs ~clock_size in
    Snap.expect (stored = Array.length t.locs) "history location count mismatch";
    for x = 0 to stored - 1 do
      t.locs.(x) <-
        Snap.Dec.option dec (fun () ->
            let write = Snap.Dec.option dec (fun () -> Vector_clock.decode dec ~size:clock_size) in
            let write_index = Snap.Dec.int dec in
            let read = ref None and read_index = ref [||] in
            (match
               Snap.Dec.option dec (fun () ->
                   let r = Vector_clock.decode dec ~size:clock_size in
                   let ri = Snap.Dec.int_array_n dec clock_size in
                   (r, ri))
             with
            | None -> ()
            | Some (r, ri) ->
              read := Some r;
              read_index := ri);
            { write; write_index; read = !read; read_index = !read_index })
    done;
    t
  
  let record_read t x ~tid ~epoch ~index =
    let s = state t x in
    let h =
      match s.read with
      | Some h -> h
      | None ->
        let h = Vector_clock.create t.clock_size in
        s.read <- Some h;
        s.read_index <- Array.make t.clock_size (-1);
        h
    in
    Vector_clock.set h tid epoch;
    s.read_index.(tid) <- index
end

module Djitp = struct
  module E = Ft_trace.Event
  module Vc = Vector_clock
  
  type t = {
    nthreads : int;
    clocks : Vc.t array;         (* C_t, initialized to ⊥[t ↦ 1] *)
    lock_clocks : Vc.t option array;  (* C_ℓ, lazily allocated *)
    history : History.t;
    metrics : Metrics.t;
    mutable races : Race.t list;
  }
  
  let name = "djit"
  
  let create (cfg : Detector.config) =
    let clocks =
      Array.init cfg.Detector.clock_size (fun i ->
          let c = Vc.create cfg.Detector.clock_size in
          Vc.set c i 1;
          c)
    in
    {
      nthreads = cfg.Detector.clock_size;
      clocks;
      lock_clocks = Array.make (Stdlib.max 1 cfg.Detector.nlocks) None;
      history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:cfg.Detector.clock_size;
      metrics = Metrics.create ();
      races = [];
    }
  
  (* DJIT+'s thread clock always has C_t(t) equal to the current epoch, so
     passing epoch = C_t(t) makes the history check the plain pointwise
     comparison. *)
  
  let declare d index tid x ~with_write ~with_read ~prior =
    d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
    let prior = if prior < 0 then None else Some prior in
    d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races
  
  let lock_clock d l =
    match d.lock_clocks.(l) with
    | Some c -> c
    | None ->
      let c = Vc.create d.nthreads in
      d.lock_clocks.(l) <- Some c;
      c
  
  let handle d index (e : E.t) =
    let m = d.metrics in
    m.Metrics.events <- m.Metrics.events + 1;
    let t = e.E.thread in
    let ct = d.clocks.(t) in
    match e.E.op with
    | E.Read x ->
      m.Metrics.reads <- m.Metrics.reads + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      let pw = History.stale_write d.history x ct ~tid:t ~epoch:(Vc.get ct t) in
      if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
      History.record_read d.history x ~tid:t ~epoch:(Vc.get ct t) ~index
    | E.Write x ->
      m.Metrics.writes <- m.Metrics.writes + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let pr = History.stale_read d.history x ct ~tid:t ~epoch:(Vc.get ct t) in
      let pw = History.stale_write d.history x ct ~tid:t ~epoch:(Vc.get ct t) in
      if pr >= 0 || pw >= 0 then
        declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
          ~prior:(if pw >= 0 then pw else pr);
      History.record_write_vc d.history x ct ~tid:t ~epoch:(Vc.get ct t) ~index
    | E.Acquire l | E.Acquire_load l ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      (match d.lock_clocks.(l) with
      | None -> ()
      | Some cl ->
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        Vc.join ~into:ct cl)
    | E.Release l | E.Release_store l ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      Vc.copy_into ~into:(lock_clock d l) ct;
      Vc.inc ct t
    | E.Fork u ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:d.clocks.(u) ct;
      Vc.inc ct t
    | E.Join u ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:ct d.clocks.(u)
  
  let result d =
    { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }
  
  let races_rev d = d.races
  
  (* Accesses never touch thread clocks here, so sharding needs no replay. *)
  let note_sampled (_ : t) (_ : int) = ()
  
  let snapshot d =
    let enc = Snap.Enc.create () in
    Array.iter (Vc.encode enc) d.clocks;
    Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
    History.encode enc d.history;
    Metrics.encode enc d.metrics;
    Race.encode_list enc d.races;
    Snap.Enc.to_snap enc
  
  let restore (cfg : Detector.config) s =
    let d = create cfg in
    let dec = Snap.Dec.of_snap s in
    let n = d.nthreads in
    for t = 0 to Array.length d.clocks - 1 do
      d.clocks.(t) <- Vc.decode dec ~size:n
    done;
    for l = 0 to Array.length d.lock_clocks - 1 do
      d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
    done;
    let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
    let metrics = Metrics.decode dec in
    d.races <- Race.decode_list dec;
    Snap.Dec.finish dec;
    { d with history; metrics }
end

module Fasttrack = struct
  module E = Ft_trace.Event
  module Vc = Vector_clock
  
  (* Read history: [rvc = None] means epoch mode ([repoch]); otherwise shared
     mode with the full clock. *)
  type read_state = {
    mutable repoch : Epoch.t;
    mutable rindex : int;  (* trace index behind [repoch] *)
    mutable rvc : Vc.t option;
    mutable rvc_index : int array;  (* per-thread indices, allocated with [rvc] *)
  }
  
  type t = {
    nthreads : int;
    clocks : Vc.t array;
    lock_clocks : Vc.t option array;
    writes : Epoch.t array;              (* W_x *)
    w_index : int array;                 (* trace index behind W_x *)
    reads : read_state option array;     (* R_x, lazily allocated *)
    metrics : Metrics.t;
    mutable races : Race.t list;
  }
  
  let name = "fasttrack"
  
  let create (cfg : Detector.config) =
    let clocks =
      Array.init cfg.Detector.clock_size (fun i ->
          let c = Vc.create cfg.Detector.clock_size in
          Vc.set c i 1;
          c)
    in
    {
      nthreads = cfg.Detector.clock_size;
      clocks;
      lock_clocks = Array.make (Stdlib.max 1 cfg.Detector.nlocks) None;
      writes = Array.make (Stdlib.max 1 cfg.Detector.nlocs) Epoch.none;
      w_index = Array.make (Stdlib.max 1 cfg.Detector.nlocs) (-1);
      reads = Array.make (Stdlib.max 1 cfg.Detector.nlocs) None;
      metrics = Metrics.create ();
      races = [];
    }
  
  let declare d index tid x ~with_write ~with_read ~prior =
    d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
    let prior = if prior < 0 then None else Some prior in
    d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races
  
  let read_state d x =
    match d.reads.(x) with
    | Some r -> r
    | None ->
      let r = { repoch = Epoch.none; rindex = -1; rvc = None; rvc_index = [||] } in
      d.reads.(x) <- Some r;
      r
  
  let lock_clock d l =
    match d.lock_clocks.(l) with
    | Some c -> c
    | None ->
      let c = Vc.create d.nthreads in
      d.lock_clocks.(l) <- Some c;
      c
  
  let handle d index (e : E.t) =
    let m = d.metrics in
    m.Metrics.events <- m.Metrics.events + 1;
    let t = e.E.thread in
    let ct = d.clocks.(t) in
    match e.E.op with
    | E.Read x ->
      m.Metrics.reads <- m.Metrics.reads + 1;
      let own = Epoch.make ~time:(Vc.get ct t) ~tid:t in
      let r = read_state d x in
      let same_epoch =
        match r.rvc with
        | None -> Epoch.equal r.repoch own
        | Some rv -> Vc.get rv t = Vc.get ct t
      in
      if not same_epoch then begin
        m.Metrics.race_checks <- m.Metrics.race_checks + 1;
        if not (Epoch.leq_vc d.writes.(x) ct) then
          declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
        match r.rvc with
        | Some rv ->
          Vc.set rv t (Vc.get ct t);
          r.rvc_index.(t) <- index
        | None ->
          if Epoch.equal r.repoch Epoch.none || Epoch.leq_vc r.repoch ct then begin
            (* exclusive read *)
            r.repoch <- own;
            r.rindex <- index
          end
          else begin
            (* inflate to shared mode *)
            let rv = Vc.create d.nthreads in
            let ri = Array.make d.nthreads (-1) in
            Vc.set rv (Epoch.tid r.repoch) (Epoch.time r.repoch);
            ri.(Epoch.tid r.repoch) <- r.rindex;
            Vc.set rv t (Vc.get ct t);
            ri.(t) <- index;
            r.rvc <- Some rv;
            r.rvc_index <- ri
          end
      end
    | E.Write x ->
      m.Metrics.writes <- m.Metrics.writes + 1;
      let own = Epoch.make ~time:(Vc.get ct t) ~tid:t in
      if not (Epoch.equal d.writes.(x) own) then begin
        m.Metrics.race_checks <- m.Metrics.race_checks + 2;
        let pw = if Epoch.leq_vc d.writes.(x) ct then -1 else d.w_index.(x) in
        let pr =
          match d.reads.(x) with
          | None -> -1
          | Some r -> (
            match r.rvc with
            | None -> if Epoch.leq_vc r.repoch ct then -1 else r.rindex
            | Some rv ->
              m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
              let rec stale i =
                if i >= Vc.size rv then -1
                else if Vc.get rv i > Vc.get ct i then r.rvc_index.(i)
                else stale (i + 1)
              in
              stale 0)
        in
        let with_write = pw >= 0 and with_read = pr >= 0 in
        if with_write || with_read then
          declare d index t x ~with_write ~with_read
            ~prior:(if with_write then pw else pr);
        d.writes.(x) <- own;
        d.w_index.(x) <- index;
        (* a successful shared-read check lets us fall back to epoch mode *)
        match d.reads.(x) with
        | Some r when r.rvc <> None && not with_read ->
          r.rvc <- None;
          r.repoch <- Epoch.none
        | Some _ | None -> ()
      end
    | E.Acquire l | E.Acquire_load l ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      (match d.lock_clocks.(l) with
      | None -> ()
      | Some cl ->
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        Vc.join ~into:ct cl)
    | E.Release l | E.Release_store l ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      Vc.copy_into ~into:(lock_clock d l) ct;
      Vc.inc ct t
    | E.Fork u ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:d.clocks.(u) ct;
      Vc.inc ct t
    | E.Join u ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:ct d.clocks.(u)
  
  let result d =
    { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }
  
  let races_rev d = d.races
  
  (* Accesses never touch thread clocks here, so sharding needs no replay. *)
  let note_sampled (_ : t) (_ : int) = ()
  
  let encode_read_state enc (r : read_state) =
    Epoch.encode enc r.repoch;
    Snap.Enc.int enc r.rindex;
    Snap.Enc.option enc
      (fun rv ->
        Vc.encode enc rv;
        Snap.Enc.int_array enc r.rvc_index)
      r.rvc
  
  let decode_read_state dec ~size =
    let repoch = Epoch.decode dec in
    let rindex = Snap.Dec.int dec in
    match
      Snap.Dec.option dec (fun () ->
          let rv = Vc.decode dec ~size in
          let ri = Snap.Dec.int_array_n dec size in
          (rv, ri))
    with
    | None -> { repoch; rindex; rvc = None; rvc_index = [||] }
    | Some (rv, ri) -> { repoch; rindex; rvc = Some rv; rvc_index = ri }
  
  let snapshot d =
    let enc = Snap.Enc.create () in
    Array.iter (Vc.encode enc) d.clocks;
    Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
    Array.iter (Epoch.encode enc) d.writes;
    Snap.Enc.int_array enc d.w_index;
    Array.iter (fun r -> Snap.Enc.option enc (encode_read_state enc) r) d.reads;
    Metrics.encode enc d.metrics;
    Race.encode_list enc d.races;
    Snap.Enc.to_snap enc
  
  let restore (cfg : Detector.config) s =
    let d = create cfg in
    let dec = Snap.Dec.of_snap s in
    let n = d.nthreads in
    for t = 0 to Array.length d.clocks - 1 do
      d.clocks.(t) <- Vc.decode dec ~size:n
    done;
    for l = 0 to Array.length d.lock_clocks - 1 do
      d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
    done;
    for x = 0 to Array.length d.writes - 1 do
      d.writes.(x) <- Epoch.decode dec
    done;
    let w_index = Snap.Dec.int_array_n dec (Array.length d.w_index) in
    Array.blit w_index 0 d.w_index 0 (Array.length w_index);
    for x = 0 to Array.length d.reads - 1 do
      d.reads.(x) <- Snap.Dec.option dec (fun () -> decode_read_state dec ~size:n)
    done;
    let metrics = Metrics.decode dec in
    d.races <- Race.decode_list dec;
    Snap.Dec.finish dec;
    { d with metrics }
end

module Sampling_naive = struct
  module E = Ft_trace.Event
  module Vc = Vector_clock
  
  type t = {
    nthreads : int;
    sample : Sampler.instance;
    clocks : Vc.t array;           (* C_t, initialized to ⊥ *)
    epochs : int array;            (* e_t, initialized to 1 *)
    pending : bool array;          (* sampled event since the last release? *)
    lock_clocks : Vc.t option array;
    history : History.t;
    metrics : Metrics.t;
    mutable races : Race.t list;
  }
  
  let name = "st"
  
  let create (cfg : Detector.config) =
    {
      nthreads = cfg.Detector.clock_size;
      sample = Sampler.fresh cfg.Detector.sampler;
      clocks = Array.init cfg.Detector.clock_size (fun _ -> Vc.create cfg.Detector.clock_size);
      epochs = Array.make cfg.Detector.clock_size 1;
      pending = Array.make cfg.Detector.clock_size false;
      lock_clocks = Array.make (Stdlib.max 1 cfg.Detector.nlocks) None;
      history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:cfg.Detector.clock_size;
      metrics = Metrics.create ();
      races = [];
    }
  
  let declare d index tid x ~with_write ~with_read ~prior =
    d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
    let prior = if prior < 0 then None else Some prior in
    d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races
  
  let lock_clock d l =
    match d.lock_clocks.(l) with
    | Some c -> c
    | None ->
      let c = Vc.create d.nthreads in
      d.lock_clocks.(l) <- Some c;
      c
  
  (* First release after a sampled event: flush the local epoch into the
     thread clock and advance it (Alg 2, release handler). *)
  let flush_pending d t =
    if d.pending.(t) then begin
      Vc.set d.clocks.(t) t d.epochs.(t);
      d.epochs.(t) <- d.epochs.(t) + 1;
      d.pending.(t) <- false
    end
  
  let handle d index (e : E.t) =
    let m = d.metrics in
    m.Metrics.events <- m.Metrics.events + 1;
    let t = e.E.thread in
    let ct = d.clocks.(t) in
    match e.E.op with
    | E.Read x ->
      m.Metrics.reads <- m.Metrics.reads + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 1;
        let epoch = d.epochs.(t) in
        let pw = History.stale_write d.history x ct ~tid:t ~epoch in
        if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
        History.record_read d.history x ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Write x ->
      m.Metrics.writes <- m.Metrics.writes + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 2;
        let epoch = d.epochs.(t) in
        let pr = History.stale_read d.history x ct ~tid:t ~epoch in
        let pw = History.stale_write d.history x ct ~tid:t ~epoch in
        if pr >= 0 || pw >= 0 then
          declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
            ~prior:(if pw >= 0 then pw else pr);
        History.record_write_vc d.history x ct ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Acquire l | E.Acquire_load l ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      (match d.lock_clocks.(l) with
      | None -> ()
      | Some cl ->
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        Vc.join ~into:ct cl)
    | E.Release l | E.Release_store l ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      Vc.copy_into ~into:(lock_clock d l) ct
    | E.Fork u ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:d.clocks.(u) ct
    | E.Join u ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      (* the child's end-of-thread acts as its final release: flush its pending
         sampled epoch so the parent inherits the child's latest accesses *)
      flush_pending d u;
      Vc.join ~into:ct d.clocks.(u)
  
  let result d =
    { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }
  
  let races_rev d = d.races
  
  (* Sharding hook: the thread-local half of a sampled access.  Idempotent
     until the next flush, exactly like the bit it sets. *)
  let note_sampled d t = d.pending.(t) <- true
  
  let snapshot d =
    let enc = Snap.Enc.create () in
    d.sample.Sampler.save enc;
    Array.iter (Vc.encode enc) d.clocks;
    Snap.Enc.int_array enc d.epochs;
    Snap.Enc.bool_array enc d.pending;
    Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
    History.encode enc d.history;
    Metrics.encode enc d.metrics;
    Race.encode_list enc d.races;
    Snap.Enc.to_snap enc
  
  let restore (cfg : Detector.config) s =
    let d = create cfg in
    let dec = Snap.Dec.of_snap s in
    let n = d.nthreads in
    d.sample.Sampler.load dec;
    for t = 0 to Array.length d.clocks - 1 do
      d.clocks.(t) <- Vc.decode dec ~size:n
    done;
    let epochs = Snap.Dec.int_array_n dec n in
    Array.blit epochs 0 d.epochs 0 n;
    let pending = Snap.Dec.bool_array_n dec n in
    Array.blit pending 0 d.pending 0 n;
    for l = 0 to Array.length d.lock_clocks - 1 do
      d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
    done;
    let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
    let metrics = Metrics.decode dec in
    d.races <- Race.decode_list dec;
    Snap.Dec.finish dec;
    { d with history; metrics }
end

module Sampling_uclock = struct
  module E = Ft_trace.Event
  module Vc = Vector_clock
  
  (* The implementation is a functor over the release-side-skip policy so that
     the ablation engine ("su-noskip") shares every line except the one
     decision Lemma 7 attributes to the freshness timestamp at releases. *)
  module Make (Policy : sig
    val name : string
    val release_skip : bool
  end) =
  struct
  type t = {
    nthreads : int;
    sample : Sampler.instance;
    clocks : Vc.t array;           (* C_t *)
    uclocks : Vc.t array;          (* U_t *)
    epochs : int array;            (* e_t *)
    pending : bool array;
    lock_clocks : Vc.t option array;   (* C_ℓ *)
    lock_uclocks : Vc.t option array;  (* U_ℓ *)
    lock_lr : int array;               (* LR_ℓ, -1 = NIL *)
    history : History.t;
    metrics : Metrics.t;
    mutable races : Race.t list;
  }
  
  let name = Policy.name
  
  let create (cfg : Detector.config) =
    let n = cfg.Detector.clock_size in
    let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
    {
      nthreads = n;
      sample = Sampler.fresh cfg.Detector.sampler;
      clocks = Array.init n (fun _ -> Vc.create n);
      uclocks = Array.init n (fun _ -> Vc.create n);
      epochs = Array.make n 1;
      pending = Array.make n false;
      lock_clocks = Array.make nlocks None;
      lock_uclocks = Array.make nlocks None;
      lock_lr = Array.make nlocks (-1);
      history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:n;
      metrics = Metrics.create ();
      races = [];
    }
  
  let declare d index tid x ~with_write ~with_read ~prior =
    d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
    let prior = if prior < 0 then None else Some prior in
    d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races
  
  let flush_pending d t =
    if d.pending.(t) then begin
      Vc.set d.clocks.(t) t d.epochs.(t);
      Vc.inc d.uclocks.(t) t;
      d.epochs.(t) <- d.epochs.(t) + 1;
      d.pending.(t) <- false
    end
  
  (* Copy the releasing thread's C and U clocks into the lock. *)
  let publish d t l =
    let m = d.metrics in
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    (match d.lock_clocks.(l) with
    | Some cl -> Vc.copy_into ~into:cl d.clocks.(t)
    | None -> d.lock_clocks.(l) <- Some (Vc.copy d.clocks.(t)));
    match d.lock_uclocks.(l) with
    | Some ul -> Vc.copy_into ~into:ul d.uclocks.(t)
    | None -> d.lock_uclocks.(l) <- Some (Vc.copy d.uclocks.(t))
  
  (* Join a source (C, U) pair into thread [t], counting C-entry changes into
     U_t(t) (Alg 3, lines 8–12).  The two joins are fused into one traversal:
     they range over the same indices and fusing halves the loop overhead of
     the handler's hot path. *)
  let absorb d t ~src_c ~src_u =
    let m = d.metrics in
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    let ut = d.uclocks.(t) and ct = d.clocks.(t) in
    let changed = ref 0 in
    for i = 0 to Vc.size ct - 1 do
      let u = Vc.get src_u i in
      if u > Vc.get ut i then Vc.set ut i u;
      let c = Vc.get src_c i in
      if c > Vc.get ct i then begin
        Vc.set ct i c;
        incr changed
      end
    done;
    if !changed > 0 then Vc.set ut t (Vc.get ut t + !changed)
  
  let handle d index (e : E.t) =
    let m = d.metrics in
    m.Metrics.events <- m.Metrics.events + 1;
    let t = e.E.thread in
    let ct = d.clocks.(t) in
    match e.E.op with
    | E.Read x ->
      m.Metrics.reads <- m.Metrics.reads + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 1;
        let epoch = d.epochs.(t) in
        let pw = History.stale_write d.history x ct ~tid:t ~epoch in
        if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
        History.record_read d.history x ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Write x ->
      m.Metrics.writes <- m.Metrics.writes + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 2;
        let epoch = d.epochs.(t) in
        let pr = History.stale_read d.history x ct ~tid:t ~epoch in
        let pw = History.stale_write d.history x ct ~tid:t ~epoch in
        if pr >= 0 || pw >= 0 then
          declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
            ~prior:(if pw >= 0 then pw else pr);
        History.record_write_vc d.history x ct ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Acquire l | E.Acquire_load l -> (
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      match d.lock_lr.(l) with
      | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      | lr ->
        let ul = Option.get d.lock_uclocks.(l) in
        if Vc.get ul lr <= Vc.get d.uclocks.(t) lr then
          m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
        else absorb d t ~src_c:(Option.get d.lock_clocks.(l)) ~src_u:ul)
    | E.Release l ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      d.lock_lr.(l) <- t;
      flush_pending d t;
      (match d.lock_uclocks.(l) with
      | Some ul when Policy.release_skip && Vc.get ul t = Vc.get d.uclocks.(t) t ->
        (* the lock already carries this thread's latest information *)
        ()
      | Some _ | None -> publish d t l)
    | E.Release_store l ->
      (* non-monotonic lock clock: the release-side skip is unsound here *)
      m.Metrics.releases <- m.Metrics.releases + 1;
      d.lock_lr.(l) <- t;
      flush_pending d t;
      publish d t l
    | E.Fork u ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      flush_pending d t;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
      Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
      let changed = Vc.join_count ~into:d.clocks.(u) ct in
      if changed > 0 then Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + changed)
    | E.Join u ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      (* the child's end-of-thread acts as its final release: flush its pending
         sampled epoch so the parent inherits the child's latest accesses *)
      flush_pending d u;
      absorb d t ~src_c:d.clocks.(u) ~src_u:d.uclocks.(u)
  
  let result d =
    { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }
  
  let races_rev d = d.races
  
  (* Sharding hook: the thread-local half of a sampled access.  Idempotent
     until the next flush, exactly like the bit it sets. *)
  let note_sampled d t = d.pending.(t) <- true
  
  let snapshot d =
    let enc = Snap.Enc.create () in
    d.sample.Sampler.save enc;
    Array.iter (Vc.encode enc) d.clocks;
    Array.iter (Vc.encode enc) d.uclocks;
    Snap.Enc.int_array enc d.epochs;
    Snap.Enc.bool_array enc d.pending;
    Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
    Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_uclocks;
    Snap.Enc.int_array enc d.lock_lr;
    History.encode enc d.history;
    Metrics.encode enc d.metrics;
    Race.encode_list enc d.races;
    Snap.Enc.to_snap enc
  
  let restore (cfg : Detector.config) s =
    let d = create cfg in
    let dec = Snap.Dec.of_snap s in
    let n = d.nthreads in
    d.sample.Sampler.load dec;
    for t = 0 to Array.length d.clocks - 1 do
      d.clocks.(t) <- Vc.decode dec ~size:n
    done;
    for t = 0 to Array.length d.uclocks - 1 do
      d.uclocks.(t) <- Vc.decode dec ~size:n
    done;
    let epochs = Snap.Dec.int_array_n dec n in
    Array.blit epochs 0 d.epochs 0 n;
    let pending = Snap.Dec.bool_array_n dec n in
    Array.blit pending 0 d.pending 0 n;
    for l = 0 to Array.length d.lock_clocks - 1 do
      d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
    done;
    for l = 0 to Array.length d.lock_uclocks - 1 do
      d.lock_uclocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
    done;
    let lock_lr = Snap.Dec.int_array_n dec (Array.length d.lock_lr) in
    Array.iteri
      (fun l lr ->
        Snap.expect (lr >= -1 && lr < n) "lock releaser out of range";
        d.lock_lr.(l) <- lr)
      lock_lr;
    let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
    let metrics = Metrics.decode dec in
    d.races <- Race.decode_list dec;
    Snap.Dec.finish dec;
    { d with history; metrics }
  
  end
  
  include Make (struct
    let name = "su"
    let release_skip = true
  end)
end

module Sampling_ordered_list = struct
  module E = Ft_trace.Event
  module Vc = Vector_clock
  module Ol = Ordered_list
  
  type t = {
    nthreads : int;
    sample : Sampler.instance;
    mutable olists : Ol.t array;
        (* O_t; the thread's *own* component is externalized into [own] (the
           local-epoch optimization) and the own node's value is stale *)
    own : int array;               (* flushed own component, C_t(t) *)
    uclocks : Vc.t array;          (* U_t *)
    epochs : int array;            (* e_t *)
    pending : bool array;
    shared : bool array;           (* shared_t: some lock references O_t *)
    lock_ol : Ol.t option array;   (* O_ℓ: shared reference *)
    lock_own : int array;          (* releaser's own component at release time *)
    lock_lr : int array;           (* LR_ℓ, -1 = NIL *)
    lock_u : int array;            (* U_ℓ scalar *)
    history : History.t;
    metrics : Metrics.t;
    mutable races : Race.t list;
  }
  
  let name = "so"
  
  let create (cfg : Detector.config) =
    let n = cfg.Detector.clock_size in
    let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
    {
      nthreads = n;
      sample = Sampler.fresh cfg.Detector.sampler;
      olists = Array.init n (fun _ -> Ol.create n);
      own = Array.make n 0;
      uclocks = Array.init n (fun _ -> Vc.create n);
      epochs = Array.make n 1;
      pending = Array.make n false;
      shared = Array.make n false;
      lock_ol = Array.make nlocks None;
      lock_own = Array.make nlocks 0;
      lock_lr = Array.make nlocks (-1);
      lock_u = Array.make nlocks 0;
      history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:n;
      metrics = Metrics.create ();
      races = [];
    }
  
  let declare d index tid x ~with_write ~with_read ~prior =
    d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
    let prior = if prior < 0 then None else Some prior in
    d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races
  
  (* Ensure thread [t] owns its list before mutating it (lazy copy). *)
  let touch_olist d t =
    if d.shared.(t) then begin
      d.olists.(t) <- Ol.deep_copy d.olists.(t);
      d.shared.(t) <- false;
      d.metrics.Metrics.deep_copies <- d.metrics.Metrics.deep_copies + 1;
      d.metrics.Metrics.vc_full_ops <- d.metrics.Metrics.vc_full_ops + 1
    end
  
  (* Thanks to the local-epoch optimization, flushing the pending sampled
     epoch touches only scalars — never the (possibly shared) list. *)
  let flush_pending d t =
    if d.pending.(t) then begin
      d.own.(t) <- d.epochs.(t);
      Vc.inc d.uclocks.(t) t;
      d.epochs.(t) <- d.epochs.(t) + 1;
      d.pending.(t) <- false
    end
  
  (* Raise thread [t]'s entry for [t'] to [v] if it is news, counting the
     change into the freshness clock. *)
  let absorb_entry d t t' v =
    if v > Ol.get d.olists.(t) t' then begin
      touch_olist d t;
      Ol.set d.olists.(t) t' v;
      Vc.inc d.uclocks.(t) t
    end
  
  let handle d index (e : E.t) =
    let m = d.metrics in
    m.Metrics.events <- m.Metrics.events + 1;
    let t = e.E.thread in
    match e.E.op with
    | E.Read x ->
      m.Metrics.reads <- m.Metrics.reads + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 1;
        let epoch = d.epochs.(t) in
        let pw = History.ol_stale_write d.history x d.olists.(t) ~tid:t ~epoch in
        if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
        History.record_read d.history x ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Write x ->
      m.Metrics.writes <- m.Metrics.writes + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 2;
        let epoch = d.epochs.(t) in
        let ol = d.olists.(t) in
        let pr = History.ol_stale_read d.history x ol ~tid:t ~epoch in
        let pw = History.ol_stale_write d.history x ol ~tid:t ~epoch in
        if pr >= 0 || pw >= 0 then
          declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
            ~prior:(if pw >= 0 then pw else pr);
        History.record_write_ol d.history x ol ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Acquire l | E.Acquire_load l -> (
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      match d.lock_lr.(l) with
      | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      | lr ->
        let ut = d.uclocks.(t) in
        if d.lock_u.(l) <= Vc.get ut lr then
          m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
        else begin
          let delta = d.lock_u.(l) - Vc.get ut lr in
          Vc.set ut lr d.lock_u.(l);
          (* the releaser's own component travels as a scalar *)
          if lr <> t then absorb_entry d t lr d.lock_own.(l);
          let ol = Option.get d.lock_ol.(l) in
          let traversed = ref 0 in
          Ol.iter_prefix ol delta (fun t' v ->
              incr traversed;
              (* skip our own entry (we know it best) and the releaser's node,
                 whose authoritative value is the scalar absorbed above *)
              if t' <> t && t' <> lr then absorb_entry d t t' v);
          m.Metrics.entries_traversed <- m.Metrics.entries_traversed + !traversed;
          m.Metrics.entries_saved <- m.Metrics.entries_saved + (d.nthreads - !traversed)
        end)
    | E.Release l | E.Release_store l ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      d.lock_ol.(l) <- Some d.olists.(t);
      d.lock_own.(l) <- d.own.(t);
      d.lock_lr.(l) <- t;
      d.lock_u.(l) <- Vc.get d.uclocks.(t) t;
      d.shared.(t) <- true;
      m.Metrics.shallow_copies <- m.Metrics.shallow_copies + 1
    | E.Fork u ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
      (* the child inherits the parent's full state; count every inherited
         entry into the child's own freshness counter *)
      let changed = ref 0 in
      Ol.iter d.olists.(t) (fun t' v ->
          if t' <> t && t' <> u && v > Ol.get d.olists.(u) t' then begin
            Ol.set d.olists.(u) t' v;
            incr changed
          end);
      if d.own.(t) > Ol.get d.olists.(u) t then begin
        Ol.set d.olists.(u) t d.own.(t);
        incr changed
      end;
      Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
      Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + !changed)
    | E.Join u ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      (* the child's end-of-thread acts as its final release *)
      flush_pending d u;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
      Vc.join ~into:d.uclocks.(t) d.uclocks.(u);
      Ol.iter d.olists.(u) (fun t' v -> if t' <> t && t' <> u then absorb_entry d t t' v);
      if u <> t then absorb_entry d t u d.own.(u)
  
  let result d =
    { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }
  
  let races_rev d = d.races
  
  (* Sharding hook: the thread-local half of a sampled access.  Idempotent
     until the next flush, exactly like the bit it sets. *)
  let note_sampled d t = d.pending.(t) <- true
  
  (* Snapshots must reproduce Alg 4's lazy-copy sharing structure, not just
     the list values: a release stores a *reference* to the releasing
     thread's list, and several locks may alias one list (or an old version a
     thread has since deep-copied away from).  Each lock's entry is encoded
     as a reference — to a thread's current list, or to an earlier lock's
     entry — and only as an inline list when it aliases neither, so restore
     rebuilds the exact physical sharing and the [shared] flags keep meaning
     what they meant. *)
  let tag_none = 0
  let tag_thread = 1
  let tag_lock = 2
  let tag_inline = 3
  
  let encode_lock_lists enc d =
    Array.iteri
      (fun l ol ->
        match ol with
        | None -> Snap.Enc.int enc tag_none
        | Some ol -> (
          let rec thread_alias t =
            if t >= Array.length d.olists then None
            else if d.olists.(t) == ol then Some t
            else thread_alias (t + 1)
          in
          let rec lock_alias l' =
            if l' >= l then None
            else
              match d.lock_ol.(l') with
              | Some ol' when ol' == ol -> Some l'
              | _ -> lock_alias (l' + 1)
          in
          match thread_alias 0 with
          | Some t ->
            Snap.Enc.int enc tag_thread;
            Snap.Enc.int enc t
          | None -> (
            match lock_alias 0 with
            | Some l' ->
              Snap.Enc.int enc tag_lock;
              Snap.Enc.int enc l'
            | None ->
              Snap.Enc.int enc tag_inline;
              Ol.encode enc ol)))
      d.lock_ol
  
  let decode_lock_lists dec d ~size =
    for l = 0 to Array.length d.lock_ol - 1 do
      d.lock_ol.(l) <-
        (match Snap.Dec.int dec with
        | t when t = tag_none -> None
        | t when t = tag_thread ->
          let tid = Snap.Dec.int dec in
          Snap.expect (tid >= 0 && tid < Array.length d.olists) "lock list thread out of range";
          Some d.olists.(tid)
        | t when t = tag_lock ->
          let l' = Snap.Dec.int dec in
          Snap.expect (l' >= 0 && l' < l) "lock list back-reference out of range";
          (match d.lock_ol.(l') with
          | Some _ as shared -> shared
          | None -> raise (Snap.Corrupt "lock list back-reference to empty slot"))
        | t when t = tag_inline -> Some (Ol.decode dec ~size)
        | t -> raise (Snap.Corrupt (Printf.sprintf "bad lock list tag %d" t)))
    done
  
  let snapshot d =
    let enc = Snap.Enc.create () in
    d.sample.Sampler.save enc;
    Array.iter (Ol.encode enc) d.olists;
    Snap.Enc.int_array enc d.own;
    Array.iter (Vc.encode enc) d.uclocks;
    Snap.Enc.int_array enc d.epochs;
    Snap.Enc.bool_array enc d.pending;
    Snap.Enc.bool_array enc d.shared;
    encode_lock_lists enc d;
    Snap.Enc.int_array enc d.lock_own;
    Snap.Enc.int_array enc d.lock_lr;
    Snap.Enc.int_array enc d.lock_u;
    History.encode enc d.history;
    Metrics.encode enc d.metrics;
    Race.encode_list enc d.races;
    Snap.Enc.to_snap enc
  
  let restore (cfg : Detector.config) s =
    let d = create cfg in
    let dec = Snap.Dec.of_snap s in
    let n = d.nthreads in
    d.sample.Sampler.load dec;
    for t = 0 to n - 1 do
      d.olists.(t) <- Ol.decode dec ~size:n
    done;
    let own = Snap.Dec.int_array_n dec n in
    Array.blit own 0 d.own 0 n;
    for t = 0 to n - 1 do
      d.uclocks.(t) <- Vc.decode dec ~size:n
    done;
    let epochs = Snap.Dec.int_array_n dec n in
    Array.blit epochs 0 d.epochs 0 n;
    let pending = Snap.Dec.bool_array_n dec n in
    Array.blit pending 0 d.pending 0 n;
    let shared = Snap.Dec.bool_array_n dec n in
    Array.blit shared 0 d.shared 0 n;
    decode_lock_lists dec d ~size:n;
    let nlocks = Array.length d.lock_own in
    let lock_own = Snap.Dec.int_array_n dec nlocks in
    Array.blit lock_own 0 d.lock_own 0 nlocks;
    let lock_lr = Snap.Dec.int_array_n dec nlocks in
    Array.iteri
      (fun l lr ->
        Snap.expect (lr >= -1 && lr < n) "lock releaser out of range";
        d.lock_lr.(l) <- lr)
      lock_lr;
    let lock_u = Snap.Dec.int_array_n dec nlocks in
    Array.blit lock_u 0 d.lock_u 0 nlocks;
    let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
    let metrics = Metrics.decode dec in
    d.races <- Race.decode_list dec;
    Snap.Dec.finish dec;
    { d with history; metrics }
end

module Sampling_lazy = struct
  module E = Ft_trace.Event
  module Vc = Vector_clock
  
  type t = {
    csize : int;
    sample : Sampler.instance;
    mutable clocks : Vc.t array;   (* C_t; own component externalized in [own] *)
    own : int array;
    uclocks : Vc.t array;          (* U_t *)
    epochs : int array;            (* e_t *)
    pending : bool array;
    shared : bool array;
    lock_vc : Vc.t option array;   (* shared reference *)
    lock_own : int array;
    lock_lr : int array;
    lock_u : int array;
    history : History.t;
    metrics : Metrics.t;
    mutable races : Race.t list;
  }
  
  let name = "sl"
  
  let create (cfg : Detector.config) =
    let n = cfg.Detector.clock_size in
    let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
    {
      csize = n;
      sample = Sampler.fresh cfg.Detector.sampler;
      clocks = Array.init n (fun _ -> Vc.create n);
      own = Array.make n 0;
      uclocks = Array.init n (fun _ -> Vc.create n);
      epochs = Array.make n 1;
      pending = Array.make n false;
      shared = Array.make n false;
      lock_vc = Array.make nlocks None;
      lock_own = Array.make nlocks 0;
      lock_lr = Array.make nlocks (-1);
      lock_u = Array.make nlocks 0;
      history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:n;
      metrics = Metrics.create ();
      races = [];
    }
  
  let declare d index tid x ~with_write ~with_read ~prior =
    d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
    let prior = if prior < 0 then None else Some prior in
    d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races
  
  let touch_clock d t =
    if d.shared.(t) then begin
      d.clocks.(t) <- Vc.copy d.clocks.(t);
      d.shared.(t) <- false;
      d.metrics.Metrics.deep_copies <- d.metrics.Metrics.deep_copies + 1;
      d.metrics.Metrics.vc_full_ops <- d.metrics.Metrics.vc_full_ops + 1
    end
  
  let flush_pending d t =
    if d.pending.(t) then begin
      d.own.(t) <- d.epochs.(t);
      Vc.inc d.uclocks.(t) t;
      d.epochs.(t) <- d.epochs.(t) + 1;
      d.pending.(t) <- false
    end
  
  let absorb_entry d t t' v =
    if v > Vc.get d.clocks.(t) t' then begin
      touch_clock d t;
      Vc.set d.clocks.(t) t' v;
      Vc.inc d.uclocks.(t) t
    end
  
  let handle d index (e : E.t) =
    let m = d.metrics in
    m.Metrics.events <- m.Metrics.events + 1;
    let t = e.E.thread in
    match e.E.op with
    | E.Read x ->
      m.Metrics.reads <- m.Metrics.reads + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 1;
        let epoch = d.epochs.(t) in
        let pw = History.stale_write d.history x d.clocks.(t) ~tid:t ~epoch in
        if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
        History.record_read d.history x ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Write x ->
      m.Metrics.writes <- m.Metrics.writes + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        m.Metrics.race_checks <- m.Metrics.race_checks + 2;
        let epoch = d.epochs.(t) in
        let ct = d.clocks.(t) in
        let pr = History.stale_read d.history x ct ~tid:t ~epoch in
        let pw = History.stale_write d.history x ct ~tid:t ~epoch in
        if pr >= 0 || pw >= 0 then
          declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
            ~prior:(if pw >= 0 then pw else pr);
        (* the externalized own component is authoritative, not the array *)
        History.record_write_vc d.history x ct ~tid:t ~epoch ~index;
        d.pending.(t) <- true
      end
    | E.Acquire l | E.Acquire_load l -> (
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      match d.lock_lr.(l) with
      | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      | lr ->
        let ut = d.uclocks.(t) in
        if d.lock_u.(l) <= Vc.get ut lr then
          m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
        else begin
          Vc.set ut lr d.lock_u.(l);
          if lr <> t then absorb_entry d t lr d.lock_own.(l);
          (* no recency structure: traverse the whole vector *)
          let lvc = Option.get d.lock_vc.(l) in
          m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
          m.Metrics.entries_traversed <- m.Metrics.entries_traversed + d.csize;
          for t' = 0 to d.csize - 1 do
            if t' <> t && t' <> lr then absorb_entry d t t' (Vc.get lvc t')
          done
        end)
    | E.Release l | E.Release_store l ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      d.lock_vc.(l) <- Some d.clocks.(t);
      d.lock_own.(l) <- d.own.(t);
      d.lock_lr.(l) <- t;
      d.lock_u.(l) <- Vc.get d.uclocks.(t) t;
      d.shared.(t) <- true;
      m.Metrics.shallow_copies <- m.Metrics.shallow_copies + 1
    | E.Fork u ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
      let changed = ref 0 in
      let ct = d.clocks.(t) in
      for t' = 0 to d.csize - 1 do
        if t' <> t && t' <> u && Vc.get ct t' > Vc.get d.clocks.(u) t' then begin
          Vc.set d.clocks.(u) t' (Vc.get ct t');
          incr changed
        end
      done;
      if d.own.(t) > Vc.get d.clocks.(u) t then begin
        Vc.set d.clocks.(u) t d.own.(t);
        incr changed
      end;
      Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
      Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + !changed)
    | E.Join u ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      flush_pending d u;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
      Vc.join ~into:d.uclocks.(t) d.uclocks.(u);
      let cu = d.clocks.(u) in
      for t' = 0 to d.csize - 1 do
        if t' <> t && t' <> u then absorb_entry d t t' (Vc.get cu t')
      done;
      if u <> t then absorb_entry d t u d.own.(u)
  
  let result d =
    { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }
  
  let races_rev d = d.races
  
  (* Sharding hook: the thread-local half of a sampled access.  Idempotent
     until the next flush, exactly like the bit it sets. *)
  let note_sampled d t = d.pending.(t) <- true
  
  (* Like the ordered-list engine, releases publish a *reference* to the
     releasing thread's clock, and the [shared] flags only make sense if the
     restored detector reproduces that physical sharing.  Lock entries are
     encoded as references to a thread clock or an earlier lock's entry and
     inlined only when they alias neither. *)
  let tag_none = 0
  let tag_thread = 1
  let tag_lock = 2
  let tag_inline = 3
  
  let encode_lock_vcs enc d =
    Array.iteri
      (fun l vc ->
        match vc with
        | None -> Snap.Enc.int enc tag_none
        | Some vc -> (
          let rec thread_alias t =
            if t >= Array.length d.clocks then None
            else if d.clocks.(t) == vc then Some t
            else thread_alias (t + 1)
          in
          let rec lock_alias l' =
            if l' >= l then None
            else
              match d.lock_vc.(l') with
              | Some vc' when vc' == vc -> Some l'
              | _ -> lock_alias (l' + 1)
          in
          match thread_alias 0 with
          | Some t ->
            Snap.Enc.int enc tag_thread;
            Snap.Enc.int enc t
          | None -> (
            match lock_alias 0 with
            | Some l' ->
              Snap.Enc.int enc tag_lock;
              Snap.Enc.int enc l'
            | None ->
              Snap.Enc.int enc tag_inline;
              Vc.encode enc vc)))
      d.lock_vc
  
  let decode_lock_vcs dec d ~size =
    for l = 0 to Array.length d.lock_vc - 1 do
      d.lock_vc.(l) <-
        (match Snap.Dec.int dec with
        | t when t = tag_none -> None
        | t when t = tag_thread ->
          let tid = Snap.Dec.int dec in
          Snap.expect (tid >= 0 && tid < Array.length d.clocks) "lock clock thread out of range";
          Some d.clocks.(tid)
        | t when t = tag_lock ->
          let l' = Snap.Dec.int dec in
          Snap.expect (l' >= 0 && l' < l) "lock clock back-reference out of range";
          (match d.lock_vc.(l') with
          | Some _ as shared -> shared
          | None -> raise (Snap.Corrupt "lock clock back-reference to empty slot"))
        | t when t = tag_inline -> Some (Vc.decode dec ~size)
        | t -> raise (Snap.Corrupt (Printf.sprintf "bad lock clock tag %d" t)))
    done
  
  let snapshot d =
    let enc = Snap.Enc.create () in
    d.sample.Sampler.save enc;
    Array.iter (Vc.encode enc) d.clocks;
    Snap.Enc.int_array enc d.own;
    Array.iter (Vc.encode enc) d.uclocks;
    Snap.Enc.int_array enc d.epochs;
    Snap.Enc.bool_array enc d.pending;
    Snap.Enc.bool_array enc d.shared;
    encode_lock_vcs enc d;
    Snap.Enc.int_array enc d.lock_own;
    Snap.Enc.int_array enc d.lock_lr;
    Snap.Enc.int_array enc d.lock_u;
    History.encode enc d.history;
    Metrics.encode enc d.metrics;
    Race.encode_list enc d.races;
    Snap.Enc.to_snap enc
  
  let restore (cfg : Detector.config) s =
    let d = create cfg in
    let dec = Snap.Dec.of_snap s in
    let n = d.csize in
    d.sample.Sampler.load dec;
    for t = 0 to n - 1 do
      d.clocks.(t) <- Vc.decode dec ~size:n
    done;
    let own = Snap.Dec.int_array_n dec n in
    Array.blit own 0 d.own 0 n;
    for t = 0 to n - 1 do
      d.uclocks.(t) <- Vc.decode dec ~size:n
    done;
    let epochs = Snap.Dec.int_array_n dec n in
    Array.blit epochs 0 d.epochs 0 n;
    let pending = Snap.Dec.bool_array_n dec n in
    Array.blit pending 0 d.pending 0 n;
    let shared = Snap.Dec.bool_array_n dec n in
    Array.blit shared 0 d.shared 0 n;
    decode_lock_vcs dec d ~size:n;
    let nlocks = Array.length d.lock_own in
    let lock_own = Snap.Dec.int_array_n dec nlocks in
    Array.blit lock_own 0 d.lock_own 0 nlocks;
    let lock_lr = Snap.Dec.int_array_n dec nlocks in
    Array.iteri
      (fun l lr ->
        Snap.expect (lr >= -1 && lr < n) "lock releaser out of range";
        d.lock_lr.(l) <- lr)
      lock_lr;
    let lock_u = Snap.Dec.int_array_n dec nlocks in
    Array.blit lock_u 0 d.lock_u 0 nlocks;
    let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
    let metrics = Metrics.decode dec in
    d.races <- Race.decode_list dec;
    Snap.Dec.finish dec;
    { d with history; metrics }
end

module Sampling_uclock_noskip = struct
  include Sampling_uclock.Make (struct
    let name = "su-noskip"
    let release_skip = false
  end)
end

(* Straight-line transcription of the O(1)-samples algorithm: FastTrack's
   adaptive location state (last-write epoch, exclusive-read epoch, a full
   read clock only while genuinely read-shared) recording only sampled
   accesses, ordered by the Alg 2 sampling clocks — ⊥-initialized [C_t]
   with the local epoch [e_t] externalized and flushed at the first release
   after a sample.  Location state is option-boxed records as in the
   vendored Fasttrack above — no flat arrays, no slot pools, no probe
   tables — so the production engine's data-structure tricks are exactly
   what this module omits.  The same-epoch skips are kept: in this
   algorithm they are semantics (a skipped access neither re-checks nor
   re-records), not a cache. *)
module Sampling_o1 = struct
  module E = Ft_trace.Event
  module Vc = Vector_clock

  (* The uclock policy grafts Alg 3's freshness skips onto the same
     handlers; clock contents are untouched by the skips, so both variants
     must report byte-identical races. *)
  module Make (Policy : sig
    val name : string
    val uclock : bool
  end) =
  struct
  type read_state = {
    mutable repoch : Epoch.t;
    mutable rindex : int;
    mutable rvc : Vc.t option;  (* [Some] = shared mode *)
    mutable rvc_index : int array;
  }

  type t = {
    nthreads : int;
    sample : Sampler.instance;
    clocks : Vc.t array;           (* C_t, ⊥-initialized *)
    uclocks : Vc.t array;          (* U_t, uclock policy only *)
    epochs : int array;            (* e_t *)
    pending : bool array;
    lock_clocks : Vc.t option array;
    lock_uclocks : Vc.t option array;
    lock_lr : int array;
    writes : Epoch.t array;        (* W_x: last sampled write *)
    w_index : int array;
    reads : read_state option array;
    metrics : Metrics.t;
    mutable races : Race.t list;
  }

  let name = Policy.name

  let create (cfg : Detector.config) =
    let n = cfg.Detector.clock_size in
    let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
    let nlocs = Stdlib.max 1 cfg.Detector.nlocs in
    {
      nthreads = n;
      sample = Sampler.fresh cfg.Detector.sampler;
      clocks = Array.init n (fun _ -> Vc.create n);
      uclocks =
        (if Policy.uclock then Array.init n (fun _ -> Vc.create n) else [||]);
      epochs = Array.make n 1;
      pending = Array.make n false;
      lock_clocks = Array.make nlocks None;
      lock_uclocks = Array.make nlocks None;
      lock_lr = Array.make nlocks (-1);
      writes = Array.make nlocs Epoch.none;
      w_index = Array.make nlocs (-1);
      reads = Array.make nlocs None;
      metrics = Metrics.create ();
      races = [];
    }

  let declare d index tid x ~with_write ~with_read ~prior =
    d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
    let prior = if prior < 0 then None else Some prior in
    d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

  let read_state d x =
    match d.reads.(x) with
    | Some r -> r
    | None ->
      let r = { repoch = Epoch.none; rindex = -1; rvc = None; rvc_index = [||] } in
      d.reads.(x) <- Some r;
      r

  let lock_clock d l =
    match d.lock_clocks.(l) with
    | Some c -> c
    | None ->
      let c = Vc.create d.nthreads in
      d.lock_clocks.(l) <- Some c;
      c

  (* [c@u ⊑ C_t[t ↦ e_t]]: the clock's own component holds only the last
     flushed epoch, so same-thread ordering consults [e_t]. *)
  let leq_sub e ct ~t ~epoch =
    if Epoch.tid e = t then Epoch.time e <= epoch else Epoch.leq_vc e ct

  let flush_pending d t =
    if d.pending.(t) then begin
      Vc.set d.clocks.(t) t d.epochs.(t);
      if Policy.uclock then Vc.inc d.uclocks.(t) t;
      d.epochs.(t) <- d.epochs.(t) + 1;
      d.pending.(t) <- false
    end

  let publish d t l =
    let m = d.metrics in
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    (match d.lock_clocks.(l) with
    | Some cl -> Vc.copy_into ~into:cl d.clocks.(t)
    | None -> d.lock_clocks.(l) <- Some (Vc.copy d.clocks.(t)));
    match d.lock_uclocks.(l) with
    | Some ul -> Vc.copy_into ~into:ul d.uclocks.(t)
    | None -> d.lock_uclocks.(l) <- Some (Vc.copy d.uclocks.(t))

  let absorb d t ~src_c ~src_u =
    let m = d.metrics in
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    let ut = d.uclocks.(t) and ct = d.clocks.(t) in
    let changed = ref 0 in
    for i = 0 to Vc.size ct - 1 do
      let u = Vc.get src_u i in
      if u > Vc.get ut i then Vc.set ut i u;
      let c = Vc.get src_c i in
      if c > Vc.get ct i then begin
        Vc.set ct i c;
        incr changed
      end
    done;
    if !changed > 0 then Vc.set ut t (Vc.get ut t + !changed)

  let handle d index (e : E.t) =
    let m = d.metrics in
    m.Metrics.events <- m.Metrics.events + 1;
    let t = e.E.thread in
    let ct = d.clocks.(t) in
    match e.E.op with
    | E.Read x ->
      m.Metrics.reads <- m.Metrics.reads + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        let epoch = d.epochs.(t) in
        let own = Epoch.make ~time:epoch ~tid:t in
        let r = read_state d x in
        let same_epoch =
          match r.rvc with
          | None -> Epoch.equal r.repoch own
          | Some rv -> Vc.get rv t = epoch
        in
        if same_epoch then
          m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
        else begin
          m.Metrics.race_checks <- m.Metrics.race_checks + 1;
          if not (leq_sub d.writes.(x) ct ~t ~epoch) then
            declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
          match r.rvc with
          | Some rv ->
            Vc.set rv t epoch;
            r.rvc_index.(t) <- index
          | None ->
            if leq_sub r.repoch ct ~t ~epoch then begin
              r.repoch <- own;
              r.rindex <- index
            end
            else begin
              (* inflate to shared mode *)
              let rv = Vc.create d.nthreads in
              let ri = Array.make d.nthreads (-1) in
              Vc.set rv (Epoch.tid r.repoch) (Epoch.time r.repoch);
              ri.(Epoch.tid r.repoch) <- r.rindex;
              Vc.set rv t epoch;
              ri.(t) <- index;
              r.rvc <- Some rv;
              r.rvc_index <- ri
            end
        end;
        d.pending.(t) <- true
      end
    | E.Write x ->
      m.Metrics.writes <- m.Metrics.writes + 1;
      if d.sample.Sampler.decide index e then begin
        m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
        let epoch = d.epochs.(t) in
        let own = Epoch.make ~time:epoch ~tid:t in
        if Epoch.equal d.writes.(x) own then
          m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
        else begin
          m.Metrics.race_checks <- m.Metrics.race_checks + 2;
          let pw = if leq_sub d.writes.(x) ct ~t ~epoch then -1 else d.w_index.(x) in
          let pr =
            match d.reads.(x) with
            | None -> -1
            | Some r -> (
              match r.rvc with
              | None -> if leq_sub r.repoch ct ~t ~epoch then -1 else r.rindex
              | Some rv ->
                m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
                let rec stale i =
                  if i >= Vc.size rv then -1
                  else if Vc.get rv i > (if i = t then epoch else Vc.get ct i)
                  then r.rvc_index.(i)
                  else stale (i + 1)
                in
                stale 0)
          in
          let with_write = pw >= 0 and with_read = pr >= 0 in
          if with_write || with_read then
            declare d index t x ~with_write ~with_read
              ~prior:(if with_write then pw else pr);
          d.writes.(x) <- own;
          d.w_index.(x) <- index;
          (* a successful shared-read check lets us fall back to epoch mode *)
          match d.reads.(x) with
          | Some r when r.rvc <> None && not with_read ->
            r.rvc <- None;
            r.repoch <- Epoch.none
          | Some _ | None -> ()
        end;
        d.pending.(t) <- true
      end
    | E.Acquire l | E.Acquire_load l ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      if Policy.uclock then (
        match d.lock_lr.(l) with
        | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
        | lr ->
          let ul = Option.get d.lock_uclocks.(l) in
          if Vc.get ul lr <= Vc.get d.uclocks.(t) lr then
            m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
          else absorb d t ~src_c:(Option.get d.lock_clocks.(l)) ~src_u:ul)
      else (
        match d.lock_clocks.(l) with
        | None -> ()
        | Some cl ->
          m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
          Vc.join ~into:ct cl)
    | E.Release l ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      if Policy.uclock then begin
        d.lock_lr.(l) <- t;
        match d.lock_uclocks.(l) with
        | Some ul when Vc.get ul t = Vc.get d.uclocks.(t) t -> ()
        | Some _ | None -> publish d t l
      end
      else begin
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
        Vc.copy_into ~into:(lock_clock d l) ct
      end
    | E.Release_store l ->
      (* non-monotonic lock clock: never skip the release side *)
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      if Policy.uclock then begin
        d.lock_lr.(l) <- t;
        publish d t l
      end
      else begin
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
        Vc.copy_into ~into:(lock_clock d l) ct
      end
    | E.Fork u ->
      m.Metrics.releases <- m.Metrics.releases + 1;
      flush_pending d t;
      if Policy.uclock then begin
        m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
        Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
        let changed = Vc.join_count ~into:d.clocks.(u) ct in
        if changed > 0 then
          Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + changed)
      end
      else begin
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        Vc.join ~into:d.clocks.(u) ct
      end
    | E.Join u ->
      m.Metrics.acquires <- m.Metrics.acquires + 1;
      (* the child's end acts as its final release *)
      flush_pending d u;
      if Policy.uclock then absorb d t ~src_c:d.clocks.(u) ~src_u:d.uclocks.(u)
      else begin
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        Vc.join ~into:ct d.clocks.(u)
      end

  let result d =
    { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

  let races_rev d = d.races

  let note_sampled d t = d.pending.(t) <- true

  let encode_read_state enc (r : read_state) =
    Epoch.encode enc r.repoch;
    Snap.Enc.int enc r.rindex;
    Snap.Enc.option enc
      (fun rv ->
        Vc.encode enc rv;
        Snap.Enc.int_array enc r.rvc_index)
      r.rvc

  let decode_read_state dec ~size =
    let repoch = Epoch.decode dec in
    let rindex = Snap.Dec.int dec in
    match
      Snap.Dec.option dec (fun () ->
          let rv = Vc.decode dec ~size in
          let ri = Snap.Dec.int_array_n dec size in
          (rv, ri))
    with
    | None -> { repoch; rindex; rvc = None; rvc_index = [||] }
    | Some (rv, ri) -> { repoch; rindex; rvc = Some rv; rvc_index = ri }

  let snapshot d =
    let enc = Snap.Enc.create () in
    d.sample.Sampler.save enc;
    Array.iter (Vc.encode enc) d.clocks;
    if Policy.uclock then Array.iter (Vc.encode enc) d.uclocks;
    Snap.Enc.int_array enc d.epochs;
    Snap.Enc.bool_array enc d.pending;
    Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
    if Policy.uclock then begin
      Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_uclocks;
      Snap.Enc.int_array enc d.lock_lr
    end;
    Array.iter (Epoch.encode enc) d.writes;
    Snap.Enc.int_array enc d.w_index;
    Array.iter (fun r -> Snap.Enc.option enc (encode_read_state enc) r) d.reads;
    Metrics.encode enc d.metrics;
    Race.encode_list enc d.races;
    Snap.Enc.to_snap enc

  let restore (cfg : Detector.config) s =
    let d = create cfg in
    let dec = Snap.Dec.of_snap s in
    let n = d.nthreads in
    d.sample.Sampler.load dec;
    for t = 0 to Array.length d.clocks - 1 do
      d.clocks.(t) <- Vc.decode dec ~size:n
    done;
    if Policy.uclock then
      for t = 0 to Array.length d.uclocks - 1 do
        d.uclocks.(t) <- Vc.decode dec ~size:n
      done;
    let epochs = Snap.Dec.int_array_n dec n in
    Array.blit epochs 0 d.epochs 0 n;
    let pending = Snap.Dec.bool_array_n dec n in
    Array.blit pending 0 d.pending 0 n;
    for l = 0 to Array.length d.lock_clocks - 1 do
      d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
    done;
    if Policy.uclock then begin
      for l = 0 to Array.length d.lock_uclocks - 1 do
        d.lock_uclocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
      done;
      let lock_lr = Snap.Dec.int_array_n dec (Array.length d.lock_lr) in
      Array.blit lock_lr 0 d.lock_lr 0 (Array.length lock_lr)
    end;
    for x = 0 to Array.length d.writes - 1 do
      d.writes.(x) <- Epoch.decode dec
    done;
    let w_index = Snap.Dec.int_array_n dec (Array.length d.w_index) in
    Array.blit w_index 0 d.w_index 0 (Array.length w_index);
    for x = 0 to Array.length d.reads - 1 do
      d.reads.(x) <- Snap.Dec.option dec (fun () -> decode_read_state dec ~size:n)
    done;
    let metrics = Metrics.decode dec in
    d.races <- Race.decode_list dec;
    Snap.Dec.finish dec;
    { d with metrics }

  end

  include Make (struct
    let name = "o1"
    let uclock = false
  end)
end

module Sampling_o1_uclock = struct
  include Sampling_o1.Make (struct
    let name = "o1-u"
    let uclock = true
  end)
end

(* The seed grid: every engine the flat rebuild must stay byte-identical
   to.  Fasttrack_tc and Eraser are untouched by the overhaul, so the grid
   anchors on these seven — plus the two O(1)-samples references above,
   which the production engines must match report-for-report. *)
let detector : Ft_core.Engine.id -> Detector.packed option = function
  | Ft_core.Engine.Djit -> Some (module Djitp)
  | Ft_core.Engine.Fasttrack -> Some (module Fasttrack)
  | Ft_core.Engine.St -> Some (module Sampling_naive)
  | Ft_core.Engine.Su -> Some (module Sampling_uclock)
  | Ft_core.Engine.So -> Some (module Sampling_ordered_list)
  | Ft_core.Engine.Sl -> Some (module Sampling_lazy)
  | Ft_core.Engine.Sn -> Some (module Sampling_uclock_noskip)
  | Ft_core.Engine.O1 -> Some (module Sampling_o1)
  | Ft_core.Engine.O1u -> Some (module Sampling_o1_uclock)
  | Ft_core.Engine.Fasttrack_tc | Ft_core.Engine.Eraser -> None

let run id ?sampler ?clock_size trace =
  match detector id with
  | None -> invalid_arg "Ref_engines.run: engine not vendored"
  | Some p -> Detector.run p ?sampler ?clock_size trace
