(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation and times the core operations with Bechamel.

     dune exec bench/main.exe                 (moderate sizes, all figures)
     dune exec bench/main.exe -- --full       (paper-scale sizes, slower)
     dune exec bench/main.exe -- --figure 5b  (one figure)
     dune exec bench/main.exe -- --no-bechamel

   One [Test.make] per table/figure: the Bechamel section times the
   computation underlying each figure on a small fixed instance (engine
   analysis runs for Figs 5–6, metric-counting runs for Figs 7–9) plus
   data-structure ablations; the tables themselves are then printed by the
   harnesses in [ft_tsan] and [ft_rapid]. *)

module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Vc = Ft_core.Vector_clock
module Ol = Ft_core.Ordered_list
module Trace = Ft_trace.Trace
module Sharded = Ft_shard.Sharded
module Clock = Ft_support.Clock
module Db_sim = Ft_workloads.Db_sim
module Classic = Ft_workloads.Classic
module Harness = Ft_tsan.Harness
module Experiment = Ft_rapid.Experiment
module Json = Ft_obs.Json
module Metrics = Ft_core.Metrics
module Serve = Ft_shard.Serve
module Router = Ft_cluster.Router
module Loadgen = Ft_cluster.Loadgen

(* --- options -------------------------------------------------------------- *)

type options = {
  mutable figure : string;
  mutable full : bool;
  mutable bechamel : bool;
  mutable events : int option;
  mutable runs : int option;
  mutable jobs : int;
  mutable phase : string;
}

let options =
  { figure = "all"; full = false; bechamel = true; events = None; runs = None; jobs = 1;
    phase = "current" }

let parse_args () =
  let spec =
    [
      ( "--figure",
        Arg.String (fun s -> options.figure <- s),
        "FIG  only this figure (5a..9, ablation, shards, cluster)" );
      ("--full", Arg.Unit (fun () -> options.full <- true), "  paper-scale sizes");
      ("--no-bechamel", Arg.Unit (fun () -> options.bechamel <- false), "  skip micro-timings");
      ("--events", Arg.Int (fun n -> options.events <- Some n), "N  events per DB trace");
      ("--runs", Arg.Int (fun n -> options.runs <- Some n), "K  offline repetitions");
      ( "-j",
        Arg.Int (fun n -> options.jobs <- Stdlib.max 1 n),
        "N  domains for experiment cells (default 1; 0 < N; tables stay \
         byte-identical, wall-clock timings contend)" );
      ("--jobs", Arg.Int (fun n -> options.jobs <- Stdlib.max 1 n), "N  same as -j");
      ( "--phase",
        Arg.String (fun s -> options.phase <- s),
        "NAME  label stamped on fig7 throughput rows (e.g. seed/flat)" );
    ]
  in
  Arg.parse spec (fun _ -> ()) "bench/main.exe [options]"

(* Runner statistics go to stderr so stdout — the tables — stays
   byte-comparable across [-j] values. *)
let report label stats =
  Format.eprintf "[%s] %a@." label Ft_par.pp_stats stats

let wants fig = options.figure = "all" || options.figure = fig

(* --- BENCH_<figure>.json sink ---------------------------------------------- *)

(* Every rendered figure also collects machine-readable rows; at exit one
   BENCH_<figure>.json per figure with data is written as a JSON array.  Rows
   carry engine, sampling rate, events, wall-clock seconds and the key
   Metrics ratios behind the figure, so plotting scripts need not scrape the
   printed tables. *)
let bench_rows : (string, Json.t list ref) Hashtbl.t = Hashtbl.create 16
let bench_order : string list ref = ref []

let add_row figure (fields : (string * Json.t) list) =
  let rows =
    match Hashtbl.find_opt bench_rows figure with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add bench_rows figure r;
      bench_order := figure :: !bench_order;
      r
  in
  rows := Json.Obj (("figure", Json.Str figure) :: fields) :: !rows

let write_bench_files () =
  List.iter
    (fun figure ->
      let rows = List.rev !(Hashtbl.find bench_rows figure) in
      let path = Printf.sprintf "BENCH_%s.json" figure in
      let oc = open_out path in
      output_string oc (Json.to_string_pretty (Json.Arr rows));
      close_out oc;
      Printf.eprintf "wrote %s (%d rows)\n%!" path (List.length rows))
    (List.rev !bench_order)

let jf x = Json.Float x

let add_tsan_rows (ms : Harness.measurement list) =
  List.iter
    (fun (m : Harness.measurement) ->
      let base extra =
        ("benchmark", Json.Str m.Harness.benchmark)
        :: ("events", Json.Int m.Harness.events)
        :: extra
      in
      let rel t = t /. Float.max m.Harness.nt 1e-12 in
      if wants "5a" then begin
        add_row "5a"
          (base [ ("engine", Json.Str "ET"); ("rate", jf 1.0); ("wall_s", jf m.et);
                  ("rel_nt", jf (rel m.et)) ]);
        add_row "5a"
          (base [ ("engine", Json.Str "FT"); ("rate", jf 1.0); ("wall_s", jf m.ft);
                  ("rel_nt", jf (rel m.ft)) ]);
        List.iter
          (fun (r : Harness.rate_result) ->
            add_row "5a"
              (base [ ("engine", Json.Str "ST"); ("rate", jf r.rate);
                      ("wall_s", jf r.st_time); ("rel_nt", jf (rel r.st_time)) ]))
          m.per_rate
      end;
      if wants "5b" then
        List.iter
          (fun (r : Harness.rate_result) ->
            let ao_st = Harness.ao m ~time:r.st_time in
            let row eng time =
              let ao = Harness.ao m ~time in
              base
                [ ("engine", Json.Str eng); ("rate", jf r.rate); ("wall_s", jf time);
                  ("ao_s", jf ao); ("ao_st_s", jf ao_st);
                  ("improvement", jf (1.0 -. (ao /. Float.max ao_st 1e-12))) ]
            in
            add_row "5b" (row "SU" r.su_time);
            add_row "5b" (row "SO" r.so_time))
          m.per_rate;
      if wants "6a" then
        List.iter
          (fun (r : Harness.rate_result) ->
            let rel_ft locs =
              float_of_int locs /. Float.max (float_of_int m.Harness.ft_locs) 1.0
            in
            let row eng locs =
              base
                [ ("engine", Json.Str eng); ("rate", jf r.rate);
                  ("racy_locations", Json.Int locs);
                  ("ft_locations", Json.Int m.Harness.ft_locs);
                  ("rel_ft", jf (rel_ft locs)) ]
            in
            add_row "6a" (row "ST" r.st_locs);
            add_row "6a" (row "SU" r.su_locs);
            add_row "6a" (row "SO" r.so_locs))
          m.per_rate;
      if wants "6b" then
        List.iter
          (fun (r : Harness.rate_result) ->
            add_row "6b"
              (base [ ("engine", Json.Str "SU"); ("rate", jf r.rate);
                      ("wall_s", jf r.su_time);
                      ("sync_full_work_ratio", jf (Metrics.sync_full_work_ratio r.su_metrics)) ]))
          m.per_rate;
      if wants "6c" then
        List.iter
          (fun (r : Harness.rate_result) ->
            add_row "6c"
              (base [ ("engine", Json.Str "SO"); ("rate", jf r.rate);
                      ("wall_s", jf r.so_time);
                      ("mean_entries_per_acquire", jf (Metrics.mean_entries_per_acquire r.so_metrics));
                      ("saved_traversal_ratio", jf (Metrics.saved_traversal_ratio r.so_metrics)) ]))
          m.per_rate)
    ms

let add_rapid_rows ~grid_wall_s (rows : Experiment.row list) =
  List.iter
    (fun (r : Experiment.row) ->
      let m = r.Experiment.metrics in
      let base extra =
        ("benchmark", Json.Str r.Experiment.benchmark)
        :: ("engine", Json.Str r.Experiment.label)
        :: ("runs", Json.Int r.Experiment.runs)
        :: ("events", Json.Int m.Metrics.events)
        :: ("grid_wall_s", jf grid_wall_s)
        :: extra
      in
      if wants "7" then
        add_row "7" (base [ ("acquires_skipped_ratio", jf (Metrics.acquires_skipped_ratio m)) ]);
      if wants "8" then
        add_row "8"
          (base [ ("releases_processed_ratio", jf (Metrics.releases_processed_ratio m));
                  ("deep_copy_ratio", jf (Metrics.deep_copy_ratio m)) ]);
      if wants "9" then
        add_row "9" (base [ ("saved_traversal_ratio", jf (Metrics.saved_traversal_ratio m)) ]))
    rows

(* --- bechamel section ------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let tpcc = Option.get (Db_sim.profile "tpcc") in
  let trace = Db_sim.generate tpcc ~seed:3 ~target_events:20_000 in
  let sampler = Sampler.bernoulli ~rate:0.03 ~seed:3 in
  let clock_size = 64 in
  let engine_run id () = Engine.run_instrumented id ~sampler ~clock_size trace in
  let pc = Option.get (Classic.find "producerconsumer") in
  let pc_trace = pc.Classic.generate ~seed:3 ~scale:4 in
  let offline id rate () =
    let s = if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed:3 in
    Engine.run id ~sampler:s pc_trace
  in
  (* ablation micro-benches: the data-structure operations the figures hinge
     on — a full vector-clock join versus ordered-list prefix absorption *)
  let vc_a = Vc.create 64 and vc_b = Vc.create 64 in
  Vc.set vc_b 7 1_000_000;
  let ol = Ol.create 64 in
  Ol.set ol 7 1_000_000;
  [
    Test.make ~name:"fig5a: NT replay" (Staged.stage (fun () -> Detector.replay_only trace));
    Test.make ~name:"fig5a: ET instrumented replay"
      (Staged.stage (fun () -> Detector.replay_instrumented trace));
    Test.make ~name:"fig5a: FT full detection" (Staged.stage (engine_run Engine.Fasttrack));
    Test.make ~name:"fig5a: ST 3% analysis" (Staged.stage (engine_run Engine.St));
    Test.make ~name:"fig5b: SU 3% analysis" (Staged.stage (engine_run Engine.Su));
    Test.make ~name:"fig5b: SO 3% analysis" (Staged.stage (engine_run Engine.So));
    Test.make ~name:"fig6: SU metrics run" (Staged.stage (offline Engine.Su 0.03));
    Test.make ~name:"fig6: SO metrics run" (Staged.stage (offline Engine.So 0.03));
    Test.make ~name:"fig7-9: SU-(100%) offline" (Staged.stage (offline Engine.Su 1.0));
    Test.make ~name:"fig7-9: SO-(100%) offline" (Staged.stage (offline Engine.So 1.0));
    Test.make ~name:"ablation: vector-clock join (T=64)"
      (Staged.stage (fun () -> Vc.join ~into:vc_a vc_b));
    Test.make ~name:"ablation: ordered-list 1-entry absorb (T=64)"
      (Staged.stage (fun () ->
           let stale = ref 0 in
           Ol.iter_prefix ol 1 (fun _ v -> stale := v);
           !stale));
    Test.make ~name:"ablation: ordered-list deep copy (T=64)"
      (Staged.stage (fun () -> Ol.deep_copy ol));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "Bechamel micro-timings (one test per table/figure)";
  print_endline "==================================================";
  let cfg = Benchmark.cfg ~limit:1200 ~quota:(Time.second 0.4) ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let tests = Test.make_grouped ~name:"freshtrack" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.1f ns" ns
      in
      Printf.printf "  %-45s %s/run\n" name pretty)
    rows;
  print_newline ()

(* --- shard scaling ---------------------------------------------------------- *)

(* Wall-clock scaling of the location-sharded online detector over K worker
   domains.  One JSON row per (workload, K) so plotting scripts can ingest
   the output directly; verdict exactness is enforced inline — every K must
   report the same race count as K=1, or the grid aborts. *)
let run_shard_grid ~target_events ~jobs:_ =
  print_newline ();
  print_endline "Shard scaling: SO engine, location-sharded across K domains";
  print_endline "===========================================================";
  let workloads =
    [
      ( "db:tpcc",
        let p = Option.get (Db_sim.profile "tpcc") in
        Db_sim.generate p ~seed:7 ~target_events );
      ( "classic:producerconsumer",
        let b = Option.get (Classic.find "producerconsumer") in
        b.Classic.generate ~seed:7 ~scale:6 );
    ]
  in
  let sampler = Sampler.bernoulli ~rate:0.1 ~seed:7 in
  List.iter
    (fun (wname, trace) ->
      let config = Detector.config_of_trace ~sampler trace in
      let events = Trace.length trace in
      let k1_races = ref (-1) in
      List.iter
        (fun shards ->
          let sh = Sharded.create ~engine:Engine.So ~shards config in
          let t0 = Clock.now_ns () in
          Trace.iteri (fun i e -> Sharded.handle sh i e) trace;
          let result = Sharded.result sh in
          let wall_s = Clock.elapsed_s ~since:t0 in
          Sharded.stop sh;
          let races = List.length result.Ft_core.Detector.races in
          if !k1_races < 0 then k1_races := races
          else if races <> !k1_races then
            failwith
              (Printf.sprintf
                 "shard grid: %s with K=%d reports %d races but K=1 reported %d"
                 wname shards races !k1_races);
          let events_per_s = float_of_int events /. Float.max wall_s 1e-9 in
          add_row "shards"
            [ ("workload", Json.Str wname);
              ("engine", Json.Str (Engine.name Engine.So));
              ("rate", jf 0.1);
              ("shards", Json.Int shards);
              ("events", Json.Int events);
              ("wall_s", jf wall_s);
              ("events_per_s", jf events_per_s);
              ("races", Json.Int races) ];
          Printf.printf
            "{\"figure\": \"shards\", \"workload\": %S, \"engine\": %S, \
             \"shards\": %d, \"events\": %d, \"wall_s\": %.6f, \
             \"events_per_s\": %.0f, \"races\": %d}\n%!"
            wname
            (Engine.name Engine.So)
            shards events wall_s events_per_s races)
        [ 1; 2; 4; 8 ])
    workloads

(* --- cluster scaling --------------------------------------------------------- *)

(* Routed-ingest throughput of the K-process cluster: a forked router
   partitions locations across K worker processes (each a domain-sharded
   serve daemon); the load generator streams a db_sim trace over two client
   connections and fetches the final REPORT, which must be byte-identical
   to the in-process analysis.  Runs before any figure that spawns domains:
   the router forks, and forking a multi-domain process is not safe. *)
let run_cluster_grid ~target_events =
  print_newline ();
  print_endline "Cluster scaling: SO engine routed across K worker processes";
  print_endline "===========================================================";
  let trace =
    match Loadgen.db_trace ~workload:"tpcc" ~seed:7 ~events:target_events with
    | Ok t -> t
    | Error msg -> failwith ("cluster grid: " ^ msg)
  in
  let rate = 0.1 in
  let sampler = Sampler.bernoulli ~rate ~seed:7 in
  let events = Trace.length trace in
  let expected = Serve.report_text ~events (Engine.run Engine.So ~sampler trace) in
  List.iter
    (fun workers ->
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "ftbench-cluster-%d-%d" (Unix.getpid ()) workers)
      in
      let socket = Filename.concat dir "route.sock" in
      Unix.mkdir dir 0o700;
      let cfg =
        {
          Router.listen = Serve.Unix_path socket;
          workers;
          worker_shards = 1;
          engine = Engine.So;
          sampler;
          clock_size = None;
          dir = Filename.concat dir "run";
          worker_tcp = false;
          checkpoint = true;
          max_parked = Serve.default_max_parked;
          backlog = Serve.default_backlog;
          ready_file = None;
          heartbeat_s = None;
          metrics_json = None;
          max_respawns = Router.default_max_respawns;
          chaos = None;
          window = Router.default_window;
          wal = true;
          resume = false;
          state_every = Router.default_state_every;
        }
      in
      let pid =
        match Unix.fork () with
        | 0 ->
          (try Router.run cfg with _ -> Unix._exit 1);
          Unix._exit 0
        | pid -> pid
      in
      let reaped = ref false in
      let finish () =
        if not !reaped then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        end;
        let rec rm path =
          match (Unix.lstat path).Unix.st_kind with
          | Unix.S_DIR ->
            Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
            Unix.rmdir path
          | _ -> Sys.remove path
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
        in
        rm dir
      in
      Fun.protect ~finally:finish @@ fun () ->
      match Loadgen.drive ~clients:2 ~addr:(Serve.Unix_path socket) trace with
      | Error msg -> failwith (Printf.sprintf "cluster grid K=%d: %s" workers msg)
      | Ok (r, report) ->
        if report <> expected then
          failwith
            (Printf.sprintf "cluster grid: K=%d REPORT diverged from analyze" workers);
        (* Graceful stop, then wait for the router to finish tearing its
           workers down before the dir is removed — killing it early
           orphans worker processes mid-checkpoint. *)
        (let fd = Serve.connect (Serve.Unix_path socket) in
         (match Serve.shutdown fd with Ok () | Error _ -> ());
         Serve.close fd);
        ignore (Unix.waitpid [] pid);
        reaped := true;
        add_row "cluster"
          [ ("workload", Json.Str "db:tpcc");
            ("engine", Json.Str (Engine.name Engine.So));
            ("rate", jf rate);
            ("phase", Json.Str options.phase);
            ("window", Json.Int Router.default_window);
            ("workers", Json.Int workers);
            ("clients", Json.Int r.Loadgen.clients);
            ("events", Json.Int r.Loadgen.events);
            ("wall_s", jf r.Loadgen.wall_s);
            ("events_per_s", jf r.Loadgen.events_per_s);
            ("send_ms_mean", jf r.Loadgen.send_ms_mean);
            ("send_ms_p99", jf r.Loadgen.send_ms_p99) ];
        Printf.printf "  K=%d  %s  (REPORT ≡ analyze)\n%!" workers (Loadgen.summary r))
    [ 1; 2; 4 ]

(* --- fig7 grid throughput --------------------------------------------------- *)

(* Events/sec over the Fig 7 grid (classic benchmarks × engine × sampling
   rate).  One JSON row per cell, stamped with [options.phase] so before/after
   rows of an optimization land in the same BENCH_fig7.json; [rel_nt]
   normalizes by the NT replay speed of the same trace on the same machine,
   which is what the CI regression gate compares — raw events/sec are not
   portable across runners. *)
let run_fig7_throughput ~target_events ~clock_size ~repeats =
  print_newline ();
  print_endline "Fig 7 grid: analysis throughput (events/sec)";
  print_endline "============================================";
  let benchmarks = [ "producerconsumer"; "cryptorsa"; "readerswriters" ] in
  let cells =
    [
      (Engine.Fasttrack, 1.0);
      (Engine.Djit, 1.0);
      (Engine.St, 0.03);
      (Engine.St, 1.0);
      (Engine.Su, 0.03);
      (Engine.Su, 1.0);
      (Engine.So, 0.03);
      (Engine.So, 1.0);
      (Engine.O1, 0.03);
      (Engine.O1, 1.0);
      (Engine.O1u, 0.03);
      (Engine.O1u, 1.0);
    ]
  in
  let time f =
    let best = ref infinity in
    for _ = 1 to repeats do
      let t0 = Clock.now_ns () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Clock.elapsed_s ~since:t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  List.iter
    (fun bname ->
      let b = Option.get (Classic.find bname) in
      (* the classic generators are event-count-agnostic; double the scale
         until the trace is big enough for stable wall-clock timing *)
      let rec pick scale =
        let trace = b.Classic.generate ~seed:11 ~scale in
        if Trace.length trace >= target_events || scale >= 4096 then (scale, trace)
        else pick (scale * 2)
      in
      let scale, trace = pick 6 in
      let events = Trace.length trace in
      let nt_wall = time (fun () -> Detector.replay_only trace) in
      let nt_eps = float_of_int events /. Float.max nt_wall 1e-9 in
      List.iter
        (fun (id, rate) ->
          let sampler =
            if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed:11
          in
          let wall_s = time (fun () -> Engine.run id ~sampler ~clock_size trace) in
          let eps = float_of_int events /. Float.max wall_s 1e-9 in
          add_row "fig7"
            [ ("phase", Json.Str options.phase);
              ("benchmark", Json.Str bname);
              ("engine", Json.Str (Engine.name id));
              ("rate", jf rate);
              ("scale", Json.Int scale);
              ("clock_size", Json.Int clock_size);
              ("events", Json.Int events);
              ("wall_s", jf wall_s);
              ("events_per_s", jf eps);
              ("nt_events_per_s", jf nt_eps);
              ("rel_nt", jf (eps /. Float.max nt_eps 1e-9)) ];
          Printf.printf "  %-18s %-10s rate %4.0f%%  %9.0f ev/s  (%.3f of NT)\n%!" bname
            (Engine.name id) (rate *. 100.0) eps (eps /. Float.max nt_eps 1e-9))
        cells)
    benchmarks

(* --- figures ---------------------------------------------------------------- *)

let show title body =
  print_newline ();
  print_endline title;
  print_endline (String.make (String.length title) '=');
  print_string body

let () =
  parse_args ();
  let target_events =
    match options.events with Some n -> n | None -> if options.full then 1_000_000 else 150_000
  in
  let runs = match options.runs with Some k -> k | None -> if options.full then 30 else 12 in
  let scale = if options.full then 8 else 4 in
  let clock_size = if options.full then 256 else Harness.default_clock_size in
  let repeats = 3 in
  Printf.printf
    "freshtrack bench: events/db-trace=%d, offline runs=%d, scale=%d, clock=%d%s\n"
    target_events runs scale clock_size
    (if options.full then " (full)" else " (use --full for paper-scale sizes)");
  (* Must precede every domain-spawning figure: the cluster grid forks. *)
  if wants "cluster" then run_cluster_grid ~target_events:(target_events / 2);
  let tsan_figures = List.exists wants [ "5a"; "5b"; "6a"; "6b"; "6c" ] in
  let rapid_figures = List.exists wants [ "7"; "8"; "9" ] in
  if tsan_figures then begin
    let nseeds = if options.full then 3 else 2 in
    let ms =
      Harness.run_all ~repeats ~clock_size ~nseeds ~jobs:options.jobs
        ~report:(report "figs 5-6") ~target_events ()
    in
    if wants "5a" then show "Fig 5a: latency relative to NT" (Harness.fig5a ms);
    if wants "5b" then
      show "Fig 5b: algorithmic-overhead improvement over ST" (Harness.fig5b ms);
    if wants "6a" then
      show "Fig 6a: racy locations relative to FT (fixed time budget)" (Harness.fig6a ms);
    if wants "6b" then
      show "Fig 6b: share of sync events with O(T) work under SU" (Harness.fig6b ms);
    if wants "6c" then
      show "Fig 6c: mean ordered-list entries per acquire under SO" (Harness.fig6c ms);
    show "Summary (paper §6.2.3–6.2.4 headline numbers)" (Harness.summary ms);
    add_tsan_rows ms
  end;
  if rapid_figures then begin
    let t0 = Clock.now_ns () in
    let rows =
      Experiment.run ~runs ~scale ~jobs:options.jobs ~report:(report "figs 7-9") ()
    in
    let grid_wall_s = Clock.elapsed_s ~since:t0 in
    if wants "7" then
      show "Fig 7: acquires skipped / total acquires (offline, 26 benchmarks)"
        (Experiment.fig7 rows);
    if wants "8" then
      show "Fig 8: releases processed (SU) and deep copies (SO) / total releases"
        (Experiment.fig8 rows);
    if wants "9" then
      show "Fig 9: ordered-list saving ratio (SO engines)" (Experiment.fig9 rows);
    show "Summary (paper §A.1.2 observations)" (Experiment.summary rows);
    add_rapid_rows ~grid_wall_s rows
  end;
  if wants "ablation" || options.figure = "all" then begin
    let ae = target_events / 2 in
    let jobs = options.jobs in
    show "Ablation: all engines, tpcc, 3% sampling"
      (Ft_tsan.Ablation.engines_table ~repeats ~rate:0.03 ~clock_size ~jobs ~target_events:ae
         ());
    show "Ablation: clock-width sweep (analysis time)"
      (Ft_tsan.Ablation.clock_sweep ~repeats ~rate:0.03 ~jobs ~target_events:ae ());
    show "Ablation: many-locks microbenchmark (O(T) clock operations)"
      (Ft_tsan.Ablation.lock_sweep ~jobs ~target_events:ae ());
    show "Extension: sampling strategies (SO engine)"
      (Ft_tsan.Ablation.sampler_table ~clock_size ~jobs ~target_events:ae ());
    show "Extension: Eraser lockset baseline vs ground truth (unsoundness, §7)"
      (Experiment.eraser_comparison ())
  end;
  if wants "shards" then
    run_shard_grid ~target_events:(target_events / 2) ~jobs:options.jobs;
  if wants "fig7" then
    run_fig7_throughput
      ~target_events:(if options.full then 1_000_000 else 200_000)
      ~clock_size ~repeats:5;
  (* Bechamel last: its GC stabilization (per-sample compactions) perturbs
     the wall-clock comparisons above if run first. *)
  if options.bechamel then begin
    print_newline ();
    run_bechamel ()
  end;
  write_bench_files ()
