(** FastTrack — DJIT+ with the epoch optimization on access histories.

    Write histories are single epochs; read histories adaptively switch
    between an epoch (exclusive reading) and a full vector clock (shared
    reading).  Synchronization handlers are identical to DJIT+ — the paper's
    innovations are orthogonal to this optimization (§2.1) and FastTrack is
    the FT baseline of the evaluation.  The sampler is ignored.

    FastTrack's per-event race declarations can differ from DJIT+ on
    same-epoch fast paths, but the set of racy locations coincides (this is
    checked by the test suite). *)

include Detector.S
