(** Registry of the detection engines evaluated in the paper (§6.2.2).

    - ["djit"]      — Algorithm 1 (full detection, no sampling);
    - ["fasttrack"] — FT, DJIT+ with the epoch optimization;
    - ["fasttrack-tc"] — FastTrack over tree clocks (§7 comparison);
    - ["st"]        — Algorithm 2, naïve sampling;
    - ["su"]        — Algorithm 3, freshness timestamps;
    - ["so"]        — Algorithm 4, ordered lists + lazy copy;
    - ["sl"]        — ablation: Algorithm 4 without the ordered list;
    - ["su-noskip"] — ablation: Algorithm 3 without the release-side skip;
    - ["o1"]        — the follow-up paper: O(1) state retained per sampled
      location ({!Sampling_o1});
    - ["o1-u"]      — O1 carrying Algorithm 3's freshness clocks;
    - ["eraser"]    — the unsound lockset baseline ({!Lockset}); resolvable
      by name but deliberately {e not} in {!all}, whose members share exact
      HB semantics. *)

type id = Djit | Fasttrack | Fasttrack_tc | St | Su | So | Sl | Sn | O1 | O1u | Eraser

val all : id list
(** The HB-exact engines (everything except [Eraser]). *)

val name : id -> string
val of_name : string -> id option

val detector : ?racy_fastpath:bool -> id -> Detector.packed
(** [racy_fastpath] (default [false]) wraps the engine in {!Racy_gate}:
    once a location races, later accesses to it are skipped.  Changes the
    verdict set — keep it off anywhere byte-identity matters. *)

val sampling_engines : id list
(** [St; Su; So; O1; O1u] — the engines that honour the sampler. *)

val run :
  id ->
  ?racy_fastpath:bool ->
  ?sampler:Sampler.t ->
  ?clock_size:int ->
  ?limit:int ->
  Ft_trace.Trace.t ->
  Detector.result
(** Convenience wrapper around {!Detector.run}. *)

val run_instrumented :
  id -> ?sampler:Sampler.t -> ?clock_size:int -> Ft_trace.Trace.t -> Detector.result
(** Wrapper around {!Detector.run_instrumented}. *)
