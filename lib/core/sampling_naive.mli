(** ST — Algorithm 2, the naïve sampling detector.

    Computes the sampling timestamp [C_sam] (Eq 7): thread-local clocks are
    incremented only at the first release after a sampled event
    ([RelAfter_S], Eq 5), the thread clock's own component holds the local
    time of the last *sampled* event, and the running local time lives in
    the separate epoch [e_t].  Race checks and access-history updates happen
    only at sampled events.  Synchronization events still pay a full O(T)
    vector-clock operation each — this is the baseline the freshness
    timestamp (SU) and ordered lists (SO) improve on. *)

include Detector.S
