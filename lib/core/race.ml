type t = {
  index : int;
  thread : Ft_trace.Event.tid;
  loc : Ft_trace.Event.loc;
  with_write : bool;
  with_read : bool;
  prior : int option;
}

let make ~index ~thread ~loc ~with_write ~with_read ?prior () =
  { index; thread; loc; with_write; with_read; prior }

let locations races =
  let tbl = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace tbl r.loc ()) races;
  List.sort compare (Hashtbl.fold (fun x () acc -> x :: acc) tbl [])

let indices races = List.sort compare (List.map (fun r -> r.index) races)

let pairs races =
  List.filter_map (fun r -> Option.map (fun p -> (p, r.index)) r.prior) races

let pp fmt r =
  Format.fprintf fmt "race at event %d: thread t%d on x%d (vs %s%s)" r.index r.thread r.loc
    (match (r.with_write, r.with_read) with
    | true, true -> "earlier write and read"
    | true, false -> "earlier write"
    | false, true -> "earlier read"
    | false, false -> "??")
    (match r.prior with Some p -> Printf.sprintf ", event %d" p | None -> "")
