type t = {
  index : int;
  thread : Ft_trace.Event.tid;
  loc : Ft_trace.Event.loc;
  with_write : bool;
  with_read : bool;
  prior : int option;
}

let make ~index ~thread ~loc ~with_write ~with_read ?prior () =
  { index; thread; loc; with_write; with_read; prior }

let locations races =
  let tbl = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace tbl r.loc ()) races;
  List.sort compare (Hashtbl.fold (fun x () acc -> x :: acc) tbl [])

let indices races = List.sort compare (List.map (fun r -> r.index) races)

let pairs races =
  List.filter_map (fun r -> Option.map (fun p -> (p, r.index)) r.prior) races

let encode enc r =
  Snap.Enc.int enc r.index;
  Snap.Enc.int enc r.thread;
  Snap.Enc.int enc r.loc;
  Snap.Enc.bool enc r.with_write;
  Snap.Enc.bool enc r.with_read;
  Snap.Enc.option enc (Snap.Enc.int enc) r.prior

let decode dec =
  let index = Snap.Dec.int dec in
  let thread = Snap.Dec.int dec in
  let loc = Snap.Dec.int dec in
  let with_write = Snap.Dec.bool dec in
  let with_read = Snap.Dec.bool dec in
  let prior = Snap.Dec.option dec (fun () -> Snap.Dec.int dec) in
  Snap.expect (index >= 0 && thread >= 0 && loc >= 0) "race with negative field";
  { index; thread; loc; with_write; with_read; prior }

let encode_list enc races = Snap.Enc.list enc (encode enc) races
let decode_list dec = Snap.Dec.list dec (fun () -> decode dec)

let pp fmt r =
  Format.fprintf fmt "race at event %d: thread t%d on x%d (vs %s%s)" r.index r.thread r.loc
    (match (r.with_write, r.with_read) with
    | true, true -> "earlier write and read"
    | true, false -> "earlier write"
    | false, true -> "earlier read"
    | false, false -> "??")
    (match r.prior with Some p -> Printf.sprintf ", event %d" p | None -> "")
