(** FastTrack over tree clocks — the §7 comparison point.

    Identical detection logic to {!Fasttrack}, but thread and lock clocks
    are {!Tree_clock}s: acquires traverse only updated subtrees and releases
    perform pruned monotone copies.  This is the vt-work-optimal algorithm
    for the {e full} happens-before relation; the ablation benchmarks pit it
    against the sampling engines to demonstrate the paper's claim that tree
    clocks cannot exploit the redundancy of the sampling partial order the
    way ordered lists do.  The sampler is ignored (full detection). *)

include Detector.S
