(** SL — ablation engine: Algorithm 4 {e without} the ordered list.

    Keeps the freshness scalars, the lazy (shallow) release copies and the
    local-epoch optimization of SO, but stores clocks in plain vectors, so a
    non-skipped acquire must traverse all T entries instead of the
    [d]-prefix.  Comparing SL with SO isolates exactly the contribution of
    the move-to-front ordered list — the quantity Fig 9 measures indirectly.
    Race declarations are identical to ST/SU/SO (checked by the tests). *)

include Detector.S
