(* Array-based tree clocks.  Node [t] is thread [t]'s entry; a node is
   attached iff it is the root or has a parent.  Children are kept in
   decreasing attachment-clock ([aclk]) order: new subtrees attach at the
   head, carrying the parent's current clock, which is maximal. *)

type t = {
  clk : int array;
  aclk : int array;
  parent : int array;  (* -1 = root or absent *)
  head : int array;    (* first child, -1 *)
  next : int array;    (* next sibling, -1 *)
  prev : int array;    (* previous sibling, -1 *)
  mutable root : int;
}

let create n ~owner =
  assert (n > 0 && owner >= 0 && owner < n);
  {
    clk = Array.make n 0;
    aclk = Array.make n 0;
    parent = Array.make n (-1);
    head = Array.make n (-1);
    next = Array.make n (-1);
    prev = Array.make n (-1);
    root = owner;
  }

let size tc = Array.length tc.clk
let root tc = tc.root
let get tc tid = Array.unsafe_get tc.clk tid

let inc tc k =
  assert (k > 0);
  tc.clk.(tc.root) <- tc.clk.(tc.root) + k

let detach tc v =
  let p = tc.parent.(v) in
  if p >= 0 then begin
    let nx = tc.next.(v) and pv = tc.prev.(v) in
    if pv >= 0 then tc.next.(pv) <- nx else tc.head.(p) <- nx;
    if nx >= 0 then tc.prev.(nx) <- pv;
    tc.parent.(v) <- -1;
    tc.next.(v) <- -1;
    tc.prev.(v) <- -1
  end

let attach_front tc ~parent:p ~aclk:a v =
  let h = tc.head.(p) in
  tc.next.(v) <- h;
  tc.prev.(v) <- -1;
  if h >= 0 then tc.prev.(h) <- v;
  tc.head.(p) <- v;
  tc.parent.(v) <- p;
  tc.aclk.(v) <- a

(* Collect the nodes of [src] whose values [into] lacks, using the pruned
   child scan of the tree-clock paper (Algorithms 2 and 3): children are
   examined in decreasing aclk; a non-updated child whose subtree was
   attached no later than [into]'s knowledge of the current node ends the
   scan — everything further is older news with identical structure.
   Returns the updated nodes parents-first (reverse post-order). *)
let collect ~is_copy ~into src =
  let acc = ref [] in
  let rec visit u =
    let rec scan c =
      if c >= 0 then begin
        let updated =
          src.clk.(c) > into.clk.(c) || (is_copy && c = into.root && c <> src.root)
        in
        if updated then begin
          visit c;
          scan src.next.(c)
        end
        else if src.aclk.(c) > into.clk.(u) then scan src.next.(c)
      end
    in
    scan src.head.(u);
    acc := u :: !acc
  in
  visit src.root;
  !acc

let apply_join ~count ~into src =
  let changed = ref 0 in
  if src != into && src.clk.(src.root) > into.clk.(src.root) then begin
    let updated = collect ~is_copy:false ~into src in
    List.iter
      (fun v ->
        assert (v <> into.root);
        detach into v;
        if count && into.clk.(v) <> src.clk.(v) then incr changed;
        into.clk.(v) <- src.clk.(v);
        if v = src.root then
          attach_front into ~parent:into.root ~aclk:into.clk.(into.root) v
        else attach_front into ~parent:src.parent.(v) ~aclk:src.aclk.(v) v)
      updated
  end;
  !changed

let join ~into src = ignore (apply_join ~count:false ~into src)
let join_count ~into src = apply_join ~count:true ~into src

let monotone_copy ~into src =
  if src != into then begin
    if into.root = src.root && into.clk.(src.root) = src.clk.(src.root) then
      (* same root and counter: with [into ⊑ src] the clocks are equal *)
      ()
    else begin
      let updated = collect ~is_copy:true ~into src in
      List.iter
        (fun v ->
          detach into v;
          into.clk.(v) <- src.clk.(v);
          if v = src.root then begin
            (* becomes the new root *)
            into.aclk.(v) <- 0
          end
          else attach_front into ~parent:src.parent.(v) ~aclk:src.aclk.(v) v)
        updated;
      into.root <- src.root
    end
  end

let force_copy ~into src =
  if src != into then begin
    Array.blit src.clk 0 into.clk 0 (size src);
    Array.blit src.aclk 0 into.aclk 0 (size src);
    Array.blit src.parent 0 into.parent 0 (size src);
    Array.blit src.head 0 into.head 0 (size src);
    Array.blit src.next 0 into.next 0 (size src);
    Array.blit src.prev 0 into.prev 0 (size src);
    into.root <- src.root
  end

let leq tc1 tc2 =
  let n = size tc1 in
  let rec loop i = i >= n || (tc1.clk.(i) <= tc2.clk.(i) && loop (i + 1)) in
  loop 0

let to_vc tc =
  let v = Vector_clock.create (size tc) in
  Array.iteri (fun i c -> Vector_clock.set v i c) tc.clk;
  v

let check_invariants tc =
  let n = size tc in
  let ok = ref true in
  let seen = Array.make n false in
  let rec dfs u =
    if seen.(u) then ok := false
    else begin
      seen.(u) <- true;
      (* children: consistent links, decreasing aclk, aclk ≤ parent clk *)
      let rec walk c prev_c prev_aclk =
        if c >= 0 then begin
          if tc.parent.(c) <> u then ok := false;
          if tc.prev.(c) <> prev_c then ok := false;
          if tc.aclk.(c) > tc.clk.(u) then ok := false;
          (match prev_aclk with Some a -> if tc.aclk.(c) > a then ok := false | None -> ());
          dfs c;
          walk tc.next.(c) c (Some tc.aclk.(c))
        end
      in
      walk tc.head.(u) (-1) None
    end
  in
  if tc.parent.(tc.root) <> -1 then ok := false;
  dfs tc.root;
  (* every attached node must be reachable from the root *)
  for v = 0 to n - 1 do
    if (tc.parent.(v) >= 0 || v = tc.root) && not seen.(v) then ok := false;
    if tc.parent.(v) < 0 && v <> tc.root && tc.clk.(v) > 0 then ok := false
  done;
  !ok

let encode enc tc =
  Snap.Enc.int_array enc tc.clk;
  Snap.Enc.int_array enc tc.aclk;
  Snap.Enc.int_array enc tc.parent;
  Snap.Enc.int_array enc tc.head;
  Snap.Enc.int_array enc tc.next;
  Snap.Enc.int_array enc tc.prev;
  Snap.Enc.int enc tc.root

let decode dec ~size:n =
  let clk = Snap.Dec.int_array_n dec n in
  let aclk = Snap.Dec.int_array_n dec n in
  let parent = Snap.Dec.int_array_n dec n in
  let head = Snap.Dec.int_array_n dec n in
  let next = Snap.Dec.int_array_n dec n in
  let prev = Snap.Dec.int_array_n dec n in
  let root = Snap.Dec.int dec in
  Snap.expect (root >= 0 && root < n) "tree-clock root out of range";
  let node_ref v = v >= -1 && v < n in
  for i = 0 to n - 1 do
    Snap.expect (clk.(i) >= 0 && aclk.(i) >= 0) "negative tree-clock entry";
    Snap.expect (node_ref parent.(i) && node_ref head.(i) && node_ref next.(i) && node_ref prev.(i))
      "tree-clock link out of range"
  done;
  let tc = { clk; aclk; parent; head; next; prev; root } in
  Snap.expect (check_invariants tc) "tree-clock structure invalid";
  tc

let pp fmt tc =
  let rec node fmt u =
    Format.fprintf fmt "t%d:%d" u tc.clk.(u);
    if tc.head.(u) >= 0 then begin
      Format.fprintf fmt "(";
      let rec kids c first =
        if c >= 0 then begin
          if not first then Format.fprintf fmt " ";
          Format.fprintf fmt "%a@@%d" node c tc.aclk.(c);
          kids tc.next.(c) false
        end
      in
      kids tc.head.(u) true;
      Format.fprintf fmt ")"
    end
  in
  node fmt tc.root
