(* Open addressing with linear probing over a power-of-two array.
   keys.(i) = -1 marks an empty slot, -2 a tombstone left by [remove];
   probes stop at empty, walk through tombstones.  The table rebuilds
   once live + dead entries pass half the capacity, which also sweeps
   tombstones out. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable live : int;  (* bindings *)
  mutable used : int;  (* bindings + tombstones *)
}

let empty_key = -1
let dead_key = -2

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(capacity = 16) () =
  let cap = pow2 (Stdlib.max 16 capacity * 2) 16 in
  { keys = Array.make cap empty_key; vals = Array.make cap 0; live = 0; used = 0 }

let length t = t.live

(* Fibonacci hashing: spread dense keys across the high bits, then mask. *)
let[@inline] slot_of t k =
  let mask = Array.length t.keys - 1 in
  (k * 0x2545F4914F6CDD1D) lsr 7 land mask

let find t k =
  let keys = t.keys in
  let mask = Array.length keys - 1 in
  let rec probe i =
    let k' = Array.unsafe_get keys i in
    if k' = k then Array.unsafe_get t.vals i
    else if k' = empty_key then -1
    else probe ((i + 1) land mask)
  in
  probe (slot_of t k)

(* The probe may not stop at the first tombstone: the key could live past
   it (it was inserted before that slot died), and writing early would
   duplicate it — [find] and [remove] would then resolve the two copies
   inconsistently.  So: walk to the key or a genuine empty, remembering the
   first tombstone to recycle for a fresh insert. *)
let rec insert t k v =
  let keys = t.keys in
  let mask = Array.length keys - 1 in
  let rec probe i free =
    let k' = Array.unsafe_get keys i in
    if k' = k then t.vals.(i) <- v
    else if k' = empty_key then begin
      let dst = if free >= 0 then free else i in
      if dst = i then t.used <- t.used + 1;  (* fresh slot, not a recycled tombstone *)
      keys.(dst) <- k;
      t.vals.(dst) <- v;
      t.live <- t.live + 1;
      if t.used * 2 > Array.length keys then grow t
    end
    else if k' = dead_key then
      probe ((i + 1) land mask) (if free >= 0 then free else i)
    else probe ((i + 1) land mask) free
  in
  probe (slot_of t k) (-1)

and grow t =
  let old_keys = t.keys and old_vals = t.vals in
  (* double only when genuinely full of live entries; a tombstone-heavy
     table rebuilds at the same size *)
  let cap =
    if t.live * 4 > Array.length old_keys then Array.length old_keys * 2
    else Array.length old_keys
  in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.live <- 0;
  t.used <- 0;
  Array.iteri
    (fun i k -> if k >= 0 then insert t k old_vals.(i))
    old_keys

let set t k v =
  if k < 0 then invalid_arg "Flat_table.set: negative key";
  insert t k v

let remove t k =
  let keys = t.keys in
  let mask = Array.length keys - 1 in
  let rec probe i =
    let k' = Array.unsafe_get keys i in
    if k' = k then begin
      keys.(i) <- dead_key;
      t.live <- t.live - 1
    end
    else if k' = empty_key then ()
    else probe ((i + 1) land mask)
  in
  probe (slot_of t k)

let iter t f =
  Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys
