(* Node [i] is thread [i]'s entry.  The doubly linked list is intrusive and
   packed: [links.(i)] holds both sibling pointers, biased by one so that
   "none" (-1) encodes as 0 — a deep copy is then just two array blits,
   which matters because Algorithm 4 trades per-release O(T) copies for
   occasional deep copies and their constant factor shows up directly in
   the latency experiments. *)

let bits = 21
let mask = (1 lsl bits) - 1

type t = {
  time : int array;
  links : int array;  (* (prev+1) lsl bits lor (next+1) *)
  mutable head : int;
  mutable tail : int;
}

let prev_of o i = ((o.links.(i) lsr bits) land mask) - 1
let next_of o i = (o.links.(i) land mask) - 1

let set_links o i ~prev ~next = o.links.(i) <- (((prev + 1) land mask) lsl bits) lor ((next + 1) land mask)
let set_prev o i prev = o.links.(i) <- (o.links.(i) land mask) lor (((prev + 1) land mask) lsl bits)
let set_next o i next = o.links.(i) <- (o.links.(i) land (mask lsl bits)) lor ((next + 1) land mask)

let create n =
  assert (n > 0 && n <= mask);
  let o = { time = Array.make n 0; links = Array.make n 0; head = 0; tail = n - 1 } in
  for i = 0 to n - 1 do
    set_links o i ~prev:(i - 1) ~next:(if i = n - 1 then -1 else i + 1)
  done;
  o

let size o = Array.length o.time

let get o tid = Array.unsafe_get o.time tid

let move_to_front o tid =
  if o.head <> tid then begin
    let p = prev_of o tid and n = next_of o tid in
    (* unlink *)
    if p >= 0 then set_next o p n;
    if n >= 0 then set_prev o n p else o.tail <- p;
    (* relink at head *)
    set_links o tid ~prev:(-1) ~next:o.head;
    set_prev o o.head tid;
    o.head <- tid
  end

let set o tid v =
  o.time.(tid) <- v;
  move_to_front o tid

let increment o tid k =
  o.time.(tid) <- o.time.(tid) + k;
  move_to_front o tid

let deep_copy o =
  { time = Array.copy o.time; links = Array.copy o.links; head = o.head; tail = o.tail }

let iter_prefix o d f =
  let rec loop node remaining =
    if remaining > 0 && node >= 0 then begin
      f node o.time.(node);
      loop (next_of o node) (remaining - 1)
    end
  in
  loop o.head d

let iter o f = iter_prefix o (size o) f

let leq_vc o v =
  let n = size o in
  let rec loop i = i >= n || (o.time.(i) <= Vector_clock.get v i && loop (i + 1)) in
  loop 0

let vc_leq v o =
  let n = size o in
  let rec loop i = i >= n || (Vector_clock.get v i <= o.time.(i) && loop (i + 1)) in
  loop 0

let to_vc o =
  let v = Vector_clock.create (size o) in
  Array.iteri (fun i t -> Vector_clock.set v i t) o.time;
  v

let order o =
  let acc = ref [] in
  iter o (fun tid _ -> acc := tid :: !acc);
  List.rev !acc

let check_invariants o =
  let n = size o in
  let seen = Array.make n false in
  let ok = ref true in
  let count = ref 0 in
  let rec walk node prev_node =
    if node >= 0 then begin
      if seen.(node) then ok := false
      else begin
        seen.(node) <- true;
        incr count;
        if prev_of o node <> prev_node then ok := false;
        walk (next_of o node) node
      end
    end
    else if prev_node <> o.tail then ok := false
  in
  walk o.head (-1);
  !ok && !count = n

(* Serialized as values plus the head-to-tail permutation; the links are
   rebuilt from the permutation on decode, so a snapshot roundtrip restores
   exactly the move-to-front order (which governs which prefix an acquire
   traverses — Alg 4, line 10). *)
let encode enc o =
  Snap.Enc.int_array enc o.time;
  let ord = Array.make (size o) 0 in
  let k = ref 0 in
  iter o (fun tid _ ->
      ord.(!k) <- tid;
      incr k);
  Snap.Enc.int_array enc ord

let decode dec ~size:n =
  let time = Snap.Dec.int_array_n dec n in
  let ord = Snap.Dec.int_array_n dec n in
  Array.iter (fun v -> Snap.expect (v >= 0) "negative ordered-list entry") time;
  let seen = Array.make n false in
  Array.iter
    (fun tid ->
      Snap.expect (tid >= 0 && tid < n && not seen.(tid)) "ordered-list order not a permutation";
      seen.(tid) <- true)
    ord;
  let o = { time; links = Array.make n 0; head = ord.(0); tail = ord.(n - 1) } in
  for k = 0 to n - 1 do
    set_links o ord.(k)
      ~prev:(if k = 0 then -1 else ord.(k - 1))
      ~next:(if k = n - 1 then -1 else ord.(k + 1))
  done;
  o

let pp fmt o =
  Format.fprintf fmt "[";
  let first = ref true in
  iter o (fun tid time ->
      if !first then first := false else Format.fprintf fmt " ";
      Format.fprintf fmt "t%d:%d" tid time);
  Format.fprintf fmt "]"
