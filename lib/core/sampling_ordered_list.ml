module E = Ft_trace.Event
module Vc = Vector_clock
module Ol = Ordered_list

type t = {
  nthreads : int;
  sample : Sampler.instance;
  mutable olists : Ol.t array;
      (* O_t; the thread's *own* component is externalized into [own] (the
         local-epoch optimization) and the own node's value is stale *)
  own : int array;               (* flushed own component, C_t(t) *)
  uclocks : Vc.t array;          (* U_t *)
  epochs : int array;            (* e_t *)
  pending : bool array;
  shared : bool array;           (* shared_t: some lock references O_t *)
  lock_ol : Ol.t option array;   (* O_ℓ: shared reference *)
  lock_own : int array;          (* releaser's own component at release time *)
  lock_lr : int array;           (* LR_ℓ, -1 = NIL *)
  lock_u : int array;            (* U_ℓ scalar *)
  history : History.t;
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = "so"

let create (cfg : Detector.config) =
  let n = cfg.Detector.clock_size in
  let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
  {
    nthreads = n;
    sample = Sampler.fresh cfg.Detector.sampler;
    olists = Array.init n (fun _ -> Ol.create n);
    own = Array.make n 0;
    uclocks = Array.init n (fun _ -> Vc.create n);
    epochs = Array.make n 1;
    pending = Array.make n false;
    shared = Array.make n false;
    lock_ol = Array.make nlocks None;
    lock_own = Array.make nlocks 0;
    lock_lr = Array.make nlocks (-1);
    lock_u = Array.make nlocks 0;
    history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:n;
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

(* Ensure thread [t] owns its list before mutating it (lazy copy). *)
let touch_olist d t =
  if d.shared.(t) then begin
    d.olists.(t) <- Ol.deep_copy d.olists.(t);
    d.shared.(t) <- false;
    d.metrics.Metrics.deep_copies <- d.metrics.Metrics.deep_copies + 1;
    d.metrics.Metrics.vc_full_ops <- d.metrics.Metrics.vc_full_ops + 1
  end

(* Thanks to the local-epoch optimization, flushing the pending sampled
   epoch touches only scalars — never the (possibly shared) list. *)
let flush_pending d t =
  if d.pending.(t) then begin
    d.own.(t) <- d.epochs.(t);
    Vc.inc d.uclocks.(t) t;
    d.epochs.(t) <- d.epochs.(t) + 1;
    d.pending.(t) <- false
  end

(* Raise thread [t]'s entry for [t'] to [v] if it is news, counting the
   change into the freshness clock. *)
let absorb_entry d t t' v =
  if v > Ol.get d.olists.(t) t' then begin
    touch_olist d t;
    Ol.set d.olists.(t) t' v;
    Vc.inc d.uclocks.(t) t
  end

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      let epoch = d.epochs.(t) in
      if History.read_hit d.history x ~tid:t ~epoch ~index then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        let pw = History.ol_stale_write d.history x d.olists.(t) ~tid:t ~epoch in
        if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
        History.record_read d.history x ~tid:t ~epoch ~index ~clean:(pw < 0)
      end;
      d.pending.(t) <- true
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let epoch = d.epochs.(t) in
      if History.write_hit d.history x ~tid:t ~epoch ~index then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        let ol = d.olists.(t) in
        let pr, pw = History.ol_stale_both d.history x ol ~tid:t ~epoch in
        if pr >= 0 || pw >= 0 then
          declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
            ~prior:(if pw >= 0 then pw else pr);
        History.record_write_ol d.history x ol ~tid:t ~epoch ~index
          ~clean:(pr < 0 && pw < 0)
      end;
      d.pending.(t) <- true
    end
  | E.Acquire l | E.Acquire_load l -> (
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    match d.lock_lr.(l) with
    | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
    | lr ->
      let ut = d.uclocks.(t) in
      if d.lock_u.(l) <= Vc.get ut lr then
        m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      else begin
        History.bump d.history t;
        let delta = d.lock_u.(l) - Vc.get ut lr in
        Vc.set ut lr d.lock_u.(l);
        (* the releaser's own component travels as a scalar *)
        if lr <> t then absorb_entry d t lr d.lock_own.(l);
        let ol = Option.get d.lock_ol.(l) in
        let traversed = ref 0 in
        Ol.iter_prefix ol delta (fun t' v ->
            incr traversed;
            (* skip our own entry (we know it best) and the releaser's node,
               whose authoritative value is the scalar absorbed above *)
            if t' <> t && t' <> lr then absorb_entry d t t' v);
        m.Metrics.entries_traversed <- m.Metrics.entries_traversed + !traversed;
        m.Metrics.entries_saved <- m.Metrics.entries_saved + (d.nthreads - !traversed)
      end)
  | E.Release l | E.Release_store l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    d.lock_ol.(l) <- Some d.olists.(t);
    d.lock_own.(l) <- d.own.(t);
    d.lock_lr.(l) <- t;
    d.lock_u.(l) <- Vc.get d.uclocks.(t) t;
    d.shared.(t) <- true;
    m.Metrics.shallow_copies <- m.Metrics.shallow_copies + 1
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    History.bump d.history u;
    (* the child inherits the parent's full state; count every inherited
       entry into the child's own freshness counter *)
    let changed = ref 0 in
    Ol.iter d.olists.(t) (fun t' v ->
        if t' <> t && t' <> u && v > Ol.get d.olists.(u) t' then begin
          Ol.set d.olists.(u) t' v;
          incr changed
        end);
    if d.own.(t) > Ol.get d.olists.(u) t then begin
      Ol.set d.olists.(u) t d.own.(t);
      incr changed
    end;
    Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
    Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + !changed)
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (* the child's end-of-thread acts as its final release *)
    flush_pending d u;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    History.bump d.history t;
    Vc.join ~into:d.uclocks.(t) d.uclocks.(u);
    Ol.iter d.olists.(u) (fun t' v -> if t' <> t && t' <> u then absorb_entry d t t' v);
    if u <> t then absorb_entry d t u d.own.(u)

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Sharding hook: the thread-local half of a sampled access.  Idempotent
   until the next flush, exactly like the bit it sets. *)
let note_sampled d t = d.pending.(t) <- true

(* Snapshots must reproduce Alg 4's lazy-copy sharing structure, not just
   the list values: a release stores a *reference* to the releasing
   thread's list, and several locks may alias one list (or an old version a
   thread has since deep-copied away from).  Each lock's entry is encoded
   as a reference — to a thread's current list, or to an earlier lock's
   entry — and only as an inline list when it aliases neither, so restore
   rebuilds the exact physical sharing and the [shared] flags keep meaning
   what they meant. *)
let tag_none = 0
let tag_thread = 1
let tag_lock = 2
let tag_inline = 3

let encode_lock_lists enc d =
  Array.iteri
    (fun l ol ->
      match ol with
      | None -> Snap.Enc.int enc tag_none
      | Some ol -> (
        let rec thread_alias t =
          if t >= Array.length d.olists then None
          else if d.olists.(t) == ol then Some t
          else thread_alias (t + 1)
        in
        let rec lock_alias l' =
          if l' >= l then None
          else
            match d.lock_ol.(l') with
            | Some ol' when ol' == ol -> Some l'
            | _ -> lock_alias (l' + 1)
        in
        match thread_alias 0 with
        | Some t ->
          Snap.Enc.int enc tag_thread;
          Snap.Enc.int enc t
        | None -> (
          match lock_alias 0 with
          | Some l' ->
            Snap.Enc.int enc tag_lock;
            Snap.Enc.int enc l'
          | None ->
            Snap.Enc.int enc tag_inline;
            Ol.encode enc ol)))
    d.lock_ol

let decode_lock_lists dec d ~size =
  for l = 0 to Array.length d.lock_ol - 1 do
    d.lock_ol.(l) <-
      (match Snap.Dec.int dec with
      | t when t = tag_none -> None
      | t when t = tag_thread ->
        let tid = Snap.Dec.int dec in
        Snap.expect (tid >= 0 && tid < Array.length d.olists) "lock list thread out of range";
        Some d.olists.(tid)
      | t when t = tag_lock ->
        let l' = Snap.Dec.int dec in
        Snap.expect (l' >= 0 && l' < l) "lock list back-reference out of range";
        (match d.lock_ol.(l') with
        | Some _ as shared -> shared
        | None -> raise (Snap.Corrupt "lock list back-reference to empty slot"))
      | t when t = tag_inline -> Some (Ol.decode dec ~size)
      | t -> raise (Snap.Corrupt (Printf.sprintf "bad lock list tag %d" t)))
  done

let snapshot d =
  let enc = Snap.Enc.create () in
  d.sample.Sampler.save enc;
  Array.iter (Ol.encode enc) d.olists;
  Snap.Enc.int_array enc d.own;
  Array.iter (Vc.encode enc) d.uclocks;
  Snap.Enc.int_array enc d.epochs;
  Snap.Enc.bool_array enc d.pending;
  Snap.Enc.bool_array enc d.shared;
  encode_lock_lists enc d;
  Snap.Enc.int_array enc d.lock_own;
  Snap.Enc.int_array enc d.lock_lr;
  Snap.Enc.int_array enc d.lock_u;
  History.encode enc d.history;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  let n = d.nthreads in
  d.sample.Sampler.load dec;
  for t = 0 to n - 1 do
    d.olists.(t) <- Ol.decode dec ~size:n
  done;
  let own = Snap.Dec.int_array_n dec n in
  Array.blit own 0 d.own 0 n;
  for t = 0 to n - 1 do
    d.uclocks.(t) <- Vc.decode dec ~size:n
  done;
  let epochs = Snap.Dec.int_array_n dec n in
  Array.blit epochs 0 d.epochs 0 n;
  let pending = Snap.Dec.bool_array_n dec n in
  Array.blit pending 0 d.pending 0 n;
  let shared = Snap.Dec.bool_array_n dec n in
  Array.blit shared 0 d.shared 0 n;
  decode_lock_lists dec d ~size:n;
  let nlocks = Array.length d.lock_own in
  let lock_own = Snap.Dec.int_array_n dec nlocks in
  Array.blit lock_own 0 d.lock_own 0 nlocks;
  let lock_lr = Snap.Dec.int_array_n dec nlocks in
  Array.iteri
    (fun l lr ->
      Snap.expect (lr >= -1 && lr < n) "lock releaser out of range";
      d.lock_lr.(l) <- lr)
    lock_lr;
  let lock_u = Snap.Dec.int_array_n dec nlocks in
  Array.blit lock_u 0 d.lock_u 0 nlocks;
  let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with history; metrics }
