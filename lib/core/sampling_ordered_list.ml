module E = Ft_trace.Event
module Vc = Vector_clock
module Ol = Ordered_list

type t = {
  nthreads : int;
  sample : Sampler.instance;
  mutable olists : Ol.t array;
      (* O_t; the thread's *own* component is externalized into [own] (the
         local-epoch optimization) and the own node's value is stale *)
  own : int array;               (* flushed own component, C_t(t) *)
  uclocks : Vc.t array;          (* U_t *)
  epochs : int array;            (* e_t *)
  pending : bool array;
  shared : bool array;           (* shared_t: some lock references O_t *)
  lock_ol : Ol.t option array;   (* O_ℓ: shared reference *)
  lock_own : int array;          (* releaser's own component at release time *)
  lock_lr : int array;           (* LR_ℓ, -1 = NIL *)
  lock_u : int array;            (* U_ℓ scalar *)
  history : History.t;
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = "so"

let create (cfg : Detector.config) =
  let n = cfg.Detector.clock_size in
  let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
  {
    nthreads = n;
    sample = Sampler.fresh cfg.Detector.sampler;
    olists = Array.init n (fun _ -> Ol.create n);
    own = Array.make n 0;
    uclocks = Array.init n (fun _ -> Vc.create n);
    epochs = Array.make n 1;
    pending = Array.make n false;
    shared = Array.make n false;
    lock_ol = Array.make nlocks None;
    lock_own = Array.make nlocks 0;
    lock_lr = Array.make nlocks (-1);
    lock_u = Array.make nlocks 0;
    history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:n;
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

(* Ensure thread [t] owns its list before mutating it (lazy copy). *)
let touch_olist d t =
  if d.shared.(t) then begin
    d.olists.(t) <- Ol.deep_copy d.olists.(t);
    d.shared.(t) <- false;
    d.metrics.Metrics.deep_copies <- d.metrics.Metrics.deep_copies + 1;
    d.metrics.Metrics.vc_full_ops <- d.metrics.Metrics.vc_full_ops + 1
  end

(* Thanks to the local-epoch optimization, flushing the pending sampled
   epoch touches only scalars — never the (possibly shared) list. *)
let flush_pending d t =
  if d.pending.(t) then begin
    d.own.(t) <- d.epochs.(t);
    Vc.inc d.uclocks.(t) t;
    d.epochs.(t) <- d.epochs.(t) + 1;
    d.pending.(t) <- false
  end

(* Raise thread [t]'s entry for [t'] to [v] if it is news, counting the
   change into the freshness clock. *)
let absorb_entry d t t' v =
  if v > Ol.get d.olists.(t) t' then begin
    touch_olist d t;
    Ol.set d.olists.(t) t' v;
    Vc.inc d.uclocks.(t) t
  end

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    if d.sample index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      let epoch = d.epochs.(t) in
      let pw = History.ol_stale_write d.history x d.olists.(t) ~tid:t ~epoch in
      if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
      History.record_read d.history x ~tid:t ~epoch ~index;
      d.pending.(t) <- true
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    if d.sample index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let epoch = d.epochs.(t) in
      let ol = d.olists.(t) in
      let pr = History.ol_stale_read d.history x ol ~tid:t ~epoch in
      let pw = History.ol_stale_write d.history x ol ~tid:t ~epoch in
      if pr >= 0 || pw >= 0 then
        declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
          ~prior:(if pw >= 0 then pw else pr);
      History.record_write_ol d.history x ol ~tid:t ~epoch ~index;
      d.pending.(t) <- true
    end
  | E.Acquire l | E.Acquire_load l -> (
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    match d.lock_lr.(l) with
    | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
    | lr ->
      let ut = d.uclocks.(t) in
      if d.lock_u.(l) <= Vc.get ut lr then
        m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      else begin
        let delta = d.lock_u.(l) - Vc.get ut lr in
        Vc.set ut lr d.lock_u.(l);
        (* the releaser's own component travels as a scalar *)
        if lr <> t then absorb_entry d t lr d.lock_own.(l);
        let ol = Option.get d.lock_ol.(l) in
        let traversed = ref 0 in
        Ol.iter_prefix ol delta (fun t' v ->
            incr traversed;
            (* skip our own entry (we know it best) and the releaser's node,
               whose authoritative value is the scalar absorbed above *)
            if t' <> t && t' <> lr then absorb_entry d t t' v);
        m.Metrics.entries_traversed <- m.Metrics.entries_traversed + !traversed;
        m.Metrics.entries_saved <- m.Metrics.entries_saved + (d.nthreads - !traversed)
      end)
  | E.Release l | E.Release_store l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    d.lock_ol.(l) <- Some d.olists.(t);
    d.lock_own.(l) <- d.own.(t);
    d.lock_lr.(l) <- t;
    d.lock_u.(l) <- Vc.get d.uclocks.(t) t;
    d.shared.(t) <- true;
    m.Metrics.shallow_copies <- m.Metrics.shallow_copies + 1
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    (* the child inherits the parent's full state; count every inherited
       entry into the child's own freshness counter *)
    let changed = ref 0 in
    Ol.iter d.olists.(t) (fun t' v ->
        if t' <> t && t' <> u && v > Ol.get d.olists.(u) t' then begin
          Ol.set d.olists.(u) t' v;
          incr changed
        end);
    if d.own.(t) > Ol.get d.olists.(u) t then begin
      Ol.set d.olists.(u) t d.own.(t);
      incr changed
    end;
    Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
    Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + !changed)
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (* the child's end-of-thread acts as its final release *)
    flush_pending d u;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    Vc.join ~into:d.uclocks.(t) d.uclocks.(u);
    Ol.iter d.olists.(u) (fun t' v -> if t' <> t && t' <> u then absorb_entry d t t' v);
    if u <> t then absorb_entry d t u d.own.(u)

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races
