(** Open-addressed hash table from non-negative int keys to int values.

    Replaces [Hashtbl]/option-boxed per-location records on detector hot
    paths: probing walks a flat int array (no bucket chains, no boxing),
    and a lookup that misses costs a handful of reads on a table kept at
    most half full.  Values are plain ints — callers index side arrays
    with them when they need richer payloads.

    Not resistant to adversarial keys; detector locations are small dense
    ints and the multiplicative hash spreads them fine. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a hint for the number of entries; the table grows
    geometrically regardless. *)

val find : t -> int -> int
(** [find t k] is the value bound to [k], or [-1] when absent.  O(1)
    expected. *)

val set : t -> int -> int -> unit
(** Bind [k] (>= 0) to [v] (>= 0), replacing any previous binding. *)

val remove : t -> int -> unit
(** Drop [k]'s binding; no-op when absent. *)

val length : t -> int

val iter : t -> (int -> int -> unit) -> unit
(** Unordered; do not mutate the table during iteration. *)
