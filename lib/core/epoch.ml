type t = int

let tid_bits = 16
let tid_mask = (1 lsl tid_bits) - 1

let none = 0

let make ~time ~tid =
  assert (tid >= 0 && tid <= tid_mask);
  assert (time >= 0);
  (time lsl tid_bits) lor tid

let time e = e lsr tid_bits
let tid e = e land tid_mask

let leq_vc e v = time e <= Vector_clock.get v (tid e)

let of_vc_entry v t = make ~time:(Vector_clock.get v t) ~tid:t

let equal (a : t) (b : t) = a = b

let encode enc (e : t) = Snap.Enc.int enc e

let decode dec =
  let e = Snap.Dec.int dec in
  Snap.expect (e >= 0) "negative epoch";
  e

let pp fmt e = Format.fprintf fmt "%d@@t%d" (time e) (tid e)
