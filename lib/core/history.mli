(** Access histories for the vector-clock detectors (Alg 1/2, read/write
    handlers).

    Per memory location we keep the write history [C_x^w] (timestamp of the
    last recorded write) and the read history [C_x^r] (per-thread local time
    of the last recorded read), lazily allocated on first touch, together
    with the trace indices of the events behind the entries so that race
    reports can name the concrete earlier access.

    The race checks compare a history against the *current event's*
    timestamp, which for the sampling detectors is the thread clock with its
    own component replaced by the local epoch [e_t] — the clock's own entry
    only holds the time of the last {e sampled} event flushed at a release,
    so comparing against it directly would mis-order same-thread accesses.
    (DJIT+ passes [e_t = C_t(t)], making the check the plain pointwise
    comparison.)

    The [stale_*] checks return the trace index of a conflicting earlier
    event when the history is {e not} ordered before the current access, and
    [-1] when it is ordered (no race). *)

type t

val create : nlocs:int -> clock_size:int -> t

val stale_write : t -> Ft_trace.Event.loc -> Vector_clock.t -> tid:int -> epoch:int -> int
(** Is [C_x^w ⊑ clock[tid ↦ epoch]]?  [-1] if so, otherwise the index of
    the recorded write. *)

val stale_read : t -> Ft_trace.Event.loc -> Vector_clock.t -> tid:int -> epoch:int -> int
(** Is [C_x^r ⊑ clock[tid ↦ epoch]]?  [-1] if so, otherwise the index of
    the offending thread's recorded read. *)

val ol_stale_write : t -> Ft_trace.Event.loc -> Ordered_list.t -> tid:int -> epoch:int -> int
val ol_stale_read : t -> Ft_trace.Event.loc -> Ordered_list.t -> tid:int -> epoch:int -> int
(** As above, when the thread clock is an ordered list whose own entry is
    externalized (Alg 4 with the local-epoch optimization). *)

val record_write_vc :
  t -> Ft_trace.Event.loc -> Vector_clock.t -> tid:int -> epoch:int -> index:int -> unit
(** [C_x^w ← C_t[t ↦ e_t]], remembering the event's trace [index]. *)

val record_write_ol :
  t -> Ft_trace.Event.loc -> Ordered_list.t -> tid:int -> epoch:int -> index:int -> unit

val record_read : t -> Ft_trace.Event.loc -> tid:int -> epoch:int -> index:int -> unit
(** [C_x^r ← C_x^r[t ↦ e_t]], remembering the event's trace [index]. *)

val encode : Snap.Enc.t -> t -> unit

val decode : Snap.Dec.t -> nlocs:int -> clock_size:int -> t
(** Raises [Snap.Corrupt] on dimension mismatch against the stated
    universe. *)
