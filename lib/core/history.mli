(** Access histories for the vector-clock detectors (Alg 1/2, read/write
    handlers), stored in flat per-location arrays with a same-epoch
    fast-path cache on top.

    Per memory location we keep the write history [C_x^w] (timestamp of the
    last recorded write) and the read history [C_x^r] (per-thread local time
    of the last recorded read), lazily allocated on first touch, together
    with the trace indices of the events behind the entries so that race
    reports can name the concrete earlier access.

    The race checks compare a history against the *current event's*
    timestamp, which for the sampling detectors is the thread clock with its
    own component replaced by the local epoch [e_t] — the clock's own entry
    only holds the time of the last {e sampled} event flushed at a release,
    so comparing against it directly would mis-order same-thread accesses.
    (DJIT+ passes [e_t = C_t(t)], making the check the plain pointwise
    comparison.)

    The [stale_*] checks return the trace index of a conflicting earlier
    event when the history is {e not} ordered before the current access, and
    [-1] when it is ordered (no race).

    {1 Same-epoch fast path}

    [read_hit]/[write_hit] answer an access in O(1) when the location's last
    clean check was made by the same thread at the same epoch and no sync
    operation has touched that thread's clock since ([bump] advances the
    thread's version counter; the engines call it from every sync handler
    that mutates a thread's timestamp).  A hit updates the remembered trace
    index — the only state the skipped slow path would have changed — so
    verdicts, history contents and race reports are bit-identical to the
    slow path.  The engines must bump every counter the slow path would
    have bumped; only [Metrics.same_epoch_hits] is extra. *)

type t

val create : nlocs:int -> clock_size:int -> t

val bump : t -> int -> unit
(** [bump t tid]: thread [tid]'s clock (or local epoch binding) is about to
    change; invalidate its cache entries.  O(1). *)

val read_hit : t -> Ft_trace.Event.loc -> tid:int -> epoch:int -> index:int -> bool
(** O(1) same-epoch fast path for a read: [true] iff the last clean read
    check on this location was [(tid, epoch)] and still valid, in which case
    the recorded read index is moved to [index] and the caller must skip
    both {!stale_write} and {!record_read}. *)

val write_hit : t -> Ft_trace.Event.loc -> tid:int -> epoch:int -> index:int -> bool
(** O(1) same-epoch fast path for a write: [true] iff the last clean write
    on this location was [(tid, epoch)] and still valid, in which case the
    recorded write index is moved to [index] and the caller must skip the
    checks and {!record_write_vc}/{!record_write_ol}. *)

val stale_write : t -> Ft_trace.Event.loc -> Vector_clock.t -> tid:int -> epoch:int -> int
(** Is [C_x^w ⊑ clock[tid ↦ epoch]]?  [-1] if so, otherwise the index of
    the recorded write. *)

val stale_read : t -> Ft_trace.Event.loc -> Vector_clock.t -> tid:int -> epoch:int -> int
(** Is [C_x^r ⊑ clock[tid ↦ epoch]]?  [-1] if so, otherwise the index of
    the offending thread's recorded read. *)

val ol_stale_write : t -> Ft_trace.Event.loc -> Ordered_list.t -> tid:int -> epoch:int -> int
val ol_stale_read : t -> Ft_trace.Event.loc -> Ordered_list.t -> tid:int -> epoch:int -> int
(** As above, when the thread clock is an ordered list whose own entry is
    externalized (Alg 4 with the local-epoch optimization). *)

val stale_both :
  t -> Ft_trace.Event.loc -> Vector_clock.t -> tid:int -> epoch:int -> int * int
(** [(stale_read, stale_write)] in one fused traversal — the write-handler
    pair, evaluating the bound once per clock entry instead of once per
    loop.  Results are exactly those of the two separate calls. *)

val ol_stale_both :
  t -> Ft_trace.Event.loc -> Ordered_list.t -> tid:int -> epoch:int -> int * int

val stale_write_plain : t -> Ft_trace.Event.loc -> Vector_clock.t -> int
val stale_both_plain : t -> Ft_trace.Event.loc -> Vector_clock.t -> int * int
(** For callers whose clock already carries the current epoch at its own
    component (DJIT+): the bound is the clock itself, so the substitution
    branch disappears from the loop.  Equivalent to the [~tid ~epoch]
    versions with [epoch = clock(tid)]. *)

val record_write_vc :
  t -> Ft_trace.Event.loc -> Vector_clock.t -> tid:int -> epoch:int -> index:int ->
  clean:bool -> unit
(** [C_x^w ← C_t[t ↦ e_t]], remembering the event's trace [index].  [clean]
    is the outcome of the checks the caller just ran: a clean write arms the
    location's write cache for (tid, epoch); a racy one disarms it so the
    next same-epoch access re-checks (and re-declares) exactly as the seed
    engines did. *)

val record_write_ol :
  t -> Ft_trace.Event.loc -> Ordered_list.t -> tid:int -> epoch:int -> index:int ->
  clean:bool -> unit

val record_read :
  t -> Ft_trace.Event.loc -> tid:int -> epoch:int -> index:int -> clean:bool -> unit
(** [C_x^r ← C_x^r[t ↦ e_t]], remembering the event's trace [index].
    [clean] as for {!record_write_vc}, arming the read cache. *)

val encode : Snap.Enc.t -> t -> unit

val decode : Snap.Dec.t -> nlocs:int -> clock_size:int -> t
(** Raises [Snap.Corrupt] on dimension mismatch against the stated
    universe.  The payload includes the fast-path cache state, so a restored
    run skips (and counts) exactly what the uninterrupted run would. *)
