module E = Ft_trace.Event

type rejection = { event : E.t; reason : string }

type lock_style = Unused | Mutex | Atomic

(* Incremental well-formedness state, mirroring Trace.well_formed. *)
type validator = {
  holder : int array;
  style : lock_style array;
  started : bool array;
  forked : bool array;
  joined : bool array;
}

type t = {
  handle : int -> E.t -> unit;
  get_result : unit -> Detector.result;
  get_races_rev : unit -> Race.t list;
  snapshot_detector : unit -> Snap.t;
  live_metrics : Metrics.t;
  validator : validator;
  on_race : (Race.t -> unit) option;
  checkpoint_every : int;  (* 0 = checkpointing disabled *)
  on_checkpoint : (t -> unit) option;
  nthreads : int;
  nlocks : int;
  nlocs : int;
  mutable seen : int;
  mutable reported : int;  (* races already surfaced through on_race *)
}

(* [restore_from] carries a detector snapshot when rebuilding a monitor from
   a checkpoint; the validator arrays are filled in by [restore] itself. *)
let make ?on_race ?(engine = Engine.So) ?(sampler = Sampler.all) ?clock_size
    ?(checkpoint_every = 0) ?on_checkpoint ~nthreads ~nlocks ~nlocs restore_from =
  if checkpoint_every < 0 then invalid_arg "Online.create: negative checkpoint interval";
  let config =
    {
      Detector.nthreads;
      nlocks;
      nlocs;
      clock_size =
        (match clock_size with
        | None -> nthreads
        | Some s ->
          if s < nthreads then invalid_arg "Online.create: clock_size below thread count";
          s);
      sampler;
    }
  in
  let (module D : Detector.S) = Engine.detector engine in
  let state =
    match restore_from with
    | None -> D.create config
    | Some snap -> D.restore config snap
  in
  let started = Array.make nthreads false in
  (* thread 0 is the initial thread: it runs without a fork, and forking it
     is ill-formed — same lifecycle as Trace.well_formed *)
  if nthreads > 0 then started.(0) <- true;
  {
    handle = (fun i e -> D.handle state i e);
    get_result = (fun () -> D.result state);
    get_races_rev = (fun () -> D.races_rev state);
    snapshot_detector = (fun () -> D.snapshot state);
    live_metrics = (D.result state).Detector.metrics;
    validator =
      {
        holder = Array.make (Stdlib.max 1 nlocks) (-1);
        style = Array.make (Stdlib.max 1 nlocks) Unused;
        started;
        forked = Array.make nthreads false;
        joined = Array.make nthreads false;
      };
    on_race;
    checkpoint_every;
    on_checkpoint;
    nthreads;
    nlocks;
    nlocs;
    seen = 0;
    reported = 0;
  }

let create ?on_race ?engine ?sampler ?clock_size ?checkpoint_every ?on_checkpoint
    ~nthreads ~nlocks ~nlocs () =
  make ?on_race ?engine ?sampler ?clock_size ?checkpoint_every ?on_checkpoint ~nthreads
    ~nlocks ~nlocs None

let check t (e : E.t) =
  let v = t.validator in
  let tid = e.E.thread in
  let fail reason = Error { event = e; reason } in
  if tid < 0 || tid >= t.nthreads then fail "thread id out of range"
  else if v.joined.(tid) then fail "thread acts after being joined"
  else begin
    let check_lock l want =
      if l < 0 || l >= t.nlocks then fail "sync object id out of range"
      else
        match (v.style.(l), want) with
        | Unused, _ | Mutex, Mutex | Atomic, Atomic -> Ok ()
        | Mutex, Atomic | Atomic, Mutex ->
          fail "sync object mixes mutex and atomic operations"
        | _, Unused -> assert false
    in
    match e.E.op with
    | E.Read x | E.Write x ->
      if x < 0 || x >= t.nlocs then fail "location id out of range" else Ok ()
    | E.Acquire l -> (
      match check_lock l Mutex with
      | Error _ as err -> err
      | Ok () ->
        if v.holder.(l) >= 0 then
          fail (Printf.sprintf "lock %d already held by thread %d" l v.holder.(l))
        else Ok ())
    | E.Release l -> (
      match check_lock l Mutex with
      | Error _ as err -> err
      | Ok () ->
        if v.holder.(l) <> tid then fail "thread releases a lock it does not hold" else Ok ())
    | E.Release_store l | E.Acquire_load l -> check_lock l Atomic
    | E.Fork u ->
      if u < 0 || u >= t.nthreads then fail "forked thread id out of range"
      else if u = tid then fail "thread forks itself"
      else if v.forked.(u) || v.started.(u) then fail "thread forked twice or already running"
      else Ok ()
    | E.Join u ->
      if u < 0 || u >= t.nthreads then fail "joined thread id out of range"
      else if u = tid then fail "thread joins itself"
      else if v.joined.(u) then fail "thread joined twice"
      else if not (v.forked.(u) || v.started.(u)) then
        fail "thread joined before being forked or started"
      else Ok ()
  end

let commit t (e : E.t) =
  let v = t.validator in
  v.started.(e.E.thread) <- true;
  match e.E.op with
  | E.Acquire l ->
    v.style.(l) <- Mutex;
    v.holder.(l) <- e.E.thread
  | E.Release l ->
    v.style.(l) <- Mutex;
    v.holder.(l) <- -1
  | E.Release_store l | E.Acquire_load l -> v.style.(l) <- Atomic
  | E.Fork u -> v.forked.(u) <- true
  | E.Join u -> v.joined.(u) <- true
  | E.Read _ | E.Write _ -> ()

let races t = (t.get_result ()).Detector.races

let feed t e =
  match check t e with
  | Error _ as err -> err
  | Ok () ->
    commit t e;
    t.handle t.seen e;
    t.seen <- t.seen + 1;
    (match t.on_race with
    | None -> ()
    | Some callback ->
      (* the shared metrics record makes the new-race check O(1) *)
      let total = t.live_metrics.Metrics.races in
      if total > t.reported then begin
        (* the detector's raw list is newest-first: the [total - reported]
           fresh declarations are exactly its head, so surfacing them is
           O(new races), not O(all races) *)
        let rec take_fresh acc n rest =
          if n = 0 then acc
          else
            match rest with
            | [] -> acc
            | r :: rest -> take_fresh (r :: acc) (n - 1) rest
        in
        let fresh = take_fresh [] (total - t.reported) (t.get_races_rev ()) in
        List.iter callback fresh;
        t.reported <- total
      end);
    (match t.on_checkpoint with
    | Some cb when t.checkpoint_every > 0 && t.seen mod t.checkpoint_every = 0 -> cb t
    | Some _ | None -> ());
    Ok ()

let feed_exn t e =
  match feed t e with
  | Ok () -> ()
  | Error { reason; _ } -> invalid_arg ("Online.feed: " ^ reason)

let events_seen t = t.seen
let racy_locations t = Race.locations (races t)
let metrics t = (t.get_result ()).Detector.metrics

let style_to_int = function Unused -> 0 | Mutex -> 1 | Atomic -> 2

let style_of_int = function
  | 0 -> Unused
  | 1 -> Mutex
  | 2 -> Atomic
  | n -> raise (Snap.Corrupt (Printf.sprintf "bad lock style %d" n))

let snapshot t =
  let enc = Snap.Enc.create () in
  Snap.Enc.int enc t.seen;
  Snap.Enc.int enc t.reported;
  let v = t.validator in
  Snap.Enc.int_array enc v.holder;
  Snap.Enc.int_array enc (Array.map style_to_int v.style);
  Snap.Enc.bool_array enc v.started;
  Snap.Enc.bool_array enc v.forked;
  Snap.Enc.bool_array enc v.joined;
  Snap.Enc.string enc (t.snapshot_detector ());
  Snap.Enc.to_snap enc

let restore ?on_race ?engine ?sampler ?clock_size ?checkpoint_every ?on_checkpoint
    ~nthreads ~nlocks ~nlocs s =
  let dec = Snap.Dec.of_snap s in
  let seen = Snap.Dec.int dec in
  Snap.expect (seen >= 0) "negative event count";
  let reported = Snap.Dec.int dec in
  Snap.expect (reported >= 0) "negative reported count";
  let slots = Stdlib.max 1 nlocks in
  let holder = Snap.Dec.int_array_n dec slots in
  Array.iter
    (fun h -> Snap.expect (h >= -1 && h < nthreads) "lock holder out of range")
    holder;
  let style = Array.map style_of_int (Snap.Dec.int_array_n dec slots) in
  let started = Snap.Dec.bool_array_n dec nthreads in
  let forked = Snap.Dec.bool_array_n dec nthreads in
  let joined = Snap.Dec.bool_array_n dec nthreads in
  let dsnap = Snap.Dec.string dec in
  Snap.Dec.finish dec;
  let t =
    make ?on_race ?engine ?sampler ?clock_size ?checkpoint_every ?on_checkpoint ~nthreads
      ~nlocks ~nlocs (Some dsnap)
  in
  let v = t.validator in
  Array.blit holder 0 v.holder 0 slots;
  Array.blit style 0 v.style 0 slots;
  Array.blit started 0 v.started 0 nthreads;
  Array.blit forked 0 v.forked 0 nthreads;
  Array.blit joined 0 v.joined 0 nthreads;
  t.seen <- seen;
  t.reported <- reported;
  t

let read t tid x = feed t (E.mk tid (E.Read x))
let write t tid x = feed t (E.mk tid (E.Write x))
let acquire t tid l = feed t (E.mk tid (E.Acquire l))
let release t tid l = feed t (E.mk tid (E.Release l))
let fork t ~parent ~child = feed t (E.mk parent (E.Fork child))
let join t ~parent ~child = feed t (E.mk parent (E.Join child))
