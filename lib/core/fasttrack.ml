module E = Ft_trace.Event
module Vc = Vector_clock

(* Location state lives in flat int arrays instead of option-boxed records:
   the write history is an epoch + index pair, and the read history is an
   epoch + index pair while the location stays in exclusive mode — the
   common case, which now costs zero allocation and no pointer chasing.
   Shared-mode read clocks are rare, so they live out-of-line in slot pools
   indexed through an open-addressed {!Flat_table}; a location is in shared
   mode iff the table binds it.

   [repoch = Epoch.none] doubles as "no reads yet": the seed treated a
   missing read record and a none-epoch record identically in every check
   ([Epoch.leq_vc Epoch.none] always holds).  A second reserved value,
   [shared_marker], stamps locations that are in shared mode, so the
   exclusive-mode fast path never pays the table probe: a real epoch has
   time ≥ 1 (thread clocks start at 1), hence compares different from both
   sentinels. *)

type t = {
  nthreads : int;
  clocks : Vc.t array;
  lock_clocks : Vc.t option array;
  writes : Epoch.t array;              (* W_x *)
  w_index : int array;                 (* trace index behind W_x *)
  repoch : Epoch.t array;              (* R_x in exclusive mode *)
  rindex : int array;                  (* trace index behind repoch *)
  rshared : Flat_table.t;              (* loc -> slot, shared mode only *)
  mutable rvc_pool : Vc.t array;       (* slot -> read clock *)
  mutable rvc_index_pool : int array array;  (* slot -> per-thread indices *)
  mutable pool_len : int;              (* slots handed out, free list aside *)
  mutable free_slots : int list;       (* slots returned by deflation *)
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = "fasttrack"

(* Reserved [repoch] value marking shared mode.  Real read epochs always
   carry time ≥ 1 (thread clocks start at 1), so [time:0] cannot collide;
   tid [0xFFFF] keeps it distinct from [Epoch.none] as well.  Never feed
   this to [Epoch.leq_vc] — its tid indexes past the clock. *)
let shared_marker = Epoch.make ~time:0 ~tid:0xFFFF

let create (cfg : Detector.config) =
  let clocks =
    Array.init cfg.Detector.clock_size (fun i ->
        let c = Vc.create cfg.Detector.clock_size in
        Vc.set c i 1;
        c)
  in
  let nlocs = Stdlib.max 1 cfg.Detector.nlocs in
  {
    nthreads = cfg.Detector.clock_size;
    clocks;
    lock_clocks = Array.make (Stdlib.max 1 cfg.Detector.nlocks) None;
    writes = Array.make nlocs Epoch.none;
    w_index = Array.make nlocs (-1);
    repoch = Array.make nlocs Epoch.none;
    rindex = Array.make nlocs (-1);
    rshared = Flat_table.create ();
    rvc_pool = [||];
    rvc_index_pool = [||];
    pool_len = 0;
    free_slots = [];
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

(* Hand out a zeroed shared-mode slot, recycling deflated ones. *)
let alloc_slot d =
  match d.free_slots with
  | s :: rest ->
    d.free_slots <- rest;
    Vc.reset d.rvc_pool.(s);
    Array.fill d.rvc_index_pool.(s) 0 d.nthreads (-1);
    s
  | [] ->
    if d.pool_len = Array.length d.rvc_pool then begin
      let cap = Stdlib.max 4 (d.pool_len * 2) in
      let rvc = Array.make cap (Vc.create 0) in
      let ri = Array.make cap [||] in
      Array.blit d.rvc_pool 0 rvc 0 d.pool_len;
      Array.blit d.rvc_index_pool 0 ri 0 d.pool_len;
      d.rvc_pool <- rvc;
      d.rvc_index_pool <- ri
    end;
    let s = d.pool_len in
    d.rvc_pool.(s) <- Vc.create d.nthreads;
    d.rvc_index_pool.(s) <- Array.make d.nthreads (-1);
    d.pool_len <- s + 1;
    s

let lock_clock d l =
  match d.lock_clocks.(l) with
  | Some c -> c
  | None ->
    let c = Vc.create d.nthreads in
    d.lock_clocks.(l) <- Some c;
    c

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  let ct = d.clocks.(t) in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    let own = Epoch.make ~time:(Vc.get ct t) ~tid:t in
    let re = d.repoch.(x) in
    if Epoch.equal re own then
      (* exclusive-mode same epoch: one load, one compare, no table probe *)
      m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
    else if Epoch.equal re shared_marker then begin
      let slot = Flat_table.find d.rshared x in
      let rv = d.rvc_pool.(slot) in
      if Vc.get rv t = Vc.get ct t then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        m.Metrics.race_checks <- m.Metrics.race_checks + 1;
        if not (Epoch.leq_vc d.writes.(x) ct) then
          declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
        Vc.set rv t (Vc.get ct t);
        d.rvc_index_pool.(slot).(t) <- index
      end
    end
    else begin
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      if not (Epoch.leq_vc d.writes.(x) ct) then
        declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
      if Epoch.leq_vc re ct then begin
        (* exclusive read; covers re = none, which leq_vc always admits *)
        d.repoch.(x) <- own;
        d.rindex.(x) <- index
      end
      else begin
        (* inflate to shared mode *)
        let s = alloc_slot d in
        let rv = d.rvc_pool.(s) and ri = d.rvc_index_pool.(s) in
        Vc.set rv (Epoch.tid re) (Epoch.time re);
        ri.(Epoch.tid re) <- d.rindex.(x);
        Vc.set rv t (Vc.get ct t);
        ri.(t) <- index;
        Flat_table.set d.rshared x s;
        d.repoch.(x) <- shared_marker
      end
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    let own = Epoch.make ~time:(Vc.get ct t) ~tid:t in
    if Epoch.equal d.writes.(x) own then
      m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
    else begin
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let pw = if Epoch.leq_vc d.writes.(x) ct then -1 else d.w_index.(x) in
      if Epoch.equal d.repoch.(x) shared_marker then begin
        let slot = Flat_table.find d.rshared x in
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        let rv = d.rvc_pool.(slot) in
        let rec stale i =
          if i >= Vc.size rv then -1
          else if Vc.get rv i > Vc.get ct i then d.rvc_index_pool.(slot).(i)
          else stale (i + 1)
        in
        let pr = stale 0 in
        let with_write = pw >= 0 and with_read = pr >= 0 in
        if with_write || with_read then
          declare d index t x ~with_write ~with_read
            ~prior:(if with_write then pw else pr);
        d.writes.(x) <- own;
        d.w_index.(x) <- index;
        (* a successful shared-read check lets us fall back to epoch mode *)
        if not with_read then begin
          Flat_table.remove d.rshared x;
          d.free_slots <- slot :: d.free_slots;
          d.repoch.(x) <- Epoch.none
        end
      end
      else begin
        let pr = if Epoch.leq_vc d.repoch.(x) ct then -1 else d.rindex.(x) in
        let with_write = pw >= 0 and with_read = pr >= 0 in
        if with_write || with_read then
          declare d index t x ~with_write ~with_read
            ~prior:(if with_write then pw else pr);
        d.writes.(x) <- own;
        d.w_index.(x) <- index
      end
    end
  | E.Acquire l | E.Acquire_load l ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (match d.lock_clocks.(l) with
    | None -> ()
    | Some cl ->
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:ct cl)
  | E.Release l | E.Release_store l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    Vc.copy_into ~into:(lock_clock d l) ct;
    Vc.inc ct t
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    Vc.join ~into:d.clocks.(u) ct;
    Vc.inc ct t
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    Vc.join ~into:ct d.clocks.(u)

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Accesses never touch thread clocks here, so sharding needs no replay. *)
let note_sampled (_ : t) (_ : int) = ()

(* Shared-mode entries are written in ascending location order so equal
   detector states encode to equal bytes regardless of the table's probe
   history. *)
let snapshot d =
  let enc = Snap.Enc.create () in
  Array.iter (Vc.encode enc) d.clocks;
  Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
  Array.iter (Epoch.encode enc) d.writes;
  Snap.Enc.int_array enc d.w_index;
  Array.iter (Epoch.encode enc) d.repoch;
  Snap.Enc.int_array enc d.rindex;
  let shared = ref [] in
  Flat_table.iter d.rshared (fun x s -> shared := (x, s) :: !shared);
  let shared = List.sort compare !shared in
  Snap.Enc.int enc (List.length shared);
  List.iter
    (fun (x, s) ->
      Snap.Enc.int enc x;
      Vc.encode enc d.rvc_pool.(s);
      Snap.Enc.int_array enc d.rvc_index_pool.(s))
    shared;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  let n = d.nthreads in
  for t = 0 to Array.length d.clocks - 1 do
    d.clocks.(t) <- Vc.decode dec ~size:n
  done;
  for l = 0 to Array.length d.lock_clocks - 1 do
    d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
  done;
  for x = 0 to Array.length d.writes - 1 do
    d.writes.(x) <- Epoch.decode dec
  done;
  let w_index = Snap.Dec.int_array_n dec (Array.length d.w_index) in
  Array.blit w_index 0 d.w_index 0 (Array.length w_index);
  for x = 0 to Array.length d.repoch - 1 do
    d.repoch.(x) <- Epoch.decode dec
  done;
  let rindex = Snap.Dec.int_array_n dec (Array.length d.rindex) in
  Array.blit rindex 0 d.rindex 0 (Array.length rindex);
  let nshared = Snap.Dec.int dec in
  Snap.expect (nshared >= 0 && nshared <= Array.length d.writes)
    "shared read count out of range";
  let prev = ref (-1) in
  for _ = 1 to nshared do
    let x = Snap.Dec.int dec in
    Snap.expect (x > !prev && x < Array.length d.writes)
      "shared read location out of order";
    prev := x;
    let slot = alloc_slot d in
    let rv = Vc.decode dec ~size:n in
    Vc.copy_into ~into:d.rvc_pool.(slot) rv;
    let ri = Snap.Dec.int_array_n dec n in
    Array.blit ri 0 d.rvc_index_pool.(slot) 0 n;
    Flat_table.set d.rshared x slot
  done;
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with metrics }
