module E = Ft_trace.Event
module Vc = Vector_clock

(* Read history: [rvc = None] means epoch mode ([repoch]); otherwise shared
   mode with the full clock. *)
type read_state = {
  mutable repoch : Epoch.t;
  mutable rindex : int;  (* trace index behind [repoch] *)
  mutable rvc : Vc.t option;
  mutable rvc_index : int array;  (* per-thread indices, allocated with [rvc] *)
}

type t = {
  nthreads : int;
  clocks : Vc.t array;
  lock_clocks : Vc.t option array;
  writes : Epoch.t array;              (* W_x *)
  w_index : int array;                 (* trace index behind W_x *)
  reads : read_state option array;     (* R_x, lazily allocated *)
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = "fasttrack"

let create (cfg : Detector.config) =
  let clocks =
    Array.init cfg.Detector.clock_size (fun i ->
        let c = Vc.create cfg.Detector.clock_size in
        Vc.set c i 1;
        c)
  in
  {
    nthreads = cfg.Detector.clock_size;
    clocks;
    lock_clocks = Array.make (Stdlib.max 1 cfg.Detector.nlocks) None;
    writes = Array.make (Stdlib.max 1 cfg.Detector.nlocs) Epoch.none;
    w_index = Array.make (Stdlib.max 1 cfg.Detector.nlocs) (-1);
    reads = Array.make (Stdlib.max 1 cfg.Detector.nlocs) None;
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

let read_state d x =
  match d.reads.(x) with
  | Some r -> r
  | None ->
    let r = { repoch = Epoch.none; rindex = -1; rvc = None; rvc_index = [||] } in
    d.reads.(x) <- Some r;
    r

let lock_clock d l =
  match d.lock_clocks.(l) with
  | Some c -> c
  | None ->
    let c = Vc.create d.nthreads in
    d.lock_clocks.(l) <- Some c;
    c

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  let ct = d.clocks.(t) in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    let own = Epoch.make ~time:(Vc.get ct t) ~tid:t in
    let r = read_state d x in
    let same_epoch =
      match r.rvc with
      | None -> Epoch.equal r.repoch own
      | Some rv -> Vc.get rv t = Vc.get ct t
    in
    if not same_epoch then begin
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      if not (Epoch.leq_vc d.writes.(x) ct) then
        declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
      match r.rvc with
      | Some rv ->
        Vc.set rv t (Vc.get ct t);
        r.rvc_index.(t) <- index
      | None ->
        if Epoch.equal r.repoch Epoch.none || Epoch.leq_vc r.repoch ct then begin
          (* exclusive read *)
          r.repoch <- own;
          r.rindex <- index
        end
        else begin
          (* inflate to shared mode *)
          let rv = Vc.create d.nthreads in
          let ri = Array.make d.nthreads (-1) in
          Vc.set rv (Epoch.tid r.repoch) (Epoch.time r.repoch);
          ri.(Epoch.tid r.repoch) <- r.rindex;
          Vc.set rv t (Vc.get ct t);
          ri.(t) <- index;
          r.rvc <- Some rv;
          r.rvc_index <- ri
        end
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    let own = Epoch.make ~time:(Vc.get ct t) ~tid:t in
    if not (Epoch.equal d.writes.(x) own) then begin
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let pw = if Epoch.leq_vc d.writes.(x) ct then -1 else d.w_index.(x) in
      let pr =
        match d.reads.(x) with
        | None -> -1
        | Some r -> (
          match r.rvc with
          | None -> if Epoch.leq_vc r.repoch ct then -1 else r.rindex
          | Some rv ->
            m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
            let rec stale i =
              if i >= Vc.size rv then -1
              else if Vc.get rv i > Vc.get ct i then r.rvc_index.(i)
              else stale (i + 1)
            in
            stale 0)
      in
      let with_write = pw >= 0 and with_read = pr >= 0 in
      if with_write || with_read then
        declare d index t x ~with_write ~with_read
          ~prior:(if with_write then pw else pr);
      d.writes.(x) <- own;
      d.w_index.(x) <- index;
      (* a successful shared-read check lets us fall back to epoch mode *)
      match d.reads.(x) with
      | Some r when r.rvc <> None && not with_read ->
        r.rvc <- None;
        r.repoch <- Epoch.none
      | Some _ | None -> ()
    end
  | E.Acquire l | E.Acquire_load l ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (match d.lock_clocks.(l) with
    | None -> ()
    | Some cl ->
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:ct cl)
  | E.Release l | E.Release_store l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    Vc.copy_into ~into:(lock_clock d l) ct;
    Vc.inc ct t
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    Vc.join ~into:d.clocks.(u) ct;
    Vc.inc ct t
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    Vc.join ~into:ct d.clocks.(u)

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Accesses never touch thread clocks here, so sharding needs no replay. *)
let note_sampled (_ : t) (_ : int) = ()

let encode_read_state enc (r : read_state) =
  Epoch.encode enc r.repoch;
  Snap.Enc.int enc r.rindex;
  Snap.Enc.option enc
    (fun rv ->
      Vc.encode enc rv;
      Snap.Enc.int_array enc r.rvc_index)
    r.rvc

let decode_read_state dec ~size =
  let repoch = Epoch.decode dec in
  let rindex = Snap.Dec.int dec in
  match
    Snap.Dec.option dec (fun () ->
        let rv = Vc.decode dec ~size in
        let ri = Snap.Dec.int_array_n dec size in
        (rv, ri))
  with
  | None -> { repoch; rindex; rvc = None; rvc_index = [||] }
  | Some (rv, ri) -> { repoch; rindex; rvc = Some rv; rvc_index = ri }

let snapshot d =
  let enc = Snap.Enc.create () in
  Array.iter (Vc.encode enc) d.clocks;
  Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
  Array.iter (Epoch.encode enc) d.writes;
  Snap.Enc.int_array enc d.w_index;
  Array.iter (fun r -> Snap.Enc.option enc (encode_read_state enc) r) d.reads;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  let n = d.nthreads in
  for t = 0 to Array.length d.clocks - 1 do
    d.clocks.(t) <- Vc.decode dec ~size:n
  done;
  for l = 0 to Array.length d.lock_clocks - 1 do
    d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
  done;
  for x = 0 to Array.length d.writes - 1 do
    d.writes.(x) <- Epoch.decode dec
  done;
  let w_index = Snap.Dec.int_array_n dec (Array.length d.w_index) in
  Array.blit w_index 0 d.w_index 0 (Array.length w_index);
  for x = 0 to Array.length d.reads - 1 do
    d.reads.(x) <- Snap.Dec.option dec (fun () -> decode_read_state dec ~size:n)
  done;
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with metrics }
