(** DJIT+ — the classical vector-clock race detector (Algorithm 1).

    Processes every event; the sampler in the configuration is ignored.
    This is the unoptimized baseline whose O(N·T) timestamping cost the
    paper attacks, and the specification against which FastTrack's racy
    locations are checked. *)

include Detector.S
