type t = {
  shadow : int array;       (* 4 cells per location *)
  sync_meta : int array;    (* 1 cell per sync object *)
  mutable cursor : int;     (* rotating victim cell, as in TSan's eviction *)
}

let create ~nlocs ~nlocks =
  {
    shadow = Array.make (4 * Stdlib.max 1 nlocs) 0;
    sync_meta = Array.make (Stdlib.max 1 nlocks) 0;
    cursor = 0;
  }

(* A cheap stand-in for TSan's shadow-cell scan: hash the access, read the
   location's four shadow cells, overwrite one in rotation. *)
let touch t (e : Ft_trace.Event.t) =
  match e.Ft_trace.Event.op with
  | Ft_trace.Event.Read x | Ft_trace.Event.Write x ->
    let base = 4 * x in
    let h = (x * 0x9E3779B1) lxor (e.Ft_trace.Event.thread * 0x85EBCA77) in
    let acc =
      Array.unsafe_get t.shadow base
      + Array.unsafe_get t.shadow (base + 1)
      + Array.unsafe_get t.shadow (base + 2)
      + Array.unsafe_get t.shadow (base + 3)
    in
    let victim = base + (t.cursor land 3) in
    Array.unsafe_set t.shadow victim ((acc + h) land 0xFFFF);
    t.cursor <- t.cursor + 1
  | Ft_trace.Event.Acquire l | Ft_trace.Event.Release l
  | Ft_trace.Event.Release_store l | Ft_trace.Event.Acquire_load l ->
    t.sync_meta.(l) <- (t.sync_meta.(l) + e.Ft_trace.Event.thread + 1) land 0xFFFF
  | Ft_trace.Event.Fork _ | Ft_trace.Event.Join _ -> ()
