(** Epochs — scalar timestamps [c@t] (FastTrack).

    An epoch packs a clock value and a thread id into one immediate integer,
    so that the common same-epoch / ordered-epoch checks of FastTrack are
    single comparisons instead of O(T) clock traversals.  Thread ids must fit
    in 16 bits and clock values in the remaining 46. *)

type t = private int

val none : t
(** The ⊥ epoch [0@0] — compares ≤ everything. *)

val make : time:int -> tid:int -> t
val time : t -> int
val tid : t -> int

val leq_vc : t -> Vector_clock.t -> bool
(** [leq_vc (c@t) V] is [c ≤ V(t)] — the O(1) ordering check. *)

val of_vc_entry : Vector_clock.t -> int -> t
(** [of_vc_entry v t] is [v(t)@t]. *)

val equal : t -> t -> bool

val encode : Snap.Enc.t -> t -> unit
val decode : Snap.Dec.t -> t

val pp : Format.formatter -> t -> unit
