type t = int array

let create n = Array.make n 0
let size = Array.length
let get (c : t) i = Array.unsafe_get c i
let set (c : t) i v = Array.unsafe_set c i v
let inc (c : t) i = c.(i) <- c.(i) + 1

let join ~into src =
  assert (Array.length into = Array.length src);
  for i = 0 to Array.length into - 1 do
    let v = Array.unsafe_get src i in
    if v > Array.unsafe_get into i then Array.unsafe_set into i v
  done

let join_count ~into src =
  assert (Array.length into = Array.length src);
  let changed = ref 0 in
  for i = 0 to Array.length into - 1 do
    let v = Array.unsafe_get src i in
    if v > Array.unsafe_get into i then begin
      Array.unsafe_set into i v;
      incr changed
    end
  done;
  !changed

let copy_into ~into src = Array.blit src 0 into 0 (Array.length src)
let blit_into (c : t) dst = Array.blit c 0 dst 0 (Array.length c)
let copy = Array.copy

let leq c1 c2 =
  assert (Array.length c1 = Array.length c2);
  let n = Array.length c1 in
  let rec loop i = i >= n || (Array.unsafe_get c1 i <= Array.unsafe_get c2 i && loop (i + 1)) in
  loop 0

let reset c = Array.fill c 0 (Array.length c) 0
let to_array = Array.copy
let of_array = Array.copy

let encode enc (c : t) = Snap.Enc.int_array enc c

let decode dec ~size:n : t =
  let a = Snap.Dec.int_array_n dec n in
  Array.iteri
    (fun i v -> Snap.expect (v >= 0) (Printf.sprintf "negative clock entry %d at %d" v i))
    a;
  a

let pp fmt c =
  Format.fprintf fmt "⟨";
  Array.iteri (fun i v -> if i > 0 then Format.fprintf fmt ",%d" v else Format.fprintf fmt "%d" v) c;
  Format.fprintf fmt "⟩"
