(** Binary codec for detector snapshots.

    A snapshot is an opaque byte payload; engines build one with {!Enc} and
    rebuild their state with {!Dec}.  The versioned, checksummed container
    around a payload (the [.ftc] format) lives in [Ft_snapshot.Checkpoint] —
    this module only defines the wire primitives shared by every engine.

    All integers are zigzag-mapped LEB128 varints, so the [-1] sentinels
    pervading detector state cost one byte.  Decoding is total: any
    malformed input raises {!Corrupt} (which the container layer converts
    into a clean [Error]) — never an out-of-bounds access, and never an
    allocation larger than the input itself (lengths are validated against
    the bytes remaining before [Array.init] trusts them). *)

exception Corrupt of string

val expect : bool -> string -> unit
(** [expect cond msg] raises [Corrupt msg] unless [cond] — for engine-side
    consistency checks during decoding. *)

type t = string
(** A snapshot payload. *)

module Enc : sig
  type t

  val create : unit -> t
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val string : t -> string -> unit
  val int_array : t -> int array -> unit
  val bool_array : t -> bool array -> unit

  val option : t -> ('a -> unit) -> 'a option -> unit
  (** [option enc f v] writes a presence tag, then [f] on the contents. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Length-prefixed, elements in list order. *)

  val to_snap : t -> string
end

module Dec : sig
  type t

  val of_snap : string -> t
  val int : t -> int
  val bool : t -> bool
  val string : t -> string
  val int_array : t -> int array

  val int_array_n : t -> int -> int array
  (** Decode an int array and check its length is exactly [n]. *)

  val bool_array : t -> bool array

  val bool_array_n : t -> int -> bool array
  (** Decode a bool array and check its length is exactly [n]. *)

  val option : t -> (unit -> 'a) -> 'a option
  val list : t -> (unit -> 'a) -> 'a list

  val finish : t -> unit
  (** Raise {!Corrupt} unless every payload byte has been consumed. *)
end
