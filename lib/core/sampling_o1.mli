(** O1 — the O(1)-samples detector (the authors' follow-up paper).

    Keeps FastTrack's adaptive per-location state — last-write epoch,
    exclusive-read epoch, a full read clock only while a location is
    genuinely read-shared — but records only {e sampled} accesses in it, and
    orders them with the sampling clocks of Alg 2: ⊥-initialized [C_t], the
    local epoch [e_t] externalized out of the clock's own component, and the
    pending bit flushed at the first release after a sampled access.  State
    retained per location is O(1) in the common case regardless of how many
    samples were taken, where ST/SU/SO retain a full clock (or list) per
    location.

    Ordering checks substitute the current thread's component:
    [c@u ⊑ C_t[t ↦ e_t]].  On a fully sampled trace this coincides with
    FastTrack's epoch checks access by access, so the race report is
    byte-identical to FastTrack's; on a sub-sampled trace its race indices
    are a subset of ST's over the same sample set, and it still reports at
    least one race per racy location (FastTrack's per-variable coverage
    argument, restricted to the sampled subsequence). *)

include Detector.S

(** The implementation, parameterized by the freshness-clock policy; used to
    derive the {!Sampling_o1_uclock} variant without duplication. *)
module Make (_ : sig
  val name : string
  val uclock : bool
end) : Detector.S
