(** Tree clocks (Mathur, Pavlogiannis, Tunç, Viswanathan, ASPLOS 2022) — the
    data structure the paper's §7 contrasts with ordered lists.

    A tree clock stores a vector timestamp as a tree rooted at the owning
    thread; every node remembers the owner's clock value at the moment its
    subtree was attached ([aclk]).  A join then traverses only the parts of
    the source tree the target has not seen: children are kept in
    decreasing-[aclk] order, so the scan of a node's children stops at the
    first subtree attached before the target's knowledge of that node.
    Joins are therefore "vt-work optimal" for computing the {e full}
    happens-before relation — but, as the paper argues, they cannot exploit
    the redundancy created by sampling timestamps, which is why the ordered
    list of §5 wins in that setting (this repository's ablation benchmarks
    measure exactly that).

    The implementation is array-based: node [t] is thread [t]'s entry and
    sibling lists are intrusive, so no allocation happens during joins. *)

type t

val create : int -> owner:int -> t
(** [create n ~owner]: the ⊥ timestamp over [n] threads, rooted at
    [owner]. *)

val size : t -> int

val root : t -> int

val get : t -> int -> int
(** O(1). *)

val inc : t -> int -> unit
(** [inc tc k] advances the owner's (root's) component by [k > 0]. *)

val join : into:t -> t -> unit
(** [join ~into src]: pointwise maximum, traversing only updated subtrees of
    [src].  [into]'s root is unchanged. *)

val join_count : into:t -> t -> int
(** Like {!join}; returns the number of components that changed. *)

val monotone_copy : into:t -> t -> unit
(** [monotone_copy ~into src] makes [into] an exact copy of [src] — values,
    shape and root — under the precondition [into ⊑ src] pointwise (which
    lock clocks satisfy at a release, since the releasing thread joined the
    lock at its acquire).  Traverses only updated subtrees. *)

val force_copy : into:t -> t -> unit
(** Unconditional structural copy (values, shape, root), O(T).  Used where
    {!monotone_copy}'s precondition fails — release-stores on sync variables
    that the releasing thread never acquired (appendix A.2). *)

val leq : t -> t -> bool
(** Pointwise [⊑]. O(T). *)

val to_vc : t -> Vector_clock.t
(** Snapshot (tests, histories). O(T). *)

val check_invariants : t -> bool
(** Structural sanity: parent/child links consistent, children in
    decreasing-[aclk] order, every attached node's [aclk] at most its
    parent's clock, no cycles.  For tests. *)

val encode : Snap.Enc.t -> t -> unit

val decode : Snap.Dec.t -> size:int -> t
(** Raises [Snap.Corrupt] on wrong arity, out-of-range links, or a shape
    that fails {!check_invariants}. *)

val pp : Format.formatter -> t -> unit
