type t = {
  mutable events : int;
  mutable reads : int;
  mutable writes : int;
  mutable sampled_accesses : int;
  mutable acquires : int;
  mutable releases : int;
  mutable acquires_skipped : int;
  mutable releases_processed : int;
  mutable deep_copies : int;
  mutable shallow_copies : int;
  mutable vc_full_ops : int;
  mutable entries_traversed : int;
  mutable entries_saved : int;
  mutable race_checks : int;
  mutable races : int;
  mutable same_epoch_hits : int;
}

let create () =
  {
    events = 0;
    reads = 0;
    writes = 0;
    sampled_accesses = 0;
    acquires = 0;
    releases = 0;
    acquires_skipped = 0;
    releases_processed = 0;
    deep_copies = 0;
    shallow_copies = 0;
    vc_full_ops = 0;
    entries_traversed = 0;
    entries_saved = 0;
    race_checks = 0;
    races = 0;
    same_epoch_hits = 0;
  }

let copy m = { m with events = m.events }

(* Field order is the serialization contract of [Snap]-based snapshots; the
   guard test checks this list against the record's actual arity, so adding
   a field without extending it fails the suite instead of silently
   truncating checkpoints. *)
let to_array m =
  [|
    m.events;
    m.reads;
    m.writes;
    m.sampled_accesses;
    m.acquires;
    m.releases;
    m.acquires_skipped;
    m.releases_processed;
    m.deep_copies;
    m.shallow_copies;
    m.vc_full_ops;
    m.entries_traversed;
    m.entries_saved;
    m.race_checks;
    m.races;
    m.same_epoch_hits;
  |]

let field_count = Array.length (to_array (create ()))

(* Parallel to [to_array]: the JSON renderers zip the two, so a field added
   to one but not the other trips the assertion below (and the test_obs arity
   guard) instead of silently dropping the counter from every export. *)
let field_names =
  [|
    "events";
    "reads";
    "writes";
    "sampled_accesses";
    "acquires";
    "releases";
    "acquires_skipped";
    "releases_processed";
    "deep_copies";
    "shallow_copies";
    "vc_full_ops";
    "entries_traversed";
    "entries_saved";
    "race_checks";
    "races";
    "same_epoch_hits";
  |]

let () = assert (Array.length field_names = field_count)

let to_json m =
  let vals = to_array m in
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  Array.iteri
    (fun i name ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": %d" name vals.(i))
    field_names;
  Buffer.add_char b '}';
  Buffer.contents b

let of_array a =
  if Array.length a <> field_count then None
  else
    Some
      {
        events = a.(0);
        reads = a.(1);
        writes = a.(2);
        sampled_accesses = a.(3);
        acquires = a.(4);
        releases = a.(5);
        acquires_skipped = a.(6);
        releases_processed = a.(7);
        deep_copies = a.(8);
        shallow_copies = a.(9);
        vc_full_ops = a.(10);
        entries_traversed = a.(11);
        entries_saved = a.(12);
        race_checks = a.(13);
        races = a.(14);
        same_epoch_hits = a.(15);
      }

let encode enc m = Snap.Enc.int_array enc (to_array m)

let decode dec =
  match of_array (Snap.Dec.int_array dec) with
  | Some m -> m
  | None -> raise (Snap.Corrupt "metrics field count mismatch")

let add ~into m =
  into.events <- into.events + m.events;
  into.reads <- into.reads + m.reads;
  into.writes <- into.writes + m.writes;
  into.sampled_accesses <- into.sampled_accesses + m.sampled_accesses;
  into.acquires <- into.acquires + m.acquires;
  into.releases <- into.releases + m.releases;
  into.acquires_skipped <- into.acquires_skipped + m.acquires_skipped;
  into.releases_processed <- into.releases_processed + m.releases_processed;
  into.deep_copies <- into.deep_copies + m.deep_copies;
  into.shallow_copies <- into.shallow_copies + m.shallow_copies;
  into.vc_full_ops <- into.vc_full_ops + m.vc_full_ops;
  into.entries_traversed <- into.entries_traversed + m.entries_traversed;
  into.entries_saved <- into.entries_saved + m.entries_saved;
  into.race_checks <- into.race_checks + m.race_checks;
  into.races <- into.races + m.races;
  into.same_epoch_hits <- into.same_epoch_hits + m.same_epoch_hits

(* Sharded runs replicate every sync event to all K shards, so sync-side
   counters are counted K times while access-side counters (owner shard
   only) are counted once.  A sync-only baseline instance — same engine,
   fed exactly the replicated stream — counts precisely the duplicated
   work, so the exact merged counters are Σ shards − (K−1)·baseline,
   computed over [to_array] so a new field is covered (and exercised by the
   equivalence tests) the day it is added. *)
let merge_shards ~sync_baseline shards =
  let k = Array.length shards in
  if k = 0 then invalid_arg "Metrics.merge_shards: no shards";
  let acc = Array.make field_count 0 in
  Array.iter
    (fun m ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) (to_array m))
    shards;
  Array.iteri
    (fun i v -> acc.(i) <- acc.(i) - ((k - 1) * v))
    (to_array sync_baseline);
  match of_array acc with
  | Some m -> m
  | None -> assert false

let acquire_total m = m.acquires
let release_total m = m.releases

(* All ratios are computed in float space: summing two counters near
   [max_int] (a merged weeks-long serve session) must not wrap to a negative
   denominator, and a zero or negative denominator (empty run, garbage
   snapshot) must yield a finite 0 rather than nan/inf — the JSON and STATS
   renderers embed these values verbatim. *)
let fdiv num den = if den <= 0.0 || not (Float.is_finite den) then 0.0 else num /. den

let ratio num den = fdiv (float_of_int num) (float_of_int den)

let acquires_skipped_ratio m = ratio m.acquires_skipped m.acquires
let releases_processed_ratio m = ratio m.releases_processed m.releases
let deep_copy_ratio m = ratio m.deep_copies m.releases

let saved_traversal_ratio m =
  fdiv (float_of_int m.entries_saved)
    (float_of_int m.entries_saved +. float_of_int m.entries_traversed)

let sync_full_work_ratio m =
  let total = float_of_int m.acquires +. float_of_int m.releases in
  let full =
    float_of_int m.acquires -. float_of_int m.acquires_skipped
    +. float_of_int m.releases_processed
  in
  fdiv full total

let mean_entries_per_acquire m = ratio m.entries_traversed m.acquires

let pp fmt m =
  Format.fprintf fmt
    "@[<v>events=%d reads=%d writes=%d sampled=%d@ acquires=%d (skipped %d) releases=%d \
     (processed %d)@ deep=%d shallow=%d vc_full=%d traversed=%d saved=%d@ checks=%d races=%d \
     epoch_hits=%d@]"
    m.events m.reads m.writes m.sampled_accesses m.acquires m.acquires_skipped m.releases
    m.releases_processed m.deep_copies m.shallow_copies m.vc_full_ops m.entries_traversed
    m.entries_saved m.race_checks m.races m.same_epoch_hits
