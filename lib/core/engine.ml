type id = Djit | Fasttrack | Fasttrack_tc | St | Su | So | Sl | Sn | O1 | O1u | Eraser

let all = [ Djit; Fasttrack; Fasttrack_tc; St; Su; So; Sl; Sn; O1; O1u ]

let name = function
  | Djit -> "djit"
  | Fasttrack -> "fasttrack"
  | Fasttrack_tc -> "fasttrack-tc"
  | St -> "st"
  | Su -> "su"
  | So -> "so"
  | Sl -> "sl"
  | Sn -> "su-noskip"
  | O1 -> "o1"
  | O1u -> "o1-u"
  | Eraser -> "eraser"

let of_name = function
  | "djit" -> Some Djit
  | "fasttrack" | "ft" -> Some Fasttrack
  | "fasttrack-tc" | "ft-tc" | "tc" -> Some Fasttrack_tc
  | "st" -> Some St
  | "su" -> Some Su
  | "so" -> Some So
  | "sl" | "so-nomtf" -> Some Sl
  | "su-noskip" | "sn" -> Some Sn
  | "o1" | "o1-samples" -> Some O1
  | "o1-u" | "o1u" -> Some O1u
  | "eraser" | "lockset" -> Some Eraser
  | _ -> None

let plain : id -> Detector.packed = function
  | Djit -> (module Djitp)
  | Fasttrack -> (module Fasttrack)
  | Fasttrack_tc -> (module Fasttrack_tc)
  | St -> (module Sampling_naive)
  | Su -> (module Sampling_uclock)
  | So -> (module Sampling_ordered_list)
  | Sl -> (module Sampling_lazy)
  | Sn -> (module Sampling_uclock_noskip)
  | O1 -> (module Sampling_o1)
  | O1u -> (module Sampling_o1_uclock)
  | Eraser -> (module Lockset)

let detector ?(racy_fastpath = false) id =
  let p = plain id in
  if racy_fastpath then Racy_gate.wrap p else p

let sampling_engines = [ St; Su; So; O1; O1u ]

let run id ?racy_fastpath ?sampler ?clock_size ?limit trace =
  Detector.run (detector ?racy_fastpath id) ?sampler ?clock_size ?limit trace

let run_instrumented id ?sampler ?clock_size trace =
  Detector.run_instrumented (detector id) ?sampler ?clock_size trace
