type id = Djit | Fasttrack | Fasttrack_tc | St | Su | So | Sl | Sn | Eraser

let all = [ Djit; Fasttrack; Fasttrack_tc; St; Su; So; Sl; Sn ]

let name = function
  | Djit -> "djit"
  | Fasttrack -> "fasttrack"
  | Fasttrack_tc -> "fasttrack-tc"
  | St -> "st"
  | Su -> "su"
  | So -> "so"
  | Sl -> "sl"
  | Sn -> "su-noskip"
  | Eraser -> "eraser"

let of_name = function
  | "djit" -> Some Djit
  | "fasttrack" | "ft" -> Some Fasttrack
  | "fasttrack-tc" | "ft-tc" | "tc" -> Some Fasttrack_tc
  | "st" -> Some St
  | "su" -> Some Su
  | "so" -> Some So
  | "sl" | "so-nomtf" -> Some Sl
  | "su-noskip" | "sn" -> Some Sn
  | "eraser" | "lockset" -> Some Eraser
  | _ -> None

let plain : id -> Detector.packed = function
  | Djit -> (module Djitp)
  | Fasttrack -> (module Fasttrack)
  | Fasttrack_tc -> (module Fasttrack_tc)
  | St -> (module Sampling_naive)
  | Su -> (module Sampling_uclock)
  | So -> (module Sampling_ordered_list)
  | Sl -> (module Sampling_lazy)
  | Sn -> (module Sampling_uclock_noskip)
  | Eraser -> (module Lockset)

let detector ?(racy_fastpath = false) id =
  let p = plain id in
  if racy_fastpath then Racy_gate.wrap p else p

let sampling_engines = [ St; Su; So ]

let run id ?racy_fastpath ?sampler ?clock_size ?limit trace =
  Detector.run (detector ?racy_fastpath id) ?sampler ?clock_size ?limit trace

let run_instrumented id ?sampler ?clock_size trace =
  Detector.run_instrumented (detector id) ?sampler ?clock_size trace
