(** Simulated instrumentation cost — the ET component of §6.2.2.

    In ThreadSanitizer every instrumented access computes a shadow-memory
    address and inspects a group of shadow cells before (and independent of)
    any analysis logic; this is the overhead that remains when detection is
    compiled out (the paper's Empty-TSan baseline, ≈3.1× NT).  We model it
    with a shadow array of four cells per memory location (TSan's shadow
    cell group), touched on every access event, plus a one-cell metadata
    touch on sync events.

    The harness applies the {e same} instrumentation work to every
    configuration, so [AO(S) = latency(S) − latency(ET)] isolates exactly
    the analysis cost, as in the paper. *)

type t

val create : nlocs:int -> nlocks:int -> t

val touch : t -> Ft_trace.Event.t -> unit
(** Shadow work for one event. *)
