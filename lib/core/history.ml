type loc_state = {
  mutable write : Vector_clock.t option;
  mutable write_index : int;
  mutable read : Vector_clock.t option;
  mutable read_index : int array;  (* allocated together with [read] *)
}

type t = {
  locs : loc_state option array;
  clock_size : int;
}

let create ~nlocs ~clock_size =
  { locs = Array.make (Stdlib.max 1 nlocs) None; clock_size }

let state t x =
  match t.locs.(x) with
  | Some s -> s
  | None ->
    let s = { write = None; write_index = -1; read = None; read_index = [||] } in
    t.locs.(x) <- Some s;
    s

(* First entry of [h] strictly above the current timestamp, or -1. *)
let first_stale h ~bound =
  let n = Vector_clock.size h in
  let rec loop i =
    if i >= n then -1 else if Vector_clock.get h i > bound i then i else loop (i + 1)
  in
  loop 0

let stale_write t x clock ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.write with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Vector_clock.get clock i in
      if first_stale h ~bound < 0 then -1 else s.write_index)

let stale_read t x clock ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.read with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Vector_clock.get clock i in
      let offender = first_stale h ~bound in
      if offender < 0 then -1 else s.read_index.(offender))

let ol_stale_write t x olist ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.write with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Ordered_list.get olist i in
      if first_stale h ~bound < 0 then -1 else s.write_index)

let ol_stale_read t x olist ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.read with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Ordered_list.get olist i in
      let offender = first_stale h ~bound in
      if offender < 0 then -1 else s.read_index.(offender))

let write_clock t s =
  match s.write with
  | Some h -> h
  | None ->
    let h = Vector_clock.create t.clock_size in
    s.write <- Some h;
    h

let record_write_vc t x clock ~tid ~epoch ~index =
  let s = state t x in
  let h = write_clock t s in
  Vector_clock.copy_into ~into:h clock;
  Vector_clock.set h tid epoch;
  s.write_index <- index

let record_write_ol t x olist ~tid ~epoch ~index =
  let s = state t x in
  let h = write_clock t s in
  Ordered_list.iter olist (fun tid' time -> Vector_clock.set h tid' time);
  Vector_clock.set h tid epoch;
  s.write_index <- index

let encode enc t =
  Snap.Enc.int enc (Array.length t.locs);
  Array.iter
    (fun s ->
      Snap.Enc.option enc
        (fun s ->
          Snap.Enc.option enc (Vector_clock.encode enc) s.write;
          Snap.Enc.int enc s.write_index;
          Snap.Enc.option enc
            (fun r ->
              Vector_clock.encode enc r;
              Snap.Enc.int_array enc s.read_index)
            s.read)
        s)
    t.locs

let decode dec ~nlocs ~clock_size =
  let stored = Snap.Dec.int dec in
  let t = create ~nlocs ~clock_size in
  Snap.expect (stored = Array.length t.locs) "history location count mismatch";
  for x = 0 to stored - 1 do
    t.locs.(x) <-
      Snap.Dec.option dec (fun () ->
          let write = Snap.Dec.option dec (fun () -> Vector_clock.decode dec ~size:clock_size) in
          let write_index = Snap.Dec.int dec in
          let read = ref None and read_index = ref [||] in
          (match
             Snap.Dec.option dec (fun () ->
                 let r = Vector_clock.decode dec ~size:clock_size in
                 let ri = Snap.Dec.int_array_n dec clock_size in
                 (r, ri))
           with
          | None -> ()
          | Some (r, ri) ->
            read := Some r;
            read_index := ri);
          { write; write_index; read = !read; read_index = !read_index })
  done;
  t

let record_read t x ~tid ~epoch ~index =
  let s = state t x in
  let h =
    match s.read with
    | Some h -> h
    | None ->
      let h = Vector_clock.create t.clock_size in
      s.read <- Some h;
      s.read_index <- Array.make t.clock_size (-1);
      h
  in
  Vector_clock.set h tid epoch;
  s.read_index.(tid) <- index
