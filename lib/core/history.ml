(* Flat access histories for the vector-clock detectors.

   Per-location state lives in parallel int-indexed arrays rather than a
   per-location record behind an option: the access hot path does no option
   matching and no closure allocation (the stale loops are specialized over
   the two clock representations), and the write/read histories are plain
   int arrays scanned with unsafe accesses.  A zero-length array is the
   "no history yet" sentinel — real histories always have [clock_size]
   entries.

   On top sits the same-epoch fast-path cache.  Per location we remember the
   key of the last access whose race check came back clean, as
   [(epoch lsl 16) lor tid], together with the owning thread's version
   counter at that moment.  The engines bump a thread's version ([bump]) at
   every sync operation that touches its clock, so a cache entry is valid
   exactly while (a) the thread's timestamp is provably unchanged and (b) no
   other access rewrote the location's history (recording invalidates the
   caches of conflicting kinds).  A valid hit means the full O(T) check and
   the O(T) record are redundant: only the remembered trace index moves.
   Misses fall through to the exact seed-equivalent slow path, so a hit can
   only ever skip provably redundant work — verdicts and every other counter
   are unchanged (the byte-identity grid in test_fastpath pins this).

   Invariants carried by a valid cache entry (tid, epoch, ver):
   - rcache: the read-side check [C_x^w ⊑ C_t[t ↦ e]] was clean, and the
     read is recorded ([C_x^r(t) = e]).  Kept across a clean same-key write
     (the new [C_x^w = C_t[t ↦ e]] still satisfies it), killed by any other
     write to the location.
   - wcache: both write-side checks were clean, and the write history
     already equals [C_t[t ↦ e]].  Killed by any read that changes the read
     history and by any other write. *)

type t = {
  clock_size : int;
  write : int array array;  (* C_x^w; [||] = none *)
  windex : int array;       (* trace index behind C_x^w *)
  read : int array array;   (* C_x^r; [||] = none *)
  rindex : int array array; (* per-thread trace indices behind C_x^r *)
  tver : int array;         (* per-thread version, bumped at sync points *)
  rcache : int array;       (* same-epoch key of the last clean read, 0 = none *)
  rcache_ver : int array;
  wcache : int array;       (* same-epoch key of the last clean write, 0 = none *)
  wcache_ver : int array;
}

(* Unique per (epoch, tid) given tid < 2^16 — the same packing Epoch uses.
   Key 0 (epoch 0, thread 0) collides with the "empty" sentinel, which is
   sound: it can only turn a hit into a miss, never the reverse, because the
   version guard starts below any live [tver]. *)
let skey ~tid ~epoch = (epoch lsl 16) lor tid

let create ~nlocs ~clock_size =
  let n = Stdlib.max 1 nlocs in
  {
    clock_size;
    write = Array.make n [||];
    windex = Array.make n (-1);
    read = Array.make n [||];
    rindex = Array.make n [||];
    tver = Array.make clock_size 1;
    rcache = Array.make n 0;
    rcache_ver = Array.make n 0;
    wcache = Array.make n 0;
    wcache_ver = Array.make n 0;
  }

let bump t tid = t.tver.(tid) <- t.tver.(tid) + 1

let read_hit t x ~tid ~epoch ~index =
  t.rcache.(x) = skey ~tid ~epoch
  && t.rcache_ver.(x) = t.tver.(tid)
  &&
  (t.rindex.(x).(tid) <- index;
   true)

let write_hit t x ~tid ~epoch ~index =
  t.wcache.(x) = skey ~tid ~epoch
  && t.wcache_ver.(x) = t.tver.(tid)
  &&
  (t.windex.(x) <- index;
   true)

(* The stale loops inline the bound [clock[tid ↦ epoch]] instead of taking
   it as a closure — one comparison per entry, no allocation. *)

let stale_write t x clock ~tid ~epoch =
  let h = t.write.(x) in
  let n = Array.length h in
  let rec loop i =
    if i >= n then -1
    else
      let b = if i = tid then epoch else Vector_clock.get clock i in
      if Array.unsafe_get h i > b then t.windex.(x) else loop (i + 1)
  in
  loop 0

let stale_read t x clock ~tid ~epoch =
  let h = t.read.(x) in
  let n = Array.length h in
  let rec loop i =
    if i >= n then -1
    else
      let b = if i = tid then epoch else Vector_clock.get clock i in
      if Array.unsafe_get h i > b then t.rindex.(x).(i) else loop (i + 1)
  in
  loop 0

(* DJIT+ always passes [epoch = C_t(t)], so the bound [clock[tid ↦ epoch]]
   is the clock itself — these variants drop the per-entry substitution
   branch from the hottest loops. *)

let stale_write_plain t x clock =
  let h = t.write.(x) in
  let n = Array.length h in
  let rec loop i =
    if i >= n then -1
    else if Array.unsafe_get h i > Vector_clock.get clock i then t.windex.(x)
    else loop (i + 1)
  in
  loop 0

let stale_read_plain t x clock =
  let h = t.read.(x) in
  let n = Array.length h in
  let rec loop i =
    if i >= n then -1
    else if Array.unsafe_get h i > Vector_clock.get clock i then t.rindex.(x).(i)
    else loop (i + 1)
  in
  loop 0

let stale_both_plain t x clock =
  let hr = t.read.(x) and hw = t.write.(x) in
  if Array.length hr = 0 then (-1, stale_write_plain t x clock)
  else if Array.length hw = 0 then (stale_read_plain t x clock, -1)
  else begin
    let n = Array.length hr in
    let ri = t.rindex.(x) and wi = t.windex.(x) in
    let rec loop i pr pw =
      if (pr >= 0 && pw >= 0) || i >= n then (pr, pw)
      else begin
        let b = Vector_clock.get clock i in
        let pr =
          if pr < 0 && Array.unsafe_get hr i > b then Array.unsafe_get ri i
          else pr
        in
        let pw = if pw < 0 && Array.unsafe_get hw i > b then wi else pw in
        loop (i + 1) pr pw
      end
    in
    loop 0 (-1) (-1)
  end

(* Fused write-path traversal: both the stale-read and stale-write verdicts
   in one pass, evaluating the bound [clock[tid ↦ epoch]] once per entry
   instead of once per loop.  Returns [(pr, pw)] exactly as the two
   separate loops would: [pr] is the per-thread index behind the {e first}
   stale read entry, [pw] the location's write index if {e any} write entry
   is stale.  Early-exits once both are resolved. *)
let stale_both t x clock ~tid ~epoch =
  let hr = t.read.(x) and hw = t.write.(x) in
  if Array.length hr = 0 then (-1, stale_write t x clock ~tid ~epoch)
  else if Array.length hw = 0 then (stale_read t x clock ~tid ~epoch, -1)
  else begin
    let n = Array.length hr in
    let ri = t.rindex.(x) and wi = t.windex.(x) in
    let rec loop i pr pw =
      if (pr >= 0 && pw >= 0) || i >= n then (pr, pw)
      else begin
        let b = if i = tid then epoch else Vector_clock.get clock i in
        let pr =
          if pr < 0 && Array.unsafe_get hr i > b then Array.unsafe_get ri i
          else pr
        in
        let pw = if pw < 0 && Array.unsafe_get hw i > b then wi else pw in
        loop (i + 1) pr pw
      end
    in
    loop 0 (-1) (-1)
  end

let ol_stale_write t x olist ~tid ~epoch =
  let h = t.write.(x) in
  let n = Array.length h in
  let rec loop i =
    if i >= n then -1
    else
      let b = if i = tid then epoch else Ordered_list.get olist i in
      if Array.unsafe_get h i > b then t.windex.(x) else loop (i + 1)
  in
  loop 0

let ol_stale_read t x olist ~tid ~epoch =
  let h = t.read.(x) in
  let n = Array.length h in
  let rec loop i =
    if i >= n then -1
    else
      let b = if i = tid then epoch else Ordered_list.get olist i in
      if Array.unsafe_get h i > b then t.rindex.(x).(i) else loop (i + 1)
  in
  loop 0

let ol_stale_both t x olist ~tid ~epoch =
  let hr = t.read.(x) and hw = t.write.(x) in
  if Array.length hr = 0 then (-1, ol_stale_write t x olist ~tid ~epoch)
  else if Array.length hw = 0 then (ol_stale_read t x olist ~tid ~epoch, -1)
  else begin
    let n = Array.length hr in
    let ri = t.rindex.(x) and wi = t.windex.(x) in
    let rec loop i pr pw =
      if (pr >= 0 && pw >= 0) || i >= n then (pr, pw)
      else begin
        let b = if i = tid then epoch else Ordered_list.get olist i in
        let pr =
          if pr < 0 && Array.unsafe_get hr i > b then Array.unsafe_get ri i
          else pr
        in
        let pw = if pw < 0 && Array.unsafe_get hw i > b then wi else pw in
        loop (i + 1) pr pw
      end
    in
    loop 0 (-1) (-1)
  end

let write_clock t x =
  let h = t.write.(x) in
  if Array.length h > 0 then h
  else begin
    let h = Array.make t.clock_size 0 in
    t.write.(x) <- h;
    h
  end

let record_write_vc t x clock ~tid ~epoch ~index ~clean =
  let h = write_clock t x in
  Vector_clock.blit_into clock h;
  Array.unsafe_set h tid epoch;
  t.windex.(x) <- index;
  let k = skey ~tid ~epoch in
  if clean then begin
    t.wcache.(x) <- k;
    t.wcache_ver.(x) <- t.tver.(tid);
    (* C_x^w changed: a clean-read entry survives only if it is this very
       (tid, epoch) — the fresh [C_t[t ↦ e]] trivially satisfies its own
       read-side check *)
    if t.rcache.(x) <> k then t.rcache.(x) <- 0
  end
  else begin
    t.wcache.(x) <- 0;
    t.rcache.(x) <- 0
  end

let record_write_ol t x olist ~tid ~epoch ~index ~clean =
  let h = write_clock t x in
  Ordered_list.iter olist (fun tid' time -> Array.unsafe_set h tid' time);
  Array.unsafe_set h tid epoch;
  t.windex.(x) <- index;
  let k = skey ~tid ~epoch in
  if clean then begin
    t.wcache.(x) <- k;
    t.wcache_ver.(x) <- t.tver.(tid);
    if t.rcache.(x) <> k then t.rcache.(x) <- 0
  end
  else begin
    t.wcache.(x) <- 0;
    t.rcache.(x) <- 0
  end

let record_read t x ~tid ~epoch ~index ~clean =
  let r =
    let r = t.read.(x) in
    if Array.length r > 0 then r
    else begin
      let r = Array.make t.clock_size 0 in
      t.read.(x) <- r;
      t.rindex.(x) <- Array.make t.clock_size (-1);
      r
    end
  in
  if Array.unsafe_get r tid <> epoch then begin
    Array.unsafe_set r tid epoch;
    (* C_x^r changed: a cached clean write-check on x may now be stale *)
    t.wcache.(x) <- 0
  end;
  t.rindex.(x).(tid) <- index;
  if clean then begin
    t.rcache.(x) <- skey ~tid ~epoch;
    t.rcache_ver.(x) <- t.tver.(tid)
  end
  else t.rcache.(x) <- 0

(* The codec carries the caches and version counters too: a restored run
   must count same_epoch_hits (and skip exactly the same work) as the
   uninterrupted run — the checkpoint-equivalence suite diffs the full
   metrics JSON, not just verdicts. *)
let encode enc t =
  let n = Array.length t.write in
  Snap.Enc.int enc n;
  for x = 0 to n - 1 do
    (if Array.length t.write.(x) = 0 then Snap.Enc.int enc 0
     else begin
       Snap.Enc.int enc 1;
       Snap.Enc.int_array enc t.write.(x)
     end);
    Snap.Enc.int enc t.windex.(x);
    if Array.length t.read.(x) = 0 then Snap.Enc.int enc 0
    else begin
      Snap.Enc.int enc 1;
      Snap.Enc.int_array enc t.read.(x);
      Snap.Enc.int_array enc t.rindex.(x)
    end
  done;
  Snap.Enc.int_array enc t.tver;
  Snap.Enc.int_array enc t.rcache;
  Snap.Enc.int_array enc t.rcache_ver;
  Snap.Enc.int_array enc t.wcache;
  Snap.Enc.int_array enc t.wcache_ver

let decode dec ~nlocs ~clock_size =
  let stored = Snap.Dec.int dec in
  let t = create ~nlocs ~clock_size in
  Snap.expect (stored = Array.length t.write) "history location count mismatch";
  let clock_entries a =
    Snap.expect (Array.length a = clock_size) "history clock width mismatch";
    Array.iter (fun v -> Snap.expect (v >= 0) "negative history entry") a;
    a
  in
  for x = 0 to stored - 1 do
    (match Snap.Dec.int dec with
    | 0 -> ()
    | 1 -> t.write.(x) <- clock_entries (Snap.Dec.int_array dec)
    | n -> raise (Snap.Corrupt (Printf.sprintf "bad history tag %d" n)));
    t.windex.(x) <- Snap.Dec.int dec;
    match Snap.Dec.int dec with
    | 0 -> ()
    | 1 ->
      t.read.(x) <- clock_entries (Snap.Dec.int_array dec);
      t.rindex.(x) <- Snap.Dec.int_array_n dec clock_size
    | n -> raise (Snap.Corrupt (Printf.sprintf "bad history tag %d" n))
  done;
  let into ~len dst =
    let a = Snap.Dec.int_array_n dec len in
    Array.blit a 0 dst 0 len
  in
  into ~len:clock_size t.tver;
  into ~len:stored t.rcache;
  into ~len:stored t.rcache_ver;
  into ~len:stored t.wcache;
  into ~len:stored t.wcache_ver;
  t
