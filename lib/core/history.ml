type loc_state = {
  mutable write : Vector_clock.t option;
  mutable write_index : int;
  mutable read : Vector_clock.t option;
  mutable read_index : int array;  (* allocated together with [read] *)
}

type t = {
  locs : loc_state option array;
  clock_size : int;
}

let create ~nlocs ~clock_size =
  { locs = Array.make (Stdlib.max 1 nlocs) None; clock_size }

let state t x =
  match t.locs.(x) with
  | Some s -> s
  | None ->
    let s = { write = None; write_index = -1; read = None; read_index = [||] } in
    t.locs.(x) <- Some s;
    s

(* First entry of [h] strictly above the current timestamp, or -1. *)
let first_stale h ~bound =
  let n = Vector_clock.size h in
  let rec loop i =
    if i >= n then -1 else if Vector_clock.get h i > bound i then i else loop (i + 1)
  in
  loop 0

let stale_write t x clock ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.write with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Vector_clock.get clock i in
      if first_stale h ~bound < 0 then -1 else s.write_index)

let stale_read t x clock ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.read with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Vector_clock.get clock i in
      let offender = first_stale h ~bound in
      if offender < 0 then -1 else s.read_index.(offender))

let ol_stale_write t x olist ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.write with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Ordered_list.get olist i in
      if first_stale h ~bound < 0 then -1 else s.write_index)

let ol_stale_read t x olist ~tid ~epoch =
  match t.locs.(x) with
  | None -> -1
  | Some s -> (
    match s.read with
    | None -> -1
    | Some h ->
      let bound i = if i = tid then epoch else Ordered_list.get olist i in
      let offender = first_stale h ~bound in
      if offender < 0 then -1 else s.read_index.(offender))

let write_clock t s =
  match s.write with
  | Some h -> h
  | None ->
    let h = Vector_clock.create t.clock_size in
    s.write <- Some h;
    h

let record_write_vc t x clock ~tid ~epoch ~index =
  let s = state t x in
  let h = write_clock t s in
  Vector_clock.copy_into ~into:h clock;
  Vector_clock.set h tid epoch;
  s.write_index <- index

let record_write_ol t x olist ~tid ~epoch ~index =
  let s = state t x in
  let h = write_clock t s in
  Ordered_list.iter olist (fun tid' time -> Vector_clock.set h tid' time);
  Vector_clock.set h tid epoch;
  s.write_index <- index

let record_read t x ~tid ~epoch ~index =
  let s = state t x in
  let h =
    match s.read with
    | Some h -> h
    | None ->
      let h = Vector_clock.create t.clock_size in
      s.read <- Some h;
      s.read_index <- Array.make t.clock_size (-1);
      h
  in
  Vector_clock.set h tid epoch;
  s.read_index.(tid) <- index
