(** Fine-grained work counters (§6.2.6, §A.1.2).

    Every detector owns one of these and bumps the counters relevant to it;
    the experiment harnesses read them to reproduce Figs 6–9.  All counters
    start at zero. *)

type t = {
  mutable events : int;          (** events processed *)
  mutable reads : int;
  mutable writes : int;
  mutable sampled_accesses : int;  (** |S| as realized on this trace *)
  mutable acquires : int;          (** acquire + acquire-load + join edges *)
  mutable releases : int;          (** release + release-store + fork edges *)
  mutable acquires_skipped : int;
      (** acquires whose freshness check avoided the O(T) join
          (Alg 3 line 7 false; Alg 4 line 7 false) *)
  mutable releases_processed : int;
      (** SU: releases that performed the O(T) copy; copy semantics makes
          this the Fig 8 numerator for SU *)
  mutable deep_copies : int;       (** SO: lazy copies materialized *)
  mutable shallow_copies : int;    (** SO: O(1) release hand-offs *)
  mutable vc_full_ops : int;       (** O(T) vector-clock traversals performed *)
  mutable entries_traversed : int; (** SO: ordered-list entries examined at acquires *)
  mutable entries_saved : int;
      (** SO: T − traversed, summed over non-skipped acquires (Fig 9) *)
  mutable race_checks : int;       (** access-history comparisons *)
  mutable races : int;             (** race declarations *)
  mutable same_epoch_hits : int;
      (** accesses answered by the same-epoch fast path: the location's last
          recorded check by this thread carries the same epoch and no sync
          has touched the thread's clock since, so the full history
          comparison is provably redundant and skipped.  Purely additive —
          every other counter is bumped exactly as if the slow path ran. *)
}

val create : unit -> t

val copy : t -> t

val field_count : int
(** Number of record fields, as seen by {!to_array}. *)

val to_array : t -> int array
(** Every counter, in declaration order — the serialization contract used by
    snapshots.  The guard test checks its length against the record's actual
    arity so that field drift breaks the suite, not the checkpoints. *)

val field_names : string array
(** Field names parallel to {!to_array} — the JSON/STATS renderers zip the
    two arrays, so every counter (including future ones) appears in every
    export or the startup assertion fires. *)

val to_json : t -> string
(** One flat JSON object, [{"events": 1, ...}], keys from {!field_names} in
    {!to_array} order. *)

val of_array : int array -> t option
(** Inverse of {!to_array}; [None] on arity mismatch. *)

val encode : Snap.Enc.t -> t -> unit
val decode : Snap.Dec.t -> t
(** Snapshot (de)serialization; [decode] raises [Snap.Corrupt] on arity
    mismatch. *)

val add : into:t -> t -> unit
(** Pointwise accumulation, for aggregating repeated runs. *)

val merge_shards : sync_baseline:t -> t array -> t
(** Exact counters of the equivalent unsharded run, from per-shard counters.

    Contract: each of the K shards saw every sync event (broadcast) but only
    its own accesses, so access-side counters sum exactly while sync-side
    work was performed K times; [sync_baseline] is the counter set of a
    detector fed only the broadcast sync stream (no accesses) and therefore
    counts exactly one replica's worth of the duplicated work.  The merge is
    pointwise [Σ shards − (K−1)·baseline] over {!to_array}, so every field —
    including future ones — is covered by the same formula.  With K = 1 the
    baseline cancels and the result equals the single shard.  Raises
    [Invalid_argument] on an empty shard array. *)

val acquire_total : t -> int
val release_total : t -> int

val acquires_skipped_ratio : t -> float
(** Skipped / total acquires (Fig 7). 0 when no acquires. *)

val releases_processed_ratio : t -> float
(** Processed (SU) / total releases (Fig 8). *)

val deep_copy_ratio : t -> float
(** Deep copies (SO) / total releases (Fig 8). *)

val saved_traversal_ratio : t -> float
(** SavedTraversals / AllTraversals over non-skipped acquires (Fig 9). *)

val sync_full_work_ratio : t -> float
(** Fraction of acquire+release events that triggered an O(T) traversal
    (Fig 6b). *)

val mean_entries_per_acquire : t -> float
(** Ordered-list entries examined per acquire, averaged over all acquires
    (Fig 6c). *)

val pp : Format.formatter -> t -> unit
