type config = {
  nthreads : int;
  nlocks : int;
  nlocs : int;
  clock_size : int;
  sampler : Sampler.t;
}

let config_of_trace ?(sampler = Sampler.all) ?clock_size (trace : Ft_trace.Trace.t) =
  let nthreads = trace.Ft_trace.Trace.nthreads in
  {
    nthreads;
    nlocks = trace.Ft_trace.Trace.nlocks;
    nlocs = trace.Ft_trace.Trace.nlocs;
    clock_size =
      (match clock_size with
      | None -> nthreads
      | Some s ->
        if s < nthreads then
          invalid_arg "Detector.config_of_trace: clock_size below thread count";
        s);
    sampler;
  }

type result = {
  engine : string;
  races : Race.t list;
  metrics : Metrics.t;
}

let racy_locations r = Race.locations r.races

module type S = sig
  type t

  val name : string
  val create : config -> t
  val handle : t -> int -> Ft_trace.Event.t -> unit
  val result : t -> result
  val races_rev : t -> Race.t list
  val note_sampled : t -> Ft_trace.Event.tid -> unit
  val snapshot : t -> Snap.t
  val restore : config -> Snap.t -> t
end

type packed = (module S)

let run (module D : S) ?sampler ?clock_size ?limit trace =
  let config = config_of_trace ?sampler ?clock_size trace in
  let d = D.create config in
  let n =
    match limit with
    | None -> Ft_trace.Trace.length trace
    | Some l -> Stdlib.min l (Ft_trace.Trace.length trace)
  in
  for i = 0 to n - 1 do
    D.handle d i (Ft_trace.Trace.get trace i)
  done;
  D.result d

(* The application's own per-event computation: the work the program under
   test does between instrumentation callbacks.  Every configuration —
   including the NT baseline — pays this identically, so relative latencies
   mirror the paper's whole-system measurements rather than bare analysis
   loops.  The constant is calibrated so that ET/NT lands near the paper's
   ≈3.1× on the DB workloads. *)
let app_work acc (e : Ft_trace.Event.t) =
  let payload =
    match e.Ft_trace.Event.op with
    | Ft_trace.Event.Read x | Ft_trace.Event.Write x -> x
    | Ft_trace.Event.Acquire l | Ft_trace.Event.Release l
    | Ft_trace.Event.Release_store l | Ft_trace.Event.Acquire_load l -> l
    | Ft_trace.Event.Fork u | Ft_trace.Event.Join u -> u
  in
  let x = acc lxor (payload * 0x9E3779B1) in
  let x = x + (e.Ft_trace.Event.thread lsl 5) in
  let x = (x lxor (x lsr 13)) * 0x85EBCA77 in
  (x lxor (x lsr 11)) land max_int

let run_instrumented (module D : S) ?sampler ?clock_size trace =
  let config = config_of_trace ?sampler ?clock_size trace in
  let d = D.create config in
  let instr =
    Instrumentation.create ~nlocs:trace.Ft_trace.Trace.nlocs
      ~nlocks:trace.Ft_trace.Trace.nlocks
  in
  let acc = ref 0 in
  Ft_trace.Trace.iteri
    (fun i e ->
      acc := app_work !acc e;
      Instrumentation.touch instr e;
      D.handle d i e)
    trace;
  ignore (Sys.opaque_identity !acc);
  D.result d

let replay_only trace =
  let acc = ref 0 in
  Ft_trace.Trace.iteri (fun _ e -> acc := app_work !acc e) trace;
  !acc

(* A no-op engine behind the same first-class-module dispatch as the real
   detectors, so ET and detector timings share the call overhead. *)
module Noop = struct
  type t = { mutable checksum : int }

  let name = "noop"
  let create (_ : config) = { checksum = 0 }

  let handle d _ (e : Ft_trace.Event.t) =
    d.checksum <- (d.checksum + e.Ft_trace.Event.thread) land max_int

  let result (_ : t) = { engine = name; races = []; metrics = Metrics.create () }
  let races_rev (_ : t) = []
  let note_sampled (_ : t) (_ : Ft_trace.Event.tid) = ()

  let snapshot d =
    let enc = Snap.Enc.create () in
    Snap.Enc.int enc d.checksum;
    Snap.Enc.to_snap enc

  let restore (_ : config) s =
    let dec = Snap.Dec.of_snap s in
    let checksum = Snap.Dec.int dec in
    Snap.Dec.finish dec;
    { checksum }
end

let replay_instrumented trace =
  ignore (run_instrumented (module Noop) trace);
  0
