(** SU — Algorithm 3: sampling timestamps plus the freshness timestamp.

    Every thread and lock carries, besides the [C_sam] clock, a freshness
    clock [U] counting component-updates of thread clocks (Eqs 8–10), and
    every lock remembers its last releaser [LR_ℓ].  An acquire whose lock
    carries nothing fresh — [U_ℓ(LR_ℓ) ≤ U_t(LR_ℓ)], sound by Prop 5 — is
    skipped entirely; a release whose thread communicated nothing new since
    the lock last saw it — [U_t(t) = U_ℓ(t)] — skips the O(T) copy.

    Release-stores on sync variables (appendix A.2) are never skipped on the
    release side: without a preceding acquire by the same thread the lock
    clock is not monotone and the skip would leave a stale snapshot behind.
    The acquire-side skip remains sound there and is kept. *)

include Detector.S

(** The implementation, parameterized by the release-side-skip policy; used
    to derive the {!Sampling_uclock_noskip} ablation without duplication. *)
module Make (_ : sig
  val name : string
  val release_skip : bool
end) : Detector.S

