(** Opt-in once-racy-stop-checking mode (the [--racy-fastpath] flag).

    Production detectors (EmbedSanitizer's [Racy] state, TSan's flushed
    shadow) stop analyzing a location after its first reported race: later
    reports on the same location are almost always duplicates, and skipping
    them removes the check entirely from the hot path.  This changes the
    verdict set — subsequent races on a racy location are {e not} reported,
    and work counters stop accumulating for skipped accesses — so the mode
    is a wrapper selected only behind the explicit flag, and is oracled
    separately from the byte-identity grid.

    Guarantees of [wrap (module D)]:
    - the first race declared per location is identical to [D]'s;
    - every access to a location with no declared race so far is handled by
      [D] exactly as without the wrapper;
    - snapshots are byte-compatible with [D]'s (the racy set is rebuilt from
      the decoded race reports on restore). *)

val wrap : Detector.packed -> Detector.packed
