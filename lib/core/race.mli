(** Race reports.

    A detector declares a race *at* an event: the current access conflicts
    with some earlier unordered access recorded in the location's access
    history (Alg 1/2, read/write handlers).  The access histories also
    remember the trace index of the event behind each entry, so reports can
    name a concrete earlier event ([prior]); the test suite verifies that
    every reported pair really is conflicting and HB-unordered. *)

type t = {
  index : int;  (** trace index of the event where the race was declared *)
  thread : Ft_trace.Event.tid;
  loc : Ft_trace.Event.loc;
  with_write : bool;  (** the write access history was unordered *)
  with_read : bool;   (** the read access history was unordered *)
  prior : int option;
      (** trace index of a conflicting earlier unordered access (the stale
          history entry that failed the check), when tracked *)
}

val make :
  index:int ->
  thread:Ft_trace.Event.tid ->
  loc:Ft_trace.Event.loc ->
  with_write:bool ->
  with_read:bool ->
  ?prior:int ->
  unit ->
  t

val locations : t list -> Ft_trace.Event.loc list
(** Distinct racy locations, sorted — the Fig 6(a) metric. *)

val indices : t list -> int list
(** Sorted event indices at which races were declared (for the ST ≡ SU ≡ SO
    equivalence checks of Lemmas 7 and 8). *)

val pairs : t list -> (int * int) list
(** The [(prior, index)] pairs of reports that carry a prior. *)

val encode : Snap.Enc.t -> t -> unit
val decode : Snap.Dec.t -> t

val encode_list : Snap.Enc.t -> t list -> unit
val decode_list : Snap.Dec.t -> t list
(** Length-prefixed, list order preserved — detectors keep races
    newest-first and a snapshot must restore exactly that order. *)

val pp : Format.formatter -> t -> unit
