(** Sampling strategies — who decides membership of the set S (§3, §6.1).

    The algorithms are agnostic to how S is chosen; the evaluation uses
    independent Bernoulli sampling of access events.  A sampler value is a
    {e specification}: engines materialize a fresh {!instance} per run via
    {!fresh}, so that one [Sampler.t] can be shared across repeated runs,
    engines and domains without strategies with per-run state (counting
    tables, decaying probabilities) leaking decisions from one run into the
    next — the apples-to-apples requirement of the paper's offline
    experiments (§A.1.1).

    Only access events (reads/writes) are ever queried; synchronization
    events are never part of S. *)

type t

type decide = int -> Ft_trace.Event.t -> bool

type instance = {
  decide : decide;
      (** One run's materialized decision function.  [decide index event] —
          is this access event in S?  Instances of stateful strategies
          assume each access event is queried exactly once, in trace order
          (all engines here do). *)
  save : Snap.Enc.t -> unit;
      (** Serialize the instance's private state (the counting tables of
          {!cold_region}/{!adaptive}; a bare tag for stateless strategies)
          into a detector snapshot. *)
  load : Snap.Dec.t -> unit;
      (** Replace the instance's state with a saved one; raises
          [Snap.Corrupt] when the payload does not match the strategy's
          state shape.  After [load], the instance makes exactly the
          decisions the saved instance would have made on the remaining
          events. *)
}

val name : t -> string

val fresh : t -> instance
(** A new instance with its own private state.  Two instances of the same
    sampler fed the same queries in the same order make identical
    decisions. *)

val query : instance -> int -> Ft_trace.Event.t -> bool
(** [query inst i e] is [inst.decide i e]. *)

val decide : t -> int -> Ft_trace.Event.t -> bool
(** [decide s index event] queries a single instance shared by all [decide]
    calls on [s].  Fine for stateless strategies; for {!cold_region} and
    {!adaptive} prefer {!fresh} (one instance per run) — the shared instance
    accumulates state across every caller. *)

val bernoulli : rate:float -> seed:int -> t
(** Each access sampled independently with probability [rate]; decisions are
    a pure hash of [(seed, index)]. *)

val hash01 : int -> int -> float
(** [hash01 seed index]: the stateless splitmix64-round hash in [0,1) behind
    {!bernoulli} and {!adaptive}, exposed so the conformance suite can pin
    its exact values (sampling decisions — and therefore verdicts — depend
    on every bit). Allocation-free. *)

val all : t
(** Sample everything — the 100%-rate engines of the appendix. *)

val none : t

val fixed : bool array -> t
(** Membership given explicitly per event index (litmus executions). *)

val every_nth : int -> t
(** Deterministic systematic sampling: indices divisible by [n]. *)

val by_location : (Ft_trace.Event.loc -> bool) -> name:string -> t
(** Sample all accesses to selected memory locations — the RaceMob-style
    static sample sets mentioned in §3. *)

val windowed : period:int -> duty:float -> t
(** Pacer-style alternating sampling and non-sampling periods (§3, §7):
    within every window of [period] consecutive events, the first
    [duty × period] are sampled.  Pure in the event index. *)

val cold_region : threshold:int -> t
(** LiteRace-style cold-region sampling: every memory location is sampled
    for its first [threshold] accesses and never afterwards — the
    cold-region hypothesis says races hide in rarely executed code.
    Stateful per {!instance}: every {!fresh} call starts the access counts
    from zero, so repeated runs see identical sample sets. *)

val fixed_count : k:int -> length:int -> seed:int -> t
(** RPT-style sampling (§7): exactly [min k length] event indices drawn
    uniformly without replacement from [\[0, length)].  Requires the trace
    length up front (RPT likewise budgets a constant number of samples per
    execution). *)

val adaptive : base_rate:int -> t
(** LiteRace's decaying variant: location [x]'s sampling probability starts
    at 1 and halves every [base_rate] accesses to [x], with a 0.1% floor.
    Same per-instance statefulness as {!cold_region}. *)

val to_sampled_array : t -> Ft_trace.Trace.t -> bool array
(** Materialize S over a trace with a fresh instance (for oracles and
    reporting). *)
