(** Sampling strategies — who decides membership of the set S (§3, §6.1).

    The algorithms are agnostic to how S is chosen; the evaluation uses
    independent Bernoulli sampling of access events.  A sampler is a pure
    function of the event's trace index, so that every engine analysing the
    same trace with the same seed sees exactly the same set S regardless of
    the order or number of queries — the apples-to-apples requirement of the
    paper's offline experiments (§A.1.1).

    Only access events (reads/writes) are ever queried; synchronization
    events are never part of S. *)

type t

val name : t -> string

val decide : t -> int -> Ft_trace.Event.t -> bool
(** [decide s index event] — is this access event in S? *)

val bernoulli : rate:float -> seed:int -> t
(** Each access sampled independently with probability [rate]; decisions are
    a pure hash of [(seed, index)]. *)

val all : t
(** Sample everything — the 100%-rate engines of the appendix. *)

val none : t

val fixed : bool array -> t
(** Membership given explicitly per event index (litmus executions). *)

val every_nth : int -> t
(** Deterministic systematic sampling: indices divisible by [n]. *)

val by_location : (Ft_trace.Event.loc -> bool) -> name:string -> t
(** Sample all accesses to selected memory locations — the RaceMob-style
    static sample sets mentioned in §3. *)

val windowed : period:int -> duty:float -> t
(** Pacer-style alternating sampling and non-sampling periods (§3, §7):
    within every window of [period] consecutive events, the first
    [duty × period] are sampled.  Pure in the event index. *)

val cold_region : threshold:int -> t
(** LiteRace-style cold-region sampling: every memory location is sampled
    for its first [threshold] accesses and never afterwards — the
    cold-region hypothesis says races hide in rarely executed code.
    Stateful, but deterministic for any detector that queries each access
    event exactly once in trace order (all engines here do); the state is
    {e per sampler value}, so share one sampler across engines only via
    {!to_sampled_array}. *)

val fixed_count : k:int -> length:int -> seed:int -> t
(** RPT-style sampling (§7): exactly [min k length] event indices drawn
    uniformly without replacement from [\[0, length)].  Requires the trace
    length up front (RPT likewise budgets a constant number of samples per
    execution). *)

val adaptive : base_rate:int -> t
(** LiteRace's decaying variant: location [x]'s sampling probability starts
    at 1 and halves every [base_rate] accesses to [x], with a 0.1% floor.
    Same determinism caveat as {!cold_region}. *)

val to_sampled_array : t -> Ft_trace.Trace.t -> bool array
(** Materialize S over a trace (for oracles and reporting). *)
