include Sampling_o1.Make (struct
  let name = "o1-u"
  let uclock = true
end)
