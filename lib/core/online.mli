(** Online race monitoring.

    The detectors consume pre-recorded traces; this module wraps one behind
    a monitor suitable for {e live} event streams, the paper's actual
    deployment setting (§1: callbacks inserted at every event of interest):

    - events are validated incrementally against the semantics of §2 (lock
      ownership, fork/join lifecycle, sync-style consistency) — a violating
      event is rejected with an explanation instead of silently corrupting
      clock state;
    - races can be reported through a callback the moment they are declared;
    - the monitor can be queried at any time for races, racy locations and
      work metrics.

    The universe (threads/locks/locations) must be sized up front, as in
    TSan's fixed shadow state. *)

type t

type rejection = {
  event : Ft_trace.Event.t;
  reason : string;  (** why the event violates the execution semantics *)
}

val create :
  ?on_race:(Race.t -> unit) ->
  ?engine:Engine.id ->
  ?sampler:Sampler.t ->
  ?clock_size:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(t -> unit) ->
  nthreads:int ->
  nlocks:int ->
  nlocs:int ->
  unit ->
  t
(** [create ~nthreads ~nlocks ~nlocs ()] builds a monitor around [engine]
    (default {!Engine.So}) and [sampler] (default {!Sampler.all}).
    [on_race] fires synchronously at each race declaration.  When
    [checkpoint_every] is positive, [on_checkpoint] fires after every
    [checkpoint_every]-th accepted event — typically to call {!snapshot}
    and persist it. *)

val snapshot : t -> Snap.t
(** Serialize the monitor — validator state, event counters, and the
    underlying detector — into one opaque snapshot. *)

val restore :
  ?on_race:(Race.t -> unit) ->
  ?engine:Engine.id ->
  ?sampler:Sampler.t ->
  ?clock_size:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(t -> unit) ->
  nthreads:int ->
  nlocks:int ->
  nlocs:int ->
  Snap.t ->
  t
(** Rebuild a monitor from {!snapshot} output.  The configuration arguments
    must match the snapshotted monitor's (same engine, sampler strategy and
    universe sizes); callbacks are re-supplied since closures are not
    serialized.  Raises {!Snap.Corrupt} on malformed input. *)

val feed : t -> Ft_trace.Event.t -> (unit, rejection) result
(** Validate and process one event.  Rejected events leave the monitor's
    state untouched. *)

val feed_exn : t -> Ft_trace.Event.t -> unit
(** Like {!feed}; raises [Invalid_argument] on rejection. *)

val events_seen : t -> int

val races : t -> Race.t list
(** Races declared so far, in declaration order. *)

val racy_locations : t -> Ft_trace.Event.loc list

val metrics : t -> Metrics.t
(** Live work counters (shared with the underlying detector — read-only). *)

(** Convenience emitters mirroring {!Ft_trace.Trace.Builder}. *)
val read : t -> Ft_trace.Event.tid -> Ft_trace.Event.loc -> (unit, rejection) result
val write : t -> Ft_trace.Event.tid -> Ft_trace.Event.loc -> (unit, rejection) result
val acquire : t -> Ft_trace.Event.tid -> Ft_trace.Event.lock -> (unit, rejection) result
val release : t -> Ft_trace.Event.tid -> Ft_trace.Event.lock -> (unit, rejection) result
val fork : t -> parent:Ft_trace.Event.tid -> child:Ft_trace.Event.tid -> (unit, rejection) result
val join : t -> parent:Ft_trace.Event.tid -> child:Ft_trace.Event.tid -> (unit, rejection) result
