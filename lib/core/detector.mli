(** Common interface of all race-detection engines.

    A detector is created for a fixed universe (threads/locks/locations) and
    a sampler, consumes events in streaming fashion, and exposes its race
    reports and work counters.  The first-class-module plumbing keeps the
    per-event dispatch identical across engines, which matters for the
    latency experiments. *)

type config = {
  nthreads : int;
  nlocks : int;
  nlocs : int;
  clock_size : int;
      (** Number of entries in every vector clock / ordered list; at least
          [nthreads].  ThreadSanitizer v3 uses a fixed 256-entry clock
          (§6.2.6) regardless of the live thread count, which is what makes
          full traversals expensive and skipping them worthwhile; setting
          this reproduces that cost model.  Detection results are unaffected
          (padding entries stay 0 — checked by the test suite). *)
  sampler : Sampler.t;
}

val config_of_trace :
  ?sampler:Sampler.t -> ?clock_size:int -> Ft_trace.Trace.t -> config
(** Universe sizes from the trace; [sampler] defaults to {!Sampler.all} and
    [clock_size] to the trace's thread count. *)

type result = {
  engine : string;
  races : Race.t list;    (** in declaration order *)
  metrics : Metrics.t;
}

val racy_locations : result -> Ft_trace.Event.loc list

module type S = sig
  type t

  val name : string

  val create : config -> t

  val handle : t -> int -> Ft_trace.Event.t -> unit
  (** [handle d index event].  Indices must be fed in increasing order; they
      key the sampling decision. *)

  val result : t -> result

  val races_rev : t -> Race.t list
  (** Races declared so far, newest first, without copying — O(1).  The
      online monitor peels freshly declared races off the head instead of
      re-walking the full (reversed) list of {!result}. *)

  val note_sampled : t -> Ft_trace.Event.tid -> unit
  (** [note_sampled d t] applies the {e thread-local} state effect of a
      sampled access by thread [t] without touching any location state: for
      the sampling engines (ST/SU/SO and ablations) it sets the thread's
      pending bit, so the next release/fork/join flushes the local epoch
      exactly as if the access had been handled; for engines whose access
      handlers only touch per-location state (DJIT+, FastTrack, the lockset
      baseline) it is a no-op.  This is the hook location sharding rests on:
      a shard that never sees another shard's accesses still evolves the
      same clocks, provided the router forwards one [note_sampled] per
      pending-bit transition (the bit is idempotent until the next flush).
      Never called by single-stream runners. *)

  val snapshot : t -> Snap.t
  (** Serialize the complete detector state — clocks, epochs, access
      histories, sampler state, metrics, race reports, and (for SO) the
      ordered lists' recency order and the lazy-copy sharing structure — so
      that [restore]d state is behaviourally indistinguishable from the
      original on any event suffix. *)

  val restore : config -> Snap.t -> t
  (** Rebuild a detector from a snapshot taken with the same configuration.
      The sampler in [config] must be the same strategy the snapshotted run
      used (samplers are specifications, not serializable closures — the
      snapshot carries only their mutable per-instance state).  Raises
      [Snap.Corrupt] when the payload is malformed or does not fit the
      configuration's universe sizes. *)
end

type packed = (module S)

val run :
  packed ->
  ?sampler:Sampler.t ->
  ?clock_size:int ->
  ?limit:int ->
  Ft_trace.Trace.t ->
  result
(** Create, feed the whole trace (or its first [limit] events), collect the
    result.  [limit] models the paper's fixed-time-budget runs: a slower
    configuration gets through a shorter prefix of the workload (§6.2.5). *)

val run_instrumented :
  packed -> ?sampler:Sampler.t -> ?clock_size:int -> Ft_trace.Trace.t -> result
(** Like {!run}, but every event additionally pays the simulated
    instrumentation cost ({!Instrumentation}); this is how the latency
    harness times detectors so that [latency − ET] isolates analysis cost. *)

val replay_only : Ft_trace.Trace.t -> int
(** Iterate the trace calling no handlers (the NT baseline of §6.2.2);
    returns a checksum so the loop cannot be optimized away. *)

val replay_instrumented : Ft_trace.Trace.t -> int
(** Iterate the trace paying only the instrumentation cost (the ET
    baseline: instrumented, no detection). *)
