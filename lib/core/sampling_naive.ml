module E = Ft_trace.Event
module Vc = Vector_clock

type t = {
  nthreads : int;
  sample : Sampler.instance;
  clocks : Vc.t array;           (* C_t, initialized to ⊥ *)
  epochs : int array;            (* e_t, initialized to 1 *)
  pending : bool array;          (* sampled event since the last release? *)
  lock_clocks : Vc.t option array;
  history : History.t;
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = "st"

let create (cfg : Detector.config) =
  {
    nthreads = cfg.Detector.clock_size;
    sample = Sampler.fresh cfg.Detector.sampler;
    clocks = Array.init cfg.Detector.clock_size (fun _ -> Vc.create cfg.Detector.clock_size);
    epochs = Array.make cfg.Detector.clock_size 1;
    pending = Array.make cfg.Detector.clock_size false;
    lock_clocks = Array.make (Stdlib.max 1 cfg.Detector.nlocks) None;
    history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:cfg.Detector.clock_size;
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

let lock_clock d l =
  match d.lock_clocks.(l) with
  | Some c -> c
  | None ->
    let c = Vc.create d.nthreads in
    d.lock_clocks.(l) <- Some c;
    c

(* First release after a sampled event: flush the local epoch into the
   thread clock and advance it (Alg 2, release handler). *)
let flush_pending d t =
  if d.pending.(t) then begin
    Vc.set d.clocks.(t) t d.epochs.(t);
    d.epochs.(t) <- d.epochs.(t) + 1;
    d.pending.(t) <- false
  end

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  let ct = d.clocks.(t) in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      let epoch = d.epochs.(t) in
      if History.read_hit d.history x ~tid:t ~epoch ~index then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        let pw = History.stale_write d.history x ct ~tid:t ~epoch in
        if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
        History.record_read d.history x ~tid:t ~epoch ~index ~clean:(pw < 0)
      end;
      d.pending.(t) <- true
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let epoch = d.epochs.(t) in
      if History.write_hit d.history x ~tid:t ~epoch ~index then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        let pr, pw = History.stale_both d.history x ct ~tid:t ~epoch in
        if pr >= 0 || pw >= 0 then
          declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
            ~prior:(if pw >= 0 then pw else pr);
        History.record_write_vc d.history x ct ~tid:t ~epoch ~index
          ~clean:(pr < 0 && pw < 0)
      end;
      d.pending.(t) <- true
    end
  | E.Acquire l | E.Acquire_load l ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (match d.lock_clocks.(l) with
    | None -> ()
    | Some cl ->
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      History.bump d.history t;
      Vc.join ~into:ct cl)
  | E.Release l | E.Release_store l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    Vc.copy_into ~into:(lock_clock d l) ct
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    History.bump d.history u;
    Vc.join ~into:d.clocks.(u) ct
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    (* the child's end-of-thread acts as its final release: flush its pending
       sampled epoch so the parent inherits the child's latest accesses *)
    flush_pending d u;
    History.bump d.history t;
    Vc.join ~into:ct d.clocks.(u)

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Sharding hook: the thread-local half of a sampled access.  Idempotent
   until the next flush, exactly like the bit it sets. *)
let note_sampled d t = d.pending.(t) <- true

let snapshot d =
  let enc = Snap.Enc.create () in
  d.sample.Sampler.save enc;
  Array.iter (Vc.encode enc) d.clocks;
  Snap.Enc.int_array enc d.epochs;
  Snap.Enc.bool_array enc d.pending;
  Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
  History.encode enc d.history;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  let n = d.nthreads in
  d.sample.Sampler.load dec;
  for t = 0 to Array.length d.clocks - 1 do
    d.clocks.(t) <- Vc.decode dec ~size:n
  done;
  let epochs = Snap.Dec.int_array_n dec n in
  Array.blit epochs 0 d.epochs 0 n;
  let pending = Snap.Dec.bool_array_n dec n in
  Array.blit pending 0 d.pending 0 n;
  for l = 0 to Array.length d.lock_clocks - 1 do
    d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
  done;
  let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with history; metrics }
