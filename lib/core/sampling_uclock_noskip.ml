include Sampling_uclock.Make (struct
  let name = "su-noskip"
  let release_skip = false
end)
