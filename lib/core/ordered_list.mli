(** The ordered-list timestamp of §5.

    An ordered list stores a vector timestamp in a doubly linked list whose
    node order records *recency of update*: {!set} and {!increment} move the
    touched node to the head in O(1).  By Proposition 6, if a reader's
    freshness lag behind the writer is [d], only the first [d] nodes can hold
    entries the reader does not already know — so an acquire traverses a
    [d]-prefix instead of the whole vector (Alg 4, line 10).

    Representation: each thread owns exactly one node, so nodes are indexed
    by thread id and the list is three int arrays plus a head index.  A deep
    copy is O(T) and preserves the recency order; a shallow copy is O(1)
    reference sharing, resolved lazily by the detector (the [shared] flag
    lives in the detector, not here). *)

type t

val create : int -> t
(** [create n]: the ⊥ timestamp over [n] threads.  Initial order is
    [0 < 1 < … < n−1] from head to tail (arbitrary, as all entries are 0). *)

val size : t -> int

val get : t -> int -> int
(** O(1); does not change the order. *)

val set : t -> int -> int -> unit
(** [set o t v] stores [v] and moves [t]'s node to the head. O(1). *)

val increment : t -> int -> int -> unit
(** [increment o t k] adds [k] and moves [t]'s node to the head. O(1). *)

val deep_copy : t -> t
(** Fresh structure with identical values *and identical order*. O(T). *)

val iter_prefix : t -> int -> (int -> int -> unit) -> unit
(** [iter_prefix o d f] applies [f tid time] to the first [min d T] nodes,
    head first — the [O_ℓ[0:d]] traversal of Alg 4. *)

val iter : t -> (int -> int -> unit) -> unit
(** All nodes, head first. *)

val leq_vc : t -> Vector_clock.t -> bool
(** Pointwise [⊑] against a plain vector clock. O(T). *)

val vc_leq : Vector_clock.t -> t -> bool
(** [vc_leq v o] is [v ⊑ o]. O(T). *)

val to_vc : t -> Vector_clock.t
(** Snapshot as a plain vector clock. O(T). *)

val order : t -> int list
(** Thread ids from head to tail (tests and pretty-printing). *)

val check_invariants : t -> bool
(** Structural sanity: the node chain is a permutation of all thread ids and
    forward/backward links agree.  For tests. *)

val encode : Snap.Enc.t -> t -> unit

val decode : Snap.Dec.t -> size:int -> t
(** Rebuilds the list from its values and head-to-tail permutation; the
    recency order is restored exactly.  Raises [Snap.Corrupt] on length
    mismatch, negative entries, or a non-permutation order. *)

val pp : Format.formatter -> t -> unit
(** Renders head-to-tail as [[t3:7 t0:2 …]]. *)
