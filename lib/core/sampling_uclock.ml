module E = Ft_trace.Event
module Vc = Vector_clock

(* The implementation is a functor over the release-side-skip policy so that
   the ablation engine ("su-noskip") shares every line except the one
   decision Lemma 7 attributes to the freshness timestamp at releases. *)
module Make (Policy : sig
  val name : string
  val release_skip : bool
end) =
struct
type t = {
  nthreads : int;
  sample : Sampler.instance;
  clocks : Vc.t array;           (* C_t *)
  uclocks : Vc.t array;          (* U_t *)
  epochs : int array;            (* e_t *)
  pending : bool array;
  lock_clocks : Vc.t option array;   (* C_ℓ *)
  lock_uclocks : Vc.t option array;  (* U_ℓ *)
  lock_lr : int array;               (* LR_ℓ, -1 = NIL *)
  history : History.t;
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = Policy.name

let create (cfg : Detector.config) =
  let n = cfg.Detector.clock_size in
  let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
  {
    nthreads = n;
    sample = Sampler.fresh cfg.Detector.sampler;
    clocks = Array.init n (fun _ -> Vc.create n);
    uclocks = Array.init n (fun _ -> Vc.create n);
    epochs = Array.make n 1;
    pending = Array.make n false;
    lock_clocks = Array.make nlocks None;
    lock_uclocks = Array.make nlocks None;
    lock_lr = Array.make nlocks (-1);
    history = History.create ~nlocs:cfg.Detector.nlocs ~clock_size:n;
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

let flush_pending d t =
  if d.pending.(t) then begin
    Vc.set d.clocks.(t) t d.epochs.(t);
    Vc.inc d.uclocks.(t) t;
    d.epochs.(t) <- d.epochs.(t) + 1;
    d.pending.(t) <- false
  end

(* Copy the releasing thread's C and U clocks into the lock. *)
let publish d t l =
  let m = d.metrics in
  m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
  m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
  (match d.lock_clocks.(l) with
  | Some cl -> Vc.copy_into ~into:cl d.clocks.(t)
  | None -> d.lock_clocks.(l) <- Some (Vc.copy d.clocks.(t)));
  match d.lock_uclocks.(l) with
  | Some ul -> Vc.copy_into ~into:ul d.uclocks.(t)
  | None -> d.lock_uclocks.(l) <- Some (Vc.copy d.uclocks.(t))

(* Join a source (C, U) pair into thread [t], counting C-entry changes into
   U_t(t) (Alg 3, lines 8–12).  The two joins are fused into one traversal:
   they range over the same indices and fusing halves the loop overhead of
   the handler's hot path. *)
let absorb d t ~src_c ~src_u =
  let m = d.metrics in
  m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
  let ut = d.uclocks.(t) and ct = d.clocks.(t) in
  let changed = ref 0 in
  for i = 0 to Vc.size ct - 1 do
    let u = Vc.get src_u i in
    if u > Vc.get ut i then Vc.set ut i u;
    let c = Vc.get src_c i in
    if c > Vc.get ct i then begin
      Vc.set ct i c;
      incr changed
    end
  done;
  if !changed > 0 then Vc.set ut t (Vc.get ut t + !changed)

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  let ct = d.clocks.(t) in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      let epoch = d.epochs.(t) in
      if History.read_hit d.history x ~tid:t ~epoch ~index then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        let pw = History.stale_write d.history x ct ~tid:t ~epoch in
        if pw >= 0 then declare d index t x ~with_write:true ~with_read:false ~prior:pw;
        History.record_read d.history x ~tid:t ~epoch ~index ~clean:(pw < 0)
      end;
      d.pending.(t) <- true
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let epoch = d.epochs.(t) in
      if History.write_hit d.history x ~tid:t ~epoch ~index then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        let pr, pw = History.stale_both d.history x ct ~tid:t ~epoch in
        if pr >= 0 || pw >= 0 then
          declare d index t x ~with_write:(pw >= 0) ~with_read:(pr >= 0)
            ~prior:(if pw >= 0 then pw else pr);
        History.record_write_vc d.history x ct ~tid:t ~epoch ~index
          ~clean:(pr < 0 && pw < 0)
      end;
      d.pending.(t) <- true
    end
  | E.Acquire l | E.Acquire_load l -> (
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    match d.lock_lr.(l) with
    | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
    | lr ->
      let ul = Option.get d.lock_uclocks.(l) in
      if Vc.get ul lr <= Vc.get d.uclocks.(t) lr then
        m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      else begin
        History.bump d.history t;
        absorb d t ~src_c:(Option.get d.lock_clocks.(l)) ~src_u:ul
      end)
  | E.Release l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    d.lock_lr.(l) <- t;
    flush_pending d t;
    (match d.lock_uclocks.(l) with
    | Some ul when Policy.release_skip && Vc.get ul t = Vc.get d.uclocks.(t) t ->
      (* the lock already carries this thread's latest information *)
      ()
    | Some _ | None -> publish d t l)
  | E.Release_store l ->
    (* non-monotonic lock clock: the release-side skip is unsound here *)
    m.Metrics.releases <- m.Metrics.releases + 1;
    d.lock_lr.(l) <- t;
    flush_pending d t;
    publish d t l
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    flush_pending d t;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
    History.bump d.history u;
    Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
    let changed = Vc.join_count ~into:d.clocks.(u) ct in
    if changed > 0 then Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + changed)
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (* the child's end-of-thread acts as its final release: flush its pending
       sampled epoch so the parent inherits the child's latest accesses *)
    flush_pending d u;
    History.bump d.history t;
    absorb d t ~src_c:d.clocks.(u) ~src_u:d.uclocks.(u)

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Sharding hook: the thread-local half of a sampled access.  Idempotent
   until the next flush, exactly like the bit it sets. *)
let note_sampled d t = d.pending.(t) <- true

let snapshot d =
  let enc = Snap.Enc.create () in
  d.sample.Sampler.save enc;
  Array.iter (Vc.encode enc) d.clocks;
  Array.iter (Vc.encode enc) d.uclocks;
  Snap.Enc.int_array enc d.epochs;
  Snap.Enc.bool_array enc d.pending;
  Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
  Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_uclocks;
  Snap.Enc.int_array enc d.lock_lr;
  History.encode enc d.history;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  let n = d.nthreads in
  d.sample.Sampler.load dec;
  for t = 0 to Array.length d.clocks - 1 do
    d.clocks.(t) <- Vc.decode dec ~size:n
  done;
  for t = 0 to Array.length d.uclocks - 1 do
    d.uclocks.(t) <- Vc.decode dec ~size:n
  done;
  let epochs = Snap.Dec.int_array_n dec n in
  Array.blit epochs 0 d.epochs 0 n;
  let pending = Snap.Dec.bool_array_n dec n in
  Array.blit pending 0 d.pending 0 n;
  for l = 0 to Array.length d.lock_clocks - 1 do
    d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
  done;
  for l = 0 to Array.length d.lock_uclocks - 1 do
    d.lock_uclocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
  done;
  let lock_lr = Snap.Dec.int_array_n dec (Array.length d.lock_lr) in
  Array.iteri
    (fun l lr ->
      Snap.expect (lr >= -1 && lr < n) "lock releaser out of range";
      d.lock_lr.(l) <- lr)
    lock_lr;
  let history = History.decode dec ~nlocs:cfg.Detector.nlocs ~clock_size:n in
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with history; metrics }

end

include Make (struct
  let name = "su"
  let release_skip = true
end)
