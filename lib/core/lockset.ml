module E = Ft_trace.Event
module IntSet = Set.Make (Int)

type loc_state =
  | Virgin
  | Exclusive of int  (** owning thread *)
  | Shared of IntSet.t
  | Shared_modified of IntSet.t
  | Reported

type t = {
  sample : Sampler.instance;
  held : IntSet.t array;      (* locks held per thread *)
  states : loc_state array;
  write_index : int array;    (* last write per location, for the report *)
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = "eraser"

let create (cfg : Detector.config) =
  {
    sample = Sampler.fresh cfg.Detector.sampler;
    held = Array.make cfg.Detector.clock_size IntSet.empty;
    states = Array.make (Stdlib.max 1 cfg.Detector.nlocs) Virgin;
    write_index = Array.make (Stdlib.max 1 cfg.Detector.nlocs) (-1);
    metrics = Metrics.create ();
    races = [];
  }

let report d index t x ~is_write =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if d.write_index.(x) >= 0 then Some d.write_index.(x) else None in
  d.races <-
    Race.make ~index ~thread:t ~loc:x ~with_write:is_write ~with_read:(not is_write) ?prior ()
    :: d.races;
  d.states.(x) <- Reported

let access d index t x ~is_write =
  let locks = d.held.(t) in
  (match d.states.(x) with
  | Reported -> ()
  | Virgin -> d.states.(x) <- Exclusive t
  | Exclusive owner when owner = t -> ()
  | Exclusive _ ->
    (* second thread: C(v) is refined from "all locks" to the current
       lockset, and entering Shared-Modified with an empty set warns *)
    if is_write then
      if IntSet.is_empty locks then report d index t x ~is_write
      else d.states.(x) <- Shared_modified locks
    else d.states.(x) <- Shared locks
  | Shared candidates ->
    let candidates = IntSet.inter candidates locks in
    if is_write then
      if IntSet.is_empty candidates then report d index t x ~is_write
      else d.states.(x) <- Shared_modified candidates
    else d.states.(x) <- Shared candidates
  | Shared_modified candidates ->
    let candidates = IntSet.inter candidates locks in
    if IntSet.is_empty candidates then report d index t x ~is_write
    else d.states.(x) <- Shared_modified candidates);
  if is_write && d.states.(x) <> Reported then d.write_index.(x) <- index

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      access d index t x ~is_write:false
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      access d index t x ~is_write:true
    end
  | E.Acquire l | E.Acquire_load l ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    d.held.(t) <- IntSet.add l d.held.(t)
  | E.Release l | E.Release_store l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    d.held.(t) <- IntSet.remove l d.held.(t)
  | E.Fork _ | E.Join _ ->
    (* Eraser has no notion of happens-before: fork/join are invisible,
       which is exactly where its false positives come from *)
    ()

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Accesses never touch the held-lock state, so sharding needs no replay. *)
let note_sampled (_ : t) (_ : int) = ()

let encode_set enc s = Snap.Enc.list enc (Snap.Enc.int enc) (IntSet.elements s)

let decode_set dec =
  let xs = Snap.Dec.list dec (fun () -> Snap.Dec.int dec) in
  List.iter (fun l -> Snap.expect (l >= 0) "negative lock in lockset") xs;
  IntSet.of_list xs

let encode_state enc = function
  | Virgin -> Snap.Enc.int enc 0
  | Exclusive t ->
    Snap.Enc.int enc 1;
    Snap.Enc.int enc t
  | Shared s ->
    Snap.Enc.int enc 2;
    encode_set enc s
  | Shared_modified s ->
    Snap.Enc.int enc 3;
    encode_set enc s
  | Reported -> Snap.Enc.int enc 4

let decode_state dec =
  match Snap.Dec.int dec with
  | 0 -> Virgin
  | 1 ->
    let t = Snap.Dec.int dec in
    Snap.expect (t >= 0) "negative owner thread";
    Exclusive t
  | 2 -> Shared (decode_set dec)
  | 3 -> Shared_modified (decode_set dec)
  | 4 -> Reported
  | n -> raise (Snap.Corrupt (Printf.sprintf "bad location state tag %d" n))

let snapshot d =
  let enc = Snap.Enc.create () in
  d.sample.Sampler.save enc;
  Array.iter (encode_set enc) d.held;
  Array.iter (encode_state enc) d.states;
  Snap.Enc.int_array enc d.write_index;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  d.sample.Sampler.load dec;
  for t = 0 to Array.length d.held - 1 do
    d.held.(t) <- decode_set dec
  done;
  for x = 0 to Array.length d.states - 1 do
    d.states.(x) <- decode_state dec
  done;
  let w_index = Snap.Dec.int_array_n dec (Array.length d.write_index) in
  Array.blit w_index 0 d.write_index 0 (Array.length w_index);
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with metrics }
