type decide = int -> Ft_trace.Event.t -> bool

(* An instance carries its decision function plus snapshot hooks: stateless
   strategies save an empty tag; counting strategies (cold_region, adaptive)
   save their per-location tables, so a checkpointed run resumes with
   exactly the sampling decisions the uninterrupted run would make. *)
type instance = {
  decide : decide;
  save : Snap.Enc.t -> unit;
  load : Snap.Dec.t -> unit;
}

type t = {
  name : string;
  make : unit -> instance;
  (* cached instance backing [decide]; stateful strategies mutate it, so it
     must never be shared with an engine run (those call [fresh]) *)
  mutable shared : instance option;
}

let name s = s.name
let fresh s = s.make ()
let query inst i e = inst.decide i e

let tag_stateless = 0
let tag_counts = 1

let stateless_instance f =
  {
    decide = f;
    save = (fun enc -> Snap.Enc.int enc tag_stateless);
    load =
      (fun dec ->
        Snap.expect (Snap.Dec.int dec = tag_stateless) "sampler state tag mismatch");
  }

(* Per-instance counting table behind both LiteRace-style strategies.  The
   snapshot is the table as sorted pairs — sorted so the encoding is
   canonical and prefix-equivalence tests can compare bytes. *)
let counts_instance mk_decide =
  let counts = Hashtbl.create 256 in
  {
    decide = mk_decide counts;
    save =
      (fun enc ->
        Snap.Enc.int enc tag_counts;
        let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] in
        let pairs = List.sort compare pairs in
        Snap.Enc.list enc
          (fun (k, v) ->
            Snap.Enc.int enc k;
            Snap.Enc.int enc v)
          pairs);
    load =
      (fun dec ->
        Snap.expect (Snap.Dec.int dec = tag_counts) "sampler state tag mismatch";
        Hashtbl.reset counts;
        List.iter
          (fun (k, v) ->
            Snap.expect (v >= 0) "negative sampler count";
            Hashtbl.replace counts k v)
          (Snap.Dec.list dec (fun () ->
               let k = Snap.Dec.int dec in
               let v = Snap.Dec.int dec in
               (k, v))));
  }

let decide s i e =
  let inst =
    match s.shared with
    | Some f -> f
    | None ->
      let f = s.make () in
      s.shared <- Some f;
      f
  in
  inst.decide i e

(* A strategy whose decisions carry no mutable state: one instance serves
   every run. *)
let stateless name f =
  let inst = stateless_instance f in
  { name; make = (fun () -> inst); shared = Some inst }

(* Stateless hash of (seed, index): one splitmix64 round.

   Computed over two 32-bit limbs held in native ints rather than Int64:
   every Int64 intermediate boxes, and [bernoulli]/[adaptive] call this once
   per access, which made the hash the dominant allocation of low-rate runs.
   Bit-exact with the Int64 formulation — test_conformance compares the two
   over a large (seed, index) grid, so sampling decisions (and therefore
   verdicts) cannot drift. *)
let mask32 = 0xFFFFFFFF

(* (a * b) mod 2^32 for 32-bit a, b, without overflowing the 63-bit int *)
let[@inline] mul32 a b =
  ((a * (b land 0xFFFF)) + (((a * (b lsr 16)) land 0xFFFF) lsl 16)) land mask32

(* low and high 32-bit limbs of the full 64-bit product (ah:al) * (bh:bl) *)
let[@inline] mul64_lo al bl =
  let t0 = (al land 0xFFFF) * bl in
  ((t0 land mask32) + ((((al lsr 16) * bl) land 0xFFFF) lsl 16)) land mask32

let[@inline] mul64_hi ah al bh bl =
  let t0 = (al land 0xFFFF) * bl in
  let t1 = (al lsr 16) * bl in
  let u = (t0 land mask32) + ((t1 land 0xFFFF) lsl 16) in
  ((t0 lsr 32) + (t1 lsr 16) + (u lsr 32) + mul32 al bh + mul32 ah bl) land mask32

let hash01 seed index =
  let c1h = 0x9E3779B9 and c1l = 0x7F4A7C15 in
  let c2h = 0xBF58476D and c2l = 0x1CE4E5B9 in
  let c3h = 0x94D049BB and c3l = 0x133111EB in
  let i1 = index + 1 in
  let il = i1 land mask32 and ih = (i1 asr 32) land mask32 in
  (* z = seed + (index + 1) * c1 *)
  let ml = mul64_lo il c1l and mh = mul64_hi ih il c1h c1l in
  let s = (seed land mask32) + ml in
  let zl = s land mask32 in
  let zh = (((seed asr 32) land mask32) + mh + (s lsr 32)) land mask32 in
  (* z = (z lxor (z lsr 30)) * c2 *)
  let xl = zl lxor (((zl lsr 30) lor (zh lsl 2)) land mask32) in
  let xh = zh lxor (zh lsr 30) in
  let zl = mul64_lo xl c2l and zh = mul64_hi xh xl c2h c2l in
  (* z = (z lxor (z lsr 27)) * c3 *)
  let xl = zl lxor (((zl lsr 27) lor (zh lsl 5)) land mask32) in
  let xh = zh lxor (zh lsr 27) in
  let zl = mul64_lo xl c3l and zh = mul64_hi xh xl c3h c3l in
  (* z = z lxor (z lsr 31); top 53 bits to a float in [0,1) *)
  let xl = zl lxor (((zl lsr 31) lor (zh lsl 1)) land mask32) in
  let xh = zh lxor (zh lsr 31) in
  let v = ((xh lsr 11) * 0x100000000) + (((xl lsr 11) lor ((xh land 0x7FF) lsl 21)) land mask32) in
  float_of_int v /. 9007199254740992.0

let bernoulli ~rate ~seed =
  stateless
    (Printf.sprintf "bernoulli(%.4g%%,seed=%d)" (100.0 *. rate) seed)
    (fun i _ -> hash01 seed i < rate)

let all = stateless "all" (fun _ _ -> true)
let none = stateless "none" (fun _ _ -> false)

let fixed mask =
  stateless "fixed" (fun i _ -> i < Array.length mask && mask.(i))

let every_nth n =
  assert (n > 0);
  stateless (Printf.sprintf "every_nth(%d)" n) (fun i _ -> i mod n = 0)

let by_location pred ~name =
  stateless name (fun _ e ->
      match Ft_trace.Event.accessed_loc e with Some x -> pred x | None -> false)

let windowed ~period ~duty =
  assert (period > 0 && duty >= 0.0 && duty <= 1.0);
  let on = int_of_float (Float.round (duty *. float_of_int period)) in
  stateless
    (Printf.sprintf "windowed(period=%d,duty=%.2g)" period duty)
    (fun i _ -> i mod period < on)

let access_count tbl x =
  let c = try Hashtbl.find tbl x with Not_found -> 0 in
  Hashtbl.replace tbl x (c + 1);
  c

let cold_region ~threshold =
  assert (threshold > 0);
  {
    name = Printf.sprintf "cold_region(threshold=%d)" threshold;
    make =
      (fun () ->
        counts_instance (fun counts _ e ->
            match Ft_trace.Event.accessed_loc e with
            | None -> false
            | Some x -> access_count counts x < threshold));
    shared = None;
  }

let fixed_count ~k ~length ~seed =
  assert (k >= 0 && length >= 0);
  let prng = Ft_support.Prng.create ~seed in
  let indices = Array.init length Fun.id in
  Ft_support.Prng.shuffle prng indices;
  let chosen = Hashtbl.create (Stdlib.max 1 k) in
  for i = 0 to Stdlib.min k length - 1 do
    Hashtbl.replace chosen indices.(i) ()
  done;
  stateless
    (Printf.sprintf "fixed_count(k=%d,seed=%d)" k seed)
    (fun i _ -> Hashtbl.mem chosen i)

let adaptive ~base_rate =
  assert (base_rate > 0);
  {
    name = Printf.sprintf "adaptive(base_rate=%d)" base_rate;
    make =
      (fun () ->
        counts_instance (fun counts i e ->
            match Ft_trace.Event.accessed_loc e with
            | None -> false
            | Some x ->
              let c = access_count counts x in
              let p = Stdlib.max 0.001 (0.5 ** float_of_int (c / base_rate)) in
              hash01 (x + 1) i < p));
    shared = None;
  }

let to_sampled_array s trace =
  let inst = fresh s in
  Array.init (Ft_trace.Trace.length trace) (fun i ->
      let e = Ft_trace.Trace.get trace i in
      Ft_trace.Event.is_access e && inst.decide i e)
