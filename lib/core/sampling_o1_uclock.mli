(** O1-U — {!Sampling_o1} carrying Alg 3's freshness clocks: acquires whose
    lock holds nothing fresh and releases whose thread communicated nothing
    new are skipped, exactly as in {!Sampling_uclock}.  The skips never
    change clock contents, so the race report is byte-identical to O1's. *)

include Detector.S
