(** Eraser-style lockset analysis (Savage et al. 1997) — the classical
    {e unsound and incomplete} baseline the paper's related work contrasts
    HB detectors with (§7: "lockset-based race detectors … are lightweight
    but unsound").

    Each location carries the Eraser state machine
    (Virgin → Exclusive(t) → Shared → Shared-Modified) and a candidate
    lockset, intersected with the accessing thread's held locks; a warning
    fires when the candidate set of a Shared-Modified location empties.
    A location warns at most once.

    Included for comparison and teaching, not detection quality: the test
    suite exhibits both its false positives (fork/join-ordered accesses
    without common locks) and its false negatives are impossible — it
    over-approximates — while HB engines are exact for the observed trace.
    The sampler is honoured the same way as in the sampling engines: only
    sampled accesses update or check locksets.  Not a member of
    {!Engine.all}; reach it through {!Engine.of_name} ["eraser"]. *)

include Detector.S
