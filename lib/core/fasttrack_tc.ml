module E = Ft_trace.Event
module Vc = Vector_clock
module Tc = Tree_clock

type read_state = {
  mutable repoch : Epoch.t;
  mutable rindex : int;  (* trace index behind [repoch] *)
  mutable rvc : Vc.t option;
  mutable rvc_index : int array;  (* per-thread indices, allocated with [rvc] *)
}

type t = {
  csize : int;
  clocks : Tc.t array;
  lock_clocks : Tc.t option array;
  writes : Epoch.t array;
  w_index : int array;
  reads : read_state option array;
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = "fasttrack-tc"

let create (cfg : Detector.config) =
  let n = cfg.Detector.clock_size in
  let clocks =
    Array.init n (fun i ->
        let tc = Tc.create n ~owner:i in
        Tc.inc tc 1;
        tc)
  in
  {
    csize = n;
    clocks;
    lock_clocks = Array.make (Stdlib.max 1 cfg.Detector.nlocks) None;
    writes = Array.make (Stdlib.max 1 cfg.Detector.nlocs) Epoch.none;
    w_index = Array.make (Stdlib.max 1 cfg.Detector.nlocs) (-1);
    reads = Array.make (Stdlib.max 1 cfg.Detector.nlocs) None;
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

let epoch_leq_tc e tc = Epoch.time e <= Tc.get tc (Epoch.tid e)

let read_state d x =
  match d.reads.(x) with
  | Some r -> r
  | None ->
    let r = { repoch = Epoch.none; rindex = -1; rvc = None; rvc_index = [||] } in
    d.reads.(x) <- Some r;
    r

let lock_clock d l =
  match d.lock_clocks.(l) with
  | Some tc -> tc
  | None ->
    (* the owner is fixed up by the first monotone/force copy *)
    let tc = Tc.create d.csize ~owner:0 in
    d.lock_clocks.(l) <- Some tc;
    tc

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  let ct = d.clocks.(t) in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    let own = Epoch.make ~time:(Tc.get ct t) ~tid:t in
    let r = read_state d x in
    let same_epoch =
      match r.rvc with
      | None -> Epoch.equal r.repoch own
      | Some rv -> Vc.get rv t = Tc.get ct t
    in
    if same_epoch then m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
    else begin
      m.Metrics.race_checks <- m.Metrics.race_checks + 1;
      if not (epoch_leq_tc d.writes.(x) ct) then
        declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
      match r.rvc with
      | Some rv ->
        Vc.set rv t (Tc.get ct t);
        r.rvc_index.(t) <- index
      | None ->
        if Epoch.equal r.repoch Epoch.none || epoch_leq_tc r.repoch ct then begin
          r.repoch <- own;
          r.rindex <- index
        end
        else begin
          let rv = Vc.create d.csize in
          let ri = Array.make d.csize (-1) in
          Vc.set rv (Epoch.tid r.repoch) (Epoch.time r.repoch);
          ri.(Epoch.tid r.repoch) <- r.rindex;
          Vc.set rv t (Tc.get ct t);
          ri.(t) <- index;
          r.rvc <- Some rv;
          r.rvc_index <- ri
        end
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    let own = Epoch.make ~time:(Tc.get ct t) ~tid:t in
    if Epoch.equal d.writes.(x) own then
      m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
    else begin
      m.Metrics.race_checks <- m.Metrics.race_checks + 2;
      let pw = if epoch_leq_tc d.writes.(x) ct then -1 else d.w_index.(x) in
      let pr =
        match d.reads.(x) with
        | None -> -1
        | Some r -> (
          match r.rvc with
          | None -> if epoch_leq_tc r.repoch ct then -1 else r.rindex
          | Some rv ->
            m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
            let rec stale i =
              if i >= Vc.size rv then -1
              else if Vc.get rv i > Tc.get ct i then r.rvc_index.(i)
              else stale (i + 1)
            in
            stale 0)
      in
      let with_write = pw >= 0 and with_read = pr >= 0 in
      if with_write || with_read then
        declare d index t x ~with_write ~with_read
          ~prior:(if with_write then pw else pr);
      d.writes.(x) <- own;
      d.w_index.(x) <- index;
      match d.reads.(x) with
      | Some r when r.rvc <> None && not with_read ->
        r.rvc <- None;
        r.repoch <- Epoch.none
      | Some _ | None -> ()
    end
  | E.Acquire l | E.Acquire_load l ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (match d.lock_clocks.(l) with
    | None -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
    | Some ltc ->
      let changed = Tc.join_count ~into:ct ltc in
      m.Metrics.entries_traversed <- m.Metrics.entries_traversed + changed;
      if changed = 0 then m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      else m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1)
  | E.Release l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    let ltc = lock_clock d l in
    if Tc.get ltc t < Tc.get ct t then begin
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      Tc.monotone_copy ~into:ltc ct
    end;
    Tc.inc ct 1
  | E.Release_store l ->
    (* without a preceding acquire, the lock clock need not be ⊑ the
       thread's; fall back to the unconditional copy *)
    m.Metrics.releases <- m.Metrics.releases + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    Tc.force_copy ~into:(lock_clock d l) ct;
    Tc.inc ct 1
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    Tc.join ~into:d.clocks.(u) ct;
    Tc.inc ct 1
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
    Tc.join ~into:ct d.clocks.(u)

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Accesses never touch thread clocks here, so sharding needs no replay. *)
let note_sampled (_ : t) (_ : int) = ()

let encode_read_state enc (r : read_state) =
  Epoch.encode enc r.repoch;
  Snap.Enc.int enc r.rindex;
  Snap.Enc.option enc
    (fun rv ->
      Vc.encode enc rv;
      Snap.Enc.int_array enc r.rvc_index)
    r.rvc

let decode_read_state dec ~size =
  let repoch = Epoch.decode dec in
  let rindex = Snap.Dec.int dec in
  match
    Snap.Dec.option dec (fun () ->
        let rv = Vc.decode dec ~size in
        let ri = Snap.Dec.int_array_n dec size in
        (rv, ri))
  with
  | None -> { repoch; rindex; rvc = None; rvc_index = [||] }
  | Some (rv, ri) -> { repoch; rindex; rvc = Some rv; rvc_index = ri }

let snapshot d =
  let enc = Snap.Enc.create () in
  Array.iter (Tc.encode enc) d.clocks;
  Array.iter (fun c -> Snap.Enc.option enc (Tc.encode enc) c) d.lock_clocks;
  Array.iter (Epoch.encode enc) d.writes;
  Snap.Enc.int_array enc d.w_index;
  Array.iter (fun r -> Snap.Enc.option enc (encode_read_state enc) r) d.reads;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  let n = d.csize in
  for t = 0 to Array.length d.clocks - 1 do
    d.clocks.(t) <- Tc.decode dec ~size:n
  done;
  for l = 0 to Array.length d.lock_clocks - 1 do
    d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Tc.decode dec ~size:n)
  done;
  for x = 0 to Array.length d.writes - 1 do
    d.writes.(x) <- Epoch.decode dec
  done;
  let w_index = Snap.Dec.int_array_n dec (Array.length d.w_index) in
  Array.blit w_index 0 d.w_index 0 (Array.length w_index);
  for x = 0 to Array.length d.reads - 1 do
    d.reads.(x) <- Snap.Dec.option dec (fun () -> decode_read_state dec ~size:n)
  done;
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with metrics }
