(** SO — Algorithm 4: ordered lists plus lazy copy.

    Thread clocks are {!Ordered_list}s whose node order records update
    recency.  A release performs only an O(1) shallow copy — the lock shares
    the thread's list, remembering the releaser, its freshness scalar
    [U_ℓ = U_t(t)] and (local-epoch optimization, §6.1) the releaser's own
    clock component as a scalar, so that flushing the local epoch never
    forces a deep copy.  The thread deep-copies its list lazily, the first
    time it must mutate a shared list — which happens at most once per
    change of the sampling timestamp, i.e. O(|S|) times overall.

    An acquire that is not skipped traverses only the first
    [d = U_ℓ − U_t(LR_ℓ)] list entries: by Proposition 6 every entry the
    acquirer lacks was updated within the releaser's last [d] clock updates,
    and move-to-front keeps exactly those in the list prefix.

    Generic (non-nested) acquire/release pairs — release-stores — need no
    special case: lock state is a snapshot reference, never joined into. *)

include Detector.S
