(** SN — ablation engine: Algorithm 3 {e without} the release-side skip.

    Identical to {!Sampling_uclock} except that every mutex release copies
    the thread's C and U clocks into the lock even when the lock already
    carries the thread's latest information; comparing SN with SU isolates
    the contribution of the release-side freshness check (the
    ["redundant release"] skip of Lemma 7).  Race declarations are identical
    to ST/SU/SO. *)

include Detector.S
