module E = Ft_trace.Event

module Make (D : Detector.S) : Detector.S = struct
  type t = {
    inner : D.t;
    racy : Bytes.t;  (* one byte per location: 1 = stop checking *)
    (* physical head of the inner race list at the last handle; new races
       are the prefix up to this tail, so marking is O(new races) *)
    mutable seen : Race.t list;
  }

  let name = D.name

  let mark_new_races d =
    let rec mark = function
      | races when races == d.seen -> ()
      | [] -> ()
      | r :: rest ->
        Bytes.unsafe_set d.racy r.Race.loc '\001';
        mark rest
    in
    let head = D.races_rev d.inner in
    mark head;
    d.seen <- head

  let create (cfg : Detector.config) =
    {
      inner = D.create cfg;
      racy = Bytes.make (Stdlib.max 1 cfg.Detector.nlocs) '\000';
      seen = [];
    }

  let handle d index (e : E.t) =
    match e.E.op with
    | E.Read x | E.Write x when Bytes.unsafe_get d.racy x = '\001' -> ()
    | E.Read _ | E.Write _ ->
      D.handle d.inner index e;
      (* sync ops never declare; only accesses can extend the race list *)
      if D.races_rev d.inner != d.seen then mark_new_races d
    | _ -> D.handle d.inner index e

  let result d = D.result d.inner
  let races_rev d = D.races_rev d.inner
  let note_sampled d t = D.note_sampled d.inner t
  let snapshot d = D.snapshot d.inner

  let restore cfg s =
    let inner = D.restore cfg s in
    let d =
      { inner; racy = Bytes.make (Stdlib.max 1 cfg.Detector.nlocs) '\000'; seen = [] }
    in
    (* the racy set is exactly the locations with a declared race *)
    mark_new_races d;
    d
end

let wrap (p : Detector.packed) : Detector.packed =
  let module D = (val p : Detector.S) in
  (module Make (D) : Detector.S)
