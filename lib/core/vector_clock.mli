(** Vector clocks over a fixed thread universe (§2.1).

    A vector clock is a timestamp [Threads → ℕ]; [⊥] maps every thread to 0.
    All operations that traverse the full vector are O(T); the point of the
    paper is to avoid calling them. *)

type t

val create : int -> t
(** [create n] is [⊥] over [n] threads. *)

val size : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit

val inc : t -> int -> unit
(** [inc c t] bumps component [t] by one. *)

val join : into:t -> t -> unit
(** Pointwise maximum (Eq 4), written into [into]. O(T). *)

val join_count : into:t -> t -> int
(** Like {!join} but returns how many components of [into] changed — the
    quantity the freshness timestamp accumulates (Alg 3, line 12). O(T). *)

val copy_into : into:t -> t -> unit
(** [copy_into ~into src] overwrites [into] with [src]. O(T). *)

val blit_into : t -> int array -> unit
(** [blit_into c dst] copies every entry of [c] into the prefix of [dst]
    (a single memmove — the history record hot path). [dst] must be at
    least [size c] long. *)

val copy : t -> t

val leq : t -> t -> bool
(** Pointwise comparison [⊑] (Eq 3). O(T), with early exit. *)

val reset : t -> unit
(** Back to [⊥]. *)

val to_array : t -> int array
(** Fresh array snapshot (tests and pretty-printing). *)

val of_array : int array -> t

val encode : Snap.Enc.t -> t -> unit

val decode : Snap.Dec.t -> size:int -> t
(** Raises [Snap.Corrupt] unless exactly [size] non-negative entries. *)

val pp : Format.formatter -> t -> unit
(** Renders as [⟨a,b,…⟩]. *)
