module E = Ft_trace.Event
module Vc = Vector_clock

(* O(1)-samples detection: FastTrack's adaptive location state (last-write
   epoch, exclusive-read epoch, rare shared-read clocks) applied to the
   sampled subsequence, driven by the sampling-clock machinery of Alg 2/3 —
   ⊥-initialized thread clocks whose own component is externalized as the
   local epoch [e_t] and only flushed into the clock at the first release
   after a sampled access.

   Location state mirrors {!Fasttrack}: flat epoch/index arrays for the
   common exclusive case, out-of-line slot pools behind a {!Flat_table} for
   shared-mode read clocks, [shared_marker] stamping shared locations so the
   exclusive fast path never probes the table.  The one systematic change is
   the ordering check: a recorded epoch [c@u] is compared against
   [C_t[t ↦ e_t]] — the clock's own entry holds only the last *flushed*
   epoch, so same-thread ordering must consult [e_t] (cf. {!History}).

   The functor parameterizes the freshness-clock policy: the plain engine
   ("o1") uses Alg 2's sync handlers; the uclock variant ("o1-u") carries
   Alg 3's U-clocks and last-releaser tags and skips acquires and releases
   that would move no information, exactly as {!Sampling_uclock} does.  The
   skips never change clock contents, so both engines report byte-identical
   races. *)
module Make (Policy : sig
  val name : string
  val uclock : bool
end) =
struct
type t = {
  nthreads : int;
  sample : Sampler.instance;
  clocks : Vc.t array;           (* C_t, initialized to ⊥ *)
  uclocks : Vc.t array;          (* U_t; unused (length 0 clocks) without the policy *)
  epochs : int array;            (* e_t *)
  pending : bool array;          (* sampled event since the last flush? *)
  lock_clocks : Vc.t option array;   (* C_ℓ *)
  lock_uclocks : Vc.t option array;  (* U_ℓ *)
  lock_lr : int array;               (* LR_ℓ, -1 = NIL *)
  writes : Epoch.t array;              (* W_x: last sampled write *)
  w_index : int array;                 (* trace index behind W_x *)
  repoch : Epoch.t array;              (* R_x in exclusive mode *)
  rindex : int array;                  (* trace index behind repoch *)
  rshared : Flat_table.t;              (* loc -> slot, shared mode only *)
  mutable rvc_pool : Vc.t array;       (* slot -> read clock (epoch values) *)
  mutable rvc_index_pool : int array array;  (* slot -> per-thread indices *)
  mutable pool_len : int;
  mutable free_slots : int list;
  metrics : Metrics.t;
  mutable races : Race.t list;
}

let name = Policy.name

(* Reserved [repoch] value marking shared mode; see {!Fasttrack}.  Local
   epochs start at 1, so a real recorded epoch never has time 0. *)
let shared_marker = Epoch.make ~time:0 ~tid:0xFFFF

let create (cfg : Detector.config) =
  let n = cfg.Detector.clock_size in
  let nlocks = Stdlib.max 1 cfg.Detector.nlocks in
  let nlocs = Stdlib.max 1 cfg.Detector.nlocs in
  {
    nthreads = n;
    sample = Sampler.fresh cfg.Detector.sampler;
    clocks = Array.init n (fun _ -> Vc.create n);
    uclocks =
      (if Policy.uclock then Array.init n (fun _ -> Vc.create n) else [||]);
    epochs = Array.make n 1;
    pending = Array.make n false;
    lock_clocks = Array.make nlocks None;
    lock_uclocks = Array.make nlocks None;
    lock_lr = Array.make nlocks (-1);
    writes = Array.make nlocs Epoch.none;
    w_index = Array.make nlocs (-1);
    repoch = Array.make nlocs Epoch.none;
    rindex = Array.make nlocs (-1);
    rshared = Flat_table.create ();
    rvc_pool = [||];
    rvc_index_pool = [||];
    pool_len = 0;
    free_slots = [];
    metrics = Metrics.create ();
    races = [];
  }

let declare d index tid x ~with_write ~with_read ~prior =
  d.metrics.Metrics.races <- d.metrics.Metrics.races + 1;
  let prior = if prior < 0 then None else Some prior in
  d.races <- Race.make ~index ~thread:tid ~loc:x ~with_write ~with_read ?prior () :: d.races

(* [c@u ⊑ C_t[t ↦ e_t]].  Never fed [shared_marker] — its tid indexes past
   the clock; callers branch on it first. *)
let[@inline] leq_sub e ct ~t ~epoch =
  if Epoch.tid e = t then Epoch.time e <= epoch else Epoch.leq_vc e ct

let alloc_slot d =
  match d.free_slots with
  | s :: rest ->
    d.free_slots <- rest;
    Vc.reset d.rvc_pool.(s);
    Array.fill d.rvc_index_pool.(s) 0 d.nthreads (-1);
    s
  | [] ->
    if d.pool_len = Array.length d.rvc_pool then begin
      let cap = Stdlib.max 4 (d.pool_len * 2) in
      let rvc = Array.make cap (Vc.create 0) in
      let ri = Array.make cap [||] in
      Array.blit d.rvc_pool 0 rvc 0 d.pool_len;
      Array.blit d.rvc_index_pool 0 ri 0 d.pool_len;
      d.rvc_pool <- rvc;
      d.rvc_index_pool <- ri
    end;
    let s = d.pool_len in
    d.rvc_pool.(s) <- Vc.create d.nthreads;
    d.rvc_index_pool.(s) <- Array.make d.nthreads (-1);
    d.pool_len <- s + 1;
    s

let lock_clock d l =
  match d.lock_clocks.(l) with
  | Some c -> c
  | None ->
    let c = Vc.create d.nthreads in
    d.lock_clocks.(l) <- Some c;
    c

let flush_pending d t =
  if d.pending.(t) then begin
    Vc.set d.clocks.(t) t d.epochs.(t);
    if Policy.uclock then Vc.inc d.uclocks.(t) t;
    d.epochs.(t) <- d.epochs.(t) + 1;
    d.pending.(t) <- false
  end

(* Uclock-policy sync helpers, lifted from {!Sampling_uclock}. *)
let publish d t l =
  let m = d.metrics in
  m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
  m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
  (match d.lock_clocks.(l) with
  | Some cl -> Vc.copy_into ~into:cl d.clocks.(t)
  | None -> d.lock_clocks.(l) <- Some (Vc.copy d.clocks.(t)));
  match d.lock_uclocks.(l) with
  | Some ul -> Vc.copy_into ~into:ul d.uclocks.(t)
  | None -> d.lock_uclocks.(l) <- Some (Vc.copy d.uclocks.(t))

let absorb d t ~src_c ~src_u =
  let m = d.metrics in
  m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
  let ut = d.uclocks.(t) and ct = d.clocks.(t) in
  let changed = ref 0 in
  for i = 0 to Vc.size ct - 1 do
    let u = Vc.get src_u i in
    if u > Vc.get ut i then Vc.set ut i u;
    let c = Vc.get src_c i in
    if c > Vc.get ct i then begin
      Vc.set ct i c;
      incr changed
    end
  done;
  if !changed > 0 then Vc.set ut t (Vc.get ut t + !changed)

let handle d index (e : E.t) =
  let m = d.metrics in
  m.Metrics.events <- m.Metrics.events + 1;
  let t = e.E.thread in
  let ct = d.clocks.(t) in
  match e.E.op with
  | E.Read x ->
    m.Metrics.reads <- m.Metrics.reads + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      let epoch = d.epochs.(t) in
      let own = Epoch.make ~time:epoch ~tid:t in
      let re = d.repoch.(x) in
      if Epoch.equal re own then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else if Epoch.equal re shared_marker then begin
        let slot = Flat_table.find d.rshared x in
        let rv = d.rvc_pool.(slot) in
        if Vc.get rv t = epoch then
          m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
        else begin
          m.Metrics.race_checks <- m.Metrics.race_checks + 1;
          if not (leq_sub d.writes.(x) ct ~t ~epoch) then
            declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
          Vc.set rv t epoch;
          d.rvc_index_pool.(slot).(t) <- index
        end
      end
      else begin
        m.Metrics.race_checks <- m.Metrics.race_checks + 1;
        if not (leq_sub d.writes.(x) ct ~t ~epoch) then
          declare d index t x ~with_write:true ~with_read:false ~prior:d.w_index.(x);
        if leq_sub re ct ~t ~epoch then begin
          (* exclusive read; covers re = none, which every check admits *)
          d.repoch.(x) <- own;
          d.rindex.(x) <- index
        end
        else begin
          (* inflate to shared mode *)
          let s = alloc_slot d in
          let rv = d.rvc_pool.(s) and ri = d.rvc_index_pool.(s) in
          Vc.set rv (Epoch.tid re) (Epoch.time re);
          ri.(Epoch.tid re) <- d.rindex.(x);
          Vc.set rv t epoch;
          ri.(t) <- index;
          Flat_table.set d.rshared x s;
          d.repoch.(x) <- shared_marker
        end
      end;
      d.pending.(t) <- true
    end
  | E.Write x ->
    m.Metrics.writes <- m.Metrics.writes + 1;
    if d.sample.Sampler.decide index e then begin
      m.Metrics.sampled_accesses <- m.Metrics.sampled_accesses + 1;
      let epoch = d.epochs.(t) in
      let own = Epoch.make ~time:epoch ~tid:t in
      if Epoch.equal d.writes.(x) own then
        m.Metrics.same_epoch_hits <- m.Metrics.same_epoch_hits + 1
      else begin
        m.Metrics.race_checks <- m.Metrics.race_checks + 2;
        let pw =
          if leq_sub d.writes.(x) ct ~t ~epoch then -1 else d.w_index.(x)
        in
        if Epoch.equal d.repoch.(x) shared_marker then begin
          let slot = Flat_table.find d.rshared x in
          m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
          let rv = d.rvc_pool.(slot) in
          let rec stale i =
            if i >= Vc.size rv then -1
            else if Vc.get rv i > (if i = t then epoch else Vc.get ct i) then
              d.rvc_index_pool.(slot).(i)
            else stale (i + 1)
          in
          let pr = stale 0 in
          let with_write = pw >= 0 and with_read = pr >= 0 in
          if with_write || with_read then
            declare d index t x ~with_write ~with_read
              ~prior:(if with_write then pw else pr);
          d.writes.(x) <- own;
          d.w_index.(x) <- index;
          (* a successful shared-read check lets us fall back to epoch mode *)
          if not with_read then begin
            Flat_table.remove d.rshared x;
            d.free_slots <- slot :: d.free_slots;
            d.repoch.(x) <- Epoch.none
          end
        end
        else begin
          let pr =
            if leq_sub d.repoch.(x) ct ~t ~epoch then -1 else d.rindex.(x)
          in
          let with_write = pw >= 0 and with_read = pr >= 0 in
          if with_write || with_read then
            declare d index t x ~with_write ~with_read
              ~prior:(if with_write then pw else pr);
          d.writes.(x) <- own;
          d.w_index.(x) <- index
        end
      end;
      d.pending.(t) <- true
    end
  | E.Acquire l | E.Acquire_load l ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    if Policy.uclock then (
      match d.lock_lr.(l) with
      | -1 -> m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
      | lr ->
        let ul = Option.get d.lock_uclocks.(l) in
        if Vc.get ul lr <= Vc.get d.uclocks.(t) lr then
          m.Metrics.acquires_skipped <- m.Metrics.acquires_skipped + 1
        else absorb d t ~src_c:(Option.get d.lock_clocks.(l)) ~src_u:ul)
    else (
      match d.lock_clocks.(l) with
      | None -> ()
      | Some cl ->
        m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
        Vc.join ~into:ct cl)
  | E.Release l ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    if Policy.uclock then begin
      d.lock_lr.(l) <- t;
      match d.lock_uclocks.(l) with
      | Some ul when Vc.get ul t = Vc.get d.uclocks.(t) t ->
        (* the lock already carries this thread's latest information *)
        ()
      | Some _ | None -> publish d t l
    end
    else begin
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      Vc.copy_into ~into:(lock_clock d l) ct
    end
  | E.Release_store l ->
    (* non-monotonic lock clock: the release-side skip is unsound here *)
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    if Policy.uclock then begin
      d.lock_lr.(l) <- t;
      publish d t l
    end
    else begin
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      Vc.copy_into ~into:(lock_clock d l) ct
    end
  | E.Fork u ->
    m.Metrics.releases <- m.Metrics.releases + 1;
    flush_pending d t;
    if Policy.uclock then begin
      m.Metrics.releases_processed <- m.Metrics.releases_processed + 1;
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 2;
      Vc.join ~into:d.uclocks.(u) d.uclocks.(t);
      let changed = Vc.join_count ~into:d.clocks.(u) ct in
      if changed > 0 then Vc.set d.uclocks.(u) u (Vc.get d.uclocks.(u) u + changed)
    end
    else begin
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:d.clocks.(u) ct
    end
  | E.Join u ->
    m.Metrics.acquires <- m.Metrics.acquires + 1;
    (* the child's end-of-thread acts as its final release: flush its pending
       sampled epoch so the parent inherits the child's latest accesses *)
    flush_pending d u;
    if Policy.uclock then
      absorb d t ~src_c:d.clocks.(u) ~src_u:d.uclocks.(u)
    else begin
      m.Metrics.vc_full_ops <- m.Metrics.vc_full_ops + 1;
      Vc.join ~into:ct d.clocks.(u)
    end

let result d =
  { Detector.engine = name; races = List.rev d.races; metrics = d.metrics }

let races_rev d = d.races

(* Sharding hook: the thread-local half of a sampled access.  Idempotent
   until the next flush, exactly like the bit it sets. *)
let note_sampled d t = d.pending.(t) <- true

(* Shared-mode entries are written in ascending location order so equal
   detector states encode to equal bytes regardless of the table's probe
   history. *)
let snapshot d =
  let enc = Snap.Enc.create () in
  d.sample.Sampler.save enc;
  Array.iter (Vc.encode enc) d.clocks;
  if Policy.uclock then Array.iter (Vc.encode enc) d.uclocks;
  Snap.Enc.int_array enc d.epochs;
  Snap.Enc.bool_array enc d.pending;
  Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_clocks;
  if Policy.uclock then begin
    Array.iter (fun c -> Snap.Enc.option enc (Vc.encode enc) c) d.lock_uclocks;
    Snap.Enc.int_array enc d.lock_lr
  end;
  Array.iter (Epoch.encode enc) d.writes;
  Snap.Enc.int_array enc d.w_index;
  Array.iter (Epoch.encode enc) d.repoch;
  Snap.Enc.int_array enc d.rindex;
  let shared = ref [] in
  Flat_table.iter d.rshared (fun x s -> shared := (x, s) :: !shared);
  let shared = List.sort compare !shared in
  Snap.Enc.int enc (List.length shared);
  List.iter
    (fun (x, s) ->
      Snap.Enc.int enc x;
      Vc.encode enc d.rvc_pool.(s);
      Snap.Enc.int_array enc d.rvc_index_pool.(s))
    shared;
  Metrics.encode enc d.metrics;
  Race.encode_list enc d.races;
  Snap.Enc.to_snap enc

let restore (cfg : Detector.config) s =
  let d = create cfg in
  let dec = Snap.Dec.of_snap s in
  let n = d.nthreads in
  d.sample.Sampler.load dec;
  for t = 0 to Array.length d.clocks - 1 do
    d.clocks.(t) <- Vc.decode dec ~size:n
  done;
  if Policy.uclock then
    for t = 0 to Array.length d.uclocks - 1 do
      d.uclocks.(t) <- Vc.decode dec ~size:n
    done;
  let epochs = Snap.Dec.int_array_n dec n in
  Array.blit epochs 0 d.epochs 0 n;
  let pending = Snap.Dec.bool_array_n dec n in
  Array.blit pending 0 d.pending 0 n;
  for l = 0 to Array.length d.lock_clocks - 1 do
    d.lock_clocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
  done;
  if Policy.uclock then begin
    for l = 0 to Array.length d.lock_uclocks - 1 do
      d.lock_uclocks.(l) <- Snap.Dec.option dec (fun () -> Vc.decode dec ~size:n)
    done;
    let lock_lr = Snap.Dec.int_array_n dec (Array.length d.lock_lr) in
    Array.iteri
      (fun l lr ->
        Snap.expect (lr >= -1 && lr < n) "lock releaser out of range";
        d.lock_lr.(l) <- lr)
      lock_lr
  end;
  for x = 0 to Array.length d.writes - 1 do
    d.writes.(x) <- Epoch.decode dec
  done;
  let w_index = Snap.Dec.int_array_n dec (Array.length d.w_index) in
  Array.blit w_index 0 d.w_index 0 (Array.length w_index);
  for x = 0 to Array.length d.repoch - 1 do
    d.repoch.(x) <- Epoch.decode dec
  done;
  let rindex = Snap.Dec.int_array_n dec (Array.length d.rindex) in
  Array.blit rindex 0 d.rindex 0 (Array.length rindex);
  let nshared = Snap.Dec.int dec in
  Snap.expect (nshared >= 0 && nshared <= Array.length d.writes)
    "shared read count out of range";
  let prev = ref (-1) in
  for _ = 1 to nshared do
    let x = Snap.Dec.int dec in
    Snap.expect (x > !prev && x < Array.length d.writes)
      "shared read location out of order";
    prev := x;
    let slot = alloc_slot d in
    let rv = Vc.decode dec ~size:n in
    Vc.copy_into ~into:d.rvc_pool.(slot) rv;
    let ri = Snap.Dec.int_array_n dec n in
    Array.blit ri 0 d.rvc_index_pool.(slot) 0 n;
    Flat_table.set d.rshared x slot
  done;
  let metrics = Metrics.decode dec in
  d.races <- Race.decode_list dec;
  Snap.Dec.finish dec;
  { d with metrics }

end

include Make (struct
  let name = "o1"
  let uclock = false
end)
