(* Binary codec for detector snapshots.

   A snapshot payload is a flat byte string built from zigzag varints; the
   container format (magic, version, checksum) lives in Ft_snapshot, which
   also owns file I/O.  Everything here is hardened the same way the .ftb
   decoder is: a length prefix is checked against the bytes actually
   remaining before any allocation proportional to it, and every malformed
   read raises [Corrupt] — never an out-of-bounds access or an OOM. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let expect cond msg = if not cond then raise (Corrupt msg)

type t = string

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  (* zigzag-mapped LEB128, so small negative ints (the ubiquitous -1
     sentinels) stay one byte *)
  let int b n =
    let rec loop n =
      if n < 0x80 then Buffer.add_char b (Char.chr n)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (n land 0x7F)));
        loop (n lsr 7)
      end
    in
    loop ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let bool b v = int b (if v then 1 else 0)

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    int b (Array.length a);
    Array.iter (int b) a

  let bool_array b a =
    int b (Array.length a);
    Array.iter (bool b) a

  let option b f = function
    | None -> int b 0
    | Some v ->
      int b 1;
      f v

  let list b f xs =
    int b (List.length xs);
    List.iter f xs

  let to_snap = Buffer.contents
end

module Dec = struct
  type t = { data : string; mutable pos : int }

  let of_snap data = { data; pos = 0 }

  let remaining d = String.length d.data - d.pos

  let byte d =
    if d.pos >= String.length d.data then corrupt "truncated snapshot"
    else begin
      let c = Char.code (String.unsafe_get d.data d.pos) in
      d.pos <- d.pos + 1;
      c
    end

  let int d =
    let rec loop shift acc =
      if shift > 62 then corrupt "varint too long"
      else begin
        let b = byte d in
        let acc = acc lor ((b land 0x7F) lsl shift) in
        if b land 0x80 = 0 then acc else loop (shift + 7) acc
      end
    in
    let z = loop 0 0 in
    (z lsr 1) lxor (-(z land 1))

  let bool d =
    match int d with
    | 0 -> false
    | 1 -> true
    | n -> corrupt "bad boolean %d" n

  (* Every encoded element costs at least one byte, so a length that exceeds
     the remaining bytes is corrupt — checked before allocating. *)
  let length d =
    let n = int d in
    if n < 0 || n > remaining d then corrupt "bad length %d (%d bytes left)" n (remaining d)
    else n

  let string d =
    let n = length d in
    let s = String.sub d.data d.pos n in
    d.pos <- d.pos + n;
    s

  let int_array d = Array.init (length d) (fun _ -> int d)

  let int_array_n d n =
    let a = int_array d in
    expect (Array.length a = n)
      (Printf.sprintf "array length %d, expected %d" (Array.length a) n);
    a

  let bool_array d = Array.init (length d) (fun _ -> bool d)

  let bool_array_n d n =
    let a = bool_array d in
    expect (Array.length a = n)
      (Printf.sprintf "array length %d, expected %d" (Array.length a) n);
    a

  let option d f =
    match int d with
    | 0 -> None
    | 1 -> Some (f ())
    | n -> corrupt "bad option tag %d" n

  let list d f = List.init (length d) (fun _ -> f ())

  let finish d = expect (remaining d = 0) "trailing bytes after snapshot"
end
