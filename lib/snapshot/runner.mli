(** Resumable analyses: run a detection engine over a trace with periodic
    checkpoints, or resume one from a {!Checkpoint} written earlier.

    Both entry points share the contract that matters: an analysis that is
    checkpointed at event [k] and resumed produces {e exactly} the races,
    race order, and metrics of an uninterrupted run — snapshots capture all
    detector state, including sampler counting tables and the ordered-list
    sharing structure.

    A checkpoint that fails to load or validate (corrupt bytes, wrong
    engine/sampler/universe, truncation) is reported on stderr and the
    analysis {e falls back to a full replay}; the failure reason is surfaced
    in [resume_error].  The result is correct either way. *)

type outcome = {
  result : Ft_core.Detector.result;
  resumed_at : int option;  (** event index the run resumed from, if any *)
  resume_error : string option;
      (** why a requested resume fell back to full replay, if it did *)
  checkpoints_written : int;
}

val analyze_file :
  engine:Ft_core.Engine.id ->
  ?racy_fastpath:bool ->
  ?sampler:Ft_core.Sampler.t ->
  ?clock_size:int ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  string ->
  (outcome, string) result
(** Stream a .ftb file through [engine] without materializing the trace.
    With [checkpoint] and a positive [checkpoint_every], a checkpoint is
    (re)written after every [checkpoint_every]-th event, recording the .ftb
    byte offset so [resume] can seek directly to the suffix.  [sampler]
    must be the same strategy the checkpoint was taken with (validated by
    name).  [Error] is reserved for unusable inputs: unreadable or corrupt
    trace files, or a clock size below the thread count. *)

val analyze_trace :
  engine:Ft_core.Engine.id ->
  ?racy_fastpath:bool ->
  ?sampler:Ft_core.Sampler.t ->
  ?clock_size:int ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  Ft_trace.Trace.t ->
  (outcome, string) result
(** Same contract over an in-memory trace (e.g. parsed from the textual
    format).  Checkpoints record no byte offset ([-1]); resuming skips the
    prefix by index. *)
