(** Checkpoint files (.ftc) for resumable analyses.

    A checkpoint packages one engine snapshot ({!Ft_core.Detector.S.snapshot})
    together with the metadata needed to resume: which engine and sampler
    strategy produced it, the universe it was sized for, how many trace
    events it has consumed, and — for .ftb streaming analyses — the byte
    offset of the next undecoded event so a resumed run can seek instead of
    re-reading the prefix.

    Container layout:
    {v
    "FTCK"  version-byte  checksum(8 bytes, LE FNV-1a 64 of payload)  payload
    v}
    The payload is a {!Ft_core.Snap} encoding of the metadata followed by
    the engine snapshot.  Decoding never raises: bit flips are caught by the
    checksum, truncation by the checksum or the length-checked decoders, and
    format drift by the version byte — each yields [Error] with a
    description. *)

type meta = {
  engine : Ft_core.Engine.id;
  sampler : string;  (** {!Ft_core.Sampler.name} of the strategy in use *)
  nthreads : int;
  nlocks : int;
  nlocs : int;
  clock_size : int;
  next_index : int;  (** events already consumed; the resume point *)
  byte_offset : int;
      (** .ftb offset of the next undecoded event, or [-1] when the source
          is not a seekable binary trace *)
}

type t = { meta : meta; detector : Ft_core.Snap.t }

val fnv64 : string -> int64
(** The container's checksum primitive (FNV-1a 64) — shared with the
    cluster router's WAL framing so both on-disk formats validate bytes
    the same way. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Never raises; any corruption yields [Error]. *)

val save : string -> t -> unit
(** Write atomically {e and durably}: temp file, [fsync], rename, then
    [fsync] of the containing directory — so an interrupted checkpoint
    never clobbers the previous good one, and a completed one survives a
    power cut (a rename published without syncing the data first could
    leave a complete-looking name over page-cache-only bytes).  Carries the
    [checkpoint.write] injection point: a scheduled {!Ft_fault.Fault.Torn_write}
    writes a prefix of the temp file, skips the rename and raises
    {!Ft_fault.Fault.Injected}, leaving [path] untouched.  Raises
    [Sys_error]/[Unix.Unix_error] on real I/O failure. *)

val load : string -> (t, string) result
