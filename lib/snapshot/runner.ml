module Detector = Ft_core.Detector
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Snap = Ft_core.Snap
module Trace = Ft_trace.Trace
module Tb = Ft_trace.Trace_binary

type outcome = {
  result : Detector.result;
  resumed_at : int option;
  resume_error : string option;
  checkpoints_written : int;
}

let validate_meta (m : Checkpoint.meta) ~engine ~sampler ~nthreads ~nlocks ~nlocs
    ~clock_size ~nevents =
  if m.Checkpoint.engine <> engine then
    Error
      (Printf.sprintf "checkpoint was taken by engine %s, not %s"
         (Engine.name m.Checkpoint.engine) (Engine.name engine))
  else if m.Checkpoint.sampler <> Sampler.name sampler then
    Error
      (Printf.sprintf "checkpoint was taken with sampler %s, not %s" m.Checkpoint.sampler
         (Sampler.name sampler))
  else if
    m.Checkpoint.nthreads <> nthreads
    || m.Checkpoint.nlocks <> nlocks
    || m.Checkpoint.nlocs <> nlocs
  then Error "checkpoint universe does not match the trace"
  else if m.Checkpoint.clock_size <> clock_size then
    Error "checkpoint clock size does not match"
  else if m.Checkpoint.next_index > nevents then
    Error "checkpoint lies beyond the end of the trace"
  else Ok ()

let warn_fallback cp_path msg =
  Printf.eprintf "warning: cannot resume from %s: %s; replaying from the start\n%!" cp_path
    msg

let analyze_file ~engine ?(racy_fastpath = false) ?(sampler = Sampler.all) ?clock_size
    ?checkpoint ?(checkpoint_every = 0) ?resume path =
  match (try Ok (open_in_bin path) with Sys_error msg -> Error msg) with
  | Error msg -> Error msg
  | Ok ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match Tb.open_channel ic with
    | Error msg -> Error msg
    | Ok reader ->
      let h = Tb.header reader in
      let nthreads = h.Tb.nthreads
      and nlocks = h.Tb.nlocks
      and nlocs = h.Tb.nlocs
      and nevents = h.Tb.nevents in
      let clock_size = Option.value clock_size ~default:nthreads in
      if clock_size < nthreads then Error "clock size below thread count"
      else begin
        let config = { Detector.nthreads; nlocks; nlocs; clock_size; sampler } in
        let (module D : Detector.S) = Engine.detector ~racy_fastpath engine in
        let data_start = Tb.byte_pos reader in
        let try_resume cp_path =
          match Checkpoint.load cp_path with
          | Error _ as e -> e
          | Ok cp -> (
            let m = cp.Checkpoint.meta in
            match
              validate_meta m ~engine ~sampler ~nthreads ~nlocks ~nlocs ~clock_size
                ~nevents
            with
            | Error _ as e -> e
            | Ok () -> (
              match
                try Ok (D.restore config cp.Checkpoint.detector)
                with Snap.Corrupt msg -> Error ("corrupt checkpoint payload: " ^ msg)
              with
              | Error _ as e -> e
              | Ok st -> (
                let positioned =
                  if m.Checkpoint.byte_offset >= 0 then
                    Tb.seek reader ~byte_offset:m.Checkpoint.byte_offset
                      ~next_index:m.Checkpoint.next_index
                  else begin
                    (* no recorded offset: decode and discard the prefix *)
                    let rec skip () =
                      if Tb.events_read reader >= m.Checkpoint.next_index then Ok ()
                      else
                        match Tb.next reader with
                        | Error msg -> Error msg
                        | Ok None -> Error "checkpoint lies beyond the end of the trace"
                        | Ok (Some _) -> skip ()
                    in
                    skip ()
                  end
                in
                match positioned with
                | Error _ as e -> e
                | Ok () -> Ok (st, m.Checkpoint.next_index))))
        in
        let prepared =
          match resume with
          | None -> Ok (D.create config, None, None)
          | Some cp_path -> (
            match try_resume cp_path with
            | Ok (st, idx) -> Ok (st, Some idx, None)
            | Error msg -> (
              warn_fallback cp_path msg;
              (* a failed prefix skip may have consumed events: rewind *)
              match Tb.seek reader ~byte_offset:data_start ~next_index:0 with
              | Error m2 -> Error ("cannot rewind for full replay: " ^ m2)
              | Ok () -> Ok (D.create config, None, Some msg)))
        in
        match prepared with
        | Error msg -> Error msg
        | Ok (state, resumed_at, resume_error) -> (
          let written = ref 0 in
          let write_checkpoint ~next_index ~byte_offset =
            match checkpoint with
            | None -> ()
            | Some cp_path -> (
              (* a faulted checkpoint write never fails the analysis:
                 [Checkpoint.save] left the previous good file in place, so
                 the only cost is a longer replay after a crash *)
              try
                Checkpoint.save cp_path
                  {
                    Checkpoint.meta =
                      {
                        Checkpoint.engine;
                        sampler = Sampler.name sampler;
                        nthreads;
                        nlocks;
                        nlocs;
                        clock_size;
                        next_index;
                        byte_offset;
                      };
                    detector = D.snapshot state;
                  };
                incr written
              with Ft_fault.Fault.Injected _ as e ->
                Printf.eprintf "racedet: checkpoint write faulted (%s); continuing\n%!"
                  (Printexc.to_string e))
          in
          (* batch-decoded hot loop: no per-event boxing between the wire
             and [D.handle].  [Tb.batch_end] gives the byte offset after
             each event, so checkpoint cadence is independent of where
             batch boundaries fall. *)
          let batch = Tb.create_batch () in
          let rec loop () =
            match Tb.read_batch reader batch with
            | Error msg -> Error msg
            | Ok 0 -> Ok ()
            | Ok n ->
              let start = Tb.events_read reader - n in
              for j = 0 to n - 1 do
                D.handle state (start + j) (Tb.batch_event batch j);
                let idx = start + j + 1 in
                (* no checkpoint at the very end: it could not shorten anything *)
                if checkpoint_every > 0 && idx mod checkpoint_every = 0 && idx < nevents
                then write_checkpoint ~next_index:idx ~byte_offset:(Tb.batch_end batch j)
              done;
              loop ()
          in
          match loop () with
          | Error msg -> Error msg
          | Ok () ->
            Ok
              {
                result = D.result state;
                resumed_at;
                resume_error;
                checkpoints_written = !written;
              })
      end)

let analyze_trace ~engine ?(racy_fastpath = false) ?(sampler = Sampler.all) ?clock_size
    ?checkpoint ?(checkpoint_every = 0) ?resume trace =
  let nthreads = trace.Trace.nthreads
  and nlocks = trace.Trace.nlocks
  and nlocs = trace.Trace.nlocs in
  let nevents = Trace.length trace in
  let clock_size = Option.value clock_size ~default:nthreads in
  if clock_size < nthreads then Error "clock size below thread count"
  else begin
    let config = { Detector.nthreads; nlocks; nlocs; clock_size; sampler } in
    let (module D : Detector.S) = Engine.detector ~racy_fastpath engine in
    let try_resume cp_path =
      match Checkpoint.load cp_path with
      | Error _ as e -> e
      | Ok cp -> (
        let m = cp.Checkpoint.meta in
        match
          validate_meta m ~engine ~sampler ~nthreads ~nlocks ~nlocs ~clock_size ~nevents
        with
        | Error _ as e -> e
        | Ok () -> (
          match
            try Ok (D.restore config cp.Checkpoint.detector)
            with Snap.Corrupt msg -> Error ("corrupt checkpoint payload: " ^ msg)
          with
          | Error _ as e -> e
          | Ok st -> Ok (st, m.Checkpoint.next_index)))
    in
    let state, start, resumed_at, resume_error =
      match resume with
      | None -> (D.create config, 0, None, None)
      | Some cp_path -> (
        match try_resume cp_path with
        | Ok (st, idx) -> (st, idx, Some idx, None)
        | Error msg ->
          warn_fallback cp_path msg;
          (D.create config, 0, None, Some msg))
    in
    let written = ref 0 in
    for i = start to nevents - 1 do
      D.handle state i (Trace.get trace i);
      match checkpoint with
      | Some cp_path when checkpoint_every > 0 && (i + 1) mod checkpoint_every = 0
                          && i + 1 < nevents -> (
        try
          Checkpoint.save cp_path
            {
              Checkpoint.meta =
                {
                  Checkpoint.engine;
                  sampler = Sampler.name sampler;
                  nthreads;
                  nlocks;
                  nlocs;
                  clock_size;
                  next_index = i + 1;
                  byte_offset = -1;
                };
              detector = D.snapshot state;
            };
          incr written
        with Ft_fault.Fault.Injected _ as e ->
          Printf.eprintf "racedet: checkpoint write faulted (%s); continuing\n%!"
            (Printexc.to_string e))
      | Some _ | None -> ()
    done;
    Ok
      {
        result = D.result state;
        resumed_at;
        resume_error;
        checkpoints_written = !written;
      }
  end
