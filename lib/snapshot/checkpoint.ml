module Snap = Ft_core.Snap
module Engine = Ft_core.Engine

type meta = {
  engine : Engine.id;
  sampler : string;
  nthreads : int;
  nlocks : int;
  nlocs : int;
  clock_size : int;
  next_index : int;
  byte_offset : int;
}

type t = { meta : meta; detector : Snap.t }

let magic = "FTCK"
let version = 1

(* magic + version byte + 8-byte little-endian FNV-1a 64 checksum *)
let header_len = String.length magic + 1 + 8

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let to_string t =
  let enc = Snap.Enc.create () in
  Snap.Enc.string enc (Engine.name t.meta.engine);
  Snap.Enc.string enc t.meta.sampler;
  Snap.Enc.int enc t.meta.nthreads;
  Snap.Enc.int enc t.meta.nlocks;
  Snap.Enc.int enc t.meta.nlocs;
  Snap.Enc.int enc t.meta.clock_size;
  Snap.Enc.int enc t.meta.next_index;
  Snap.Enc.int enc t.meta.byte_offset;
  Snap.Enc.string enc t.detector;
  let payload = Snap.Enc.to_snap enc in
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version);
  let sum = Bytes.create 8 in
  Bytes.set_int64_le sum 0 (fnv64 payload);
  Buffer.add_bytes b sum;
  Buffer.add_string b payload;
  Buffer.contents b

let of_string s =
  if String.length s < header_len then Error "checkpoint truncated (shorter than its header)"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "bad magic number (not a FreshTrack checkpoint)"
  else begin
    let v = Char.code s.[String.length magic] in
    if v <> version then Error (Printf.sprintf "unsupported checkpoint version %d" v)
    else begin
      let stored = String.get_int64_le s (String.length magic + 1) in
      let payload = String.sub s header_len (String.length s - header_len) in
      if not (Int64.equal (fnv64 payload) stored) then
        Error "checkpoint checksum mismatch (corrupt or truncated)"
      else
        try
          let dec = Snap.Dec.of_snap payload in
          let ename = Snap.Dec.string dec in
          match Engine.of_name ename with
          | None -> Error (Printf.sprintf "checkpoint names unknown engine %S" ename)
          | Some engine ->
            let sampler = Snap.Dec.string dec in
            let nthreads = Snap.Dec.int dec in
            let nlocks = Snap.Dec.int dec in
            let nlocs = Snap.Dec.int dec in
            let clock_size = Snap.Dec.int dec in
            let next_index = Snap.Dec.int dec in
            let byte_offset = Snap.Dec.int dec in
            let detector = Snap.Dec.string dec in
            Snap.Dec.finish dec;
            if nthreads <= 0 || nlocks < 0 || nlocs < 0 then
              Error "checkpoint universe is malformed"
            else if clock_size < nthreads then
              Error "checkpoint clock size below thread count"
            else if next_index < 0 then Error "checkpoint event index is negative"
            else if byte_offset < -1 then Error "checkpoint byte offset is malformed"
            else
              Ok
                {
                  meta =
                    {
                      engine;
                      sampler;
                      nthreads;
                      nlocks;
                      nlocs;
                      clock_size;
                      next_index;
                      byte_offset;
                    };
                  detector;
                }
        with Snap.Corrupt msg -> Error ("corrupt checkpoint: " ^ msg)
    end
  end

module Fault = Ft_fault.Fault

let write_all fd s off len =
  let b = Bytes.unsafe_of_string s in
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.write fd b off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n) (len - n)
    end
  in
  go off len

let fsync_dir path =
  (* Durability of the rename itself: without fsyncing the containing
     directory, a power cut can forget the new name and resurrect the old
     file contents.  Directory fsync is not universally supported, so
     failures are ignored — the data fsync above already bounds the loss. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let save path t =
  let tmp = path ^ ".tmp" in
  let s = to_string t in
  let len = String.length s in
  (* torn-write injection point: [Some (keep, e)] means "a crash cut this
     write after [keep] bytes" — write exactly that prefix, skip the fsync
     and the rename, and raise, leaving [path] (the previous checkpoint)
     untouched.  The chaos suite asserts exactly that. *)
  let torn = Fault.torn_len "checkpoint.write" len in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  match torn with
  | Some (keep, e) ->
    write_all fd s 0 keep;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e
  | None ->
    (try
       write_all fd s 0 len;
       (* the rename must not be allowed to publish a name whose bytes are
          still only in the page cache: fsync before rename is what makes
          "every .ftc on disk is complete" a crash-safe invariant *)
       Unix.fsync fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    Unix.close fd;
    Sys.rename tmp path;
    fsync_dir path

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> of_string s
        | exception End_of_file -> Error "checkpoint truncated")
