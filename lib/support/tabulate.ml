type align = Left | Right

(* Display width: count UTF-8 scalar values, not bytes, so that table cells
   containing ⟨…⟩ clock renderings still line up. *)
let display_width s =
  let n = String.length s in
  let rec loop i acc =
    if i >= n then acc
    else begin
      let c = Char.code s.[i] in
      let step =
        if c < 0x80 then 1
        else if c < 0xE0 then 2
        else if c < 0xF0 then 3
        else 4
      in
      loop (i + step) (acc + 1)
    end
  in
  loop 0 0

let pad a width s =
  let n = display_width s in
  if n >= width then s
  else begin
    let blanks = String.make (width - n) ' ' in
    match a with Left -> s ^ blanks | Right -> blanks ^ s
  end

let render ?align ~header rows =
  let ncols = Array.length header in
  let cell row j = if j < Array.length row then row.(j) else "" in
  let widths =
    Array.init ncols (fun j ->
        List.fold_left
          (fun w row -> Stdlib.max w (display_width (cell row j)))
          (display_width header.(j))
          rows)
  in
  let align_of j =
    match align with
    | Some a when j < Array.length a -> a.(j)
    | Some _ | None -> if j = 0 then Left else Right
  in
  let buf = Buffer.create 1024 in
  let emit_row cells =
    for j = 0 to ncols - 1 do
      if j > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad (align_of j) widths.(j) (cells j))
    done;
    Buffer.add_char buf '\n'
  in
  emit_row (fun j -> header.(j));
  emit_row (fun j -> String.make widths.(j) '-');
  List.iter (fun row -> emit_row (cell row)) rows;
  Buffer.contents buf

let print ?align ~title ~header rows =
  print_newline ();
  print_endline title;
  print_endline (String.make (String.length title) '=');
  print_string (render ?align ~header rows)

let fl x = Printf.sprintf "%.3f" x
let fl1 x = Printf.sprintf "%.1f" x
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
