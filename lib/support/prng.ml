type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: Stafford's Mix13 variant. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's native int non-negatively *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t ~p = float t 1.0 < p

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  let rec loop n = if bernoulli t ~p then n else loop (n + 1) in
  loop 0

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_weighted t a =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 a in
  assert (total > 0.0);
  let x = float t total in
  let rec loop i acc =
    if i = Array.length a - 1 then fst a.(i)
    else
      let acc = acc +. snd a.(i) in
      if x < acc then fst a.(i) else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
