(** Monotonic time source for wall-clock statistics.

    The time-of-day clock follows the system's wall time, which NTP slews
    and administrators move; an interval measured against it can come out
    negative.  Every duration reported by the runners ({!Ft_par}, the serve
    daemon, the bench grids) goes through this module instead, which reads
    [CLOCK_MONOTONIC] (via the bechamel stub baked into the image) and is
    therefore non-decreasing by construction. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock.  The epoch is arbitrary (boot time
    on Linux); only differences are meaningful. *)

val now_s : unit -> float
(** {!now_ns} in seconds, for callers doing float arithmetic on durations. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since a {!now_ns} reading.  Never negative. *)
