(** Plain-text table rendering for the figure harnesses.

    Every experiment in the paper is a table or a bar chart; we render both as
    aligned text tables so that the bench output can be diffed against
    EXPERIMENTS.md. *)

type align = Left | Right

val render :
  ?align:align array ->
  header:string array ->
  string array list ->
  string
(** [render ~header rows] lays out [rows] under [header] with column
    alignment ([Right] by default for every column except the first).
    Rows shorter than the header are padded with empty cells. *)

val print :
  ?align:align array ->
  title:string ->
  header:string array ->
  string array list ->
  unit
(** [print ~title ~header rows] writes a titled table to stdout. *)

val fl : float -> string
(** Compact float formatting, 3 significant decimals ("2.134"). *)

val fl1 : float -> string
(** One-decimal float formatting ("2.1"). *)

val pct : float -> string
(** Ratio rendered as a percentage ("37.2%"). *)
