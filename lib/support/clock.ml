let now_ns () = Monotonic_clock.now ()

let ns_per_s = 1e9

let now_s () = Int64.to_float (now_ns ()) /. ns_per_s

let elapsed_s ~since =
  (* clamp: CLOCK_MONOTONIC never goes backwards, but guard against a caller
     passing a reading from another machine/process dump *)
  Stdlib.max 0.0 (Int64.to_float (Int64.sub (now_ns ()) since) /. ns_per_s)
