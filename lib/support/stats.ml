let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let ys = sorted xs in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then ys.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)
    end
  end

let median xs = percentile xs 50.0

let min xs = if Array.length xs = 0 then 0.0 else Array.fold_left Stdlib.min xs.(0) xs
let max xs = if Array.length xs = 0 then 0.0 else Array.fold_left Stdlib.max xs.(0) xs

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let sum_int xs = Array.fold_left ( + ) 0 xs

let mean_int xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else float_of_int (sum_int xs) /. float_of_int n
