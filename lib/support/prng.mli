(** Deterministic pseudo-random number generation.

    The evaluation in the paper fixes seeds so that every engine analyses the
    same distribution of requests and the same sampling decisions (§6.2.2,
    §A.1.1).  We use splitmix64, a small, fast, statistically solid generator
    that is trivially reproducible across platforms — the [Random] module of
    the standard library does not guarantee a stable stream across OCaml
    versions. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. *)

val copy : t -> t
(** Independent clone with identical future stream. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g]; the two
    subsequent streams are statistically independent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p]. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success of a Bernoulli([p]);
    used for burst lengths in workload generators. [p] must be in (0, 1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** Element drawn with probability proportional to its weight.
    Weights must be non-negative and not all zero. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
