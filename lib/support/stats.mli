(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0. on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0. if fewer than 2 points. *)

val median : float array -> float
(** Median (does not modify its argument); 0. on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0, 100], linear interpolation. *)

val min : float array -> float
val max : float array -> float

val ratio : int -> int -> float
(** [ratio num den] as a float; 0. when [den = 0]. *)

val sum_int : int array -> int
val mean_int : int array -> float
