(** Deterministic, seed-driven fault injection.

    The pipeline around the detectors — shard domains, SPSC rings, the serve
    daemon's socket loop, checkpoint writes — is threaded with {e named
    injection points} ([Fault.point "shard.step"], [Fault.torn_len
    "checkpoint.write"], …).  By default every point is pass-through: one
    atomic load and nothing else, so a binary that never arms the layer
    behaves byte-identically to one compiled without it.

    Arming installs a {e schedule}: at each hit of a point the layer draws
    from a PRNG stream derived {e statelessly} from [(seed, point, lane,
    hit)] (splitmix64 via {!Ft_support.Prng}), so whether the n-th hit of a
    point fires — and which fault it fires — is a pure function of the seed
    and the hit count.  No [Random], no wall clock: a chaos run is replayable
    from its seed even though shard workers hit their points from different
    domains in racy order, because every [(point, lane)] pair counts its own
    hits.  [lane] separates instances of one point that run concurrently
    (shard workers pass their shard index).

    The paper's equivalence results (ST ≡ SU ≡ SO on every trace) make the
    surrounding harness unusually testable: after {e any} injected fault and
    recovery, the final REPORT must be byte-identical to a fault-free run.
    The chaos suite ([test_fault]) and the CI chaos smoke assert exactly
    that. *)

type kind =
  | Exn  (** raise {!Injected} at the point — a handler/worker failure *)
  | Partial_io  (** an I/O operation transfers fewer bytes than asked *)
  | Torn_write  (** a file write stops partway — a power cut mid-checkpoint *)
  | Delay  (** sleep a few hundred microseconds — scheduling jitter *)
  | Crash_domain
      (** the whole worker domain dies abruptly, mid-message, without
          draining its ring — the hardest failure the shard supervisor
          handles *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type incident = {
  point : string;
  lane : int;
  kind : kind;
  hit : int;  (** 1-based hit count of [(point, lane)] at which this fired *)
  ordinal : int;  (** 1-based global fire number *)
}

exception Injected of incident
(** Raised at a point when the schedule fires {!Exn} or {!Crash_domain}
    there (and carried by the exception returned from {!torn_len}). *)

val describe : incident -> string
(** One log line, e.g.
    [fault #3: point=shard.step lane=2 kind=crash_domain hit=47]. *)

type config = {
  seed : int;
  prob : float;  (** per-hit fire probability (default 0.01) *)
  points : string list option;  (** [None] = every point *)
  kinds : kind list option;
      (** [None] = every kind the point supports; otherwise the
          intersection with the point's supported kinds *)
  max_fires : int option;  (** stop firing after this many faults *)
  delay_s : float;  (** base duration of {!Delay} faults (default 1 ms) *)
  log : bool;  (** print {!describe} to stderr as faults fire *)
}

val default : seed:int -> config

val parse : string -> (config, string) result
(** Parse a [--chaos] argument: [SEED] or [SEED:opt,opt,...] with options
    [p=FLOAT], [points=a+b+c], [kinds=exn+delay+...], [max=N],
    [delay=FLOAT].  Parsed configs log to stderr ([log = true]). *)

val spec_of_config : config -> string
(** Render a config back to [SEED:...] form (for diagnostics). *)

(** {1 Arming} *)

val arm : config -> unit
(** Install a schedule (replacing any previous one) and reset the hit
    counters, fire counters and incident log. *)

val arm_exact : ?lane:int -> point:string -> hit:int -> kind -> unit
(** Single-shot injection for tests: fire exactly [kind] at the [hit]-th
    check of [(point, lane)] (1-based), once, and nothing else. *)

val disarm : unit -> unit
val armed : unit -> bool

(** {1 Telemetry} *)

val fired : unit -> int
(** Faults fired since the last {!arm} — the [racedet_faults_injected]
    counter of the serve daemon. *)

val checks : unit -> int
(** Point checks since the last {!arm} (counted only while armed) — proves
    the injection points are actually exercised when a pass-through run
    ([prob = 0]) reports zero fires. *)

val incidents : unit -> incident list
(** Chronological. *)

(** {1 Injection points}

    Each entry point supports a fixed set of kinds; the schedule only fires
    kinds in the intersection of that set, the point's [?supports]
    refinement, and the armed config's [kinds]. *)

val point : ?lane:int -> ?supports:kind list -> string -> unit
(** A control-flow point.  Supported kinds default to
    [[Exn; Delay]]; pass [?supports] to widen ([Crash_domain] for shard
    workers) or narrow ([[Delay]] where an exception could lose data).
    Fires {!Exn}/{!Crash_domain} by raising {!Injected}; {!Delay} sleeps
    and returns. *)

val io_len : ?lane:int -> string -> int -> int
(** [io_len p n] — an I/O point about to transfer [n] bytes.  Returns a
    possibly smaller positive length ({!Partial_io}); may also raise
    ({!Exn}) or sleep ({!Delay}).  Returns [n] unchanged when nothing
    fires (or [n <= 1], which cannot be shortened). *)

val torn_len : ?lane:int -> string -> int -> (int * exn) option
(** [torn_len p n] — a durability point about to write [n] bytes.
    [Some (keep, e)] means a {!Torn_write} fired: the caller must write
    only the first [keep] bytes ([0 <= keep < n]) and then [raise e],
    simulating a crash mid-write.  May also raise ({!Exn}) or sleep
    ({!Delay}).  [None] = write everything. *)
