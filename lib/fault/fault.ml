module Prng = Ft_support.Prng

type kind = Exn | Partial_io | Torn_write | Delay | Crash_domain

let kind_to_string = function
  | Exn -> "exn"
  | Partial_io -> "partial_io"
  | Torn_write -> "torn_write"
  | Delay -> "delay"
  | Crash_domain -> "crash_domain"

let kind_of_string = function
  | "exn" -> Some Exn
  | "partial_io" -> Some Partial_io
  | "torn_write" -> Some Torn_write
  | "delay" -> Some Delay
  | "crash_domain" -> Some Crash_domain
  | _ -> None

type incident = { point : string; lane : int; kind : kind; hit : int; ordinal : int }

exception Injected of incident

let describe i =
  Printf.sprintf "fault #%d: point=%s lane=%d kind=%s hit=%d" i.ordinal i.point i.lane
    (kind_to_string i.kind) i.hit

let () =
  Printexc.register_printer (function
    | Injected i -> Some ("Fault.Injected (" ^ describe i ^ ")")
    | _ -> None)

type config = {
  seed : int;
  prob : float;
  points : string list option;
  kinds : kind list option;
  max_fires : int option;
  delay_s : float;
  log : bool;
}

let default ~seed =
  { seed; prob = 0.01; points = None; kinds = None; max_fires = None;
    delay_s = 0.001; log = false }

let spec_of_config c =
  let opts =
    (if c.prob <> 0.01 then [ Printf.sprintf "p=%g" c.prob ] else [])
    @ (match c.points with
      | None -> []
      | Some ps -> [ "points=" ^ String.concat "+" ps ])
    @ (match c.kinds with
      | None -> []
      | Some ks -> [ "kinds=" ^ String.concat "+" (List.map kind_to_string ks) ])
    @ (match c.max_fires with None -> [] | Some n -> [ Printf.sprintf "max=%d" n ])
    @ if c.delay_s <> 0.001 then [ Printf.sprintf "delay=%g" c.delay_s ] else []
  in
  match opts with
  | [] -> string_of_int c.seed
  | _ -> string_of_int c.seed ^ ":" ^ String.concat "," opts

let parse s =
  let seed_str, opts =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match int_of_string_opt (String.trim seed_str) with
  | None -> Error (Printf.sprintf "--chaos: %S is not an integer seed" seed_str)
  | Some seed ->
    let init = { (default ~seed) with log = true } in
    let parse_opt acc opt =
      match acc with
      | Error _ as e -> e
      | Ok c -> (
        match String.index_opt opt '=' with
        | None -> Error (Printf.sprintf "--chaos: option %S is not key=value" opt)
        | Some i ->
          let key = String.sub opt 0 i in
          let v = String.sub opt (i + 1) (String.length opt - i - 1) in
          (match key with
          | "p" -> (
            match float_of_string_opt v with
            | Some p when p >= 0.0 && p <= 1.0 -> Ok { c with prob = p }
            | _ -> Error (Printf.sprintf "--chaos: p=%S is not a probability" v))
          | "points" -> (
            match String.split_on_char '+' v with
            | [] | [ "" ] -> Error "--chaos: empty points list"
            | ps -> Ok { c with points = Some ps })
          | "kinds" -> (
            let ks = List.map kind_of_string (String.split_on_char '+' v) in
            if List.exists Option.is_none ks then
              Error (Printf.sprintf "--chaos: unknown kind in %S" v)
            else Ok { c with kinds = Some (List.filter_map Fun.id ks) })
          | "max" -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok { c with max_fires = Some n }
            | _ -> Error (Printf.sprintf "--chaos: max=%S is not a count" v))
          | "delay" -> (
            match float_of_string_opt v with
            | Some d when d >= 0.0 -> Ok { c with delay_s = d }
            | _ -> Error (Printf.sprintf "--chaos: delay=%S is not a duration" v))
          | _ -> Error (Printf.sprintf "--chaos: unknown option %S" key)))
    in
    if opts = "" then Ok init
    else List.fold_left parse_opt (Ok init) (String.split_on_char ',' opts)

(* --- armed state ----------------------------------------------------------- *)

type mode =
  | Schedule of config
  | Exact of { point : string; lane : int; hit : int; kind : kind; mutable done_ : bool }

(* The fast-path guard: checked with one atomic load before anything else,
   so a disarmed binary pays nothing at its injection points. *)
let armed_flag = Atomic.make false

let mu = Mutex.create ()

(* All of the below are guarded by [mu]. *)
let mode : mode option ref = ref None
let hits : (string * int, int ref) Hashtbl.t = Hashtbl.create 32
let checks_n = ref 0
let fired_n = ref 0
let log_rev : incident list ref = ref []

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let reset_counters () =
  Hashtbl.reset hits;
  checks_n := 0;
  fired_n := 0;
  log_rev := []

let arm c =
  locked (fun () ->
      reset_counters ();
      mode := Some (Schedule c);
      Atomic.set armed_flag true)

let arm_exact ?(lane = 0) ~point ~hit kind =
  locked (fun () ->
      reset_counters ();
      mode := Some (Exact { point; lane; hit; kind; done_ = false });
      Atomic.set armed_flag true)

let disarm () =
  locked (fun () ->
      mode := None;
      Atomic.set armed_flag false)

let armed () = Atomic.get armed_flag

let fired () = locked (fun () -> !fired_n)
let checks () = locked (fun () -> !checks_n)
let incidents () = locked (fun () -> List.rev !log_rev)

(* --- the per-hit draw ------------------------------------------------------ *)

let fnv s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* A fresh splitmix stream per (seed, point, lane, hit): whether this hit
   fires is a pure function of those four values, independent of how other
   points or lanes interleave — the replayability invariant. *)
let hit_prng ~seed ~pt ~lane ~hit =
  let z =
    Int64.logxor
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.logxor (fnv pt)
         (Int64.logxor
            (Int64.mul (Int64.of_int lane) 0xBF58476D1CE4E5B9L)
            (Int64.mul (Int64.of_int hit) 0x94D049BB133111EBL)))
  in
  Prng.create ~seed:(Int64.to_int z land max_int)

(* Under [mu]: decide whether this hit fires and with which kind.  Returns
   the incident plus the drawing stream (for fault magnitudes). *)
let decide ~pt ~lane ~supports =
  match !mode with
  | None -> None
  | Some (Exact e) ->
    incr checks_n;
    let h = Hashtbl.find_opt hits (pt, lane) in
    let h = match h with Some r -> r | None -> let r = ref 0 in Hashtbl.add hits (pt, lane) r; r in
    incr h;
    if (not e.done_) && e.point = pt && e.lane = lane && e.hit = !h then begin
      e.done_ <- true;
      incr fired_n;
      let inc = { point = pt; lane; kind = e.kind; hit = !h; ordinal = !fired_n } in
      log_rev := inc :: !log_rev;
      Some (inc, hit_prng ~seed:0 ~pt ~lane ~hit:!h, false)
    end
    else None
  | Some (Schedule c) ->
    incr checks_n;
    let h = Hashtbl.find_opt hits (pt, lane) in
    let h = match h with Some r -> r | None -> let r = ref 0 in Hashtbl.add hits (pt, lane) r; r in
    incr h;
    let in_points = match c.points with None -> true | Some ps -> List.mem pt ps in
    let budget_ok = match c.max_fires with None -> true | Some m -> !fired_n < m in
    if not (in_points && budget_ok && c.prob > 0.0) then None
    else begin
      let allowed =
        match c.kinds with
        | None -> supports
        | Some ks -> List.filter (fun k -> List.mem k ks) supports
      in
      if allowed = [] then None
      else begin
        let p = hit_prng ~seed:c.seed ~pt ~lane ~hit:!h in
        if Prng.float p 1.0 >= c.prob then None
        else begin
          let kind = List.nth allowed (Prng.int p (List.length allowed)) in
          incr fired_n;
          let inc = { point = pt; lane; kind; hit = !h; ordinal = !fired_n } in
          log_rev := inc :: !log_rev;
          Some (inc, p, c.log)
        end
      end
    end

let delay_base () =
  locked (fun () ->
      match !mode with Some (Schedule c) -> c.delay_s | _ -> 0.001)

let fire_common (inc, p, log) =
  if log then Printf.eprintf "[chaos] %s\n%!" (describe inc);
  match inc.kind with
  | Delay ->
    Unix.sleepf (delay_base () *. (0.5 +. Prng.float p 1.0));
    None
  | Exn | Crash_domain -> raise (Injected inc)
  | Partial_io | Torn_write -> Some (inc, p)

let check ~lane ~supports pt =
  if not (Atomic.get armed_flag) then None
  else
    match locked (fun () -> decide ~pt ~lane ~supports) with
    | None -> None
    | Some d -> fire_common d

let point ?(lane = 0) ?(supports = [ Exn; Delay ]) pt =
  match check ~lane ~supports pt with
  | None -> ()
  | Some (inc, _) ->
    (* a sized kind fired at a size-less point: degrade to Exn *)
    raise (Injected inc)

let io_len ?(lane = 0) pt n =
  match check ~lane ~supports:[ Exn; Partial_io; Delay ] pt with
  | None -> n
  | Some (_, p) -> if n <= 1 then n else 1 + Prng.int p (n - 1)

let torn_len ?(lane = 0) pt n =
  match check ~lane ~supports:[ Exn; Torn_write; Delay ] pt with
  | None -> None
  | Some (inc, p) ->
    if n < 1 then None else Some (Prng.int p n, Injected inc)
