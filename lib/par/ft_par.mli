(** Fixed-size domain pool for embarrassingly parallel experiment cells.

    The paper's evaluation grid — benchmarks × seeds × engine
    configurations — is a bag of independent tasks.  [map] runs such a bag
    on [jobs] OCaml 5 domains pulling task indices from a shared queue, with
    two properties the figure pipeline depends on:

    - {b deterministic ordering}: results are keyed by task index, never by
      completion order, so the output is identical to the sequential run
      regardless of scheduling;
    - {b per-task failure capture}: a crashed cell yields an [Error] carrying
      the exception and backtrace instead of tearing down the whole figure.

    With [jobs = 1] (the default everywhere) no domain is spawned and tasks
    run inline, in order, on the calling domain — the sequential path is
    preserved bit for bit. *)

type error = {
  index : int;        (** task index that failed *)
  message : string;   (** [Printexc.to_string] of the exception *)
  backtrace : string;
}

type stats = {
  jobs : int;         (** domains actually used *)
  tasks : int;
  failed : int;
  wall_s : float;     (** wall clock of the whole map *)
  busy_s : float;     (** sum of per-task wall clocks *)
  max_task_s : float; (** slowest single cell *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's useful width. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> ('b, error) result array
(** [map ~jobs f tasks] — [f tasks.(i)] for every [i], result [i] in slot
    [i].  [jobs] is clamped to [\[1; Array.length tasks\]]. *)

val map_stats :
  ?jobs:int -> ('a -> 'b) -> 'a array -> ('b, error) result array * stats
(** Like {!map}, also measuring wall/busy time per cell — so parallel
    speedups are numbers, not assertions. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list

val filter_ok : on_error:(error -> unit) -> ('b, error) result list -> 'b list
(** Successes in order; every failure is passed to [on_error] first. *)

val get_exn : ('b, error) result -> 'b
(** The value, or [Failure] carrying the captured message — for callers that
    prefer the crash to a partial figure. *)

val warn_stderr : error -> unit
(** Default [on_error]: one line on stderr. *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. ["104 cells on 8 domains: 3.2s wall, 23.9s busy, 7.5x, slowest 0.9s"] *)
