type error = {
  index : int;
  message : string;
  backtrace : string;
}

type stats = {
  jobs : int;
  tasks : int;
  failed : int;
  wall_s : float;
  busy_s : float;
  max_task_s : float;
}

let default_jobs () = Domain.recommended_domain_count ()

let run_task f tasks index =
  try Ok (f tasks.(index))
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    Error
      {
        index;
        message = Printexc.to_string exn;
        backtrace = Printexc.raw_backtrace_to_string bt;
      }

let map_stats ?(jobs = 1) f tasks =
  let n = Array.length tasks in
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  let results = Array.make n None in
  let durations = Array.make n 0.0 in
  let t0 = Ft_support.Clock.now_ns () in
  if jobs = 1 then
    (* inline, in order: the sequential path spawns nothing *)
    for i = 0 to n - 1 do
      let c0 = Ft_support.Clock.now_ns () in
      results.(i) <- Some (run_task f tasks i);
      durations.(i) <- Ft_support.Clock.elapsed_s ~since:c0
    done
  else begin
    (* work queue: a shared counter of the next unclaimed task index.
       Each slot is written by exactly one domain, so plain array stores
       suffice; the join below publishes them to the caller. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let c0 = Ft_support.Clock.now_ns () in
          results.(i) <- Some (run_task f tasks i);
          durations.(i) <- Ft_support.Clock.elapsed_s ~since:c0;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  let wall_s = Ft_support.Clock.elapsed_s ~since:t0 in
  let results =
    Array.mapi
      (fun i -> function
        | Some r -> r
        | None ->
          (* unreachable: every index below [n] is claimed exactly once *)
          Error { index = i; message = "task never ran"; backtrace = "" })
      results
  in
  let failed =
    Array.fold_left (fun acc r -> match r with Error _ -> acc + 1 | Ok _ -> acc) 0 results
  in
  let busy_s = Array.fold_left ( +. ) 0.0 durations in
  let max_task_s = Array.fold_left Stdlib.max 0.0 durations in
  (results, { jobs; tasks = n; failed; wall_s; busy_s; max_task_s })

let map ?jobs f tasks = fst (map_stats ?jobs f tasks)

let map_list ?jobs f tasks = Array.to_list (map ?jobs f (Array.of_list tasks))

let filter_ok ~on_error results =
  List.filter_map
    (fun r ->
      match r with
      | Ok v -> Some v
      | Error e ->
        on_error e;
        None)
    results

let get_exn = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "parallel task %d failed: %s" e.index e.message)

let warn_stderr e =
  Printf.eprintf "ft_par: task %d failed: %s\n%s%!" e.index e.message e.backtrace

let pp_stats fmt s =
  Format.fprintf fmt "%d cells on %d domain%s: %.2fs wall, %.2fs busy, %.1fx, slowest %.2fs%s"
    s.tasks s.jobs
    (if s.jobs = 1 then "" else "s")
    s.wall_s s.busy_s
    (if s.wall_s > 0.0 then s.busy_s /. s.wall_s else 1.0)
    s.max_task_s
    (if s.failed = 0 then "" else Printf.sprintf " (%d FAILED)" s.failed)
