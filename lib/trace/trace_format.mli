(** Textual trace format, one event per line, in the spirit of the STD format
    of the RAPID framework the paper uses for its offline experiments.

    {v
    # comments and blank lines are ignored
    main|fork(worker1)
    worker1|acq(l)
    worker1|w(x)
    worker1|rel(l)
    main|r(x)
    main|join(worker1)
    v}

    Operations: [r(v)], [w(v)], [acq(l)], [rel(l)], [fork(t)], [join(t)],
    [relst(s)], [acqld(s)].  Thread, lock, sync and variable names are
    arbitrary identifiers (no ['|'], ['('], [')'] or whitespace) and are
    interned to dense integer ids in order of first appearance — except that
    a name of the shape [t<digits>] (resp. [L<digits>], [x<digits>]) maps to
    that exact id, so that printing and re-parsing round-trips ids. *)

val parse_string : string -> (Trace.t, string) result
(** Parses; the result is not validated (combine with {!Trace.well_formed}).
    Errors carry a 1-based line number. *)

val parse_file : string -> (Trace.t, string) result

val to_string : Trace.t -> string
(** Canonical rendering using [t<i>], [x<i>], [L<i>] names. *)

val to_file : string -> Trace.t -> unit

val to_rapid_std : Trace.t -> string
(** Rendering in the exact STD syntax of the RAPID framework the paper's
    offline experiments use (\[37\]): one event per line,
    [T<i>|op(<decor>)|<aux>] with operations [r]/[w] on variables [V<i>],
    [acq]/[rel] on locks [L<i>] and [fork]/[join] on threads — so traces
    generated here can be fed to the original tool.  Atomic release-stores
    and acquire-loads are rendered as [rel]/[acq] on a disjoint lock
    namespace ([A<i>]), the closest STD equivalent. *)
