type t = { name : string; trace : Trace.t; sampled : bool array }

let make ?nthreads name events sampled_indices =
  let events = Array.of_list events in
  let trace =
    match nthreads with
    | None -> Trace.of_events events
    | Some nthreads ->
      let inferred = Trace.of_events events in
      Trace.make ~nthreads ~nlocks:inferred.Trace.nlocks ~nlocs:inferred.Trace.nlocs events
  in
  let trace = Trace.validate trace in
  let sampled = Array.make (Trace.length trace) false in
  List.iter
    (fun i ->
      assert (Event.is_access (Trace.get trace i));
      sampled.(i) <- true)
    sampled_indices;
  { name; trace; sampled }

let r t x = Event.mk t (Event.Read x)
let w t x = Event.mk t (Event.Write x)
let acq t l = Event.mk t (Event.Acquire l)
let rel t l = Event.mk t (Event.Release l)
let fork t u = Event.mk t (Event.Fork u)
let join t u = Event.mk t (Event.Join u)
let relst t l = Event.mk t (Event.Release_store l)
let acqld t l = Event.mk t (Event.Acquire_load l)

(* Threads t1, t2 of the paper are 0, 1 here; locks ℓ1..ℓ4 are 0..3;
   variables x, y, z are 0, 1, 2. *)
let fig1 =
  make "fig1"
    [
      acq 0 0 (* e1  acq(l1) t1 *);
      acq 0 1 (* e2  acq(l2) t1 *);
      acq 0 2 (* e3  acq(l3) t1 *);
      acq 0 3 (* e4  acq(l4) t1 *);
      w 0 2 (* e5  w(z) t1  [S] *);
      rel 0 0 (* e6  rel(l1) t1 *);
      w 0 0 (* e7  w(x) t1 *);
      acq 1 0 (* e8  acq(l1) t2 *);
      w 1 0 (* e9  w(x) t2 *);
      rel 0 1 (* e10 rel(l2) t1 *);
      w 0 1 (* e11 w(y) t1 *);
      acq 1 1 (* e12 acq(l2) t2 *);
      rel 0 2 (* e13 rel(l3) t1 *);
      acq 1 2 (* e14 acq(l3) t2 *);
      r 0 2 (* e15 r(z) t1  [S] *);
      w 0 2 (* e16 w(z) t1  [S] *);
      rel 0 3 (* e17 rel(l4) t1 *);
      acq 1 3 (* e18 acq(l4) t2 *);
    ]
    [ 4; 14; 15 ]

(* Six threads (t0, t3, t4, t5 idle). Thread 1 hands its clock to thread 2
   through lock m = 0 twice; between the hand-offs exactly one sampled write
   occurs, so at the final acquire thread 2 is exactly one freshness unit
   behind and the ordered-list algorithm traverses a single entry (Fig. 3). *)
let fig3 =
  make ~nthreads:6 "fig3"
    [
      acq 1 0;
      w 1 0 (* sampled *);
      rel 1 0 (* RelAfter: t1 freshness 1 *);
      acq 2 0 (* t2 learns t1 *);
      w 2 1 (* sampled: give t2 some freshness of its own *);
      rel 2 0;
      w 1 2 (* sampled *);
      acq 1 0;
      rel 1 0 (* RelAfter: t1 freshness 2 *);
      acq 2 0 (* t2 one unit behind: traverses exactly 1 entry *);
      rel 2 0;
    ]
    [ 1; 4; 6 ]

let simple_race =
  make "simple_race" [ w 0 0; r 0 1; w 1 0; r 1 1 ] [ 0; 2 ]

let protected_no_race =
  make "protected_no_race"
    [ acq 0 0; w 0 0; rel 0 0; acq 1 0; w 1 0; rel 1 0 ]
    [ 1; 4 ]

let race_missed_by_sampling =
  make "race_missed_by_sampling" [ w 0 0; w 1 0 ] [ 0 ]

let fork_join_ordered =
  make "fork_join_ordered"
    [ w 0 0; fork 0 1; w 1 0; join 0 1; w 0 0 ]
    [ 0; 2; 4 ]

let atomic_message_passing =
  make "atomic_message_passing"
    [ w 0 0; relst 0 0; acqld 1 0; r 1 0 ]
    [ 0; 3 ]

let all =
  [
    fig1;
    fig3;
    simple_race;
    protected_no_race;
    race_missed_by_sampling;
    fork_join_ordered;
    atomic_message_passing;
  ]
