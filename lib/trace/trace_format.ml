(* Name interning: canonical names (prefix + digits) keep their number;
   any other identifier receives the smallest id not yet taken. *)
module Interner = struct
  type t = {
    prefix : char;
    tbl : (string, int) Hashtbl.t;
    used : (int, unit) Hashtbl.t;
    mutable next_free : int;
  }

  let create prefix = { prefix; tbl = Hashtbl.create 16; used = Hashtbl.create 16; next_free = 0 }

  let canonical_id t name =
    let n = String.length name in
    if n < 2 || name.[0] <> t.prefix then None
    else begin
      let rec digits i = i >= n || (name.[i] >= '0' && name.[i] <= '9' && digits (i + 1)) in
      if digits 1 then int_of_string_opt (String.sub name 1 (n - 1)) else None
    end

  let intern t name =
    match Hashtbl.find_opt t.tbl name with
    | Some id -> id
    | None ->
      let id =
        match canonical_id t name with
        | Some id when not (Hashtbl.mem t.used id) -> id
        | Some _ | None ->
          let rec free i = if Hashtbl.mem t.used i then free (i + 1) else i in
          let id = free t.next_free in
          t.next_free <- id + 1;
          id
      in
      Hashtbl.replace t.tbl name id;
      Hashtbl.replace t.used id ();
      id
end

let is_blank line =
  let n = String.length line in
  let rec loop i = i >= n || ((line.[i] = ' ' || line.[i] = '\t' || line.[i] = '\r') && loop (i + 1)) in
  n = 0 || line.[0] = '#' || loop 0

let parse_op ~threads ~locks ~locs line =
  (* "<opname>(<arg>)" *)
  match (String.index_opt line '(', String.rindex_opt line ')') with
  | Some i, Some j when j > i + 1 ->
    let name = String.trim (String.sub line 0 i) in
    let arg = String.trim (String.sub line (i + 1) (j - i - 1)) in
    let lock () = Interner.intern locks arg in
    let loc () = Interner.intern locs arg in
    let thr () = Interner.intern threads arg in
    (match name with
    | "r" | "read" -> Ok (Event.Read (loc ()))
    | "w" | "write" -> Ok (Event.Write (loc ()))
    | "acq" | "acquire" -> Ok (Event.Acquire (lock ()))
    | "rel" | "release" -> Ok (Event.Release (lock ()))
    | "fork" -> Ok (Event.Fork (thr ()))
    | "join" -> Ok (Event.Join (thr ()))
    | "relst" -> Ok (Event.Release_store (lock ()))
    | "acqld" -> Ok (Event.Acquire_load (lock ()))
    | other -> Error (Printf.sprintf "unknown operation %S" other))
  | _, _ -> Error "expected <op>(<arg>)"

let parse_string input =
  let threads = Interner.create 't' in
  let locks = Interner.create 'L' in
  let locs = Interner.create 'x' in
  let events = ref [] in
  let err = ref None in
  let lines = String.split_on_char '\n' input in
  List.iteri
    (fun idx line ->
      if !err = None && not (is_blank line) then begin
        let lineno = idx + 1 in
        match String.index_opt line '|' with
        | None -> err := Some (Printf.sprintf "line %d: expected <thread>|<op>" lineno)
        | Some bar ->
          let thread_name = String.trim (String.sub line 0 bar) in
          let rest = String.sub line (bar + 1) (String.length line - bar - 1) in
          (* tolerate trailing "|<aux>" columns, as in RAPID's std format *)
          let rest =
            match String.index_opt rest '|' with
            | Some b2 -> String.sub rest 0 b2
            | None -> rest
          in
          if thread_name = "" then
            err := Some (Printf.sprintf "line %d: empty thread name" lineno)
          else begin
            let tid = Interner.intern threads thread_name in
            match parse_op ~threads ~locks ~locs (String.trim rest) with
            | Ok op -> events := Event.mk tid op :: !events
            | Error msg -> err := Some (Printf.sprintf "line %d: %s" lineno msg)
          end
      end)
    lines;
  match !err with
  | Some msg -> Error msg
  | None -> Ok (Trace.of_events (Array.of_list (List.rev !events)))

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse_string contents

let to_string trace =
  let buf = Buffer.create (16 * Trace.length trace) in
  Trace.iteri
    (fun _ (e : Event.t) ->
      let line =
        match e.op with
        | Event.Read x -> Printf.sprintf "t%d|r(x%d)" e.thread x
        | Event.Write x -> Printf.sprintf "t%d|w(x%d)" e.thread x
        | Event.Acquire l -> Printf.sprintf "t%d|acq(L%d)" e.thread l
        | Event.Release l -> Printf.sprintf "t%d|rel(L%d)" e.thread l
        | Event.Fork u -> Printf.sprintf "t%d|fork(t%d)" e.thread u
        | Event.Join u -> Printf.sprintf "t%d|join(t%d)" e.thread u
        | Event.Release_store l -> Printf.sprintf "t%d|relst(L%d)" e.thread l
        | Event.Acquire_load l -> Printf.sprintf "t%d|acqld(L%d)" e.thread l
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let to_rapid_std trace =
  let buf = Buffer.create (16 * Trace.length trace) in
  Trace.iteri
    (fun i (e : Event.t) ->
      let op =
        match e.Event.op with
        | Event.Read x -> Printf.sprintf "r(V%d)" x
        | Event.Write x -> Printf.sprintf "w(V%d)" x
        | Event.Acquire l -> Printf.sprintf "acq(L%d)" l
        | Event.Release l -> Printf.sprintf "rel(L%d)" l
        | Event.Release_store l -> Printf.sprintf "rel(A%d)" l
        | Event.Acquire_load l -> Printf.sprintf "acq(A%d)" l
        | Event.Fork u -> Printf.sprintf "fork(T%d)" u
        | Event.Join u -> Printf.sprintf "join(T%d)" u
      in
      Buffer.add_string buf (Printf.sprintf "T%d|%s|%d\n" e.Event.thread op i))
    trace;
  Buffer.contents buf

let to_file path trace =
  let oc = open_out_bin path in
  output_string oc (to_string trace);
  close_out oc
