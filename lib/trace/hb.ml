(* Bitset over event indices. *)
module Bits = struct
  type t = Bytes.t

  let create n = Bytes.make ((n + 7) / 8) '\000'

  let set b i =
    let byte = i lsr 3 and bit = i land 7 in
    Bytes.unsafe_set b byte
      (Char.chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl bit)))

  let test b i =
    let byte = i lsr 3 and bit = i land 7 in
    Char.code (Bytes.unsafe_get b byte) land (1 lsl bit) <> 0

  let union ~into src =
    for k = 0 to Bytes.length into - 1 do
      Bytes.unsafe_set into k
        (Char.chr (Char.code (Bytes.unsafe_get into k) lor Char.code (Bytes.unsafe_get src k)))
    done


end

type t = { sets : Bits.t array }

let is_release_like (op : Event.op) =
  match op with
  | Event.Release _ | Event.Fork _ | Event.Release_store _ -> true
  | Event.Acquire _ | Event.Join _ | Event.Acquire_load _ | Event.Read _ | Event.Write _ -> false

let closure trace =
  let n = Trace.length trace in
  let nthreads = trace.Trace.nthreads in
  let nlocks = Stdlib.max 1 trace.Trace.nlocks in
  let sets = Array.init n (fun _ -> Bits.create n) in
  (* index of the last event of each thread so far, -1 if none *)
  let last_of_thread = Array.make nthreads (-1) in
  (* predecessor set of the last release of each sync object.  Copy (not
     union) semantics: an acquire-load synchronizes with the latest
     release-store only, as in TSan's ReleaseStore handler; for mutexes the
     two coincide because lock discipline makes release sets monotone. *)
  let sync_last = Array.make nlocks None in
  (* set inherited by a forked thread at its first event *)
  let inherit_set : Bits.t option array = Array.make nthreads None in
  for i = 0 to n - 1 do
    let e = Trace.get trace i in
    let tid = e.Event.thread in
    let s = sets.(i) in
    Bits.set s i;
    (if last_of_thread.(tid) >= 0 then Bits.union ~into:s sets.(last_of_thread.(tid))
     else
       match inherit_set.(tid) with
       | Some parent -> Bits.union ~into:s parent
       | None -> ());
    (match e.Event.op with
    | Event.Acquire l | Event.Acquire_load l -> (
      match sync_last.(l) with Some u -> Bits.union ~into:s u | None -> ())
    | Event.Join u ->
      if last_of_thread.(u) >= 0 then Bits.union ~into:s sets.(last_of_thread.(u))
    | Event.Read _ | Event.Write _ | Event.Release _ | Event.Release_store _ | Event.Fork _ -> ());
    (match e.Event.op with
    | Event.Release l | Event.Release_store l -> sync_last.(l) <- Some s
    | Event.Fork u -> inherit_set.(u) <- Some s
    | Event.Acquire _ | Event.Acquire_load _ | Event.Join _ | Event.Read _ | Event.Write _ -> ());
    last_of_thread.(tid) <- i
  done;
  { sets }

let ordered c i j = if i = j then true else if i > j then false else Bits.test c.sets.(j) i

let racy_pairs trace =
  let c = closure trace in
  let n = Trace.length trace in
  (* bucket access events per location to avoid the full quadratic pair scan *)
  let by_loc = Hashtbl.create 64 in
  let races = ref [] in
  for j = 0 to n - 1 do
    let e2 = Trace.get trace j in
    match Event.accessed_loc e2 with
    | None -> ()
    | Some x ->
      let earlier = try Hashtbl.find by_loc x with Not_found -> [] in
      List.iter
        (fun i ->
          let e1 = Trace.get trace i in
          if Event.conflicting e1 e2 && not (ordered c i j) then races := (i, j) :: !races)
        earlier;
      Hashtbl.replace by_loc x (j :: earlier)
  done;
  List.rev !races

let racy_pairs_sampled trace ~sampled =
  List.filter (fun (i, j) -> sampled.(i) && sampled.(j)) (racy_pairs trace)

let racy_locations trace ~sampled =
  let locs = Hashtbl.create 8 in
  List.iter
    (fun (i, _) ->
      match Event.accessed_loc (Trace.get trace i) with
      | Some x -> Hashtbl.replace locs x ()
      | None -> ())
    (racy_pairs_sampled trace ~sampled);
  List.sort compare (Hashtbl.fold (fun x () acc -> x :: acc) locs [])

let has_sampled_race trace ~sampled = racy_pairs_sampled trace ~sampled <> []

let local_times_ft trace =
  let n = Trace.length trace in
  let counts = Array.make trace.Trace.nthreads 0 in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let e = Trace.get trace i in
    out.(i) <- counts.(e.Event.thread) + 1;
    if is_release_like e.Event.op then counts.(e.Event.thread) <- counts.(e.Event.thread) + 1
  done;
  out

let timestamps_of_local trace locals ~eligible =
  let c = closure trace in
  let n = Trace.length trace in
  let nthreads = trace.Trace.nthreads in
  Array.init n (fun j ->
      let ts = Array.make nthreads 0 in
      for i = 0 to j do
        let e = Trace.get trace i in
        if eligible i && ordered c i j && locals.(i) > ts.(e.Event.thread) then
          ts.(e.Event.thread) <- locals.(i)
      done;
      ts)

let timestamps_ft trace =
  timestamps_of_local trace (local_times_ft trace) ~eligible:(fun _ -> true)

let rel_after_s trace ~sampled =
  let n = Trace.length trace in
  let pending = Array.make trace.Trace.nthreads false in
  let out = Array.make n false in
  for i = 0 to n - 1 do
    let e = Trace.get trace i in
    let tid = e.Event.thread in
    if Event.is_access e && sampled.(i) then pending.(tid) <- true;
    if is_release_like e.Event.op && pending.(tid) then begin
      out.(i) <- true;
      pending.(tid) <- false
    end
  done;
  out

let local_times_sam trace ~sampled =
  let marked = rel_after_s trace ~sampled in
  let n = Trace.length trace in
  let counts = Array.make trace.Trace.nthreads 0 in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let e = Trace.get trace i in
    out.(i) <- counts.(e.Event.thread) + 1;
    if marked.(i) then counts.(e.Event.thread) <- counts.(e.Event.thread) + 1
  done;
  out

let timestamps_sam trace ~sampled =
  let locals = local_times_sam trace ~sampled in
  timestamps_of_local trace locals ~eligible:(fun i -> sampled.(i))

let diff_count t1 t2 =
  assert (Array.length t1 = Array.length t2);
  let d = ref 0 in
  Array.iteri (fun k v -> if v <> t2.(k) then incr d) t1;
  !d

let vt trace ~sampled =
  let stamps = timestamps_sam trace ~sampled in
  let n = Trace.length trace in
  let nthreads = trace.Trace.nthreads in
  let out = Array.make n 0 in
  let acc = Array.make nthreads 0 in
  let prev = Array.make nthreads (-1) in
  let bottom = Array.make nthreads 0 in
  for i = 0 to n - 1 do
    let tid = (Trace.get trace i).Event.thread in
    let before = if prev.(tid) >= 0 then stamps.(prev.(tid)) else bottom in
    acc.(tid) <- acc.(tid) + diff_count before stamps.(i);
    out.(i) <- acc.(tid);
    prev.(tid) <- i
  done;
  out

let u_timestamps trace ~sampled =
  let vts = vt trace ~sampled in
  timestamps_of_local trace vts ~eligible:(fun _ -> true)

let leq t1 t2 =
  assert (Array.length t1 = Array.length t2);
  let ok = ref true in
  Array.iteri (fun k v -> if v > t2.(k) then ok := false) t1;
  !ok
