module Prng = Ft_support.Prng

type params = {
  nthreads : int;
  nlocks : int;
  nlocs : int;
  length : int;
  atomics : bool;
  forkjoin : bool;
}

let default =
  { nthreads = 4; nlocks = 3; nlocs = 6; length = 60; atomics = false; forkjoin = false }

type action = Do_read | Do_write | Do_acquire | Do_release | Do_relst | Do_acqld

let random prng p =
  assert (p.nthreads >= 1);
  let b = Trace.Builder.create () in
  (* Sync-object id space: mutexes [0, nlocks), atomics [nlocks, 2*nlocks)
     when enabled — a sync object must not mix styles. *)
  let n_mutexes = p.nlocks in
  let holder = Array.make (Stdlib.max 1 n_mutexes) (-1) in
  let held : int list array = Array.make p.nthreads [] in
  let runnable = Array.make p.nthreads true in
  if p.forkjoin then begin
    for u = 1 to p.nthreads - 1 do
      runnable.(u) <- false
    done;
    (* thread 0 forks everyone up front, with a little local noise *)
    for u = 1 to p.nthreads - 1 do
      if p.nlocs > 0 && Prng.bool prng then Trace.Builder.write b 0 (Prng.int prng p.nlocs);
      Trace.Builder.fork b 0 u;
      runnable.(u) <- true
    done
  end;
  let runnable_threads () =
    let acc = ref [] in
    for t = p.nthreads - 1 downto 0 do
      if runnable.(t) then acc := t :: !acc
    done;
    Array.of_list !acc
  in
  let weights t =
    let base =
      [
        (Do_read, if p.nlocs > 0 then 0.30 else 0.0);
        (Do_write, if p.nlocs > 0 then 0.25 else 0.0);
        (Do_acquire, if n_mutexes > 0 then 0.20 else 0.0);
        (Do_release, if held.(t) <> [] then 0.20 else 0.0);
        (Do_relst, if p.atomics && p.nlocks > 0 then 0.04 else 0.0);
        (Do_acqld, if p.atomics && p.nlocks > 0 then 0.04 else 0.0);
      ]
    in
    Array.of_list (List.filter (fun (_, w) -> w > 0.0) base)
  in
  let step t =
    let ws = weights t in
    if Array.length ws = 0 then ()
    else begin
      match Prng.pick_weighted prng ws with
      | Do_read -> Trace.Builder.read b t (Prng.int prng p.nlocs)
      | Do_write -> Trace.Builder.write b t (Prng.int prng p.nlocs)
      | Do_acquire ->
        (* pick a free mutex if any; otherwise fall back to an access *)
        let free = ref [] in
        for l = n_mutexes - 1 downto 0 do
          if holder.(l) < 0 then free := l :: !free
        done;
        (match !free with
        | [] -> if p.nlocs > 0 then Trace.Builder.read b t (Prng.int prng p.nlocs)
        | free ->
          let l = Prng.pick prng (Array.of_list free) in
          holder.(l) <- t;
          held.(t) <- l :: held.(t);
          Trace.Builder.acquire b t l)
      | Do_release -> (
        match held.(t) with
        | [] -> ()
        | l :: rest ->
          holder.(l) <- -1;
          held.(t) <- rest;
          Trace.Builder.release b t l)
      | Do_relst -> Trace.Builder.release_store b t (n_mutexes + Prng.int prng p.nlocks)
      | Do_acqld -> Trace.Builder.acquire_load b t (n_mutexes + Prng.int prng p.nlocks)
    end
  in
  let budget = Stdlib.max 0 (p.length - Trace.Builder.size b) in
  for _ = 1 to budget do
    let ts = runnable_threads () in
    if Array.length ts > 0 then step (Prng.pick prng ts)
  done;
  (* release everything still held so that fork/join post-processing and
     re-interleaving tests start from a quiescent state *)
  Array.iteri
    (fun t locks -> List.iter (fun l -> Trace.Builder.release b t l) locks)
    held;
  if p.forkjoin then
    for u = 1 to p.nthreads - 1 do
      runnable.(u) <- false;
      Trace.Builder.join b 0 u
    done;
  Trace.Builder.build b

let random_sampled prng p ~rate =
  let trace = random prng p in
  let sampled =
    Array.init (Trace.length trace) (fun i ->
        Event.is_access (Trace.get trace i) && Prng.bernoulli prng ~p:rate)
  in
  (trace, sampled)
