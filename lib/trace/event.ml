type tid = int
type lock = int
type loc = int

type op =
  | Read of loc
  | Write of loc
  | Acquire of lock
  | Release of lock
  | Fork of tid
  | Join of tid
  | Release_store of lock
  | Acquire_load of lock

type t = { thread : tid; op : op }

let mk thread op = { thread; op }

let is_access e =
  match e.op with
  | Read _ | Write _ -> true
  | Acquire _ | Release _ | Fork _ | Join _ | Release_store _ | Acquire_load _ -> false

let is_sync e = not (is_access e)

let accessed_loc e =
  match e.op with
  | Read x | Write x -> Some x
  | Acquire _ | Release _ | Fork _ | Join _ | Release_store _ | Acquire_load _ -> None

let conflicting e1 e2 =
  e1.thread <> e2.thread
  &&
  match (e1.op, e2.op) with
  | Write x, Write y | Write x, Read y | Read x, Write y -> x = y
  | Read _, Read _ -> false
  | _, _ -> false

let pp_op fmt = function
  | Read x -> Format.fprintf fmt "r(x%d)" x
  | Write x -> Format.fprintf fmt "w(x%d)" x
  | Acquire l -> Format.fprintf fmt "acq(L%d)" l
  | Release l -> Format.fprintf fmt "rel(L%d)" l
  | Fork u -> Format.fprintf fmt "fork(t%d)" u
  | Join u -> Format.fprintf fmt "join(t%d)" u
  | Release_store l -> Format.fprintf fmt "rel-st(V%d)" l
  | Acquire_load l -> Format.fprintf fmt "acq-ld(V%d)" l

let pp fmt e = Format.fprintf fmt "%a@@t%d" pp_op e.op e.thread

let to_string e = Format.asprintf "%a" pp e

let equal e1 e2 = e1.thread = e2.thread && e1.op = e2.op

let compare_op (a : op) (b : op) = Stdlib.compare a b
