type t = {
  events : Event.t array;
  nthreads : int;
  nlocks : int;
  nlocs : int;
}

let dims_of_events events =
  let nthreads = ref 0 and nlocks = ref 0 and nlocs = ref 0 in
  let bump r v = if v + 1 > !r then r := v + 1 in
  Array.iter
    (fun (e : Event.t) ->
      bump nthreads e.thread;
      match e.op with
      | Event.Read x | Event.Write x -> bump nlocs x
      | Event.Acquire l | Event.Release l | Event.Release_store l | Event.Acquire_load l ->
        bump nlocks l
      | Event.Fork u | Event.Join u -> bump nthreads u)
    events;
  (!nthreads, !nlocks, !nlocs)

let of_events events =
  let nthreads, nlocks, nlocs = dims_of_events events in
  { events; nthreads = Stdlib.max 1 nthreads; nlocks; nlocs }

let make ~nthreads ~nlocks ~nlocs events =
  let t, l, x = dims_of_events events in
  if t > nthreads then invalid_arg "Trace.make: thread id out of range";
  if l > nlocks then invalid_arg "Trace.make: lock id out of range";
  if x > nlocs then invalid_arg "Trace.make: location id out of range";
  { events; nthreads; nlocks; nlocs }

let length t = Array.length t.events
let get t i = t.events.(i)
let iteri f t = Array.iteri f t.events

type lock_style = Unused | Mutex | Atomic

let well_formed t =
  let exception Bad of string in
  (* [holder.(l)] is the thread currently holding lock l, or -1. *)
  let holder = Array.make (Stdlib.max 1 t.nlocks) (-1) in
  let style = Array.make (Stdlib.max 1 t.nlocks) Unused in
  (* lifecycle: 0 = not yet started (needs fork unless thread 0),
     1 = runnable, 2 = joined. *)
  let started = Array.make t.nthreads false in
  let joined = Array.make t.nthreads false in
  let forked = Array.make t.nthreads false in
  started.(0) <- true;
  let check_style l want i =
    match (style.(l), want) with
    | Unused, _ -> style.(l) <- want
    | Mutex, Mutex | Atomic, Atomic -> ()
    | Mutex, Atomic | Atomic, Mutex | _, Unused ->
      raise (Bad (Printf.sprintf "event %d: sync object %d mixes mutex and atomic use" i l))
  in
  try
    Array.iteri
      (fun i (e : Event.t) ->
        let tid = e.thread in
        if joined.(tid) then
          raise (Bad (Printf.sprintf "event %d: thread %d acts after being joined" i tid));
        started.(tid) <- true;
        match e.op with
        | Event.Read _ | Event.Write _ -> ()
        | Event.Acquire l ->
          check_style l Mutex i;
          if holder.(l) >= 0 then
            raise
              (Bad
                 (Printf.sprintf "event %d: thread %d acquires lock %d held by thread %d" i tid
                    l holder.(l)));
          holder.(l) <- tid
        | Event.Release l ->
          check_style l Mutex i;
          if holder.(l) <> tid then
            raise
              (Bad
                 (Printf.sprintf "event %d: thread %d releases lock %d it does not hold" i tid l));
          holder.(l) <- -1
        | Event.Release_store l | Event.Acquire_load l -> check_style l Atomic i
        | Event.Fork u ->
          if u = tid then raise (Bad (Printf.sprintf "event %d: thread %d forks itself" i tid));
          if forked.(u) || started.(u) then
            raise (Bad (Printf.sprintf "event %d: thread %d forked twice or already running" i u));
          forked.(u) <- true
        | Event.Join u ->
          if u = tid then raise (Bad (Printf.sprintf "event %d: thread %d joins itself" i tid));
          if joined.(u) then
            raise (Bad (Printf.sprintf "event %d: thread %d joined twice" i u));
          if not (forked.(u) || started.(u)) then
            raise
              (Bad
                 (Printf.sprintf "event %d: thread %d joined before being forked or started" i u));
          joined.(u) <- true)
      t.events;
    Ok ()
  with Bad msg -> Error msg

let validate t =
  match well_formed t with Ok () -> t | Error msg -> invalid_arg ("Trace.validate: " ^ msg)

type stats = {
  n_events : int;
  n_reads : int;
  n_writes : int;
  n_acquires : int;
  n_releases : int;
  n_forks : int;
  n_joins : int;
  n_release_stores : int;
  n_acquire_loads : int;
  n_accesses : int;
  n_syncs : int;
  locs_touched : int;
  locks_touched : int;
}

let stats t =
  let r = ref 0 and w = ref 0 and a = ref 0 and rl = ref 0 in
  let f = ref 0 and j = ref 0 and rs = ref 0 and al = ref 0 in
  let locs = Array.make (Stdlib.max 1 t.nlocs) false in
  let locks = Array.make (Stdlib.max 1 t.nlocks) false in
  Array.iter
    (fun (e : Event.t) ->
      match e.op with
      | Event.Read x -> incr r; locs.(x) <- true
      | Event.Write x -> incr w; locs.(x) <- true
      | Event.Acquire l -> incr a; locks.(l) <- true
      | Event.Release l -> incr rl; locks.(l) <- true
      | Event.Fork _ -> incr f
      | Event.Join _ -> incr j
      | Event.Release_store l -> incr rs; locks.(l) <- true
      | Event.Acquire_load l -> incr al; locks.(l) <- true)
    t.events;
  let count_true arr = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 arr in
  let n_accesses = !r + !w in
  let n_events = Array.length t.events in
  {
    n_events;
    n_reads = !r;
    n_writes = !w;
    n_acquires = !a;
    n_releases = !rl;
    n_forks = !f;
    n_joins = !j;
    n_release_stores = !rs;
    n_acquire_loads = !al;
    n_accesses;
    n_syncs = n_events - n_accesses;
    locs_touched = (if t.nlocs = 0 then 0 else count_true locs);
    locks_touched = (if t.nlocks = 0 then 0 else count_true locks);
  }

let pp fmt t =
  Array.iteri (fun i e -> Format.fprintf fmt "%4d: %a@." i Event.pp e) t.events

module Builder = struct
  type trace = t

  type t = {
    mutable events : Event.t array;
    mutable len : int;
    mutable next_thread : int;
    mutable next_lock : int;
    mutable next_loc : int;
  }

  let create () =
    { events = Array.make 64 (Event.mk 0 (Event.Read 0)); len = 0; next_thread = 0;
      next_lock = 0; next_loc = 0 }

  let fresh_thread b =
    let id = b.next_thread in
    b.next_thread <- id + 1;
    id

  let fresh_lock b =
    let id = b.next_lock in
    b.next_lock <- id + 1;
    id

  let fresh_loc b =
    let id = b.next_loc in
    b.next_loc <- id + 1;
    id

  let add b e =
    if b.len = Array.length b.events then begin
      let bigger = Array.make (2 * b.len) e in
      Array.blit b.events 0 bigger 0 b.len;
      b.events <- bigger
    end;
    b.events.(b.len) <- e;
    b.len <- b.len + 1

  let read b t x = add b (Event.mk t (Event.Read x))
  let write b t x = add b (Event.mk t (Event.Write x))
  let acquire b t l = add b (Event.mk t (Event.Acquire l))
  let release b t l = add b (Event.mk t (Event.Release l))
  let fork b t u = add b (Event.mk t (Event.Fork u))
  let join b t u = add b (Event.mk t (Event.Join u))
  let release_store b t l = add b (Event.mk t (Event.Release_store l))
  let acquire_load b t l = add b (Event.mk t (Event.Acquire_load l))

  let size b = b.len

  let finalize b : trace =
    let events = Array.sub b.events 0 b.len in
    let nthreads, nlocks, nlocs = dims_of_events events in
    {
      events;
      nthreads = Stdlib.max b.next_thread (Stdlib.max 1 nthreads);
      nlocks = Stdlib.max b.next_lock nlocks;
      nlocs = Stdlib.max b.next_loc nlocs;
    }

  let build b = validate (finalize b)
  let build_unchecked b = finalize b
end
