(** Hand-written example executions, including the paper's running examples.

    Each value pairs a trace with the set of marked (sampled) events used in
    the paper's figures, as a per-event boolean array. *)

type t = {
  name : string;
  trace : Trace.t;
  sampled : bool array;  (** the set S, one flag per event *)
}

val fig1 : t
(** The 18-event, 2-thread, 4-lock execution of Fig. 1/2 with
    S = [{e5, e15, e16}] (0-based indices 4, 14, 15).  Event identities are
    reconstructed from the facts stated in §4.1–4.2: [e5 = w(z)@t1] is
    sampled; t1 releases ℓ1..ℓ4 at e6/e10/e13/e17; t2 acquires them at
    e8/e12/e14/e18; [e7 = w(x)@t1], [e9 = w(x)@t2], [e11 = w(y)@t1];
    [e15, e16] are the sampled accesses making e17 a local-time increment. *)

val fig3 : t
(** A 6-thread execution reaching the clock configuration of Fig. 3: thread
    t1's vector clock is exactly one freshness unit ahead of t2's, so the
    acquire needs to traverse a single ordered-list entry. *)

val simple_race : t
(** Two threads write [x] with no synchronization; both writes sampled. *)

val protected_no_race : t
(** Two threads write [x] under a common lock; both writes sampled — no
    race. *)

val race_missed_by_sampling : t
(** A racy execution in which only one side of the race is sampled, so the
    Analysis Problem answer is "no sampled race". *)

val fork_join_ordered : t
(** Parent writes, forks a child that writes, joins, writes again; all
    sampled — fork/join edges order everything, no race. *)

val atomic_message_passing : t
(** Release-store/acquire-load ordering a write with a read (appendix A.2);
    no race, though a lock-only analysis would miss the edge. *)

val all : t list
(** Every litmus execution above, for table-driven tests. *)
