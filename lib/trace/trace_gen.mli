(** Random well-formed executions, for property-based testing.

    The generator plays a scheduler: it maintains lock ownership and thread
    lifecycles so that every produced trace passes {!Trace.well_formed}.
    With [forkjoin] set, thread 0 forks every other thread up front and joins
    them all at the end (children receive no events after their join). *)

type params = {
  nthreads : int;
  nlocks : int;
  nlocs : int;
  length : int;      (** approximate number of events to generate *)
  atomics : bool;    (** emit release-store / acquire-load events *)
  forkjoin : bool;   (** wrap worker threads in fork/join edges *)
}

val default : params
(** 4 threads, 3 locks, 6 locations, 60 events, no atomics, no fork/join. *)

val random : Ft_support.Prng.t -> params -> Trace.t
(** Draws a fresh well-formed trace. *)

val random_sampled : Ft_support.Prng.t -> params -> rate:float -> Trace.t * bool array
(** A trace plus a Bernoulli([rate]) sample-set mask over its access events. *)
