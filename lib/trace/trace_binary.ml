let magic = "FTRB"
let version = 1

(* --- varints ------------------------------------------------------------- *)

let put_varint buf n =
  assert (n >= 0);
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      loop (n lsr 7)
    end
  in
  loop n

exception Truncated

type cursor = { data : bytes; mutable pos : int }

let get_byte c =
  if c.pos >= Bytes.length c.data then raise Truncated
  else begin
    let b = Char.code (Bytes.get c.data c.pos) in
    c.pos <- c.pos + 1;
    b
  end

let get_varint c =
  let rec loop shift acc =
    if shift > 62 then raise Truncated
    else begin
      let b = get_byte c in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
    end
  in
  loop 0 0

(* --- event coding ---------------------------------------------------------- *)

let tag_of_op (op : Event.op) =
  match op with
  | Event.Read _ -> 0
  | Event.Write _ -> 1
  | Event.Acquire _ -> 2
  | Event.Release _ -> 3
  | Event.Release_store _ -> 4
  | Event.Acquire_load _ -> 5
  | Event.Fork _ -> 6
  | Event.Join _ -> 7

let payload_of_op (op : Event.op) =
  match op with
  | Event.Read x | Event.Write x -> x
  | Event.Acquire l | Event.Release l | Event.Release_store l | Event.Acquire_load l -> l
  | Event.Fork u | Event.Join u -> u

let op_of_tag tag payload =
  match tag with
  | 0 -> Ok (Event.Read payload)
  | 1 -> Ok (Event.Write payload)
  | 2 -> Ok (Event.Acquire payload)
  | 3 -> Ok (Event.Release payload)
  | 4 -> Ok (Event.Release_store payload)
  | 5 -> Ok (Event.Acquire_load payload)
  | 6 -> Ok (Event.Fork payload)
  | 7 -> Ok (Event.Join payload)
  | t -> Error (Printf.sprintf "unknown event tag %d" t)

(* --- encoding ---------------------------------------------------------------- *)

let to_buffer trace =
  let buf = Buffer.create (4 + (3 * Trace.length trace)) in
  Buffer.add_string buf magic;
  put_varint buf version;
  put_varint buf trace.Trace.nthreads;
  put_varint buf trace.Trace.nlocks;
  put_varint buf trace.Trace.nlocs;
  put_varint buf (Trace.length trace);
  Trace.iteri
    (fun _ (e : Event.t) ->
      put_varint buf (tag_of_op e.Event.op lor (e.Event.thread lsl 3));
      put_varint buf (payload_of_op e.Event.op))
    trace;
  buf

let to_bytes trace = Buffer.to_bytes (to_buffer trace)

let of_bytes data =
  let c = { data; pos = 0 } in
  try
    let m = Bytes.sub_string data 0 (String.length magic) in
    c.pos <- String.length magic;
    if m <> magic then Error "bad magic number (not a FreshTrack binary trace)"
    else begin
      let v = get_varint c in
      if v <> version then Error (Printf.sprintf "unsupported version %d" v)
      else begin
        let nthreads = get_varint c in
        let nlocks = get_varint c in
        let nlocs = get_varint c in
        let nevents = get_varint c in
        if nthreads <= 0 then Error "corrupt header: no threads"
        else begin
          let exception Bad of string in
          try
            let events =
              Array.init nevents (fun _ ->
                  let head = get_varint c in
                  let tag = head land 7 and thread = head lsr 3 in
                  let payload = get_varint c in
                  match op_of_tag tag payload with
                  | Error msg -> raise (Bad msg)
                  | Ok op ->
                    if thread >= nthreads then raise (Bad "thread id out of range");
                    (match op with
                    | Event.Read x | Event.Write x ->
                      if x >= nlocs then raise (Bad "location id out of range")
                    | Event.Acquire l | Event.Release l | Event.Release_store l
                    | Event.Acquire_load l ->
                      if l >= nlocks then raise (Bad "lock id out of range")
                    | Event.Fork u | Event.Join u ->
                      if u >= nthreads then raise (Bad "thread operand out of range"));
                    Event.mk thread op)
            in
            Ok (Trace.make ~nthreads ~nlocks ~nlocs events)
          with Bad msg -> Error msg
        end
      end
    end
  with
  | Truncated | Invalid_argument _ -> Error "truncated input"

let write_channel oc trace = Buffer.output_buffer oc (to_buffer trace)

let read_channel ic =
  let n = in_channel_length ic in
  let data = Bytes.create n in
  really_input ic data 0 n;
  of_bytes data

let to_file path trace =
  let oc = open_out_bin path in
  write_channel oc trace;
  close_out oc

let of_file path =
  let ic = open_in_bin path in
  let r = read_channel ic in
  close_in ic;
  r
