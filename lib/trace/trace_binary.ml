let magic = "FTRB"
let version = 1

(* --- varints ------------------------------------------------------------- *)

let put_varint buf n =
  assert (n >= 0);
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      loop (n lsr 7)
    end
  in
  loop n

exception Truncated

type cursor = { data : bytes; mutable pos : int }

let get_byte c =
  if c.pos >= Bytes.length c.data then raise Truncated
  else begin
    let b = Char.code (Bytes.get c.data c.pos) in
    c.pos <- c.pos + 1;
    b
  end

let get_varint c =
  let rec loop shift acc =
    if shift > 62 then raise Truncated
    else begin
      let b = get_byte c in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
    end
  in
  loop 0 0

(* --- event coding ---------------------------------------------------------- *)

let tag_of_op (op : Event.op) =
  match op with
  | Event.Read _ -> 0
  | Event.Write _ -> 1
  | Event.Acquire _ -> 2
  | Event.Release _ -> 3
  | Event.Release_store _ -> 4
  | Event.Acquire_load _ -> 5
  | Event.Fork _ -> 6
  | Event.Join _ -> 7

let payload_of_op (op : Event.op) =
  match op with
  | Event.Read x | Event.Write x -> x
  | Event.Acquire l | Event.Release l | Event.Release_store l | Event.Acquire_load l -> l
  | Event.Fork u | Event.Join u -> u

let op_of_tag tag payload =
  match tag with
  | 0 -> Ok (Event.Read payload)
  | 1 -> Ok (Event.Write payload)
  | 2 -> Ok (Event.Acquire payload)
  | 3 -> Ok (Event.Release payload)
  | 4 -> Ok (Event.Release_store payload)
  | 5 -> Ok (Event.Acquire_load payload)
  | 6 -> Ok (Event.Fork payload)
  | 7 -> Ok (Event.Join payload)
  | t -> Error (Printf.sprintf "unknown event tag %d" t)

(* --- header ----------------------------------------------------------------- *)

type header = { nthreads : int; nlocks : int; nlocs : int; nevents : int }

let header_of_trace trace =
  {
    nthreads = trace.Trace.nthreads;
    nlocks = trace.Trace.nlocks;
    nlocs = trace.Trace.nlocs;
    nevents = Trace.length trace;
  }

(* Decode one event against the header's universe.  [Ok event] or a
   description of the corruption. *)
let decode_event h head payload =
  let tag = head land 7 and thread = head lsr 3 in
  match op_of_tag tag payload with
  | Error _ as err -> err
  | Ok op ->
    if thread >= h.nthreads then Error "thread id out of range"
    else begin
      match op with
      | Event.Read x | Event.Write x ->
        if x >= h.nlocs then Error "location id out of range" else Ok (Event.mk thread op)
      | Event.Acquire l | Event.Release l | Event.Release_store l | Event.Acquire_load l ->
        if l >= h.nlocks then Error "lock id out of range" else Ok (Event.mk thread op)
      | Event.Fork u | Event.Join u ->
        if u >= h.nthreads then Error "thread operand out of range" else Ok (Event.mk thread op)
    end

(* --- encoding ---------------------------------------------------------------- *)

let add_header buf (h : header) =
  Buffer.add_string buf magic;
  put_varint buf version;
  put_varint buf h.nthreads;
  put_varint buf h.nlocks;
  put_varint buf h.nlocs;
  put_varint buf h.nevents

let add_event buf (e : Event.t) =
  put_varint buf (tag_of_op e.Event.op lor (e.Event.thread lsl 3));
  put_varint buf (payload_of_op e.Event.op)

let to_buffer trace =
  let buf = Buffer.create (4 + (3 * Trace.length trace)) in
  add_header buf (header_of_trace trace);
  Trace.iteri (fun _ e -> add_event buf e) trace;
  buf

let to_bytes trace = Buffer.to_bytes (to_buffer trace)

(* --- in-memory decoding ------------------------------------------------------ *)

(* Every event costs at least two bytes (tag/thread varint + payload
   varint), so a header whose event count exceeds half the remaining bytes
   is corrupt.  Checking this before [Array.init nevents] keeps a 10-byte
   hostile file from demanding a multi-GiB allocation. *)
let min_bytes_per_event = 2

let check_header data pos (h : header) =
  if h.nthreads <= 0 then Error "corrupt header: no threads"
  else if h.nlocks < 0 || h.nlocs < 0 || h.nevents < 0 then
    Error "corrupt header: negative dimension"
  else begin
    let remaining = Bytes.length data - pos in
    if h.nevents > remaining / min_bytes_per_event then
      Error
        (Printf.sprintf
           "corrupt header: %d events promised but only %d bytes follow (≥ %d needed)"
           h.nevents remaining (h.nevents * min_bytes_per_event))
    else Ok ()
  end

let read_header_cursor c =
  let m =
    if Bytes.length c.data < String.length magic then raise Truncated
    else Bytes.sub_string c.data 0 (String.length magic)
  in
  c.pos <- String.length magic;
  if m <> magic then Error "bad magic number (not a FreshTrack binary trace)"
  else begin
    let v = get_varint c in
    if v <> version then Error (Printf.sprintf "unsupported version %d" v)
    else begin
      let nthreads = get_varint c in
      let nlocks = get_varint c in
      let nlocs = get_varint c in
      let nevents = get_varint c in
      Ok { nthreads; nlocks; nlocs; nevents }
    end
  end

(* [of_bytes] lives below: it is the batch decoder applied to an in-memory
   reader, not a third decode path. *)

(* --- streaming reader -------------------------------------------------------- *)

(* Chunked reads from a channel: memory stays O(chunk), never O(file), so
   multi-GiB .ftb traces can be scanned event by event.  The same source
   also fronts a fully in-memory payload ([ic = None], the whole buffer
   valid up front) so network batches decode through the identical
   hardened path. *)

let default_chunk = 64 * 1024

type source = {
  ic : in_channel option;  (* [None]: in-memory, [buf] holds everything *)
  buf : bytes;
  mutable base : int;  (* channel offset of [buf.(0)] *)
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
}

(* only called with the buffer exhausted ([pos >= len]), so the new base is
   exactly the old one advanced past everything consumed *)
let refill s =
  match s.ic with
  | None -> false
  | Some ic ->
    s.base <- s.base + s.len;
    let n = input ic s.buf 0 (Bytes.length s.buf) in
    s.pos <- 0;
    s.len <- n;
    n > 0

let src_byte s =
  if s.pos >= s.len && not (refill s) then raise Truncated
  else begin
    let b = Char.code (Bytes.get s.buf s.pos) in
    s.pos <- s.pos + 1;
    b
  end

let src_varint s =
  let rec loop shift acc =
    if shift > 62 then raise Truncated
    else begin
      let b = src_byte s in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
    end
  in
  loop 0 0

type reader = {
  src : source;
  rheader : header;
  mutable next_index : int;  (* events already yielded *)
}

let open_channel ?(chunk_size = default_chunk) ic =
  let base = try pos_in ic with Sys_error _ -> 0 in
  let src =
    { ic = Some ic; buf = Bytes.create (Stdlib.max 16 chunk_size); base; pos = 0; len = 0 }
  in
  try
    let mbuf = Bytes.create (String.length magic) in
    for i = 0 to Bytes.length mbuf - 1 do
      Bytes.set mbuf i (Char.chr (src_byte src))
    done;
    let m = Bytes.to_string mbuf in
    if m <> magic then Error "bad magic number (not a FreshTrack binary trace)"
    else begin
      let v = src_varint src in
      if v <> version then Error (Printf.sprintf "unsupported version %d" v)
      else begin
        let nthreads = src_varint src in
        let nlocks = src_varint src in
        let nlocs = src_varint src in
        let nevents = src_varint src in
        let h = { nthreads; nlocks; nlocs; nevents } in
        if h.nthreads <= 0 then Error "corrupt header: no threads"
        else if h.nlocks < 0 || h.nlocs < 0 || h.nevents < 0 then
          Error "corrupt header: negative dimension"
        else begin
          (* seekable channels expose their length: apply the same 2-bytes/
             event budget as [of_bytes] before anyone trusts [nevents] *)
          match
            let total = in_channel_length ic in
            let consumed = pos_in ic - (src.len - src.pos) in
            total - consumed
          with
          | remaining when h.nevents > remaining / min_bytes_per_event ->
            Error
              (Printf.sprintf
                 "corrupt header: %d events promised but only %d bytes follow (≥ %d needed)"
                 h.nevents remaining (h.nevents * min_bytes_per_event))
          | _ -> Ok { src; rheader = h; next_index = 0 }
          | exception Sys_error _ ->
            (* non-seekable (pipe): no length to check against; the
               streaming reader allocates per event, so a lying header can
               only make us read more, not pre-allocate *)
            Ok { src; rheader = h; next_index = 0 }
        end
      end
    end
  with Truncated -> Error "truncated input"

let header r = r.rheader

let events_read r = r.next_index

let byte_pos r = r.src.base + r.src.pos

let seek r ~byte_offset ~next_index =
  if byte_offset < 0 then Error "seek: negative byte offset"
  else if next_index < 0 || next_index > r.rheader.nevents then
    Error "seek: event index out of range"
  else
    match r.src.ic with
    | None ->
      if byte_offset > r.src.len then Error "seek: byte offset beyond the payload"
      else begin
        r.src.pos <- byte_offset;
        r.next_index <- next_index;
        Ok ()
      end
    | Some ic -> (
      match seek_in ic byte_offset with
      | () ->
        r.src.base <- byte_offset;
        r.src.pos <- 0;
        r.src.len <- 0;
        r.next_index <- next_index;
        Ok ()
      | exception Sys_error msg -> Error ("seek: " ^ msg))

let next r =
  if r.next_index >= r.rheader.nevents then Ok None
  else begin
    try
      let head = src_varint r.src in
      let payload = src_varint r.src in
      match decode_event r.rheader head payload with
      | Error _ as err -> err
      | Ok e ->
        r.next_index <- r.next_index + 1;
        Ok (Some e)
    with Truncated -> Error "truncated input"
  end

let open_bytes data =
  let c = { data; pos = 0 } in
  try
    match read_header_cursor c with
    | Error _ as err -> err
    | Ok h -> (
      match check_header data c.pos h with
      | Error _ as err -> err
      | Ok () ->
        Ok
          {
            src = { ic = None; buf = data; base = 0; pos = c.pos; len = Bytes.length data };
            rheader = h;
            next_index = 0;
          })
  with Truncated -> Error "truncated input"

let open_string s = open_bytes (Bytes.unsafe_of_string s)

(* --- structure-of-arrays batch decoding -------------------------------------- *)

(* The per-event [next] pays two heap words per event ([Some e] under [Ok])
   before the consumer even sees it.  [read_batch] decodes a run of events
   into parallel int arrays instead: the decode loop allocates nothing, and
   the arrays are reused across calls.  [ends.(j)] records the stream offset
   just past event [j], which is exactly the [byte_pos] a checkpoint taken
   after that event must store — the resumable runner cuts batches anywhere
   without offset drift. *)

type batch = {
  mutable n : int;       (* events decoded by the last [read_batch] *)
  threads : int array;
  tags : int array;      (* 0=read … 7=join, as in the wire format *)
  payloads : int array;
  ends : int array;      (* byte offset just past event [j] *)
}

let default_batch_capacity = 8192

let create_batch ?(capacity = default_batch_capacity) () =
  let capacity = Stdlib.max 1 capacity in
  {
    n = 0;
    threads = Array.make capacity 0;
    tags = Array.make capacity 0;
    payloads = Array.make capacity 0;
    ends = Array.make capacity 0;
  }

let batch_capacity b = Array.length b.threads
let batch_length b = b.n

(* All 8 three-bit tags are valid operations, so tag range needs no check;
   operands are validated against the header exactly as [decode_event]. *)
let read_batch r b =
  b.n <- 0;
  let h = r.rheader in
  let goal = Stdlib.min (Array.length b.threads) (h.nevents - r.next_index) in
  try
    let rec loop j =
      if j >= goal then Ok j
      else begin
        let head = src_varint r.src in
        let payload = src_varint r.src in
        let tag = head land 7 and thread = head lsr 3 in
        if thread >= h.nthreads then Error "thread id out of range"
        else if tag <= 1 && payload >= h.nlocs then Error "location id out of range"
        else if tag >= 2 && tag <= 5 && payload >= h.nlocks then Error "lock id out of range"
        else if tag >= 6 && payload >= h.nthreads then Error "thread operand out of range"
        else begin
          Array.unsafe_set b.threads j thread;
          Array.unsafe_set b.tags j tag;
          Array.unsafe_set b.payloads j payload;
          Array.unsafe_set b.ends j (r.src.base + r.src.pos);
          r.next_index <- r.next_index + 1;
          loop (j + 1)
        end
      end
    in
    match loop 0 with
    | Ok n ->
      b.n <- n;
      Ok n
    | Error _ as err -> err
  with Truncated -> Error "truncated input"

let op_of_tag_exn tag payload : Event.op =
  match tag with
  | 0 -> Event.Read payload
  | 1 -> Event.Write payload
  | 2 -> Event.Acquire payload
  | 3 -> Event.Release payload
  | 4 -> Event.Release_store payload
  | 5 -> Event.Acquire_load payload
  | 6 -> Event.Fork payload
  | 7 -> Event.Join payload
  | _ -> assert false

let batch_event b j =
  if j < 0 || j >= b.n then invalid_arg "Trace_binary.batch_event: index out of range";
  Event.mk b.threads.(j) (op_of_tag_exn b.tags.(j) b.payloads.(j))

let batch_end b j =
  if j < 0 || j >= b.n then invalid_arg "Trace_binary.batch_end: index out of range";
  b.ends.(j)

let dummy_event = Event.mk 0 (Event.Read 0)

let of_bytes data =
  match open_bytes data with
  | Error _ as err -> err
  | Ok r ->
    let h = r.rheader in
    (* [check_header] already vetted [nevents] against the byte budget, so
       sizing the array to it up front is safe even for hostile input *)
    let events = Array.make h.nevents dummy_event in
    let b = create_batch () in
    let rec loop () =
      match read_batch r b with
      | Error _ as err -> err
      | Ok 0 ->
        Ok (Trace.make ~nthreads:h.nthreads ~nlocks:h.nlocks ~nlocs:h.nlocs events)
      | Ok n ->
        let start = r.next_index - n in
        for j = 0 to n - 1 do
          events.(start + j) <- batch_event b j
        done;
        loop ()
    in
    loop ()

let fold_channel ?chunk_size ic ~init ~f =
  match open_channel ?chunk_size ic with
  | Error _ as err -> err
  | Ok r ->
    let rec loop acc =
      match next r with
      | Error _ as err -> err
      | Ok None -> Ok (r.rheader, acc)
      | Ok (Some e) -> loop (f acc (r.next_index - 1) e)
    in
    loop init

let iter_channel ?chunk_size ic ~f =
  fold_channel ?chunk_size ic ~init:() ~f:(fun () i e -> f i e)

let iter_file ?chunk_size path ~f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> iter_channel ?chunk_size ic ~f)

(* --- streaming writer -------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  wbuf : Buffer.t;
  wheader : header;
  mutable written : int;
  mutable closed : bool;
}

let create_writer oc ~nthreads ~nlocks ~nlocs ~nevents =
  if nthreads <= 0 then invalid_arg "Trace_binary.create_writer: no threads";
  if nevents < 0 then invalid_arg "Trace_binary.create_writer: negative event count";
  let wheader = { nthreads; nlocks; nlocs; nevents } in
  let wbuf = Buffer.create default_chunk in
  add_header wbuf wheader;
  { oc; wbuf; wheader; written = 0; closed = false }

let write_event w (e : Event.t) =
  if w.closed then invalid_arg "Trace_binary.write_event: writer is closed";
  if w.written >= w.wheader.nevents then
    invalid_arg "Trace_binary.write_event: more events than the header promised";
  let h = w.wheader in
  if e.Event.thread < 0 || e.Event.thread >= h.nthreads then
    invalid_arg "Trace_binary.write_event: thread id out of range";
  (match e.Event.op with
  | Event.Read x | Event.Write x ->
    if x < 0 || x >= h.nlocs then invalid_arg "Trace_binary.write_event: location id out of range"
  | Event.Acquire l | Event.Release l | Event.Release_store l | Event.Acquire_load l ->
    if l < 0 || l >= h.nlocks then invalid_arg "Trace_binary.write_event: lock id out of range"
  | Event.Fork u | Event.Join u ->
    if u < 0 || u >= h.nthreads then
      invalid_arg "Trace_binary.write_event: thread operand out of range");
  add_event w.wbuf e;
  w.written <- w.written + 1;
  if Buffer.length w.wbuf >= default_chunk then begin
    Buffer.output_buffer w.oc w.wbuf;
    Buffer.clear w.wbuf
  end

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    Buffer.output_buffer w.oc w.wbuf;
    Buffer.clear w.wbuf;
    flush w.oc;
    if w.written <> w.wheader.nevents then
      invalid_arg
        (Printf.sprintf "Trace_binary.close_writer: header promised %d events, %d written"
           w.wheader.nevents w.written)
  end

(* --- whole-trace channel I/O -------------------------------------------------- *)

let write_channel oc trace =
  let h = header_of_trace trace in
  let w = create_writer oc ~nthreads:h.nthreads ~nlocks:h.nlocks ~nlocs:h.nlocs
      ~nevents:h.nevents in
  Trace.iteri (fun _ e -> write_event w e) trace;
  close_writer w

(* Builds the event array through the batch reader: peak extra memory is
   one chunk plus the growing array itself — never a whole-file copy. *)
let read_channel ic =
  match open_channel ic with
  | Error _ as err -> err
  | Ok r ->
    let h = header r in
    (* grow geometrically instead of trusting nevents for the first
       allocation; a validated header makes the hint safe to use as a cap
       (on a pipe the count is unverified, so events drive the growth) *)
    let events = ref (Array.make (Stdlib.min (Stdlib.max 16 h.nevents) 65536) dummy_event) in
    let n = ref 0 in
    let b = create_batch () in
    let rec loop () =
      match read_batch r b with
      | Error _ as err -> err
      | Ok 0 ->
        let arr = Array.sub !events 0 !n in
        Ok (Trace.make ~nthreads:h.nthreads ~nlocks:h.nlocks ~nlocs:h.nlocs arr)
      | Ok k ->
        if !n + k > Array.length !events then begin
          let cap = ref (Array.length !events) in
          while !n + k > !cap do
            cap := Stdlib.min h.nevents (2 * !cap)
          done;
          let bigger = Array.make !cap dummy_event in
          Array.blit !events 0 bigger 0 !n;
          events := bigger
        end;
        for j = 0 to k - 1 do
          !events.(!n + j) <- batch_event b j
        done;
        n := !n + k;
        loop ()
    in
    (try loop () with Invalid_argument _ -> Error "truncated input")

let to_file path trace =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write_channel oc trace)

let of_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_channel ic)
