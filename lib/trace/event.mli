(** Events of a concurrent-program execution (§2 of the paper).

    An event is an operation performed by a thread: a read or write of a
    memory location, an acquire or release of a lock, or a fork/join edge.
    The paper's core development uses only [Read]/[Write]/[Acquire]/[Release];
    fork and join are needed by realistic workloads and are treated by every
    detector as unskippable synchronization edges, which is sound and keeps
    the complexity bounds intact (they occur O(threads) times).

    [Release_store] and [Acquire_load] model the non-mutex synchronization of
    appendix A.2 (atomic variables, message passing): a release-store does not
    require a preceding acquire by the same thread, which breaks the lock-VC
    monotonicity that Algorithm 3 relies on. Sync-variable ids share the lock
    id space. *)

type tid = int
(** Thread identifier, dense in [\[0, nthreads)]. *)

type lock = int
(** Lock / sync-object identifier, dense in [\[0, nlocks)]. *)

type loc = int
(** Memory-location identifier, dense in [\[0, nlocs)]. *)

type op =
  | Read of loc
  | Write of loc
  | Acquire of lock
  | Release of lock
  | Fork of tid          (** child thread id *)
  | Join of tid          (** child thread id *)
  | Release_store of lock  (** atomic store-release on a sync variable *)
  | Acquire_load of lock   (** atomic load-acquire on a sync variable *)

type t = { thread : tid; op : op }

val mk : tid -> op -> t

val is_access : t -> bool
(** [true] on reads and writes — the events eligible for sampling. *)

val is_sync : t -> bool
(** [true] on acquire/release/fork/join/atomic events. *)

val accessed_loc : t -> loc option
(** The memory location of a read/write, [None] otherwise. *)

val conflicting : t -> t -> bool
(** Two access events of different threads touching a common location,
    not both reads (§2, "conflicting pair"). *)

val pp : Format.formatter -> t -> unit
(** Renders as in the paper, e.g. ["w(x3)@t1"]. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare_op : op -> op -> int
