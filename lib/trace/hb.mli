(** Brute-force happens-before oracle and declarative timestamps.

    This module is the *specification* side of the test suite: it implements
    the definitions of §2 and §4 of the paper directly (transitive closure
    over event bitsets, Equations 1–10), with no sharing of code or data
    structures with the optimized detectors in [ft_core].  It is quadratic in
    the trace length and meant for traces of up to a few thousand events.

    Happens-before edges (§2 extended with the fork/join and atomic events of
    appendix A.2):
    - thread order;
    - [rel(ℓ)]/[relst(ℓ)] to every later [acq(ℓ)]/[acqld(ℓ)];
    - [fork(u)] to every event of thread [u];
    - every event of thread [u] to [join(u)]. *)

type t
(** Closure of a trace: per-event predecessor bitsets. *)

val closure : Trace.t -> t

val ordered : t -> int -> int -> bool
(** [ordered c i j] is [e_i ≤HB e_j].  Reflexive.  [false] whenever
    [i > j] (distinct events are HB-ordered only along trace order). *)

val racy_pairs : Trace.t -> (int * int) list
(** All conflicting unordered pairs [(i, j)] with [i < j], in order. *)

val racy_pairs_sampled : Trace.t -> sampled:bool array -> (int * int) list
(** Racy pairs with both components marked (Problem 1). [sampled] has one
    entry per event; sync events are never considered sampled. *)

val racy_locations : Trace.t -> sampled:bool array -> Event.loc list
(** Distinct locations (sorted) on which a sampled racy pair exists — the
    quantity of Fig 6(a). *)

val has_sampled_race : Trace.t -> sampled:bool array -> bool

(** {1 Declarative timestamps} *)

val local_times_ft : Trace.t -> int array
(** [L_FT] (Eq 1): 1 + number of releases thread-order-before the event.
    Fork counts as a release and join as an acquire for local-time purposes,
    matching the detectors' fork/join handling. *)

val timestamps_ft : Trace.t -> int array array
(** [C_FT] (Eq 2): [ (timestamps_ft tr).(i).(t) ] is the causal time of event
    [i] for thread [t]. *)

val rel_after_s : Trace.t -> sampled:bool array -> bool array
(** [RelAfter_S] (Eq 5): releases (incl. fork/release-store edges) that are
    the first release of their thread after a sampled event. *)

val local_times_sam : Trace.t -> sampled:bool array -> int array
(** [L_sam] (Eq 6). *)

val timestamps_sam : Trace.t -> sampled:bool array -> int array array
(** [C_sam] (Eq 7): maxima are taken over sampled events only. *)

val diff_count : int array -> int array -> int
(** [diff] (Eq 8): number of entries where two timestamps differ. *)

val vt : Trace.t -> sampled:bool array -> int array
(** [VT] (Eq 9): accumulated component updates of the thread clock.
    Deviation from the paper's equation: the transition from the initial [⊥]
    clock into a thread's first event is counted too, matching the counter
    the algorithms maintain (their first acquire bumps [U_t(t)] per inherited
    entry); the literal Eq 9 starts at 0 regardless, which breaks Prop 5 for
    threads whose very first event learns sampled information. *)

val u_timestamps : Trace.t -> sampled:bool array -> int array array
(** The freshness timestamp [U].  Deviation from Eq 10 of the paper: the
    maximum ranges over {e all} events of the thread, not only sampled ones —
    [U(e)(t) = max {VT(f) | thr(f) = t, f ≤HB e}].  Eq 10's restriction to
    sampled events breaks Proposition 5 when a thread's [C_sam] grows through
    acquires between two of its sampled events; the all-events variant is
    exactly the counter Algorithms 3 and 4 maintain (their own-component is
    bumped on {e every} clock change, lines 12/16 of Alg 3), and it validates
    Propositions 5 and 6 with [U(e1)(t1)] read as [VT(e1)]. *)

val leq : int array -> int array -> bool
(** Pointwise comparison [⊑] (Eq 3). *)
