(** Program executions as finite event sequences (§2).

    A trace owns its event array together with the (dense) universe sizes for
    threads, locks and memory locations.  Traces produced by the workload
    generators are well-formed by construction; traces read from files should
    be checked with {!well_formed}. *)

type t = private {
  events : Event.t array;
  nthreads : int;
  nlocks : int;
  nlocs : int;
}

val of_events : Event.t array -> t
(** Builds a trace, inferring universe sizes from the events (size = 1 + the
    largest id mentioned; threads also count fork targets). *)

val make : nthreads:int -> nlocks:int -> nlocs:int -> Event.t array -> t
(** Builds a trace with explicit universe sizes. Raises [Invalid_argument]
    if an event mentions an id outside the declared universe. *)

val length : t -> int
val get : t -> int -> Event.t
val iteri : (int -> Event.t -> unit) -> t -> unit

val well_formed : t -> (unit, string) result
(** Checks the semantics of §2:
    - lock events per lock form a prefix of [(acq^t rel^t)*] — at most one
      holder, releases by the holder, no double acquire (re-entrancy is not
      modelled);
    - a forked thread performs no event before the fork and is forked at most
      once; threads that are never forked may act freely (initial threads);
    - a joined thread performs no event after the join;
    - atomic sync variables ([Release_store]/[Acquire_load]) are disjoint
      from mutex ids — a sync object must not mix the two styles. *)

val validate : t -> t
(** [validate t] is [t] if well-formed, otherwise raises [Invalid_argument]
    with the explanation. *)

(** Per-operation counts of a trace, used by the experiment harnesses. *)
type stats = {
  n_events : int;
  n_reads : int;
  n_writes : int;
  n_acquires : int;
  n_releases : int;
  n_forks : int;
  n_joins : int;
  n_release_stores : int;
  n_acquire_loads : int;
  n_accesses : int;  (** reads + writes *)
  n_syncs : int;     (** everything else *)
  locs_touched : int;  (** distinct memory locations accessed *)
  locks_touched : int; (** distinct lock/sync ids used *)
}

val stats : t -> stats

val pp : Format.formatter -> t -> unit
(** One event per line, prefixed with its index. *)

(** Imperative construction of well-formed traces.

    The builder hands out fresh ids and enforces nothing: generators are
    expected to respect lock semantics themselves (they model schedulers that
    do). [build] validates the result. *)
module Builder : sig
  type trace := t
  type t

  val create : unit -> t

  val fresh_thread : t -> Event.tid
  (** First call returns thread 0 (the implicit main thread needs no fork). *)

  val fresh_lock : t -> Event.lock
  val fresh_loc : t -> Event.loc

  val add : t -> Event.t -> unit
  val read : t -> Event.tid -> Event.loc -> unit
  val write : t -> Event.tid -> Event.loc -> unit
  val acquire : t -> Event.tid -> Event.lock -> unit
  val release : t -> Event.tid -> Event.lock -> unit
  val fork : t -> Event.tid -> Event.tid -> unit
  (** [fork b parent child] *)

  val join : t -> Event.tid -> Event.tid -> unit
  val release_store : t -> Event.tid -> Event.lock -> unit
  val acquire_load : t -> Event.tid -> Event.lock -> unit

  val size : t -> int
  (** Number of events added so far. *)

  val build : t -> trace
  (** Finalizes and validates; raises [Invalid_argument] on ill-formed
      traces. *)

  val build_unchecked : t -> trace
  (** Finalizes without the well-formedness check (for tests that need
      ill-formed traces, and for very large generated traces whose generator
      is validated separately). *)
end
