(** Compact binary trace format.

    The textual format of {!Trace_format} is convenient but costs ~15 bytes
    per event; executions in the paper's setting run to billions of events.
    This format stores one varint-encoded tag+payload pair per event
    (typically 2–4 bytes) behind a small header with a magic number,
    a version, and the universe sizes.

    Layout (all integers LEB128 varints unless noted):
    {v
    "FTRB"  version  nthreads  nlocks  nlocs  nevents
    nevents × ( tag | thread << 3 , payload )
    v}
    where [tag] is the operation (0=read … 7=join) packed below the thread
    id, and [payload] is the location / lock / thread operand. *)

val write_channel : out_channel -> Trace.t -> unit

val read_channel : in_channel -> (Trace.t, string) result
(** Fails with a description on bad magic, unsupported version, truncated
    input, or out-of-range ids (the result is well-formed {e dimensionally};
    combine with {!Trace.well_formed} for semantic checks). *)

val to_file : string -> Trace.t -> unit
val of_file : string -> (Trace.t, string) result

val to_bytes : Trace.t -> bytes
val of_bytes : bytes -> (Trace.t, string) result
