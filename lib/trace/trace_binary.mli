(** Compact binary trace format.

    The textual format of {!Trace_format} is convenient but costs ~15 bytes
    per event; executions in the paper's setting run to billions of events.
    This format stores one varint-encoded tag+payload pair per event
    (typically 2–4 bytes) behind a small header with a magic number,
    a version, and the universe sizes.

    Layout (all integers LEB128 varints unless noted):
    {v
    "FTRB"  version  nthreads  nlocks  nlocs  nevents
    nevents × ( tag | thread << 3 , payload )
    v}
    where [tag] is the operation (0=read … 7=join) packed below the thread
    id, and [payload] is the location / lock / thread operand.

    Decoding is hardened against hostile input: the event count in the
    header is checked against the byte budget actually present (each event
    costs at least two bytes) before any allocation proportional to it, so
    a corrupt 10-byte file cannot demand a multi-GiB array.

    Two access paths are provided: whole-trace conversion ({!of_bytes},
    {!of_file}), and a streaming layer ({!open_channel}/{!next},
    {!fold_channel}, {!iter_file}, {!create_writer}) that reads and writes
    in fixed-size chunks — memory stays O(chunk), never O(file), so .ftb
    traces larger than RAM can be scanned event by event. *)

type header = {
  nthreads : int;
  nlocks : int;
  nlocs : int;
  nevents : int;
}

val write_channel : out_channel -> Trace.t -> unit

val read_channel : in_channel -> (Trace.t, string) result
(** Fails with a description on bad magic, unsupported version, truncated
    input, or out-of-range ids (the result is well-formed {e dimensionally};
    combine with {!Trace.well_formed} for semantic checks).  Implemented on
    the streaming reader: the input is consumed chunk by chunk, never
    slurped whole. *)

val to_file : string -> Trace.t -> unit
val of_file : string -> (Trace.t, string) result

val to_bytes : Trace.t -> bytes
val of_bytes : bytes -> (Trace.t, string) result

(** {1 Streaming reader} *)

type reader

val open_channel : ?chunk_size:int -> in_channel -> (reader, string) result
(** Parse and validate the header; events are then pulled with {!next}.
    [chunk_size] (default 64 KiB) bounds resident memory.  On seekable
    channels the event count is checked against the channel length up
    front; on pipes it cannot be, but the reader never allocates
    proportionally to it either way. *)

val header : reader -> header

val events_read : reader -> int
(** Events already delivered by {!next}. *)

val byte_pos : reader -> int
(** Channel offset of the next undelivered byte.  Recording this alongside
    {!events_read} in a checkpoint lets a resumed analysis {!seek} straight
    to where it left off instead of re-decoding the prefix. *)

val seek : reader -> byte_offset:int -> next_index:int -> (unit, string) result
(** Position the reader so the next {!next} decodes the event at
    [next_index], whose encoding starts at [byte_offset] (both previously
    obtained from {!byte_pos}/{!events_read}).  Fails on non-seekable
    channels and out-of-range indices; offsets into the middle of an event
    surface later as a decode error. *)

val next : reader -> (Event.t option, string) result
(** The next event, [Ok None] once [nevents] have been delivered, or an
    error describing the corruption (truncation, bad tag, out-of-range
    operand).  Events are validated against the header's universe as they
    are decoded. *)

val open_bytes : bytes -> (reader, string) result
(** A reader over an in-memory payload (e.g. a network batch), sharing the
    validation and decode machinery of {!open_channel}.  {!seek} works by
    direct offset; {!byte_pos} counts from the start of the buffer.  The
    buffer is not copied — do not mutate it while the reader is live. *)

val open_string : string -> (reader, string) result

(** {1 Batch decoding}

    {!next} boxes every event twice ([Some] under [Ok]) before the consumer
    sees it.  The batch decoder instead fills reusable parallel int arrays —
    the decode loop allocates nothing per event — and consumers reconstruct
    only what they dispatch on.  Hot loops (the resumable runner, the shard
    router, the network daemon) stream .ftb input through this path. *)

type batch

val create_batch : ?capacity:int -> unit -> batch
(** A reusable decode buffer ([capacity] events per {!read_batch} call,
    default 8192). *)

val read_batch : reader -> batch -> (int, string) result
(** Decode up to one batch worth of events, validated against the header
    exactly as {!next}.  Returns how many were decoded; [Ok 0] means the
    trace is exhausted.  On [Error] the reader is mid-event and unusable
    without a {!seek}. *)

val batch_length : batch -> int
(** Events decoded by the last {!read_batch} (same as its [Ok] payload). *)

val batch_capacity : batch -> int

val batch_event : batch -> int -> Event.t
(** Reconstruct event [j] of the last batch ([0 <= j < batch_length]).
    Raises [Invalid_argument] out of range. *)

val batch_end : batch -> int -> int
(** Byte offset just past event [j] — exactly the {!byte_pos} a checkpoint
    taken after that event must record, letting the runner checkpoint at
    any point {e inside} a batch without offset drift. *)

val fold_channel :
  ?chunk_size:int ->
  in_channel ->
  init:'a ->
  f:('a -> int -> Event.t -> 'a) ->
  (header * 'a, string) result
(** [fold_channel ic ~init ~f] folds [f acc index event] over every event
    in constant memory. *)

val iter_channel :
  ?chunk_size:int ->
  in_channel ->
  f:(int -> Event.t -> unit) ->
  (header * unit, string) result

val iter_file :
  ?chunk_size:int ->
  string ->
  f:(int -> Event.t -> unit) ->
  (header * unit, string) result
(** Open, iterate, close (also on error). *)

(** {1 Streaming writer} *)

type writer

val create_writer :
  out_channel -> nthreads:int -> nlocks:int -> nlocs:int -> nevents:int -> writer
(** Write the header immediately; events follow via {!write_event}.  The
    event count must be known up front (it leads the event block), exactly
    as a recording instrumentation run knows its buffer's length. *)

val write_event : writer -> Event.t -> unit
(** Append one event, validating it against the declared universe.  Raises
    [Invalid_argument] on out-of-range operands or when more than [nevents]
    events are written. *)

val close_writer : writer -> unit
(** Flush buffered bytes.  Raises [Invalid_argument] if fewer events were
    written than the header promised (the file would be truncated for every
    reader).  Does not close the underlying channel. *)
