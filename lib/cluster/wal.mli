(** The router's routed-event write-ahead log.

    An append-only file of checksummed records, fsynced before any client
    [BATCH] is acknowledged, so a router SIGKILLed mid-ingest can be
    resumed ([racedet route --resume]) with its exact pre-crash state: the
    event stream is replayed through the same routing algebra, which
    deterministically rebuilds the sampler mirror, the pending bits, the
    sync-only baseline and every worker's routed-message log (DESIGN.md
    §6f).

    Framing reuses the [.ftc] container's primitives: each record is a
    4-byte little-endian payload length, the payload's
    {!Ft_snapshot.Checkpoint.fnv64} checksum (8 bytes LE), then a
    {!Ft_core.Snap} varint payload.  Decoding is total and
    torn-tail-tolerant: scanning stops at the first incomplete, corrupt or
    unparseable frame and reports the byte length of the valid prefix, so
    a crash mid-append never poisons the records before it.  A torn tail
    is unacknowledged by construction (the ack waits for the fsync), so
    truncating it loses nothing a client will not blindly resend.

    Appends carry the [router.wal_write] injection point
    ({!Ft_fault.Fault.torn_len}): a scheduled torn write persists a prefix
    of the frame and raises, after which {!rollback} restores the last
    good offset. *)

type record =
  | Session of {
      nthreads : int;
      nlocks : int;
      nlocs : int;
      engine : string;  (** {!Ft_core.Engine.name} *)
      sampler : string;  (** {!Ft_core.Sampler.name} *)
      workers : int;  (** initial ring size *)
    }
      (** Written once, when the first batch fixes the universe; validated
          against the resuming router's configuration. *)
  | Events of int * Ft_trace.Event.t array
      (** A client batch: base global index and its events, exactly as
          received (parked and partially-duplicate batches included —
          replay re-runs the same park/dedup logic). *)
  | Resize of int  (** the ring was resized to this many workers *)

type t

val path : dir:string -> string
(** [dir/router.wal]. *)

val open_append : string -> t
(** Open (creating if missing) for appending.  An existing file is
    scanned first and a torn tail is truncated away (with a stderr note),
    so the write position is always a record boundary. *)

val offset : t -> int
(** Current end-of-log byte offset (a record boundary). *)

val append : t -> record -> int
(** Append one frame, returning its byte size.  Not yet durable — call
    {!sync}.  Visits [router.wal_write]; on an injected torn write the
    frame prefix is written and the injection exception re-raised: call
    {!rollback} before the next append. *)

val sync : t -> unit
(** [fsync] the log — the durability point a client ack rides on. *)

val rollback : t -> unit
(** Truncate back to the last good record boundary after a failed
    {!append}. *)

val close : t -> unit

val decode_all : string -> (record * int) list * int
(** Scan raw bytes: the records of the valid prefix (each with its end
    offset) and the prefix's byte length.  Total — never raises, any
    malformed or incomplete suffix simply ends the scan. *)

val replay : string -> ((record * int) list * int, string) result
(** {!decode_all} over a file's contents; [Error] only if the file cannot
    be read at all (a missing file is an error — test with
    [Sys.file_exists] first). *)
