(** Deterministic consistent-hash partition of locations across cluster
    workers.

    A 64-vnode-per-worker hash ring: [owner] is a pure function of
    [(workers, location)], identical across processes, platforms and
    restarts — the property the router's recovery protocol and the
    byte-identity tests rest on — and changing the worker count moves only
    ~1/K of the keyspace. *)

type t

val vnodes : int
(** Virtual nodes per worker (64). *)

val create : workers:int -> t
(** Raises [Invalid_argument] when [workers < 1]. *)

val workers : t -> int

val owner : t -> Ft_trace.Event.loc -> int
(** The worker owning a location, in [\[0, workers)]. *)
