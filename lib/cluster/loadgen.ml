module Trace = Ft_trace.Trace
module Serve = Ft_shard.Serve
module Clock = Ft_support.Clock
module Histogram = Ft_obs.Histogram
module Db_sim = Ft_workloads.Db_sim

(* Load generator for the cluster and serve daemons: a {!Db_sim}-generated
   trace pushed over C connections, batch i on connection (i mod C), in
   global index order — so the server side exercises interleaved clients
   without ever tripping the parked-batch bound.  Single process, no
   domains: safe to run from a test or bench parent that also forks
   routers. *)

type result = {
  events : int;
  batches : int;
  clients : int;
  wall_s : float;
  events_per_s : float;
  send_ms_mean : float;  (* per-batch round trip: send + OK *)
  send_ms_p99 : float;
  send_ms_max : float;
  reconnects : int;  (* connections re-established after a send failure *)
}

let summary r =
  Printf.sprintf
    "loadgen: %d events in %d batches over %d conns, %.2fs (%.0f events/s), send mean=%.3fms p99=%.3fms max=%.3fms, %d reconnect(s)"
    r.events r.batches r.clients r.wall_s r.events_per_s r.send_ms_mean r.send_ms_p99
    r.send_ms_max r.reconnects

let slices trace ~batch =
  let n = Trace.length trace in
  let rec go base acc =
    if base >= n then List.rev acc
    else begin
      let len = Stdlib.min batch (n - base) in
      let sub =
        Trace.make ~nthreads:trace.Trace.nthreads ~nlocks:trace.Trace.nlocks
          ~nlocs:trace.Trace.nlocs
          (Array.init len (fun i -> Trace.get trace (base + i)))
      in
      go (base + len) ((base, sub) :: acc)
    end
  in
  go 0 []

let drive ?(clients = 2) ?(batch = 512) ?(deadline_s = 120.0) ~addr trace =
  if clients < 1 then invalid_arg "Loadgen.drive: clients must be positive";
  let batches = slices trace ~batch in
  let conns =
    Array.init clients (fun c -> Serve.connect ~deadline_s ~seed:(0x10ad + c) addr)
  in
  let hist = Histogram.create () in
  let reconnects = ref 0 in
  (* A failed send means the server end went away mid-session (router
     restart); explicit bases make a blind resend idempotent, so the right
     move is reconnect + resend, exactly like the worker-respawn path. *)
  let send_retrying c ~base sub =
    let rec go tries =
      match Serve.send_batch ~deadline_s conns.(c) ~base sub with
      | Ok _ -> Ok ()
      | Error msg when tries < 3 -> (
        incr reconnects;
        Serve.close conns.(c);
        match Serve.connect ~deadline_s ~seed:(0x10ad + c + (97 * !reconnects)) addr with
        | fd ->
          conns.(c) <- fd;
          (go [@tailcall]) (tries + 1)
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "batch at %d: %s; reconnect: %s" base msg
               (Unix.error_message e)))
      | Error msg -> Error (Printf.sprintf "batch at %d: %s" base msg)
    in
    go 0
  in
  let t0 = Clock.now_ns () in
  let outcome =
    List.fold_left
      (fun acc (base, sub) ->
        match acc with
        | Error _ as e -> e
        | Ok sent -> (
          let s0 = Clock.now_ns () in
          match send_retrying (sent mod clients) ~base sub with
          | Ok () ->
            Histogram.observe hist (Int64.to_int (Int64.sub (Clock.now_ns ()) s0));
            Ok (sent + 1)
          | Error _ as e -> e))
      (Ok 0) batches
  in
  let wall_s = Clock.elapsed_s ~since:t0 in
  let finish () = Array.iter Serve.close conns in
  match outcome with
  | Error msg ->
    finish ();
    Error msg
  | Ok sent ->
    let report = Serve.fetch_report ~deadline_s conns.(0) in
    finish ();
    Result.map
      (fun report ->
        let events = Trace.length trace in
        ( {
            events;
            batches = sent;
            clients;
            wall_s;
            events_per_s = (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
            send_ms_mean = Histogram.mean hist /. 1e6;
            send_ms_p99 = float_of_int (Histogram.quantile hist 0.99) /. 1e6;
            send_ms_max = float_of_int (Histogram.max_value hist) /. 1e6;
            reconnects = !reconnects;
          },
          report ))
      report

let db_trace ~workload ~seed ~events =
  match Db_sim.profile workload with
  | None -> Error (Printf.sprintf "unknown db_sim workload %S" workload)
  | Some p -> Ok (Db_sim.generate p ~seed ~target_events:events)
