module Trace = Ft_trace.Trace
module Trace_binary = Ft_trace.Trace_binary
module Event = Ft_trace.Event
module Detector = Ft_core.Detector
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Serve = Ft_shard.Serve
module Evloop = Ft_shard.Evloop
module Cmsg = Ft_shard.Cmsg
module Clock = Ft_support.Clock
module Json = Ft_obs.Json
module Registry = Ft_obs.Registry
module Histogram = Ft_obs.Histogram
module Fault = Ft_fault.Fault

(* The cluster router: one process speaking the plain BATCH protocol to
   clients and the CBATCH protocol to K worker processes, each worker being
   an unchanged [racedet serve] daemon (domain-sharded underneath).

   Soundness rests on three facts, spelled out in DESIGN.md §6e:

   - locations are partitioned whole onto workers ({!Chash}) and events
     keep their original global indices, so each worker's own sampler
     replays exactly the global run's decisions;
   - the router mirrors {!Ft_shard.Sharded}'s routing algebra one level
     up — sync events broadcast, accesses to the owner, pending-bit
     transitions forwarded as [Mark] — and keeps its own sync-only
     baseline, so [Metrics.merge_shards ~sync_baseline] over the workers'
     partial results telescopes to the unsharded engine's counters;
   - workers checkpoint each CBATCH {e before} acknowledging it, and the
     router keeps the complete per-worker routed-message log, so any crash
     is recovered by respawn → [SEQ] → replay of the unacknowledged
     suffix, and even a worker whose checkpoint was lost entirely replays
     from zero out of the log.

   The router itself never spawns domains (its baseline is a plain
   single-threaded detector instance): it forks worker processes, and
   forking a multi-domain OCaml 5 process is not safe. *)

type config = {
  listen : Serve.addr;
  workers : int;
  worker_shards : int;  (* domains inside each worker *)
  engine : Engine.id;
  sampler : Sampler.t;
  clock_size : int option;
  dir : string;  (* run directory: worker sockets, ready/pid files, checkpoints *)
  worker_tcp : bool;  (* workers listen on 127.0.0.1 ephemeral TCP ports *)
  checkpoint : bool;  (* workers checkpoint every CBATCH (ack ⇒ durable) *)
  max_parked : int;
  backlog : int;
  ready_file : string option;
  heartbeat_s : float option;
  metrics_json : string option;
  max_respawns : int;  (* per-worker respawn budget before failing fast *)
  chaos : Fault.config option;
}

let default_max_respawns = 8
let cbatch_chunk = 8192  (* messages per CBATCH *)
let spawn_deadline_s = 30.0

(* --- worker processes ----------------------------------------------------- *)

type worker = {
  id : int;
  mutable gen : int;  (* bumped on every respawn/migration: fresh socket names *)
  mutable pid : int;
  mutable fd : Unix.file_descr;
  mutable sent : int;  (* messages the worker has acknowledged ingesting *)
  mutable log : Cmsg.msg array;  (* complete routed history for this worker *)
  mutable llen : int;
  mutable respawns : int;
}

let log_push w m =
  let cap = Array.length w.log in
  if w.llen = cap then begin
    let bigger = Array.make (Stdlib.max 64 (2 * cap)) m in
    Array.blit w.log 0 bigger 0 w.llen;
    w.log <- bigger
  end;
  w.log.(w.llen) <- m;
  w.llen <- w.llen + 1

type telemetry = {
  reg : Registry.t;
  batches_total : Registry.counter;
  events_total : Registry.counter;
  marks_total : Registry.counter;  (* cross-worker pending-bit forwards *)
  parked_total : Registry.counter;
  duplicate_total : Registry.counter;
  worker_messages : Registry.counter array;  (* routed throughput, per worker *)
  migrations_total : Registry.counter;
  respawns_total : Registry.counter;
  send_failures_total : Registry.counter;
  conns_active : Registry.gauge;
  uptime : Registry.gauge;
  ingest_ns : Histogram.t;
  started_ns : int64;
}

let make_telemetry ~workers =
  let reg = Registry.create () in
  {
    reg;
    batches_total =
      Registry.counter reg "router_batches_ingested_total"
        ~help:"Client batches routed to the workers";
    events_total =
      Registry.counter reg "router_events_ingested_total" ~help:"Events routed";
    marks_total =
      Registry.counter reg "router_marks_total"
        ~help:"Cross-worker pending-bit transitions forwarded as Mark messages";
    parked_total =
      Registry.counter reg "router_batches_parked_total"
        ~help:"Client batches parked for index-order ingestion";
    duplicate_total =
      Registry.counter reg "router_batches_duplicate_total"
        ~help:"Client batches fully inside the ingested prefix (idempotent resend)";
    worker_messages =
      Array.init workers (fun k ->
          Registry.counter reg "router_worker_messages_total"
            ~help:"Messages routed to each worker's sub-stream"
            ~labels:[ ("worker", string_of_int k) ]);
    migrations_total =
      Registry.counter reg "router_migrations_total"
        ~help:"Graceful checkpoint migrations of a worker onto a fresh process";
    respawns_total =
      Registry.counter reg "router_worker_respawns_total"
        ~help:"Workers respawned after a crash or send failure";
    send_failures_total =
      Registry.counter reg "router_send_failures_total"
        ~help:"CBATCH sends that failed and triggered worker recovery";
    conns_active =
      Registry.gauge reg "router_connections_active" ~help:"Open client connections";
    uptime = Registry.gauge reg "router_uptime_seconds" ~help:"Seconds since router start";
    ingest_ns =
      Registry.histogram reg "router_batch_ingest_ns"
        ~help:"Per-batch route + flush latency, nanoseconds";
    started_ns = Clock.now_ns ();
  }

type baseline = {
  b_handle : int -> Event.t -> unit;
  b_note : Event.tid -> unit;
  b_result : unit -> Detector.result;
}

type state = {
  cfg : config;
  tel : telemetry;
  ring : Chash.t;
  workers : worker array;
  mutable parent_fds : Unix.file_descr list;  (* closed in forked children *)
  mutable universe : (int * int * int) option;
  mutable baseline : baseline option;  (* sync-only detector + sampler mirror *)
  mutable sampler_inst : Sampler.instance option;
  mutable pending : bool array;
  mutable expected : int;  (* next global event index *)
  mutable nevents : int;
  parked : (int, Trace.t) Hashtbl.t;
  mutable quit : bool;
  mutable stop_reason : string;
  mutable failed : string option;
}

let worker_sock st w = Filename.concat st.cfg.dir (Printf.sprintf "worker-%d-g%d.sock" w.id w.gen)
let worker_addr_file st w =
  Filename.concat st.cfg.dir (Printf.sprintf "worker-%d-g%d.addr" w.id w.gen)
let worker_pid_file st w = Filename.concat st.cfg.dir (Printf.sprintf "worker-%d.pid" w.id)
let worker_ckpt_dir st w = Filename.concat st.cfg.dir (Printf.sprintf "ckpt-%d" w.id)

let write_pid_file path pid =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (string_of_int pid ^ "\n");
  close_out oc;
  Sys.rename tmp path

(* Fork one worker process running the unchanged serve daemon.  [resume]
   points it at its checkpoint directory; a missing or torn checkpoint set
   degrades to a fresh start there, which the router covers by replaying
   the full log (SEQ comes back 0). *)
let spawn_worker st w ~resume =
  let addr_file = worker_addr_file st w in
  (try Sys.remove addr_file with Sys_error _ -> ());
  let listen =
    if st.cfg.worker_tcp then Serve.Tcp ("127.0.0.1", 0) else Serve.Unix_path (worker_sock st w)
  in
  let ckpt = if st.cfg.checkpoint then Some (worker_ckpt_dir st w) else None in
  let scfg =
    {
      Serve.listen;
      engine = st.cfg.engine;
      shards = st.cfg.worker_shards;
      sampler = st.cfg.sampler;
      clock_size = st.cfg.clock_size;
      checkpoint_dir = ckpt;
      resume_dir = (if resume then ckpt else None);
      max_parked = Serve.default_max_parked;
      backlog = Serve.default_backlog;
      ready_file = Some addr_file;
      heartbeat_s = None;
      metrics_json = None;
      max_restarts = Serve.default_max_restarts;
      chaos = None;  (* an armed schedule is inherited through the fork *)
    }
  in
  match Unix.fork () with
  | 0 ->
    (* the child must not hold the router's listener or its peers' sockets *)
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.parent_fds;
    (try
       Serve.run scfg;
       exit 0
     with e ->
       Printf.eprintf "racedet route: worker %d died: %s\n%!" w.id (Printexc.to_string e);
       exit 1)
  | pid ->
    w.pid <- pid;
    write_pid_file (worker_pid_file st w) pid;
    (* wait for the ready file, checking the child is still alive *)
    let deadline = Clock.now_s () +. spawn_deadline_s in
    let rec await () =
      if Sys.file_exists addr_file then
        match Serve.read_addr_file addr_file with
        | Ok addr -> addr
        | Error msg -> failwith (Printf.sprintf "worker %d ready file: %s" w.id msg)
      else begin
        (match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | _ -> failwith (Printf.sprintf "worker %d exited before becoming ready" w.id)
        | exception Unix.Unix_error _ -> ());
        if Clock.now_s () > deadline then
          failwith (Printf.sprintf "worker %d not ready after %.0fs" w.id spawn_deadline_s);
        Unix.sleepf 0.01;
        await ()
      end
    in
    let addr = await () in
    let fd = Serve.connect ~deadline_s:spawn_deadline_s ~seed:(0x40 + w.id) addr in
    w.fd <- fd;
    st.parent_fds <- fd :: st.parent_fds

let reap_worker w =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ()

let close_worker_fd st w =
  st.parent_fds <- List.filter (fun fd -> fd != w.fd) st.parent_fds;
  try Unix.close w.fd with Unix.Unix_error _ -> ()

exception Router_failed of string

let fail st msg =
  st.failed <- Some msg;
  st.stop_reason <- "worker failure";
  st.quit <- true;
  raise (Router_failed msg)

let universe_of st =
  match st.universe with
  | Some u -> u
  | None -> failwith "router: no universe yet"

(* --- recovery and migration ----------------------------------------------- *)

(* Replay [log[sent, llen)] in bounded CBATCH chunks.  A failed send (or an
   injected [router.send] fault) marks the worker suspect and recovers it;
   recovery re-reads SEQ, so the loop converges or exhausts the respawn
   budget. *)
let rec send_slice st w =
  while w.sent < w.llen do
    let nthreads, nlocks, nlocs = universe_of st in
    let len = Stdlib.min cbatch_chunk (w.llen - w.sent) in
    let payload = Cmsg.encode ~nthreads ~nlocks ~nlocs w.log ~off:w.sent ~len in
    match
      Fault.point ~lane:w.id ~supports:[ Fault.Exn; Fault.Delay ] "router.send";
      Serve.send_cbatch w.fd ~seq:w.sent payload
    with
    | Ok total when total > w.sent -> w.sent <- Stdlib.min total w.llen
    | Ok _ | Error _ ->
      Registry.incr st.tel.send_failures_total;
      recover_worker st w
    | exception Fault.Injected _ ->
      Registry.incr st.tel.send_failures_total;
      recover_worker st w
  done

(* Crash recovery: whatever state the worker is in, kill it, respawn it
   against its checkpoint directory, ask where its durable stream stands
   and replay the rest of the log.  Checkpoint-before-ack on the worker
   side makes SEQ a durable lower bound; the full log makes even SEQ = 0
   (checkpoint lost or checkpointing disabled) recoverable. *)
and recover_worker st w =
  close_worker_fd st w;
  reap_worker w;
  w.respawns <- w.respawns + 1;
  Registry.incr st.tel.respawns_total;
  if w.respawns > st.cfg.max_respawns then
    fail st
      (Printf.sprintf "worker %d exceeded its respawn budget (%d)" w.id st.cfg.max_respawns);
  w.gen <- w.gen + 1;
  Printf.eprintf "racedet route: recovering worker %d (respawn %d, gen %d)\n%!" w.id
    w.respawns w.gen;
  spawn_worker st w ~resume:true;
  (match Serve.fetch_seq w.fd with
  | Ok seq -> w.sent <- Stdlib.min seq w.llen
  | Error msg ->
    Printf.eprintf "racedet route: worker %d SEQ after respawn failed (%s)\n%!" w.id msg;
    recover_worker st w);
  send_slice st w

(* Graceful migration: flush, SHUTDOWN (the worker writes its final
   checkpoint set), then hand the [.ftc]s to a fresh process and resume it
   at the same stream position.  Without checkpointing this degrades to a
   full-log replay — slower, still exact. *)
let migrate_worker st w =
  send_slice st w;
  (match Serve.shutdown w.fd with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "racedet route: worker %d SHUTDOWN for migration failed (%s)\n%!" w.id msg);
  close_worker_fd st w;
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  w.gen <- w.gen + 1;
  Registry.incr st.tel.migrations_total;
  Printf.eprintf "racedet route: migrating worker %d to gen %d\n%!" w.id w.gen;
  spawn_worker st w ~resume:true;
  (match Serve.fetch_seq w.fd with
  | Ok seq -> w.sent <- Stdlib.min seq w.llen
  | Error msg ->
    Printf.eprintf "racedet route: worker %d SEQ after migration failed (%s)\n%!" w.id msg;
    recover_worker st w);
  send_slice st w

(* Drain every worker's unsent suffix, visiting the chaos points first so a
   schedule can kill or migrate a worker between any two client batches. *)
let flush_workers st =
  Array.iter
    (fun w ->
      (match Fault.point ~lane:w.id ~supports:[ Fault.Exn ] "cluster.worker_crash" with
      | () -> ()
      | exception Fault.Injected _ ->
        Printf.eprintf "racedet route: chaos killed worker %d\n%!" w.id;
        close_worker_fd st w;
        reap_worker w;
        recover_worker st w);
      (match Fault.point ~lane:w.id ~supports:[ Fault.Exn ] "cluster.migrate" with
      | () -> ()
      | exception Fault.Injected _ -> migrate_worker st w);
      send_slice st w)
    st.workers

(* --- routing --------------------------------------------------------------- *)

(* Mirror of {!Ft_shard.Sharded}'s routing, one level up: the router owns
   the sampler and the pending bits, workers own locations.  The baseline
   sees the sync substream plus one note per pending transition — exactly
   what each worker's internal baseline sees — which is what makes the
   metrics merge telescope (DESIGN.md §6e). *)
let ensure_cluster st (nthreads, nlocks, nlocs) =
  match st.universe with
  | Some u ->
    if u = (nthreads, nlocks, nlocs) then Ok ()
    else Error "batch universe differs from the session's"
  | None ->
    let clock_size =
      match st.cfg.clock_size with
      | None -> nthreads
      | Some s -> Stdlib.max s nthreads
    in
    let config =
      { Detector.nthreads; nlocks; nlocs; clock_size; sampler = st.cfg.sampler }
    in
    let (module D : Detector.S) = Engine.detector st.cfg.engine in
    let d = D.create config in
    st.baseline <-
      Some
        {
          b_handle = (fun i e -> D.handle d i e);
          b_note = (fun th -> D.note_sampled d th);
          b_result = (fun () -> D.result d);
        };
    st.sampler_inst <- Some (Sampler.fresh st.cfg.sampler);
    st.pending <- Array.make nthreads false;
    st.universe <- Some (nthreads, nlocks, nlocs);
    Ok ()

let route st i (e : Event.t) =
  let baseline = Option.get st.baseline in
  let sampler_inst = Option.get st.sampler_inst in
  let nworkers = Array.length st.workers in
  let append w m =
    log_push st.workers.(w) m;
    Registry.incr st.tel.worker_messages.(w)
  in
  let append_all m =
    for w = 0 to nworkers - 1 do
      append w m
    done
  in
  (match e.Event.op with
  | Event.Read x | Event.Write x ->
    let o = Chash.owner st.ring x in
    let sampled = Sampler.query sampler_inst i e in
    if sampled && not st.pending.(e.Event.thread) then begin
      st.pending.(e.Event.thread) <- true;
      for w = 0 to nworkers - 1 do
        (* the owner's own sampler makes the same decision when it
           handles the event *)
        if w <> o then append w (Cmsg.Mark e.Event.thread)
      done;
      Registry.add st.tel.marks_total (nworkers - 1);
      baseline.b_note e.Event.thread
    end;
    append o (Cmsg.Ev (i, e))
  | Event.Acquire _ | Event.Acquire_load _ ->
    append_all (Cmsg.Ev (i, e));
    baseline.b_handle i e
  | Event.Release _ | Event.Release_store _ ->
    append_all (Cmsg.Ev (i, e));
    baseline.b_handle i e;
    st.pending.(e.Event.thread) <- false
  | Event.Fork _ ->
    append_all (Cmsg.Ev (i, e));
    baseline.b_handle i e;
    st.pending.(e.Event.thread) <- false
  | Event.Join u ->
    append_all (Cmsg.Ev (i, e));
    baseline.b_handle i e;
    st.pending.(u) <- false);
  st.nevents <- st.nevents + 1

let feed st trace base =
  let n = Trace.length trace in
  for i = Stdlib.max 0 (st.expected - base) to n - 1 do
    route st (base + i) (Trace.get trace i)
  done;
  st.expected <- Stdlib.max st.expected (base + n)

let rec drain_parked st =
  let eligible =
    Hashtbl.fold
      (fun base _ acc ->
        if base <= st.expected then
          Some (match acc with None -> base | Some b -> Stdlib.min b base)
        else acc)
      st.parked None
  in
  match eligible with
  | None -> ()
  | Some base ->
    let trace = Hashtbl.find st.parked base in
    Hashtbl.remove st.parked base;
    feed st trace base;
    drain_parked st

(* --- merge ------------------------------------------------------------------ *)

(* Each worker's races carry original global indices, and a given event is
   handled by exactly one internal shard of exactly one worker, so indices
   are unique across workers and sorting recovers the global declaration
   order.  Metrics telescope: worker-internal merges already subtracted
   their own baselines, and every internal baseline equals the router's, so
   one more [merge_shards] against the router baseline leaves exactly the
   unsharded engine's counters. *)
let merge_results st (parts : Detector.result array) =
  let baseline = (Option.get st.baseline).b_result () in
  let races =
    List.sort
      (fun a b -> compare a.Race.index b.Race.index)
      (List.concat_map (fun (r : Detector.result) -> r.Detector.races) (Array.to_list parts))
  in
  let metrics =
    Metrics.merge_shards ~sync_baseline:baseline.Detector.metrics
      (Array.map (fun (r : Detector.result) -> r.Detector.metrics) parts)
  in
  { Detector.engine = baseline.Detector.engine; races; metrics }

let fetch_results st =
  flush_workers st;
  Array.map
    (fun w ->
      match Serve.fetch_result w.fd with
      | Ok r -> r
      | Error msg -> (
        (* a worker that died since its last flush: recover and retry once *)
        Printf.eprintf "racedet route: worker %d RESULT failed (%s); recovering\n%!" w.id msg;
        Registry.incr st.tel.send_failures_total;
        recover_worker st w;
        match Serve.fetch_result w.fd with
        | Ok r -> r
        | Error msg ->
          fail st (Printf.sprintf "worker %d RESULT failed after recovery: %s" w.id msg)))
    st.workers

let report st =
  if st.nevents = 0 then Error "no events ingested"
  else Ok (Serve.report_text ~events:st.nevents (merge_results st (fetch_results st)))

(* --- protocol --------------------------------------------------------------- *)

let refresh st =
  Registry.set st.tel.uptime (int_of_float (Clock.elapsed_s ~since:st.tel.started_ns))

let stats_json st =
  refresh st;
  Json.Obj
    [
      ("engine", Json.Str (Engine.name st.cfg.engine));
      ("sampler", Json.Str (Sampler.name st.cfg.sampler));
      ("workers", Json.Int st.cfg.workers);
      ("worker_shards", Json.Int st.cfg.worker_shards);
      ("events", Json.Int st.nevents);
      ("next_index", Json.Int st.expected);
      ("parked", Json.Int (Hashtbl.length st.parked));
      ("uptime_s", Json.Float (Clock.elapsed_s ~since:st.tel.started_ns));
      ( "worker_log_lengths",
        Json.Arr (Array.to_list (Array.map (fun w -> Json.Int w.llen) st.workers)) );
      ( "worker_respawns",
        Json.Arr (Array.to_list (Array.map (fun w -> Json.Int w.respawns) st.workers)) );
      ("telemetry", Registry.to_json st.tel.reg)
    ]

let reply = Evloop.reply

let handle_batch st conn base payload =
  if base < 0 then reply conn "ERR negative base index\n"
  else
    match Trace_binary.of_bytes (Bytes.unsafe_of_string payload) with
    | Error msg -> reply conn (Printf.sprintf "ERR bad batch: %s\n" msg)
    | Ok trace -> (
      let u = (trace.Trace.nthreads, trace.Trace.nlocks, trace.Trace.nlocs) in
      match ensure_cluster st u with
      | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | Ok () -> (
        try
          if base > st.expected then
            if Hashtbl.length st.parked >= st.cfg.max_parked then
              reply conn "ERR parked batch limit exceeded\n"
            else begin
              Hashtbl.replace st.parked base trace;
              Registry.incr st.tel.parked_total;
              reply conn (Printf.sprintf "OK %d\n" st.expected)
            end
          else begin
            let before = st.expected in
            let t0 = Clock.now_ns () in
            feed st trace base;
            drain_parked st;
            flush_workers st;
            let ingested = st.expected - before in
            if ingested = 0 then Registry.incr st.tel.duplicate_total
            else begin
              Registry.incr st.tel.batches_total;
              Registry.add st.tel.events_total ingested
            end;
            Histogram.observe st.tel.ingest_ns
              (Int64.to_int (Int64.sub (Clock.now_ns ()) t0));
            reply conn (Printf.sprintf "OK %d\n" st.expected)
          end
        with Router_failed msg -> reply conn (Printf.sprintf "ERR %s\n" msg)))

let handle_line st conn line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "BATCH"; base; nbytes ] -> (
    match (int_of_string_opt base, int_of_string_opt nbytes) with
    | Some b, Some n when n >= 0 ->
      Evloop.await_blob conn n (fun payload -> handle_batch st conn b payload)
    | _ -> reply conn "ERR malformed BATCH header\n")
  | [ "REPORT" ] -> (
    match report st with
    | Ok text -> reply conn (Printf.sprintf "REPORT %d\n%s" (String.length text) text)
    | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
    | exception Router_failed msg -> reply conn (Printf.sprintf "ERR %s\n" msg))
  | [ "SEQ" ] -> reply conn (Printf.sprintf "SEQ %d\n" st.expected)
  | [ "MIGRATE"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 0 && k < Array.length st.workers -> (
      match
        (match st.universe with
        | None -> ()
        | Some _ -> flush_workers st);
        migrate_worker st st.workers.(k)
      with
      | () -> reply conn (Printf.sprintf "OK %d\n" st.expected)
      | exception Router_failed msg -> reply conn (Printf.sprintf "ERR %s\n" msg))
    | _ -> reply conn "ERR bad worker id\n")
  | [ "STATS" ] | [ "STATS"; "PROM" ] ->
    refresh st;
    let text = Registry.to_prometheus st.tel.reg in
    reply conn (Printf.sprintf "STATS %d\n%s" (String.length text) text)
  | [ "STATS"; "JSON" ] ->
    let text = Json.to_string_pretty (stats_json st) in
    reply conn (Printf.sprintf "STATS %d\n%s" (String.length text) text)
  | [ "SHUTDOWN" ] ->
    reply conn "BYE\n";
    st.stop_reason <- "SHUTDOWN command";
    st.quit <- true
  | [ "" ] -> ()
  | _ -> reply conn "ERR unknown command\n"

(* --- lifecycle --------------------------------------------------------------- *)

let write_metrics_json_file st =
  match st.cfg.metrics_json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string_pretty (stats_json st));
    close_out oc

let run (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Router.run: workers must be positive";
  if cfg.worker_shards < 1 then invalid_arg "Router.run: worker_shards must be positive";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match cfg.chaos with
  | None -> ()
  | Some c ->
    Fault.arm c;
    Printf.eprintf "racedet route: chaos armed (%s)\n%!" (Fault.spec_of_config c));
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  if cfg.checkpoint then
    for k = 0 to cfg.workers - 1 do
      try Unix.mkdir (Filename.concat cfg.dir (Printf.sprintf "ckpt-%d" k)) 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    done;
  let st =
    {
      cfg;
      tel = make_telemetry ~workers:cfg.workers;
      ring = Chash.create ~workers:cfg.workers;
      workers =
        Array.init cfg.workers (fun id ->
            {
              id;
              gen = 0;
              pid = -1;
              fd = Unix.stdin;
              sent = 0;
              log = [||];
              llen = 0;
              respawns = 0;
            });
      parent_fds = [];
      universe = None;
      baseline = None;
      sampler_inst = None;
      pending = [||];
      expected = 0;
      nevents = 0;
      parked = Hashtbl.create 16;
      quit = false;
      stop_reason = "";
      failed = None;
    }
  in
  Array.iter (fun w -> spawn_worker st w ~resume:false) st.workers;
  let listen_fd, actual = Serve.listen_socket ~backlog:cfg.backlog cfg.listen in
  st.parent_fds <- listen_fd :: st.parent_fds;
  (match cfg.ready_file with
  | None -> ()
  | Some path -> Serve.write_addr_file path actual);
  let on_signal name =
    Sys.Signal_handle
      (fun _ ->
        st.stop_reason <- name;
        st.quit <- true)
  in
  Sys.set_signal Sys.sigterm (on_signal "SIGTERM");
  Sys.set_signal Sys.sigint (on_signal "SIGINT");
  let remaining =
    Evloop.run ~listen_fd
      ~quit:(fun () -> st.quit)
      ~on_line:(fun conn line -> handle_line st conn line)
      ~on_accept:(fun conn -> st.parent_fds <- Evloop.conn_fd conn :: st.parent_fds)
      ~on_conns:(fun n -> Registry.set st.tel.conns_active n)
      ()
  in
  if st.stop_reason <> "" then
    Printf.eprintf "racedet route: shutting down (%s)\n%!" st.stop_reason;
  (* Graceful teardown: flush the logs, then SHUTDOWN each worker so it
     writes its final checkpoint set. *)
  (match st.failed with
  | Some _ -> ()
  | None -> (
    try
      if st.universe <> None then flush_workers st;
      Array.iter
        (fun w ->
          (match Serve.shutdown w.fd with Ok () | Error _ -> ());
          close_worker_fd st w;
          try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
        st.workers
    with Router_failed _ -> ()));
  (match st.failed with
  | None -> ()
  | Some _ ->
    (* fail-fast path: make sure no worker process outlives the router *)
    Array.iter
      (fun w ->
        close_worker_fd st w;
        reap_worker w)
      st.workers);
  write_metrics_json_file st;
  List.iter Evloop.close_conn remaining;
  Unix.close listen_fd;
  (match cfg.listen with
  | Serve.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Serve.Tcp _ -> ());
  (match cfg.chaos with
  | None -> ()
  | Some _ ->
    Printf.eprintf
      "racedet route: chaos summary: %d faults fired over %d checks, %d respawns, %d migrations\n%!"
      (Fault.fired ()) (Fault.checks ())
      (Registry.counter_value st.tel.respawns_total)
      (Registry.counter_value st.tel.migrations_total));
  match st.failed with
  | Some msg -> failwith ("racedet route: " ^ msg)
  | None -> ()
