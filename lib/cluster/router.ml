module Trace = Ft_trace.Trace
module Trace_binary = Ft_trace.Trace_binary
module Event = Ft_trace.Event
module Detector = Ft_core.Detector
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Snap = Ft_core.Snap
module Checkpoint = Ft_snapshot.Checkpoint
module Serve = Ft_shard.Serve
module Evloop = Ft_shard.Evloop
module Cmsg = Ft_shard.Cmsg
module Clock = Ft_support.Clock
module Json = Ft_obs.Json
module Registry = Ft_obs.Registry
module Histogram = Ft_obs.Histogram
module Fault = Ft_fault.Fault

(* The cluster router: one process speaking the plain BATCH protocol to
   clients and the CBATCH protocol to K worker processes, each worker being
   an unchanged [racedet serve] daemon (domain-sharded underneath).

   Soundness rests on the facts spelled out in DESIGN.md §6e–§6f:

   - locations are partitioned whole onto workers ({!Chash}) and events
     keep their original global indices, so each worker's own sampler
     replays exactly the global run's decisions;
   - the router mirrors {!Ft_shard.Sharded}'s routing algebra one level
     up — sync events broadcast, accesses to the owner, pending-bit
     transitions forwarded as [Mark] — and keeps its own sync-only
     baseline, so [Metrics.merge_shards ~sync_baseline] over the workers'
     partial results telescopes to the unsharded engine's counters;
   - workers checkpoint each CBATCH {e before} acknowledging it, so a
     worker's [SEQ] is a durable lower bound on its stream position and a
     crashed worker is recovered by respawn → [SEQ] → replay of the
     unacknowledged log suffix;
   - the router appends every client batch to a {!Wal} and fsyncs it
     {e before} acking, so a SIGKILLed router is recovered by
     [--resume]: replay the WAL (or a router-state checkpoint plus the
     WAL tail) through the same routing algebra, which deterministically
     rebuilds the sampler mirror, pending bits, baseline and every
     worker's log — then align each worker at its own durable [SEQ].

   CBATCH sends are pipelined: each worker has an in-flight window of
   unacked CBATCHes ([config.window]); acks are drained opportunistically
   and the router only blocks when a window is full (backpressure) or a
   barrier needs every message durable (RESULT, migration, resize,
   graceful shutdown).  Per-worker streams stay strictly ordered, so the
   §6e argument is untouched — the window only overlaps {e waiting}.

   Resizing reuses determinism instead of surgically moving per-location
   engine state: quiesce, log [Resize] in the WAL, rebuild each new
   worker's routed log by replaying the event history against the new
   ring (the sampler mirror, pending bits and baseline are
   ring-independent), and stream the logs to fresh workers.

   The router itself never spawns domains (its baseline is a plain
   single-threaded detector instance): it forks worker processes, and
   forking a multi-domain OCaml 5 process is not safe. *)

type config = {
  listen : Serve.addr;
  workers : int;
  worker_shards : int;  (* domains inside each worker *)
  engine : Engine.id;
  sampler : Sampler.t;
  clock_size : int option;
  dir : string;  (* run directory: worker sockets, ready/pid files, checkpoints, WAL *)
  worker_tcp : bool;  (* workers listen on 127.0.0.1 ephemeral TCP ports *)
  checkpoint : bool;  (* workers checkpoint every CBATCH (ack ⇒ durable) *)
  max_parked : int;
  backlog : int;
  ready_file : string option;
  heartbeat_s : float option;
  metrics_json : string option;
  max_respawns : int;  (* per-worker respawn budget before failing fast *)
  chaos : Fault.config option;
  window : int;  (* per-worker in-flight CBATCH window *)
  wal : bool;  (* append+fsync every batch before acking it *)
  resume : bool;  (* recover a previous session from dir's WAL *)
  state_every : int;  (* batches between router-state checkpoints; 0 = off *)
}

let default_max_respawns = 8
let default_window = 8
let default_state_every = 16
let cbatch_chunk = 8192  (* messages per CBATCH *)
let spawn_deadline_s = 30.0

(* --- worker processes ----------------------------------------------------- *)

type worker = {
  id : int;
  mutable gen : int;  (* bumped on every respawn/migration: fresh socket names *)
  mutable pid : int;
  mutable fd : Unix.file_descr;
  mutable conn : Evloop.conn option;  (* the same fd, framed for async acks *)
  mutable acked : int;  (* messages the worker has durably acknowledged *)
  mutable pushed : int;  (* messages written to the socket (≥ acked) *)
  inflight : int Queue.t;  (* end-seq of each unacked CBATCH, send order *)
  mutable log : Cmsg.msg array;  (* retained routed history: [lbase, lbase+llen) *)
  mutable llen : int;
  mutable lbase : int;  (* messages before the retained window (state-checkpoint cut) *)
  mutable respawns : int;
}

let total w = w.lbase + w.llen

let make_worker id =
  {
    id;
    gen = 0;
    pid = -1;
    fd = Unix.stdin;
    conn = None;
    acked = 0;
    pushed = 0;
    inflight = Queue.create ();
    log = [||];
    llen = 0;
    lbase = 0;
    respawns = 0;
  }

let log_push w m =
  let cap = Array.length w.log in
  if w.llen = cap then begin
    let bigger = Array.make (Stdlib.max 64 (2 * cap)) m in
    Array.blit w.log 0 bigger 0 w.llen;
    w.log <- bigger
  end;
  w.log.(w.llen) <- m;
  w.llen <- w.llen + 1

type telemetry = {
  reg : Registry.t;
  batches_total : Registry.counter;
  events_total : Registry.counter;
  marks_total : Registry.counter;  (* cross-worker pending-bit forwards *)
  parked_total : Registry.counter;
  duplicate_total : Registry.counter;
  mutable worker_messages : Registry.counter array;  (* grows on RESIZE +1 *)
  migrations_total : Registry.counter;
  respawns_total : Registry.counter;
  send_failures_total : Registry.counter;
  wal_appends_total : Registry.counter;
  wal_bytes_total : Registry.counter;
  replayed_total : Registry.counter;  (* messages re-sent after crash/resume *)
  resizes_total : Registry.counter;
  handoff_bytes_total : Registry.counter;  (* CBATCH bytes streamed during a resize *)
  conns_active : Registry.gauge;
  uptime : Registry.gauge;
  ingest_ns : Histogram.t;
  wal_fsync_ns : Histogram.t;
  window_occupancy : Histogram.t;  (* in-flight CBATCHes observed at each send *)
  started_ns : int64;
}

let worker_counter_of reg k =
  Registry.counter reg "router_worker_messages_total"
    ~help:"Messages routed to each worker's sub-stream"
    ~labels:[ ("worker", string_of_int k) ]

let make_telemetry ~workers =
  let reg = Registry.create () in
  {
    reg;
    batches_total =
      Registry.counter reg "router_batches_ingested_total"
        ~help:"Client batches routed to the workers";
    events_total =
      Registry.counter reg "router_events_ingested_total" ~help:"Events routed";
    marks_total =
      Registry.counter reg "router_marks_total"
        ~help:"Cross-worker pending-bit transitions forwarded as Mark messages";
    parked_total =
      Registry.counter reg "router_batches_parked_total"
        ~help:"Client batches parked for index-order ingestion";
    duplicate_total =
      Registry.counter reg "router_batches_duplicate_total"
        ~help:"Client batches fully inside the ingested prefix (idempotent resend)";
    worker_messages = Array.init workers (worker_counter_of reg);
    migrations_total =
      Registry.counter reg "router_migrations_total"
        ~help:"Graceful checkpoint migrations of a worker onto a fresh process";
    respawns_total =
      Registry.counter reg "router_worker_respawns_total"
        ~help:"Workers respawned after a crash or send failure";
    send_failures_total =
      Registry.counter reg "router_send_failures_total"
        ~help:"CBATCH sends that failed and triggered worker recovery";
    wal_appends_total =
      Registry.counter reg "router_wal_appends_total"
        ~help:"Records appended (and fsynced) to the routed-event WAL";
    wal_bytes_total =
      Registry.counter reg "router_wal_bytes_total" ~help:"Bytes appended to the WAL";
    replayed_total =
      Registry.counter reg "router_replayed_messages_total"
        ~help:"Log messages re-sent to workers after a crash, migration or resume";
    resizes_total =
      Registry.counter reg "router_resizes_total" ~help:"Completed RESIZE operations";
    handoff_bytes_total =
      Registry.counter reg "router_resize_handoff_bytes_total"
        ~help:"CBATCH payload bytes streamed to fresh workers during resizes";
    conns_active =
      Registry.gauge reg "router_connections_active" ~help:"Open client connections";
    uptime = Registry.gauge reg "router_uptime_seconds" ~help:"Seconds since router start";
    ingest_ns =
      Registry.histogram reg "router_batch_ingest_ns"
        ~help:"Per-batch route + flush latency, nanoseconds";
    wal_fsync_ns =
      Registry.histogram reg "router_wal_fsync_ns"
        ~help:"WAL append fsync latency, nanoseconds";
    window_occupancy =
      Registry.histogram reg "router_window_occupancy"
        ~help:"In-flight CBATCHes per worker, observed at each send";
    started_ns = Clock.now_ns ();
  }

type baseline = {
  b_handle : int -> Event.t -> unit;
  b_note : Event.tid -> unit;
  b_result : unit -> Detector.result;
  b_snapshot : unit -> Snap.t;
}

type state = {
  cfg : config;
  tel : telemetry;
  mutable ring : Chash.t;
  mutable workers : worker array;
  mutable epoch : int;  (* bumped on every resize: fresh checkpoint dirs *)
  mutable wal : Wal.t option;
  mutable batches_since_ckpt : int;
  mutable resizing : bool;  (* counts pump bytes as resize handoff *)
  mutable parent_fds : Unix.file_descr list;  (* closed in forked children *)
  mutable universe : (int * int * int) option;
  mutable clock_size : int;
  mutable baseline : baseline option;  (* sync-only detector + sampler mirror *)
  mutable sampler_inst : Sampler.instance option;
  mutable pending : bool array;
  mutable expected : int;  (* next global event index *)
  mutable nevents : int;
  parked : (int, Event.t array) Hashtbl.t;
  mutable quit : bool;
  mutable stop_reason : string;
  mutable failed : string option;
}

let ensure_worker_counters st k =
  let have = Array.length st.tel.worker_messages in
  if k > have then
    st.tel.worker_messages <-
      Array.init k (fun i ->
          if i < have then st.tel.worker_messages.(i) else worker_counter_of st.tel.reg i)

let worker_sock st w = Filename.concat st.cfg.dir (Printf.sprintf "worker-%d-g%d.sock" w.id w.gen)
let worker_addr_file st w =
  Filename.concat st.cfg.dir (Printf.sprintf "worker-%d-g%d.addr" w.id w.gen)
let worker_pid_file st w = Filename.concat st.cfg.dir (Printf.sprintf "worker-%d.pid" w.id)

let worker_ckpt_dir st w =
  Filename.concat st.cfg.dir
    (if st.epoch = 0 then Printf.sprintf "ckpt-%d" w.id
     else Printf.sprintf "ckpt-%d-e%d" w.id st.epoch)

let state_ckpt_path dir = Filename.concat dir "router-state.ftc"

let write_pid_file path pid =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (string_of_int pid ^ "\n");
  close_out oc;
  Sys.rename tmp path

(* Fork one worker process running the unchanged serve daemon.  [resume]
   points it at its checkpoint directory; a missing or torn checkpoint set
   degrades to a fresh start there, which the router covers by replaying
   the full log (SEQ comes back 0). *)
let spawn_worker st w ~resume =
  let addr_file = worker_addr_file st w in
  (try Sys.remove addr_file with Sys_error _ -> ());
  let listen =
    if st.cfg.worker_tcp then Serve.Tcp ("127.0.0.1", 0) else Serve.Unix_path (worker_sock st w)
  in
  let ckpt =
    if st.cfg.checkpoint then begin
      let d = worker_ckpt_dir st w in
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Some d
    end
    else None
  in
  let scfg =
    {
      Serve.listen;
      engine = st.cfg.engine;
      shards = st.cfg.worker_shards;
      sampler = st.cfg.sampler;
      clock_size = st.cfg.clock_size;
      checkpoint_dir = ckpt;
      (* The WAL makes acked client batches durable; worker checkpoints
         only bound the post-crash replay, so amortize their fsyncs over
         the in-flight window instead of paying one per CBATCH in every
         worker at once (capped so a huge window cannot push the replay
         bound arbitrarily far). *)
      checkpoint_every = Stdlib.min 32 (Stdlib.max 1 st.cfg.window);
      resume_dir = (if resume then ckpt else None);
      max_parked = Serve.default_max_parked;
      backlog = Serve.default_backlog;
      ready_file = Some addr_file;
      heartbeat_s = None;
      metrics_json = None;
      max_restarts = Serve.default_max_restarts;
      chaos = None;  (* an armed schedule is inherited through the fork *)
    }
  in
  match Unix.fork () with
  | 0 ->
    (* the child must not hold the router's listener or its peers' sockets *)
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.parent_fds;
    (try
       Serve.run scfg;
       exit 0
     with e ->
       Printf.eprintf "racedet route: worker %d died: %s\n%!" w.id (Printexc.to_string e);
       exit 1)
  | pid ->
    w.pid <- pid;
    write_pid_file (worker_pid_file st w) pid;
    (* wait for the ready file, checking the child is still alive *)
    let deadline = Clock.now_s () +. spawn_deadline_s in
    let rec await () =
      if Sys.file_exists addr_file then
        match Serve.read_addr_file addr_file with
        | Ok addr -> addr
        | Error msg -> failwith (Printf.sprintf "worker %d ready file: %s" w.id msg)
      else begin
        (match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | _ -> failwith (Printf.sprintf "worker %d exited before becoming ready" w.id)
        | exception Unix.Unix_error _ -> ());
        if Clock.now_s () > deadline then
          failwith (Printf.sprintf "worker %d not ready after %.0fs" w.id spawn_deadline_s);
        Unix.sleepf 0.01;
        await ()
      end
    in
    let addr = await () in
    let fd = Serve.connect ~deadline_s:spawn_deadline_s ~seed:(0x40 + w.id) addr in
    w.fd <- fd;
    w.conn <- Some (Evloop.make_conn fd);
    st.parent_fds <- fd :: st.parent_fds

let reap_worker w =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ()

let close_worker_fd st w =
  st.parent_fds <- List.filter (fun fd -> fd != w.fd) st.parent_fds;
  w.conn <- None;
  try Unix.close w.fd with Unix.Unix_error _ -> ()

exception Router_failed of string

let fail st msg =
  st.failed <- Some msg;
  st.stop_reason <- "worker failure";
  st.quit <- true;
  raise (Router_failed msg)

let universe_of st =
  match st.universe with
  | Some u -> u
  | None -> failwith "router: no universe yet"

(* --- routing --------------------------------------------------------------- *)

(* Mirror of {!Ft_shard.Sharded}'s routing, one level up: the router owns
   the sampler and the pending bits, workers own locations.  The baseline
   sees the sync substream plus one note per pending transition — exactly
   what each worker's internal baseline sees — which is what makes the
   metrics merge telescope (DESIGN.md §6e).

   The algebra is shared between live routing, WAL replay and resize log
   rebuilds: the callbacks differ, the transition structure cannot. *)
let route_core ~ring ~nworkers ~sampler ~pending ~append ~on_mark ~on_sync i (e : Event.t)
    =
  let append_all m =
    for w = 0 to nworkers - 1 do
      append w m
    done
  in
  match e.Event.op with
  | Event.Read x | Event.Write x ->
    let o = Chash.owner ring x in
    let sampled = Sampler.query sampler i e in
    if sampled && not pending.(e.Event.thread) then begin
      pending.(e.Event.thread) <- true;
      for w = 0 to nworkers - 1 do
        (* the owner's own sampler makes the same decision when it
           handles the event *)
        if w <> o then append w (Cmsg.Mark e.Event.thread)
      done;
      on_mark e.Event.thread
    end;
    append o (Cmsg.Ev (i, e))
  | Event.Acquire _ | Event.Acquire_load _ ->
    append_all (Cmsg.Ev (i, e));
    on_sync i e
  | Event.Release _ | Event.Release_store _ ->
    append_all (Cmsg.Ev (i, e));
    on_sync i e;
    pending.(e.Event.thread) <- false
  | Event.Fork _ ->
    append_all (Cmsg.Ev (i, e));
    on_sync i e;
    pending.(e.Event.thread) <- false
  | Event.Join u ->
    append_all (Cmsg.Ev (i, e));
    on_sync i e;
    pending.(u) <- false

let route st i (e : Event.t) =
  let baseline = Option.get st.baseline in
  let sampler = Option.get st.sampler_inst in
  let nworkers = Array.length st.workers in
  route_core ~ring:st.ring ~nworkers ~sampler ~pending:st.pending
    ~append:(fun k m ->
      log_push st.workers.(k) m;
      Registry.incr st.tel.worker_messages.(k))
    ~on_mark:(fun th ->
      Registry.add st.tel.marks_total (nworkers - 1);
      baseline.b_note th)
    ~on_sync:baseline.b_handle i e;
  st.nevents <- st.nevents + 1

let feed_events st base (evs : Event.t array) =
  let n = Array.length evs in
  for i = Stdlib.max 0 (st.expected - base) to n - 1 do
    route st (base + i) evs.(i)
  done;
  st.expected <- Stdlib.max st.expected (base + n)

let rec drain_parked st =
  let eligible =
    Hashtbl.fold
      (fun base _ acc ->
        if base <= st.expected then
          Some (match acc with None -> base | Some b -> Stdlib.min b base)
        else acc)
      st.parked None
  in
  match eligible with
  | None -> ()
  | Some base ->
    let evs = Hashtbl.find st.parked base in
    Hashtbl.remove st.parked base;
    feed_events st base evs;
    drain_parked st

(* --- event-history rebuilds ------------------------------------------------ *)

(* The full routed prefix [0, expected) in index order.  Every routed event
   is in at least one in-memory log (accesses on their owner, sync
   everywhere), so when the logs are complete (lbase = 0) the history comes
   from memory; after a state-checkpoint restore truncated them it comes
   from the WAL's Events records (duplicates harmlessly overwrite). *)
let history_events st =
  let n = st.expected in
  let evs = Array.make n None in
  let from_wal () =
    match Wal.replay (Wal.path ~dir:st.cfg.dir) with
    | Error msg -> fail st ("event-history rebuild: " ^ msg)
    | Ok (records, _) ->
      List.iter
        (fun (r, _) ->
          match r with
          | Wal.Events (base, arr) ->
            Array.iteri
              (fun j e ->
                let i = base + j in
                if i >= 0 && i < n then evs.(i) <- Some e)
              arr
          | Wal.Session _ | Wal.Resize _ -> ())
        records
  in
  if Array.for_all (fun w -> w.lbase = 0) st.workers then
    Array.iter
      (fun w ->
        for j = 0 to w.llen - 1 do
          match w.log.(j) with
          | Cmsg.Ev (i, e) -> if i < n then evs.(i) <- Some e
          | Cmsg.Mark _ -> ()
        done)
      st.workers
  else if st.wal <> None then from_wal ()
  else fail st "cannot rebuild event history: WAL disabled and logs truncated";
  Array.mapi
    (fun i -> function
      | Some e -> e
      | None -> fail st (Printf.sprintf "event %d missing from the retained history" i))
    evs

(* Re-route the whole history against [ring]: a scratch sampler instance
   makes the same decisions the live one made (same strategy, same queries,
   same order), the scratch pending bits go through the same transitions,
   and the result is the per-worker logs this ring would have produced had
   it been in place from event 0. *)
let rebuild_logs st ~ring ~nworkers =
  let history = history_events st in
  let nthreads, _, _ = universe_of st in
  let logs = Array.make nworkers [||] in
  let lens = Array.make nworkers 0 in
  let push k m =
    let cap = Array.length logs.(k) in
    if lens.(k) = cap then begin
      let bigger = Array.make (Stdlib.max 64 (2 * cap)) m in
      Array.blit logs.(k) 0 bigger 0 lens.(k);
      logs.(k) <- bigger
    end;
    logs.(k).(lens.(k)) <- m;
    lens.(k) <- lens.(k) + 1
  in
  let sampler = Sampler.fresh st.cfg.sampler in
  let pending = Array.make nthreads false in
  Array.iteri
    (fun i e ->
      route_core ~ring ~nworkers ~sampler ~pending ~append:push ~on_mark:ignore
        ~on_sync:(fun _ _ -> ()) i e)
    history;
  (logs, lens)

(* Re-materialize full logs (lbase = 0) for the current ring — the escape
   hatch when a worker's durable SEQ fell behind the retained suffix. *)
let expand_logs st =
  let nworkers = Array.length st.workers in
  let logs, lens = rebuild_logs st ~ring:st.ring ~nworkers in
  Array.iteri
    (fun k w ->
      if lens.(k) <> total w then
        fail st
          (Printf.sprintf "worker %d: rebuilt log has %d messages, retained state says %d"
             w.id lens.(k) (total w));
      w.log <- logs.(k);
      w.llen <- lens.(k);
      w.lbase <- 0)
    st.workers

(* --- pipelined sends, recovery and migration ------------------------------- *)

exception Worker_suspect of string

(* One "OK <total>" per in-flight CBATCH, in send order; anything else —
   an ERR, an unsolicited line, a reply regressing below the window we
   sent — marks the worker suspect and recovery takes over. *)
let ack_line w line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "OK"; t ] -> (
    match (int_of_string_opt t, Queue.take_opt w.inflight) with
    | Some v, Some endseq when v >= endseq -> w.acked <- endseq
    | _ -> raise (Worker_suspect (Printf.sprintf "worker %d: unexpected ack %S" w.id line)))
  | _ -> raise (Worker_suspect (Printf.sprintf "worker %d: %S instead of an ack" w.id line))

let service_acks w ~timeout_s =
  match w.conn with
  | None -> raise (Worker_suspect (Printf.sprintf "worker %d: no connection" w.id))
  | Some conn ->
    (match Evloop.feed ~timeout_s conn with
    | `Eof -> raise (Worker_suspect (Printf.sprintf "worker %d: connection closed" w.id))
    | `Timeout | `Data _ -> ());
    Evloop.process ~on_line:(fun _ line -> ack_line w line) conn

(* Block until at least one in-flight CBATCH is acked — the backpressure
   point of the pipelined window. *)
let wait_for_ack w =
  let before = Queue.length w.inflight in
  if before > 0 then begin
    let deadline = Clock.now_s () +. spawn_deadline_s in
    while Queue.length w.inflight >= before do
      service_acks w ~timeout_s:0.05;
      if Queue.length w.inflight >= before && Clock.now_s () > deadline then
        raise (Worker_suspect (Printf.sprintf "worker %d: ack timeout" w.id))
    done
  end

let push_chunk st w =
  let nthreads, nlocks, nlocs = universe_of st in
  let len = Stdlib.min cbatch_chunk (total w - w.pushed) in
  let payload = Cmsg.encode ~nthreads ~nlocks ~nlocs w.log ~off:(w.pushed - w.lbase) ~len in
  Fault.point ~lane:w.id ~supports:[ Fault.Exn; Fault.Delay ] "router.send";
  Serve.send_cbatch_nowait w.fd ~seq:w.pushed payload;
  w.pushed <- w.pushed + len;
  Queue.add w.pushed w.inflight;
  Histogram.observe st.tel.window_occupancy (Queue.length w.inflight);
  if st.resizing then Registry.add st.tel.handoff_bytes_total (String.length payload)

(* Stream the worker's unsent log suffix through the in-flight window;
   with [drain], additionally wait until every message is acked (the
   barrier before RESULT/SHUTDOWN/migration).  Any failure — send error,
   ack protocol violation, injected fault — recovers the worker. *)
let rec pump ?(drain = false) st w =
  match
    service_acks w ~timeout_s:0.0;
    while w.pushed < total w do
      if Queue.length w.inflight >= Stdlib.max 1 st.cfg.window then wait_for_ack w
      else push_chunk st w
    done;
    if drain then while not (Queue.is_empty w.inflight) do wait_for_ack w done
  with
  | () -> ()
  | exception Worker_suspect msg ->
    Printf.eprintf "racedet route: %s\n%!" msg;
    Registry.incr st.tel.send_failures_total;
    recover_worker ~drain st w
  | exception Fault.Injected _ ->
    Registry.incr st.tel.send_failures_total;
    recover_worker ~drain st w
  | exception Unix.Unix_error _ ->
    Registry.incr st.tel.send_failures_total;
    recover_worker ~drain st w

(* Crash recovery: whatever state the worker is in, kill it, respawn it
   against its checkpoint directory, ask where its durable stream stands
   and replay the rest of the log.  Checkpoint-before-ack on the worker
   side makes SEQ a durable lower bound; a SEQ behind even the retained
   log suffix re-materializes full logs out of the WAL. *)
and recover_worker ?(drain = false) st w =
  close_worker_fd st w;
  reap_worker w;
  w.respawns <- w.respawns + 1;
  Registry.incr st.tel.respawns_total;
  if w.respawns > st.cfg.max_respawns then
    fail st
      (Printf.sprintf "worker %d exceeded its respawn budget (%d)" w.id st.cfg.max_respawns);
  w.gen <- w.gen + 1;
  Queue.clear w.inflight;
  Printf.eprintf "racedet route: recovering worker %d (respawn %d, gen %d)\n%!" w.id
    w.respawns w.gen;
  spawn_worker st w ~resume:true;
  (match Serve.fetch_seq w.fd with
  | Ok seq ->
    if seq < w.lbase then expand_logs st;
    let pos = Stdlib.min seq (total w) in
    Registry.add st.tel.replayed_total (total w - pos);
    w.acked <- pos;
    w.pushed <- pos
  | Error msg ->
    Printf.eprintf "racedet route: worker %d SEQ after respawn failed (%s)\n%!" w.id msg;
    recover_worker ~drain st w);
  pump ~drain st w

(* Graceful migration: drain, SHUTDOWN (the worker writes its final
   checkpoint set), then hand the [.ftc]s to a fresh process and resume it
   at the same stream position.  Without checkpointing this degrades to a
   full-log replay — slower, still exact. *)
let migrate_worker st w =
  pump ~drain:true st w;
  (match Serve.shutdown w.fd with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "racedet route: worker %d SHUTDOWN for migration failed (%s)\n%!" w.id msg);
  close_worker_fd st w;
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  w.gen <- w.gen + 1;
  Queue.clear w.inflight;
  Registry.incr st.tel.migrations_total;
  Printf.eprintf "racedet route: migrating worker %d to gen %d\n%!" w.id w.gen;
  spawn_worker st w ~resume:true;
  (match Serve.fetch_seq w.fd with
  | Ok seq ->
    if seq < w.lbase then expand_logs st;
    let pos = Stdlib.min seq (total w) in
    Registry.add st.tel.replayed_total (total w - pos);
    w.acked <- pos;
    w.pushed <- pos;
    pump ~drain:true st w
  | Error msg ->
    Printf.eprintf "racedet route: worker %d SEQ after migration failed (%s)\n%!" w.id msg;
    recover_worker ~drain:true st w)

(* Pump every worker, visiting the chaos points first so a schedule can
   kill or migrate a worker between any two client batches. *)
let flush_workers ?(drain = false) st =
  Array.iter
    (fun w ->
      (match Fault.point ~lane:w.id ~supports:[ Fault.Exn ] "cluster.worker_crash" with
      | () -> ()
      | exception Fault.Injected _ ->
        Printf.eprintf "racedet route: chaos killed worker %d\n%!" w.id;
        Registry.incr st.tel.send_failures_total;
        recover_worker ~drain st w);
      (match Fault.point ~lane:w.id ~supports:[ Fault.Exn ] "cluster.migrate" with
      | () -> ()
      | exception Fault.Injected _ -> migrate_worker st w);
      pump ~drain st w)
    st.workers

(* --- WAL and router-state checkpoints -------------------------------------- *)

exception Wal_failed of string

(* Append + fsync one record; the ack a client is waiting on rides on this
   durability point.  Any failure (including an injected torn write at
   [router.wal_write]) rolls the file back to the last record boundary and
   refuses the batch — an un-refused batch MUST be in the log. *)
let wal_append st record =
  match st.wal with
  | None -> ()
  | Some wal -> (
    match
      let n = Wal.append wal record in
      let t0 = Clock.now_ns () in
      Wal.sync wal;
      Histogram.observe st.tel.wal_fsync_ns (Int64.to_int (Int64.sub (Clock.now_ns ()) t0));
      Registry.incr st.tel.wal_appends_total;
      Registry.add st.tel.wal_bytes_total n
    with
    | () -> ()
    | exception e ->
      (try Wal.rollback wal with _ -> ());
      raise (Wal_failed (Printexc.to_string e)))

let make_baseline st config ~snap =
  let (module D : Detector.S) = Engine.detector st.cfg.engine in
  let d = match snap with None -> D.create config | Some s -> D.restore config s in
  {
    b_handle = (fun i e -> D.handle d i e);
    b_note = (fun th -> D.note_sampled d th);
    b_result = (fun () -> D.result d);
    b_snapshot = (fun () -> D.snapshot d);
  }

let detector_config st (nthreads, nlocks, nlocs) =
  let clock_size =
    match st.cfg.clock_size with None -> nthreads | Some s -> Stdlib.max s nthreads
  in
  st.clock_size <- clock_size;
  { Detector.nthreads; nlocks; nlocs; clock_size; sampler = st.cfg.sampler }

let init_universe st ((nthreads, _, _) as u) ~snap =
  st.baseline <- Some (make_baseline st (detector_config st u) ~snap);
  (match snap with
  | None ->
    st.sampler_inst <- Some (Sampler.fresh st.cfg.sampler);
    st.pending <- Array.make nthreads false
  | Some _ -> () (* restore installs sampler/pending itself *));
  st.universe <- Some u

let ensure_cluster st ((nthreads, nlocks, nlocs) as u) =
  match st.universe with
  | Some u' ->
    if u' = u then Ok () else Error "batch universe differs from the session's"
  | None ->
    (* the Session record goes in first: if its append fails the universe
       stays unset and the client's retry re-runs this initialization *)
    wal_append st
      (Wal.Session
         {
           nthreads;
           nlocks;
           nlocs;
           engine = Engine.name st.cfg.engine;
           sampler = Sampler.name st.cfg.sampler;
           workers = Array.length st.workers;
         });
    init_universe st u ~snap:None;
    Ok ()

(* Periodic router-state checkpoint: everything replay would otherwise
   recompute from the whole WAL — sampler mirror, pending bits, baseline
   snapshot, and each worker's acked high-water mark plus unacked log
   suffix — anchored at the current WAL offset so resume only replays the
   tail.  Only taken when nothing is parked: a parked batch lives in the
   WAL prefix a tail-replay would skip.  Failure is a warning, never an
   error — the WAL alone is always sufficient. *)
let write_state_checkpoint st =
  match (st.universe, st.baseline, st.sampler_inst, st.wal) with
  | Some ((nthreads, nlocks, nlocs) as _u), Some b, Some inst, Some wal
    when st.cfg.checkpoint && Hashtbl.length st.parked = 0 -> (
    try
      let enc = Snap.Enc.create () in
      Snap.Enc.int enc (Array.length st.workers);
      Snap.Enc.int enc st.epoch;
      Snap.Enc.int enc st.nevents;
      Snap.Enc.bool_array enc st.pending;
      inst.Sampler.save enc;
      Snap.Enc.string enc (b.b_snapshot ());
      Array.iter
        (fun w ->
          Snap.Enc.int enc w.acked;
          Snap.Enc.int enc (total w);
          Snap.Enc.string enc
            (Cmsg.encode ~nthreads ~nlocks ~nlocs w.log ~off:(w.acked - w.lbase)
               ~len:(total w - w.acked)))
        st.workers;
      let meta =
        {
          Checkpoint.engine = st.cfg.engine;
          sampler = Sampler.name st.cfg.sampler;
          nthreads;
          nlocks;
          nlocs;
          clock_size = st.clock_size;
          next_index = st.expected;
          byte_offset = Wal.offset wal;
        }
      in
      Checkpoint.save (state_ckpt_path st.cfg.dir)
        { Checkpoint.meta; detector = Snap.Enc.to_snap enc }
    with e ->
      Printf.eprintf "racedet route: state checkpoint failed (%s); WAL still authoritative\n%!"
        (Printexc.to_string e))
  | _ -> ()

let maybe_state_checkpoint st =
  st.batches_since_ckpt <- st.batches_since_ckpt + 1;
  if
    st.cfg.state_every > 0 && st.cfg.checkpoint && st.wal <> None
    && st.batches_since_ckpt >= st.cfg.state_every
    && Hashtbl.length st.parked = 0
  then begin
    write_state_checkpoint st;
    st.batches_since_ckpt <- 0
  end

(* --- resume ----------------------------------------------------------------- *)

(* Park/feed logic of live ingestion, minus the WAL append and the ack —
   replaying a WAL record must route exactly what routing the original
   batch routed. *)
let ingest_replay st base evs =
  if base > st.expected then Hashtbl.replace st.parked base evs
  else begin
    feed_events st base evs;
    drain_parked st
  end

(* Try to restore sampler/pending/baseline/worker-suffixes from the
   router-state checkpoint.  Returns the WAL byte offset it was anchored
   at; any mismatch or corruption degrades to full WAL replay. *)
let try_restore_state st ~k_final =
  let path = state_ckpt_path st.cfg.dir in
  if (not st.cfg.checkpoint) || not (Sys.file_exists path) then None
  else
    match Checkpoint.load path with
    | Error msg ->
      Printf.eprintf "racedet route: ignoring state checkpoint (%s)\n%!" msg;
      None
    | Ok { Checkpoint.meta; detector = payload } -> (
      if meta.Checkpoint.engine <> st.cfg.engine
         || meta.Checkpoint.sampler <> Sampler.name st.cfg.sampler
      then begin
        Printf.eprintf
          "racedet route: ignoring state checkpoint (engine/sampler mismatch)\n%!";
        None
      end
      else
        try
          let u = (meta.Checkpoint.nthreads, meta.Checkpoint.nlocks, meta.Checkpoint.nlocs) in
          let dec = Snap.Dec.of_snap payload in
          let k = Snap.Dec.int dec in
          Snap.expect (k = k_final) "state checkpoint worker count";
          let epoch = Snap.Dec.int dec in
          let nevents = Snap.Dec.int dec in
          let pending = Snap.Dec.bool_array_n dec meta.Checkpoint.nthreads in
          let inst = Sampler.fresh st.cfg.sampler in
          inst.Sampler.load dec;
          let base_snap = Snap.Dec.string dec in
          let per_worker =
            Array.init k (fun _ ->
                let acked = Snap.Dec.int dec in
                let tot = Snap.Dec.int dec in
                let blob = Snap.Dec.string dec in
                match Cmsg.decode blob with
                | Ok (u', msgs) ->
                  Snap.expect (u' = u) "state checkpoint worker universe";
                  Snap.expect (Array.length msgs = tot - acked)
                    "state checkpoint worker suffix length";
                  (acked, tot, msgs)
                | Error msg -> raise (Snap.Corrupt msg))
          in
          Snap.Dec.finish dec;
          (* commit *)
          init_universe st u ~snap:(Some base_snap);
          st.sampler_inst <- Some inst;
          st.pending <- pending;
          st.epoch <- epoch;
          st.nevents <- nevents;
          st.expected <- meta.Checkpoint.next_index;
          Array.iteri
            (fun i w ->
              let acked, tot, msgs = per_worker.(i) in
              w.lbase <- acked;
              w.log <- msgs;
              w.llen <- tot - acked;
              w.acked <- acked;
              w.pushed <- acked)
            st.workers;
          Some meta.Checkpoint.byte_offset
        with Snap.Corrupt msg ->
          Printf.eprintf "racedet route: ignoring state checkpoint (%s)\n%!" msg;
          None)

(* A previous router was SIGKILLed: its workers are orphans still holding
   their sockets and checkpoint directories.  Kill them by pid file before
   spawning replacements on the same names. *)
let kill_stale_workers dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    let killed = ref 0 in
    Array.iter
      (fun f ->
        if
          String.length f > 7
          && String.sub f 0 7 = "worker-"
          && Filename.check_suffix f ".pid"
        then begin
          let path = Filename.concat dir f in
          (match
             let ic = open_in path in
             let line = try input_line ic with End_of_file -> "" in
             close_in_noerr ic;
             int_of_string_opt (String.trim line)
           with
          | Some pid when pid > 0 -> (
            match Unix.kill pid Sys.sigkill with
            | () -> incr killed
            | exception Unix.Unix_error _ -> ())
          | _ | (exception Sys_error _) -> ());
          try Sys.remove path with Sys_error _ -> ()
        end)
      files;
    if !killed > 0 then begin
      Printf.eprintf "racedet route: killed %d stale worker(s) from a previous run\n%!"
        !killed;
      (* give the kernel a beat to tear their listeners down before fresh
         workers probe the same socket paths *)
      Unix.sleepf 0.05
    end

(* Rebuild the pre-crash router state from the run directory: prefer the
   state checkpoint + WAL tail, fall back to replaying the whole WAL.  The
   final ring size is the Session's worker count overridden by the last
   Resize record; a tail Resize invalidates the checkpoint's per-worker
   logs, so that path always takes the full replay.  Workers are spawned
   by the caller afterwards and aligned at their own durable SEQs. *)
let resume_session st =
  let records, _len =
    match Wal.replay (Wal.path ~dir:st.cfg.dir) with
    | Ok r -> r
    | Error msg -> failwith ("racedet route --resume: " ^ msg)
  in
  match records with
  | [] -> false
  | (Wal.Session { nthreads; nlocks; nlocs; engine; sampler; workers }, _) :: _ ->
    if engine <> Engine.name st.cfg.engine then
      failwith
        (Printf.sprintf "racedet route --resume: WAL session used engine %s, not %s"
           engine (Engine.name st.cfg.engine));
    if sampler <> Sampler.name st.cfg.sampler then
      failwith
        (Printf.sprintf "racedet route --resume: WAL session used sampler %s, not %s"
           sampler (Sampler.name st.cfg.sampler));
    let k_final, epoch =
      List.fold_left
        (fun (k, ep) (r, _) ->
          match r with Wal.Resize k' -> (k', ep + 1) | _ -> (k, ep))
        (workers, 0) records
    in
    if st.cfg.workers <> k_final then
      Printf.eprintf
        "racedet route: resuming with %d worker(s) from the WAL (ignoring --workers %d)\n%!"
        k_final st.cfg.workers;
    st.epoch <- epoch;
    st.ring <- Chash.create ~workers:k_final;
    st.workers <- Array.init k_final make_worker;
    ensure_worker_counters st k_final;
    let ckpt_off = try_restore_state st ~k_final in
    (match ckpt_off with
    | Some off
      when List.for_all
             (fun (r, e) -> match r with Wal.Resize _ -> e <= off | _ -> true)
             records ->
      (* tail replay: records fully past the checkpoint's anchor *)
      List.iter
        (fun (r, e) ->
          match r with
          | Wal.Events (base, evs) when e > off -> ingest_replay st base evs
          | _ -> ())
        records
    | _ ->
      if ckpt_off <> None then
        Printf.eprintf
          "racedet route: state checkpoint predates a resize; replaying the full WAL\n%!";
      init_universe st (nthreads, nlocks, nlocs) ~snap:None;
      List.iter
        (fun (r, _) ->
          match r with
          | Wal.Events (base, evs) -> ingest_replay st base evs
          | Wal.Session _ | Wal.Resize _ -> ())
        records);
    true
  | _ -> failwith "racedet route --resume: WAL does not start with a session record"

(* After spawning a resumed/recovered epoch: ask each worker where its
   durable stream stands and replay only what it is missing. *)
let align_worker st w =
  match Serve.fetch_seq w.fd with
  | Ok seq ->
    if seq < w.lbase then expand_logs st;
    let pos = Stdlib.min seq (total w) in
    Registry.add st.tel.replayed_total (total w - pos);
    w.acked <- pos;
    w.pushed <- pos
  | Error msg ->
    Printf.eprintf "racedet route: worker %d SEQ at resume failed (%s)\n%!" w.id msg;
    recover_worker st w

(* --- resize ------------------------------------------------------------------ *)

(* Grow or shrink the ring by one worker.  Instead of moving per-location
   engine state between processes (one surgical path per engine family),
   resizing replays: quiesce so every routed message is durable, log the
   new size in the WAL, rebuild the per-worker logs the new ring would
   have produced from event 0 (sampler mirror, pending bits and baseline
   are ring-independent and stay untouched), and stream them to a fresh
   worker epoch through the normal pipelined pump.  Byte-identity of the
   final report is then just §6e applied to the new ring. *)
let resize_cluster st delta =
  let k_old = Array.length st.workers in
  let k_new = k_old + delta in
  if delta <> 1 && delta <> -1 then Error "resize delta must be +1 or -1"
  else if k_new < 1 then Error "cannot shrink below one worker"
  else
    match Fault.point ~supports:[ Fault.Exn; Fault.Delay ] "cluster.resize" with
    | exception Fault.Injected inc -> Error ("resize aborted: " ^ Fault.describe inc)
    | () ->
      (* quiesce: every routed message durable on its current owner *)
      if st.universe <> None then flush_workers ~drain:true st;
      wal_append st (Wal.Resize k_new);
      let rebuilt =
        if st.universe = None then None
        else Some (rebuild_logs st ~ring:(Chash.create ~workers:k_new) ~nworkers:k_new)
      in
      (* retire the old epoch *)
      Array.iter
        (fun w ->
          (match Serve.shutdown w.fd with Ok () | Error _ -> ());
          close_worker_fd st w;
          (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
          try Sys.remove (worker_pid_file st w) with Sys_error _ -> ())
        st.workers;
      st.epoch <- st.epoch + 1;
      st.ring <- Chash.create ~workers:k_new;
      st.workers <- Array.init k_new make_worker;
      ensure_worker_counters st k_new;
      (match rebuilt with
      | None -> ()
      | Some (logs, lens) ->
        Array.iteri
          (fun k w ->
            w.log <- logs.(k);
            w.llen <- lens.(k))
          st.workers);
      Array.iter (fun w -> spawn_worker st w ~resume:false) st.workers;
      st.resizing <- true;
      (match if st.universe <> None then flush_workers ~drain:true st with
      | () -> st.resizing <- false
      | exception e ->
        st.resizing <- false;
        raise e);
      Registry.incr st.tel.resizes_total;
      st.batches_since_ckpt <- 0;
      write_state_checkpoint st;
      Ok k_new

(* --- merge ------------------------------------------------------------------ *)

(* Each worker's races carry original global indices, and a given event is
   handled by exactly one internal shard of exactly one worker, so indices
   are unique across workers and sorting recovers the global declaration
   order.  Metrics telescope: worker-internal merges already subtracted
   their own baselines, and every internal baseline equals the router's, so
   one more [merge_shards] against the router baseline leaves exactly the
   unsharded engine's counters. *)
let merge_results st (parts : Detector.result array) =
  let baseline = (Option.get st.baseline).b_result () in
  let races =
    List.sort
      (fun a b -> compare a.Race.index b.Race.index)
      (List.concat_map (fun (r : Detector.result) -> r.Detector.races) (Array.to_list parts))
  in
  let metrics =
    Metrics.merge_shards ~sync_baseline:baseline.Detector.metrics
      (Array.map (fun (r : Detector.result) -> r.Detector.metrics) parts)
  in
  { Detector.engine = baseline.Detector.engine; races; metrics }

let fetch_results st =
  flush_workers ~drain:true st;
  Array.map
    (fun w ->
      match Serve.fetch_result w.fd with
      | Ok r -> r
      | Error msg -> (
        (* a worker that died since its last flush: recover and retry once *)
        Printf.eprintf "racedet route: worker %d RESULT failed (%s); recovering\n%!" w.id msg;
        Registry.incr st.tel.send_failures_total;
        recover_worker ~drain:true st w;
        match Serve.fetch_result w.fd with
        | Ok r -> r
        | Error msg ->
          fail st (Printf.sprintf "worker %d RESULT failed after recovery: %s" w.id msg)))
    st.workers

let report st =
  if st.nevents = 0 then Error "no events ingested"
  else Ok (Serve.report_text ~events:st.nevents (merge_results st (fetch_results st)))

(* --- protocol --------------------------------------------------------------- *)

let refresh st =
  Registry.set st.tel.uptime (int_of_float (Clock.elapsed_s ~since:st.tel.started_ns))

let stats_json st =
  refresh st;
  Json.Obj
    [
      ("engine", Json.Str (Engine.name st.cfg.engine));
      ("sampler", Json.Str (Sampler.name st.cfg.sampler));
      ("workers", Json.Int (Array.length st.workers));
      ("worker_shards", Json.Int st.cfg.worker_shards);
      ("epoch", Json.Int st.epoch);
      ("window", Json.Int st.cfg.window);
      ("wal", Json.Bool (st.wal <> None));
      ("events", Json.Int st.nevents);
      ("next_index", Json.Int st.expected);
      ("parked", Json.Int (Hashtbl.length st.parked));
      ("uptime_s", Json.Float (Clock.elapsed_s ~since:st.tel.started_ns));
      ( "worker_log_lengths",
        Json.Arr (Array.to_list (Array.map (fun w -> Json.Int (total w)) st.workers)) );
      ( "worker_acked",
        Json.Arr (Array.to_list (Array.map (fun w -> Json.Int w.acked) st.workers)) );
      ( "worker_pushed",
        Json.Arr (Array.to_list (Array.map (fun w -> Json.Int w.pushed) st.workers)) );
      ( "worker_respawns",
        Json.Arr (Array.to_list (Array.map (fun w -> Json.Int w.respawns) st.workers)) );
      ("telemetry", Registry.to_json st.tel.reg)
    ]

let reply = Evloop.reply

let handle_batch st conn base payload =
  if base < 0 then reply conn "ERR negative base index\n"
  else
    match Trace_binary.of_bytes (Bytes.unsafe_of_string payload) with
    | Error msg -> reply conn (Printf.sprintf "ERR bad batch: %s\n" msg)
    | Ok trace -> (
      let u = (trace.Trace.nthreads, trace.Trace.nlocks, trace.Trace.nlocs) in
      try
        match ensure_cluster st u with
        | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
        | Ok () ->
          let evs = Array.init (Trace.length trace) (Trace.get trace) in
          let n = Array.length evs in
          if base > st.expected then
            if Hashtbl.length st.parked >= st.cfg.max_parked then
              reply conn "ERR parked batch limit exceeded\n"
            else begin
              (* WAL before ack, park included: a parked batch is acked,
                 so it must survive a router crash *)
              wal_append st (Wal.Events (base, evs));
              Hashtbl.replace st.parked base evs;
              Registry.incr st.tel.parked_total;
              reply conn (Printf.sprintf "OK %d\n" st.expected)
            end
          else begin
            let before = st.expected in
            let t0 = Clock.now_ns () in
            (* a batch entirely inside the ingested prefix is an idempotent
               resend — nothing new to make durable *)
            if base + n > st.expected then wal_append st (Wal.Events (base, evs));
            (* the router.crash point sits exactly on the durability edge:
               the WAL holds the batch, the client never saw an ack *)
            (match Fault.point ~supports:[ Fault.Exn; Fault.Delay ] "router.crash" with
            | () -> ()
            | exception Fault.Injected inc ->
              Printf.eprintf "racedet route: %s — simulating a router crash\n%!"
                (Fault.describe inc);
              Unix._exit 137);
            feed_events st base evs;
            drain_parked st;
            flush_workers st;
            let ingested = st.expected - before in
            if ingested = 0 then Registry.incr st.tel.duplicate_total
            else begin
              Registry.incr st.tel.batches_total;
              Registry.add st.tel.events_total ingested
            end;
            Histogram.observe st.tel.ingest_ns
              (Int64.to_int (Int64.sub (Clock.now_ns ()) t0));
            maybe_state_checkpoint st;
            reply conn (Printf.sprintf "OK %d\n" st.expected)
          end
      with
      | Router_failed msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | Wal_failed msg -> reply conn (Printf.sprintf "ERR wal append failed: %s\n" msg))

let handle_line st conn line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "BATCH"; base; nbytes ] -> (
    match (int_of_string_opt base, int_of_string_opt nbytes) with
    | Some b, Some n when n >= 0 ->
      Evloop.await_blob conn n (fun payload -> handle_batch st conn b payload)
    | _ -> reply conn "ERR malformed BATCH header\n")
  | [ "REPORT" ] -> (
    match report st with
    | Ok text -> reply conn (Printf.sprintf "REPORT %d\n%s" (String.length text) text)
    | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
    | exception Router_failed msg -> reply conn (Printf.sprintf "ERR %s\n" msg))
  | [ "SEQ" ] -> reply conn (Printf.sprintf "SEQ %d\n" st.expected)
  | [ "MIGRATE"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 0 && k < Array.length st.workers -> (
      match
        (match st.universe with
        | None -> ()
        | Some _ -> flush_workers st);
        migrate_worker st st.workers.(k)
      with
      | () -> reply conn (Printf.sprintf "OK %d\n" st.expected)
      | exception Router_failed msg -> reply conn (Printf.sprintf "ERR %s\n" msg))
    | _ -> reply conn "ERR bad worker id\n")
  | [ "RESIZE"; d ] -> (
    match int_of_string_opt d with
    | Some delta -> (
      match resize_cluster st delta with
      | Ok k -> reply conn (Printf.sprintf "OK %d\n" k)
      | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | exception Router_failed msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | exception Wal_failed msg ->
        reply conn (Printf.sprintf "ERR wal append failed: %s\n" msg))
    | None -> reply conn "ERR malformed RESIZE\n")
  | [ "STATS" ] | [ "STATS"; "PROM" ] ->
    refresh st;
    let text = Registry.to_prometheus st.tel.reg in
    reply conn (Printf.sprintf "STATS %d\n%s" (String.length text) text)
  | [ "STATS"; "JSON" ] ->
    let text = Json.to_string_pretty (stats_json st) in
    reply conn (Printf.sprintf "STATS %d\n%s" (String.length text) text)
  | [ "SHUTDOWN" ] ->
    reply conn "BYE\n";
    st.stop_reason <- "SHUTDOWN command";
    st.quit <- true
  | [ "" ] -> ()
  | _ -> reply conn "ERR unknown command\n"

(* --- lifecycle --------------------------------------------------------------- *)

let write_metrics_json_file st =
  match st.cfg.metrics_json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string_pretty (stats_json st));
    close_out oc

(* Refuse a ready file that still points at a live listener (another
   router owns this address); remove one left by a crashed router. *)
let check_ready_file cfg =
  match cfg.ready_file with
  | None -> ()
  | Some path ->
    if Sys.file_exists path then begin
      (match Serve.read_addr_file path with
      | Ok addr when Serve.addr_alive addr ->
        failwith
          (Printf.sprintf
             "ready file %s points at a live listener (%s); refusing to start" path
             (Serve.addr_to_string addr))
      | Ok _ | Error _ ->
        Printf.eprintf "racedet route: removing stale ready file %s\n%!" path);
      try Sys.remove path with Sys_error _ -> ()
    end

let run (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Router.run: workers must be positive";
  if cfg.worker_shards < 1 then invalid_arg "Router.run: worker_shards must be positive";
  if cfg.resume && not cfg.wal then
    invalid_arg "Router.run: --resume requires the WAL";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match cfg.chaos with
  | None -> ()
  | Some c ->
    Fault.arm c;
    Printf.eprintf "racedet route: chaos armed (%s)\n%!" (Fault.spec_of_config c));
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  check_ready_file cfg;
  if cfg.resume then kill_stale_workers cfg.dir;
  let st =
    {
      cfg;
      tel = make_telemetry ~workers:cfg.workers;
      ring = Chash.create ~workers:cfg.workers;
      workers = Array.init cfg.workers make_worker;
      epoch = 0;
      wal = None;
      batches_since_ckpt = 0;
      resizing = false;
      parent_fds = [];
      universe = None;
      clock_size = 0;
      baseline = None;
      sampler_inst = None;
      pending = [||];
      expected = 0;
      nevents = 0;
      parked = Hashtbl.create 16;
      quit = false;
      stop_reason = "";
      failed = None;
    }
  in
  if cfg.wal then st.wal <- Some (Wal.open_append (Wal.path ~dir:cfg.dir));
  let resumed = cfg.resume && resume_session st in
  if resumed then
    Printf.eprintf
      "racedet route: resumed session: %d events, %d parked batch(es), %d worker(s), epoch %d\n%!"
      st.nevents (Hashtbl.length st.parked) (Array.length st.workers) st.epoch;
  Array.iter (fun w -> spawn_worker st w ~resume:resumed) st.workers;
  (try
     if resumed then begin
       Array.iter (fun w -> align_worker st w) st.workers;
       flush_workers st
     end
   with Router_failed _ -> ());
  let listen_fd, actual = Serve.listen_socket ~backlog:cfg.backlog cfg.listen in
  st.parent_fds <- listen_fd :: st.parent_fds;
  (match cfg.ready_file with
  | None -> ()
  | Some path -> Serve.write_addr_file path actual);
  let on_signal name =
    Sys.Signal_handle
      (fun _ ->
        st.stop_reason <- name;
        st.quit <- true)
  in
  Sys.set_signal Sys.sigterm (on_signal "SIGTERM");
  Sys.set_signal Sys.sigint (on_signal "SIGINT");
  let last_beat = ref (Clock.now_s ()) in
  let tick () =
    match cfg.heartbeat_s with
    | Some hb when Clock.now_s () -. !last_beat >= hb ->
      last_beat := Clock.now_s ();
      Printf.eprintf "racedet route: alive: %d events, %d parked, %d worker(s)\n%!"
        st.nevents (Hashtbl.length st.parked) (Array.length st.workers)
    | _ -> ()
  in
  let remaining =
    if st.failed <> None then []
    else
      Evloop.run ~listen_fd
        ~quit:(fun () -> st.quit)
        ~on_line:(fun conn line -> handle_line st conn line)
        ~on_accept:(fun conn -> st.parent_fds <- Evloop.conn_fd conn :: st.parent_fds)
        ~on_conns:(fun n -> Registry.set st.tel.conns_active n)
        ~tick ()
  in
  if st.stop_reason <> "" then
    Printf.eprintf "racedet route: shutting down (%s)\n%!" st.stop_reason;
  (* Graceful drain: every routed message durable on its worker, a final
     router-state checkpoint, then SHUTDOWN each worker so it writes its
     final checkpoint set. *)
  (match st.failed with
  | Some _ -> ()
  | None -> (
    try
      if st.universe <> None then begin
        flush_workers ~drain:true st;
        st.batches_since_ckpt <- 0;
        write_state_checkpoint st
      end;
      Array.iter
        (fun w ->
          (match Serve.shutdown w.fd with Ok () | Error _ -> ());
          close_worker_fd st w;
          try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
        st.workers
    with Router_failed _ -> ()));
  (match st.failed with
  | None -> ()
  | Some _ ->
    (* fail-fast path: make sure no worker process outlives the router *)
    Array.iter
      (fun w ->
        close_worker_fd st w;
        reap_worker w)
      st.workers);
  (match st.wal with
  | None -> ()
  | Some wal -> Wal.close wal);
  write_metrics_json_file st;
  List.iter Evloop.close_conn remaining;
  Unix.close listen_fd;
  (match cfg.listen with
  | Serve.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Serve.Tcp _ -> ());
  (match cfg.ready_file with
  | None -> ()
  | Some path -> ( try Sys.remove path with Sys_error _ -> ()));
  (match cfg.chaos with
  | None -> ()
  | Some _ ->
    Printf.eprintf
      "racedet route: chaos summary: %d faults fired over %d checks, %d respawns, %d migrations\n%!"
      (Fault.fired ()) (Fault.checks ())
      (Registry.counter_value st.tel.respawns_total)
      (Registry.counter_value st.tel.migrations_total));
  match st.failed with
  | Some msg -> failwith ("racedet route: " ^ msg)
  | None -> ()
