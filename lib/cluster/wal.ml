(* Routed-event write-ahead log: [len:4 LE][fnv64(payload):8 LE][payload].
   The payload is a Snap varint encoding; the checksum primitive is the
   same FNV-1a 64 the .ftc container uses (Checkpoint.fnv64). *)

module Snap = Ft_core.Snap
module Event = Ft_trace.Event

type record =
  | Session of {
      nthreads : int;
      nlocks : int;
      nlocs : int;
      engine : string;
      sampler : string;
      workers : int;
    }
  | Events of int * Event.t array
  | Resize of int

type t = { fd : Unix.file_descr; mutable off : int }

let path ~dir = Filename.concat dir "router.wal"

let encode_record r =
  let enc = Snap.Enc.create () in
  (match r with
  | Session { nthreads; nlocks; nlocs; engine; sampler; workers } ->
      Snap.Enc.int enc 0;
      Snap.Enc.int enc nthreads;
      Snap.Enc.int enc nlocks;
      Snap.Enc.int enc nlocs;
      Snap.Enc.string enc engine;
      Snap.Enc.string enc sampler;
      Snap.Enc.int enc workers
  | Events (base, evs) ->
      Snap.Enc.int enc 1;
      Snap.Enc.int enc base;
      Snap.Enc.int enc (Array.length evs);
      Array.iter
        (fun (e : Event.t) ->
          Snap.Enc.int enc e.thread;
          Snap.Enc.int enc (Ft_shard.Cmsg.op_tag e.op);
          Snap.Enc.int enc (Ft_shard.Cmsg.op_operand e.op))
        evs
  | Resize k ->
      Snap.Enc.int enc 2;
      Snap.Enc.int enc k);
  Snap.Enc.to_snap enc

let decode_record payload =
  let dec = Snap.Dec.of_snap payload in
  let r =
    match Snap.Dec.int dec with
    | 0 ->
        let nthreads = Snap.Dec.int dec in
        let nlocks = Snap.Dec.int dec in
        let nlocs = Snap.Dec.int dec in
        let engine = Snap.Dec.string dec in
        let sampler = Snap.Dec.string dec in
        let workers = Snap.Dec.int dec in
        Session { nthreads; nlocks; nlocs; engine; sampler; workers }
    | 1 ->
        let base = Snap.Dec.int dec in
        let n = Snap.Dec.int dec in
        if n < 0 || n > String.length payload then raise (Snap.Corrupt "wal: bad event count");
        let evs =
          Array.init n (fun _ ->
              let thread = Snap.Dec.int dec in
              let tag = Snap.Dec.int dec in
              let operand = Snap.Dec.int dec in
              { Event.thread; op = Ft_shard.Cmsg.op_of ~tag ~operand })
        in
        Events (base, evs)
    | 2 -> Resize (Snap.Dec.int dec)
    | _ -> raise (Snap.Corrupt "wal: unknown record tag")
  in
  Snap.Dec.finish dec;
  r

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (12 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int64_le b 4 (Ft_snapshot.Checkpoint.fnv64 payload);
  Bytes.blit_string payload 0 b 12 n;
  Bytes.unsafe_to_string b

let decode_all raw =
  let n = String.length raw in
  let rec go off acc =
    if off + 12 > n then (List.rev acc, off)
    else
      let len = Int32.to_int (String.get_int32_le raw off) in
      if len < 0 || off + 12 + len > n then (List.rev acc, off)
      else
        let payload = String.sub raw (off + 12) len in
        if
          not
            (Int64.equal
               (String.get_int64_le raw (off + 4))
               (Ft_snapshot.Checkpoint.fnv64 payload))
        then (List.rev acc, off)
        else
          match decode_record payload with
          | r ->
              let off' = off + 12 + len in
              go off' ((r, off') :: acc)
          | exception Snap.Corrupt _ -> (List.rev acc, off)
  in
  go 0 []

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay p =
  match read_file p with
  | raw -> Ok (decode_all raw)
  | exception (Sys_error _ | Unix.Unix_error _) ->
      Error (Printf.sprintf "wal: cannot read %s" p)

let open_append p =
  let fd = Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  let raw = match read_file p with raw -> raw | exception _ -> "" in
  let _, good = decode_all raw in
  if good < String.length raw then begin
    Printf.eprintf "racedet: wal: truncating torn tail of %s (%d -> %d bytes)\n%!"
      p (String.length raw) good;
    Unix.ftruncate fd good
  end;
  ignore (Unix.lseek fd good Unix.SEEK_SET : int);
  { fd; off = good }

let offset t = t.off

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let append t r =
  let fr = frame (encode_record r) in
  let n = String.length fr in
  (match Ft_fault.Fault.torn_len "router.wal_write" n with
  | None -> write_all t.fd (Bytes.unsafe_of_string fr) 0 n
  | Some (keep, e) ->
      write_all t.fd (Bytes.unsafe_of_string fr) 0 keep;
      raise e);
  t.off <- t.off + n;
  n

let sync t = Unix.fsync t.fd

let rollback t =
  Unix.ftruncate t.fd t.off;
  ignore (Unix.lseek t.fd t.off Unix.SEEK_SET : int)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
