(** The [racedet route] cluster router.

    One process speaking the plain [BATCH] protocol to clients and the
    [CBATCH] protocol to K worker processes, each worker an unchanged
    [racedet serve] daemon (domain-sharded underneath).  The router
    partitions locations across workers by consistent hashing ({!Chash}),
    mirrors {!Ft_shard.Sharded}'s routing algebra one level up (sync
    events broadcast, accesses to the owner, pending-bit transitions
    forwarded as {!Ft_shard.Cmsg.msg} [Mark]s, a router-side sync-only
    baseline), and merges the workers' partial [RESULT]s into a report
    byte-identical to a single-process [racedet analyze] — the soundness
    argument is DESIGN.md §6e.

    {b Durability} (DESIGN.md §6f): every client batch is appended to a
    routed-event {!Wal} and fsynced {e before} it is acknowledged, and the
    router periodically checkpoints its own state (sampler mirror, pending
    bits, baseline snapshot, per-worker acked marks + unacked log
    suffixes) into [dir/router-state.ftc].  A router SIGKILLed mid-ingest
    is recovered by [--resume]: replay the checkpoint + WAL tail (or the
    whole WAL) through the same routing algebra, respawn the workers
    against their own checkpoint directories, align each at its durable
    [SEQ] and replay only what it is missing.  Batches whose ack never
    reached the client are simply not in the WAL — the client's blind
    resend re-ingests them idempotently, so the final report is
    byte-identical to an uninterrupted run.

    {b Pipelining}: CBATCH sends stream through a per-worker in-flight
    window ([config.window]) with acks drained asynchronously; the router
    blocks only on a full window (client backpressure) or at explicit
    barriers (RESULT, migration, resize, shutdown).  Per-worker streams
    stay strictly ordered, so §6e is unaffected.

    {b Resizing}: [RESIZE +1]/[RESIZE -1] quiesces, logs the new size in
    the WAL, rebuilds the per-worker logs the new ring would have produced
    from event 0 (the sampler mirror, pending bits and baseline are
    ring-independent) and streams them to a fresh worker epoch — reports
    are byte-identical across a resize at any cut.

    Worker death and migration reuse the [.ftc] checkpoint machinery
    end-to-end: workers checkpoint every acknowledged CBATCH, the router
    keeps each worker's routed-message log, and recovery is respawn →
    resume from checkpoint → [SEQ] → replay of the unacknowledged suffix.
    Chaos points [cluster.worker_crash], [cluster.migrate], [router.send]
    (per worker, [lane] = worker id), [router.wal_write], [router.crash]
    (simulates a router SIGKILL on the durability edge) and
    [cluster.resize] make every path deterministically fault-testable.

    Extra protocol verbs over {!Ft_shard.Serve}: [MIGRATE <k>] gracefully
    moves worker [k] onto a fresh process; [RESIZE +1/-1] resizes the
    ring; [SEQ] reports the router's ingested-event count.

    The router never spawns domains (forking a multi-domain OCaml 5
    process is unsafe); its baseline is a plain in-process detector. *)

type config = {
  listen : Ft_shard.Serve.addr;
  workers : int;
  worker_shards : int;  (** domains inside each worker's {!Ft_shard.Sharded} *)
  engine : Ft_core.Engine.id;
  sampler : Ft_core.Sampler.t;
  clock_size : int option;
  dir : string;
      (** run directory: worker sockets, ready files, [worker-<k>.pid]
          files (for external kills), per-worker checkpoint dirs
          [ckpt-<k>/] ([ckpt-<k>-e<epoch>/] after a resize), the
          [router.wal] and [router-state.ftc] *)
  worker_tcp : bool;  (** workers listen on 127.0.0.1 ephemeral TCP ports *)
  checkpoint : bool;
      (** workers checkpoint every CBATCH before acknowledging it, and the
          router writes periodic state checkpoints; off, recovery degrades
          to full-log / full-WAL replays (slower, still exact) *)
  max_parked : int;
  backlog : int;
  ready_file : string option;
      (** publish the router's actual address; a stale one (crashed
          predecessor) is removed after a liveness probe, a live one is
          refused, and the file is unlinked on exit *)
  heartbeat_s : float option;  (** periodic one-line liveness log to stderr *)
  metrics_json : string option;  (** dump router telemetry JSON on shutdown *)
  max_respawns : int;
      (** per-worker respawn budget before the router fails fast
          ({!default_max_respawns}) *)
  chaos : Ft_fault.Fault.config option;
      (** armed at startup; worker processes inherit the armed schedule
          through the fork *)
  window : int;
      (** per-worker in-flight CBATCH window ({!default_window}); 1
          restores the lockstep send-then-wait of PR 9 *)
  wal : bool;
      (** append + fsync every batch to [dir/router.wal] before acking *)
  resume : bool;
      (** recover the previous session from [dir]'s WAL (and state
          checkpoint); requires [wal] *)
  state_every : int;
      (** client batches between router-state checkpoints
          ({!default_state_every}); 0 disables them (resume replays the
          whole WAL) *)
}

val default_max_respawns : int
val default_window : int
val default_state_every : int

val run : config -> unit
(** Serve until [SHUTDOWN]/[SIGTERM]/[SIGINT]; drains the in-flight
    windows, writes a final router-state checkpoint and tears down workers
    gracefully (each writes its final checkpoint set).  Blocking; forks
    worker processes — call from a process that has spawned no domains.
    Raises [Failure] after cleanup when a worker exhausted its respawn
    budget. *)
