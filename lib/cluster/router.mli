(** The [racedet route] cluster router.

    One process speaking the plain [BATCH] protocol to clients and the
    [CBATCH] protocol to K worker processes, each worker an unchanged
    [racedet serve] daemon (domain-sharded underneath).  The router
    partitions locations across workers by consistent hashing ({!Chash}),
    mirrors {!Ft_shard.Sharded}'s routing algebra one level up (sync
    events broadcast, accesses to the owner, pending-bit transitions
    forwarded as {!Ft_shard.Cmsg.msg} [Mark]s, a router-side sync-only
    baseline), and merges the workers' partial [RESULT]s into a report
    byte-identical to a single-process [racedet analyze] — the soundness
    argument is DESIGN.md §6e.

    Worker death and migration reuse the [.ftc] checkpoint machinery
    end-to-end: workers checkpoint every acknowledged CBATCH, the router
    keeps each worker's complete routed-message log, and recovery is
    respawn → resume from checkpoint → [SEQ] → replay of the unacknowledged
    suffix.  Chaos points [cluster.worker_crash], [cluster.migrate] (per
    worker, [lane] = worker id) and [router.send] let the deterministic
    fault layer kill or migrate workers between any two client batches.

    Extra protocol verbs over {!Ft_shard.Serve}: [MIGRATE <k>] gracefully
    moves worker [k] onto a fresh process; [SEQ] reports the router's
    ingested-event count.

    The router never spawns domains (forking a multi-domain OCaml 5
    process is unsafe); its baseline is a plain in-process detector. *)

type config = {
  listen : Ft_shard.Serve.addr;
  workers : int;
  worker_shards : int;  (** domains inside each worker's {!Ft_shard.Sharded} *)
  engine : Ft_core.Engine.id;
  sampler : Ft_core.Sampler.t;
  clock_size : int option;
  dir : string;
      (** run directory: worker sockets, ready files, [worker-<k>.pid]
          files (for external kills), per-worker checkpoint dirs
          [ckpt-<k>/] *)
  worker_tcp : bool;  (** workers listen on 127.0.0.1 ephemeral TCP ports *)
  checkpoint : bool;
      (** workers checkpoint every CBATCH before acknowledging it; off,
          recovery degrades to a full-log replay (slower, still exact) *)
  max_parked : int;
  backlog : int;
  ready_file : string option;  (** publish the router's actual address *)
  heartbeat_s : float option;  (** unused hook, reserved *)
  metrics_json : string option;  (** dump router telemetry JSON on shutdown *)
  max_respawns : int;
      (** per-worker respawn budget before the router fails fast
          ({!default_max_respawns}) *)
  chaos : Ft_fault.Fault.config option;
      (** armed at startup; worker processes inherit the armed schedule
          through the fork *)
}

val default_max_respawns : int

val run : config -> unit
(** Serve until [SHUTDOWN]/[SIGTERM]/[SIGINT]; tears down workers
    gracefully (each writes a final checkpoint).  Blocking; forks worker
    processes — call from a process that has spawned no domains.  Raises
    [Failure] after cleanup when a worker exhausted its respawn budget. *)
