(* Consistent-hash location → worker map.  Plain [mod] would reshuffle
   almost every location when K changes; the vnode ring moves only ~1/K of
   them, which is what keeps a future elastic-membership extension from
   migrating the whole keyspace.  Everything is a pure function of
   (workers, input) — no randomness, no host state — so the router, a
   restarted router, and the differential tests all agree on ownership. *)

let vnodes = 64

(* splitmix-style finalizer, same family as Sharded's owner map *)
let mix h =
  let h = h * 0x9E3779B1 in
  let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
  let h = (h lxor (h lsr 13)) * 0xC2B2AE35 in
  (h lxor (h lsr 16)) land max_int

type t = {
  workers : int;
  keys : int array;  (* sorted vnode keys *)
  owners : int array;  (* owners.(j) owns keys.(j) *)
}

let workers t = t.workers

let create ~workers =
  if workers < 1 then invalid_arg "Chash.create: workers must be positive";
  let pts =
    Array.init (workers * vnodes) (fun i ->
        let w = i / vnodes and v = i mod vnodes in
        (* salt the vnode keyspace away from the location keyspace *)
        (mix ((((w + 1) * 0x01000193) lxor (v * 0x85EBCA77)) lxor 0x5bd1e995), w))
  in
  (* ties (astronomically unlikely) break deterministically on worker id *)
  Array.sort compare pts;
  { workers; keys = Array.map fst pts; owners = Array.map snd pts }

let owner t x =
  if t.workers = 1 then 0
  else begin
    let key = mix (x lxor 0x27d4eb2f) in
    (* first vnode clockwise of [key], wrapping to the ring's start *)
    let n = Array.length t.keys in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.keys.(mid) < key then lo := mid + 1 else hi := mid
    done;
    t.owners.(if !lo = n then 0 else !lo)
  end
