(** Load generator for the serve and cluster daemons.

    Pushes a trace over several concurrent client connections (batch [i]
    on connection [i mod clients], in global index order), measuring
    per-batch round-trip latency and end-to-end ingest throughput, then
    fetches the final [REPORT].  Single process, no domains — safe in a
    parent that also forks routers. *)

type result = {
  events : int;
  batches : int;
  clients : int;
  wall_s : float;
  events_per_s : float;
  send_ms_mean : float;
  send_ms_p99 : float;
  send_ms_max : float;
  reconnects : int;
      (** connections re-established after a mid-session send failure (a
          restarting router refuses briefly; the batch is blindly resent —
          idempotent, because batches carry explicit bases) *)
}

val summary : result -> string
(** One human-readable line. *)

val drive :
  ?clients:int ->
  ?batch:int ->
  ?deadline_s:float ->
  addr:Ft_shard.Serve.addr ->
  Ft_trace.Trace.t ->
  (result * string, string) Stdlib.result
(** Send the whole trace ([clients] defaults to 2, [batch] to 512 events),
    returning the measurements and the server's final report text. *)

val db_trace :
  workload:string -> seed:int -> events:int -> (Ft_trace.Trace.t, string) Stdlib.result
(** A {!Ft_workloads.Db_sim} trace by profile name ([tpcc], [ycsb], …). *)
