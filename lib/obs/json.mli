(** Minimal JSON values: rendering for the telemetry exports
    ([STATS], [--metrics-json], [BENCH_*.json]) and a small parser so the
    test suite can validate what the renderers and the daemon emit without
    an external JSON dependency.

    Rendering is total: every value produced by {!to_string} is valid JSON
    (non-finite floats render as [null] — RFC 8259 has no encoding for
    them).  The parser accepts standard JSON with arbitrary whitespace and
    [\uXXXX] escapes (surrogate pairs included); it rejects trailing
    garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read and diffed
    ([--metrics-json], [BENCH_*.json]). *)

val escape : string -> string
(** The JSON string-literal encoding of a string, {e without} the
    surrounding quotes — shared with the Prometheus label renderer. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset and
    reason.  Numbers without fraction or exponent that fit in [int] parse
    as {!Int}, everything else as {!Float}. *)

(** {1 Accessors} — total lookups used by tests and consumers. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val index : int -> t -> t option
(** Element of an array. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
(** Any number, as float. *)

val to_str : t -> string option
