(** Log-bucketed histogram with lock-free atomic updates.

    Values are non-negative integers in whatever unit the caller picks
    (the serve daemon observes nanoseconds).  Bucket [i] holds values whose
    binary magnitude is [i] — i.e. value [v > 0] lands in bucket
    [⌊log2 v⌋ + 1], covering the half-open range [[2^(i-1), 2^i)] — so 63
    buckets cover the whole of [int] with ≤ 2× relative quantile error,
    and {!observe} is two array reads, a shift loop and three atomic adds:
    cheap enough for per-batch instrumentation, still too dear for
    per-event hot paths (see DESIGN.md, "Telemetry stays off the hot
    path").

    All operations are safe to call from any domain.  Readers see a
    near-consistent view: an {!observe} racing a {!quantile} can be counted
    in [count] but not yet in its bucket (or vice versa), which moves a
    quantile estimate by one sample — fine for telemetry, never a crash. *)

type t

val nbuckets : int

val create : unit -> t

val observe : t -> int -> unit
(** Record one value.  Negative values clamp to 0. *)

val count : t -> int
val sum : t -> int

val max_value : t -> int
(** Largest value observed; 0 when empty. *)

val mean : t -> float
(** [sum / count] as a float; 0 when empty. *)

val quantile : t -> float -> int
(** [quantile h q] for [q] in [0, 1]: an upper bound on the [q]-quantile
    (the upper edge of the bucket holding the rank-⌈q·count⌉ sample,
    clamped to {!max_value}).  0 when the histogram is empty. *)

val bucket_of : int -> int
(** The bucket index a value lands in (exposed for the unit tests). *)

val bucket_upper : int -> int
(** Inclusive upper bound of bucket [i]: [2^i - 1] (saturating at
    [max_int]). *)

val cumulative : t -> (int * int) list
(** [(upper_bound, cumulative_count)] per bucket, from bucket 0 through the
    highest non-empty bucket — the Prometheus [_bucket{le=...}] series
    (the renderer appends the [+Inf] bucket). *)
