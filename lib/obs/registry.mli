(** A named collection of telemetry instruments with two renderers:
    Prometheus text exposition (format version 0.0.4) and JSON.

    Instruments are registered once, at setup time, from one domain;
    updates ({!incr}, {!add}, {!set}, {!Histogram.observe}) are atomic and
    may come from any domain.  Rendering walks the registry in registration
    order, so two renders of an otherwise-idle registry are byte-identical
    and counters are monotone across successive renders.

    Registering the same name twice with different [labels] yields one
    time series per label set, sharing a single [# HELP]/[# TYPE] header —
    the per-shard gauges of the serve daemon. *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Prometheus convention: suffix counters with [_total]. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> Histogram.t

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] with negative [n] is a no-op: counters never go down. *)

val set_counter : counter -> int -> unit
(** Overwrite the value — for mirroring an {e externally monotone} source
    (the detector's merged {!Ft_core.Metrics}) into the exposition.  The
    caller owns the monotonicity argument. *)

val counter_value : counter -> int

val set : gauge -> int -> unit
val gauge_value : gauge -> int

val to_prometheus : t -> string
(** Text exposition: [# HELP]/[# TYPE] headers, one line per series,
    histograms as cumulative [_bucket{le=...}] plus [_sum]/[_count]. *)

val to_json : t -> Json.t
(** One object keyed by series name (labels rendered into the key as
    [name{k="v",...}]).  Counters and gauges map to their integer value;
    histograms to [{count, sum, max, p50, p90, p99}]. *)
