type counter = int Atomic.t
type gauge = int Atomic.t

type kind =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type entry = {
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
}

type t = { mutable entries : entry list (* reversed *) }

let create () = { entries = [] }

let register t ~help ~labels name kind =
  t.entries <- { name; help; labels; kind } :: t.entries

let counter t ?(help = "") ?(labels = []) name =
  let c = Atomic.make 0 in
  register t ~help ~labels name (Counter c);
  c

let gauge t ?(help = "") ?(labels = []) name =
  let g = Atomic.make 0 in
  register t ~help ~labels name (Gauge g);
  g

let histogram t ?(help = "") ?(labels = []) name =
  let h = Histogram.create () in
  register t ~help ~labels name (Hist h);
  h

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = if n > 0 then ignore (Atomic.fetch_and_add c n)
let set_counter c v = Atomic.set c v
let counter_value c = Atomic.get c
let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

(* --- rendering ------------------------------------------------------------ *)

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (Json.escape v)) labels)
    ^ "}"

let series_key e = e.name ^ label_string e.labels

let type_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let to_prometheus t =
  let b = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem seen e.name) then begin
        Hashtbl.add seen e.name ();
        if e.help <> "" then Printf.bprintf b "# HELP %s %s\n" e.name e.help;
        Printf.bprintf b "# TYPE %s %s\n" e.name (type_name e.kind)
      end;
      match e.kind with
      | Counter c -> Printf.bprintf b "%s%s %d\n" e.name (label_string e.labels) (Atomic.get c)
      | Gauge g -> Printf.bprintf b "%s%s %d\n" e.name (label_string e.labels) (Atomic.get g)
      | Hist h ->
        let cum = Histogram.cumulative h in
        let le v rest = ("le", v) :: rest in
        List.iter
          (fun (upper, c) ->
            Printf.bprintf b "%s_bucket%s %d\n" e.name
              (label_string (le (string_of_int upper) e.labels))
              c)
          cum;
        Printf.bprintf b "%s_bucket%s %d\n" e.name
          (label_string (le "+Inf" e.labels))
          (Histogram.count h);
        Printf.bprintf b "%s_sum%s %d\n" e.name (label_string e.labels) (Histogram.sum h);
        Printf.bprintf b "%s_count%s %d\n" e.name (label_string e.labels) (Histogram.count h))
    (List.rev t.entries);
  Buffer.contents b

let to_json t =
  Json.Obj
    (List.map
       (fun e ->
         ( series_key e,
           match e.kind with
           | Counter c -> Json.Int (Atomic.get c)
           | Gauge g -> Json.Int (Atomic.get g)
           | Hist h ->
             Json.Obj
               [
                 ("count", Json.Int (Histogram.count h));
                 ("sum", Json.Int (Histogram.sum h));
                 ("max", Json.Int (Histogram.max_value h));
                 ("p50", Json.Int (Histogram.quantile h 0.50));
                 ("p90", Json.Int (Histogram.quantile h 0.90));
                 ("p99", Json.Int (Histogram.quantile h 0.99));
               ] ))
       (List.rev t.entries))
