type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- rendering ----------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_literal f =
  (* RFC 8259 has no NaN/Infinity: render them as null rather than emit an
     invalid document *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec render b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string b "\n" in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_literal f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr vs ->
    Buffer.add_char b '[';
    sep ();
    List.iteri
      (fun i v ->
        if i > 0 then begin
          Buffer.add_char b ',';
          sep ()
        end;
        pad (level + 1);
        render b ~indent ~level:(level + 1) v)
      vs;
    sep ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_char b '{';
    sep ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b (if indent then "\": " else "\":");
        render b ~indent ~level:(level + 1) v)
      kvs;
    sep ();
    pad level;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  render b ~indent:false ~level:0 v;
  Buffer.contents b

let to_string_pretty v =
  let b = Buffer.create 256 in
  render b ~indent:true ~level:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- parsing ------------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Bad (!pos, "unexpected end of input"))
    else begin
      let c = s.[!pos] in
      incr pos;
      c
    end
  in
  let expect c =
    let got = next () in
    if got <> c then raise (Bad (!pos - 1, Printf.sprintf "expected %C, got %C" c got))
  in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else raise (Bad (!pos, "invalid literal"))
  in
  let add_utf8 b cp =
    (* encode one Unicode scalar value *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = next () in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> raise (Bad (!pos - 1, "invalid \\u escape"))
      in
      v := (!v * 16) + d
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let cp = hex4 () in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* surrogate pair *)
            expect '\\';
            expect 'u';
            let lo = hex4 () in
            if lo < 0xDC00 || lo > 0xDFFF then raise (Bad (!pos, "unpaired surrogate"));
            add_utf8 b (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then raise (Bad (!pos, "unpaired surrogate"))
          else add_utf8 b cp
        | c -> raise (Bad (!pos - 1, Printf.sprintf "invalid escape \\%c" c)));
        go ()
      | c when Char.code c < 0x20 -> raise (Bad (!pos - 1, "unescaped control character"))
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let fractional = ref false in
    if peek () = Some '-' then incr pos;
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if peek () = Some '.' then begin
      fractional := true;
      incr pos;
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      fractional := true;
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !fractional then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> raise (Bad (start, "invalid number"))
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> raise (Bad (start, "invalid number")))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> raise (Bad (!pos, "unexpected end of input"))
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> items (v :: acc)
          | ']' -> List.rev (v :: acc)
          | _ -> raise (Bad (!pos - 1, "expected ',' or ']'"))
        in
        Arr (items [])
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> fields ((k, v) :: acc)
          | '}' -> List.rev ((k, v) :: acc)
          | _ -> raise (Bad (!pos - 1, "expected ',' or '}'"))
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> raise (Bad (!pos, Printf.sprintf "unexpected character %C" c))
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad (!pos, "trailing garbage"));
    v
  with
  | v -> Ok v
  | exception Bad (at, why) -> Error (Printf.sprintf "byte %d: %s" at why)

(* --- accessors ----------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let index i = function Arr vs -> List.nth_opt vs i | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let to_float = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
