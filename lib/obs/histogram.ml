let nbuckets = 63

type t = {
  counts : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  max : int Atomic.t;
}

let create () =
  {
    counts = Array.init nbuckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
    max = Atomic.make 0;
  }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    Stdlib.min (nbuckets - 1) (bits 0 v)
  end

let bucket_upper i = if i >= 62 then max_int else (1 lsl i) - 1

let observe h v =
  let v = Stdlib.max 0 v in
  ignore (Atomic.fetch_and_add h.counts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  ignore (Atomic.fetch_and_add h.sum v);
  let rec raise_max () =
    let cur = Atomic.get h.max in
    if v > cur && not (Atomic.compare_and_set h.max cur v) then raise_max ()
  in
  raise_max ()

let count h = Atomic.get h.count
let sum h = Atomic.get h.sum
let max_value h = Atomic.get h.max

let mean h =
  let n = Atomic.get h.count in
  if n = 0 then 0.0 else float_of_int (Atomic.get h.sum) /. float_of_int n

let quantile h q =
  let n = count h in
  if n = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = Stdlib.min n (Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n)))) in
    let acc = ref 0 and res = ref (max_value h) and found = ref false in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + Atomic.get h.counts.(i);
         if (not !found) && !acc >= rank then begin
           found := true;
           res := Stdlib.min (bucket_upper i) (max_value h);
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let cumulative h =
  let top = ref (-1) in
  Array.iteri (fun i c -> if Atomic.get c > 0 then top := i) h.counts;
  let acc = ref 0 in
  List.init (!top + 1) (fun i ->
      acc := !acc + Atomic.get h.counts.(i);
      (bucket_upper i, !acc))
