(** Offline analysis experiments in the style of the paper's RAPID study
    (§A.1): run each engine over the same traces with the same seeds, count
    fine-grained work metrics, and aggregate over repeated runs.

    The four engines of the appendix are SU-(3%), SO-(3%), SU-(100%) and
    SO-(100%): Algorithm 3 and Algorithm 4 at a 3% Bernoulli sampling rate
    and with every access marked. *)

type engine_cfg = {
  engine : Ft_core.Engine.id;
  rate : float;  (** 1.0 means {!Ft_core.Sampler.all} *)
  label : string;
}

val appendix_engines : engine_cfg list
(** [SU-(3%); SO-(3%); SU-(100%); SO-(100%)], in the paper's bar order. *)

type row = {
  benchmark : string;
  label : string;
  runs : int;          (** seeded runs that completed (failed cells are dropped) *)
  metrics : Ft_core.Metrics.t;     (** summed over runs *)
  racy_locations : float;          (** mean distinct racy locations per run *)
  peak_sampled : int;  (** largest per-run sampled-set size across the runs *)
}

val run :
  ?benchmarks:Ft_workloads.Classic.benchmark list ->
  ?engines:engine_cfg list ->
  ?runs:int ->
  ?scale:int ->
  ?base_seed:int ->
  ?jobs:int ->
  ?on_error:(Ft_par.error -> unit) ->
  ?report:(Ft_par.stats -> unit) ->
  unit ->
  row list
(** [run ()] analyses every classic benchmark with every appendix engine,
    [runs] times each (default 30, as in §A.1.1), with seeds
    [base_seed + 0 … base_seed + runs − 1] shared across engines.  The trace
    for seed s is generated once and fed to all engines.

    The (benchmark × seed) grid fans out over [jobs] domains (default 1 =
    run inline sequentially); results are merged in task order, so the rows
    — and every figure rendered from them — are identical for any [jobs].
    A crashed cell is passed to [on_error] (default: one line on stderr) and
    excluded from that benchmark's aggregates instead of aborting the grid;
    [report] receives the runner's wall/busy-time statistics. *)

(** {1 Figure tables}

    Each returns the rendered table and prints nothing. *)

val fig7 : row list -> string
(** Ratio of acquires skipped over total acquires, per benchmark × engine. *)

val fig8 : row list -> string
(** Ratio of releases processed (SU) or deep copies created (SO) over total
    releases. *)

val fig9 : row list -> string
(** Ordered-list saving ratio SavedTraversals/AllTraversals for the SO
    engines. *)

val summary : row list -> string
(** Aggregate means of the three figures' quantities per engine — the
    headline numbers quoted in §A.1.2. *)

val to_csv : row list -> string
(** Raw per-row data (benchmark, engine, runs, all counters, racy
    locations) as CSV, for external plotting. *)

val eraser_comparison :
  ?benchmarks:Ft_workloads.Classic.benchmark list ->
  ?scale:int ->
  ?seed:int ->
  unit ->
  string
(** Precision table: ground-truth racy locations (oracle) vs the HB engine
    (SO, exact by construction) vs the Eraser lockset baseline, with
    Eraser's false positives and false negatives called out per benchmark —
    the soundness gap §7 attributes to lockset detectors.  Uses small traces
    (the oracle is quadratic). *)
