module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Classic = Ft_workloads.Classic
module Tabulate = Ft_support.Tabulate

type engine_cfg = {
  engine : Engine.id;
  rate : float;
  label : string;
}

let appendix_engines =
  [
    { engine = Engine.Su; rate = 0.03; label = "SU-(3%)" };
    { engine = Engine.So; rate = 0.03; label = "SO-(3%)" };
    { engine = Engine.Su; rate = 1.0; label = "SU-(100%)" };
    { engine = Engine.So; rate = 1.0; label = "SO-(100%)" };
  ]

type row = {
  benchmark : string;
  label : string;
  runs : int;  (** seeded runs that completed (failures are dropped) *)
  metrics : Metrics.t;
  racy_locations : float;
  peak_sampled : int;  (** largest per-run sampled set across the runs *)
}

let sampler_for cfg ~seed =
  if cfg.rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate:cfg.rate ~seed

(* One experiment cell: a (benchmark, seed) pair analysed by every engine
   configuration.  Cells are independent, so the grid fans out over a domain
   pool; results are merged in task order, which keeps the tables identical
   to the sequential run for any [jobs]. *)
let run ?(benchmarks = Classic.all) ?(engines = appendix_engines) ?(runs = 30) ?(scale = 4)
    ?(base_seed = 1000) ?(jobs = 1) ?(on_error = Ft_par.warn_stderr) ?report () =
  let benchs = Array.of_list benchmarks in
  let tasks =
    Array.init
      (Array.length benchs * runs)
      (fun i -> (i / runs, base_seed + (i mod runs)))
  in
  let cell (bi, seed) =
    let bench = benchs.(bi) in
    let trace = bench.Classic.generate ~seed ~scale in
    List.map
      (fun (cfg : engine_cfg) ->
        let result = Engine.run cfg.engine ~sampler:(sampler_for cfg ~seed) trace in
        (result.Detector.metrics, List.length (Detector.racy_locations result)))
      engines
  in
  let results, stats = Ft_par.map_stats ~jobs cell tasks in
  Option.iter (fun f -> f stats) report;
  List.concat
    (List.mapi
       (fun bi (bench : Classic.benchmark) ->
         let acc =
           List.map
             (fun (cfg : engine_cfg) -> (cfg, Metrics.create (), ref 0, ref 0))
             engines
         in
         let ok_runs = ref 0 in
         for k = 0 to runs - 1 do
           match results.((bi * runs) + k) with
           | Error e -> on_error e
           | Ok cells ->
             incr ok_runs;
             List.iter2
               (fun (_, total, locs, peak) (m, nlocs) ->
                 Metrics.add ~into:total m;
                 locs := !locs + nlocs;
                 peak := Stdlib.max !peak m.Metrics.sampled_accesses)
               acc cells
         done;
         List.map
           (fun ((cfg : engine_cfg), total, locs, peak) ->
             {
               benchmark = bench.Classic.name;
               label = cfg.label;
               runs = !ok_runs;
               metrics = total;
               racy_locations = float_of_int !locs /. float_of_int (Stdlib.max 1 !ok_runs);
               peak_sampled = !peak;
             })
           acc)
       (Array.to_list benchs))

let benchmarks_of rows =
  List.sort_uniq compare (List.map (fun r -> r.benchmark) rows)

let labels_of rows =
  (* preserve first-appearance order *)
  List.fold_left
    (fun acc r -> if List.mem r.label acc then acc else acc @ [ r.label ])
    [] rows

let cell rows bench label =
  List.find_opt (fun r -> r.benchmark = bench && r.label = label) rows

let table ~quantity rows =
  let labels = labels_of rows in
  let header = Array.of_list ("benchmark" :: labels) in
  let body =
    List.map
      (fun bench ->
        Array.of_list
          (bench
          :: List.map
               (fun label ->
                 match cell rows bench label with
                 | Some r -> Tabulate.pct (quantity r)
                 | None -> "-")
               labels))
      (benchmarks_of rows)
  in
  Tabulate.render ~header body

let fig7 rows = table rows ~quantity:(fun r -> Metrics.acquires_skipped_ratio r.metrics)

(* Fig 8 mixes two quantities: for SU engines the ratio of releases that
   performed the O(T) copy; for SO the ratio of deep copies materialized. *)
let fig8_quantity r =
  if String.length r.label >= 2 && String.sub r.label 0 2 = "SO" then
    Metrics.deep_copy_ratio r.metrics
  else Metrics.releases_processed_ratio r.metrics

let fig8 rows = table rows ~quantity:fig8_quantity

let fig9 rows =
  let so_rows =
    List.filter (fun r -> String.length r.label >= 2 && String.sub r.label 0 2 = "SO") rows
  in
  table so_rows ~quantity:(fun r -> Metrics.saved_traversal_ratio r.metrics)

let to_csv rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "benchmark,engine,runs,events,sampled,peak_sampled,acquires,acquires_skipped,releases,\
     releases_processed,deep_copies,shallow_copies,entries_traversed,entries_saved,\
     races,racy_locations_mean\n";
  List.iter
    (fun r ->
      let m = r.metrics in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f\n" r.benchmark
           r.label r.runs m.Metrics.events m.Metrics.sampled_accesses r.peak_sampled
           m.Metrics.acquires m.Metrics.acquires_skipped m.Metrics.releases
           m.Metrics.releases_processed m.Metrics.deep_copies m.Metrics.shallow_copies
           m.Metrics.entries_traversed m.Metrics.entries_saved m.Metrics.races
           r.racy_locations))
    rows;
  Buffer.contents buf

let eraser_comparison ?(benchmarks = Classic.all) ?(scale = 2) ?(seed = 5) () =
  let header =
    [| "benchmark"; "truth"; "SO (HB)"; "eraser"; "false pos"; "false neg" |]
  in
  let body =
    List.map
      (fun (bench : Classic.benchmark) ->
        let trace = bench.Classic.generate ~seed ~scale in
        let mask =
          Array.init (Ft_trace.Trace.length trace) (fun i ->
              Ft_trace.Event.is_access (Ft_trace.Trace.get trace i))
        in
        let truth = Ft_trace.Hb.racy_locations trace ~sampled:mask in
        let so = Detector.racy_locations (Engine.run Engine.So ~sampler:Sampler.all trace) in
        let eraser =
          Detector.racy_locations (Engine.run Engine.Eraser ~sampler:Sampler.all trace)
        in
        let fp = List.filter (fun x -> not (List.mem x truth)) eraser in
        let fn = List.filter (fun x -> not (List.mem x eraser)) truth in
        [|
          bench.Classic.name;
          string_of_int (List.length truth);
          string_of_int (List.length so);
          string_of_int (List.length eraser);
          string_of_int (List.length fp);
          string_of_int (List.length fn);
        |])
      benchmarks
  in
  Tabulate.render ~header body

let mean xs = Ft_support.Stats.mean (Array.of_list xs)

let summary rows =
  let labels = labels_of rows in
  let header = [| "engine"; "acq skipped"; "rel processed / deep copies"; "savings" |] in
  let body =
    List.map
      (fun label ->
        let of_label = List.filter (fun r -> r.label = label) rows in
        let skipped = mean (List.map (fun r -> Metrics.acquires_skipped_ratio r.metrics) of_label) in
        let rel = mean (List.map fig8_quantity of_label) in
        let sav = mean (List.map (fun r -> Metrics.saved_traversal_ratio r.metrics) of_label) in
        [| label; Tabulate.pct skipped; Tabulate.pct rel;
           (if String.sub label 0 2 = "SO" then Tabulate.pct sav else "-") |])
      labels
  in
  Tabulate.render ~header body
