(** Descriptive analysis of an execution trace.

    The RAPID-style offline setting begins by understanding the trace: how
    synchronization-heavy it is, where lock contention concentrates, how
    skewed the memory accesses are.  These are the statistics that predict
    how much the paper's algorithms can save (§6.2.4: benchmarks "perform
    very few synchronizations relative to memory accesses" are the ones
    where optimizing synchronization handling cannot help). *)

type lock_row = {
  lock : Ft_trace.Event.lock;
  acquisitions : int;
  distinct_threads : int;
  handoffs : int;
      (** acquisitions whose previous release came from a different thread —
          the communication the timestamping algorithms actually pay for *)
}

type loc_row = {
  loc : Ft_trace.Event.loc;
  reads : int;
  writes : int;
  distinct_threads : int;
}

type t = {
  stats : Ft_trace.Trace.stats;
  sync_access_ratio : float;
  events_per_thread : int array;
  locks : lock_row list;       (** sorted by acquisitions, descending *)
  hot_locations : loc_row list;  (** top locations by access count *)
}

val analyze : ?top:int -> Ft_trace.Trace.t -> t
(** [analyze ?top trace] ([top] defaults to 10 hot locations; all locks are
    reported). *)

val render : t -> string
(** Human-readable report. *)

val handoff_ratio : t -> float
(** Cross-thread acquisitions over all acquisitions — an upper bound on the
    fraction of acquires that can carry new information. *)
