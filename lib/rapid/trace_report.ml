module Trace = Ft_trace.Trace
module Event = Ft_trace.Event
module Tabulate = Ft_support.Tabulate

type lock_row = {
  lock : Event.lock;
  acquisitions : int;
  distinct_threads : int;
  handoffs : int;
}

type loc_row = {
  loc : Event.loc;
  reads : int;
  writes : int;
  distinct_threads : int;
}

type t = {
  stats : Trace.stats;
  sync_access_ratio : float;
  events_per_thread : int array;
  locks : lock_row list;
  hot_locations : loc_row list;
}

let analyze ?(top = 10) trace =
  let stats = Trace.stats trace in
  let nthreads = trace.Trace.nthreads in
  let nlocks = Stdlib.max 1 trace.Trace.nlocks in
  let nlocs = Stdlib.max 1 trace.Trace.nlocs in
  let events_per_thread = Array.make nthreads 0 in
  let acqs = Array.make nlocks 0 in
  let handoffs = Array.make nlocks 0 in
  let last_releaser = Array.make nlocks (-1) in
  let lock_threads = Array.make nlocks [] in
  let reads = Array.make nlocs 0 in
  let writes = Array.make nlocs 0 in
  let loc_threads = Array.make nlocs [] in
  let note_thread arr i tid = if not (List.mem tid arr.(i)) then arr.(i) <- tid :: arr.(i) in
  Trace.iteri
    (fun _ (e : Event.t) ->
      let tid = e.Event.thread in
      events_per_thread.(tid) <- events_per_thread.(tid) + 1;
      match e.Event.op with
      | Event.Read x ->
        reads.(x) <- reads.(x) + 1;
        note_thread loc_threads x tid
      | Event.Write x ->
        writes.(x) <- writes.(x) + 1;
        note_thread loc_threads x tid
      | Event.Acquire l | Event.Acquire_load l ->
        acqs.(l) <- acqs.(l) + 1;
        note_thread lock_threads l tid;
        if last_releaser.(l) >= 0 && last_releaser.(l) <> tid then
          handoffs.(l) <- handoffs.(l) + 1
      | Event.Release l | Event.Release_store l ->
        note_thread lock_threads l tid;
        last_releaser.(l) <- tid
      | Event.Fork _ | Event.Join _ -> ())
    trace;
  let locks =
    List.filter (fun r -> r.acquisitions > 0)
      (List.init nlocks (fun l ->
           {
             lock = l;
             acquisitions = acqs.(l);
             distinct_threads = List.length lock_threads.(l);
             handoffs = handoffs.(l);
           }))
    |> List.sort (fun a b -> compare b.acquisitions a.acquisitions)
  in
  let hot_locations =
    List.filter (fun r -> r.reads + r.writes > 0)
      (List.init nlocs (fun x ->
           {
             loc = x;
             reads = reads.(x);
             writes = writes.(x);
             distinct_threads = List.length loc_threads.(x);
           }))
    |> List.sort (fun a b -> compare (b.reads + b.writes) (a.reads + a.writes))
    |> List.filteri (fun i _ -> i < top)
  in
  {
    stats;
    sync_access_ratio =
      Ft_support.Stats.ratio stats.Trace.n_syncs (Stdlib.max 1 stats.Trace.n_accesses);
    events_per_thread;
    locks;
    hot_locations;
  }

let handoff_ratio t =
  let total = List.fold_left (fun acc r -> acc + r.acquisitions) 0 t.locks in
  let hand = List.fold_left (fun acc r -> acc + r.handoffs) 0 t.locks in
  Ft_support.Stats.ratio hand total

let render t =
  let buf = Buffer.create 2048 in
  let s = t.stats in
  Buffer.add_string buf
    (Printf.sprintf
       "events: %d  (reads %d, writes %d, acquires %d, releases %d, forks %d, joins %d, \
        atomics %d)\n"
       s.Trace.n_events s.Trace.n_reads s.Trace.n_writes s.Trace.n_acquires s.Trace.n_releases
       s.Trace.n_forks s.Trace.n_joins
       (s.Trace.n_release_stores + s.Trace.n_acquire_loads));
  Buffer.add_string buf
    (Printf.sprintf "sync:access ratio: %.3f   lock hand-off ratio: %s\n" t.sync_access_ratio
       (Tabulate.pct (handoff_ratio t)));
  Buffer.add_string buf
    (Printf.sprintf "threads: %d (busiest handles %d events)\n"
       (Array.length t.events_per_thread)
       (Array.fold_left Stdlib.max 0 t.events_per_thread));
  Buffer.add_string buf "\nmost contended locks:\n";
  Buffer.add_string buf
    (Tabulate.render
       ~header:[| "lock"; "acquisitions"; "threads"; "hand-offs" |]
       (List.filteri (fun i _ -> i < 10) t.locks
       |> List.map (fun r ->
              [|
                Printf.sprintf "L%d" r.lock;
                string_of_int r.acquisitions;
                string_of_int r.distinct_threads;
                string_of_int r.handoffs;
              |])));
  Buffer.add_string buf "\nhottest locations:\n";
  Buffer.add_string buf
    (Tabulate.render
       ~header:[| "location"; "reads"; "writes"; "threads" |]
       (List.map
          (fun r ->
            [|
              Printf.sprintf "x%d" r.loc;
              string_of_int r.reads;
              string_of_int r.writes;
              string_of_int r.distinct_threads;
            |])
          t.hot_locations));
  Buffer.contents buf
