(** Bounded single-producer single-consumer ring.

    The sharded router owns the producer side of one ring per shard; each
    shard's worker domain owns the consumer side.  Capacity is fixed at
    creation: a {!push} into a full ring spins until the consumer frees a
    slot, which is the backpressure that keeps a fast producer from
    buffering an unbounded prefix of the trace.

    Memory-safety across domains follows the standard publication idiom:
    the producer writes the slot and then advances [tail] (an atomic), the
    consumer reads [tail] before reading the slot; symmetrically the
    consumer advances [head] only {e after} it is done with a slot, so a
    producer that observes the freed slot — or a router that observes
    [is_empty] — has a happens-before edge to everything the consumer did
    with the messages so far.  That last property is what makes
    [is_empty] usable as the router's flush barrier. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [dummy] fills the backing array; it is never handed out. *)

val push : 'a t -> 'a -> unit
(** Producer only.  Spins (with [Domain.cpu_relax]) while the ring is
    full. *)

val try_push : 'a t -> 'a -> bool
(** Producer only.  Push without blocking; [false] when the ring is full.
    The supervisor's push loop uses this so a producer facing a {e dead}
    consumer (a crashed shard domain no longer draining) can notice the
    failure instead of spinning in {!push} forever. *)

val peek : 'a t -> 'a option
(** Consumer only.  The oldest unconsumed element, without removing it;
    [None] when the ring is empty. *)

val advance : 'a t -> unit
(** Consumer only.  Drop the element {!peek} returned.  Call it {e after}
    acting on the element: the gap is what lets [is_empty] mean
    "everything pushed so far has been fully processed". *)

val is_empty : 'a t -> bool
(** Callable from any domain. *)

val length : 'a t -> int
(** Unconsumed elements, callable from any domain.  Racing a concurrent
    push/advance it may be off by the in-flight operations — an occupancy
    telemetry reading, not a synchronization primitive. *)
