(** The shared accept/read loop behind {!Serve.run} and the cluster router.

    One thread, one [select] round per iteration: accept new connections
    (EINTR-guarded, close-on-exec on the accepted descriptors), append each
    readable connection's bytes to its {!Netbuf}, and hand complete protocol
    units to the caller — lines via [on_line], sized binary payloads via the
    consumer registered with {!await_blob}.  Closed connections are swept
    and closed every round.  The loop never raises out of a signal landing
    mid-syscall, so a SIGTERM-driven [quit] always reaches the caller's
    graceful-drain path. *)

type conn

val conn_fd : conn -> Unix.file_descr
(** The connection's descriptor — what a forking daemon (the cluster
    router) closes in its children. *)

val reply : conn -> string -> unit
(** Blocking write of the full string; a write error marks the connection
    closed instead of raising. *)

val close_conn : conn -> unit
(** Mark closed and close the descriptor now (idempotent). *)

val await_blob : conn -> int -> (string -> unit) -> unit
(** Called from [on_line] after parsing a [<verb> ... <nbytes>] header:
    the next [n] raw bytes of this connection go to the consumer instead of
    the line parser. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying partial writes and EINTR/EAGAIN. *)

val make_conn : Unix.file_descr -> conn
(** Wrap an outbound descriptor (e.g. the router's socket to a worker) so
    {!feed}/{!process} can drive its reply stream with the same framing as
    loop-owned connections. *)

val feed : ?timeout_s:float -> conn -> [ `Data of int | `Eof | `Timeout ]
(** One bounded receive step: wait up to [timeout_s] (default 0 — poll)
    for readability and append one chunk to the connection's buffer.
    [`Eof] marks the connection closed (peer gone or read error).  Run
    {!process} afterwards to consume completed protocol units. *)

val process : on_line:(conn -> string -> unit) -> conn -> unit
(** Consume everything buffered: pending sized blobs, then complete
    lines.  The same consumer {!run} applies after each receive. *)

val run :
  listen_fd:Unix.file_descr ->
  quit:(unit -> bool) ->
  on_line:(conn -> string -> unit) ->
  ?on_accept:(conn -> unit) ->
  ?on_conns:(int -> unit) ->
  ?tick:(unit -> unit) ->
  ?recv_fault:string ->
  ?select_s:float ->
  unit ->
  conn list
(** Serve until [quit ()] turns true, then return the connections still
    open (the caller closes them after its drain).  [tick] runs once per
    select round — heartbeats and deferred housekeeping.  [recv_fault]
    names the {!Ft_fault.Fault} injection point armed over every receive
    ([serve.recv] in the daemon); omitted, reads are not chaos-able. *)
