(** The shared accept/read loop behind {!Serve.run} and the cluster router.

    One thread, one [select] round per iteration: accept new connections
    (EINTR-guarded, close-on-exec on the accepted descriptors), append each
    readable connection's bytes to its {!Netbuf}, and hand complete protocol
    units to the caller — lines via [on_line], sized binary payloads via the
    consumer registered with {!await_blob}.  Closed connections are swept
    and closed every round.  The loop never raises out of a signal landing
    mid-syscall, so a SIGTERM-driven [quit] always reaches the caller's
    graceful-drain path. *)

type conn

val conn_fd : conn -> Unix.file_descr
(** The connection's descriptor — what a forking daemon (the cluster
    router) closes in its children. *)

val reply : conn -> string -> unit
(** Blocking write of the full string; a write error marks the connection
    closed instead of raising. *)

val close_conn : conn -> unit
(** Mark closed and close the descriptor now (idempotent). *)

val await_blob : conn -> int -> (string -> unit) -> unit
(** Called from [on_line] after parsing a [<verb> ... <nbytes>] header:
    the next [n] raw bytes of this connection go to the consumer instead of
    the line parser. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying partial writes and EINTR/EAGAIN. *)

val run :
  listen_fd:Unix.file_descr ->
  quit:(unit -> bool) ->
  on_line:(conn -> string -> unit) ->
  ?on_accept:(conn -> unit) ->
  ?on_conns:(int -> unit) ->
  ?tick:(unit -> unit) ->
  ?recv_fault:string ->
  ?select_s:float ->
  unit ->
  conn list
(** Serve until [quit ()] turns true, then return the connections still
    open (the caller closes them after its drain).  [tick] runs once per
    select round — heartbeats and deferred housekeeping.  [recv_fault]
    names the {!Ft_fault.Fault} injection point armed over every receive
    ([serve.recv] in the daemon); omitted, reads are not chaos-able. *)
