(** Offset-tracked receive buffer for the network daemon.

    The naive way to accumulate socket input — [data <- data ^ chunk] — copies
    the {e entire} backlog on every 64 KiB read, so ingesting one large BATCH
    costs O(n²) bytes moved (a 64 MiB payload re-copies ~32 GiB).  This buffer
    appends in amortized O(1): bytes land once in a growable backing array, a
    start offset tracks consumption, and the live region is compacted to the
    front only when an append would otherwise grow the array.

    Single-owner, not thread-safe — exactly the per-connection use in
    {!Serve}. *)

type t

val create : ?capacity:int -> unit -> t
(** Initial backing capacity (default 64 KiB); grows geometrically. *)

val length : t -> int
(** Unconsumed bytes currently buffered. *)

val append : t -> bytes -> off:int -> len:int -> unit
(** Copy [len] bytes of [src] starting at [off] onto the end of the buffer.
    Raises [Invalid_argument] on an out-of-range slice. *)

val index_newline : t -> int option
(** Position of the first ['\n'] in the unconsumed region, relative to its
    start. *)

val take : t -> int -> string
(** Consume and return the first [n] unconsumed bytes.  Raises
    [Invalid_argument] if fewer than [n] are buffered. *)

val drop : t -> int -> unit
(** Consume and discard the first [n] unconsumed bytes.  Raises
    [Invalid_argument] if fewer than [n] are buffered. *)

val copied : t -> int
(** Total bytes moved by internal blits since {!create} — appends plus
    compaction and growth.  The amortization contract, and what the
    regression test pins: a feed of [n] appended bytes costs at most a
    small constant times [n], independent of chunk size.  The quadratic
    string-concatenation bug this module replaced moved
    Θ(n²/chunk) bytes. *)
