(** Location-sharded parallel online detection.

    A sharded detector wraps K instances of one engine, each running on its
    own domain behind a bounded SPSC ring ({!Spsc}).  The router (the caller's
    domain) partitions access events by [hash(location) mod K] and broadcasts
    every synchronization event (acquire/release/fork/join/atomic) to all K
    shards, so each shard's thread and lock clocks evolve {e exactly} as in an
    unsharded run — HB race detection factors per location once the sync-side
    state is replicated.

    The one piece of sync-side state that accesses do feed is the sampling
    engines' per-thread {e pending} bit (a sampled access bumps the thread's
    local epoch at its next release/fork/join).  The router therefore runs
    its own instance of the sampler over the full access stream and, on every
    false→true pending transition, forwards one idempotent
    {!Ft_core.Detector.S.note_sampled} mark to every non-owner shard (the
    owner sets the bit itself when it handles the event).  See DESIGN.md,
    "Sharding soundness".

    Race verdicts are exact: the per-shard race lists, merged by original
    event index, are byte-identical to the unsharded engine's declarations —
    for every engine, every sampler, and every K (property-tested).  Metrics
    are merged exactly via {!Ft_core.Metrics.merge_shards}, using an inline
    sync-only baseline instance that measures the duplicated sync work. *)

type t

val owner_of : shards:int -> Ft_trace.Event.loc -> int
(** The shard that owns a location — a pure hash, independent of trace
    content, so tests can place locations on chosen shards. *)

val create : engine:Ft_core.Engine.id -> shards:int -> Ft_core.Detector.config -> t
(** Spawn [shards] worker domains (K ≥ 1).  Every sharded detector must be
    {!stop}ped, or its domains leak. *)

val handle : t -> int -> Ft_trace.Event.t -> unit
(** Route event [i].  Indices must be fed in increasing order, as with
    {!Ft_core.Detector.S.handle}.  Blocks (backpressure) when a shard's ring
    is full.  Raises [Failure] if called after {!stop}. *)

val events : t -> int
(** Events routed so far. *)

val shard_event_counts : t -> int array
(** Events pushed to each shard's ring so far (accesses go to the owner
    only, sync events to all K) — the per-shard throughput series of the
    serve daemon's [STATS].  Router-domain callers only, like {!handle}. *)

val ring_occupancy : t -> int array
(** Instantaneous unconsumed-message count of each shard's ring, readable
    from any domain.  A telemetry snapshot: concurrent workers may have
    drained (or the router filled) slots by the time the array returns. *)

val flush : t -> unit
(** Wait until every shard has fully processed everything routed so far.
    Re-raises (as [Failure]) the first exception any shard worker hit. *)

val result : t -> Ft_core.Detector.result
(** {!flush}, then merge: races from all shards sorted by declaration index
    (each event declares at most one race, so the order is total and equals
    the unsharded declaration order), metrics via
    {!Ft_core.Metrics.merge_shards}.  The detector stays usable — serving a
    report mid-stream is allowed. *)

val stop : t -> unit
(** Drain and join the worker domains.  Idempotent.  {!result},
    {!shard_snapshots} and {!router_snapshot} remain valid afterwards. *)

(** {1 Snapshots}

    A sharded detector checkpoints as K engine snapshots (one per shard,
    each a regular {!Ft_core.Detector.S.snapshot}) plus one router snapshot
    holding the replicated-pending bits, the router's sampler state, the
    event count and the sync-only baseline.  [restore] rebuilds the whole
    ensemble; shard count and universe must match the snapshots. *)

val shard_snapshots : t -> Ft_core.Snap.t array
(** Flushes first; index [k] is shard [k]'s engine snapshot. *)

val router_snapshot : t -> Ft_core.Snap.t

val restore :
  engine:Ft_core.Engine.id ->
  shards:int ->
  Ft_core.Detector.config ->
  router:Ft_core.Snap.t ->
  Ft_core.Snap.t array ->
  t
(** Raises [Ft_core.Snap.Corrupt] on malformed or mismatched payloads
    (wrong shard count, wrong universe).  Spawns worker domains like
    {!create}. *)
