(** Location-sharded parallel online detection.

    A sharded detector wraps K instances of one engine, each running on its
    own domain behind a bounded SPSC ring ({!Spsc}).  The router (the caller's
    domain) partitions access events by [hash(location) mod K] and broadcasts
    every synchronization event (acquire/release/fork/join/atomic) to all K
    shards, so each shard's thread and lock clocks evolve {e exactly} as in an
    unsharded run — HB race detection factors per location once the sync-side
    state is replicated.

    The one piece of sync-side state that accesses do feed is the sampling
    engines' per-thread {e pending} bit (a sampled access bumps the thread's
    local epoch at its next release/fork/join).  The router therefore runs
    its own instance of the sampler over the full access stream and, on every
    false→true pending transition, forwards one idempotent
    {!Ft_core.Detector.S.note_sampled} mark to every non-owner shard (the
    owner sets the bit itself when it handles the event).  See DESIGN.md,
    "Sharding soundness".

    Race verdicts are exact: the per-shard race lists, merged by original
    event index, are byte-identical to the unsharded engine's declarations —
    for every engine, every sampler, and every K (property-tested).  Metrics
    are merged exactly via {!Ft_core.Metrics.merge_shards}, using an inline
    sync-only baseline instance that measures the duplicated sync work.

    {2 Supervision}

    With [~supervise:true] the router doubles as a {e supervisor}: every
    message routed to a shard is also appended to a router-side backlog, and
    each worker periodically publishes a [(count, snapshot)] pair through an
    atomic slot.  When a worker dies — its handler raised, or an injected
    {!Ft_fault.Fault.Crash_domain} killed the domain mid-message — the router
    joins the corpse, rebuilds the shard's engine from the latest published
    snapshot, replays the backlog suffix through a fresh domain, and carries
    on.  Because replay is exact (same messages, same order), the healed
    shard reaches precisely the state an unfaulted run would have: race
    verdicts and metrics are unaffected, which the chaos suite checks
    byte-for-byte against fault-free runs.  Restarts are bounded per shard
    ([?max_restarts], default 8); past the budget the shard is marked dead
    and every subsequent operation raises {!Shard_failed} — fail fast rather
    than loop forever on a deterministic fault.

    Without supervision (the default) behavior is exactly the pre-supervisor
    one — no backlog, no snapshot publishing, worker failures surface as
    [Failure] from {!flush}/{!result}/{!stop} — so existing callers pay
    nothing. *)

type t

exception Shard_failed of string
(** A supervised shard exhausted its restart budget.  The detector is no
    longer usable for routing; {!stop} still joins what is left. *)

val owner_of : shards:int -> Ft_trace.Event.loc -> int
(** The shard that owns a location — a pure hash, independent of trace
    content, so tests can place locations on chosen shards. *)

val create :
  engine:Ft_core.Engine.id ->
  shards:int ->
  ?supervise:bool ->
  ?max_restarts:int ->
  ?snapshot_every:int ->
  Ft_core.Detector.config ->
  t
(** Spawn [shards] worker domains (K ≥ 1).  Every sharded detector must be
    {!stop}ped, or its domains leak.  [?supervise] (default [false]) enables
    self-healing as described above; [?max_restarts] (default 8) is the
    per-shard restart budget; [?snapshot_every] (default 2048) is how many
    messages a supervised worker processes between published recovery
    snapshots — smaller means cheaper replays and more snapshot overhead. *)

val handle : t -> int -> Ft_trace.Event.t -> unit
(** Route event [i].  Indices must be fed in increasing order, as with
    {!Ft_core.Detector.S.handle}.  Blocks (backpressure) when a shard's ring
    is full.  Raises [Failure] if called after {!stop}; a supervised call may
    heal a failed shard in-line (replaying its backlog) before returning, and
    raises {!Shard_failed} once a shard is past its restart budget. *)

val note_sampled : t -> Ft_trace.Event.tid -> unit
(** Apply a pending-bit transition whose triggering access is owned by
    {e another} detector — how a cluster worker replays a router [Mark]
    ({!Cmsg.msg}).  Sets the bit, marks every internal shard and notes the
    baseline, exactly as {!handle} does for a locally-owned sampled access;
    a no-op when the bit is already set.  Not an event: {!events} and the
    per-shard routed counts are unchanged. *)

val events : t -> int
(** Events routed so far. *)

val shard_event_counts : t -> int array
(** Events pushed to each shard's ring so far (accesses go to the owner
    only, sync events to all K) — the per-shard throughput series of the
    serve daemon's [STATS].  Router-domain callers only, like {!handle}. *)

val ring_occupancy : t -> int array
(** Instantaneous unconsumed-message count of each shard's ring, readable
    from any domain.  A telemetry snapshot: concurrent workers may have
    drained (or the router filled) slots by the time the array returns. *)

val restart_counts : t -> int array
(** Supervisor restarts performed per shard so far (all zeros when
    unsupervised or fault-free) — the [racedet_shard_restarts] series. *)

val restarts_total : t -> int

val flush : t -> unit
(** Wait until every shard has fully processed everything routed so far.
    Unsupervised: re-raises (as [Failure]) the first exception any shard
    worker hit.  Supervised: heals failed shards (restoring and replaying)
    until every ring is drained cleanly, raising {!Shard_failed} only past
    the restart budget. *)

val result : t -> Ft_core.Detector.result
(** {!flush}, then merge: races from all shards sorted by declaration index
    (each event declares at most one race, so the order is total and equals
    the unsharded declaration order), metrics via
    {!Ft_core.Metrics.merge_shards}.  The detector stays usable — serving a
    report mid-stream is allowed. *)

val stop : t -> unit
(** Drain and join the worker domains.  Idempotent.  {!result},
    {!shard_snapshots} and {!router_snapshot} remain valid afterwards.
    Supervised: heals pending failures first, so the joined state is the
    exact prefix state; every domain is joined before a {!Shard_failed} from
    an exhausted budget propagates (no leaks on the fail-fast path). *)

(** {1 Snapshots}

    A sharded detector checkpoints as K engine snapshots (one per shard,
    each a regular {!Ft_core.Detector.S.snapshot}) plus one router snapshot
    holding the replicated-pending bits, the router's sampler state, the
    event count and the sync-only baseline.  [restore] rebuilds the whole
    ensemble; shard count and universe must match the snapshots. *)

val shard_snapshots : t -> Ft_core.Snap.t array
(** Flushes first; index [k] is shard [k]'s engine snapshot. *)

val router_snapshot : t -> Ft_core.Snap.t

val restore :
  engine:Ft_core.Engine.id ->
  shards:int ->
  ?supervise:bool ->
  ?max_restarts:int ->
  ?snapshot_every:int ->
  Ft_core.Detector.config ->
  router:Ft_core.Snap.t ->
  Ft_core.Snap.t array ->
  t
(** Raises [Ft_core.Snap.Corrupt] on malformed or mismatched payloads
    (wrong shard count, wrong universe).  Spawns worker domains like
    {!create}. *)
