module Event = Ft_trace.Event
module Detector = Ft_core.Detector
module Race = Ft_core.Race
module Metrics = Ft_core.Metrics
module Snap = Ft_core.Snap

(* Wire codec for the cluster router → worker sub-streams and for worker
   partial results.  Events keep their ORIGINAL global indices: worker-side
   sampler decisions are pure functions of (index) or of per-location state
   (and locations are partitioned whole onto workers), so re-running the
   sampler inside each worker reproduces exactly the global run's
   decisions — the soundness argument of DESIGN.md §6e.  Sequencing across
   a worker's stream uses a separate dense per-worker counter carried by
   the CBATCH header, not these indices. *)

type msg =
  | Ev of int * Event.t  (* original global index *)
  | Mark of Event.tid  (* pending-bit transition owned by another worker *)

let op_tag = function
  | Event.Read _ -> 0
  | Event.Write _ -> 1
  | Event.Acquire _ -> 2
  | Event.Release _ -> 3
  | Event.Fork _ -> 4
  | Event.Join _ -> 5
  | Event.Release_store _ -> 6
  | Event.Acquire_load _ -> 7

let op_operand = function
  | Event.Read x | Event.Write x -> x
  | Event.Acquire l | Event.Release l | Event.Release_store l | Event.Acquire_load l -> l
  | Event.Fork t | Event.Join t -> t

let op_of ~tag ~operand =
  match tag with
  | 0 -> Event.Read operand
  | 1 -> Event.Write operand
  | 2 -> Event.Acquire operand
  | 3 -> Event.Release operand
  | 4 -> Event.Fork operand
  | 5 -> Event.Join operand
  | 6 -> Event.Release_store operand
  | 7 -> Event.Acquire_load operand
  | _ -> raise (Snap.Corrupt "cluster message: unknown event op tag")

let encode ~nthreads ~nlocks ~nlocs msgs ~off ~len =
  let enc = Snap.Enc.create () in
  Snap.Enc.int enc nthreads;
  Snap.Enc.int enc nlocks;
  Snap.Enc.int enc nlocs;
  Snap.Enc.int enc len;
  for j = off to off + len - 1 do
    match msgs.(j) with
    | Ev (i, e) ->
      Snap.Enc.int enc 0;
      Snap.Enc.int enc i;
      Snap.Enc.int enc e.Event.thread;
      Snap.Enc.int enc (op_tag e.Event.op);
      Snap.Enc.int enc (op_operand e.Event.op)
    | Mark th ->
      Snap.Enc.int enc 1;
      Snap.Enc.int enc th
  done;
  Snap.Enc.to_snap enc

let decode payload =
  match
    let dec = Snap.Dec.of_snap payload in
    let nthreads = Snap.Dec.int dec in
    let nlocks = Snap.Dec.int dec in
    let nlocs = Snap.Dec.int dec in
    Snap.expect (nthreads > 0 && nlocks >= 0 && nlocs >= 0)
      "cluster batch: bad universe";
    let n = Snap.Dec.int dec in
    Snap.expect (n >= 0) "cluster batch: negative message count";
    let msgs =
      Array.init n (fun _ ->
          match Snap.Dec.int dec with
          | 0 ->
            let i = Snap.Dec.int dec in
            let thread = Snap.Dec.int dec in
            let tag = Snap.Dec.int dec in
            let operand = Snap.Dec.int dec in
            Snap.expect (i >= 0 && thread >= 0 && operand >= 0)
              "cluster batch: negative field";
            Ev (i, { Event.thread; op = op_of ~tag ~operand })
          | 1 ->
            let th = Snap.Dec.int dec in
            Snap.expect (th >= 0) "cluster batch: negative thread";
            Mark th
          | _ -> raise (Snap.Corrupt "cluster batch: unknown message tag"))
    in
    Snap.Dec.finish dec;
    ((nthreads, nlocks, nlocs), msgs)
  with
  | v -> Ok v
  | exception Snap.Corrupt msg -> Error msg

(* Worker partial result — everything the router needs to merge: the engine
   name (one worker speaks for all, they run the same engine), the races
   declared by the worker's shards (with original indices, so the global
   sort order is recoverable) and its internally merged metrics. *)

let encode_result (r : Detector.result) =
  let enc = Snap.Enc.create () in
  Snap.Enc.string enc r.Detector.engine;
  Race.encode_list enc r.Detector.races;
  Metrics.encode enc r.Detector.metrics;
  Snap.Enc.to_snap enc

let decode_result payload =
  match
    let dec = Snap.Dec.of_snap payload in
    let engine = Snap.Dec.string dec in
    let races = Race.decode_list dec in
    let metrics = Metrics.decode dec in
    Snap.Dec.finish dec;
    { Detector.engine; races; metrics }
  with
  | v -> Ok v
  | exception Snap.Corrupt msg -> Error msg
