module Netbuf = Netbuf
module Fault = Ft_fault.Fault

(* Shared single-threaded accept/read loop of the serve daemon and the
   cluster router.  Both speak the same line-framed protocol with sized
   binary payloads, so the listener plumbing — select, EINTR-guarded accept,
   close-on-exec, Netbuf accumulation, closed-connection sweeping — lives
   here once and the protocol handlers stay with their daemons. *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        go off
  in
  go 0

type conn = {
  fd : Unix.file_descr;
  data : Netbuf.t;  (* unconsumed input, appended in amortized O(1) *)
  mutable await : (int * (string -> unit)) option;  (* sized blob + consumer *)
  mutable closed : bool;
}

let conn_fd conn = conn.fd

let reply conn s = try write_all conn.fd s with Unix.Unix_error _ -> conn.closed <- true

let close_conn conn =
  conn.closed <- true;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let await_blob conn n k = conn.await <- Some (n, k)

let make_conn fd = { fd; data = Netbuf.create (); await = None; closed = false }

(* Consume everything currently buffered: sized blobs first (a pending
   header owns the next [n] bytes), then complete lines. *)
let rec process ~on_line conn =
  if not conn.closed then
    match conn.await with
    | Some (nbytes, consume) ->
      if Netbuf.length conn.data >= nbytes then begin
        let payload = Netbuf.take conn.data nbytes in
        conn.await <- None;
        consume payload;
        process ~on_line conn
      end
    | None -> (
      match Netbuf.index_newline conn.data with
      | None -> ()
      | Some nl ->
        let line = Netbuf.take conn.data nl in
        Netbuf.drop conn.data 1;
        on_line conn line;
        process ~on_line conn)

(* One bounded receive step for a caller driving a connection outside the
   main loop (the router servicing worker acks between sends): wait up to
   [timeout_s] for readability, then pull one chunk into the Netbuf.  The
   caller runs [process] afterwards to consume whatever completed. *)
let feed ?(timeout_s = 0.0) conn =
  if conn.closed then `Eof
  else
    let readable, _, _ =
      try Unix.select [ conn.fd ] [] [] timeout_s
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if readable = [] then `Timeout
    else
      let chunk = Bytes.create 65536 in
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        conn.closed <- true;
        `Eof
      | n ->
        Netbuf.append conn.data chunk ~off:0 ~len:n;
        `Data n
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> `Timeout
      | exception Unix.Unix_error _ ->
        conn.closed <- true;
        `Eof

let run ~listen_fd ~quit ~on_line ?(on_accept = fun _ -> ()) ?(on_conns = fun _ -> ())
    ?(tick = fun () -> ()) ?recv_fault ?(select_s = 0.5) () =
  let conns = ref [] in
  let chunk = Bytes.create 65536 in
  while not (quit ()) do
    let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
    let readable, _, _ =
      try Unix.select fds [] [] select_s
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq listen_fd readable then begin
      (* EINTR-guarded: a signal (SIGTERM asking for the graceful drain)
         landing inside accept must not escape the loop and bypass the
         final-checkpoint path.  ECONNABORTED is a client that gave up
         between select and accept — simply not a connection. *)
      match Unix.accept ~cloexec:true listen_fd with
      | fd, _ ->
        (* harmless EOPNOTSUPP on Unix-domain sockets *)
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let conn = { fd; data = Netbuf.create (); await = None; closed = false } in
        conns := conn :: !conns;
        on_accept conn
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
        ()
    end;
    List.iter
      (fun c ->
        if (not c.closed) && List.memq c.fd readable then
          (* Injected faults act BEFORE the read so no received byte is ever
             dropped: an Exn is a transient hiccup (retried next select
             round, the data still queued in the socket), a Partial_io just
             shortens the requested length. *)
          match
            (match recv_fault with
            | Some point -> Fault.point ~supports:[ Fault.Exn; Fault.Delay ] point
            | None -> ());
            Unix.read c.fd chunk 0
              (match recv_fault with
              | Some point -> Fault.io_len point (Bytes.length chunk)
              | None -> Bytes.length chunk)
          with
          | 0 -> c.closed <- true
          | n ->
            Netbuf.append c.data chunk ~off:0 ~len:n;
            process ~on_line c
          (* a signal or a spurious wakeup is not a dead client *)
          | exception
              Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | exception Fault.Injected _ -> ()
          | exception Unix.Unix_error _ -> c.closed <- true)
      !conns;
    conns :=
      List.filter
        (fun c ->
          if c.closed then (try Unix.close c.fd with Unix.Unix_error _ -> ());
          not c.closed)
        !conns;
    on_conns (List.length !conns);
    tick ()
  done;
  !conns
