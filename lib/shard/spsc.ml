type 'a t = {
  buf : 'a array;
  capacity : int;
  head : int Atomic.t;  (* next slot to consume; written by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; written by the producer *)
}

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be positive";
  {
    buf = Array.make capacity dummy;
    capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let push q v =
  let t = Atomic.get q.tail in
  while t - Atomic.get q.head >= q.capacity do
    Domain.cpu_relax ()
  done;
  q.buf.(t mod q.capacity) <- v;
  (* publishes the slot write above to the consumer *)
  Atomic.set q.tail (t + 1)

let try_push q v =
  let t = Atomic.get q.tail in
  if t - Atomic.get q.head >= q.capacity then false
  else begin
    q.buf.(t mod q.capacity) <- v;
    Atomic.set q.tail (t + 1);
    true
  end

let peek q =
  let h = Atomic.get q.head in
  if h = Atomic.get q.tail then None else Some q.buf.(h mod q.capacity)

let advance q = Atomic.incr q.head

let is_empty q = Atomic.get q.head = Atomic.get q.tail

let length q = Stdlib.max 0 (Atomic.get q.tail - Atomic.get q.head)
