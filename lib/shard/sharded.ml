module Event = Ft_trace.Event
module Detector = Ft_core.Detector
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Snap = Ft_core.Snap

type msg =
  | Ev of int * Event.t
  | Mark of Event.tid  (* replicate a pending-bit transition: note_sampled *)
  | Stop

(* One engine instance behind closures, so the router can hold K of them
   without knowing the engine's state type. *)
type inst = {
  i_handle : int -> Event.t -> unit;
  i_note : Event.tid -> unit;
  i_result : unit -> Detector.result;
  i_snapshot : unit -> Snap.t;
}

let fresh_inst (module D : Detector.S) config =
  let d = D.create config in
  {
    i_handle = (fun i e -> D.handle d i e);
    i_note = (fun t -> D.note_sampled d t);
    i_result = (fun () -> D.result d);
    i_snapshot = (fun () -> D.snapshot d);
  }

let restored_inst (module D : Detector.S) config snap =
  let d = D.restore config snap in
  {
    i_handle = (fun i e -> D.handle d i e);
    i_note = (fun t -> D.note_sampled d t);
    i_result = (fun () -> D.result d);
    i_snapshot = (fun () -> D.snapshot d);
  }

type t = {
  engine : Engine.id;
  k : int;
  rings : msg Spsc.t array;
  shards : inst array;
  baseline : inst;  (* same engine, fed only the broadcast sync stream *)
  sampler_inst : Sampler.instance;
  pending : bool array;  (* mirror of every instance's pending bit, per thread *)
  error : (int * string) option Atomic.t;
  routed : int array;  (* events pushed per shard ring; router-domain only *)
  mutable domains : unit Domain.t array;
  mutable nevents : int;
  mutable stopped : bool;
}

let ring_capacity = 1024

(* Deterministic location → shard map (splitmix-style finalizer): stable
   across runs and platforms, so per-shard checkpoints stay valid. *)
let owner_of ~shards x =
  if shards = 1 then 0
  else begin
    let h = x * 0x9E3779B1 in
    let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
    ((h lxor (h lsr 13)) land max_int) mod shards
  end

(* Workers process their ring until [Stop].  A handler exception is recorded
   once (first failure wins) and the worker keeps draining without
   processing, so the router can never deadlock pushing into a dead shard. *)
let worker ring inst error idx () =
  let failed = ref false in
  let rec loop spins =
    match Spsc.peek ring with
    | None ->
      Domain.cpu_relax ();
      (* an idle shard (e.g. a serve daemon between batches) must not pin a
         core: back off to short sleeps after a burst of empty polls *)
      if spins > 4096 then Unix.sleepf 0.0002;
      loop (if spins > 4096 then spins else spins + 1)
    | Some Stop -> Spsc.advance ring
    | Some msg ->
      if not !failed then begin
        try
          match msg with
          | Ev (i, e) -> inst.i_handle i e
          | Mark th -> inst.i_note th
          | Stop -> assert false
        with exn ->
          failed := true;
          let bt = Printexc.get_backtrace () in
          ignore
            (Atomic.compare_and_set error None
               (Some (idx, Printexc.to_string exn ^ "\n" ^ bt)))
      end;
      Spsc.advance ring;
      loop 0
  in
  loop 0

let spawn_domains t =
  t.domains <-
    Array.init t.k (fun s ->
        Domain.spawn (worker t.rings.(s) t.shards.(s) t.error s))

let build ~engine ~shards:k ~shard_insts ~baseline ~sampler_inst ~pending ~nevents =
  let t =
    {
      engine;
      k;
      rings = Array.init k (fun _ -> Spsc.create ~capacity:ring_capacity ~dummy:Stop);
      shards = shard_insts;
      baseline;
      sampler_inst;
      pending;
      error = Atomic.make None;
      routed = Array.make k 0;
      domains = [||];
      nevents;
      stopped = false;
    }
  in
  spawn_domains t;
  t

let create ~engine ~shards:k (config : Detector.config) =
  if k < 1 then invalid_arg "Sharded.create: shards must be positive";
  let packed = Engine.detector engine in
  build ~engine ~shards:k
    ~shard_insts:(Array.init k (fun _ -> fresh_inst packed config))
    ~baseline:(fresh_inst packed config)
    ~sampler_inst:(Sampler.fresh config.Detector.sampler)
    ~pending:(Array.make config.Detector.nthreads false)
    ~nevents:0

let check_error t =
  match Atomic.get t.error with
  | None -> ()
  | Some (s, msg) -> failwith (Printf.sprintf "Sharded: shard %d failed: %s" s msg)

let broadcast t m =
  Array.iteri
    (fun s r ->
      Spsc.push r m;
      t.routed.(s) <- t.routed.(s) + 1)
    t.rings

let handle t i (e : Event.t) =
  if t.stopped then failwith "Sharded.handle: detector is stopped";
  (match e.Event.op with
  | Event.Read x | Event.Write x ->
    let o = owner_of ~shards:t.k x in
    (* The router's sampler instance sees every access, exactly once, in
       trace order — the instance contract.  Query before the && so stateful
       strategies advance even while the bit is already set. *)
    let sampled = Sampler.query t.sampler_inst i e in
    if sampled && not t.pending.(e.Event.thread) then begin
      t.pending.(e.Event.thread) <- true;
      for s = 0 to t.k - 1 do
        (* the owner sets its own bit when it handles the event *)
        if s <> o then Spsc.push t.rings.(s) (Mark e.Event.thread)
      done;
      t.baseline.i_note e.Event.thread
    end;
    Spsc.push t.rings.(o) (Ev (i, e));
    t.routed.(o) <- t.routed.(o) + 1
  | Event.Acquire _ | Event.Acquire_load _ ->
    (* acquires never flush pending *)
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e
  | Event.Release _ | Event.Release_store _ ->
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e;
    t.pending.(e.Event.thread) <- false
  | Event.Fork _ ->
    (* fork flushes the forking thread *)
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e;
    t.pending.(e.Event.thread) <- false
  | Event.Join u ->
    (* join flushes the joined child *)
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e;
    t.pending.(u) <- false);
  t.nevents <- t.nevents + 1

let events t = t.nevents

let shard_event_counts t = Array.copy t.routed

let ring_occupancy t = Array.map Spsc.length t.rings

let flush t =
  if not t.stopped then
    Array.iter
      (fun r ->
        while not (Spsc.is_empty r) do
          Domain.cpu_relax ()
        done)
      t.rings;
  check_error t

let result t =
  flush t;
  let rs = Array.map (fun s -> s.i_result ()) t.shards in
  let base = t.baseline.i_result () in
  let races =
    List.sort
      (fun (a : Race.t) (b : Race.t) -> Stdlib.compare a.Race.index b.Race.index)
      (List.concat_map (fun (r : Detector.result) -> r.Detector.races) (Array.to_list rs))
  in
  {
    Detector.engine = base.Detector.engine;
    races;
    metrics =
      Metrics.merge_shards ~sync_baseline:base.Detector.metrics
        (Array.map (fun (r : Detector.result) -> r.Detector.metrics) rs);
  }

let stop t =
  if not t.stopped then begin
    Array.iter (fun r -> Spsc.push r Stop) t.rings;
    Array.iter Domain.join t.domains;
    t.stopped <- true;
    check_error t
  end

let shard_snapshots t =
  flush t;
  Array.map (fun s -> s.i_snapshot ()) t.shards

let router_snapshot t =
  flush t;
  let enc = Snap.Enc.create () in
  Snap.Enc.int enc t.k;
  Snap.Enc.int enc t.nevents;
  Snap.Enc.bool_array enc t.pending;
  t.sampler_inst.Sampler.save enc;
  Snap.Enc.string enc (t.baseline.i_snapshot ());
  Snap.Enc.to_snap enc

let restore ~engine ~shards:k (config : Detector.config) ~router shard_snaps =
  if k < 1 then invalid_arg "Sharded.restore: shards must be positive";
  Snap.expect
    (Array.length shard_snaps = k)
    "Sharded.restore: shard snapshot count does not match shard count";
  let dec = Snap.Dec.of_snap router in
  let k' = Snap.Dec.int dec in
  Snap.expect (k' = k) "Sharded.restore: router snapshot was taken with a different K";
  let nevents = Snap.Dec.int dec in
  Snap.expect (nevents >= 0) "Sharded.restore: negative event count";
  let pending = Snap.Dec.bool_array_n dec config.Detector.nthreads in
  let sampler_inst = Sampler.fresh config.Detector.sampler in
  sampler_inst.Sampler.load dec;
  let base_snap = Snap.Dec.string dec in
  Snap.Dec.finish dec;
  let packed = Engine.detector engine in
  build ~engine ~shards:k
    ~shard_insts:(Array.map (fun s -> restored_inst packed config s) shard_snaps)
    ~baseline:(restored_inst packed config base_snap)
    ~sampler_inst ~pending ~nevents
